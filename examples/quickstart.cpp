// Quickstart: the full robust-RSN synthesis pipeline on the paper's
// running example (Fig. 1).
//
//   1. build an RSN and a criticality specification,
//   2. run the criticality analysis (per-primitive damage d_j),
//   3. explore the cost/damage trade-off with SPEA-2,
//   4. pick the two solutions Table I reports and print the plans.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <iostream>

#include "crit/analyzer.hpp"
#include "harden/hardening.hpp"
#include "moo/spea2.hpp"
#include "rsn/example_networks.hpp"
#include "rsn/netlist_io.hpp"

int main() {
  using namespace rrsn;

  // 1. The network and its explicit criticality specification.
  const rsn::Network net = rsn::makeFig1Network();
  const rsn::CriticalitySpec spec = rsn::makeFig1Spec(net);
  std::cout << "== Network (netlist form) ==\n"
            << rsn::netlistToString(net) << '\n';

  // 2. Criticality analysis: how much damage does a defect in each scan
  //    primitive cause (Eq. 1)?
  const crit::CriticalityAnalyzer analyzer(net, spec);
  const crit::CriticalityResult analysis = analyzer.run();
  std::cout << "== Most critical primitives ==\n"
            << analysis.report(5) << '\n';
  std::cout << "total damage with no hardening: " << analysis.totalDamage()
            << "\n\n";

  // 3. Selective hardening as a bi-objective problem, solved by SPEA-2.
  const harden::HardeningProblem problem =
      harden::HardeningProblem::assemble(net, analysis);
  moo::EvolutionOptions options;
  options.populationSize = 50;
  options.generations = 120;
  options.seed = 42;
  const moo::RunResult result = moo::runSpea2(problem.linear, options);

  std::cout << "== Pareto front (cost vs damage) ==\n";
  for (const moo::Individual& ind : result.archive.members()) {
    std::cout << "  cost " << ind.obj.cost << "  damage " << ind.obj.damage
              << '\n';
  }
  std::cout << '\n';

  // 4. The two Table-I style solutions.
  const harden::PaperSolutions sols =
      harden::extractPaperSolutions(result.archive, problem);
  if (sols.minCost) {
    const harden::HardeningPlan plan(net, sols.minCost->genome);
    std::cout << "== Min cost @ damage <= 10% ==  (cost "
              << sols.minCost->obj.cost << ", damage "
              << sols.minCost->obj.damage << ")\n"
              << plan.report(analysis) << '\n';
  }
  if (sols.minDamage) {
    const harden::HardeningPlan plan(net, sols.minDamage->genome);
    std::cout << "== Min damage @ cost <= 10% ==  (cost "
              << sols.minDamage->obj.cost << ", damage "
              << sols.minDamage->obj.damage << ")\n"
              << plan.report(analysis) << '\n';
  }
  return 0;
}

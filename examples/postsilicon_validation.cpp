// Post-silicon validation scenario (Sec. I).
//
// "A fault in an RSN may prevent accessing a major part of instruments,
// such that only incomplete data can be extracted."
//
// This example injects every single permanent fault into an SoC-style
// benchmark RSN and measures how much instrument data can still be
// extracted — first on the unhardened network, then after synthesizing a
// robust one (min-cost solution with damage <= 10 %).  Hardened
// primitives cannot fail, so their faults disappear from the fault list.
#include <algorithm>
#include <iostream>

#include "benchgen/registry.hpp"
#include "crit/analyzer.hpp"
#include "fault/effects.hpp"
#include "harden/hardening.hpp"
#include "moo/spea2.hpp"
#include "support/table.hpp"

int main() {
  using namespace rrsn;

  const rsn::Network net = benchgen::buildBenchmark("q12710");
  Rng rng(2022);
  const rsn::CriticalitySpec spec = rsn::randomSpec(net, {}, rng);
  const std::size_t numInstruments = net.instruments().size();
  std::cout << "network q12710: " << net.segments().size() << " segments, "
            << net.muxes().size() << " muxes, " << numInstruments
            << " instruments\n\n";

  // Synthesize the robust RSN.
  const auto analysis = crit::CriticalityAnalyzer(net, spec).run();
  const auto problem = harden::HardeningProblem::assemble(net, analysis);
  moo::EvolutionOptions options;
  options.populationSize = 100;
  options.generations = 300;
  options.seed = 7;
  const auto result = moo::runSpea2(problem.linear, options);
  const auto sols = harden::extractPaperSolutions(result.archive, problem);
  if (!sols.minCost) {
    std::cerr << "no solution met the damage bound; increase generations\n";
    return 1;
  }
  const harden::HardeningPlan plan(net, sols.minCost->genome);
  std::cout << "hardening plan: " << plan.hardenedCount() << " of "
            << net.primitiveCount() << " primitives, cost "
            << sols.minCost->obj.cost << " of " << problem.maxCost << "\n\n";

  // Fault-by-fault data-extraction coverage (observability).
  const rsn::GraphView gv = rsn::buildGraphView(net);
  const fault::FaultUniverse universe(net);
  sp::DecompositionTree tree = sp::DecompositionTree::build(net);
  tree.annotate(spec);

  struct Tally {
    std::size_t faults = 0;
    double worstExtract = 100.0;
    double sumExtract = 0.0;
    std::uint64_t worstDamage = 0;
    std::uint64_t sumDamage = 0;

    void account(double extractable, std::uint64_t damage) {
      ++faults;
      sumExtract += extractable;
      worstExtract = std::min(worstExtract, extractable);
      sumDamage += damage;
      worstDamage = std::max(worstDamage, damage);
    }
  };
  Tally unhardened;
  Tally hardened;

  for (const fault::Fault& f : universe.faults()) {
    const auto loss = fault::lossUnderFaultTree(tree, f);
    const double extractable =
        100.0 *
        static_cast<double>(numInstruments - loss.unobservable.count()) /
        static_cast<double>(numInstruments);
    const std::uint64_t damage = fault::damageOfLoss(spec, loss);
    unhardened.account(extractable, damage);

    const rsn::PrimitiveRef ref{f.kind == fault::FaultKind::SegmentBreak
                                    ? rsn::PrimitiveRef::Kind::Segment
                                    : rsn::PrimitiveRef::Kind::Mux,
                                f.prim};
    if (plan.isHardened(ref)) continue;  // this defect can no longer occur
    hardened.account(extractable, damage);
  }

  TextTable table({"RSN", "possible faults", "avg extractable data",
                   "worst extractable data", "worst single-fault damage",
                   "sum of fault damages"});
  table.setAlign(0, TextTable::Align::Left);
  const auto pct = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f%%", v);
    return std::string(buf);
  };
  const auto addRow = [&](const char* name, const Tally& t) {
    table.addRow({name, std::to_string(t.faults),
                  pct(t.sumExtract / static_cast<double>(t.faults)),
                  pct(t.worstExtract), withThousands(t.worstDamage),
                  withThousands(t.sumDamage)});
  };
  addRow("initial (unhardened)", unhardened);
  addRow("robust (selectively hardened)", hardened);
  std::cout << table
            << "\n(on the robust RSN the most damaging defects are "
               "impossible by construction: the accumulated weighted "
               "damage over all remaining single faults dropped below "
               "10% of the initial assessment, and critical instruments "
               "stay accessible)\n";
  return 0;
}

// Access-pattern compatibility (Sec. II).
//
// "The resulting RSNs must follow the initial RSN topology...  be able to
// use the same access patterns as the initial unhardened RSN."
//
// Selective hardening replaces cells with hardened variants but never
// rewires anything, so every retargeted access recorded on the initial
// network replays bit-identically on the robust one.  This example
// records a read and a write access for every instrument of a tree
// benchmark and replays the full pattern log on the (topologically
// identical) hardened network.
#include <iostream>

#include "benchgen/registry.hpp"
#include "sim/retarget.hpp"
#include "support/table.hpp"

int main() {
  using namespace rrsn;

  const rsn::Network original = benchgen::buildBenchmark("TreeUnbalanced");
  const rsn::Network robust = benchgen::buildBenchmark("TreeUnbalanced");
  std::cout << "network TreeUnbalanced: " << original.segments().size()
            << " segments, " << original.muxes().size() << " muxes, "
            << original.instruments().size() << " instruments\n\n";

  TextTable table({"instrument", "read rounds", "write rounds",
                   "pattern bits", "replay on robust RSN"});
  table.setAlign(0, TextTable::Align::Left);
  table.setAlign(4, TextTable::Align::Left);

  std::size_t totalPatterns = 0;
  std::size_t okReplays = 0;
  for (rsn::InstrumentId i = 0; i < original.instruments().size(); ++i) {
    const auto segLen =
        original.segment(original.instrument(i).segment).length;

    // Record a read access on the initial network.
    sim::ScanSimulator recordSim(original);
    recordSim.setInstrumentValue(i, sim::accessMarker(segLen));
    sim::Retargeter recorder(recordSim);
    const auto read = recorder.readInstrument(i);

    // Record a write access (fresh simulator: patterns start from reset).
    sim::ScanSimulator writeSim(original);
    sim::Retargeter writer(writeSim);
    const auto write = writer.writeInstrument(i, sim::accessMarker(segLen));

    if (!read.success || !write.success) {
      std::cerr << "unexpected: instrument " << i
                << " inaccessible on the fault-free network\n";
      return 1;
    }

    // Replay both recipes on the robust network.
    sim::ScanSimulator replayRead(robust);
    replayRead.setInstrumentValue(i, sim::accessMarker(segLen));
    const bool readOk = sim::replayPatterns(replayRead, read);
    sim::ScanSimulator replayWrite(robust);
    const bool writeOk = sim::replayPatterns(replayWrite, write);

    std::size_t bits = 0;
    for (const auto& p : read.patterns) bits += p.shiftIn.size();
    for (const auto& p : write.patterns) bits += p.shiftIn.size();
    totalPatterns += read.patterns.size() + write.patterns.size();
    okReplays += readOk && writeOk;

    if (i < 8 || !(readOk && writeOk)) {
      table.addRow({original.instrument(i).name,
                    std::to_string(read.rounds), std::to_string(write.rounds),
                    std::to_string(bits),
                    readOk && writeOk ? "identical" : "DIVERGED"});
    }
  }

  std::cout << table << "  ... (first 8 instruments shown)\n\n";
  std::cout << "replayed " << totalPatterns << " scan patterns; "
            << okReplays << "/" << original.instruments().size()
            << " instruments with bit-identical replay\n";
  return okReplays == original.instruments().size() ? 0 : 1;
}

// Runtime-operation scenario (Sec. I / IV-A).
//
// "The device operation may be guided by runtime-adaptive instruments,
// e.g., Adaptive Voltage and Frequency Scaling (AVFS)...  Inaccessibility
// of such critical instruments due to a single fault in the RSN may cause
// a system failure."
//
// We model a small always-on monitoring RSN: two AVFS controllers whose
// *settability* is runtime-critical (high ds, per Sec. IV-A), a bank of
// interchangeable thermal sensors (low do each, ds ~ 0), and an error-
// rate monitor.  Selective hardening must keep every AVFS controller
// settable under any remaining single fault — verified twice, with the
// structural analysis and end-to-end with the fault-injecting simulator.
#include <iostream>
#include <optional>

#include "crit/analyzer.hpp"
#include "harden/hardening.hpp"
#include "moo/spea2.hpp"
#include "rsn/builder.hpp"
#include "sim/retarget.hpp"

namespace {

rrsn::rsn::Network makeMonitoringRsn() {
  using rrsn::rsn::NetworkBuilder;
  NetworkBuilder b("avfs_monitor");
  std::vector<NetworkBuilder::Handle> top;

  // Two AVFS domains, each: a SIB gating [vf-setting register + sensor].
  for (int d = 0; d < 2; ++d) {
    const std::string id = std::to_string(d);
    auto vf = b.segment("avfs" + id, 8, "avfs_ctl" + id);
    auto sense = b.segment("vsense" + id, 4, "vmon" + id);
    top.push_back(b.sib("sib_avfs" + id, b.chain({vf, sense})));
  }
  // Thermal sensor bank: four interchangeable sensors behind one mux.
  std::vector<NetworkBuilder::Handle> sensors;
  for (int t = 0; t < 4; ++t) {
    const std::string id = std::to_string(t);
    sensors.push_back(b.segment("tsense" + id, 6, "thermal" + id));
  }
  top.push_back(b.mux("tmux", std::move(sensors)));
  // Error-rate monitor, bypassable.
  top.push_back(
      b.mux("emux", {b.segment("errcnt", 12, "error_rate"), b.wire()}));
  b.setTop(b.chain(std::move(top)));
  return b.build();
}

}  // namespace

int main() {
  using namespace rrsn;
  const rsn::Network net = makeMonitoringRsn();

  // Explicit criticality specification (Sec. IV-A):
  //  * AVFS controllers: settability critical (high ds), low do;
  //  * sensors: low do, ds ~ 0 (interchangeably used);
  //  * error monitor: medium do.
  rsn::CriticalitySpec spec(net.instruments().size());
  std::uint64_t uncriticalSum = 0;
  for (rsn::InstrumentId i = 0; i < net.instruments().size(); ++i) {
    const std::string& name = net.instrument(i).name;
    auto& w = spec.of(i);
    if (name.rfind("thermal", 0) == 0) w = {2, 0, false, false};
    else if (name.rfind("vmon", 0) == 0) w = {3, 0, false, false};
    else if (name == "error_rate") w = {6, 1, false, false};
    if (!w.criticalSet) uncriticalSum += w.set;
  }
  for (rsn::InstrumentId i = 0; i < net.instruments().size(); ++i) {
    const std::string& name = net.instrument(i).name;
    if (name.rfind("avfs_ctl", 0) == 0) {
      auto& w = spec.of(i);
      w.obs = 1;
      w.criticalSet = true;
      w.set = 0;  // assigned below, after the uncritical sum is known
    }
  }
  for (rsn::InstrumentId i = 0; i < net.instruments().size(); ++i) {
    if (spec.of(i).criticalSet) spec.of(i).set = uncriticalSum * 4 + 1;
  }

  const auto analysis = crit::CriticalityAnalyzer(net, spec).run();
  const auto problem = harden::HardeningProblem::assemble(net, analysis);
  std::cout << "AVFS monitoring RSN: " << net.primitiveCount()
            << " primitives, max damage " << problem.maxDamage
            << ", max cost " << problem.maxCost << "\n\n";

  moo::EvolutionOptions options;
  options.populationSize = 60;
  options.generations = 200;
  options.seed = 5;
  const auto result = moo::runSpea2(problem.linear, options);

  // End-to-end criterion: under every fault that is still possible after
  // hardening, each AVFS controller must accept a new value *through the
  // defect RSN*, starting from the reset configuration (strict mode —
  // control bits are written through the network itself, not assumed).
  const fault::FaultUniverse universe(net);
  const auto strictlySafe = [&](const harden::HardeningPlan& plan,
                                const fault::Fault** blocking) {
    for (const fault::Fault& f : universe.faults()) {
      const rsn::PrimitiveRef ref{f.kind == fault::FaultKind::SegmentBreak
                                      ? rsn::PrimitiveRef::Kind::Segment
                                      : rsn::PrimitiveRef::Kind::Mux,
                                  f.prim};
      if (plan.isHardened(ref)) continue;
      for (rsn::InstrumentId i = 0; i < net.instruments().size(); ++i) {
        if (!spec.of(i).criticalSet) continue;
        sim::ScanSimulator sim(net);
        sim.injectFault(f);
        sim::Retargeter rt(sim);
        const auto len = net.segment(net.instrument(i).segment).length;
        if (!rt.writeInstrument(i, sim::accessMarker(len)).success) {
          if (blocking != nullptr) *blocking = &f;
          return false;
        }
      }
    }
    return true;
  };

  // Walk the Pareto front from cheap to expensive; take the first plan
  // that passes both the structural and the strict check.  Plans that
  // satisfy the paper's structural criterion but fail strictly are
  // reported — that is exactly the control-dependency gap quantified by
  // bench_control_dependency.
  std::optional<harden::HardeningPlan> chosen;
  for (const moo::Individual& ind : result.archive.members()) {
    harden::HardeningPlan plan(net, ind.genome);
    if (!harden::criticalExposures(net, spec, plan).empty()) continue;
    const fault::Fault* blocking = nullptr;
    if (!strictlySafe(plan, &blocking)) {
      std::cout << "plan with cost " << ind.obj.cost
                << " is structurally safe but fails strictly (e.g. under "
                << fault::describe(net, *blocking)
                << " a control register cannot be written) — skipping\n";
      continue;
    }
    std::cout << "\nchosen plan: cost " << ind.obj.cost
              << ", residual damage " << ind.obj.damage << "\n";
    chosen.emplace(std::move(plan));
    break;
  }
  if (!chosen) {
    std::cerr << "no strictly safe plan on the front; increase generations\n";
    return 1;
  }
  std::cout << "hardened primitives:";
  for (const auto& ref : chosen->hardenedPrimitives())
    std::cout << ' ' << net.primitiveName(ref);
  std::cout << "\n\nverified by simulation: both AVFS controllers remain "
               "settable under every remaining single fault\n";
  return 0;
}

// rrsn_tool — command-line driver for the robust-RSN library.
//
//   rrsn_tool info    <netlist>                  network statistics + SP check
//   rrsn_tool dot     <netlist>                  Graphviz DOT of the graph model
//   rrsn_tool tree    <netlist>                  annotated decomposition tree
//   rrsn_tool analyze <netlist> [options]        criticality report (top k)
//   rrsn_tool harden  <netlist> [options]        SPEA-2 Pareto front + plans
//   rrsn_tool access  <netlist> <instrument> [--fault F]
//                                                retarget an access, print CSU
//                                                patterns (optionally under a
//                                                fault: break:<seg> or
//                                                stuck:<mux>:<branch>)
//   rrsn_tool diagnose <netlist> --fault F       build the fault dictionary and
//                                                diagnose the injected fault.
//                                                --dict-mode probe|batched|
//                                                verify selects the build
//                                                engine (verify cross-checks
//                                                the batched rows against the
//                                                per-probe reference); default
//                                                is RRSN_DICT_MODE / the
//                                                build-type default
//   rrsn_tool campaign <netlist> [options]       fault-injection campaign:
//                                                simulate every (scenario,
//                                                instrument) access, classify
//                                                accessible / recovered /
//                                                reconfigured / lost and
//                                                cross-validate against the
//                                                structural oracles.  --pairs
//                                                runs simultaneous two-fault
//                                                scenarios (stratified sample
//                                                of the pair space) against the
//                                                pair-composed oracle;
//                                                --transient runs one-shot CSU
//                                                upsets (--transient-rounds
//                                                0,1,...) with a recovery
//                                                re-probe after reconfiguring.
//                                                Options: --sample N,
//                                                --sample-fraction F,
//                                                --deadline-ms N,
//                                                --checkpoint file, --batch N,
//                                                --csv file, --json file,
//                                                --max-reroutes N, --no-reroute
//   rrsn_tool bench   <name>                     emit a Table-I benchmark as a
//                                                netlist on stdout
//   rrsn_tool certify <netlist> [options]        static robustness certifier:
//                                                fixpoint dataflow proof of
//                                                per-instrument accessibility
//                                                under every single structural
//                                                fault.  --plan f excludes the
//                                                hardened primitives from the
//                                                fault universe, --top K bounds
//                                                the itemized witness table,
//                                                --json f / --sarif f export
//                                                the verdicts.  Exit 1 when
//                                                any verdict stayed Unknown.
//   rrsn_tool lint    <netlist> [options]        static verification: run the
//                                                rrsn_lint rule registry and
//                                                print a compiler-style report
//                                                (exit 1 on error findings).
//                                                --spec f checks damage
//                                                weights, --plan f checks a
//                                                hardened-set plan, --json f /
//                                                --sarif f export the findings
//                                                (SARIF 2.1.0 for CI)
//
// Common options: --spec <file> (explicit damage weights), --seed N
// (random spec / EA seed), --generations N, --population N, --top K.
// `analyze`, `harden` and `campaign` fail fast on error-severity lint
// findings before doing any work; --no-lint skips that check.
// Every subcommand also accepts --trace <file> (Chrome trace-event JSON
// of the run, for chrome://tracing / Perfetto) and --metrics <file>
// (canonical metrics JSON); both imply profiling and print a timing
// summary to stderr.  Results are byte-identical with and without them.
// `<netlist>` of "-" reads from stdin; "example:fig1" / "example:tiny"
// resolve the built-in example networks.
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <sstream>

#include "benchgen/registry.hpp"
#include "campaign/campaign.hpp"
#include "crit/analyzer.hpp"
#include "diag/diagnosis.hpp"
#include "harden/hardening.hpp"
#include "lint/lint.hpp"
#include "moo/spea2.hpp"
#include "obs/obs.hpp"
#include "rsn/example_networks.hpp"
#include "rsn/graph_view.hpp"
#include "rsn/netlist_io.hpp"
#include "sim/retarget.hpp"
#include "sp/decomposition.hpp"
#include "verify/certifier.hpp"
#include "sp/sp_reduce.hpp"
#include "support/io.hpp"
#include "support/strings.hpp"

namespace {

using namespace rrsn;

struct Options {
  std::string command;
  std::vector<std::string> positional;
  std::optional<std::string> specFile;
  std::optional<std::string> faultText;
  std::optional<std::string> dictMode;
  std::optional<std::string> planOut;
  // lint options
  std::optional<std::string> planIn;
  std::optional<std::string> sarifOut;
  bool noLint = false;
  std::uint64_t seed = 2022;
  std::size_t generations = 300;
  std::size_t population = 100;
  std::size_t top = 10;
  // campaign options
  bool pairs = false;
  bool transientMode = false;
  std::size_t sample = 0;
  double sampleFraction = 0.0;
  std::optional<std::vector<std::uint32_t>> transientRounds;
  std::size_t deadlineMs = 0;
  std::size_t batch = 32;
  std::size_t maxReroutes = 8;
  bool noReroute = false;
  std::optional<std::string> checkpoint;
  std::optional<std::string> csvOut;
  std::optional<std::string> jsonOut;
  // observability (any subcommand)
  std::optional<std::string> traceOut;
  std::optional<std::string> metricsOut;
};

const char* usageText() {
  return
      "usage: rrsn_tool <info|dot|tree|analyze|harden|access|diagnose|"
      "campaign|bench|lint|certify> <netlist|name> [args] [--spec file] "
      "[--fault F] "
      "[--seed N] [--generations N] [--population N] [--top K] "
      "[--plan-out file] [--pairs] [--transient] [--transient-rounds list] "
      "[--sample N] [--sample-fraction F] [--deadline-ms N] "
      "[--checkpoint file] "
      "[--batch N] [--csv file] [--json file] [--max-reroutes N] "
      "[--no-reroute] [--trace file] [--metrics file] [--plan file] "
      "[--sarif file] [--no-lint] [--dict-mode probe|batched|verify]\n";
}

[[noreturn]] void usage() {
  std::cerr << usageText();
  std::exit(2);
}

Options parseArgs(int argc, char** argv) {
  Options opt;
  if (argc < 3) usage();
  opt.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    // Both "--opt value" and "--opt=value" are accepted for every
    // value-taking option.
    std::optional<std::string> inlineValue;
    if (arg.size() > 2 && arg[0] == '-' && arg[1] == '-') {
      const auto eq = arg.find('=');
      if (eq != std::string::npos) {
        inlineValue = arg.substr(eq + 1);
        arg.resize(eq);
      }
    }
    const auto value = [&]() -> std::string {
      if (inlineValue) return *inlineValue;
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (arg == "--spec") opt.specFile = value();
    else if (arg == "--plan-out") opt.planOut = value();
    else if (arg == "--plan") opt.planIn = value();
    else if (arg == "--sarif") opt.sarifOut = value();
    else if (arg == "--no-lint") opt.noLint = true;
    else if (arg == "--fault") opt.faultText = value();
    else if (arg == "--dict-mode") opt.dictMode = value();
    // All numeric options go through the strict bounded parser: the
    // whole string must be digits and the value must be in range, or a
    // UsageError surfaces the message next to the usage text (exit 1).
    // The same helper validates rrsn_serve request fields.
    else if (arg == "--seed")
      opt.seed = parseUintBounded(value(), "--seed", 0,
                                  std::numeric_limits<std::uint64_t>::max());
    else if (arg == "--generations")
      opt.generations = parseUintBounded(value(), "--generations", 1, 1000000);
    else if (arg == "--population")
      opt.population = parseUintBounded(value(), "--population", 1, 1000000);
    else if (arg == "--top")
      opt.top = parseUintBounded(value(), "--top", 1, 1000000);
    else if (arg == "--pairs") opt.pairs = true;
    else if (arg == "--transient") opt.transientMode = true;
    else if (arg == "--transient-rounds") {
      std::vector<std::uint32_t> rounds;
      for (const std::string& part : split(value(), ','))
        rounds.push_back(static_cast<std::uint32_t>(
            parseUintBounded(part, "--transient-rounds", 0, 1000000)));
      opt.transientRounds = std::move(rounds);
    }
    else if (arg == "--sample")
      opt.sample = parseUintBounded(value(), "--sample", 0, 100000000);
    else if (arg == "--sample-fraction")
      opt.sampleFraction = parseDouble(value(), "--sample-fraction");
    else if (arg == "--deadline-ms")
      opt.deadlineMs = parseUintBounded(value(), "--deadline-ms", 0, 86400000);
    else if (arg == "--batch")
      opt.batch = parseUintBounded(value(), "--batch", 1, 1000000);
    else if (arg == "--max-reroutes")
      opt.maxReroutes = parseUintBounded(value(), "--max-reroutes", 0, 1000000);
    else if (arg == "--no-reroute") opt.noReroute = true;
    else if (arg == "--checkpoint") opt.checkpoint = value();
    else if (arg == "--csv") opt.csvOut = value();
    else if (arg == "--json") opt.jsonOut = value();
    else if (arg == "--trace") opt.traceOut = value();
    else if (arg == "--metrics") opt.metricsOut = value();
    else if (!arg.empty() && arg[0] == '-' && arg != "-") usage();
    else opt.positional.push_back(arg);
    if (inlineValue && (arg == "--no-reroute" || arg == "--no-lint" ||
                        arg == "--pairs" || arg == "--transient" ||
                        arg[0] != '-'))
      usage();
  }
  if (opt.positional.empty()) usage();
  return opt;
}

/// Flushes and verifies an output stream after writing a report; an
/// ofstream swallows ENOSPC/EPIPE silently until checked.
void checkStreamWrite(std::ostream& out, const std::string& what) {
  out.flush();
  if (!out) throw IoError("short write to " + what);
}

rsn::Network loadNetwork(const std::string& path) {
  if (path == "-") return rsn::parseNetlist(std::cin);
  // `example:<name>` resolves the built-in example networks, so every
  // command (campaign in particular) can run on them without a file.
  if (path == "example:fig1") return rsn::makeFig1Network();
  if (path == "example:tiny") return rsn::makeTinyNetwork();
  std::ifstream in(path);
  if (!in) throw Error("cannot open netlist '" + path + "'");
  return rsn::parseNetlist(in);
}

rsn::CriticalitySpec loadSpec(const Options& opt, const rsn::Network& net) {
  if (opt.specFile) {
    std::ifstream in(*opt.specFile);
    if (!in) throw Error("cannot open spec '" + *opt.specFile + "'");
    return rsn::readSpec(in, net);
  }
  Rng rng(opt.seed);
  return rsn::randomSpec(net, {}, rng);
}

fault::Fault parseFault(const rsn::Network& net, const std::string& text) {
  const auto parts = split(text, ':');
  if (parts.size() == 2 && parts[0] == "break") {
    const rsn::SegmentId seg = net.findSegment(parts[1]);
    RRSN_CHECK(seg != rsn::kNone, "unknown segment '" + parts[1] + "'");
    return fault::Fault::segmentBreak(seg);
  }
  if (parts.size() == 3 && parts[0] == "stuck") {
    const rsn::MuxId mux = net.findMux(parts[1]);
    RRSN_CHECK(mux != rsn::kNone, "unknown mux '" + parts[1] + "'");
    return fault::Fault::muxStuck(
        mux, static_cast<std::uint32_t>(parseUnsigned(parts[2], "branch")));
  }
  throw ParseError("--fault expects break:<segment> or stuck:<mux>:<branch>");
}

int cmdInfo(const Options& opt) {
  const rsn::Network net = loadNetwork(opt.positional[0]);
  const rsn::NetworkStats s = net.stats();
  std::cout << "network:       " << net.name() << '\n'
            << "segments:      " << s.segments << '\n'
            << "multiplexers:  " << s.muxes << '\n'
            << "instruments:   " << s.instruments << '\n'
            << "scan cells:    " << s.scanCells << '\n'
            << "mux nesting:   " << s.maxMuxNesting << '\n';
  const rsn::GraphView gv = rsn::buildGraphView(net);
  const auto check = sp::checkSeriesParallel(gv.graph, gv.scanIn, gv.scanOut);
  std::cout << "series-parallel: " << (check.isSeriesParallel ? "yes" : "no")
            << '\n';
  const auto tree = sp::DecompositionTree::build(net);
  std::cout << "decomposition tree: " << tree.nodeCount() << " nodes, depth "
            << tree.depth() << '\n';
  return 0;
}

int cmdDot(const Options& opt) {
  std::cout << rsn::toDot(loadNetwork(opt.positional[0]));
  return 0;
}

int cmdTree(const Options& opt) {
  const rsn::Network net = loadNetwork(opt.positional[0]);
  auto tree = sp::DecompositionTree::build(net);
  tree.annotate(loadSpec(opt, net));
  std::cout << tree.toAscii();
  return 0;
}

int cmdAnalyze(const Options& opt) {
  const rsn::Network net = loadNetwork(opt.positional[0]);
  const auto spec = loadSpec(opt, net);
  crit::AnalysisOptions options;
  options.lint = !opt.noLint;
  const auto analysis = crit::CriticalityAnalyzer(net, spec, options).run();
  std::cout << "accumulated single-defect damage (nothing hardened): "
            << withThousands(analysis.totalDamage()) << "\n\n"
            << analysis.report(opt.top);
  return 0;
}

int cmdHarden(const Options& opt) {
  const rsn::Network net = loadNetwork(opt.positional[0]);
  const auto spec = loadSpec(opt, net);
  crit::AnalysisOptions critOptions;
  critOptions.lint = !opt.noLint;
  const auto analysis = crit::CriticalityAnalyzer(net, spec, critOptions).run();
  const auto problem = harden::HardeningProblem::assemble(net, analysis);
  moo::EvolutionOptions options;
  options.populationSize = opt.population;
  options.generations = opt.generations;
  options.seed = opt.seed;
  const auto result = moo::runSpea2(problem.linear, options);

  std::cout << "max cost " << withThousands(problem.maxCost)
            << ", max damage " << withThousands(problem.maxDamage)
            << ", Pareto front with " << result.archive.size()
            << " solutions:\n";
  for (const moo::Individual& ind : result.archive.members())
    std::cout << "  cost " << withThousands(ind.obj.cost) << "  damage "
              << withThousands(ind.obj.damage) << '\n';
  const auto sols = harden::extractPaperSolutions(result.archive, problem);
  if (sols.minCost) {
    const harden::HardeningPlan plan(net, sols.minCost->genome);
    std::cout << "\nmin cost @ damage <= 10%:\n" << plan.report(analysis);
    if (opt.planOut) {
      std::ofstream out(*opt.planOut);
      RRSN_CHECK(static_cast<bool>(out),
                 "cannot write plan '" + *opt.planOut + "'");
      harden::writePlan(out, plan);
      checkStreamWrite(out, "plan '" + *opt.planOut + "'");
      std::cout << "plan written to " << *opt.planOut << '\n';
    }
  }
  if (sols.minDamage) {
    std::cout << "\nmin damage @ cost <= 10%:\n"
              << harden::HardeningPlan(net, sols.minDamage->genome)
                     .report(analysis);
  }
  return 0;
}

int cmdAccess(const Options& opt) {
  if (opt.positional.size() < 2) usage();
  const rsn::Network net = loadNetwork(opt.positional[0]);
  const rsn::InstrumentId inst = net.findInstrument(opt.positional[1]);
  RRSN_CHECK(inst != rsn::kNone,
             "unknown instrument '" + opt.positional[1] + "'");
  sim::ScanSimulator simulator(net);
  if (opt.faultText) simulator.injectFault(parseFault(net, *opt.faultText));
  sim::Retargeter rt(simulator);
  simulator.setInstrumentValue(
      inst, sim::accessMarker(net.segment(net.instrument(inst).segment).length));
  const auto res = rt.readInstrument(inst);
  std::cout << "read " << net.instrument(inst).name << ": "
            << (res.success ? "OK" : "INACCESSIBLE") << " (" << res.rounds
            << " CSU rounds)\n";
  for (std::size_t k = 0; k < res.patterns.size(); ++k) {
    std::cout << "  csu[" << k << "] in  " << toString(res.patterns[k].shiftIn)
              << "\n  csu[" << k << "] out " << toString(res.patterns[k].shiftOut)
              << '\n';
  }
  return res.success ? 0 : 1;
}

diag::DictMode parseDictMode(const std::string& text) {
  if (text == "probe") return diag::DictMode::Probe;
  if (text == "batched") return diag::DictMode::Batched;
  if (text == "verify") return diag::DictMode::Verify;
  throw Error("unknown --dict-mode '" + text +
              "' (expected probe, batched or verify)");
}

int cmdDiagnose(const Options& opt) {
  const rsn::Network net = loadNetwork(opt.positional[0]);
  RRSN_CHECK(opt.faultText.has_value(), "diagnose requires --fault");
  const fault::Fault f = parseFault(net, *opt.faultText);
  const auto dict = opt.dictMode
                        ? diag::FaultDictionary::build(
                              net, parseDictMode(*opt.dictMode))
                        : diag::FaultDictionary::build(net);
  const auto observed = diag::FaultDictionary::measure(net, &f);
  const auto d = dict.diagnose(observed);
  std::cout << "injected: " << fault::describe(net, f) << '\n'
            << "dictionary engine: " << diag::dictModeName(dict.mode())
            << '\n';
  if (d.faultFree) {
    std::cout << "syndrome is fault-free: the defect is undetectable by "
                 "instrument accesses\n";
    return 0;
  }
  std::cout << "candidates (" << d.exactMatches.size() << "):";
  for (const auto& c : d.exactMatches) std::cout << ' ' << describe(net, c);
  std::cout << '\n';
  const auto r = dict.resolution();
  std::cout << "dictionary: " << r.faults << " faults, " << r.detectable
            << " detectable, " << r.classes << " classes, avg ambiguity "
            << r.avgAmbiguity << '\n';
  return 0;
}

int cmdCampaign(const Options& opt) {
  const rsn::Network net = loadNetwork(opt.positional[0]);

  if (opt.pairs && opt.transientMode) {
    std::cerr << "rrsn_tool: --pairs and --transient are mutually exclusive\n";
    return 2;
  }
  campaign::CampaignConfig config;
  if (opt.pairs) config.mode = campaign::CampaignMode::Pairs;
  if (opt.transientMode) config.mode = campaign::CampaignMode::Transient;
  config.sample = opt.sample;
  config.sampleFraction = opt.sampleFraction;
  if (opt.transientRounds) config.transientRounds = *opt.transientRounds;
  config.seed = opt.seed;
  config.retarget.allowReroute = !opt.noReroute;
  config.retarget.maxReroutes = opt.maxReroutes;
  config.checkpointEvery = opt.batch;
  config.lint = !opt.noLint;
  if (opt.checkpoint) config.checkpointPath = *opt.checkpoint;

  // The CLI keeps its historical "0 = no deadline" contract; the config
  // layer spells that kNoDeadline and rejects a literal 0.
  if (opt.deadlineMs != 0)
    config.deadlineMs = static_cast<std::uint64_t>(opt.deadlineMs);
  config.progress = [](std::size_t done, std::size_t total) {
    std::cerr << "campaign: " << done << "/" << total << " scenarios\n";
  };

  campaign::CampaignEngine engine(net, std::move(config));
  const campaign::CampaignResult result = engine.run();
  const campaign::CampaignSummary s = result.summary();

  std::cout << "network: " << net.name() << " — "
            << campaign::campaignModeName(result.mode) << " campaign, "
            << s.faultsDone << "/" << s.faultsTotal << " scenarios x "
            << s.instruments << " instruments\n\n"
            << campaign::summaryTable(s).render() << '\n';
  if (result.mode != campaign::CampaignMode::Single) {
    std::cout << '\n' << campaign::robustnessTable(result.robustness()).render();
  }
  const auto items = result.mismatches();
  if (!items.empty()) {
    std::cout << "\nexpected-vs-simulated MISMATCHES (" << items.size()
              << "; these indicate an engine or analysis bug):\n"
              << campaign::mismatchTable(net, items).render();
  } else if (s.faultsDone > 0) {
    std::cout << "\nno expected-vs-simulated mismatches\n";
  }
  const auto interactions = result.pairInteractions();
  if (!interactions.empty()) {
    std::cout << "\npair interaction effects vs the composed single-fault "
                 "oracle ("
              << interactions.size()
              << "; compounded = composition predicted access, masked = "
                 "composition predicted loss):\n"
              << campaign::mismatchTable(net, interactions).render();
  }
  const auto gaps = result.structuralGaps();
  if (!gaps.empty()) {
    std::cout << "\ncontrol-dependency gaps vs the plain structural oracle ("
              << gaps.size() << "; documented, itemized):\n"
              << campaign::mismatchTable(net, gaps).render();
  }
  if (s.oracleDisagreements != 0) {
    std::cout << "\nWARNING: tree and graph oracles disagreed on "
              << s.oracleDisagreements << " (fault, instrument) pairs\n";
  }

  if (opt.csvOut) {
    std::ofstream out(*opt.csvOut);
    RRSN_CHECK(static_cast<bool>(out),
               "cannot write csv '" + *opt.csvOut + "'");
    out << campaign::outcomeTable(net, result).renderCsv();
    checkStreamWrite(out, "csv '" + *opt.csvOut + "'");
    std::cout << "\nper-fault outcomes written to " << *opt.csvOut << '\n';
  }
  if (opt.jsonOut) {
    std::ofstream out(*opt.jsonOut);
    RRSN_CHECK(static_cast<bool>(out),
               "cannot write json '" + *opt.jsonOut + "'");
    out << json::serialize(campaign::reportJson(net, result), 1) << '\n';
    checkStreamWrite(out, "json '" + *opt.jsonOut + "'");
    std::cout << "report written to " << *opt.jsonOut << '\n';
  }
  if (!s.complete()) {
    std::cout << "\ncampaign interrupted by deadline after " << s.faultsDone
              << "/" << s.faultsTotal << " scenarios";
    if (opt.checkpoint)
      std::cout << "; rerun with the same --checkpoint to resume";
    std::cout << '\n';
    return 1;
  }
  return 0;
}

int cmdBench(const Options& opt) {
  // Accepts the Table-I benchmark names and, for symmetry with the other
  // subcommands, the built-in "example:*" networks.
  const std::string& name = opt.positional[0];
  const rsn::Network net = startsWith(name, "example:")
                               ? loadNetwork(name)
                               : benchgen::buildBenchmark(name);
  rsn::writeNetlist(std::cout, net);
  return 0;
}

int cmdLint(const Options& opt) {
  const std::string& path = opt.positional[0];
  lint::LintResult result;
  rsn::NetlistSources sources;
  std::optional<rsn::Network> net;
  if (path == "example:fig1") {
    net = rsn::makeFig1Network();
  } else if (path == "example:tiny") {
    net = rsn::makeTinyNetwork();
  } else if (path == "-") {
    net = lint::parseForLint(std::cin, sources, result);
  } else {
    std::ifstream in(path);
    if (!in) throw Error("cannot open netlist '" + path + "'");
    net = lint::parseForLint(in, sources, result);
  }

  std::optional<rsn::CriticalitySpec> spec;
  std::vector<std::string> planNames;
  if (net) {
    if (opt.specFile) {
      std::ifstream in(*opt.specFile);
      if (!in) throw Error("cannot open spec '" + *opt.specFile + "'");
      spec = lint::lintSpec(in, *net, result);
    }
    if (opt.planIn) {
      std::ifstream in(*opt.planIn);
      if (!in) throw Error("cannot open plan '" + *opt.planIn + "'");
      planNames = lint::readPlanNames(in);
    }
    lint::LintOptions options;
    options.sources = &sources;
    if (spec) options.spec = &*spec;
    if (opt.planIn) options.hardenedNames = &planNames;
    lint::LintResult model = lint::runLint(*net, options);
    for (lint::Finding& f : model.findings) result.add(std::move(f));
  }
  result.sort();

  const std::string artifact = path == "-" ? "<stdin>" : path;
  std::cout << lint::textReport(result, artifact);
  if (opt.jsonOut) {
    std::ofstream out(*opt.jsonOut);
    RRSN_CHECK(static_cast<bool>(out),
               "cannot write json '" + *opt.jsonOut + "'");
    out << json::serialize(lint::jsonReport(result, artifact), 1) << '\n';
    checkStreamWrite(out, "json '" + *opt.jsonOut + "'");
  }
  if (opt.sarifOut) {
    std::ofstream out(*opt.sarifOut);
    RRSN_CHECK(static_cast<bool>(out),
               "cannot write sarif '" + *opt.sarifOut + "'");
    out << json::serialize(lint::sarifReport(result, artifact), 1) << '\n';
    checkStreamWrite(out, "sarif '" + *opt.sarifOut + "'");
  }
  return result.clean() ? 0 : 1;
}

/// Resolves a hardening plan (one primitive name per line, the
/// harden::writePlan format) to the linear-id exclusion bitset the
/// certifier expects: a hardened primitive cannot fail, so its faults
/// leave the universe.
DynamicBitset loadExclusions(const rsn::Network& net,
                             const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open plan '" + path + "'");
  DynamicBitset excluded(net.primitiveCount());
  for (const std::string& name : lint::readPlanNames(in)) {
    const rsn::SegmentId seg = net.findSegment(name);
    if (seg != rsn::kNone) {
      excluded.set(net.linearId({rsn::PrimitiveRef::Kind::Segment, seg}));
      continue;
    }
    const rsn::MuxId mux = net.findMux(name);
    RRSN_CHECK(mux != rsn::kNone,
               "plan names unknown primitive '" + name + "'");
    excluded.set(net.linearId({rsn::PrimitiveRef::Kind::Mux, mux}));
  }
  return excluded;
}

int cmdCertify(const Options& opt) {
  const rsn::Network net = loadNetwork(opt.positional[0]);
  if (!opt.noLint) lint::enforceClean(net, "certification");

  verify::CertifyOptions options;
  if (opt.planIn) options.excludePrimitives = loadExclusions(net, *opt.planIn);
  options.crossCheck = verify::crossCheckDefault();

  const verify::Certifier certifier(net);
  const verify::CertificationResult result = certifier.run(options);
  const verify::CertifySummary s = result.summary();

  std::cout << "network: " << net.name() << " — "
            << withThousands(std::uint64_t{s.faults}) << " faults x "
            << withThousands(std::uint64_t{s.instruments})
            << " instruments, " << s.reachableInstruments << "/"
            << s.instruments << " reachable fault-free\n"
            << "tiers: " << withThousands(std::uint64_t{s.fastRows})
            << " rows fast, " << withThousands(std::uint64_t{s.fixpointRows})
            << " rows fixpoint, "
            << withThousands(std::uint64_t{s.crossCheckedRows})
            << " rows cross-checked against the syndrome oracle\n\n"
            << verify::summaryTable(s).render();
  if (s.vulnerableRead + s.vulnerableWrite + s.unknownCells() > 0) {
    std::cout << '\n'
              << verify::vulnerabilityTable(net, result, opt.top).render();
  }
  if (s.unknownCells() > 0) {
    std::cout << "\nWARNING: " << s.unknownCells()
              << " verdicts exhausted the fixpoint budget (Unknown) — the "
                 "certification is incomplete\n";
  }

  if (opt.jsonOut) {
    std::ofstream out(*opt.jsonOut);
    RRSN_CHECK(static_cast<bool>(out),
               "cannot write json '" + *opt.jsonOut + "'");
    out << json::serialize(verify::reportJson(net, result), 1) << '\n';
    checkStreamWrite(out, "json '" + *opt.jsonOut + "'");
    std::cout << "report written to " << *opt.jsonOut << '\n';
  }
  if (opt.sarifOut) {
    std::ofstream out(*opt.sarifOut);
    RRSN_CHECK(static_cast<bool>(out),
               "cannot write sarif '" + *opt.sarifOut + "'");
    const std::string artifact =
        opt.positional[0] == "-" ? "<stdin>" : opt.positional[0];
    out << json::serialize(verify::sarifReport(net, result, artifact), 1)
        << '\n';
    checkStreamWrite(out, "sarif '" + *opt.sarifOut + "'");
    std::cout << "sarif written to " << *opt.sarifOut << '\n';
  }
  return s.unknownCells() == 0 ? 0 : 1;
}

int dispatch(const Options& opt) {
  if (opt.command == "info") return cmdInfo(opt);
  if (opt.command == "dot") return cmdDot(opt);
  if (opt.command == "tree") return cmdTree(opt);
  if (opt.command == "analyze") return cmdAnalyze(opt);
  if (opt.command == "harden") return cmdHarden(opt);
  if (opt.command == "access") return cmdAccess(opt);
  if (opt.command == "diagnose") return cmdDiagnose(opt);
  if (opt.command == "campaign") return cmdCampaign(opt);
  if (opt.command == "bench") return cmdBench(opt);
  if (opt.command == "lint") return cmdLint(opt);
  if (opt.command == "certify") return cmdCertify(opt);
  usage();
}

/// Writes the requested trace / metrics exports and a timing summary to
/// stderr (stdout carries the command's result and must stay identical
/// with and without profiling).
void exportObservability(const Options& opt) {
  if (!opt.traceOut && !opt.metricsOut && !obs::enabled()) return;
  const obs::Snapshot snap = obs::snapshot();
  if (opt.traceOut) {
    std::ofstream out(*opt.traceOut, std::ios::binary);
    RRSN_CHECK(static_cast<bool>(out),
               "cannot write trace '" + *opt.traceOut + "'");
    out << obs::traceEventJson(snap) << '\n';
    checkStreamWrite(out, "trace '" + *opt.traceOut + "'");
    std::cerr << "trace written to " << *opt.traceOut << '\n';
  }
  if (opt.metricsOut) {
    std::ofstream out(*opt.metricsOut, std::ios::binary);
    RRSN_CHECK(static_cast<bool>(out),
               "cannot write metrics '" + *opt.metricsOut + "'");
    out << json::serialize(obs::metricsJson(snap), 1) << '\n';
    checkStreamWrite(out, "metrics '" + *opt.metricsOut + "'");
    std::cerr << "metrics written to " << *opt.metricsOut << '\n';
  }
  if (opt.traceOut || opt.metricsOut)
    std::cerr << obs::summaryTable(snap).render();
  obs::raiseIfError(obs::checkSpanBalance());
}

}  // namespace

int main(int argc, char** argv) {
  // With SIGPIPE ignored, `rrsn_tool ... | head` makes stdout writes
  // fail with EPIPE (badbit on std::cout) instead of killing the
  // process; the flush check below turns that into a typed error.
  rrsn::io::ignoreSigpipe();
  try {
    const Options opt = parseArgs(argc, argv);
    if (opt.traceOut || opt.metricsOut) obs::enable();
    const int code = dispatch(opt);
    std::cout.flush();
    if (!std::cout) {
      throw rrsn::IoError("stdout write failed (consumer closed the pipe?)");
    }
    exportObservability(opt);
    return code;
  } catch (const rrsn::UsageError& e) {
    std::cerr << "error: " << e.what() << '\n' << usageText();
    return 1;
  } catch (const rrsn::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

// rrsn_serve — long-running analysis daemon.
//
//   rrsn_serve --socket /tmp/rrsn.sock [--cache-dir DIR]
//              [--cache-bytes N] [--deadline-ms N] [--threads N]
//   rrsn_serve --stdio [...]
//
// Speaks the length-prefixed JSON protocol of serve/protocol.hpp.
// --stdio serves exactly one client over stdin/stdout (tests, shells,
// ssh tunnels); --socket accepts any number of concurrent clients on a
// Unix socket.  The process lives until a client sends {"method":
// "shutdown"} or SIGINT/SIGTERM arrives, so the content-addressed
// artifact cache — parsed networks, mmap-adopted flat arenas,
// criticality vectors, fault-dictionary resolutions, Pareto fronts —
// amortizes across every request of a session.
#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>

#include <unistd.h>

#include "obs/obs.hpp"
#include "serve/server.hpp"
#include "support/error.hpp"
#include "support/io.hpp"
#include "support/parallel.hpp"
#include "support/strings.hpp"

namespace {

using rrsn::serve::Server;
using rrsn::serve::ServerOptions;

const char* usageText() {
  return
      "usage: rrsn_serve (--socket PATH | --stdio) [options]\n"
      "\n"
      "transport (exactly one):\n"
      "  --socket PATH     listen on a Unix socket, concurrent clients\n"
      "  --stdio           serve one client over stdin/stdout\n"
      "\n"
      "options:\n"
      "  --cache-dir DIR   disk tier for mmap-adopted flat arenas\n"
      "  --cache-bytes N   artifact cache budget in bytes (default 256 MiB,\n"
      "                    0 = unbounded)\n"
      "  --deadline-ms N   default campaign deadline (default 30000)\n"
      "  --threads N       analysis pool width (default: RRSN_THREADS)\n";
}

struct Options {
  std::string socketPath;
  bool stdio = false;
  ServerOptions server;
  std::uint64_t threads = 0;
};

Options parseArgs(int argc, char** argv) {
  Options opt;
  auto next = [&](int& i, const char* flag) -> std::string {
    if (i + 1 >= argc) {
      throw rrsn::UsageError(std::string(flag) + " needs a value");
    }
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--socket") {
      opt.socketPath = next(i, "--socket");
    } else if (arg == "--stdio") {
      opt.stdio = true;
    } else if (arg == "--cache-dir") {
      opt.server.cacheDir = next(i, "--cache-dir");
    } else if (arg == "--cache-bytes") {
      opt.server.cacheBudgetBytes = static_cast<std::size_t>(
          rrsn::parseUintBounded(next(i, "--cache-bytes"), "--cache-bytes", 0,
                                 std::uint64_t(1) << 40));
    } else if (arg == "--deadline-ms") {
      opt.server.defaultDeadlineMs = rrsn::parseUintBounded(
          next(i, "--deadline-ms"), "--deadline-ms", 1, 86'400'000);
    } else if (arg == "--threads") {
      opt.threads =
          rrsn::parseUintBounded(next(i, "--threads"), "--threads", 1, 256);
    } else {
      throw rrsn::UsageError("unknown option: " + arg);
    }
  }
  if (opt.stdio == !opt.socketPath.empty()) {
    throw rrsn::UsageError("pass exactly one of --socket PATH or --stdio");
  }
  return opt;
}

Server* gServer = nullptr;

void onSignal(int) {
  if (gServer != nullptr) gServer->requestStop();
}

}  // namespace

int main(int argc, char** argv) {
  // A client that disconnects mid-response must surface as a Status on
  // the write path, never kill the daemon.
  rrsn::io::ignoreSigpipe();
  try {
    const Options opt = parseArgs(argc, argv);
    if (opt.threads != 0) {
      rrsn::setThreadCount(static_cast<std::size_t>(opt.threads));
    }
    rrsn::obs::enable();  // per-endpoint counters for the stats endpoint

    Server server(opt.server);
    gServer = &server;
    struct sigaction sa = {};
    sa.sa_handler = onSignal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);

    rrsn::Status st;
    if (opt.stdio) {
      st = server.serveStream(STDIN_FILENO, STDOUT_FILENO);
    } else {
      std::cerr << "rrsn_serve: listening on " << opt.socketPath << '\n';
      st = server.serveSocket(opt.socketPath);
    }
    gServer = nullptr;
    if (!st.ok()) {
      std::cerr << "rrsn_serve: " << st.toString() << '\n';
      return 1;
    }
    return 0;
  } catch (const rrsn::UsageError& e) {
    std::cerr << "error: " << e.what() << '\n' << usageText();
    return 1;
  } catch (const rrsn::Error& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}

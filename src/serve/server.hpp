// Request dispatch core of the rrsn_serve analysis daemon.
//
// The daemon keeps one Server for its whole lifetime; the Server owns
// the content-addressed ArtifactCache (interned networks, flat arenas,
// lint reports, criticality vectors, dictionary resolutions, hardening
// fronts) and the FlatStore disk tier, so repeated requests against the
// same design pay the parse/lower/analyze cost exactly once.
//
// Transports: serveStream() pumps one frame stream sequentially (the
// --stdio test mode and one socket connection); serveSocket() listens
// on a Unix socket and runs serveStream per connection on its own
// thread, so requests from different clients are concurrent.  The heavy
// analysis kernels inside each request additionally fan out on the
// shared support::parallel pool (RRSN_THREADS) — the daemon adds
// connection concurrency on top of, not instead of, data parallelism.
//
// handle() itself never throws: every failure becomes the protocol
// error envelope (UsageError -> INVALID_ARGUMENT, lint::LintError ->
// FAILED_PRECONDITION, expired campaign deadline -> DEADLINE_EXCEEDED,
// anything else -> INTERNAL), so one bad request can never take the
// daemon down.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "serve/cache.hpp"
#include "support/json.hpp"
#include "support/status.hpp"

namespace rrsn::serve {

struct ServerOptions {
  /// ArtifactCache byte budget (0 = unbounded).
  std::size_t cacheBudgetBytes = 256u << 20;
  /// FlatStore directory for mmap-adopted arenas; empty disables the
  /// disk tier (every design lowers in-process once per daemon).
  std::string cacheDir;
  /// Deadline applied to campaign requests that do not pass their own
  /// `deadline_ms`.
  std::uint64_t defaultDeadlineMs = 30'000;
};

class Server {
 public:
  explicit Server(ServerOptions options = {});

  /// Dispatches one request envelope to its endpoint and returns the
  /// response envelope.  Thread-safe; never throws.
  ///
  /// Methods: ping, analyze, lint, harden, campaign, diagnose, whatif
  /// (stub), stats, shutdown.  Every analysis method takes the netlist
  /// text inline in params.netlist; numeric params accept JSON integers
  /// or decimal strings (strings go through the same parseUintBounded
  /// validator as the rrsn_tool command line).
  json::Value handle(const json::Value& request);

  /// Sequential frame loop over a byte stream: read request, handle,
  /// write response, until clean EOF, a transport error, or shutdown.
  /// `inFd`/`outFd` may be the same descriptor (socket) or a pipe pair
  /// (--stdio).  Unparseable request frames get an INVALID_ARGUMENT
  /// response with a null id (the stream stays up).
  Status serveStream(int inFd, int outFd);

  /// Unix-socket listener: binds `path` (replacing a stale socket
  /// file), accepts until shutdown, one serveStream thread per
  /// connection.  Returns once every connection thread has drained.
  Status serveSocket(const std::string& path);

  /// Trips the stop flag: serveSocket stops accepting and serveStream
  /// loops exit after the in-flight response.  Also triggered by the
  /// shutdown method.
  void requestStop() { stop_.store(true, std::memory_order_release); }
  bool stopRequested() const { return stop_.load(std::memory_order_acquire); }

  /// Cache + store counters as a JSON object (the stats endpoint).
  json::Value statsJson() const;

 private:
  json::Value dispatch(const std::string& method, const json::Value& params);

  /// Parses (or recalls) the interned network for raw netlist text.
  struct NetworkEntry;
  std::shared_ptr<const NetworkEntry> internNetwork(const std::string& text);

  std::shared_ptr<const rsn::FlatNetwork> flatOf(const NetworkEntry& entry);

  ServerOptions options_;
  ArtifactCache cache_;
  FlatStore flatStore_;
  std::atomic<bool> stop_{false};
};

}  // namespace rrsn::serve

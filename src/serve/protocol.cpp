#include "serve/protocol.hpp"

#include <cstring>

#include "support/io.hpp"

namespace rrsn::serve {

Status readFrame(int fd, std::string& payload, bool& eof) {
  std::uint8_t prefix[4];
  Status st = io::readExact(fd, prefix, sizeof prefix, eof);
  if (!st.ok() || eof) return st;
  const std::uint32_t length = static_cast<std::uint32_t>(prefix[0]) |
                               (static_cast<std::uint32_t>(prefix[1]) << 8) |
                               (static_cast<std::uint32_t>(prefix[2]) << 16) |
                               (static_cast<std::uint32_t>(prefix[3]) << 24);
  if (length > kMaxFrameBytes)
    return Status::invalidArgument(
        "frame length " + std::to_string(length) + " exceeds the " +
        std::to_string(kMaxFrameBytes) + "-byte cap");
  std::string body(length, '\0');
  bool bodyEof = false;
  st = io::readExact(fd, body.data(), body.size(), bodyEof);
  if (!st.ok()) return st;
  if (bodyEof && length != 0)
    return Status::dataLoss("stream ended inside a frame body");
  payload = std::move(body);
  return Status{};
}

Status writeFrame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes)
    return Status::invalidArgument("response frame exceeds the byte cap");
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::uint8_t prefix[4] = {
      static_cast<std::uint8_t>(length & 0xff),
      static_cast<std::uint8_t>((length >> 8) & 0xff),
      static_cast<std::uint8_t>((length >> 16) & 0xff),
      static_cast<std::uint8_t>((length >> 24) & 0xff),
  };
  Status st = io::writeAll(fd, prefix, sizeof prefix);
  if (!st.ok()) return st;
  return io::writeAll(fd, payload.data(), payload.size());
}

json::Value okResponse(const json::Value& id, json::Value result) {
  json::Object o;
  o["id"] = id;
  o["ok"] = json::Value(true);
  o["result"] = std::move(result);
  return json::Value(std::move(o));
}

json::Value errorResponse(const json::Value& id, const std::string& code,
                          const std::string& message) {
  json::Object err;
  err["code"] = json::Value(code);
  err["message"] = json::Value(message);
  json::Object o;
  o["id"] = id;
  o["ok"] = json::Value(false);
  o["error"] = json::Value(std::move(err));
  return json::Value(std::move(o));
}

}  // namespace rrsn::serve

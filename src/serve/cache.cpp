#include "serve/cache.hpp"

#include <cstdio>
#include <filesystem>

namespace rrsn::serve {

std::shared_ptr<const void> ArtifactCache::get(std::uint64_t fingerprint,
                                               const std::string& kind,
                                               const Verifier& verify) {
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{fingerprint, kind};
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return nullptr;
  }
  if (verify && !verify(it->second.value)) {
    ++collisions_;
    ++misses_;
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lruIt);
    entries_.erase(it);
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lruIt);
  return it->second.value;
}

std::shared_ptr<const void> ArtifactCache::getOrCompute(
    std::uint64_t fingerprint, const std::string& kind,
    const Compute& compute, const Verifier& verify) {
  const Key key{fingerprint, kind};
  for (;;) {
    std::shared_future<std::shared_ptr<const void>> pending;
    std::promise<std::shared_ptr<const void>> promise;
    bool winner = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        if (!verify || verify(it->second.value)) {
          ++hits_;
          lru_.splice(lru_.begin(), lru_, it->second.lruIt);
          return it->second.value;
        }
        // Counted as a collision only; the retry iteration below counts
        // the miss (or coalesces) exactly once.
        ++collisions_;
        bytes_ -= it->second.bytes;
        lru_.erase(it->second.lruIt);
        entries_.erase(it);
      } else if (auto inIt = inflight_.find(key); inIt != inflight_.end()) {
        ++coalesced_;
        pending = inIt->second;
      } else {
        ++misses_;
        inflight_.emplace(key, promise.get_future().share());
        winner = true;
      }
    }
    if (pending.valid()) {
      // Wait outside the lock; the winner's exception (if any)
      // propagates to every coalesced waiter here.
      std::shared_ptr<const void> value = pending.get();
      if (!verify || verify(value)) return value;
      continue;  // collision against the winner's content: recompute
    }
    if (!winner) continue;  // collision path: retry as a fresh miss

    try {
      std::pair<std::shared_ptr<const void>, std::size_t> r = compute();
      put(fingerprint, kind, r.first, r.second);
      {
        // Erase before resolving: a thread arriving in between sees the
        // interned entry (put happened first), never a dead future.
        std::lock_guard<std::mutex> lock(mu_);
        inflight_.erase(key);
      }
      promise.set_value(r.first);
      return r.first;
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        inflight_.erase(key);
      }
      promise.set_exception(std::current_exception());
      throw;
    }
  }
}

void ArtifactCache::put(std::uint64_t fingerprint, const std::string& kind,
                        std::shared_ptr<const void> value, std::size_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{fingerprint, kind};
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_ -= it->second.bytes;
    it->second.value = std::move(value);
    it->second.bytes = bytes;
    bytes_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lruIt);
  } else {
    lru_.push_front(key);
    entries_.emplace(key, Entry{std::move(value), bytes, lru_.begin()});
    bytes_ += bytes;
  }
  evictToBudgetLocked(key);
}

void ArtifactCache::evictToBudgetLocked(const Key& keep) {
  if (byteBudget_ == 0) return;
  while (bytes_ > byteBudget_ && !lru_.empty()) {
    const Key& victim = lru_.back();
    if (victim.fingerprint == keep.fingerprint && victim.kind == keep.kind) {
      break;  // the fresh entry alone exceeds the budget — keep it
    }
    auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

ArtifactCache::Stats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.collisions = collisions_;
  s.coalesced = coalesced_;
  s.bytes = bytes_;
  s.entries = entries_.size();
  s.byteBudget = byteBudget_;
  return s;
}

void ArtifactCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

// ---------------------------------------------------------------- FlatStore

std::string FlatStore::arenaPath(std::uint64_t contentFingerprint) const {
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(contentFingerprint));
  return dir_ + "/" + hex + ".rrsnflat";
}

bool FlatStore::describes(const rsn::FlatNetwork& flat,
                          const rsn::Network& net) {
  return flat.segmentCount() == net.segments().size() &&
         flat.muxCount() == net.muxes().size() &&
         flat.instrumentCount() == net.instruments().size();
}

std::shared_ptr<const rsn::FlatNetwork> FlatStore::loadOrLower(
    std::uint64_t contentFingerprint, const rsn::Network& net) {
  if (dir_.empty()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lowers;
    return rsn::FlatNetwork::lower(net);
  }

  const std::string path = arenaPath(contentFingerprint);
  std::shared_ptr<const rsn::FlatNetwork> mapped;
  if (rsn::FlatNetwork::mapFile(path, mapped).ok()) {
    if (describes(*mapped, net)) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.mapHits;
      return mapped;
    }
    // Stale arena from a different design that hashed to the same name.
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
    mapped.reset();
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }

  std::shared_ptr<const rsn::FlatNetwork> lowered = rsn::FlatNetwork::lower(net);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.lowers;
  }

  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (!lowered->writeTo(path).ok()) return lowered;

  // Re-adopt through mmap so the published file is proven readable and
  // byte-identical (fingerprint equality) before anything relies on it.
  std::shared_ptr<const rsn::FlatNetwork> readback;
  if (rsn::FlatNetwork::mapFile(path, readback).ok() &&
      readback->fingerprint() == lowered->fingerprint() &&
      describes(*readback, net)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.published;
    return readback;
  }
  std::filesystem::remove(path, ec);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.rejected;
  }
  return lowered;
}

FlatStore::Stats FlatStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace rrsn::serve

#include "serve/server.hpp"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "campaign/campaign.hpp"
#include "crit/analyzer.hpp"
#include "diag/diagnosis.hpp"
#include "harden/hardening.hpp"
#include "lint/lint.hpp"
#include "moo/pareto.hpp"
#include "moo/spea2.hpp"
#include "obs/obs.hpp"
#include "rsn/netlist_io.hpp"
#include "rsn/spec.hpp"
#include "serve/protocol.hpp"
#include "support/error.hpp"
#include "verify/certifier.hpp"
#include "support/hash.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"

namespace rrsn::serve {
namespace {

/// Endpoint failure with an explicit protocol error code (the generic
/// exception->code mapping in handle() covers everything else).
struct RequestError {
  std::string code;
  std::string message;
};

std::uint64_t textFingerprint(const std::string& text) {
  std::uint64_t h = hash::kFnvOffset;
  hash::fnvMix(h, text);
  return h;
}

// Per-endpoint observability: request/error counters plus a latency
// histogram (microseconds).  obs metric names must be literals, hence
// the explicit table instead of concatenation.
struct EndpointMetrics {
  obs::MetricId requests, errors, latencyUs;
};

const EndpointMetrics* endpointMetrics(const std::string& method) {
  static const std::map<std::string, EndpointMetrics> kTable = [] {
    std::map<std::string, EndpointMetrics> t;
    t["ping"] = {obs::counter("serve.ping.requests"),
                 obs::counter("serve.ping.errors"),
                 obs::histogram("serve.ping.latency_us")};
    t["analyze"] = {obs::counter("serve.analyze.requests"),
                    obs::counter("serve.analyze.errors"),
                    obs::histogram("serve.analyze.latency_us")};
    t["lint"] = {obs::counter("serve.lint.requests"),
                 obs::counter("serve.lint.errors"),
                 obs::histogram("serve.lint.latency_us")};
    t["harden"] = {obs::counter("serve.harden.requests"),
                   obs::counter("serve.harden.errors"),
                   obs::histogram("serve.harden.latency_us")};
    t["campaign"] = {obs::counter("serve.campaign.requests"),
                     obs::counter("serve.campaign.errors"),
                     obs::histogram("serve.campaign.latency_us")};
    t["diagnose"] = {obs::counter("serve.diagnose.requests"),
                     obs::counter("serve.diagnose.errors"),
                     obs::histogram("serve.diagnose.latency_us")};
    t["whatif"] = {obs::counter("serve.whatif.requests"),
                   obs::counter("serve.whatif.errors"),
                   obs::histogram("serve.whatif.latency_us")};
    t["certify"] = {obs::counter("serve.certify.requests"),
                    obs::counter("serve.certify.errors"),
                    obs::histogram("serve.certify.latency_us")};
    t["stats"] = {obs::counter("serve.stats.requests"),
                  obs::counter("serve.stats.errors"),
                  obs::histogram("serve.stats.latency_us")};
    t["shutdown"] = {obs::counter("serve.shutdown.requests"),
                     obs::counter("serve.shutdown.errors"),
                     obs::histogram("serve.shutdown.latency_us")};
    return t;
  }();
  auto it = kTable.find(method);
  return it == kTable.end() ? nullptr : &it->second;
}

// ------------------------------------------------------ param helpers
//
// Numeric request params accept a JSON integer or a decimal string; the
// string route goes through the same parseUintBounded validator that
// guards the rrsn_tool command line, so "--sample 1e6" and
// {"sample": "1e6"} are rejected with the same wording.

const json::Value& kNullValue() {
  static const json::Value v;
  return v;
}

std::uint64_t uintParam(const json::Value& params, const std::string& key,
                        std::uint64_t fallback, std::uint64_t lo,
                        std::uint64_t hi) {
  const json::Value& v = params.get(key, kNullValue());
  if (v.isNull()) return fallback;
  if (v.kind() == json::Kind::String) {
    return parseUintBounded(v.asString(), "param " + key, lo, hi);
  }
  if (v.kind() != json::Kind::Int) {
    throw UsageError("param " + key + " must be an unsigned integer");
  }
  const std::int64_t i = v.asInt();
  if (i < 0 || static_cast<std::uint64_t>(i) < lo ||
      static_cast<std::uint64_t>(i) > hi) {
    throw UsageError("value out of range for param " + key + ": " +
                     std::to_string(i) + " not in [" + std::to_string(lo) +
                     ", " + std::to_string(hi) + "]");
  }
  return static_cast<std::uint64_t>(i);
}

const std::string& stringParam(const json::Value& params,
                               const std::string& key) {
  const json::Value& v = params.get(key, kNullValue());
  if (v.isNull()) throw UsageError("missing required param: " + key);
  if (v.kind() != json::Kind::String) {
    throw UsageError("param " + key + " must be a string");
  }
  return v.asString();
}

campaign::CampaignMode modeParam(const json::Value& params) {
  const json::Value& v = params.get("mode", kNullValue());
  if (v.isNull()) return campaign::CampaignMode::Single;
  const std::string& name =
      v.kind() == json::Kind::String
          ? v.asString()
          : throw UsageError("param mode must be a string");
  if (name == "single") return campaign::CampaignMode::Single;
  if (name == "pairs") return campaign::CampaignMode::Pairs;
  if (name == "transient") return campaign::CampaignMode::Transient;
  throw UsageError("param mode must be one of single|pairs|transient, got '" +
                   name + "'");
}

// --------------------------------------------------- cached artifacts

/// Plain-data criticality artifact (no pointer back into the network,
/// so cache eviction order can never dangle).
struct CritEntry {
  std::vector<std::uint64_t> damages;
  std::uint64_t total = 0;
  std::vector<std::size_t> ranking;

  std::size_t approxBytes() const {
    return damages.size() * sizeof(std::uint64_t) +
           ranking.size() * sizeof(std::size_t) + 64;
  }
};

struct ResolutionEntry {
  std::size_t faults = 0, detectable = 0, classes = 0;
  double avgAmbiguity = 0.0;
};

struct FrontEntry {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> rows;  ///< cost, damage
  std::uint64_t totalDamage = 0;
};

struct LintEntry {
  std::string rawText;  ///< collision verification
  json::Value report;
  std::size_t reportBytes = 0;
};

struct SummaryEntry {
  json::Value summary;
};

}  // namespace

/// The interned parse of one netlist text: the raw request bytes (for
/// fingerprint-collision verification), the validated model, and the
/// canonical re-serialization whose fingerprint keys every derived
/// artifact (two textual variants of the same design share their flat
/// arena, criticality vectors, dictionary, ...).
struct Server::NetworkEntry {
  std::string rawText;
  rsn::Network net;
  std::string canonicalText;
  std::uint64_t canonicalFp = 0;

  NetworkEntry(std::string raw, rsn::Network n)
      : rawText(std::move(raw)), net(std::move(n)) {}

  std::size_t approxBytes() const {
    return rawText.size() + canonicalText.size() +
           net.segments().size() * 64 + net.muxes().size() * 64 +
           net.instruments().size() * 32 + 512;
  }
};

Server::Server(ServerOptions options)
    : options_(options),
      cache_(options.cacheBudgetBytes),
      flatStore_(options.cacheDir) {}

std::shared_ptr<const Server::NetworkEntry> Server::internNetwork(
    const std::string& text) {
  const std::uint64_t fp = textFingerprint(text);
  const auto verify = [&text](const std::shared_ptr<const void>& v) {
    return static_cast<const NetworkEntry*>(v.get())->rawText == text;
  };
  return cache_.getOrComputeAs<NetworkEntry>(
      fp, "network",
      [&]() -> std::pair<std::shared_ptr<const NetworkEntry>, std::size_t> {
        auto parsed = [&]() -> rsn::Network {
          try {
            return rsn::parseNetlistString(text);
          } catch (const Error& e) {
            throw UsageError(std::string("netlist rejected: ") + e.what());
          }
        }();
        auto entry = std::make_shared<NetworkEntry>(text, std::move(parsed));
        entry->canonicalText = rsn::netlistToString(entry->net);
        entry->canonicalFp = textFingerprint(entry->canonicalText);
        return {entry, entry->approxBytes()};
      },
      verify);
}

std::shared_ptr<const rsn::FlatNetwork> Server::flatOf(
    const NetworkEntry& entry) {
  return cache_.getOrComputeAs<rsn::FlatNetwork>(
      entry.canonicalFp, "flat",
      [&]()
          -> std::pair<std::shared_ptr<const rsn::FlatNetwork>, std::size_t> {
        auto flat = flatStore_.loadOrLower(entry.canonicalFp, entry.net);
        return {flat, flat->bytes().size()};
      });
}

json::Value Server::dispatch(const std::string& method,
                             const json::Value& params) {
  if (method == "ping") {
    json::Object o;
    o["pong"] = json::Value(true);
    return json::Value(std::move(o));
  }

  if (method == "stats") return statsJson();

  if (method == "shutdown") {
    requestStop();
    json::Object o;
    o["stopping"] = json::Value(true);
    return json::Value(std::move(o));
  }

  if (method == "lint") {
    const std::string& text = stringParam(params, "netlist");
    const std::uint64_t fp = textFingerprint(text);
    const auto verify = [&text](const std::shared_ptr<const void>& v) {
      return static_cast<const LintEntry*>(v.get())->rawText == text;
    };
    const auto hit = cache_.getOrComputeAs<LintEntry>(
        fp, "lint",
        [&]() -> std::pair<std::shared_ptr<const LintEntry>, std::size_t> {
          auto fresh = std::make_shared<LintEntry>();
          fresh->rawText = text;
          const lint::LintedNetlist linted = lint::lintNetlistText(text);
          fresh->report = lint::jsonReport(linted.result, "<request>");
          fresh->reportBytes = json::serialize(fresh->report).size();
          return {fresh, text.size() + fresh->reportBytes + 64};
        },
        verify);
    return hit->report;
  }

  if (method != "analyze" && method != "harden" && method != "diagnose" &&
      method != "campaign" && method != "certify" && method != "whatif") {
    throw RequestError{"UNIMPLEMENTED", "unknown method: " + method};
  }

  // Every remaining endpoint analyzes a parsed network.
  const auto entry = internNetwork(stringParam(params, "netlist"));

  if (method == "whatif") {
    // Validation first (netlist parse above, change shape here), so a
    // malformed request is INVALID_ARGUMENT — never a cheery stub
    // acknowledgement of garbage.
    const std::string& change = stringParam(params, "change");
    const auto parts = split(change, ':');
    const bool isBreak = parts.size() == 2 && parts[0] == "break";
    const bool isStuck = parts.size() == 3 && parts[0] == "stuck";
    if (!isBreak && !isStuck) {
      throw UsageError(
          "param change must be break:<segment> or stuck:<mux>:<branch>, "
          "got '" + change + "'");
    }
    if (isBreak && entry->net.findSegment(parts[1]) == rsn::kNone) {
      throw UsageError("param change names unknown segment '" + parts[1] +
                       "'");
    }
    if (isStuck) {
      const rsn::MuxId mux = entry->net.findMux(parts[1]);
      if (mux == rsn::kNone) {
        throw UsageError("param change names unknown mux '" + parts[1] + "'");
      }
      const auto flat = flatOf(*entry);
      (void)parseUintBounded(parts[2], "param change branch", 0,
                             flat->muxArity()[mux] - 1);
    }
    // Placeholder until the incremental delta-update engine lands (see
    // ROADMAP "what-if" item): acknowledges the validated request shape
    // without pretending to compute anything.
    json::Object o;
    o["stub"] = json::Value(true);
    o["change"] = json::Value(change);
    o["note"] = json::Value(
        "what-if re-analysis is not implemented yet; full analyze runs "
        "are cached per design, so re-submitting the edited netlist is "
        "the supported path");
    return json::Value(std::move(o));
  }

  if (method == "analyze") {
    const std::uint64_t seed = uintParam(params, "seed", 1, 0, ~0ull);
    const std::uint64_t top = uintParam(params, "top", 10, 1, 1'000'000);
    const std::string key = "crit:" + std::to_string(seed);
    const auto crit = cache_.getOrComputeAs<CritEntry>(
        entry->canonicalFp, key,
        [&]() -> std::pair<std::shared_ptr<const CritEntry>, std::size_t> {
          Rng rng(seed);
          const rsn::CriticalitySpec spec =
              rsn::randomSpec(entry->net, {}, rng);
          const crit::CriticalityResult result =
              crit::CriticalityAnalyzer(entry->net, spec).run();
          auto fresh = std::make_shared<CritEntry>();
          fresh->damages = result.damages();
          fresh->total = result.totalDamage();
          fresh->ranking = result.ranking();
          return {fresh, fresh->approxBytes()};
        });
    const auto flat = flatOf(*entry);

    json::Object o;
    o["segments"] = json::Value(std::uint64_t(entry->net.segments().size()));
    o["muxes"] = json::Value(std::uint64_t(entry->net.muxes().size()));
    o["instruments"] =
        json::Value(std::uint64_t(entry->net.instruments().size()));
    o["total_damage"] = json::Value(crit->total);
    o["flat_fingerprint"] = json::Value(flat->fingerprint());
    json::Array ranking;
    const std::size_t k =
        std::min<std::size_t>(top, crit->ranking.size());
    for (std::size_t i = 0; i < k; ++i) {
      json::Object row;
      row["linear_id"] = json::Value(std::uint64_t(crit->ranking[i]));
      row["damage"] = json::Value(crit->damages[crit->ranking[i]]);
      ranking.push_back(json::Value(std::move(row)));
    }
    o["ranking"] = json::Value(std::move(ranking));
    return json::Value(std::move(o));
  }

  if (method == "harden") {
    const std::uint64_t seed = uintParam(params, "seed", 1, 0, ~0ull);
    const std::uint64_t generations =
        uintParam(params, "generations", 16, 1, 1'000'000);
    const std::uint64_t population =
        uintParam(params, "population", 32, 2, 1'000'000);
    const std::string key = "harden:" + std::to_string(seed) + ":" +
                            std::to_string(generations) + ":" +
                            std::to_string(population);
    const auto front = cache_.getOrComputeAs<FrontEntry>(
        entry->canonicalFp, key,
        [&]() -> std::pair<std::shared_ptr<const FrontEntry>, std::size_t> {
          Rng rng(seed);
          const rsn::CriticalitySpec spec =
              rsn::randomSpec(entry->net, {}, rng);
          const crit::CriticalityResult analysis =
              crit::CriticalityAnalyzer(entry->net, spec).run();
          const auto flat = flatOf(*entry);
          const harden::HardeningProblem problem =
              harden::HardeningProblem::assemble(entry->net, *flat, analysis);
          moo::EvolutionOptions eo;
          eo.populationSize = population;
          eo.generations = generations;
          eo.seed = seed;
          const moo::RunResult run = moo::runSpea2(problem.linear, eo);
          auto fresh = std::make_shared<FrontEntry>();
          fresh->totalDamage = analysis.totalDamage();
          for (const moo::Individual& ind : run.archive.members()) {
            fresh->rows.emplace_back(ind.obj.cost, ind.obj.damage);
          }
          return {fresh, fresh->rows.size() * 16 + 64};
        });
    json::Object o;
    o["total_damage"] = json::Value(front->totalDamage);
    o["front_size"] = json::Value(std::uint64_t(front->rows.size()));
    json::Array rows;
    for (const auto& [cost, damage] : front->rows) {
      json::Object row;
      row["cost"] = json::Value(cost);
      row["damage"] = json::Value(damage);
      rows.push_back(json::Value(std::move(row)));
    }
    o["front"] = json::Value(std::move(rows));
    return json::Value(std::move(o));
  }

  if (method == "diagnose") {
    const auto res = cache_.getOrComputeAs<ResolutionEntry>(
        entry->canonicalFp, "dict",
        [&]()
            -> std::pair<std::shared_ptr<const ResolutionEntry>, std::size_t> {
          const diag::FaultDictionary dict =
              diag::FaultDictionary::build(entry->net);
          const auto r = dict.resolution();
          auto fresh = std::make_shared<ResolutionEntry>();
          fresh->faults = r.faults;
          fresh->detectable = r.detectable;
          fresh->classes = r.classes;
          fresh->avgAmbiguity = r.avgAmbiguity;
          return {fresh, sizeof(ResolutionEntry)};
        });
    json::Object o;
    o["faults"] = json::Value(std::uint64_t(res->faults));
    o["detectable"] = json::Value(std::uint64_t(res->detectable));
    o["classes"] = json::Value(std::uint64_t(res->classes));
    o["avg_ambiguity"] = json::Value(res->avgAmbiguity);
    return json::Value(std::move(o));
  }

  if (method == "campaign") {
    const campaign::CampaignMode mode = modeParam(params);
    const std::uint64_t sample =
        uintParam(params, "sample", 64, 0, 100'000'000);
    const std::uint64_t seed = uintParam(params, "seed", 2022, 0, ~0ull);
    const std::uint64_t deadlineMs =
        uintParam(params, "deadline_ms", options_.defaultDeadlineMs, 1,
                  86'400'000);
    const std::string key =
        std::string("campaign:") + campaign::campaignModeName(mode) + ":" +
        std::to_string(sample) + ":" + std::to_string(seed);
    // Complete summaries are deterministic in (design, mode, sample,
    // seed) — the deadline only decides whether we got one, so it stays
    // out of the key, incomplete runs are never cached, and a deadline
    // failure propagates to every coalesced waiter.
    const auto cached = cache_.getOrComputeAs<SummaryEntry>(
        entry->canonicalFp, key,
        [&]() -> std::pair<std::shared_ptr<const SummaryEntry>, std::size_t> {
          campaign::CampaignConfig cfg;
          cfg.mode = mode;
          cfg.sample = sample;
          cfg.seed = seed;
          CancellationToken token;
          token.setDeadlineFromNow(std::chrono::milliseconds(deadlineMs));
          cfg.cancel = &token;
          campaign::CampaignEngine engine(entry->net, cfg);
          const campaign::CampaignResult result = engine.run();
          const campaign::CampaignSummary s = result.summary();
          if (!s.complete()) {
            throw RequestError{
                "DEADLINE_EXCEEDED",
                "campaign interrupted after " + std::to_string(s.faultsDone) +
                    " of " + std::to_string(s.faultsTotal) + " scenarios (" +
                    std::to_string(deadlineMs) + " ms deadline)"};
          }
          json::Object o;
          o["mode"] = json::Value(campaign::campaignModeName(s.mode));
          o["faults_total"] = json::Value(std::uint64_t(s.faultsTotal));
          o["faults_done"] = json::Value(std::uint64_t(s.faultsDone));
          o["instruments"] = json::Value(std::uint64_t(s.instruments));
          o["read_accessible"] = json::Value(std::uint64_t(s.readAccessible));
          o["read_recovered"] = json::Value(std::uint64_t(s.readRecovered));
          o["read_lost"] = json::Value(std::uint64_t(s.readLost));
          o["write_accessible"] =
              json::Value(std::uint64_t(s.writeAccessible));
          o["write_recovered"] = json::Value(std::uint64_t(s.writeRecovered));
          o["write_lost"] = json::Value(std::uint64_t(s.writeLost));
          o["read_mismatches"] = json::Value(std::uint64_t(s.readMismatches));
          o["write_mismatches"] =
              json::Value(std::uint64_t(s.writeMismatches));
          auto fresh = std::make_shared<SummaryEntry>();
          fresh->summary = json::Value(std::move(o));
          return {fresh, json::serialize(fresh->summary).size() + 64};
        });
    return cached->summary;
  }

  if (method == "certify") {
    const std::uint64_t budget =
        uintParam(params, "budget", 1024, 1, 1'000'000);
    const std::string key = "certify:" + std::to_string(budget);
    // The full canonical certification report is the artifact: verdict
    // rows, witnesses and tier counters are deterministic in (design,
    // budget), so coalesced and repeated requests share one run.
    const auto cached = cache_.getOrComputeAs<SummaryEntry>(
        entry->canonicalFp, key,
        [&]() -> std::pair<std::shared_ptr<const SummaryEntry>, std::size_t> {
          const auto flat = flatOf(*entry);
          const verify::Certifier certifier(flat);
          verify::CertifyOptions co;
          co.fixpointBudget = budget;
          co.crossCheck = verify::crossCheckDefault();
          const verify::CertificationResult result = certifier.run(co);
          auto fresh = std::make_shared<SummaryEntry>();
          fresh->summary = verify::reportJson(entry->net, result);
          return {fresh, json::serialize(fresh->summary).size() + 64};
        });
    return cached->summary;
  }

  throw RequestError{"UNIMPLEMENTED", "unknown method: " + method};
}

json::Value Server::handle(const json::Value& request) {
  json::Value id;
  const EndpointMetrics* em = nullptr;
  try {
    if (request.kind() != json::Kind::Object) {
      throw UsageError("request must be a JSON object");
    }
    id = request.get("id", kNullValue());
    const json::Value& methodValue = request.get("method", kNullValue());
    if (methodValue.kind() != json::Kind::String) {
      throw UsageError("request.method must be a string");
    }
    const std::string& method = methodValue.asString();
    em = endpointMetrics(method);
    if (em) obs::count(em->requests);
    static const json::Value kEmptyParams{json::Object{}};
    const json::Value& params = request.get("params", kEmptyParams);
    if (params.kind() != json::Kind::Object) {
      throw UsageError("request.params must be a JSON object");
    }
    const auto t0 = std::chrono::steady_clock::now();
    json::Value result = dispatch(method, params);
    if (em) {
      const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
      obs::sample(em->latencyUs, static_cast<std::uint64_t>(us));
    }
    return okResponse(id, std::move(result));
  } catch (const RequestError& e) {
    if (em) obs::count(em->errors);
    return errorResponse(id, e.code, e.message);
  } catch (const UsageError& e) {
    if (em) obs::count(em->errors);
    return errorResponse(id, "INVALID_ARGUMENT", e.what());
  } catch (const lint::LintError& e) {
    if (em) obs::count(em->errors);
    return errorResponse(id, "FAILED_PRECONDITION", e.what());
  } catch (const Error& e) {
    if (em) obs::count(em->errors);
    return errorResponse(id, "INTERNAL", e.what());
  } catch (const std::exception& e) {
    if (em) obs::count(em->errors);
    return errorResponse(id, "INTERNAL", e.what());
  }
}

json::Value Server::statsJson() const {
  const ArtifactCache::Stats c = cache_.stats();
  const FlatStore::Stats f = flatStore_.stats();
  json::Object cache;
  cache["hits"] = json::Value(c.hits);
  cache["misses"] = json::Value(c.misses);
  cache["evictions"] = json::Value(c.evictions);
  cache["collisions"] = json::Value(c.collisions);
  cache["bytes"] = json::Value(std::uint64_t(c.bytes));
  cache["entries"] = json::Value(std::uint64_t(c.entries));
  cache["byte_budget"] = json::Value(std::uint64_t(c.byteBudget));
  cache["hit_rate"] = json::Value(c.hitRate());
  json::Object store;
  store["map_hits"] = json::Value(f.mapHits);
  store["lowers"] = json::Value(f.lowers);
  store["published"] = json::Value(f.published);
  store["rejected"] = json::Value(f.rejected);
  json::Object o;
  o["cache"] = json::Value(std::move(cache));
  o["flat_store"] = json::Value(std::move(store));
  return json::Value(std::move(o));
}

Status Server::serveStream(int inFd, int outFd) {
  while (!stopRequested()) {
    std::string payload;
    bool eof = false;
    Status st = readFrame(inFd, payload, eof);
    if (!st.ok()) return st;
    if (eof) return Status{};
    json::Value response;
    try {
      response = handle(json::parse(payload));
    } catch (const Error& e) {
      // The frame arrived intact but is not JSON — the stream framing
      // is still in sync, so answer and keep serving.
      response = errorResponse(
          kNullValue(), "INVALID_ARGUMENT",
          std::string("request is not valid JSON: ") + e.what());
    }
    st = writeFrame(outFd, json::serialize(response));
    if (!st.ok()) return st;
  }
  return Status{};
}

Status Server::serveSocket(const std::string& path) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    return Status::unavailable(std::string("socket() failed: ") +
                               std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(listener);
    return Status::invalidArgument("socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // replace a stale socket from a dead daemon
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(listener, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listener);
    return Status::unavailable("cannot listen on " + path + ": " + why);
  }

  std::vector<std::thread> workers;
  while (!stopRequested()) {
    pollfd pfd{listener, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 200);  // wake periodically for stop_
    if (rc < 0) {
      if (errno == EINTR) continue;
      ::close(listener);
      for (auto& w : workers) w.join();
      return Status::unavailable(std::string("poll() failed: ") +
                                 std::strerror(errno));
    }
    if (rc == 0) continue;
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) continue;
    workers.emplace_back([this, conn] {
      (void)serveStream(conn, conn);
      ::close(conn);
    });
  }
  ::close(listener);
  ::unlink(path.c_str());
  for (auto& w : workers) w.join();
  return Status{};
}

}  // namespace rrsn::serve

// Content-addressed artifact cache of the rrsn_serve daemon.
//
// Every artifact the analysis pipeline derives from a netlist is a pure
// function of immutable inputs, so artifacts are interned once under a
// key (fingerprint, kind) — the FNV-1a fingerprint of the content the
// artifact was derived from, plus a kind string naming the pipeline
// stage ("network", "flat", "lint", "crit:<seed>", "dict", ...).
//
// FNV-1a is not collision-free (support/hash.hpp), so a lookup may pass
// a *verifier*: a predicate over the cached value that confirms the
// entry really was derived from the caller's content (e.g. comparing
// the interned raw netlist text).  A verifier rejection counts as a
// collision, evicts the impostor and reports a miss — correctness never
// rests on 64-bit hashes alone.
//
// Eviction is least-recently-used under a byte budget: every entry
// carries an approximate byte weight, and inserting past the budget
// evicts from the cold end (never the entry just inserted).  All
// operations are mutex-serialized — lookups return shared_ptr values,
// so evicting an entry never invalidates a reader that already holds
// it.
//
// FlatStore is the disk tier for FlatNetwork arenas specifically: the
// serialized, fingerprinted PR 8 arena format is written next to the
// daemon once per design (<cacheDir>/<fingerprint>.rrsnflat, atomic
// tmp+fsync+rename) and re-adopted zero-copy via mmap on later loads —
// including by later daemon processes.  A mapped arena is cross-checked
// against the network (entity counts + on-load fingerprint validation);
// any mismatch discards the file and re-lowers from the Network.
#pragma once

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "rsn/flat.hpp"
#include "rsn/network.hpp"

namespace rrsn::serve {

/// LRU byte-budget cache of type-erased shared artifacts.
class ArtifactCache {
 public:
  /// `byteBudget` bounds the sum of entry weights (0 = unbounded).
  explicit ArtifactCache(std::size_t byteBudget) : byteBudget_(byteBudget) {}

  /// Confirms a candidate hit really matches the caller's content;
  /// returning false classifies the entry as a fingerprint collision.
  using Verifier = std::function<bool(const std::shared_ptr<const void>&)>;

  /// Looks up (fingerprint, kind); null on miss.  A hit moves the entry
  /// to the hot end.  When `verify` is given and rejects the entry, the
  /// impostor is erased and null is returned (counted as a collision
  /// *and* a miss).
  std::shared_ptr<const void> get(std::uint64_t fingerprint,
                                  const std::string& kind,
                                  const Verifier& verify = nullptr);

  /// Interns `value` with weight `bytes`, then evicts cold entries
  /// until the budget holds again (the fresh entry is never evicted).
  /// Re-inserting an existing key replaces the value.
  void put(std::uint64_t fingerprint, const std::string& kind,
           std::shared_ptr<const void> value, std::size_t bytes);

  /// Typed convenience wrapper over get().
  template <typename T>
  std::shared_ptr<const T> getAs(std::uint64_t fingerprint,
                                 const std::string& kind,
                                 const Verifier& verify = nullptr) {
    return std::static_pointer_cast<const T>(get(fingerprint, kind, verify));
  }

  /// Produces (value, approx byte weight) on a miss.
  using Compute =
      std::function<std::pair<std::shared_ptr<const void>, std::size_t>()>;

  /// get() with *coalesced* miss computation: the first thread to miss
  /// on (fingerprint, kind) runs `compute` (outside the cache lock) and
  /// interns the result; any thread that misses the same key while that
  /// computation is in flight waits for it instead of redundantly
  /// recomputing (counted in Stats::coalesced).  A compute exception
  /// propagates to the computing thread *and* every coalesced waiter;
  /// nothing is cached.  When `verify` rejects the winner's value
  /// (fingerprint collision between different contents), the rejecting
  /// caller computes its own — collision handling never rests on the
  /// coalescing tier.
  std::shared_ptr<const void> getOrCompute(std::uint64_t fingerprint,
                                           const std::string& kind,
                                           const Compute& compute,
                                           const Verifier& verify = nullptr);

  /// Typed convenience wrapper over getOrCompute().
  template <typename T, typename Fn>
  std::shared_ptr<const T> getOrComputeAs(std::uint64_t fingerprint,
                                          const std::string& kind, Fn&& fn,
                                          const Verifier& verify = nullptr) {
    const Compute compute =
        [&fn]() -> std::pair<std::shared_ptr<const void>, std::size_t> {
      std::pair<std::shared_ptr<const T>, std::size_t> r = fn();
      return {std::move(r.first), r.second};
    };
    return std::static_pointer_cast<const T>(
        getOrCompute(fingerprint, kind, compute, verify));
  }

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t collisions = 0;
    std::uint64_t coalesced = 0;  ///< misses served by an in-flight compute
    std::size_t bytes = 0;
    std::size_t entries = 0;
    std::size_t byteBudget = 0;

    double hitRate() const {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }
  };
  Stats stats() const;

  /// Drops every entry (stats counters keep accumulating).
  void clear();

 private:
  struct Key {
    std::uint64_t fingerprint;
    std::string kind;
    bool operator<(const Key& o) const {
      return fingerprint != o.fingerprint ? fingerprint < o.fingerprint
                                          : kind < o.kind;
    }
  };
  struct Entry {
    std::shared_ptr<const void> value;
    std::size_t bytes = 0;
    std::list<Key>::iterator lruIt;  ///< position in lru_ (hot = front)
  };

  void evictToBudgetLocked(const Key& keep);

  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  ///< most recently used first
  /// Pending compute per key: coalesced waiters block on the shared
  /// future outside the lock.
  std::map<Key, std::shared_future<std::shared_ptr<const void>>> inflight_;
  std::size_t bytes_ = 0;
  std::size_t byteBudget_;
  std::uint64_t hits_ = 0, misses_ = 0, evictions_ = 0, collisions_ = 0,
                coalesced_ = 0;
};

/// Disk tier for FlatNetwork arenas (mmap adopt path).
class FlatStore {
 public:
  /// `dir` receives one `<fingerprint>.rrsnflat` file per design; an
  /// empty dir disables the disk tier (every load lowers in-process).
  explicit FlatStore(std::string dir) : dir_(std::move(dir)) {}

  /// Returns the flat view of `net`, preferring (in order): an arena
  /// file mapped zero-copy from the disk tier, else a fresh in-process
  /// lowering whose serialized bytes are then published to the disk
  /// tier and *re-adopted via mmap* (so the steady state always serves
  /// from the mapping and the write path is proven readable
  /// immediately).  `contentFingerprint` keys the file name — the FNV
  /// of the canonical netlist text, same family as campaign
  /// checkpoints.  Falls back to the in-process lowering on any disk or
  /// validation problem; never throws for cache-tier reasons.
  std::shared_ptr<const rsn::FlatNetwork> loadOrLower(
      std::uint64_t contentFingerprint, const rsn::Network& net);

  struct Stats {
    std::uint64_t mapHits = 0;    ///< served from an existing arena file
    std::uint64_t lowers = 0;     ///< lowered in-process
    std::uint64_t published = 0;  ///< arena files written
    std::uint64_t rejected = 0;   ///< stale/corrupt files discarded
  };
  Stats stats() const;

 private:
  std::string arenaPath(std::uint64_t contentFingerprint) const;

  /// The mapped arena must describe *this* network: entity counts are
  /// re-checked against the model (the header fingerprint only proves
  /// internal consistency, not identity — a stale file for an edited
  /// design with equal counts is caught by the caller's content
  /// verifier on the "network" cache entry instead).
  static bool describes(const rsn::FlatNetwork& flat, const rsn::Network& net);

  std::string dir_;
  mutable std::mutex mu_;
  Stats stats_;
};

}  // namespace rrsn::serve

// Wire protocol of the rrsn_serve daemon.
//
// Frames are length-prefixed JSON: a 4-byte little-endian payload
// length followed by exactly that many bytes of UTF-8 JSON.  The
// prefix makes the stream self-delimiting over any byte transport
// (Unix socket, pipes, the --stdio test mode) without sentinel
// scanning, and the kMaxFrameBytes cap bounds what a malicious or
// confused client can make the daemon buffer.
//
// Envelope (one request frame -> one response frame, in order):
//
//   request:  {"id": <any>, "method": "analyze", "params": {...}}
//   response: {"id": <echoed>, "ok": true,  "result": {...}}
//           | {"id": <echoed>, "ok": false, "error": {"code": "...",
//                                                      "message": "..."}}
//
// Error codes mirror rrsn::StatusCode spellings (INVALID_ARGUMENT,
// FAILED_PRECONDITION, ...) plus DEADLINE_EXCEEDED and UNIMPLEMENTED.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "support/json.hpp"
#include "support/status.hpp"

namespace rrsn::serve {

/// Upper bound on one frame's payload (64 MiB — a 2^20-segment arena is
/// ~50 MiB; netlist texts are far smaller).  Oversized frames are
/// rejected with kInvalidArgument before any allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;

/// Reads one frame from `fd`.  A clean end-of-stream *between* frames
/// sets `eof` and returns OK with `payload` untouched; EOF inside a
/// frame is kDataLoss, an oversized length prefix kInvalidArgument.
Status readFrame(int fd, std::string& payload, bool& eof);

/// Writes one frame (length prefix + payload) to `fd`.  A consumer that
/// disconnected mid-write yields kUnavailable (never SIGPIPE — the
/// daemon ignores it at startup).
Status writeFrame(int fd, std::string_view payload);

/// Builds the success envelope ({"id": id, "ok": true, "result": ...}).
json::Value okResponse(const json::Value& id, json::Value result);

/// Builds the error envelope.  `code` is one of the protocol error
/// codes documented above.
json::Value errorResponse(const json::Value& id, const std::string& code,
                          const std::string& message);

}  // namespace rrsn::serve

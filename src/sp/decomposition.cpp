#include "sp/decomposition.hpp"

#include <algorithm>
#include <sstream>

namespace rrsn::sp {

using rsn::NodeKind;

TreeId DecompositionTree::addNode(TreeNode n) {
  nodes_.push_back(n);
  const auto id = static_cast<TreeId>(nodes_.size() - 1);
  if (n.left != kNoTree) nodes_[n.left].parent = id;
  if (n.right != kNoTree) nodes_[n.right].parent = id;
  return id;
}

TreeId DecompositionTree::buildBalancedSeries(const std::vector<TreeId>& parts,
                                              std::size_t lo, std::size_t hi) {
  if (hi - lo == 1) return parts[lo];
  const std::size_t mid = lo + (hi - lo) / 2;
  TreeNode s;
  s.kind = TreeKind::Series;
  s.left = buildBalancedSeries(parts, lo, mid);
  s.right = buildBalancedSeries(parts, mid, hi);
  return addNode(s);
}

TreeId DecompositionTree::convert(rsn::NodeId structNode) {
  const auto& n = net_->structure().node(structNode);
  switch (n.kind) {
    case NodeKind::Wire:
      return addNode(TreeNode{});
    case NodeKind::Segment: {
      TreeNode leaf;
      leaf.kind = TreeKind::LeafSegment;
      leaf.prim = n.prim;
      const TreeId id = addNode(leaf);
      leafOfSegment_[n.prim] = id;
      return id;
    }
    case NodeKind::Serial: {
      std::vector<TreeId> parts;
      parts.reserve(n.children.size());
      for (rsn::NodeId c : n.children) parts.push_back(convert(c));
      return buildBalancedSeries(parts, 0, parts.size());
    }
    case NodeKind::MuxJoin: {
      // Binarize the k branches into a left-leaning chain of P vertices
      // that all carry this mux: P(P(b0, b1), b2) ...  The branch roots
      // are remembered for the O(1) mux-damage computation.
      auto& roots = branchRoots_[n.prim];
      roots.clear();
      roots.reserve(n.children.size());
      for (rsn::NodeId c : n.children) roots.push_back(convert(c));
      TreeId acc = roots[0];
      for (std::size_t b = 1; b < roots.size(); ++b) {
        TreeNode p;
        p.kind = TreeKind::Parallel;
        p.prim = n.prim;
        p.left = acc;
        p.right = roots[b];
        acc = addNode(p);
      }
      parallelOfMux_[n.prim] = acc;
      return acc;
    }
  }
  throw Error("unreachable structure node kind");
}

DecompositionTree DecompositionTree::build(const rsn::Network& net) {
  DecompositionTree t;
  t.net_ = &net;
  t.leafOfSegment_.assign(net.segments().size(), kNoTree);
  t.parallelOfMux_.assign(net.muxes().size(), kNoTree);
  t.branchRoots_.assign(net.muxes().size(), {});
  t.nodes_.reserve(2 * net.segments().size() + 4 * net.muxes().size() + 8);
  t.root_ = t.convert(net.structure().root());
  return t;
}

void DecompositionTree::annotate(const rsn::CriticalitySpec& spec) {
  RRSN_CHECK(spec.size() == net_->instruments().size(),
             "spec does not match the network");
  // Children are always created before their parents (addNode appends
  // after converting subtrees), so a single forward sweep accumulates
  // bottom-up.
  for (auto& n : nodes_) {
    n.sumObs = 0;
    n.sumSet = 0;
    n.instruments = 0;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    TreeNode& n = nodes_[i];
    if (n.kind == TreeKind::LeafSegment) {
      const auto inst = net_->segment(n.prim).instrument;
      if (inst != rsn::kNone) {
        n.sumObs = spec.of(inst).obs;
        n.sumSet = spec.of(inst).set;
        n.instruments = 1;
      }
    } else if (n.kind == TreeKind::Series || n.kind == TreeKind::Parallel) {
      const TreeNode& l = nodes_[n.left];
      const TreeNode& r = nodes_[n.right];
      n.sumObs = l.sumObs + r.sumObs;
      n.sumSet = l.sumSet + r.sumSet;
      n.instruments = l.instruments + r.instruments;
    }
  }
}

TreeId DecompositionTree::parentalParallel(TreeId id) const {
  TreeId cur = node(id).parent;
  while (cur != kNoTree) {
    if (node(cur).kind == TreeKind::Parallel) return cur;
    cur = node(cur).parent;
  }
  return kNoTree;
}

std::vector<rsn::SegmentId> DecompositionTree::scanOrder() const {
  std::vector<rsn::SegmentId> order;
  order.reserve(net_->segments().size());
  // Iterative in-order traversal (left = closer to scan-in).
  std::vector<std::pair<TreeId, bool>> stack{{root_, false}};
  while (!stack.empty()) {
    const auto [id, expanded] = stack.back();
    stack.pop_back();
    const TreeNode& n = node(id);
    if (n.kind == TreeKind::LeafSegment) {
      order.push_back(n.prim);
    } else if (n.kind != TreeKind::LeafWire) {
      if (expanded) continue;
      stack.emplace_back(n.right, false);
      stack.emplace_back(n.left, false);
    }
  }
  return order;
}

std::size_t DecompositionTree::depth() const {
  std::size_t best = 0;
  std::vector<std::pair<TreeId, std::size_t>> stack{{root_, 0}};
  while (!stack.empty()) {
    const auto [id, d] = stack.back();
    stack.pop_back();
    best = std::max(best, d);
    const TreeNode& n = node(id);
    if (n.left != kNoTree) stack.emplace_back(n.left, d + 1);
    if (n.right != kNoTree) stack.emplace_back(n.right, d + 1);
  }
  return best;
}

namespace {

std::string leafLabel(const rsn::Network& net, const TreeNode& n) {
  switch (n.kind) {
    case TreeKind::LeafWire:
      return "~";
    case TreeKind::LeafSegment:
      return net.segment(n.prim).name;
    case TreeKind::Series:
      return "S";
    case TreeKind::Parallel:
      return "P[" + net.mux(n.prim).name + "]";
  }
  return "?";
}

}  // namespace

std::string DecompositionTree::toAscii() const {
  std::ostringstream os;
  // Recursive pretty printer with box-drawing guides.
  const auto emit = [&](auto&& self, TreeId id, const std::string& prefix,
                        bool last) -> void {
    const TreeNode& n = node(id);
    os << prefix << (prefix.empty() ? "" : (last ? "`-- " : "|-- "))
       << leafLabel(*net_, n);
    if (n.instruments > 0)
      os << "  (do=" << n.sumObs << ", ds=" << n.sumSet << ")";
    os << '\n';
    if (n.left == kNoTree) return;
    const std::string childPrefix =
        prefix + (prefix.empty() ? "" : (last ? "    " : "|   "));
    self(self, n.left, childPrefix, false);
    self(self, n.right, childPrefix, true);
  };
  emit(emit, root_, "", true);
  return os.str();
}

std::string DecompositionTree::toDot(const std::string& graphName) const {
  std::ostringstream os;
  os << "digraph \"" << graphName << "\" {\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& n = nodes_[i];
    const char* shape = "box";
    const char* color = "white";
    if (n.kind == TreeKind::Series) {
      shape = "circle";
      color = "lightblue";
    } else if (n.kind == TreeKind::Parallel) {
      shape = "circle";
      color = "palegreen";
    }
    os << "  t" << i << " [label=\"" << leafLabel(*net_, n)
       << "\",shape=" << shape << ",style=filled,fillcolor=" << color << "];\n";
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const TreeNode& n = nodes_[i];
    if (n.left != kNoTree) os << "  t" << i << " -> t" << n.left << ";\n";
    if (n.right != kNoTree) os << "  t" << i << " -> t" << n.right << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace rrsn::sp

#include "sp/sp_reduce.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

namespace rrsn::sp {

using graph::Digraph;
using graph::VertexId;

namespace {

/// Mutable multigraph for the reduction: edge multiset per vertex pair.
struct ReduceGraph {
  std::size_t n = 0;
  std::map<std::pair<VertexId, VertexId>, std::size_t> edges;
  std::vector<std::set<VertexId>> out;
  std::vector<std::set<VertexId>> in;
  std::vector<bool> alive;

  explicit ReduceGraph(const Digraph& g)
      : n(g.vertexCount()), out(n), in(n), alive(n, true) {
    for (VertexId v = 0; v < g.vertexCount(); ++v) {
      for (VertexId s : g.successors(v)) {
        ++edges[{v, s}];
        out[v].insert(s);
        in[s].insert(v);
      }
    }
  }

  void removeEdge(VertexId a, VertexId b) {
    auto it = edges.find({a, b});
    RRSN_CHECK(it != edges.end(), "edge not present");
    if (--it->second == 0) {
      edges.erase(it);
      out[a].erase(b);
      in[b].erase(a);
    }
  }

  void addEdge(VertexId a, VertexId b) {
    ++edges[{a, b}];
    out[a].insert(b);
    in[b].insert(a);
  }

  std::size_t multiplicity(VertexId a, VertexId b) const {
    const auto it = edges.find({a, b});
    return it == edges.end() ? 0 : it->second;
  }
};

/// Runs series/parallel reductions to exhaustion.  Returns the surviving
/// vertices other than source and sink.
std::vector<VertexId> reduceToCore(ReduceGraph& rg, VertexId source,
                                   VertexId sink) {
  std::queue<VertexId> work;
  for (VertexId v = 0; v < rg.n; ++v) work.push(v);

  const auto enqueueNeighbors = [&](VertexId v) {
    for (VertexId s : rg.out[v]) work.push(s);
    for (VertexId p : rg.in[v]) work.push(p);
    work.push(v);
  };

  while (!work.empty()) {
    const VertexId v = work.front();
    work.pop();
    if (!rg.alive[v]) continue;

    // Parallel reduction: collapse duplicate edges around v.
    for (VertexId s : std::vector<VertexId>(rg.out[v].begin(), rg.out[v].end())) {
      while (rg.multiplicity(v, s) > 1) rg.removeEdge(v, s);
    }

    if (v == source || v == sink) continue;

    // Series reduction: in-degree 1 and out-degree 1 (single neighbors,
    // multiplicity 1 each after parallel collapsing).
    if (rg.in[v].size() == 1 && rg.out[v].size() == 1) {
      const VertexId p = *rg.in[v].begin();
      const VertexId s = *rg.out[v].begin();
      if (rg.multiplicity(p, v) == 1 && rg.multiplicity(v, s) == 1) {
        rg.removeEdge(p, v);
        rg.removeEdge(v, s);
        rg.alive[v] = false;
        rg.addEdge(p, s);
        enqueueNeighbors(p);
        work.push(s);
        continue;
      }
    }
  }

  std::vector<VertexId> survivors;
  for (VertexId v = 0; v < rg.n; ++v)
    if (rg.alive[v] && v != source && v != sink) survivors.push_back(v);
  return survivors;
}

}  // namespace

SpCheck checkSeriesParallel(const Digraph& g, VertexId source, VertexId sink) {
  RRSN_CHECK(graph::isTwoTerminalDag(g, source, sink),
             "SP check requires a two-terminal DAG");
  ReduceGraph rg(g);
  SpCheck result;
  result.stuckVertices = reduceToCore(rg, source, sink);
  result.isSeriesParallel =
      result.stuckVertices.empty() && rg.multiplicity(source, sink) <= 1;
  // A multi-edge between source and sink still parallel-reduces; run a
  // final collapse to be safe.
  if (result.stuckVertices.empty()) result.isSeriesParallel = true;
  return result;
}

Virtualization virtualizeToSp(const Digraph& g, VertexId source,
                              VertexId sink) {
  Virtualization out;
  out.originalOf.resize(g.vertexCount());
  for (VertexId v = 0; v < g.vertexCount(); ++v) {
    out.originalOf[v] = v;
    out.graph.addVertex(g.label(v));
  }
  for (VertexId v = 0; v < g.vertexCount(); ++v)
    for (VertexId s : g.successors(v)) out.graph.addEdge(v, s);

  const std::size_t cloneCap = 10 * g.vertexCount() + 64;
  while (true) {
    const SpCheck check = checkSeriesParallel(out.graph, source, sink);
    if (check.isSeriesParallel) return out;
    RRSN_CHECK(out.clonesAdded < cloneCap,
               "virtualization did not converge; the input graph is too far "
               "from series-parallel");

    // Pick an offending fan-out stem: a surviving vertex with out-degree
    // >= 2 (excluding the source).  Splitting it into one clone per
    // out-edge removes the crossing reconvergence it participates in.
    VertexId stem = graph::kNoVertex;
    for (VertexId v : check.stuckVertices) {
      if (out.graph.outDegree(v) >= 2) {
        stem = v;
        break;
      }
    }
    RRSN_CHECK(stem != graph::kNoVertex,
               "SP reduction stuck without a splittable fan-out stem");

    // Rebuild the graph with `stem` split: clone i keeps all in-edges and
    // exactly the i-th out-edge.
    const auto succs = out.graph.successors(stem);
    Digraph next;
    std::vector<VertexId> originalNext;
    std::vector<VertexId> remap(out.graph.vertexCount());
    for (VertexId v = 0; v < out.graph.vertexCount(); ++v) {
      remap[v] = next.addVertex(out.graph.label(v));
      originalNext.push_back(out.originalOf[v]);
    }
    std::vector<VertexId> clones;
    for (std::size_t i = 1; i < succs.size(); ++i) {
      const VertexId c = next.addVertex(out.graph.label(stem) + "'");
      originalNext.push_back(out.originalOf[stem]);
      clones.push_back(c);
    }
    for (VertexId v = 0; v < out.graph.vertexCount(); ++v) {
      for (VertexId s : out.graph.successors(v)) {
        if (v == stem) continue;  // handled below
        next.addEdge(remap[v], remap[s]);
        if (s == stem)
          for (VertexId c : clones) next.addEdge(remap[v], c);
      }
    }
    next.addEdge(remap[stem], remap[succs[0]]);
    for (std::size_t i = 1; i < succs.size(); ++i)
      next.addEdge(clones[i - 1], remap[succs[i]]);

    out.graph = std::move(next);
    out.originalOf = std::move(originalNext);
    out.clonesAdded += succs.size() - 1;
  }
}

}  // namespace rrsn::sp

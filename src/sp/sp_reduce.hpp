// Series-parallel recognition and virtualization of flat RSN graphs.
//
// The hierarchical networks built through NetworkBuilder are SP by
// construction; this module provides the general-graph side of Sec. III:
// recognizing whether a two-terminal DAG is series-parallel (Def. 1) and,
// if it is not, inserting a minimized number of *virtual vertices* (clones
// that share the identity of their original) until it is.  The paper uses
// the same trick ("an SP-RSN model is obtained by adding a minimized
// number of virtual vertices"); the clones exist only for analysis and
// are reverted in the synthesized hardened RSN.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/digraph.hpp"

namespace rrsn::sp {

/// Result of an SP reduction run.
struct SpCheck {
  bool isSeriesParallel = false;
  /// Vertices still present when the reduction got stuck (empty if SP);
  /// useful diagnostics for "why is my RSN not hierarchical".
  std::vector<graph::VertexId> stuckVertices;
};

/// Tests whether `g` is two-terminal series-parallel between source and
/// sink, by exhaustive series/parallel reduction.
SpCheck checkSeriesParallel(const graph::Digraph& g, graph::VertexId source,
                            graph::VertexId sink);

/// Result of virtualization.
struct Virtualization {
  graph::Digraph graph;                  ///< the SP-ified graph
  /// originalOf[v] maps every vertex of `graph` to the vertex of the
  /// input graph it represents (clones map to their original).
  std::vector<graph::VertexId> originalOf;
  std::size_t clonesAdded = 0;
};

/// Clones reconvergent fan-out stems until the graph becomes SP.
/// Greedy-minimal: splits one offending stem at a time (deepest first)
/// and re-checks.  Throws ValidationError if a safety cap on clone count
/// is exceeded (pathological inputs).
Virtualization virtualizeToSp(const graph::Digraph& g, graph::VertexId source,
                              graph::VertexId sink);

}  // namespace rrsn::sp

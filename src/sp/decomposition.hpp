// Binary decomposition tree of a series-parallel RSN (Sec. III, Fig. 3).
//
// Internal "S" vertices represent series compositions, "P" vertices
// parallel compositions; every leaf is a scan primitive (segment) or a
// wire.  Each parallel composition is closed by the scan multiplexer that
// forms its reconvergence gate, so P vertices carry the mux id; a mux
// with k > 2 branches becomes a chain of k-1 binary P vertices that all
// carry the same mux.  Series chains are built *balanced*, which keeps
// the tree depth logarithmic even for the 670k-segment MBIST networks
// and makes the per-segment criticality walk O(log N).
//
// The in-order sequence of leaves equals the scan order (scan-in first).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rsn/network.hpp"
#include "rsn/spec.hpp"

namespace rrsn::sp {

using TreeId = std::uint32_t;
inline constexpr TreeId kNoTree = static_cast<TreeId>(-1);

enum class TreeKind : std::uint8_t { LeafWire, LeafSegment, Series, Parallel };

/// One vertex of the binary decomposition tree.
struct TreeNode {
  TreeKind kind = TreeKind::LeafWire;
  TreeId left = kNoTree;    ///< internal nodes only
  TreeId right = kNoTree;   ///< internal nodes only
  TreeId parent = kNoTree;  ///< kNoTree for the root
  std::uint32_t prim = rsn::kNone;  ///< SegmentId (LeafSegment) / MuxId (Parallel)

  // Weight annotation (Sec. IV-A): sums of instrument damage weights in
  // the subtree.  Filled by annotate().
  std::uint64_t sumObs = 0;
  std::uint64_t sumSet = 0;
  std::uint32_t instruments = 0;  ///< number of instruments in the subtree
};

/// The annotated binary decomposition tree of one network.
class DecompositionTree {
 public:
  /// Builds the tree shape from the network's hierarchical structure.
  /// Weight annotations are zero until annotate() is called.
  static DecompositionTree build(const rsn::Network& net);

  /// Fills sumObs / sumSet / instruments bottom-up from `spec`.
  void annotate(const rsn::CriticalitySpec& spec);

  const rsn::Network& network() const { return *net_; }

  const TreeNode& node(TreeId id) const {
    RRSN_CHECK(id < nodes_.size(), "tree node id out of range");
    return nodes_[id];
  }
  std::size_t nodeCount() const { return nodes_.size(); }
  TreeId root() const { return root_; }

  /// Leaf holding a given segment.
  TreeId leafOfSegment(rsn::SegmentId seg) const {
    RRSN_CHECK(seg < leafOfSegment_.size(), "segment id out of range");
    return leafOfSegment_[seg];
  }

  /// Topmost P vertex of a mux's parallel group.
  TreeId parallelOfMux(rsn::MuxId mux) const {
    RRSN_CHECK(mux < parallelOfMux_.size(), "mux id out of range");
    return parallelOfMux_[mux];
  }

  /// Roots of the k branch subtrees of a mux, in address order.
  const std::vector<TreeId>& branchesOfMux(rsn::MuxId mux) const {
    RRSN_CHECK(mux < branchRoots_.size(), "mux id out of range");
    return branchRoots_[mux];
  }

  /// Nearest strict ancestor of `id` that is a P vertex — the segment's
  /// *parental multiplexer* region (Sec. IV-B1); kNoTree if the primitive
  /// sits on the top-level serial path.
  TreeId parentalParallel(TreeId id) const;

  /// Scan order (in-order position, scan-in first) of each segment leaf.
  /// Useful for reports and for the brute-force cross-check.
  std::vector<rsn::SegmentId> scanOrder() const;

  /// Tree depth (edges on the longest root-to-leaf path).
  std::size_t depth() const;

  /// ASCII rendering in the style of Fig. 3 (S/P internal vertices,
  /// primitive names at the leaves, weight annotations when present).
  std::string toAscii() const;

  /// Graphviz DOT rendering of the tree.
  std::string toDot(const std::string& graphName) const;

 private:
  DecompositionTree() = default;

  TreeId addNode(TreeNode n);
  TreeId convert(rsn::NodeId structNode);
  TreeId buildBalancedSeries(const std::vector<TreeId>& parts, std::size_t lo,
                             std::size_t hi);

  const rsn::Network* net_ = nullptr;
  std::vector<TreeNode> nodes_;
  TreeId root_ = kNoTree;
  std::vector<TreeId> leafOfSegment_;
  std::vector<TreeId> parallelOfMux_;
  std::vector<std::vector<TreeId>> branchRoots_;
};

}  // namespace rrsn::sp

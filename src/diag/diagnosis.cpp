#include "diag/diagnosis.hpp"

#include <algorithm>
#include <string>
#include <tuple>

#include "obs/obs.hpp"
#include "sim/retarget.hpp"
#include "support/hash.hpp"
#include "support/parallel.hpp"

namespace rrsn::diag {

std::size_t Syndrome::distanceTo(const Syndrome& other) const {
  RRSN_CHECK(passed.size() == other.passed.size(),
             "syndromes of different access sets are not comparable");
  DynamicBitset diff = passed;
  diff ^= other.passed;
  return diff.count();
}

std::size_t Syndrome::distanceToAtMost(const Syndrome& other,
                                       std::size_t bound) const {
  RRSN_CHECK(passed.size() == other.passed.size(),
             "syndromes of different access sets are not comparable");
  std::size_t acc = 0;
  for (std::size_t w = 0; w < passed.wordCount(); ++w) {
    acc += static_cast<std::size_t>(
        __builtin_popcountll(passed.word(w) ^ other.passed.word(w)));
    if (acc > bound) return acc;
  }
  return acc;
}

Syndrome FaultDictionary::measure(const rsn::Network& net,
                                  const fault::Fault* f) {
  const std::size_t n = net.instruments().size();
  Syndrome syn;
  syn.passed = DynamicBitset(2 * n);
  for (rsn::InstrumentId i = 0; i < n; ++i) {
    const auto len = net.segment(net.instrument(i).segment).length;
    {
      sim::ScanSimulator simulator(net);
      if (f != nullptr) simulator.injectFault(*f);
      sim::Retargeter rt(simulator);
      if (rt.readInstrument(i).success) syn.passed.set(2 * i);
    }
    {
      sim::ScanSimulator simulator(net);
      if (f != nullptr) simulator.injectFault(*f);
      sim::Retargeter rt(simulator);
      if (rt.writeInstrument(i, sim::accessMarker(len)).success)
        syn.passed.set(2 * i + 1);
    }
  }
  return syn;
}

Syndrome FaultDictionary::measureMulti(const rsn::Network& net,
                                       const std::vector<fault::Fault>& faults) {
  const std::size_t n = net.instruments().size();
  Syndrome syn;
  syn.passed = DynamicBitset(2 * n);
  for (rsn::InstrumentId i = 0; i < n; ++i) {
    const auto len = net.segment(net.instrument(i).segment).length;
    {
      sim::ScanSimulator simulator(net);
      simulator.injectFaults(faults);
      sim::Retargeter rt(simulator);
      if (rt.readInstrument(i).success) syn.passed.set(2 * i);
    }
    {
      sim::ScanSimulator simulator(net);
      simulator.injectFaults(faults);
      sim::Retargeter rt(simulator);
      if (rt.writeInstrument(i, sim::accessMarker(len)).success)
        syn.passed.set(2 * i + 1);
    }
  }
  return syn;
}

Syndrome composeSyndromes(const Syndrome& a, const Syndrome& b) {
  RRSN_CHECK(a.passed.size() == b.passed.size(),
             "cannot compose syndromes of different networks");
  Syndrome out;
  out.passed = a.passed;
  out.passed &= b.passed;
  return out;
}

namespace {

std::string bitsToString(const DynamicBitset& b) {
  std::string s(b.size(), '0');
  b.forEachSet([&](std::size_t i) { s[i] = '1'; });
  return s;
}

}  // namespace

FaultDictionary FaultDictionary::build(const rsn::Network& net) {
  return build(net, dictModeFromEnv());
}

FaultDictionary FaultDictionary::build(const rsn::Network& net,
                                       DictMode mode) {
  RRSN_OBS_SPAN("diag.dictionary_build");
  static const obs::MetricId kSyndromes = obs::counter("diag.syndromes");
  static const obs::MetricId kVerified = obs::counter("diag.rows_verified");
  FaultDictionary dict;
  dict.net_ = &net;
  dict.mode_ = mode;
  const fault::FaultUniverse universe(net);
  dict.faults_ = universe.faults();
  const std::size_t n = dict.faults_.size();

  if (mode != DictMode::Batched) {
    // Per-probe reference path: each fault's syndrome is measured on a
    // private simulator over the immutable network, so the build fans
    // out over the fault universe; syndrome k lands in slot k
    // regardless of scheduling.
    dict.faultFree_ = measure(net, nullptr);
    dict.syndromes_ = parallelMap<Syndrome>(
        n, [&](std::size_t k) { return measure(net, &dict.faults_[k]); });
  }
  if (mode != DictMode::Probe) {
    // Batched path: one engine shared read-only, per-worker scratch
    // selected by the parallelForChunks lane, slot-k placement.
    const BatchedSyndromeEngine engine(net);
    Syndrome batchedFree = engine.row(nullptr, 0);
    std::vector<Syndrome> batched(n);
    parallelForChunks(
        n, [&](std::size_t begin, std::size_t end, std::size_t worker) {
          for (std::size_t k = begin; k < end; ++k)
            batched[k] = engine.row(&dict.faults_[k], worker);
        });
    if (mode == DictMode::Verify) {
      std::size_t mismatches = 0;
      std::string first;
      const auto check = [&](const Syndrome& probe, const Syndrome& fast,
                             const fault::Fault* f) {
        if (probe == fast) return;
        if (mismatches == 0) {
          first = (f != nullptr ? fault::describe(net, *f)
                                : std::string("fault-free")) +
                  " probe=" + bitsToString(probe.passed) +
                  " batched=" + bitsToString(fast.passed);
        }
        ++mismatches;
      };
      check(dict.faultFree_, batchedFree, nullptr);
      for (std::size_t k = 0; k < n; ++k)
        check(dict.syndromes_[k], batched[k], &dict.faults_[k]);
      if (mismatches != 0) {
        obs::raiseIfError(Status::internal(
            "dictionary verify: " + std::to_string(mismatches) + " of " +
            std::to_string(n + 1) + " rows differ between the probe and " +
            "batched engines; first: " + first));
      }
      obs::count(kVerified, n + 1);
    } else {
      dict.faultFree_ = std::move(batchedFree);
      dict.syndromes_ = std::move(batched);
    }
  }
  obs::count(kSyndromes, dict.syndromes_.size());
  dict.buildIndex();
  return dict;
}

void FaultDictionary::buildIndex() {
  const std::size_t n = syndromes_.size();
  fingerprints_.resize(n);
  popcounts_.resize(n);
  exactIndex_.clear();
  exactIndex_.reserve(n);
  for (std::size_t k = 0; k < n; ++k) {
    fingerprints_[k] = hash::fingerprint(syndromes_[k].passed);
    popcounts_[k] = static_cast<std::uint32_t>(syndromes_[k].passed.count());
    exactIndex_[fingerprints_[k]].push_back(static_cast<std::uint32_t>(k));
  }
}

const Syndrome& FaultDictionary::syndromeOf(std::size_t faultIndex) const {
  RRSN_CHECK(faultIndex < syndromes_.size(), "fault index out of range");
  return syndromes_[faultIndex];
}

Diagnosis FaultDictionary::diagnose(const Syndrome& observed) const {
  Diagnosis d;
  if (observed == faultFree_) {
    d.faultFree = true;
    return d;
  }
  // Exact matches: one hash probe instead of the O(|faults|) scan; the
  // bucket keeps fault order, and a full comparison guards against
  // fingerprint collisions.
  if (const auto it = exactIndex_.find(hash::fingerprint(observed.passed));
      it != exactIndex_.end()) {
    for (const std::uint32_t k : it->second)
      if (syndromes_[k] == observed) d.exactMatches.push_back(faults_[k]);
  }
  if (!d.exactMatches.empty()) return d;

  // Nearest search with a popcount lower bound: |popcount(a) -
  // popcount(b)| <= hamming(a, b), so entries that cannot reach the
  // current best distance are skipped without touching their words.
  const std::size_t observedCount = observed.passed.count();
  std::size_t best = ~std::size_t{0};
  for (std::size_t k = 0; k < faults_.size(); ++k) {
    const std::size_t pc = popcounts_[k];
    const std::size_t lower =
        pc > observedCount ? pc - observedCount : observedCount - pc;
    if (lower > best) continue;
    const std::size_t dist = syndromes_[k].distanceToAtMost(observed, best);
    if (dist > best) continue;
    if (dist < best) {
      best = dist;
      d.nearestMatches.clear();
    }
    d.nearestMatches.push_back(faults_[k]);
  }
  d.nearestDistance = best;
  return d;
}

namespace {

/// Two stuck faults on one mux cannot coexist in real hardware.
bool contradictoryPair(const fault::Fault& a, const fault::Fault& b) {
  return a.kind == fault::FaultKind::MuxStuck &&
         b.kind == fault::FaultKind::MuxStuck && a.prim == b.prim;
}

}  // namespace

FaultDictionary::PairDiagnosis FaultDictionary::diagnosePair(
    const Syndrome& observed) const {
  PairDiagnosis d;
  if (observed == faultFree_) {
    d.faultFree = true;
    return d;
  }
  // Group faults into syndrome equivalence classes, keeping fault
  // order.  Composition depends only on the class representative's row,
  // so candidate pairs are found class-by-class and expanded to member
  // pairs only on a match — quadratic in |classes|, not |faults|.
  std::vector<std::vector<std::uint32_t>> classes;
  {
    std::unordered_map<std::uint64_t, std::vector<std::size_t>> byPrint;
    for (std::uint32_t k = 0; k < faults_.size(); ++k) {
      auto& bucket = byPrint[fingerprints_[k]];
      bool placed = false;
      for (const std::size_t c : bucket) {
        if (syndromes_[classes[c].front()] == syndromes_[k]) {
          classes[c].push_back(k);
          placed = true;
          break;
        }
      }
      if (!placed) {
        bucket.push_back(classes.size());
        classes.push_back({k});
      }
    }
  }

  const std::uint64_t observedPrint = hash::fingerprint(observed.passed);
  for (std::size_t ci = 0; ci < classes.size(); ++ci) {
    const Syndrome& rowA = syndromes_[classes[ci].front()];
    for (std::size_t cj = ci; cj < classes.size(); ++cj) {
      const Syndrome& rowB = syndromes_[classes[cj].front()];
      const Syndrome composed = composeSyndromes(rowA, rowB);
      if (hash::fingerprint(composed.passed) != observedPrint ||
          !(composed == observed)) {
        continue;
      }
      for (std::size_t x = 0; x < classes[ci].size(); ++x) {
        const std::size_t yBegin = ci == cj ? x + 1 : 0;
        for (std::size_t y = yBegin; y < classes[cj].size(); ++y) {
          std::uint32_t ka = classes[ci][x], kb = classes[cj][y];
          if (ka > kb) std::swap(ka, kb);
          if (contradictoryPair(faults_[ka], faults_[kb])) continue;
          d.exactPairCount += 1;
          if (d.exactPairs.size() < PairDiagnosis::kMaxListedPairs)
            d.exactPairs.emplace_back(faults_[ka], faults_[kb]);
        }
      }
    }
  }
  std::sort(d.exactPairs.begin(), d.exactPairs.end(),
            [](const auto& lhs, const auto& rhs) {
              return std::tie(lhs.first.kind, lhs.first.prim,
                              lhs.first.stuckBranch, lhs.second.kind,
                              lhs.second.prim, lhs.second.stuckBranch) <
                     std::tie(rhs.first.kind, rhs.first.prim,
                              rhs.first.stuckBranch, rhs.second.kind,
                              rhs.second.prim, rhs.second.stuckBranch);
            });

  // Verify mode: composition is only a bound, so cross-check the first
  // candidates end to end on the simulator.  A candidate that
  // re-measures differently is a pair whose interaction (masking)
  // escapes the row-union model — the campaign layer itemizes those.
  if (mode_ == DictMode::Verify) {
    const std::size_t limit =
        std::min(d.exactPairs.size(), PairDiagnosis::kMaxVerifiedPairs);
    for (std::size_t p = 0; p < limit; ++p) {
      const Syndrome measured = measureMulti(
          *net_, {d.exactPairs[p].first, d.exactPairs[p].second});
      if (measured == observed) {
        d.verifiedBySimulation = true;
        break;
      }
    }
  }
  return d;
}

FaultDictionary::Resolution FaultDictionary::resolution() const {
  std::vector<bool> none(net_->primitiveCount(), false);
  return resolutionExcluding(none);
}

FaultDictionary::Resolution FaultDictionary::resolutionExcluding(
    const std::vector<bool>& hardenedLinear) const {
  RRSN_CHECK(hardenedLinear.size() == net_->primitiveCount(),
             "hardening mask does not match the network");
  Resolution r;
  // Class sizes keyed by syndrome fingerprint; a bucket holds one
  // (representative, count) pair per distinct syndrome that collided
  // into the hash.  Counting is order-independent, so the statistics
  // match the former sorted-map implementation exactly.
  struct Bucket {
    std::uint32_t rep;
    std::size_t size;
  };
  std::unordered_map<std::uint64_t, std::vector<Bucket>> classSizes;
  for (std::size_t k = 0; k < faults_.size(); ++k) {
    if (hardenedLinear[net_->linearId(fault::refOf(faults_[k]))])
      continue;  // fault avoided
    ++r.faults;
    if (syndromes_[k] == faultFree_) continue;  // undetectable
    ++r.detectable;
    auto& buckets = classSizes[fingerprints_[k]];
    bool found = false;
    for (Bucket& b : buckets) {
      if (syndromes_[b.rep] == syndromes_[k]) {
        ++b.size;
        found = true;
        break;
      }
    }
    if (!found) buckets.push_back({static_cast<std::uint32_t>(k), 1});
  }
  double total = 0.0;
  for (const auto& [fp, buckets] : classSizes) {
    r.classes += buckets.size();
    for (const Bucket& b : buckets)
      total += static_cast<double>(b.size) * static_cast<double>(b.size);
  }
  if (r.detectable > 0) {
    // Mean ambiguity, fault-weighted: E[|class of f|].
    r.avgAmbiguity = total / static_cast<double>(r.detectable);
  }
  return r;
}

TextTable FaultDictionary::classTable(std::size_t maxRows) const {
  // Group all faults (including the undetectable class) by syndrome,
  // fingerprint-first with equality on collision; members stay in
  // ascending fault order.
  std::vector<std::vector<std::size_t>> classes;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> byFp;
  for (std::size_t k = 0; k < faults_.size(); ++k) {
    auto& ids = byFp[fingerprints_[k]];
    bool found = false;
    for (const std::size_t id : ids) {
      if (syndromes_[classes[id].front()] == syndromes_[k]) {
        classes[id].push_back(k);
        found = true;
        break;
      }
    }
    if (!found) {
      ids.push_back(classes.size());
      classes.push_back({k});
    }
  }

  TextTable table({"class size", "failing accesses", "example faults"});
  table.setAlign(2, TextTable::Align::Left);
  // Largest (most ambiguous) classes first; ties broken by the smallest
  // member fault index so the rendering is deterministic.
  std::vector<std::size_t> order(classes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (classes[a].size() != classes[b].size())
      return classes[a].size() > classes[b].size();
    return classes[a].front() < classes[b].front();
  });
  for (std::size_t r = 0; r < std::min(maxRows, order.size()); ++r) {
    const auto& faultIdx = classes[order[r]];
    std::string examples;
    for (std::size_t j = 0; j < std::min<std::size_t>(3, faultIdx.size());
         ++j) {
      if (j != 0) examples += ", ";
      examples += fault::describe(*net_, faults_[faultIdx[j]]);
    }
    if (faultIdx.size() > 3) examples += ", ...";
    const std::size_t failing =
        faultFree_.passed.count() - syndromes_[faultIdx.front()].passed.count();
    table.addRow({std::to_string(faultIdx.size()), std::to_string(failing),
                  examples});
  }
  return table;
}

}  // namespace rrsn::diag

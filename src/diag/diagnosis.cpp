#include "diag/diagnosis.hpp"

#include <algorithm>
#include <map>

#include "obs/obs.hpp"
#include "sim/retarget.hpp"
#include "support/parallel.hpp"

namespace rrsn::diag {

std::size_t Syndrome::distanceTo(const Syndrome& other) const {
  RRSN_CHECK(passed.size() == other.passed.size(),
             "syndromes of different access sets are not comparable");
  DynamicBitset diff = passed;
  diff ^= other.passed;
  return diff.count();
}

Syndrome FaultDictionary::measure(const rsn::Network& net,
                                  const fault::Fault* f) {
  const std::size_t n = net.instruments().size();
  Syndrome syn;
  syn.passed = DynamicBitset(2 * n);
  for (rsn::InstrumentId i = 0; i < n; ++i) {
    const auto len = net.segment(net.instrument(i).segment).length;
    {
      sim::ScanSimulator simulator(net);
      if (f != nullptr) simulator.injectFault(*f);
      sim::Retargeter rt(simulator);
      if (rt.readInstrument(i).success) syn.passed.set(2 * i);
    }
    {
      sim::ScanSimulator simulator(net);
      if (f != nullptr) simulator.injectFault(*f);
      sim::Retargeter rt(simulator);
      if (rt.writeInstrument(i, sim::accessMarker(len)).success)
        syn.passed.set(2 * i + 1);
    }
  }
  return syn;
}

FaultDictionary FaultDictionary::build(const rsn::Network& net) {
  RRSN_OBS_SPAN("diag.dictionary_build");
  static const obs::MetricId kSyndromes = obs::counter("diag.syndromes");
  FaultDictionary dict;
  dict.net_ = &net;
  dict.faultFree_ = measure(net, nullptr);
  const fault::FaultUniverse universe(net);
  dict.faults_ = universe.faults();
  // Each fault's syndrome is measured on a private simulator over the
  // immutable network, so the build fans out over the fault universe;
  // syndrome k lands in slot k regardless of scheduling.
  dict.syndromes_ = parallelMap<Syndrome>(
      dict.faults_.size(),
      [&](std::size_t k) { return measure(net, &dict.faults_[k]); });
  obs::count(kSyndromes, dict.syndromes_.size());
  return dict;
}

const Syndrome& FaultDictionary::syndromeOf(std::size_t faultIndex) const {
  RRSN_CHECK(faultIndex < syndromes_.size(), "fault index out of range");
  return syndromes_[faultIndex];
}

Diagnosis FaultDictionary::diagnose(const Syndrome& observed) const {
  Diagnosis d;
  if (observed == faultFree_) {
    d.faultFree = true;
    return d;
  }
  for (std::size_t k = 0; k < faults_.size(); ++k) {
    if (syndromes_[k] == observed) d.exactMatches.push_back(faults_[k]);
  }
  if (!d.exactMatches.empty()) return d;

  std::size_t best = ~std::size_t{0};
  for (std::size_t k = 0; k < faults_.size(); ++k) {
    const std::size_t dist = syndromes_[k].distanceTo(observed);
    if (dist < best) {
      best = dist;
      d.nearestMatches.clear();
    }
    if (dist == best) d.nearestMatches.push_back(faults_[k]);
  }
  d.nearestDistance = best;
  return d;
}

namespace {

/// Canonical key of a syndrome for class grouping.
std::vector<std::size_t> keyOf(const Syndrome& s) { return s.passed.toIndices(); }

}  // namespace

FaultDictionary::Resolution FaultDictionary::resolution() const {
  std::vector<bool> none(net_->primitiveCount(), false);
  return resolutionExcluding(none);
}

FaultDictionary::Resolution FaultDictionary::resolutionExcluding(
    const std::vector<bool>& hardenedLinear) const {
  RRSN_CHECK(hardenedLinear.size() == net_->primitiveCount(),
             "hardening mask does not match the network");
  Resolution r;
  std::map<std::vector<std::size_t>, std::size_t> classSizes;
  for (std::size_t k = 0; k < faults_.size(); ++k) {
    const fault::Fault& f = faults_[k];
    const rsn::PrimitiveRef ref{f.kind == fault::FaultKind::SegmentBreak
                                    ? rsn::PrimitiveRef::Kind::Segment
                                    : rsn::PrimitiveRef::Kind::Mux,
                                f.prim};
    if (hardenedLinear[net_->linearId(ref)]) continue;  // fault avoided
    ++r.faults;
    if (syndromes_[k] == faultFree_) continue;  // undetectable
    ++r.detectable;
    ++classSizes[keyOf(syndromes_[k])];
  }
  r.classes = classSizes.size();
  if (r.detectable > 0) {
    double total = 0.0;
    for (const auto& [key, size] : classSizes)
      total += static_cast<double>(size) * static_cast<double>(size);
    // Mean ambiguity, fault-weighted: E[|class of f|].
    r.avgAmbiguity = total / static_cast<double>(r.detectable);
  }
  return r;
}

TextTable FaultDictionary::classTable(std::size_t maxRows) const {
  std::map<std::vector<std::size_t>, std::vector<std::size_t>> classes;
  for (std::size_t k = 0; k < faults_.size(); ++k)
    classes[keyOf(syndromes_[k])].push_back(k);

  TextTable table({"class size", "failing accesses", "example faults"});
  table.setAlign(2, TextTable::Align::Left);
  std::vector<const std::vector<std::size_t>*> members;
  std::vector<const std::vector<std::size_t>*> keys;
  for (const auto& [key, faultIdx] : classes) {
    keys.push_back(&key);
    members.push_back(&faultIdx);
  }
  // Largest (most ambiguous) classes first.
  std::vector<std::size_t> order(members.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return members[a]->size() > members[b]->size();
  });
  for (std::size_t r = 0; r < std::min(maxRows, order.size()); ++r) {
    const auto& faultIdx = *members[order[r]];
    std::string examples;
    for (std::size_t j = 0; j < std::min<std::size_t>(3, faultIdx.size()); ++j) {
      if (j != 0) examples += ", ";
      examples += fault::describe(*net_, faults_[faultIdx[j]]);
    }
    if (faultIdx.size() > 3) examples += ", ...";
    const std::size_t failing =
        faultFree_.passed.count() - keys[order[r]]->size();
    table.addRow({std::to_string(faultIdx.size()), std::to_string(failing),
                  examples});
  }
  return table;
}

}  // namespace rrsn::diag

#include "diag/batched.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "diag/diagnosis.hpp"
#include "support/parallel.hpp"

namespace rrsn::diag {

namespace {

// Direction-switching thresholds (Beamer's direction-optimizing BFS, as
// used by PaperWasp's hybrid_bfs): go bottom-up once the frontier's
// scout count exceeds 1/kAlpha of the unexplored edges, return to
// top-down once a bottom-up sweep adds fewer than |V|/kBeta vertices.
constexpr std::size_t kAlpha = 15;
constexpr std::size_t kBeta = 18;

}  // namespace

const char* dictModeName(DictMode mode) {
  switch (mode) {
    case DictMode::Probe:
      return "probe";
    case DictMode::Batched:
      return "batched";
    case DictMode::Verify:
      return "verify";
  }
  return "?";
}

DictMode dictModeFromEnv() {
#ifdef NDEBUG
  constexpr DictMode kDefault = DictMode::Batched;
#else
  constexpr DictMode kDefault = DictMode::Verify;
#endif
  const char* text = std::getenv("RRSN_DICT_MODE");
  if (text == nullptr || *text == '\0') return kDefault;
  const std::string v(text);
  if (v == "probe") return DictMode::Probe;
  if (v == "batched") return DictMode::Batched;
  if (v == "verify") return DictMode::Verify;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "rrsn: RRSN_DICT_MODE='%s' is not probe|batched|verify; "
                 "using '%s'\n",
                 text, dictModeName(kDefault));
  }
  return kDefault;
}

BatchedSyndromeEngine::BatchedSyndromeEngine(const rsn::Network& net)
    : BatchedSyndromeEngine(rsn::FlatNetwork::lower(net)) {}

BatchedSyndromeEngine::BatchedSyndromeEngine(
    std::shared_ptr<const rsn::FlatNetwork> flat)
    : cv_(sim::ControlView::project(std::move(flat))),
      instruments_(cv_.instrumentVertex.size()) {
  scratch_.resize(threadCount());
  for (Scratch& s : scratch_) {
    s.sel.assign(cv_.selWordCount, 0);
    s.inStrict = DynamicBitset(cv_.vertexCount);
    s.outStrict = DynamicBitset(cv_.vertexCount);
    s.inRead = DynamicBitset(cv_.vertexCount);
    s.outWrite = DynamicBitset(cv_.vertexCount);
    s.cleanToOut = DynamicBitset(cv_.vertexCount);
    s.cleanFromB = DynamicBitset(cv_.vertexCount);
    s.bwdFromB = DynamicBitset(cv_.vertexCount);
  }
}

void BatchedSyndromeEngine::sweep(bool forward, const std::uint64_t* sel,
                                  bool tolerate, graph::VertexId brokenV,
                                  graph::VertexId source, bool avoidCtrlRegs,
                                  DynamicBitset& visited, Scratch& s) const {
  // Edges are walked source-side in top-down steps and target-side in
  // bottom-up sweeps; the annotation of a row entry always describes
  // the original edge, so admissibility reads the same from both sides.
  const auto& outOff = forward ? cv_.fwdOffsets : cv_.bwdOffsets;
  const auto& outEdges = forward ? cv_.fwdEdges : cv_.bwdEdges;
  const auto& inOff = forward ? cv_.bwdOffsets : cv_.fwdOffsets;
  const auto& inEdges = forward ? cv_.bwdEdges : cv_.fwdEdges;
  if (source == graph::kNoVertex) source = forward ? cv_.scanIn : cv_.scanOut;
  const std::size_t vertices = cv_.vertexCount;
  const auto outDeg = [&](graph::VertexId v) {
    return static_cast<std::size_t>(outOff[v + 1] - outOff[v]);
  };

  visited.clearAll();
  visited.set(source);
  s.queue.clear();
  s.queue.push_back(source);
  // scout = out-degree sum of the current frontier; unexplored = out
  // edges of still-unvisited vertices.  Heuristic bookkeeping only —
  // the computed set is traversal-order independent.
  std::size_t scout = outDeg(source);
  std::size_t unexplored = outEdges.size() - scout;

  while (!s.queue.empty()) {
    if (scout > unexplored / kAlpha) {
      // Bottom-up: scan the unvisited vertices (64 visited bits per
      // word) for an admissible edge from any visited vertex.  Repeat
      // while the sweeps stay productive; a sweep that adds nothing
      // proves the closure is complete.
      std::size_t added;
      do {
        added = 0;
        s.next.clear();
        std::size_t nextScout = 0;
        const std::size_t words = visited.wordCount();
        for (std::size_t w = 0; w < words; ++w) {
          std::uint64_t unvisited = ~visited.word(w);
          if (w == words - 1 && vertices % 64 != 0)
            unvisited &= (1ULL << (vertices % 64)) - 1;
          while (unvisited != 0) {
            const auto u = static_cast<graph::VertexId>(
                w * 64 +
                static_cast<std::size_t>(__builtin_ctzll(unvisited)));
            unvisited &= unvisited - 1;
            if (!tolerate && u == brokenV) continue;
            if (avoidCtrlRegs && cv_.ctrlRegVertex[u] != 0) continue;
            for (std::uint32_t i = inOff[u]; i < inOff[u + 1]; ++i) {
              const sim::ControlView::Edge& e = inEdges[i];
              if (!visited.test(e.other)) continue;
              if (!cv_.edgeOpen(e, sel)) continue;
              visited.set(u);
              s.next.push_back(u);
              nextScout += outDeg(u);
              ++added;
              break;
            }
          }
        }
        scout = nextScout;
        unexplored -= nextScout;
      } while (added * kBeta > vertices);
      if (s.next.empty()) return;
      std::swap(s.queue, s.next);
      continue;
    }
    // Top-down: relax the frontier's out-edges into the next queue.
    s.next.clear();
    std::size_t nextScout = 0;
    for (const graph::VertexId v : s.queue) {
      for (std::uint32_t i = outOff[v]; i < outOff[v + 1]; ++i) {
        const sim::ControlView::Edge& e = outEdges[i];
        const graph::VertexId u = e.other;
        // v is visited, hence never the broken vertex when !tolerate.
        if (visited.test(u)) continue;
        if (!tolerate && u == brokenV) continue;
        if (avoidCtrlRegs && cv_.ctrlRegVertex[u] != 0) continue;
        if (!cv_.edgeOpen(e, sel)) continue;
        visited.set(u);
        s.next.push_back(u);
        nextScout += outDeg(u);
      }
    }
    std::swap(s.queue, s.next);
    scout = nextScout;
    unexplored -= nextScout;
  }
}

void BatchedSyndromeEngine::runFixpoint(const fault::Fault* f,
                                        graph::VertexId brokenV,
                                        Scratch& s) const {
  // Shrink non-reset branches to those whose control register keeps a
  // strict (break-free) scan-in path over the surviving branches; the
  // loop exits after the iteration that changes nothing, so s.inStrict
  // ends up being the strict forward reach under the final sets.
  const std::uint32_t stuckMux =
      f != nullptr && f->kind == fault::FaultKind::MuxStuck ? f->prim
                                                           : rsn::kNone;
  for (;;) {
    sweep(/*forward=*/true, s.sel.data(), /*tolerate=*/false, brokenV,
          graph::kNoVertex, /*avoidCtrlRegs=*/false, s.inStrict, s);
    bool changed = false;
    for (const std::uint32_t m : cv_.ctrlMuxes) {
      if (m == stuckMux) continue;
      const bool ctrlReach = s.inStrict.test(cv_.muxCtrlVertex[m]);
      const std::uint32_t off = cv_.selOffset[m];
      const std::size_t words =
          (static_cast<std::size_t>(cv_.muxArity[m]) + 63) / 64;
      for (std::size_t w = 0; w < words; ++w) {
        // Reachable: keep the representable branches.  Unreachable:
        // keep only the reset branch.  Branch 0 is never cleared.
        const std::uint64_t mask = ctrlReach ? cv_.representableWords[off + w]
                                             : (w == 0 ? 1ULL : 0ULL);
        const std::uint64_t next = s.sel[off + w] & mask;
        if (next != s.sel[off + w]) {
          s.sel[off + w] = next;
          changed = true;
        }
      }
    }
    if (!changed) return;
  }
}

void BatchedSyndromeEngine::emitInto(Syndrome& row, const DynamicBitset& inRead,
                                     const DynamicBitset& outStrict,
                                     const DynamicBitset& inStrict,
                                     const DynamicBitset& outWrite,
                                     graph::VertexId brokenV) const {
  for (std::size_t i = 0; i < instruments_; ++i) {
    const graph::VertexId v = cv_.instrumentVertex[i];
    if (v == brokenV) continue;  // the instrument's own segment is dead
    if (inRead.test(v) && outStrict.test(v)) row.passed.set(2 * i);
    if (inStrict.test(v) && outWrite.test(v)) row.passed.set(2 * i + 1);
  }
}

Syndrome BatchedSyndromeEngine::row(const fault::Fault* f,
                                    std::size_t worker) const {
  RRSN_CHECK(worker < scratch_.size(), "worker lane out of range");
  Scratch& s = scratch_[worker];
  const bool isBreak =
      f != nullptr && f->kind == fault::FaultKind::SegmentBreak;
  const graph::VertexId brokenV =
      isBreak ? cv_.segmentVertex[f->prim] : graph::kNoVertex;

  Syndrome syn;
  syn.passed = DynamicBitset(2 * instruments_);

  cv_.baseSelectable(f, s.sel.data());
  runFixpoint(f, brokenV, s);
  sweep(/*forward=*/false, s.sel.data(), /*tolerate=*/false, brokenV,
        graph::kNoVertex, /*avoidCtrlRegs=*/false, s.outStrict, s);

  if (brokenV == graph::kNoVertex) {
    // Fault-free and mux-stuck rows have no broken vertex, so the
    // break-tolerant reaches equal the strict ones: two sweeps total.
    emitInto(syn, s.inStrict, s.outStrict, s.inStrict, s.outStrict, brokenV);
    return syn;
  }

  // A broken segment re-poisons itself whenever it is clocked, and a
  // CSU whose active path crosses it leaves X in every scan cell
  // downstream of the break — including SIB/control registers, whose
  // mux addresses then decay to X and collapse every later path walk.
  // The row is the union of the three access modes that survive that
  // physics.
  //
  // Strict mode: the access never touches the broken segment at all.
  // With tolerate=false the tolerant reaches equal the strict ones.
  emitInto(syn, s.inStrict, s.outStrict, s.inStrict, s.outStrict, brokenV);

  // Break-tolerant reaches under the full demand set: reads tolerate
  // the break on the scan-in side (garbage shifts in behind the
  // marker), writes on the scan-out side (the value never crosses it).
  sweep(/*forward=*/true, s.sel.data(), /*tolerate=*/true, brokenV,
        graph::kNoVertex, /*avoidCtrlRegs=*/false, s.inRead, s);
  sweep(/*forward=*/false, s.sel.data(), /*tolerate=*/true, brokenV,
        graph::kNoVertex, /*avoidCtrlRegs=*/false, s.outWrite, s);

  if (!cv_.segmentControlsMux(f->prim)) {
    // Clean-suffix mode: configuration CSUs may run with the break
    // exposed as long as no mux address register lies downstream of it
    // on the path — the X smeared over the downstream cells is then
    // never consulted by a path walk, and every demand register sits
    // upstream of the break where its image bits never cross it.  (A
    // broken *control* register is excluded: its own mux still reads
    // the poisoned address whenever its region is walked.)
    sweep(/*forward=*/false, s.sel.data(), /*tolerate=*/true, brokenV,
          graph::kNoVertex, /*avoidCtrlRegs=*/true, s.cleanToOut, s);
    const bool writeSuffixOk = s.cleanToOut.test(brokenV);
    const bool readPrefixOk = s.inRead.test(brokenV);
    if (writeSuffixOk) {
      // Writes: target upstream of the break, suffix after it clean.
      sweep(/*forward=*/false, s.sel.data(), /*tolerate=*/true, brokenV,
            brokenV, /*avoidCtrlRegs=*/false, s.bwdFromB, s);
    }
    if (readPrefixOk) {
      // Reads: target downstream of the break on a join-free tail.
      sweep(/*forward=*/true, s.sel.data(), /*tolerate=*/true, brokenV,
            brokenV, /*avoidCtrlRegs=*/true, s.cleanFromB, s);
    }
    if (writeSuffixOk || readPrefixOk) {
      for (std::size_t i = 0; i < instruments_; ++i) {
        const graph::VertexId v = cv_.instrumentVertex[i];
        if (v == brokenV) continue;
        if (readPrefixOk && s.cleanFromB.test(v) && s.cleanToOut.test(v))
          syn.passed.set(2 * i);
        if (writeSuffixOk && s.inStrict.test(v) && s.bwdFromB.test(v))
          syn.passed.set(2 * i + 1);
      }
    }
  }

  // Depth-bounded mode: keep only the demands that are fully written
  // before the break first joins the active path (configuration round
  // segDepth[broken]); every exposed CSU is then the data round itself,
  // so nothing poisoned is ever consulted.  Re-running the fixpoint
  // re-shrinks branches whose control register the narrower demand set
  // no longer reaches.
  cv_.limitDemandDepth(cv_.segDepth[f->prim], s.sel.data());
  runFixpoint(f, brokenV, s);
  sweep(/*forward=*/false, s.sel.data(), /*tolerate=*/false, brokenV,
        graph::kNoVertex, /*avoidCtrlRegs=*/false, s.outStrict, s);
  sweep(/*forward=*/true, s.sel.data(), /*tolerate=*/true, brokenV,
        graph::kNoVertex, /*avoidCtrlRegs=*/false, s.inRead, s);
  sweep(/*forward=*/false, s.sel.data(), /*tolerate=*/true, brokenV,
        graph::kNoVertex, /*avoidCtrlRegs=*/false, s.outWrite, s);
  emitInto(syn, s.inRead, s.outStrict, s.inStrict, s.outWrite, brokenV);
  return syn;
}

}  // namespace rrsn::diag

// Batched fault-dictionary rows via frontier traversal.
//
// The per-probe dictionary build retargets 2·N accesses per fault on a
// fresh simulator — O(|faults| · |instruments|) full path searches that
// mostly recompute the same reachability.  This engine lowers the
// network once into a flat control view (sim::ControlView) and derives
// a fault's *entire* syndrome row from a handful of whole-graph
// reachability sweeps: forward from scan-in and backward from scan-out,
// under the fault's selectable-branch sets, with an optional shrinking
// fixpoint that drops mux branches whose address register is itself
// unreachable under the fault.
//
// Each sweep is a direction-optimizing BFS in the PaperWasp style: a
// sliding work queue expands the frontier top-down while it is narrow
// (scan graphs are path-like, so this is the common case), and switches
// to a bottom-up bitmap scan — testing every unvisited vertex for a
// visited admissible predecessor, 64 vertices' visited bits per word —
// once the frontier's scout count saturates against the unexplored edge
// count.  The result is a reachability *set*, so the traversal order
// (and hence the switching heuristic) cannot affect any syndrome bit.
//
// Semantics: a syndrome bit is set iff the retargeting engine can
// physically complete the access on the faulty simulator.  For segment
// breaks that is the union of three access modes — strict (the access
// avoids the broken segment entirely), depth-bounded tolerance (every
// configuration demand is written before the break first joins the
// active path, so no CSU ever shifts X into a consulted control
// register), and clean-suffix tolerance (no mux address register lies
// downstream of the break on the path, so the poison that every
// exposed CSU smears over the downstream cells is never consulted).
// campaign::expectedAccessibility delegates here, and campaign_test
// validates the shared oracle against the simulator on the example
// networks; RRSN_DICT_MODE=verify additionally cross-checks every row
// against the per-probe path at runtime.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "rsn/flat.hpp"
#include "rsn/network.hpp"
#include "sim/control_view.hpp"
#include "support/bitset.hpp"

namespace rrsn::diag {

struct Syndrome;

/// How FaultDictionary::build computes syndromes.
enum class DictMode : std::uint8_t {
  Probe,    ///< per-access simulator retargeting (the reference path)
  Batched,  ///< frontier sweeps over the control view
  Verify,   ///< both, cross-checked row-for-row (raises on mismatch)
};

/// RRSN_DICT_MODE=probe|batched|verify; unset (or unrecognized, with a
/// one-time warning) defaults to verify in debug builds and batched in
/// release builds.
DictMode dictModeFromEnv();

const char* dictModeName(DictMode mode);

/// Shared-read engine: one instance per build, row() callable
/// concurrently as long as every caller passes a distinct worker lane.
class BatchedSyndromeEngine {
 public:
  /// Lowers `net` into a fresh flat view first.  Callers that already
  /// hold one (campaigns, services) should pass it instead so the
  /// network is flattened once, not per engine.
  explicit BatchedSyndromeEngine(const rsn::Network& net);

  /// Shares an existing arena: no lowering, just the scratch lanes.
  explicit BatchedSyndromeEngine(std::shared_ptr<const rsn::FlatNetwork> flat);

  /// Syndrome row of `f` (nullptr = fault-free): bit 2i = instrument i
  /// observable, bit 2i+1 = settable.  `worker` < workerLanes() selects
  /// the scratch buffers (pass the lane id from parallelForChunks).
  Syndrome row(const fault::Fault* f, std::size_t worker) const;

  std::size_t workerLanes() const { return scratch_.size(); }

 private:
  struct Scratch {
    std::vector<std::uint64_t> sel;       ///< selectable words
    DynamicBitset inStrict, outStrict;    ///< strict fwd / bwd reach
    DynamicBitset inRead, outWrite;       ///< break-tolerant reaches
    DynamicBitset cleanToOut;   ///< bwd reach avoiding control registers
    DynamicBitset cleanFromB;   ///< fwd reach from the break, reg-free
    DynamicBitset bwdFromB;     ///< bwd reach from the break
    std::vector<graph::VertexId> queue, next;
  };

  /// Reachability sweep into `visited`.  `source` = kNoVertex starts at
  /// scan-in (forward) or scan-out (backward); `tolerate` lets edges
  /// cross the broken vertex; `avoidCtrlRegs` refuses to traverse
  /// through mux address registers (clean-suffix mode).
  void sweep(bool forward, const std::uint64_t* sel, bool tolerate,
             graph::VertexId brokenV, graph::VertexId source,
             bool avoidCtrlRegs, DynamicBitset& visited, Scratch& s) const;

  /// Shrinks s.sel to the branches whose control register stays
  /// strictly reachable (and address-representable); leaves s.inStrict
  /// holding the strict forward reach under the final sets.
  void runFixpoint(const fault::Fault* f, graph::VertexId brokenV,
                   Scratch& s) const;

  /// ORs the verdicts of one access mode into `row` (bits of
  /// instruments sitting on the broken vertex stay 0).
  void emitInto(Syndrome& row, const DynamicBitset& inRead,
                const DynamicBitset& outStrict, const DynamicBitset& inStrict,
                const DynamicBitset& outWrite, graph::VertexId brokenV) const;

  sim::ControlView cv_;
  std::size_t instruments_ = 0;
  mutable std::vector<Scratch> scratch_;
};

}  // namespace rrsn::diag

// Fault diagnosis for RSNs.
//
// The paper positions selective hardening against fault-*tolerant* RSNs
// [4], which "require diagnostic support [5]" to locate a defect before
// access can be re-routed around it.  This module provides that
// substrate: a fault dictionary built from end-to-end simulated access
// outcomes.  For every instrument the engine attempts one retargeted
// read and one retargeted write; the pass/fail vector over all attempts
// is the network's *syndrome*.  Comparing an observed syndrome against
// the precomputed dictionary yields the candidate fault set.
//
// The dictionary doubles as an analysis tool: its equivalence-class
// structure tells how *diagnosable* a network is (how many faults are
// distinguishable from each other and from the fault-free RSN), and how
// a hardening plan — which removes faults from the universe — improves
// both numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "rsn/network.hpp"
#include "support/bitset.hpp"
#include "support/table.hpp"

namespace rrsn::diag {

/// Pass/fail outcome of the standard test-access set: bit 2i is the
/// read of instrument i, bit 2i+1 the write.
struct Syndrome {
  DynamicBitset passed;

  bool operator==(const Syndrome&) const = default;

  /// Number of differing outcomes.
  std::size_t distanceTo(const Syndrome& other) const;
};

/// Result of diagnosing one observed syndrome.
struct Diagnosis {
  /// Faults whose dictionary syndrome matches exactly (empty if the
  /// syndrome equals the fault-free one or is unknown).
  std::vector<fault::Fault> exactMatches;
  /// True if the observed syndrome equals the fault-free syndrome.
  bool faultFree = false;
  /// When there is no exact match: the dictionary entries at minimum
  /// Hamming distance (defect outside the single-fault model, or a
  /// multi-fault situation).
  std::vector<fault::Fault> nearestMatches;
  std::size_t nearestDistance = 0;
};

/// Precomputed syndrome dictionary over the single-fault universe.
class FaultDictionary {
 public:
  /// Simulates the complete fault universe of `net` (2 retargeted
  /// accesses per instrument per fault).  O(|faults| * |instruments|)
  /// simulations, fanned out over the fault universe on the process
  /// thread pool (RRSN_THREADS); the dictionary is byte-identical for
  /// any thread count.
  static FaultDictionary build(const rsn::Network& net);

  const rsn::Network& network() const { return *net_; }
  const Syndrome& faultFreeSyndrome() const { return faultFree_; }
  const std::vector<fault::Fault>& faults() const { return faults_; }
  const Syndrome& syndromeOf(std::size_t faultIndex) const;

  /// Measures the syndrome of a (possibly fault-injected) network by
  /// running the standard access set on a fresh simulator.
  static Syndrome measure(const rsn::Network& net, const fault::Fault* f);

  /// Looks the observed syndrome up in the dictionary.
  Diagnosis diagnose(const Syndrome& observed) const;

  /// Diagnosability statistics.
  struct Resolution {
    std::size_t faults = 0;        ///< size of the fault universe
    std::size_t detectable = 0;    ///< syndrome differs from fault-free
    std::size_t classes = 0;       ///< distinct syndromes among detectable
    double avgAmbiguity = 0.0;     ///< mean candidates per detectable fault
  };
  Resolution resolution() const;

  /// Resolution restricted to faults at unhardened primitives (a
  /// hardening plan removes the others from the universe).
  Resolution resolutionExcluding(
      const std::vector<bool>& hardenedLinear) const;

  /// Per-class summary table (size-capped) for reports.
  TextTable classTable(std::size_t maxRows) const;

 private:
  const rsn::Network* net_ = nullptr;
  std::vector<fault::Fault> faults_;
  std::vector<Syndrome> syndromes_;
  Syndrome faultFree_;
};

}  // namespace rrsn::diag

// Fault diagnosis for RSNs.
//
// The paper positions selective hardening against fault-*tolerant* RSNs
// [4], which "require diagnostic support [5]" to locate a defect before
// access can be re-routed around it.  This module provides that
// substrate: a fault dictionary built from end-to-end access outcomes.
// For every instrument the engine attempts one retargeted read and one
// retargeted write; the pass/fail vector over all attempts is the
// network's *syndrome*.  Comparing an observed syndrome against the
// precomputed dictionary yields the candidate fault set.
//
// Two build engines produce the same rows (selected by RRSN_DICT_MODE,
// see diag/batched.hpp): the per-probe reference path simulates every
// access on a fresh simulator, while the batched path derives each
// fault's whole row from a few frontier-based reachability sweeps over
// a flat control view — the difference is 2·|faults|·|instruments| path
// searches versus O(|faults|) sweeps.  `verify` runs both and raises on
// any row difference.
//
// The dictionary doubles as an analysis tool: its equivalence-class
// structure tells how *diagnosable* a network is (how many faults are
// distinguishable from each other and from the fault-free RSN), and how
// a hardening plan — which removes faults from the universe — improves
// both numbers.  Classes are keyed by FNV-1a fingerprints of the
// syndrome bits (support/hash.hpp) with equality checks on collision.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "diag/batched.hpp"
#include "fault/fault.hpp"
#include "rsn/network.hpp"
#include "support/bitset.hpp"
#include "support/table.hpp"

namespace rrsn::diag {

/// Pass/fail outcome of the standard test-access set: bit 2i is the
/// read of instrument i, bit 2i+1 the write.
struct Syndrome {
  DynamicBitset passed;

  bool operator==(const Syndrome&) const = default;

  /// Number of differing outcomes.
  std::size_t distanceTo(const Syndrome& other) const;

  /// Hamming distance with an early exit: returns the exact distance
  /// when it is <= bound, otherwise some value > bound (the partial
  /// count at the word where the bound was exceeded).
  std::size_t distanceToAtMost(const Syndrome& other,
                               std::size_t bound) const;
};

/// Row-union composition of two single-fault syndromes: an access can
/// only pass under the simultaneous pair if it passes under both faults
/// individually, so the composed *failure* set is the union of the two
/// rows' failures (passed = AND).  Composition is a structural bound,
/// not ground truth — real pair physics can mask one fault behind the
/// other — which is exactly why diagnosePair cross-checks candidates on
/// the simulator in verify mode.
Syndrome composeSyndromes(const Syndrome& a, const Syndrome& b);

/// Result of diagnosing one observed syndrome.
struct Diagnosis {
  /// Faults whose dictionary syndrome matches exactly (empty if the
  /// syndrome equals the fault-free one or is unknown).
  std::vector<fault::Fault> exactMatches;
  /// True if the observed syndrome equals the fault-free syndrome.
  bool faultFree = false;
  /// When there is no exact match: the dictionary entries at minimum
  /// Hamming distance (defect outside the single-fault model, or a
  /// multi-fault situation).
  std::vector<fault::Fault> nearestMatches;
  std::size_t nearestDistance = 0;
};

/// Precomputed syndrome dictionary over the single-fault universe.
class FaultDictionary {
 public:
  /// Builds the dictionary in the mode selected by RRSN_DICT_MODE
  /// (default: batched in release builds, verify in debug builds).
  /// Both engines fan the fault universe out over the process thread
  /// pool (RRSN_THREADS / RRSN_GRAIN) with slot-per-fault placement;
  /// the dictionary is byte-identical for any thread count.
  static FaultDictionary build(const rsn::Network& net);

  /// Builds with an explicit engine mode.
  static FaultDictionary build(const rsn::Network& net, DictMode mode);

  const rsn::Network& network() const { return *net_; }
  const Syndrome& faultFreeSyndrome() const { return faultFree_; }
  const std::vector<fault::Fault>& faults() const { return faults_; }
  const Syndrome& syndromeOf(std::size_t faultIndex) const;
  DictMode mode() const { return mode_; }

  /// Measures the syndrome of a (possibly fault-injected) network by
  /// running the standard access set on a fresh simulator (the
  /// per-probe reference path, independent of the build mode).
  static Syndrome measure(const rsn::Network& net, const fault::Fault* f);

  /// Same, with any number of simultaneous permanent faults injected —
  /// the reference measurement for multi-fault diagnosis.
  static Syndrome measureMulti(const rsn::Network& net,
                               const std::vector<fault::Fault>& faults);

  /// Looks the observed syndrome up in the dictionary: exact matches
  /// via the fingerprint index, otherwise a popcount-pruned
  /// nearest-distance scan.
  Diagnosis diagnose(const Syndrome& observed) const;

  /// Result of diagnosing an observed syndrome against *composed* fault
  /// pairs.  The candidate set is every unordered pair of single faults
  /// whose row-union composition (composeSyndromes) reproduces the
  /// observation; pairs are enumerated over syndrome equivalence
  /// classes, so the scan is quadratic in the class count, not the
  /// fault count.  The listing is capped; exactPairCount keeps the true
  /// ambiguity (how many pairs are indistinguishable from the
  /// observation under composition).
  struct PairDiagnosis {
    /// True if the observed syndrome equals the fault-free one.
    bool faultFree = false;
    /// Candidate pairs in canonical (fault-index) order, first
    /// kMaxListedPairs only.
    std::vector<std::pair<fault::Fault, fault::Fault>> exactPairs;
    /// Total number of composition-matching pairs (the ambiguity).
    std::size_t exactPairCount = 0;
    /// Verify-mode only: true when at least one listed candidate pair
    /// re-measured on the simulator (measureMulti) reproduces the
    /// observation exactly.  False in other modes, and false when every
    /// re-measured candidate diverges — the signature of a pair whose
    /// physics the composition bound cannot express.
    bool verifiedBySimulation = false;

    static constexpr std::size_t kMaxListedPairs = 64;
    static constexpr std::size_t kMaxVerifiedPairs = 8;
  };

  /// Diagnoses `observed` as a simultaneous fault pair.  In Verify mode
  /// the first kMaxVerifiedPairs candidates are cross-checked against
  /// the per-probe simulator (see PairDiagnosis::verifiedBySimulation).
  PairDiagnosis diagnosePair(const Syndrome& observed) const;

  /// Diagnosability statistics.
  struct Resolution {
    std::size_t faults = 0;        ///< size of the fault universe
    std::size_t detectable = 0;    ///< syndrome differs from fault-free
    std::size_t classes = 0;       ///< distinct syndromes among detectable
    double avgAmbiguity = 0.0;     ///< mean candidates per detectable fault
  };
  Resolution resolution() const;

  /// Resolution restricted to faults at unhardened primitives (a
  /// hardening plan removes the others from the universe).
  Resolution resolutionExcluding(
      const std::vector<bool>& hardenedLinear) const;

  /// Per-class summary table (size-capped) for reports.  Rows are
  /// ordered by class size descending, ties broken by the smallest
  /// member fault index.
  TextTable classTable(std::size_t maxRows) const;

 private:
  /// Fingerprints, popcounts and the exact-match hash index over the
  /// built syndromes.
  void buildIndex();

  const rsn::Network* net_ = nullptr;
  DictMode mode_ = DictMode::Probe;
  std::vector<fault::Fault> faults_;
  std::vector<Syndrome> syndromes_;
  Syndrome faultFree_;
  std::vector<std::uint64_t> fingerprints_;  ///< per fault, of syndromes_
  std::vector<std::uint32_t> popcounts_;     ///< per fault, of syndromes_
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> exactIndex_;
};

}  // namespace rrsn::diag

#include "crit/analyzer.hpp"

#include <algorithm>
#include <numeric>

#include "fault/fault.hpp"
#include "lint/lint.hpp"
#include "obs/obs.hpp"
#include "rsn/graph_view.hpp"
#include "support/parallel.hpp"

namespace rrsn::crit {

using fault::Fault;
using fault::FaultUniverse;

namespace {

std::uint64_t combine(MuxDamagePolicy policy,
                      const std::vector<std::uint64_t>& perBranch) {
  RRSN_CHECK(!perBranch.empty(), "mux without stuck-at faults");
  switch (policy) {
    case MuxDamagePolicy::WorstCase:
      return *std::max_element(perBranch.begin(), perBranch.end());
    case MuxDamagePolicy::Sum:
      return std::accumulate(perBranch.begin(), perBranch.end(),
                             std::uint64_t{0});
    case MuxDamagePolicy::Mean:
      return std::accumulate(perBranch.begin(), perBranch.end(),
                             std::uint64_t{0}) /
             perBranch.size();
  }
  throw Error("unreachable mux damage policy");
}

}  // namespace

CriticalityResult::CriticalityResult(const rsn::Network& net,
                                     std::vector<std::uint64_t> d)
    : net_(&net), damages_(std::move(d)) {
  RRSN_CHECK(damages_.size() == net.primitiveCount(),
             "damage vector does not match the primitive count");
  for (std::uint64_t v : damages_) total_ += v;
}

std::vector<std::size_t> CriticalityResult::ranking() const {
  std::vector<std::size_t> order(damages_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return damages_[a] > damages_[b];
                   });
  return order;
}

TextTable CriticalityResult::report(std::size_t topK) const {
  TextTable table({"rank", "primitive", "kind", "damage d_j", "share"});
  table.setAlign(1, TextTable::Align::Left);
  table.setAlign(2, TextTable::Align::Left);
  const auto order = ranking();
  const std::size_t k = std::min(topK, order.size());
  for (std::size_t r = 0; r < k; ++r) {
    const std::size_t id = order[r];
    const rsn::PrimitiveRef ref = net_->refOf(id);
    const double share =
        total_ == 0 ? 0.0
                    : 100.0 * static_cast<double>(damages_[id]) /
                          static_cast<double>(total_);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f%%", share);
    table.addRow({std::to_string(r + 1), net_->primitiveName(ref),
                  ref.kind == rsn::PrimitiveRef::Kind::Segment ? "segment"
                                                               : "mux",
                  withThousands(damages_[id]), buf});
  }
  return table;
}

CriticalityAnalyzer::CriticalityAnalyzer(const rsn::Network& net,
                                         const rsn::CriticalitySpec& spec,
                                         AnalysisOptions options)
    : net_(&net),
      spec_(&spec),
      options_(options),
      tree_(sp::DecompositionTree::build(net)) {
  if (options_.lint) lint::enforceClean(net, "criticality analysis");
  tree_.annotate(spec);
}

CriticalityResult CriticalityAnalyzer::run() const {
  RRSN_OBS_SPAN("crit.run");
  static const obs::MetricId kFaults = obs::counter("crit.faults_evaluated");
  std::vector<std::uint64_t> d(net_->primitiveCount(), 0);
  // Every fault is evaluated against the immutable annotated tree and
  // writes only its own primitive's slot, so the sweep fans out over the
  // fault universe with thread-count-independent results.  A single
  // fault costs well under a microsecond (O(tree depth)), so both loops
  // pass an explicit grain: networks below a few thousand primitives run
  // serially — BENCH_scalability.json showed the pooled sweep *slower*
  // than serial (0.48–1.07x) on every medium design because per-task
  // dispatch overhead dominated the sub-millisecond total.
  // Segments: one break fault each; O(tree depth) per segment.
  {
    RRSN_OBS_SPAN("crit.segments");
    parallelFor(
        net_->segments().size(),
        [&](std::size_t s) {
          d[net_->linearId({rsn::PrimitiveRef::Kind::Segment,
                            static_cast<rsn::SegmentId>(s)})] =
              fault::damageUnderFaultTree(
                  tree_, Fault::segmentBreak(static_cast<rsn::SegmentId>(s)));
        },
        /*grain=*/2048);
    obs::count(kFaults, net_->segments().size());
  }
  // Muxes: k stuck-at faults combined by policy; O(#branches) per mux.
  {
    RRSN_OBS_SPAN("crit.muxes");
    parallelFor(
        net_->muxes().size(),
        [&](std::size_t mi) {
          const auto m = static_cast<rsn::MuxId>(mi);
          const auto& branches = tree_.branchesOfMux(m);
          std::vector<std::uint64_t> perBranch;
          perBranch.reserve(branches.size());
          for (std::uint32_t b = 0; b < branches.size(); ++b)
            perBranch.push_back(
                fault::damageUnderFaultTree(tree_, Fault::muxStuck(m, b)));
          d[net_->linearId({rsn::PrimitiveRef::Kind::Mux, m})] =
              combine(options_.muxPolicy, perBranch);
          obs::count(kFaults, branches.size());
        },
        /*grain=*/256);
  }
  return CriticalityResult(*net_, std::move(d));
}

CriticalityResult bruteForceAnalysis(const rsn::Network& net,
                                     const rsn::CriticalitySpec& spec,
                                     AnalysisOptions options) {
  const rsn::GraphView gv = rsn::buildGraphView(net);
  const FaultUniverse universe(net);
  std::vector<std::uint64_t> d(net.primitiveCount(), 0);
  // The oracle is embarrassingly parallel per primitive: each iteration
  // only reads the shared network/graph view and owns slot d[linear].
  parallelFor(net.primitiveCount(), [&](std::size_t linear) {
    const rsn::PrimitiveRef ref = net.refOf(linear);
    std::vector<std::uint64_t> perFault;
    for (const Fault& f : universe.faultsAt(ref)) {
      perFault.push_back(
          fault::damageOfLoss(spec, fault::lossUnderFaultGraph(net, gv, f)));
    }
    d[linear] = ref.kind == rsn::PrimitiveRef::Kind::Segment
                    ? perFault.at(0)
                    : combine(options.muxPolicy, perFault);
  });
  return CriticalityResult(net, std::move(d));
}

}  // namespace rrsn::crit

#include "crit/analyzer.hpp"

#include <algorithm>
#include <numeric>

#include "fault/fault.hpp"
#include "lint/lint.hpp"
#include "obs/obs.hpp"
#include "rsn/graph_view.hpp"
#include "support/parallel.hpp"

namespace rrsn::crit {

using fault::Fault;
using fault::FaultUniverse;

namespace {

std::uint64_t combine(MuxDamagePolicy policy,
                      const std::vector<std::uint64_t>& perBranch) {
  RRSN_CHECK(!perBranch.empty(), "mux without stuck-at faults");
  switch (policy) {
    case MuxDamagePolicy::WorstCase:
      return *std::max_element(perBranch.begin(), perBranch.end());
    case MuxDamagePolicy::Sum:
      return std::accumulate(perBranch.begin(), perBranch.end(),
                             std::uint64_t{0});
    case MuxDamagePolicy::Mean:
      return std::accumulate(perBranch.begin(), perBranch.end(),
                             std::uint64_t{0}) /
             perBranch.size();
  }
  throw Error("unreachable mux damage policy");
}

}  // namespace

CriticalityResult::CriticalityResult(const rsn::Network& net,
                                     std::vector<std::uint64_t> d)
    : net_(&net), damages_(std::move(d)) {
  RRSN_CHECK(damages_.size() == net.primitiveCount(),
             "damage vector does not match the primitive count");
  for (std::uint64_t v : damages_) total_ += v;
}

std::vector<std::size_t> CriticalityResult::ranking() const {
  std::vector<std::size_t> order(damages_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return damages_[a] > damages_[b];
                   });
  return order;
}

TextTable CriticalityResult::report(std::size_t topK) const {
  TextTable table({"rank", "primitive", "kind", "damage d_j", "share"});
  table.setAlign(1, TextTable::Align::Left);
  table.setAlign(2, TextTable::Align::Left);
  const auto order = ranking();
  const std::size_t k = std::min(topK, order.size());
  for (std::size_t r = 0; r < k; ++r) {
    const std::size_t id = order[r];
    const rsn::PrimitiveRef ref = net_->refOf(id);
    const double share =
        total_ == 0 ? 0.0
                    : 100.0 * static_cast<double>(damages_[id]) /
                          static_cast<double>(total_);
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f%%", share);
    table.addRow({std::to_string(r + 1), net_->primitiveName(ref),
                  ref.kind == rsn::PrimitiveRef::Kind::Segment ? "segment"
                                                               : "mux",
                  withThousands(damages_[id]), buf});
  }
  return table;
}

std::uint64_t CriticalityAnalyzer::Kernel::segmentBreakDamage(
    std::uint32_t s) const {
  std::uint64_t damage = 0;
  std::uint32_t cur = leafOfSegment[s];
  if (segHasInstrument[s] != 0) damage += sumObs[cur] + sumSet[cur];
  std::uint32_t p = parent[cur];
  while (p != sp::kNoTree && kind[p] != kParallel) {
    if (kind[p] == kSeries)
      damage += right[p] == cur ? sumObs[left[p]]    // upstream: unobservable
                                : sumSet[right[p]];  // downstream: unsettable
    cur = p;
    p = parent[p];
  }
  return damage;
}

std::uint64_t CriticalityAnalyzer::Kernel::muxStuckDamage(
    std::uint32_t m, std::uint32_t stuck) const {
  const std::uint32_t begin = branchOffsets[m], end = branchOffsets[m + 1];
  std::uint64_t damage = 0;
  for (std::uint32_t b = begin; b < end; ++b) {
    if (b - begin == stuck) continue;
    const std::uint32_t root = branchRoots[b];
    damage += sumObs[root] + sumSet[root];
  }
  return damage;
}

CriticalityAnalyzer::CriticalityAnalyzer(const rsn::Network& net,
                                         const rsn::CriticalitySpec& spec,
                                         AnalysisOptions options)
    : net_(&net),
      spec_(&spec),
      options_(options),
      tree_(sp::DecompositionTree::build(net)) {
  if (options_.lint) lint::enforceClean(net, "criticality analysis");
  tree_.annotate(spec);

  // Flatten the annotated tree into the SoA kernel image once; run()
  // touches only these contiguous arrays.
  const std::size_t nodes = tree_.nodeCount();
  kernel_.parent.resize(nodes);
  kernel_.left.resize(nodes);
  kernel_.right.resize(nodes);
  kernel_.kind.resize(nodes);
  kernel_.sumObs.resize(nodes);
  kernel_.sumSet.resize(nodes);
  for (sp::TreeId id = 0; id < nodes; ++id) {
    const sp::TreeNode& n = tree_.node(id);
    kernel_.parent[id] = n.parent;
    kernel_.left[id] = n.left;
    kernel_.right[id] = n.right;
    kernel_.kind[id] = n.kind == sp::TreeKind::Series     ? Kernel::kSeries
                       : n.kind == sp::TreeKind::Parallel ? Kernel::kParallel
                                                          : 0;
    kernel_.sumObs[id] = n.sumObs;
    kernel_.sumSet[id] = n.sumSet;
  }
  const std::size_t segments = net.segments().size();
  kernel_.leafOfSegment.resize(segments);
  kernel_.segHasInstrument.resize(segments);
  for (std::size_t s = 0; s < segments; ++s) {
    const auto seg = static_cast<rsn::SegmentId>(s);
    kernel_.leafOfSegment[s] = tree_.leafOfSegment(seg);
    kernel_.segHasInstrument[s] =
        net.segment(seg).instrument != rsn::kNone ? 1 : 0;
  }
  const std::size_t muxes = net.muxes().size();
  kernel_.branchOffsets.assign(muxes + 1, 0);
  for (std::size_t m = 0; m < muxes; ++m) {
    const auto& branches = tree_.branchesOfMux(static_cast<rsn::MuxId>(m));
    kernel_.branchOffsets[m + 1] =
        kernel_.branchOffsets[m] + static_cast<std::uint32_t>(branches.size());
    kernel_.branchRoots.insert(kernel_.branchRoots.end(), branches.begin(),
                               branches.end());
  }
}

CriticalityResult CriticalityAnalyzer::run() const {
  RRSN_OBS_SPAN("crit.run");
  static const obs::MetricId kFaults = obs::counter("crit.faults_evaluated");
  std::vector<std::uint64_t> d(net_->primitiveCount(), 0);
  // Every fault is evaluated against the immutable annotated tree and
  // writes only its own primitive's slot, so the sweep fans out over the
  // fault universe with thread-count-independent results.  A single
  // fault costs well under a microsecond (O(tree depth)), so both loops
  // pass an explicit grain: networks below a few thousand primitives run
  // serially — BENCH_scalability.json showed the pooled sweep *slower*
  // than serial (0.48–1.07x) on every medium design because per-task
  // dispatch overhead dominated the sub-millisecond total.
  // Segments: one break fault each; O(tree depth) per segment.
  {
    RRSN_OBS_SPAN("crit.segments");
    parallelFor(
        net_->segments().size(),
        [&](std::size_t s) {
          const std::uint64_t damage =
              kernel_.segmentBreakDamage(static_cast<std::uint32_t>(s));
#ifndef NDEBUG
          RRSN_CHECK(damage ==
                         fault::damageUnderFaultTree(
                             tree_, Fault::segmentBreak(
                                        static_cast<rsn::SegmentId>(s))),
                     "SoA kernel diverges from the tree walk on segment " +
                         net_->segment(static_cast<rsn::SegmentId>(s)).name);
#endif
          d[net_->linearId({rsn::PrimitiveRef::Kind::Segment,
                            static_cast<rsn::SegmentId>(s)})] = damage;
        },
        /*grain=*/2048);
    obs::count(kFaults, net_->segments().size());
  }
  // Muxes: k stuck-at faults combined by policy; O(#branches) per mux.
  {
    RRSN_OBS_SPAN("crit.muxes");
    parallelFor(
        net_->muxes().size(),
        [&](std::size_t mi) {
          const auto m = static_cast<rsn::MuxId>(mi);
          const std::uint32_t arity =
              kernel_.branchOffsets[mi + 1] - kernel_.branchOffsets[mi];
          std::vector<std::uint64_t> perBranch;
          perBranch.reserve(arity);
          for (std::uint32_t b = 0; b < arity; ++b) {
            perBranch.push_back(kernel_.muxStuckDamage(m, b));
#ifndef NDEBUG
            RRSN_CHECK(perBranch.back() ==
                           fault::damageUnderFaultTree(tree_,
                                                       Fault::muxStuck(m, b)),
                       "SoA kernel diverges from the tree walk on mux " +
                           net_->mux(m).name);
#endif
          }
          d[net_->linearId({rsn::PrimitiveRef::Kind::Mux, m})] =
              combine(options_.muxPolicy, perBranch);
          obs::count(kFaults, arity);
        },
        /*grain=*/256);
  }
  return CriticalityResult(*net_, std::move(d));
}

CriticalityResult bruteForceAnalysis(const rsn::Network& net,
                                     const rsn::CriticalitySpec& spec,
                                     AnalysisOptions options) {
  const rsn::GraphView gv = rsn::buildGraphView(net);
  const FaultUniverse universe(net);
  std::vector<std::uint64_t> d(net.primitiveCount(), 0);
  // The oracle is embarrassingly parallel per primitive: each iteration
  // only reads the shared network/graph view and owns slot d[linear].
  parallelFor(net.primitiveCount(), [&](std::size_t linear) {
    const rsn::PrimitiveRef ref = net.refOf(linear);
    std::vector<std::uint64_t> perFault;
    for (const Fault& f : universe.faultsAt(ref)) {
      perFault.push_back(
          fault::damageOfLoss(spec, fault::lossUnderFaultGraph(net, gv, f)));
    }
    // -fanalyzer suppression: a Segment ref always yields exactly one
    // fault (its break), so perFault is non-empty here, and .at(0)
    // throws rather than dereferencing on the empty path anyway.  The
    // analyzer cannot see through FaultUniverse::faultsAt and reports
    // a NULL dereference of the empty vector's data pointer.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wanalyzer-null-dereference"
#endif
    d[linear] = ref.kind == rsn::PrimitiveRef::Kind::Segment
                    ? perFault.at(0)
                    : combine(options.muxPolicy, perFault);
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif
  });
  return CriticalityResult(net, std::move(d));
}

}  // namespace rrsn::crit

// Criticality analysis (Sec. IV): per-primitive damage d_j.
//
// The damage of primitive j (Eq. 1) is the weighted sum of instruments
// that become unobservable / unsettable when j is defect:
//
//   d_j = sum_i do_i * y_ij + sum_i ds_i * z_ij
//
// Segments have exactly one fault (break); a k-input multiplexer has k
// stuck-at faults, combined into one damage value by a policy (the paper
// speaks of "a defect" per primitive; WorstCase — the default — charges
// the most damaging stuck value, which is the conservative choice for
// hardening decisions).
//
// CriticalityAnalyzer is the paper's fast hierarchical computation on the
// annotated binary decomposition tree (O(N log N) total).
// BruteForceAnalyzer recomputes every d_j from the flat-graph fault
// oracle (O(N * E)) and exists purely to cross-check the fast path.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/effects.hpp"
#include "rsn/network.hpp"
#include "rsn/spec.hpp"
#include "sp/decomposition.hpp"
#include "support/table.hpp"

namespace rrsn::crit {

/// How the per-branch stuck-at damages of one mux are combined.
enum class MuxDamagePolicy : std::uint8_t {
  WorstCase,  ///< max over stuck values (default; conservative)
  Sum,        ///< sum over stuck values
  Mean,       ///< average over stuck values (rounded down)
};

struct AnalysisOptions {
  MuxDamagePolicy muxPolicy = MuxDamagePolicy::WorstCase;
  /// Fail fast on networks with error-severity lint findings (control
  /// deadlocks, unreachable segments, ...): the analyzer throws
  /// lint::LintError from its constructor instead of computing damages
  /// for configurations that can never be reached.  Disable to analyze
  /// a known-defective model anyway.
  bool lint = true;
};

/// Result of a criticality analysis: d_j per linear primitive id
/// (segments first, then muxes — see Network::linearId).
class CriticalityResult {
 public:
  CriticalityResult(const rsn::Network& net, std::vector<std::uint64_t> d);

  const rsn::Network& network() const { return *net_; }

  const std::vector<std::uint64_t>& damages() const { return damages_; }
  std::uint64_t damageOf(std::size_t linearId) const {
    RRSN_CHECK(linearId < damages_.size(), "linear id out of range");
    return damages_[linearId];
  }

  /// Sum over all primitives: the paper's "Max. Damage" (Table I col 5) —
  /// the accumulated damage when no primitive is hardened.
  std::uint64_t totalDamage() const { return total_; }

  /// Linear ids sorted by decreasing damage (ties by id).
  std::vector<std::size_t> ranking() const;

  /// Table of the `topK` most critical primitives.
  TextTable report(std::size_t topK) const;

 private:
  const rsn::Network* net_;
  std::vector<std::uint64_t> damages_;
  std::uint64_t total_ = 0;
};

/// Fast hierarchical analysis on the annotated decomposition tree.
///
/// The per-fault damage walks run over a flat structure-of-arrays image
/// of the annotated tree (contiguous parent/child/kind/sum arrays plus
/// a CSR of mux branch roots), not the node objects — at 10^6 segments
/// the pointer-model walk is memory-bound on scattered TreeNode loads.
/// Debug builds cross-check every kernel result against
/// fault::damageUnderFaultTree on the real tree.
class CriticalityAnalyzer {
 public:
  CriticalityAnalyzer(const rsn::Network& net, const rsn::CriticalitySpec& spec,
                      AnalysisOptions options = {});

  /// Runs (or re-runs) the analysis.
  CriticalityResult run() const;

  /// The annotated decomposition tree (e.g. for figure rendering).
  const sp::DecompositionTree& tree() const { return tree_; }

 private:
  /// Flat SoA image of the annotated tree.  Node kinds collapse to the
  /// two bits the damage walks branch on.
  struct Kernel {
    static constexpr std::uint8_t kSeries = 1;
    static constexpr std::uint8_t kParallel = 2;

    std::vector<std::uint32_t> parent, left, right;  ///< per tree node
    std::vector<std::uint8_t> kind;                  ///< 0 / kSeries / kParallel
    std::vector<std::uint64_t> sumObs, sumSet;       ///< subtree damages
    std::vector<std::uint32_t> leafOfSegment;        ///< per segment
    std::vector<std::uint8_t> segHasInstrument;      ///< per segment
    /// Mux m's branch subtree roots: branchRoots[branchOffsets[m],
    /// branchOffsets[m + 1]).
    std::vector<std::uint32_t> branchOffsets, branchRoots;

    std::uint64_t segmentBreakDamage(std::uint32_t s) const;
    std::uint64_t muxStuckDamage(std::uint32_t m, std::uint32_t stuck) const;
  };

  const rsn::Network* net_;
  const rsn::CriticalitySpec* spec_;
  AnalysisOptions options_;
  sp::DecompositionTree tree_;
  Kernel kernel_;
};

/// Oracle analysis from the flat-graph fault effects; cross-checks the
/// fast path in tests.  Quadratic — use on small/medium networks only.
CriticalityResult bruteForceAnalysis(const rsn::Network& net,
                                     const rsn::CriticalitySpec& spec,
                                     AnalysisOptions options = {});

}  // namespace rrsn::crit

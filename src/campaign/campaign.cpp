#include "campaign/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <queue>

#include "campaign/checkpoint.hpp"
#include "fault/effects.hpp"
#include "lint/lint.hpp"
#include "obs/obs.hpp"
#include "rsn/graph_view.hpp"
#include "sim/simulator.hpp"
#include "sp/decomposition.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace rrsn::campaign {

char toChar(Outcome o) {
  switch (o) {
    case Outcome::Accessible:
      return 'A';
    case Outcome::Recovered:
      return 'R';
    case Outcome::Lost:
      return 'L';
  }
  RRSN_CHECK(false, "invalid Outcome");
}

Outcome outcomeFromChar(char c) {
  switch (c) {
    case 'A':
      return Outcome::Accessible;
    case 'R':
      return Outcome::Recovered;
    case 'L':
      return Outcome::Lost;
    default:
      throw ValidationError("invalid outcome character in campaign record");
  }
}

namespace {

/// One end-to-end access on a freshly reset fault-injected simulator.
/// The simulator and engine are shared across the fault's probes (the
/// reset between probes restores power-up state exactly, and the
/// engine's path tables depend only on the topology); any engine-level
/// failure (no valid path, rounds exhausted, marker poisoned) is the
/// definition of "lost", so Error maps to Lost rather than escaping the
/// campaign.
Outcome probeAccess(sim::ScanSimulator& sim, sim::Retargeter& engine,
                    const fault::Fault& f, rsn::InstrumentId inst,
                    bool isRead) {
  try {
    sim.reset();
    sim.injectFault(f);
    sim::RetargetResult r;
    if (isRead) {
      r = engine.readInstrument(inst);
    } else {
      const rsn::Network& net = sim.network();
      const std::uint32_t len = net.segment(net.instrument(inst).segment).length;
      r = engine.writeInstrument(inst, sim::accessMarker(len));
    }
    if (!r.success) return Outcome::Lost;
    return r.rerouted ? Outcome::Recovered : Outcome::Accessible;
  } catch (const Error&) {
    return Outcome::Lost;
  }
}

void tallyByKind(const fault::Fault& f, std::size_t& breaks,
                 std::size_t& stucks) {
  if (f.kind == fault::FaultKind::SegmentBreak) {
    breaks += 1;
  } else {
    stucks += 1;
  }
}

/// Collects sim-vs-reference disagreements of one finished record.
void collectDiffs(const FaultRecord& rec, std::size_t instruments,
                  const DynamicBitset& refObservable,
                  const DynamicBitset& refSettable,
                  std::vector<Mismatch>& items) {
  for (std::size_t i = 0; i < instruments; ++i) {
    const auto inst = static_cast<rsn::InstrumentId>(i);
    if (rec.readAccessible(i) != refObservable.test(i)) {
      items.push_back({rec.fault, inst, /*isRead=*/true,
                       outcomeFromChar(rec.read[i]), refObservable.test(i)});
    }
    if (rec.writeAccessible(i) != refSettable.test(i)) {
      items.push_back({rec.fault, inst, /*isRead=*/false,
                       outcomeFromChar(rec.write[i]), refSettable.test(i)});
    }
  }
}

}  // namespace

Expectation expectedAccessibility(const rsn::Network& net,
                                  const rsn::GraphView& gv,
                                  const fault::Fault& f) {
  const graph::Digraph& g = gv.graph;
  const std::size_t muxCount = net.muxes().size();

  const graph::VertexId brokenV = f.kind == fault::FaultKind::SegmentBreak
                                      ? gv.segmentVertex[f.prim]
                                      : graph::kNoVertex;

  // A broken control register is special: once it is clocked (it sits on
  // the active path during a CSU round) it re-poisons itself, its mux's
  // address resolves to X and the active path collapses.  Two access
  // modes survive, and the expectation is their union:
  //  * avoid mode — the whole access (instrument path and every control
  //    write) stays clear of the broken register, so it is never
  //    clocked; normal multi-round retargeting works;
  //  * zero-config mode — the broken register is on the path, but the
  //    access needs no CSU configuration round at all (reset selections
  //    plus TAP-steered muxes), so the single data round completes
  //    before the poisoned address is ever consulted.
  bool controlBreak = false;
  if (f.kind == fault::FaultKind::SegmentBreak) {
    for (const rsn::Mux& m : net.muxes())
      if (m.controlSegment == f.prim) controlBreak = true;
  }

  // selectable[m][b]: can the engine put branch b of mux m on the path?
  // Branch 0 is the reset selection (control registers power up at 0).
  const auto baseSelectable = [&]() {
    std::vector<std::vector<char>> selectable(muxCount);
    for (std::size_t m = 0; m < muxCount; ++m) {
      const std::size_t arity = gv.muxBranchExit[m].size();
      selectable[m].assign(arity, 1);
      if (f.kind == fault::FaultKind::MuxStuck && f.prim == m) {
        selectable[m].assign(arity, 0);
        selectable[m][f.stuckBranch] = 1;
      }
    }
    return selectable;
  };

  std::vector<std::uint32_t> muxOfVertex(g.vertexCount(), rsn::kNone);
  for (std::size_t m = 0; m < muxCount; ++m)
    muxOfVertex[gv.muxVertex[m]] = static_cast<std::uint32_t>(m);

  const std::size_t instruments = net.instruments().size();

  // Computes per-instrument verdicts for one access mode.  `runFixpoint`
  // shrinks non-reset branches to those whose control register is still
  // settable; `tolerateBreakSides` lets the data round cross the broken
  // segment on the harmless side (scan-in for reads, scan-out for
  // writes) — avoid mode must not, the register would get clocked.
  const auto verdicts = [&](std::vector<std::vector<char>> selectable,
                            bool runFixpoint, bool tolerateBreakSides) {
    const auto edgeAllowed = [&](graph::VertexId from, graph::VertexId to,
                                 bool tolerateBreak) {
      if (!tolerateBreak && (from == brokenV || to == brokenV)) return false;
      const std::uint32_t m = muxOfVertex[to];
      if (m != rsn::kNone) {
        bool ok = false;
        for (std::size_t b = 0; b < gv.muxBranchExit[m].size(); ++b)
          if (gv.muxBranchExit[m][b] == from && selectable[m][b] != 0)
            ok = true;
        if (!ok) return false;
      }
      return true;
    };
    const auto forwardReach = [&](bool tolerateBreak) {
      std::vector<char> reach(g.vertexCount(), 0);
      std::queue<graph::VertexId> work;
      reach[gv.scanIn] = 1;
      work.push(gv.scanIn);
      while (!work.empty()) {
        const graph::VertexId v = work.front();
        work.pop();
        for (graph::VertexId s : g.successors(v)) {
          if (reach[s] != 0 || !edgeAllowed(v, s, tolerateBreak)) continue;
          reach[s] = 1;
          work.push(s);
        }
      }
      return reach;
    };
    const auto backwardReach = [&](bool tolerateBreak) {
      std::vector<char> reach(g.vertexCount(), 0);
      std::queue<graph::VertexId> work;
      reach[gv.scanOut] = 1;
      work.push(gv.scanOut);
      while (!work.empty()) {
        const graph::VertexId v = work.front();
        work.pop();
        for (graph::VertexId p : g.predecessors(v)) {
          if (reach[p] != 0 || !edgeAllowed(p, v, tolerateBreak)) continue;
          reach[p] = 1;
          work.push(p);
        }
      }
      return reach;
    };

    if (runFixpoint) {
      // Shrinking fixpoint: a non-reset branch needs its control
      // register written, which needs a break-free scan-in path to that
      // register over currently steerable branches only.
      bool changed = true;
      while (changed) {
        changed = false;
        const std::vector<char> reach = forwardReach(/*tolerateBreak=*/false);
        for (std::size_t m = 0; m < muxCount; ++m) {
          if (f.kind == fault::FaultKind::MuxStuck && f.prim == m) continue;
          const rsn::SegmentId ctrl = net.muxes()[m].controlSegment;
          if (ctrl == rsn::kNone) continue;
          const std::uint32_t len = net.segment(ctrl).length;
          for (std::size_t b = 1; b < selectable[m].size(); ++b) {
            const bool representable =
                len >= 32 || b < (std::size_t{1} << len);
            const bool want =
                reach[gv.segmentVertex[ctrl]] != 0 && representable;
            if (selectable[m][b] != 0 && !want) {
              selectable[m][b] = 0;
              changed = true;
            }
          }
        }
      }
    }

    // Reads tolerate the break on the scan-in side (garbage shifts in
    // behind the marker); writes tolerate it on the scan-out side (the
    // value never travels through it).
    const std::vector<char> inRead = forwardReach(tolerateBreakSides);
    const std::vector<char> inStrict = forwardReach(false);
    const std::vector<char> outStrict = backwardReach(false);
    const std::vector<char> outWrite = backwardReach(tolerateBreakSides);

    Expectation e{DynamicBitset(instruments), DynamicBitset(instruments)};
    for (std::size_t i = 0; i < instruments; ++i) {
      const rsn::SegmentId seg = net.instruments()[i].segment;
      const graph::VertexId v = gv.segmentVertex[seg];
      if (v == brokenV) continue;  // the instrument's own segment is dead
      if (inRead[v] != 0 && outStrict[v] != 0) e.observable.set(i);
      if (inStrict[v] != 0 && outWrite[v] != 0) e.settable.set(i);
    }
    return e;
  };

  if (!controlBreak)
    return verdicts(baseSelectable(), /*runFixpoint=*/true,
                    /*tolerateBreakSides=*/true);

  // Avoid mode: full closure, but the access must not clock the broken
  // control register at all.
  Expectation e = verdicts(baseSelectable(), /*runFixpoint=*/true,
                           /*tolerateBreakSides=*/false);
  // Zero-config mode: every segment-controlled mux pinned to its reset
  // branch, break tolerated on the harmless side.
  auto zeroConfig = baseSelectable();
  for (std::size_t m = 0; m < muxCount; ++m) {
    if (f.kind == fault::FaultKind::MuxStuck && f.prim == m) continue;
    if (net.muxes()[m].controlSegment == rsn::kNone) continue;
    for (std::size_t b = 1; b < zeroConfig[m].size(); ++b) zeroConfig[m][b] = 0;
  }
  const Expectation zc = verdicts(std::move(zeroConfig), /*runFixpoint=*/false,
                                  /*tolerateBreakSides=*/true);
  e.observable.orWith(zc.observable);
  e.settable.orWith(zc.settable);

  // Same-guard mode: a multi-round access may still cross the broken
  // register on the tolerated side when the register needs exactly the
  // same non-reset selections ("guards") as the target segment.  Both
  // then enter the active path together in the final configuration
  // round, so the register is first clocked by the data round itself —
  // after every mux address has been consulted.  A register with fewer
  // guards is already on the path during configuration rounds; clocking
  // poisons it, its mux's address decays to X and a later round's path
  // walk collapses, so no tolerance is granted there.
  using GuardSet = std::vector<std::pair<std::uint32_t, std::uint32_t>>;
  std::vector<GuardSet> guardsOf(net.segments().size());
  GuardSet cur;
  const auto walk = [&](auto&& self, rsn::NodeId id) -> void {
    const auto& n = net.structure().node(id);
    switch (n.kind) {
      case rsn::NodeKind::Segment:
        guardsOf[n.prim] = cur;
        return;
      case rsn::NodeKind::Wire:
        return;
      case rsn::NodeKind::Serial:
        for (const rsn::NodeId c : n.children) self(self, c);
        return;
      case rsn::NodeKind::MuxJoin: {
        const bool segCtrl = net.mux(n.prim).controlSegment != rsn::kNone;
        for (std::size_t b = 0; b < n.children.size(); ++b) {
          const bool guarded = segCtrl && b != 0;
          if (guarded) cur.emplace_back(n.prim, static_cast<std::uint32_t>(b));
          self(self, n.children[b]);
          if (guarded) cur.pop_back();
        }
        return;
      }
    }
  };
  walk(walk, net.structure().root());
  for (GuardSet& gs : guardsOf) std::sort(gs.begin(), gs.end());

  const Expectation tol = verdicts(baseSelectable(), /*runFixpoint=*/true,
                                   /*tolerateBreakSides=*/true);
  const GuardSet& brokenGuards = guardsOf[f.prim];
  for (std::size_t i = 0; i < instruments; ++i) {
    const rsn::SegmentId seg = net.instruments()[i].segment;
    if (seg == f.prim || guardsOf[seg] != brokenGuards) continue;
    if (tol.observable.test(i)) e.observable.set(i);
    if (tol.settable.test(i)) e.settable.set(i);
  }
  return e;
}

CampaignSummary CampaignResult::summary() const {
  CampaignSummary s;
  s.faultsTotal = records.size();
  s.instruments = instruments;
  for (const FaultRecord& rec : records) {
    if (!rec.done) continue;
    s.faultsDone += 1;
    s.oracleDisagreements += rec.oracleDisagreements;
    for (std::size_t i = 0; i < instruments; ++i) {
      switch (outcomeFromChar(rec.read[i])) {
        case Outcome::Accessible:
          s.readAccessible += 1;
          break;
        case Outcome::Recovered:
          s.readRecovered += 1;
          break;
        case Outcome::Lost:
          s.readLost += 1;
          break;
      }
      switch (outcomeFromChar(rec.write[i])) {
        case Outcome::Accessible:
          s.writeAccessible += 1;
          break;
        case Outcome::Recovered:
          s.writeRecovered += 1;
          break;
        case Outcome::Lost:
          s.writeLost += 1;
          break;
      }
      if (rec.readAccessible(i) != rec.expectObservable.test(i)) {
        s.readMismatches += 1;
        tallyByKind(rec.fault, s.segmentBreakMismatches, s.muxStuckMismatches);
      }
      if (rec.writeAccessible(i) != rec.expectSettable.test(i)) {
        s.writeMismatches += 1;
        tallyByKind(rec.fault, s.segmentBreakMismatches, s.muxStuckMismatches);
      }
      if (rec.readAccessible(i) != rec.structObservable.test(i) ||
          rec.writeAccessible(i) != rec.structSettable.test(i)) {
        tallyByKind(rec.fault, s.segmentBreakGapPairs, s.muxStuckGapPairs);
      }
    }
  }
  return s;
}

std::vector<Mismatch> CampaignResult::mismatches() const {
  std::vector<Mismatch> items;
  for (const FaultRecord& rec : records) {
    if (!rec.done) continue;
    collectDiffs(rec, instruments, rec.expectObservable, rec.expectSettable,
                 items);
  }
  return items;
}

std::vector<Mismatch> CampaignResult::structuralGaps() const {
  std::vector<Mismatch> items;
  for (const FaultRecord& rec : records) {
    if (!rec.done) continue;
    collectDiffs(rec, instruments, rec.structObservable, rec.structSettable,
                 items);
  }
  return items;
}

CampaignEngine::CampaignEngine(const rsn::Network& net, CampaignConfig config)
    : net_(&net), config_(std::move(config)) {
  if (!config_.excludePrimitives.empty()) {
    RRSN_CHECK(config_.excludePrimitives.size() == net.primitiveCount(),
               "excludePrimitives must have one bit per network primitive");
  }
  const fault::FaultUniverse all(net);
  for (const fault::Fault& f : all.faults()) {
    const rsn::PrimitiveRef ref =
        f.kind == fault::FaultKind::SegmentBreak
            ? rsn::PrimitiveRef{rsn::PrimitiveRef::Kind::Segment, f.prim}
            : rsn::PrimitiveRef{rsn::PrimitiveRef::Kind::Mux, f.prim};
    if (!config_.excludePrimitives.empty() &&
        config_.excludePrimitives.test(net.linearId(ref))) {
      continue;
    }
    universe_.push_back(f);
  }
  if (config_.sample != 0 && config_.sample < universe_.size()) {
    Rng rng(config_.seed);
    // sampleIndices is sorted, so the sampled campaign keeps the
    // canonical fault order of the exhaustive one.
    const std::vector<std::size_t> keep =
        rng.sampleIndices(universe_.size(), config_.sample);
    std::vector<fault::Fault> sampled;
    sampled.reserve(keep.size());
    for (std::size_t k : keep) sampled.push_back(universe_[k]);
    universe_ = std::move(sampled);
  }
}

FaultRecord CampaignEngine::probeFault(const rsn::GraphView& gv,
                                       const sp::DecompositionTree& tree,
                                       const fault::Fault& f,
                                       std::atomic<std::uint64_t>& probes) const {
  FaultRecord rec;
  rec.fault = f;
  const std::size_t n = net_->instruments().size();
  const fault::AccessibilityLoss graphLoss =
      fault::lossUnderFaultGraph(*net_, gv, f);
  const fault::AccessibilityLoss treeLoss = fault::lossUnderFaultTree(tree, f);
  rec.structObservable = DynamicBitset(n);
  rec.structSettable = DynamicBitset(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!graphLoss.unobservable.test(i)) rec.structObservable.set(i);
    if (!graphLoss.unsettable.test(i)) rec.structSettable.set(i);
    if (graphLoss.unobservable.test(i) != treeLoss.unobservable.test(i) ||
        graphLoss.unsettable.test(i) != treeLoss.unsettable.test(i)) {
      rec.oracleDisagreements += 1;
    }
  }
  const Expectation expected = expectedAccessibility(*net_, gv, f);
  rec.expectObservable = expected.observable;
  rec.expectSettable = expected.settable;
  rec.read.assign(n, 'L');
  rec.write.assign(n, 'L');
  sim::ScanSimulator sim(*net_);
  sim::Retargeter engine(sim, config_.retarget);
  for (std::size_t i = 0; i < n; ++i) {
    const auto inst = static_cast<rsn::InstrumentId>(i);
    rec.read[i] = toChar(probeAccess(sim, engine, f, inst, /*isRead=*/true));
    rec.write[i] = toChar(probeAccess(sim, engine, f, inst, /*isRead=*/false));
    probes.fetch_add(2, std::memory_order_relaxed);
  }
  rec.done = true;
  return rec;
}

CampaignResult CampaignEngine::run() {
  RRSN_OBS_SPAN("campaign.run");
  if (config_.lint) lint::enforceClean(*net_, "campaign");
  CampaignResult result;
  result.instruments = net_->instruments().size();
  result.records.resize(universe_.size());
  for (std::size_t k = 0; k < universe_.size(); ++k)
    result.records[k].fault = universe_[k];

  const std::uint64_t fingerprint = campaignFingerprint(*net_, config_);
  std::size_t restored = 0;
  if (!config_.checkpointPath.empty()) {
    RRSN_OBS_SPAN("campaign.checkpoint_load");
    const CheckpointLoad load =
        loadCheckpoint(config_.checkpointPath, fingerprint, result);
    if (!load.status.ok()) {
      // A damaged or stale state file downgrades to a fresh start: the
      // checkpoint exists to save work, never to abort the campaign.
      std::fprintf(stderr, "campaign: checkpoint ignored, restarting: %s\n",
                   load.status.message().c_str());
    }
    restored = load.restored;
  }
  static const obs::MetricId kRestored = obs::counter("campaign.restored");
  obs::count(kRestored, restored);

  const rsn::GraphView gv = rsn::buildGraphView(*net_);
  const sp::DecompositionTree tree = sp::DecompositionTree::build(*net_);

  std::vector<std::size_t> pending;
  for (std::size_t k = 0; k < result.records.size(); ++k)
    if (!result.records[k].done) pending.push_back(k);
  std::size_t done = result.records.size() - pending.size();
  if (config_.progress) config_.progress(done, result.records.size());

  // Always-on accounting oracle: every fault probed this run must issue
  // exactly two probes per instrument, and every finished record must
  // classify every instrument.  Checked after the sweep; a mismatch is
  // an engine bug (skipped or double-issued probes), not a user error.
  std::atomic<std::uint64_t> probes{0};
  std::size_t faultsProbed = 0;

  static const obs::MetricId kProbes = obs::counter("campaign.probes");
  static const obs::MetricId kFaults = obs::counter("campaign.faults_probed");
  const std::size_t batchSize =
      config_.checkpointEvery != 0 ? config_.checkpointEvery
                                   : std::max<std::size_t>(pending.size(), 1);
  for (std::size_t at = 0; at < pending.size(); at += batchSize) {
    if (config_.cancel != nullptr && config_.cancel->cancelled()) break;
    const std::size_t end = std::min(at + batchSize, pending.size());
    {
      RRSN_OBS_SPAN("campaign.batch");
      parallelForCancellable(end - at, config_.cancel, [&](std::size_t j) {
        const std::size_t k = pending[at + j];
        result.records[k] = probeFault(gv, tree, universe_[k], probes);
      });
    }
    // Under cancellation some records of the batch may not have run;
    // count what actually finished and persist exactly that.
    std::size_t finished = 0;
    for (std::size_t j = at; j < end; ++j)
      if (result.records[pending[j]].done) finished += 1;
    done += finished;
    faultsProbed += finished;
    if (!config_.checkpointPath.empty()) {
      RRSN_OBS_SPAN("campaign.checkpoint_save");
      saveCheckpoint(config_.checkpointPath, fingerprint, result);
    }
    if (config_.progress) config_.progress(done, result.records.size());
  }
  obs::count(kProbes, probes.load(std::memory_order_relaxed));
  obs::count(kFaults, faultsProbed);

  const std::uint64_t expectProbes =
      2 * static_cast<std::uint64_t>(result.instruments) *
      static_cast<std::uint64_t>(faultsProbed);
  if (probes.load(std::memory_order_relaxed) != expectProbes) {
    obs::raiseIfError(Status::internal(
        "campaign probe accounting mismatch: issued " +
        std::to_string(probes.load(std::memory_order_relaxed)) +
        " probes for " + std::to_string(faultsProbed) + " faults x " +
        std::to_string(result.instruments) + " instruments (expected " +
        std::to_string(expectProbes) + ")"));
  }
  std::size_t classified = 0;
  for (const FaultRecord& rec : result.records)
    if (rec.done) classified += rec.read.size() + rec.write.size();
  if (classified != 2 * result.instruments * done) {
    obs::raiseIfError(Status::internal(
        "campaign classification accounting mismatch: " +
        std::to_string(classified) + " outcomes recorded for " +
        std::to_string(done) + " finished faults x " +
        std::to_string(result.instruments) + " instruments"));
  }
  return result;
}

TextTable summaryTable(const CampaignSummary& s) {
  TextTable t({"access", "pairs", "accessible", "recovered", "lost",
               "mismatches", "struct gap"});
  t.setAlign(0, TextTable::Align::Left);
  const auto row = [&](const char* name, std::size_t a, std::size_t r,
                       std::size_t l, std::size_t m, std::size_t gap) {
    t.addRow({name, withThousands(static_cast<std::uint64_t>(a + r + l)),
              withThousands(static_cast<std::uint64_t>(a)),
              withThousands(static_cast<std::uint64_t>(r)),
              withThousands(static_cast<std::uint64_t>(l)),
              withThousands(static_cast<std::uint64_t>(m)),
              withThousands(static_cast<std::uint64_t>(gap))});
  };
  row("read", s.readAccessible, s.readRecovered, s.readLost, s.readMismatches,
      0);
  row("write", s.writeAccessible, s.writeRecovered, s.writeLost,
      s.writeMismatches, 0);
  t.addSeparator();
  row("total", s.readAccessible + s.writeAccessible,
      s.readRecovered + s.writeRecovered, s.readLost + s.writeLost,
      s.readMismatches + s.writeMismatches,
      s.segmentBreakGapPairs + s.muxStuckGapPairs);
  return t;
}

namespace {

const char* outcomeWord(Outcome o) {
  switch (o) {
    case Outcome::Accessible:
      return "accessible";
    case Outcome::Recovered:
      return "recovered";
    case Outcome::Lost:
      return "lost";
  }
  RRSN_CHECK(false, "invalid Outcome");
}

}  // namespace

TextTable mismatchTable(const rsn::Network& net,
                        const std::vector<Mismatch>& items) {
  TextTable t({"fault", "instrument", "access", "simulated", "reference"});
  for (std::size_t c = 0; c < 5; ++c) t.setAlign(c, TextTable::Align::Left);
  for (const Mismatch& m : items) {
    t.addRow({fault::describe(net, m.fault), net.instrument(m.instrument).name,
              m.isRead ? "read" : "write", outcomeWord(m.simulated),
              m.referenceAccessible ? "accessible" : "lost"});
  }
  return t;
}

TextTable outcomeTable(const rsn::Network& net, const CampaignResult& result) {
  TextTable t({"fault", "done", "read", "write", "struct_obs", "struct_set",
               "expect_obs", "expect_set", "oracle_disagreements"});
  t.setAlign(0, TextTable::Align::Left);
  t.setAlign(2, TextTable::Align::Left);
  t.setAlign(3, TextTable::Align::Left);
  const auto bits = [](const DynamicBitset& b) {
    std::string s(b.size(), '0');
    for (std::size_t i = 0; i < b.size(); ++i)
      if (b.test(i)) s[i] = '1';
    return s;
  };
  for (const FaultRecord& rec : result.records) {
    t.addRow({fault::describe(net, rec.fault), rec.done ? "1" : "0", rec.read,
              rec.write, bits(rec.structObservable), bits(rec.structSettable),
              bits(rec.expectObservable), bits(rec.expectSettable),
              withThousands(static_cast<std::uint64_t>(rec.oracleDisagreements))});
  }
  return t;
}

namespace {

json::Array diffsToJson(const rsn::Network& net,
                        const std::vector<Mismatch>& items) {
  json::Array out;
  for (const Mismatch& m : items) {
    json::Object o;
    o["fault"] = json::Value(fault::describe(net, m.fault));
    o["instrument"] = json::Value(net.instrument(m.instrument).name);
    o["access"] = json::Value(m.isRead ? "read" : "write");
    o["simulated"] = json::Value(outcomeWord(m.simulated));
    o["reference_accessible"] = json::Value(m.referenceAccessible);
    out.push_back(json::Value(std::move(o)));
  }
  return out;
}

}  // namespace

json::Value reportJson(const rsn::Network& net, const CampaignResult& result) {
  const CampaignSummary s = result.summary();
  json::Object summary;
  summary["faults_total"] = json::Value(static_cast<std::uint64_t>(s.faultsTotal));
  summary["faults_done"] = json::Value(static_cast<std::uint64_t>(s.faultsDone));
  summary["instruments"] = json::Value(static_cast<std::uint64_t>(s.instruments));
  summary["read_accessible"] =
      json::Value(static_cast<std::uint64_t>(s.readAccessible));
  summary["read_recovered"] =
      json::Value(static_cast<std::uint64_t>(s.readRecovered));
  summary["read_lost"] = json::Value(static_cast<std::uint64_t>(s.readLost));
  summary["write_accessible"] =
      json::Value(static_cast<std::uint64_t>(s.writeAccessible));
  summary["write_recovered"] =
      json::Value(static_cast<std::uint64_t>(s.writeRecovered));
  summary["write_lost"] = json::Value(static_cast<std::uint64_t>(s.writeLost));
  summary["read_mismatches"] =
      json::Value(static_cast<std::uint64_t>(s.readMismatches));
  summary["write_mismatches"] =
      json::Value(static_cast<std::uint64_t>(s.writeMismatches));
  summary["segment_break_mismatches"] =
      json::Value(static_cast<std::uint64_t>(s.segmentBreakMismatches));
  summary["mux_stuck_mismatches"] =
      json::Value(static_cast<std::uint64_t>(s.muxStuckMismatches));
  summary["segment_break_gap_pairs"] =
      json::Value(static_cast<std::uint64_t>(s.segmentBreakGapPairs));
  summary["mux_stuck_gap_pairs"] =
      json::Value(static_cast<std::uint64_t>(s.muxStuckGapPairs));
  summary["oracle_disagreements"] =
      json::Value(static_cast<std::uint64_t>(s.oracleDisagreements));

  json::Array faults;
  for (const FaultRecord& rec : result.records) {
    json::Object o;
    o["fault"] = json::Value(fault::describe(net, rec.fault));
    o["done"] = json::Value(rec.done);
    if (rec.done) {
      o["read"] = json::Value(rec.read);
      o["write"] = json::Value(rec.write);
    }
    faults.push_back(json::Value(std::move(o)));
  }

  json::Object root;
  root["network"] = json::Value(net.name());
  root["summary"] = json::Value(std::move(summary));
  root["faults"] = json::Value(std::move(faults));
  root["mismatches"] = json::Value(diffsToJson(net, result.mismatches()));
  root["control_dependency_gaps"] =
      json::Value(diffsToJson(net, result.structuralGaps()));
  return json::Value(std::move(root));
}

}  // namespace rrsn::campaign

#include "campaign/campaign.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "campaign/checkpoint.hpp"
#include "diag/batched.hpp"
#include "diag/diagnosis.hpp"
#include "fault/effects.hpp"
#include "lint/lint.hpp"
#include "obs/obs.hpp"
#include "rsn/flat.hpp"
#include "rsn/graph_view.hpp"
#include "sp/decomposition.hpp"
#include "support/rng.hpp"

namespace rrsn::campaign {

char toChar(Outcome o) {
  switch (o) {
    case Outcome::Accessible:
      return 'A';
    case Outcome::Recovered:
      return 'R';
    case Outcome::RecoveredAfterReconfiguration:
      return 'C';
    case Outcome::Lost:
      return 'L';
  }
  RRSN_CHECK(false, "invalid Outcome");
}

Outcome outcomeFromChar(char c) {
  switch (c) {
    case 'A':
      return Outcome::Accessible;
    case 'R':
      return Outcome::Recovered;
    case 'C':
      return Outcome::RecoveredAfterReconfiguration;
    case 'L':
      return Outcome::Lost;
    default:
      throw ValidationError("invalid outcome character in campaign record");
  }
}

const char* campaignModeName(CampaignMode m) {
  switch (m) {
    case CampaignMode::Single:
      return "single";
    case CampaignMode::Pairs:
      return "pairs";
    case CampaignMode::Transient:
      return "transient";
  }
  RRSN_CHECK(false, "invalid CampaignMode");
}

std::vector<fault::Fault> FaultScenario::permanentFaults() const {
  switch (kind) {
    case CampaignMode::Single:
      return {a};
    case CampaignMode::Pairs:
      return {a, b};
    case CampaignMode::Transient:
      return {};
  }
  RRSN_CHECK(false, "invalid scenario kind");
}

std::string describe(const rsn::Network& net, const FaultScenario& s) {
  switch (s.kind) {
    case CampaignMode::Single:
      return fault::describe(net, s.a);
    case CampaignMode::Pairs:
      return "pair(" + fault::describe(net, s.a) + "+" +
             fault::describe(net, s.b) + ")";
    case CampaignMode::Transient:
      return "upset(" + net.segment(s.upsetSegment).name + "@" +
             std::to_string(s.upsetRound) + ")";
  }
  RRSN_CHECK(false, "invalid scenario kind");
}

namespace {

/// One end-to-end access on a freshly reset scenario-injected simulator.
/// The simulator and engine are shared across the scenario's probes (the
/// reset between probes restores power-up state exactly, and the
/// engine's path tables depend only on the topology); any engine-level
/// failure (no valid path, rounds exhausted, marker poisoned) is the
/// definition of "lost", so Error maps to Lost rather than escaping the
/// campaign.  Transient scenarios get one recovery retry: the
/// reconfiguration sequence restores the reset configuration (the
/// corrupted shift cells are overwritten by the next capture) and the
/// access is re-attempted — success is the new
/// RecoveredAfterReconfiguration class.  Note the retry relies on the
/// fault-free candidate list being a single nominal recipe: the
/// retargeter never power-cycles mid-access, so a still-pending upset is
/// not disarmed behind our back.
Outcome probeAccess(sim::ScanSimulator& sim, sim::Retargeter& engine,
                    const FaultScenario& s, rsn::InstrumentId inst,
                    bool isRead) {
  const auto attempt = [&]() -> sim::RetargetResult {
    if (isRead) return engine.readInstrument(inst);
    const rsn::Network& net = sim.network();
    const std::uint32_t len = net.segment(net.instrument(inst).segment).length;
    return engine.writeInstrument(inst, sim::accessMarker(len));
  };

  try {
    sim.reset();
    sim.injectFaults(s.permanentFaults());
    if (s.kind == CampaignMode::Transient)
      sim.armTransientUpset({s.upsetSegment, s.upsetRound});
    const sim::RetargetResult r = attempt();
    if (r.success)
      return r.rerouted ? Outcome::Recovered : Outcome::Accessible;
  } catch (const Error&) {
    // fall through to the recovery retry (transient) or Lost
  }
  if (s.kind != CampaignMode::Transient) return Outcome::Lost;
  try {
    sim.resetConfiguration();
    const sim::RetargetResult r = attempt();
    if (r.success) return Outcome::RecoveredAfterReconfiguration;
  } catch (const Error&) {
  }
  return Outcome::Lost;
}

/// Kind bucket for the per-kind gap/mismatch counters: a scenario lands
/// in the segment-break bucket when any of its members is a break (a
/// transient upset is a segment event, so it counts as a break too).
bool inBreakBucket(const FaultScenario& s) {
  switch (s.kind) {
    case CampaignMode::Single:
      return s.a.kind == fault::FaultKind::SegmentBreak;
    case CampaignMode::Pairs:
      return s.a.kind == fault::FaultKind::SegmentBreak ||
             s.b.kind == fault::FaultKind::SegmentBreak;
    case CampaignMode::Transient:
      return true;
  }
  return true;
}

void tallyByKind(const FaultScenario& s, std::size_t& breaks,
                 std::size_t& stucks) {
  if (inBreakBucket(s)) {
    breaks += 1;
  } else {
    stucks += 1;
  }
}

/// Collects sim-vs-reference disagreements of one finished record.
void collectDiffs(const FaultRecord& rec, std::size_t instruments,
                  const DynamicBitset& refObservable,
                  const DynamicBitset& refSettable,
                  std::vector<Mismatch>& items) {
  for (std::size_t i = 0; i < instruments; ++i) {
    const auto inst = static_cast<rsn::InstrumentId>(i);
    if (rec.readAccessible(i) != refObservable.test(i)) {
      items.push_back({rec.scenario, inst, /*isRead=*/true,
                       outcomeFromChar(rec.read[i]), refObservable.test(i)});
    }
    if (rec.writeAccessible(i) != refSettable.test(i)) {
      items.push_back({rec.scenario, inst, /*isRead=*/false,
                       outcomeFromChar(rec.write[i]), refSettable.test(i)});
    }
  }
}

Expectation expectationFromRow(const diag::Syndrome& row, std::size_t n) {
  Expectation e{DynamicBitset(n), DynamicBitset(n)};
  for (std::size_t i = 0; i < n; ++i) {
    if (row.passed.test(2 * i)) e.observable.set(i);
    if (row.passed.test(2 * i + 1)) e.settable.set(i);
  }
  return e;
}

}  // namespace

Expectation expectedAccessibility(const rsn::Network& net,
                                  const rsn::GraphView& /*gv*/,
                                  const fault::Fault& f) {
  // One oracle implementation: the batched syndrome engine computes the
  // exact retargeting semantics (strict, depth-bounded and clean-suffix
  // break tolerance — see diag/batched.hpp); campaign_test validates it
  // against the simulator on the example networks, and the dictionary's
  // verify mode cross-checks it row-for-row against per-probe builds.
  const diag::BatchedSyndromeEngine engine(net);
  return expectedAccessibility(engine, net.instruments().size(), f);
}

Expectation expectedAccessibility(const diag::BatchedSyndromeEngine& engine,
                                  std::size_t instruments,
                                  const fault::Fault& f, std::size_t worker) {
  return expectationFromRow(engine.row(&f, worker), instruments);
}

CampaignSummary CampaignResult::summary() const {
  CampaignSummary s;
  s.mode = mode;
  s.faultsTotal = records.size();
  s.instruments = instruments;
  for (const FaultRecord& rec : records) {
    if (!rec.done) continue;
    s.faultsDone += 1;
    s.oracleDisagreements += rec.oracleDisagreements;
    for (std::size_t i = 0; i < instruments; ++i) {
      switch (outcomeFromChar(rec.read[i])) {
        case Outcome::Accessible:
          s.readAccessible += 1;
          break;
        case Outcome::Recovered:
          s.readRecovered += 1;
          break;
        case Outcome::RecoveredAfterReconfiguration:
          s.readRecovered += 1;
          s.readReconfigured += 1;
          break;
        case Outcome::Lost:
          s.readLost += 1;
          break;
      }
      switch (outcomeFromChar(rec.write[i])) {
        case Outcome::Accessible:
          s.writeAccessible += 1;
          break;
        case Outcome::Recovered:
          s.writeRecovered += 1;
          break;
        case Outcome::RecoveredAfterReconfiguration:
          s.writeRecovered += 1;
          s.writeReconfigured += 1;
          break;
        case Outcome::Lost:
          s.writeLost += 1;
          break;
      }
      const bool readAcc = rec.readAccessible(i);
      const bool writeAcc = rec.writeAccessible(i);
      if (mode == CampaignMode::Pairs) {
        // Disagreements with the pair-composed oracle are interaction
        // effects (composition is a bound, not ground truth), never
        // engine errors — they get their own counters.
        if (readAcc != rec.expectObservable.test(i))
          (readAcc ? s.pairMasked : s.pairCompounded) += 1;
        if (writeAcc != rec.expectSettable.test(i))
          (writeAcc ? s.pairMasked : s.pairCompounded) += 1;
      } else {
        if (readAcc != rec.expectObservable.test(i)) {
          s.readMismatches += 1;
          tallyByKind(rec.scenario, s.segmentBreakMismatches,
                      s.muxStuckMismatches);
        }
        if (writeAcc != rec.expectSettable.test(i)) {
          s.writeMismatches += 1;
          tallyByKind(rec.scenario, s.segmentBreakMismatches,
                      s.muxStuckMismatches);
        }
      }
      if (readAcc != rec.structObservable.test(i) ||
          writeAcc != rec.structSettable.test(i)) {
        tallyByKind(rec.scenario, s.segmentBreakGapPairs, s.muxStuckGapPairs);
      }
    }
  }
  return s;
}

std::vector<Mismatch> CampaignResult::mismatches() const {
  std::vector<Mismatch> items;
  if (mode == CampaignMode::Pairs) return items;  // see pairInteractions()
  for (const FaultRecord& rec : records) {
    if (!rec.done) continue;
    collectDiffs(rec, instruments, rec.expectObservable, rec.expectSettable,
                 items);
  }
  return items;
}

std::vector<Mismatch> CampaignResult::pairInteractions() const {
  std::vector<Mismatch> items;
  if (mode != CampaignMode::Pairs) return items;
  for (const FaultRecord& rec : records) {
    if (!rec.done) continue;
    collectDiffs(rec, instruments, rec.expectObservable, rec.expectSettable,
                 items);
  }
  return items;
}

std::vector<Mismatch> CampaignResult::structuralGaps() const {
  std::vector<Mismatch> items;
  for (const FaultRecord& rec : records) {
    if (!rec.done) continue;
    collectDiffs(rec, instruments, rec.structObservable, rec.structSettable,
                 items);
  }
  return items;
}

RobustnessReport CampaignResult::robustness() const {
  RobustnessReport r;
  r.mode = mode;
  for (const FaultRecord& rec : records) {
    if (!rec.done) continue;
    for (std::size_t i = 0; i < instruments; ++i) {
      const auto probe = [&](bool predicted, bool observed, char outcome) {
        r.probes += 1;
        if (predicted) r.predictedAccessible += 1;
        if (observed) r.observedAccessible += 1;
        if (predicted && !observed) r.compounded += 1;
        if (!predicted && observed) r.masked += 1;
        if (outcome == 'C') r.reconfigured += 1;
      };
      probe(rec.expectObservable.test(i), rec.readAccessible(i), rec.read[i]);
      probe(rec.expectSettable.test(i), rec.writeAccessible(i), rec.write[i]);
    }
  }
  return r;
}

Status validateCampaignConfig(const CampaignConfig& config) {
  if (config.sampleFraction != 0.0 &&
      (!(config.sampleFraction > 0.0) || config.sampleFraction > 1.0)) {
    return Status::invalidArgument(
        "campaign sampleFraction must lie in (0, 1], got " +
        std::to_string(config.sampleFraction));
  }
  if (config.sample != 0 && config.sampleFraction != 0.0) {
    return Status::invalidArgument(
        "campaign sample and sampleFraction are mutually exclusive; set "
        "at most one");
  }
  if (config.deadlineMs == 0) {
    return Status::invalidArgument(
        "campaign deadline of 0 ms would cancel the run before the first "
        "probe; omit the deadline instead");
  }
  if (!config.checkpointPath.empty()) {
    std::error_code ec;
    if (std::filesystem::is_directory(config.checkpointPath, ec)) {
      return Status::invalidArgument("campaign checkpoint path names a "
                                     "directory, not a state file: " +
                                     config.checkpointPath);
    }
  }
  if (config.mode == CampaignMode::Transient) {
    if (config.transientRounds.empty()) {
      return Status::invalidArgument(
          "transient campaign needs at least one upset round");
    }
    std::vector<std::uint32_t> rounds = config.transientRounds;
    std::sort(rounds.begin(), rounds.end());
    if (std::adjacent_find(rounds.begin(), rounds.end()) != rounds.end()) {
      return Status::invalidArgument(
          "transient upset rounds contain a duplicate");
    }
  }
  return {};
}

CampaignEngine::CampaignEngine(const rsn::Network& net, CampaignConfig config)
    : net_(&net),
      config_(std::move(config)),
      flat_(rsn::FlatNetwork::lower(net)) {
  const Status valid = validateCampaignConfig(config_);
  if (!valid.ok()) throw ValidationError("campaign config: " + valid.message());
  if (!config_.excludePrimitives.empty()) {
    RRSN_CHECK(config_.excludePrimitives.size() == net.primitiveCount(),
               "excludePrimitives must have one bit per network primitive");
  }
  const fault::FaultUniverse all(net);
  for (const fault::Fault& f : all.faults()) {
    const rsn::PrimitiveRef ref = fault::refOf(f);
    if (!config_.excludePrimitives.empty() &&
        config_.excludePrimitives.test(net.linearId(ref))) {
      continue;
    }
    singles_.push_back(f);
  }
  switch (config_.mode) {
    case CampaignMode::Single:
      buildSingleUniverse();
      break;
    case CampaignMode::Pairs:
      buildPairUniverse();
      break;
    case CampaignMode::Transient:
      buildTransientUniverse();
      break;
  }
}

namespace {

/// Sample size for a universe of `n` elements: an explicit count wins,
/// then a fraction (rounded up, at least one scenario), else everything.
std::size_t sampleTarget(const CampaignConfig& config, std::size_t n) {
  if (config.sampleFraction > 0.0) {
    const double ideal = config.sampleFraction * static_cast<double>(n);
    const auto k = static_cast<std::size_t>(std::ceil(ideal));
    return std::min(n, std::max<std::size_t>(k, n == 0 ? 0 : 1));
  }
  if (config.sample != 0) return std::min(config.sample, n);
  return n;
}

/// Keeps a deterministic sorted `k`-subset of `scenarios` (no-op when
/// k covers everything).  sampleIndices is sorted, so the sampled
/// campaign keeps the canonical scenario order of the exhaustive one.
void sampleInPlace(std::vector<FaultScenario>& scenarios, std::size_t k,
                   std::uint64_t seed) {
  if (k >= scenarios.size()) return;
  Rng rng(seed);
  const std::vector<std::size_t> keep = rng.sampleIndices(scenarios.size(), k);
  std::vector<FaultScenario> sampled;
  sampled.reserve(keep.size());
  for (std::size_t idx : keep) sampled.push_back(scenarios[idx]);
  scenarios = std::move(sampled);
}

/// Largest-remainder proportional allocation of `k` draws over three
/// strata, capped per stratum; any residue (from caps) round-robins to
/// strata with spare capacity in index order.  Deterministic.
std::array<std::uint64_t, 3> allocateLargestRemainder(
    const std::array<std::uint64_t, 3>& sizes, std::uint64_t k) {
  const double total = static_cast<double>(sizes[0]) +
                       static_cast<double>(sizes[1]) +
                       static_cast<double>(sizes[2]);
  std::array<std::uint64_t, 3> alloc{};
  std::array<double, 3> frac{};
  std::uint64_t used = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const double ideal =
        total == 0.0 ? 0.0
                     : static_cast<double>(k) *
                           (static_cast<double>(sizes[i]) / total);
    alloc[i] = std::min(sizes[i], static_cast<std::uint64_t>(ideal));
    frac[i] = ideal - static_cast<double>(alloc[i]);
    used += alloc[i];
  }
  while (used < k) {
    std::size_t best = 3;
    for (std::size_t i = 0; i < 3; ++i) {
      if (alloc[i] >= sizes[i]) continue;
      if (best == 3 || frac[i] > frac[best]) best = i;
    }
    if (best == 3) break;  // every stratum exhausted
    alloc[best] += 1;
    frac[best] -= 1.0;
    used += 1;
  }
  return alloc;
}

/// Unranks combination rank `r` (0-based) of the C(n, 2) ordered pairs
/// (i, j), i < j, in lexicographic order: the number of pairs whose
/// first element precedes `i` is prefix(i) = i*(2n-i-1)/2; binary-search
/// the largest i with prefix(i) <= r, then j falls out of the offset.
std::pair<std::size_t, std::size_t> unrankPair(std::size_t n,
                                               std::uint64_t r) {
  const auto prefix = [&](std::uint64_t i) {
    return i * (2 * static_cast<std::uint64_t>(n) - i - 1) / 2;
  };
  // Invariant: prefix(lo) <= r < prefix(hi); prefix(n-1) = C(n, 2) > r.
  std::uint64_t lo = 0, hi = n - 1;
  while (lo + 1 < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (prefix(mid) <= r) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const std::uint64_t j = lo + 1 + (r - prefix(lo));
  return {static_cast<std::size_t>(lo), static_cast<std::size_t>(j)};
}

/// Two stuck faults on one mux describe contradictory hardware; they
/// are excluded from the pair space (breaks cannot collide — the
/// universe has one break per segment).
bool contradictoryPair(const fault::Fault& a, const fault::Fault& b) {
  return a.kind == fault::FaultKind::MuxStuck &&
         b.kind == fault::FaultKind::MuxStuck && a.prim == b.prim;
}

}  // namespace

void CampaignEngine::buildSingleUniverse() {
  universe_.reserve(singles_.size());
  for (std::size_t i = 0; i < singles_.size(); ++i) {
    FaultScenario s;
    s.kind = CampaignMode::Single;
    s.a = singles_[i];
    s.aIdx = static_cast<std::uint32_t>(i);
    universe_.push_back(s);
  }
  sampleInPlace(universe_, sampleTarget(config_, universe_.size()),
                config_.seed);
}

void CampaignEngine::buildPairUniverse() {
  // Stratify the pair space by fault-kind combination so a sampled
  // campaign covers all three interaction classes proportionally:
  // break+break, break+stuck, stuck+stuck.
  std::vector<std::uint32_t> breaks, stucks;
  for (std::size_t i = 0; i < singles_.size(); ++i) {
    (singles_[i].kind == fault::FaultKind::SegmentBreak ? breaks : stucks)
        .push_back(static_cast<std::uint32_t>(i));
  }
  const auto c2 = [](std::uint64_t n) { return n * (n - 1) / 2; };
  const std::array<std::uint64_t, 3> sizes = {
      c2(breaks.size()), static_cast<std::uint64_t>(breaks.size()) *
                             static_cast<std::uint64_t>(stucks.size()),
      c2(stucks.size())};
  const std::uint64_t totalPairs = sizes[0] + sizes[1] + sizes[2];

  const auto pushPair = [&](std::uint32_t i, std::uint32_t j) {
    if (i > j) std::swap(i, j);
    if (contradictoryPair(singles_[i], singles_[j])) return;
    FaultScenario s;
    s.kind = CampaignMode::Pairs;
    s.a = singles_[i];
    s.b = singles_[j];
    s.aIdx = i;
    s.bIdx = j;
    universe_.push_back(s);
  };

  const std::size_t target = sampleTarget(
      config_, static_cast<std::size_t>(totalPairs));
  if (static_cast<std::uint64_t>(target) >= totalPairs) {
    // Exhaustive: every admissible pair in lexicographic index order.
    for (std::uint32_t i = 0; i + 1 < singles_.size(); ++i)
      for (std::uint32_t j = i + 1; j < singles_.size(); ++j) pushPair(i, j);
    return;
  }

  // Stratified sample: largest-remainder allocation over the strata,
  // then a sorted Floyd draw of combination *ranks* per stratum — the
  // pair space is never materialized.  One Rng consumed in fixed
  // stratum order (BB, BS, SS) keeps the draw deterministic; sampled
  // ranks that unrank to a contradictory pair are dropped (the universe
  // excludes them, see contradictoryPair).
  const std::array<std::uint64_t, 3> alloc =
      allocateLargestRemainder(sizes, target);
  Rng rng(config_.seed);
  const auto drawRanks = [&](std::uint64_t space, std::uint64_t k) {
    return rng.sampleIndices(static_cast<std::size_t>(space),
                             static_cast<std::size_t>(k));
  };
  for (const std::size_t r : drawRanks(sizes[0], alloc[0])) {
    const auto [x, y] = unrankPair(breaks.size(), r);
    pushPair(breaks[x], breaks[y]);
  }
  for (const std::size_t r : drawRanks(sizes[1], alloc[1])) {
    pushPair(breaks[r / stucks.size()], stucks[r % stucks.size()]);
  }
  for (const std::size_t r : drawRanks(sizes[2], alloc[2])) {
    const auto [x, y] = unrankPair(stucks.size(), r);
    pushPair(stucks[x], stucks[y]);
  }
  std::sort(universe_.begin(), universe_.end(),
            [](const FaultScenario& lhs, const FaultScenario& rhs) {
              return std::tie(lhs.aIdx, lhs.bIdx) <
                     std::tie(rhs.aIdx, rhs.bIdx);
            });
}

void CampaignEngine::buildTransientUniverse() {
  for (rsn::SegmentId s = 0; s < net_->segments().size(); ++s) {
    if (!config_.excludePrimitives.empty() &&
        config_.excludePrimitives.test(net_->linearId(
            {rsn::PrimitiveRef::Kind::Segment, s}))) {
      continue;
    }
    for (const std::uint32_t round : config_.transientRounds) {
      FaultScenario scenario;
      scenario.kind = CampaignMode::Transient;
      scenario.upsetSegment = s;
      scenario.upsetRound = round;
      universe_.push_back(scenario);
    }
  }
  sampleInPlace(universe_, sampleTarget(config_, universe_.size()),
                config_.seed);
}

/// Per-single-fault oracle rows computed once per run(): the expected
/// (control-aware) verdicts from the batched syndrome engine plus both
/// plain structural oracles.  Pair scenarios compose entries by AND;
/// transient scenarios use the fault-free row.
struct CampaignEngine::OracleCache {
  std::vector<Expectation> expect;       ///< per singles() index
  std::vector<DynamicBitset> graphObs, graphSet;
  std::vector<DynamicBitset> treeObs, treeSet;
  Expectation faultFree;
};

FaultRecord CampaignEngine::probeScenario(
    const OracleCache& oracles, const FaultScenario& s,
    std::atomic<std::uint64_t>& probes) const {
  FaultRecord rec;
  rec.scenario = s;
  const std::size_t n = net_->instruments().size();
  switch (s.kind) {
    case CampaignMode::Single: {
      rec.structObservable = oracles.graphObs[s.aIdx];
      rec.structSettable = oracles.graphSet[s.aIdx];
      rec.expectObservable = oracles.expect[s.aIdx].observable;
      rec.expectSettable = oracles.expect[s.aIdx].settable;
      for (std::size_t i = 0; i < n; ++i) {
        if (oracles.graphObs[s.aIdx].test(i) !=
                oracles.treeObs[s.aIdx].test(i) ||
            oracles.graphSet[s.aIdx].test(i) !=
                oracles.treeSet[s.aIdx].test(i)) {
          rec.oracleDisagreements += 1;
        }
      }
      break;
    }
    case CampaignMode::Pairs: {
      rec.structObservable = oracles.graphObs[s.aIdx];
      rec.structObservable &= oracles.graphObs[s.bIdx];
      rec.structSettable = oracles.graphSet[s.aIdx];
      rec.structSettable &= oracles.graphSet[s.bIdx];
      rec.expectObservable = oracles.expect[s.aIdx].observable;
      rec.expectObservable &= oracles.expect[s.bIdx].observable;
      rec.expectSettable = oracles.expect[s.aIdx].settable;
      rec.expectSettable &= oracles.expect[s.bIdx].settable;
      DynamicBitset tObs = oracles.treeObs[s.aIdx];
      tObs &= oracles.treeObs[s.bIdx];
      DynamicBitset tSet = oracles.treeSet[s.aIdx];
      tSet &= oracles.treeSet[s.bIdx];
      for (std::size_t i = 0; i < n; ++i) {
        if (rec.structObservable.test(i) != tObs.test(i) ||
            rec.structSettable.test(i) != tSet.test(i)) {
          rec.oracleDisagreements += 1;
        }
      }
      break;
    }
    case CampaignMode::Transient: {
      // No permanent defect: the plain structural oracle predicts full
      // access, and the expected verdict is the fault-free row — any
      // probe the recovery retry cannot rescue is a mismatch.
      rec.structObservable = DynamicBitset(n);
      rec.structSettable = DynamicBitset(n);
      rec.structObservable.setAll();
      rec.structSettable.setAll();
      rec.expectObservable = oracles.faultFree.observable;
      rec.expectSettable = oracles.faultFree.settable;
      break;
    }
  }
  rec.read.assign(n, 'L');
  rec.write.assign(n, 'L');
  sim::ScanSimulator sim(*net_);
  sim::Retargeter engine(sim, config_.retarget);
  for (std::size_t i = 0; i < n; ++i) {
    const auto inst = static_cast<rsn::InstrumentId>(i);
    rec.read[i] = toChar(probeAccess(sim, engine, s, inst, /*isRead=*/true));
    rec.write[i] = toChar(probeAccess(sim, engine, s, inst, /*isRead=*/false));
#ifndef NDEBUG
    // Debug acceptance gate for the pair family: the classification on
    // the shared simulator must match a per-probe reference that uses a
    // fresh simulator and retargeter for each access — state leaking
    // across probes would show up here, not as an oracle "interaction".
    if (s.kind == CampaignMode::Pairs) {
      sim::ScanSimulator ref(*net_);
      sim::Retargeter refEngine(ref, config_.retarget);
      const char refRead =
          toChar(probeAccess(ref, refEngine, s, inst, /*isRead=*/true));
      const char refWrite =
          toChar(probeAccess(ref, refEngine, s, inst, /*isRead=*/false));
      RRSN_CHECK(rec.read[i] == refRead && rec.write[i] == refWrite,
                 "pair campaign probe diverges from the per-probe "
                 "reference for " +
                     describe(*net_, s) + " on instrument " +
                     net_->instrument(inst).name);
    }
#endif
    probes.fetch_add(2, std::memory_order_relaxed);
  }
  rec.done = true;
  return rec;
}

CampaignResult CampaignEngine::run() {
  RRSN_OBS_SPAN("campaign.run");
  if (config_.lint) lint::enforceClean(*net_, "campaign");
  CampaignResult result;
  result.mode = config_.mode;
  result.instruments = net_->instruments().size();
  result.records.resize(universe_.size());
  for (std::size_t k = 0; k < universe_.size(); ++k)
    result.records[k].scenario = universe_[k];

  const std::uint64_t fingerprint = campaignFingerprint(*net_, config_);
  std::size_t restored = 0;
  if (!config_.checkpointPath.empty()) {
    RRSN_OBS_SPAN("campaign.checkpoint_load");
    const CheckpointLoad load =
        loadCheckpoint(config_.checkpointPath, fingerprint, result);
    if (!load.status.ok()) {
      // A damaged or stale state file downgrades to a fresh start: the
      // checkpoint exists to save work, never to abort the campaign.
      std::fprintf(stderr, "campaign: checkpoint ignored, restarting: %s\n",
                   load.status.message().c_str());
    }
    restored = load.restored;
  }
  static const obs::MetricId kRestored = obs::counter("campaign.restored");
  obs::count(kRestored, restored);

  // Per-single oracle rows, shared by every scenario of the sweep (a
  // pair composes two rows; recomputing them per pair would square the
  // oracle cost the batched engine exists to avoid).
  OracleCache oracles;
  {
    RRSN_OBS_SPAN("campaign.oracles");
    const std::size_t m = singles_.size();
    const std::size_t n = result.instruments;
    oracles.expect.resize(m);
    oracles.graphObs.resize(m);
    oracles.graphSet.resize(m);
    oracles.treeObs.resize(m);
    oracles.treeSet.resize(m);
    const rsn::GraphView gv = rsn::buildGraphView(*net_);
    const sp::DecompositionTree tree = sp::DecompositionTree::build(*net_);
    // The engine itself is per-run (its scratch lanes are sized by the
    // current thread count), but it shares the arena lowered once at
    // engine construction — run() never re-flattens.
    const diag::BatchedSyndromeEngine engine(flat_);
    oracles.faultFree = expectationFromRow(engine.row(nullptr, 0), n);
    parallelForChunks(
        m, [&](std::size_t begin, std::size_t end, std::size_t worker) {
          for (std::size_t k = begin; k < end; ++k) {
            const fault::Fault& f = singles_[k];
            oracles.expect[k] = expectationFromRow(engine.row(&f, worker), n);
            const fault::AccessibilityLoss graphLoss =
                fault::lossUnderFaultGraph(*net_, gv, f);
            const fault::AccessibilityLoss treeLoss =
                fault::lossUnderFaultTree(tree, f);
            const auto invert = [n](const DynamicBitset& lost) {
              DynamicBitset kept(n);
              kept.setAll();
              lost.forEachSet([&](std::size_t i) { kept.reset(i); });
              return kept;
            };
            oracles.graphObs[k] = invert(graphLoss.unobservable);
            oracles.graphSet[k] = invert(graphLoss.unsettable);
            oracles.treeObs[k] = invert(treeLoss.unobservable);
            oracles.treeSet[k] = invert(treeLoss.unsettable);
          }
        });
  }

  // Cancellation: an external token, an engine-owned deadline, or both.
  // parallelForCancellable takes one token, so with a deadline the
  // worker propagates an external trip into the deadline token.
  CancellationToken deadlineToken;
  const bool hasDeadline = config_.deadlineMs != CampaignConfig::kNoDeadline;
  if (hasDeadline) {
    deadlineToken.setDeadlineFromNow(
        std::chrono::milliseconds(config_.deadlineMs));
  }
  const CancellationToken* cancel =
      hasDeadline ? &deadlineToken : config_.cancel;
  const auto tripped = [&]() {
    return (cancel != nullptr && cancel->cancelled()) ||
           (config_.cancel != nullptr && config_.cancel->cancelled());
  };

  std::vector<std::size_t> pending;
  for (std::size_t k = 0; k < result.records.size(); ++k)
    if (!result.records[k].done) pending.push_back(k);
  std::size_t done = result.records.size() - pending.size();
  if (config_.progress) config_.progress(done, result.records.size());

  // Always-on accounting oracle: every scenario probed this run must
  // issue exactly two probes per instrument, and every finished record
  // must classify every instrument.  Checked after the sweep; a
  // mismatch is an engine bug (skipped or double-issued probes), not a
  // user error.
  std::atomic<std::uint64_t> probes{0};
  std::size_t faultsProbed = 0;

  static const obs::MetricId kProbes = obs::counter("campaign.probes");
  static const obs::MetricId kFaults = obs::counter("campaign.faults_probed");
  const std::size_t batchSize =
      config_.checkpointEvery != 0 ? config_.checkpointEvery
                                   : std::max<std::size_t>(pending.size(), 1);
  for (std::size_t at = 0; at < pending.size(); at += batchSize) {
    if (tripped()) break;
    const std::size_t end = std::min(at + batchSize, pending.size());
    {
      RRSN_OBS_SPAN("campaign.batch");
      parallelForCancellable(end - at, cancel, [&](std::size_t j) {
        if (hasDeadline && config_.cancel != nullptr &&
            config_.cancel->cancelled()) {
          deadlineToken.cancel();
          return;
        }
        const std::size_t k = pending[at + j];
        result.records[k] = probeScenario(oracles, universe_[k], probes);
      });
    }
    // Under cancellation some records of the batch may not have run;
    // count what actually finished and persist exactly that.
    std::size_t finished = 0;
    for (std::size_t j = at; j < end; ++j)
      if (result.records[pending[j]].done) finished += 1;
    done += finished;
    faultsProbed += finished;
    if (!config_.checkpointPath.empty()) {
      RRSN_OBS_SPAN("campaign.checkpoint_save");
      // A checkpoint that cannot be durably written must abort loudly:
      // continuing would let a deadline later discard finished work the
      // caller believes is resumable.
      const Status st =
          saveCheckpoint(config_.checkpointPath, fingerprint, result);
      if (!st.ok()) throw IoError(st.toString());
    }
    if (config_.progress) config_.progress(done, result.records.size());
  }
  obs::count(kProbes, probes.load(std::memory_order_relaxed));
  obs::count(kFaults, faultsProbed);

  const std::uint64_t expectProbes =
      2 * static_cast<std::uint64_t>(result.instruments) *
      static_cast<std::uint64_t>(faultsProbed);
  if (probes.load(std::memory_order_relaxed) != expectProbes) {
    obs::raiseIfError(Status::internal(
        "campaign probe accounting mismatch: issued " +
        std::to_string(probes.load(std::memory_order_relaxed)) +
        " probes for " + std::to_string(faultsProbed) + " faults x " +
        std::to_string(result.instruments) + " instruments (expected " +
        std::to_string(expectProbes) + ")"));
  }
  std::size_t classified = 0;
  for (const FaultRecord& rec : result.records)
    if (rec.done) classified += rec.read.size() + rec.write.size();
  if (classified != 2 * result.instruments * done) {
    obs::raiseIfError(Status::internal(
        "campaign classification accounting mismatch: " +
        std::to_string(classified) + " outcomes recorded for " +
        std::to_string(done) + " finished faults x " +
        std::to_string(result.instruments) + " instruments"));
  }
  return result;
}

TextTable summaryTable(const CampaignSummary& s) {
  TextTable t({"access", "pairs", "accessible", "recovered", "reconfig",
               "lost", "mismatches", "struct gap"});
  t.setAlign(0, TextTable::Align::Left);
  const auto row = [&](const char* name, std::size_t a, std::size_t r,
                       std::size_t c, std::size_t l, std::size_t m,
                       std::size_t gap) {
    t.addRow({name, withThousands(static_cast<std::uint64_t>(a + r + l)),
              withThousands(static_cast<std::uint64_t>(a)),
              withThousands(static_cast<std::uint64_t>(r)),
              withThousands(static_cast<std::uint64_t>(c)),
              withThousands(static_cast<std::uint64_t>(l)),
              withThousands(static_cast<std::uint64_t>(m)),
              withThousands(static_cast<std::uint64_t>(gap))});
  };
  row("read", s.readAccessible, s.readRecovered, s.readReconfigured,
      s.readLost, s.readMismatches, 0);
  row("write", s.writeAccessible, s.writeRecovered, s.writeReconfigured,
      s.writeLost, s.writeMismatches, 0);
  t.addSeparator();
  row("total", s.readAccessible + s.writeAccessible,
      s.readRecovered + s.writeRecovered,
      s.readReconfigured + s.writeReconfigured, s.readLost + s.writeLost,
      s.readMismatches + s.writeMismatches,
      s.segmentBreakGapPairs + s.muxStuckGapPairs);
  return t;
}

TextTable robustnessTable(const RobustnessReport& r) {
  TextTable t({"mode", "probes", "predicted", "observed", "compounded",
               "masked", "reconfig", "retention"});
  t.setAlign(0, TextTable::Align::Left);
  char retention[32];
  std::snprintf(retention, sizeof retention, "%.4f", r.retention());
  t.addRow({campaignModeName(r.mode),
            withThousands(static_cast<std::uint64_t>(r.probes)),
            withThousands(static_cast<std::uint64_t>(r.predictedAccessible)),
            withThousands(static_cast<std::uint64_t>(r.observedAccessible)),
            withThousands(static_cast<std::uint64_t>(r.compounded)),
            withThousands(static_cast<std::uint64_t>(r.masked)),
            withThousands(static_cast<std::uint64_t>(r.reconfigured)),
            retention});
  return t;
}

namespace {

const char* outcomeWord(Outcome o) {
  switch (o) {
    case Outcome::Accessible:
      return "accessible";
    case Outcome::Recovered:
      return "recovered";
    case Outcome::RecoveredAfterReconfiguration:
      return "reconfigured";
    case Outcome::Lost:
      return "lost";
  }
  RRSN_CHECK(false, "invalid Outcome");
}

}  // namespace

TextTable mismatchTable(const rsn::Network& net,
                        const std::vector<Mismatch>& items) {
  TextTable t({"scenario", "instrument", "access", "simulated", "reference"});
  for (std::size_t c = 0; c < 5; ++c) t.setAlign(c, TextTable::Align::Left);
  for (const Mismatch& m : items) {
    t.addRow({describe(net, m.scenario), net.instrument(m.instrument).name,
              m.isRead ? "read" : "write", outcomeWord(m.simulated),
              m.referenceAccessible ? "accessible" : "lost"});
  }
  return t;
}

TextTable outcomeTable(const rsn::Network& net, const CampaignResult& result) {
  TextTable t({"scenario", "done", "read", "write", "struct_obs",
               "struct_set", "expect_obs", "expect_set",
               "oracle_disagreements"});
  t.setAlign(0, TextTable::Align::Left);
  t.setAlign(2, TextTable::Align::Left);
  t.setAlign(3, TextTable::Align::Left);
  const auto bits = [](const DynamicBitset& b) {
    std::string s(b.size(), '0');
    for (std::size_t i = 0; i < b.size(); ++i)
      if (b.test(i)) s[i] = '1';
    return s;
  };
  for (const FaultRecord& rec : result.records) {
    t.addRow({describe(net, rec.scenario), rec.done ? "1" : "0", rec.read,
              rec.write, bits(rec.structObservable), bits(rec.structSettable),
              bits(rec.expectObservable), bits(rec.expectSettable),
              withThousands(static_cast<std::uint64_t>(rec.oracleDisagreements))});
  }
  return t;
}

namespace {

json::Array diffsToJson(const rsn::Network& net,
                        const std::vector<Mismatch>& items) {
  json::Array out;
  for (const Mismatch& m : items) {
    json::Object o;
    o["scenario"] = json::Value(describe(net, m.scenario));
    o["instrument"] = json::Value(net.instrument(m.instrument).name);
    o["access"] = json::Value(m.isRead ? "read" : "write");
    o["simulated"] = json::Value(outcomeWord(m.simulated));
    o["reference_accessible"] = json::Value(m.referenceAccessible);
    out.push_back(json::Value(std::move(o)));
  }
  return out;
}

}  // namespace

json::Value reportJson(const rsn::Network& net, const CampaignResult& result) {
  const CampaignSummary s = result.summary();
  json::Object summary;
  summary["mode"] = json::Value(campaignModeName(s.mode));
  summary["faults_total"] = json::Value(static_cast<std::uint64_t>(s.faultsTotal));
  summary["faults_done"] = json::Value(static_cast<std::uint64_t>(s.faultsDone));
  summary["instruments"] = json::Value(static_cast<std::uint64_t>(s.instruments));
  summary["read_accessible"] =
      json::Value(static_cast<std::uint64_t>(s.readAccessible));
  summary["read_recovered"] =
      json::Value(static_cast<std::uint64_t>(s.readRecovered));
  summary["read_reconfigured"] =
      json::Value(static_cast<std::uint64_t>(s.readReconfigured));
  summary["read_lost"] = json::Value(static_cast<std::uint64_t>(s.readLost));
  summary["write_accessible"] =
      json::Value(static_cast<std::uint64_t>(s.writeAccessible));
  summary["write_recovered"] =
      json::Value(static_cast<std::uint64_t>(s.writeRecovered));
  summary["write_reconfigured"] =
      json::Value(static_cast<std::uint64_t>(s.writeReconfigured));
  summary["write_lost"] = json::Value(static_cast<std::uint64_t>(s.writeLost));
  summary["read_mismatches"] =
      json::Value(static_cast<std::uint64_t>(s.readMismatches));
  summary["write_mismatches"] =
      json::Value(static_cast<std::uint64_t>(s.writeMismatches));
  summary["segment_break_mismatches"] =
      json::Value(static_cast<std::uint64_t>(s.segmentBreakMismatches));
  summary["mux_stuck_mismatches"] =
      json::Value(static_cast<std::uint64_t>(s.muxStuckMismatches));
  summary["pair_compounded"] =
      json::Value(static_cast<std::uint64_t>(s.pairCompounded));
  summary["pair_masked"] = json::Value(static_cast<std::uint64_t>(s.pairMasked));
  summary["segment_break_gap_pairs"] =
      json::Value(static_cast<std::uint64_t>(s.segmentBreakGapPairs));
  summary["mux_stuck_gap_pairs"] =
      json::Value(static_cast<std::uint64_t>(s.muxStuckGapPairs));
  summary["oracle_disagreements"] =
      json::Value(static_cast<std::uint64_t>(s.oracleDisagreements));

  json::Array faults;
  for (const FaultRecord& rec : result.records) {
    json::Object o;
    o["scenario"] = json::Value(describe(net, rec.scenario));
    o["done"] = json::Value(rec.done);
    if (rec.done) {
      o["read"] = json::Value(rec.read);
      o["write"] = json::Value(rec.write);
    }
    faults.push_back(json::Value(std::move(o)));
  }

  json::Object root;
  root["network"] = json::Value(net.name());
  root["mode"] = json::Value(campaignModeName(result.mode));
  root["summary"] = json::Value(std::move(summary));
  root["faults"] = json::Value(std::move(faults));
  root["mismatches"] = json::Value(diffsToJson(net, result.mismatches()));
  root["pair_interactions"] =
      json::Value(diffsToJson(net, result.pairInteractions()));
  root["control_dependency_gaps"] =
      json::Value(diffsToJson(net, result.structuralGaps()));
  if (result.mode != CampaignMode::Single) {
    const RobustnessReport r = result.robustness();
    json::Object rj;
    rj["probes"] = json::Value(static_cast<std::uint64_t>(r.probes));
    rj["predicted_accessible"] =
        json::Value(static_cast<std::uint64_t>(r.predictedAccessible));
    rj["observed_accessible"] =
        json::Value(static_cast<std::uint64_t>(r.observedAccessible));
    rj["compounded"] = json::Value(static_cast<std::uint64_t>(r.compounded));
    rj["masked"] = json::Value(static_cast<std::uint64_t>(r.masked));
    rj["reconfigured"] =
        json::Value(static_cast<std::uint64_t>(r.reconfigured));
    rj["retention"] = json::Value(r.retention());
    root["robustness"] = json::Value(std::move(rj));
  }
  return json::Value(std::move(root));
}

}  // namespace rrsn::campaign

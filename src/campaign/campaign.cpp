#include "campaign/campaign.hpp"

#include <algorithm>
#include <cstdio>

#include "campaign/checkpoint.hpp"
#include "diag/batched.hpp"
#include "diag/diagnosis.hpp"
#include "fault/effects.hpp"
#include "lint/lint.hpp"
#include "obs/obs.hpp"
#include "rsn/graph_view.hpp"
#include "sim/simulator.hpp"
#include "sp/decomposition.hpp"
#include "support/rng.hpp"
#include "support/status.hpp"

namespace rrsn::campaign {

char toChar(Outcome o) {
  switch (o) {
    case Outcome::Accessible:
      return 'A';
    case Outcome::Recovered:
      return 'R';
    case Outcome::Lost:
      return 'L';
  }
  RRSN_CHECK(false, "invalid Outcome");
}

Outcome outcomeFromChar(char c) {
  switch (c) {
    case 'A':
      return Outcome::Accessible;
    case 'R':
      return Outcome::Recovered;
    case 'L':
      return Outcome::Lost;
    default:
      throw ValidationError("invalid outcome character in campaign record");
  }
}

namespace {

/// One end-to-end access on a freshly reset fault-injected simulator.
/// The simulator and engine are shared across the fault's probes (the
/// reset between probes restores power-up state exactly, and the
/// engine's path tables depend only on the topology); any engine-level
/// failure (no valid path, rounds exhausted, marker poisoned) is the
/// definition of "lost", so Error maps to Lost rather than escaping the
/// campaign.
Outcome probeAccess(sim::ScanSimulator& sim, sim::Retargeter& engine,
                    const fault::Fault& f, rsn::InstrumentId inst,
                    bool isRead) {
  try {
    sim.reset();
    sim.injectFault(f);
    sim::RetargetResult r;
    if (isRead) {
      r = engine.readInstrument(inst);
    } else {
      const rsn::Network& net = sim.network();
      const std::uint32_t len = net.segment(net.instrument(inst).segment).length;
      r = engine.writeInstrument(inst, sim::accessMarker(len));
    }
    if (!r.success) return Outcome::Lost;
    return r.rerouted ? Outcome::Recovered : Outcome::Accessible;
  } catch (const Error&) {
    return Outcome::Lost;
  }
}

void tallyByKind(const fault::Fault& f, std::size_t& breaks,
                 std::size_t& stucks) {
  if (f.kind == fault::FaultKind::SegmentBreak) {
    breaks += 1;
  } else {
    stucks += 1;
  }
}

/// Collects sim-vs-reference disagreements of one finished record.
void collectDiffs(const FaultRecord& rec, std::size_t instruments,
                  const DynamicBitset& refObservable,
                  const DynamicBitset& refSettable,
                  std::vector<Mismatch>& items) {
  for (std::size_t i = 0; i < instruments; ++i) {
    const auto inst = static_cast<rsn::InstrumentId>(i);
    if (rec.readAccessible(i) != refObservable.test(i)) {
      items.push_back({rec.fault, inst, /*isRead=*/true,
                       outcomeFromChar(rec.read[i]), refObservable.test(i)});
    }
    if (rec.writeAccessible(i) != refSettable.test(i)) {
      items.push_back({rec.fault, inst, /*isRead=*/false,
                       outcomeFromChar(rec.write[i]), refSettable.test(i)});
    }
  }
}

}  // namespace

Expectation expectedAccessibility(const rsn::Network& net,
                                  const rsn::GraphView& /*gv*/,
                                  const fault::Fault& f) {
  // One oracle implementation: the batched syndrome engine computes the
  // exact retargeting semantics (strict, depth-bounded and clean-suffix
  // break tolerance — see diag/batched.hpp); campaign_test validates it
  // against the simulator on the example networks, and the dictionary's
  // verify mode cross-checks it row-for-row against per-probe builds.
  const diag::BatchedSyndromeEngine engine(net);
  const diag::Syndrome row = engine.row(&f, 0);
  const std::size_t n = net.instruments().size();
  Expectation e{DynamicBitset(n), DynamicBitset(n)};
  for (std::size_t i = 0; i < n; ++i) {
    if (row.passed.test(2 * i)) e.observable.set(i);
    if (row.passed.test(2 * i + 1)) e.settable.set(i);
  }
  return e;
}

CampaignSummary CampaignResult::summary() const {
  CampaignSummary s;
  s.faultsTotal = records.size();
  s.instruments = instruments;
  for (const FaultRecord& rec : records) {
    if (!rec.done) continue;
    s.faultsDone += 1;
    s.oracleDisagreements += rec.oracleDisagreements;
    for (std::size_t i = 0; i < instruments; ++i) {
      switch (outcomeFromChar(rec.read[i])) {
        case Outcome::Accessible:
          s.readAccessible += 1;
          break;
        case Outcome::Recovered:
          s.readRecovered += 1;
          break;
        case Outcome::Lost:
          s.readLost += 1;
          break;
      }
      switch (outcomeFromChar(rec.write[i])) {
        case Outcome::Accessible:
          s.writeAccessible += 1;
          break;
        case Outcome::Recovered:
          s.writeRecovered += 1;
          break;
        case Outcome::Lost:
          s.writeLost += 1;
          break;
      }
      if (rec.readAccessible(i) != rec.expectObservable.test(i)) {
        s.readMismatches += 1;
        tallyByKind(rec.fault, s.segmentBreakMismatches, s.muxStuckMismatches);
      }
      if (rec.writeAccessible(i) != rec.expectSettable.test(i)) {
        s.writeMismatches += 1;
        tallyByKind(rec.fault, s.segmentBreakMismatches, s.muxStuckMismatches);
      }
      if (rec.readAccessible(i) != rec.structObservable.test(i) ||
          rec.writeAccessible(i) != rec.structSettable.test(i)) {
        tallyByKind(rec.fault, s.segmentBreakGapPairs, s.muxStuckGapPairs);
      }
    }
  }
  return s;
}

std::vector<Mismatch> CampaignResult::mismatches() const {
  std::vector<Mismatch> items;
  for (const FaultRecord& rec : records) {
    if (!rec.done) continue;
    collectDiffs(rec, instruments, rec.expectObservable, rec.expectSettable,
                 items);
  }
  return items;
}

std::vector<Mismatch> CampaignResult::structuralGaps() const {
  std::vector<Mismatch> items;
  for (const FaultRecord& rec : records) {
    if (!rec.done) continue;
    collectDiffs(rec, instruments, rec.structObservable, rec.structSettable,
                 items);
  }
  return items;
}

CampaignEngine::CampaignEngine(const rsn::Network& net, CampaignConfig config)
    : net_(&net), config_(std::move(config)) {
  if (!config_.excludePrimitives.empty()) {
    RRSN_CHECK(config_.excludePrimitives.size() == net.primitiveCount(),
               "excludePrimitives must have one bit per network primitive");
  }
  const fault::FaultUniverse all(net);
  for (const fault::Fault& f : all.faults()) {
    const rsn::PrimitiveRef ref = fault::refOf(f);
    if (!config_.excludePrimitives.empty() &&
        config_.excludePrimitives.test(net.linearId(ref))) {
      continue;
    }
    universe_.push_back(f);
  }
  if (config_.sample != 0 && config_.sample < universe_.size()) {
    Rng rng(config_.seed);
    // sampleIndices is sorted, so the sampled campaign keeps the
    // canonical fault order of the exhaustive one.
    const std::vector<std::size_t> keep =
        rng.sampleIndices(universe_.size(), config_.sample);
    std::vector<fault::Fault> sampled;
    sampled.reserve(keep.size());
    for (std::size_t k : keep) sampled.push_back(universe_[k]);
    universe_ = std::move(sampled);
  }
}

FaultRecord CampaignEngine::probeFault(const rsn::GraphView& gv,
                                       const sp::DecompositionTree& tree,
                                       const fault::Fault& f,
                                       std::atomic<std::uint64_t>& probes) const {
  FaultRecord rec;
  rec.fault = f;
  const std::size_t n = net_->instruments().size();
  const fault::AccessibilityLoss graphLoss =
      fault::lossUnderFaultGraph(*net_, gv, f);
  const fault::AccessibilityLoss treeLoss = fault::lossUnderFaultTree(tree, f);
  rec.structObservable = DynamicBitset(n);
  rec.structSettable = DynamicBitset(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (!graphLoss.unobservable.test(i)) rec.structObservable.set(i);
    if (!graphLoss.unsettable.test(i)) rec.structSettable.set(i);
    if (graphLoss.unobservable.test(i) != treeLoss.unobservable.test(i) ||
        graphLoss.unsettable.test(i) != treeLoss.unsettable.test(i)) {
      rec.oracleDisagreements += 1;
    }
  }
  const Expectation expected = expectedAccessibility(*net_, gv, f);
  rec.expectObservable = expected.observable;
  rec.expectSettable = expected.settable;
  rec.read.assign(n, 'L');
  rec.write.assign(n, 'L');
  sim::ScanSimulator sim(*net_);
  sim::Retargeter engine(sim, config_.retarget);
  for (std::size_t i = 0; i < n; ++i) {
    const auto inst = static_cast<rsn::InstrumentId>(i);
    rec.read[i] = toChar(probeAccess(sim, engine, f, inst, /*isRead=*/true));
    rec.write[i] = toChar(probeAccess(sim, engine, f, inst, /*isRead=*/false));
    probes.fetch_add(2, std::memory_order_relaxed);
  }
  rec.done = true;
  return rec;
}

CampaignResult CampaignEngine::run() {
  RRSN_OBS_SPAN("campaign.run");
  if (config_.lint) lint::enforceClean(*net_, "campaign");
  CampaignResult result;
  result.instruments = net_->instruments().size();
  result.records.resize(universe_.size());
  for (std::size_t k = 0; k < universe_.size(); ++k)
    result.records[k].fault = universe_[k];

  const std::uint64_t fingerprint = campaignFingerprint(*net_, config_);
  std::size_t restored = 0;
  if (!config_.checkpointPath.empty()) {
    RRSN_OBS_SPAN("campaign.checkpoint_load");
    const CheckpointLoad load =
        loadCheckpoint(config_.checkpointPath, fingerprint, result);
    if (!load.status.ok()) {
      // A damaged or stale state file downgrades to a fresh start: the
      // checkpoint exists to save work, never to abort the campaign.
      std::fprintf(stderr, "campaign: checkpoint ignored, restarting: %s\n",
                   load.status.message().c_str());
    }
    restored = load.restored;
  }
  static const obs::MetricId kRestored = obs::counter("campaign.restored");
  obs::count(kRestored, restored);

  const rsn::GraphView gv = rsn::buildGraphView(*net_);
  const sp::DecompositionTree tree = sp::DecompositionTree::build(*net_);

  std::vector<std::size_t> pending;
  for (std::size_t k = 0; k < result.records.size(); ++k)
    if (!result.records[k].done) pending.push_back(k);
  std::size_t done = result.records.size() - pending.size();
  if (config_.progress) config_.progress(done, result.records.size());

  // Always-on accounting oracle: every fault probed this run must issue
  // exactly two probes per instrument, and every finished record must
  // classify every instrument.  Checked after the sweep; a mismatch is
  // an engine bug (skipped or double-issued probes), not a user error.
  std::atomic<std::uint64_t> probes{0};
  std::size_t faultsProbed = 0;

  static const obs::MetricId kProbes = obs::counter("campaign.probes");
  static const obs::MetricId kFaults = obs::counter("campaign.faults_probed");
  const std::size_t batchSize =
      config_.checkpointEvery != 0 ? config_.checkpointEvery
                                   : std::max<std::size_t>(pending.size(), 1);
  for (std::size_t at = 0; at < pending.size(); at += batchSize) {
    if (config_.cancel != nullptr && config_.cancel->cancelled()) break;
    const std::size_t end = std::min(at + batchSize, pending.size());
    {
      RRSN_OBS_SPAN("campaign.batch");
      parallelForCancellable(end - at, config_.cancel, [&](std::size_t j) {
        const std::size_t k = pending[at + j];
        result.records[k] = probeFault(gv, tree, universe_[k], probes);
      });
    }
    // Under cancellation some records of the batch may not have run;
    // count what actually finished and persist exactly that.
    std::size_t finished = 0;
    for (std::size_t j = at; j < end; ++j)
      if (result.records[pending[j]].done) finished += 1;
    done += finished;
    faultsProbed += finished;
    if (!config_.checkpointPath.empty()) {
      RRSN_OBS_SPAN("campaign.checkpoint_save");
      saveCheckpoint(config_.checkpointPath, fingerprint, result);
    }
    if (config_.progress) config_.progress(done, result.records.size());
  }
  obs::count(kProbes, probes.load(std::memory_order_relaxed));
  obs::count(kFaults, faultsProbed);

  const std::uint64_t expectProbes =
      2 * static_cast<std::uint64_t>(result.instruments) *
      static_cast<std::uint64_t>(faultsProbed);
  if (probes.load(std::memory_order_relaxed) != expectProbes) {
    obs::raiseIfError(Status::internal(
        "campaign probe accounting mismatch: issued " +
        std::to_string(probes.load(std::memory_order_relaxed)) +
        " probes for " + std::to_string(faultsProbed) + " faults x " +
        std::to_string(result.instruments) + " instruments (expected " +
        std::to_string(expectProbes) + ")"));
  }
  std::size_t classified = 0;
  for (const FaultRecord& rec : result.records)
    if (rec.done) classified += rec.read.size() + rec.write.size();
  if (classified != 2 * result.instruments * done) {
    obs::raiseIfError(Status::internal(
        "campaign classification accounting mismatch: " +
        std::to_string(classified) + " outcomes recorded for " +
        std::to_string(done) + " finished faults x " +
        std::to_string(result.instruments) + " instruments"));
  }
  return result;
}

TextTable summaryTable(const CampaignSummary& s) {
  TextTable t({"access", "pairs", "accessible", "recovered", "lost",
               "mismatches", "struct gap"});
  t.setAlign(0, TextTable::Align::Left);
  const auto row = [&](const char* name, std::size_t a, std::size_t r,
                       std::size_t l, std::size_t m, std::size_t gap) {
    t.addRow({name, withThousands(static_cast<std::uint64_t>(a + r + l)),
              withThousands(static_cast<std::uint64_t>(a)),
              withThousands(static_cast<std::uint64_t>(r)),
              withThousands(static_cast<std::uint64_t>(l)),
              withThousands(static_cast<std::uint64_t>(m)),
              withThousands(static_cast<std::uint64_t>(gap))});
  };
  row("read", s.readAccessible, s.readRecovered, s.readLost, s.readMismatches,
      0);
  row("write", s.writeAccessible, s.writeRecovered, s.writeLost,
      s.writeMismatches, 0);
  t.addSeparator();
  row("total", s.readAccessible + s.writeAccessible,
      s.readRecovered + s.writeRecovered, s.readLost + s.writeLost,
      s.readMismatches + s.writeMismatches,
      s.segmentBreakGapPairs + s.muxStuckGapPairs);
  return t;
}

namespace {

const char* outcomeWord(Outcome o) {
  switch (o) {
    case Outcome::Accessible:
      return "accessible";
    case Outcome::Recovered:
      return "recovered";
    case Outcome::Lost:
      return "lost";
  }
  RRSN_CHECK(false, "invalid Outcome");
}

}  // namespace

TextTable mismatchTable(const rsn::Network& net,
                        const std::vector<Mismatch>& items) {
  TextTable t({"fault", "instrument", "access", "simulated", "reference"});
  for (std::size_t c = 0; c < 5; ++c) t.setAlign(c, TextTable::Align::Left);
  for (const Mismatch& m : items) {
    t.addRow({fault::describe(net, m.fault), net.instrument(m.instrument).name,
              m.isRead ? "read" : "write", outcomeWord(m.simulated),
              m.referenceAccessible ? "accessible" : "lost"});
  }
  return t;
}

TextTable outcomeTable(const rsn::Network& net, const CampaignResult& result) {
  TextTable t({"fault", "done", "read", "write", "struct_obs", "struct_set",
               "expect_obs", "expect_set", "oracle_disagreements"});
  t.setAlign(0, TextTable::Align::Left);
  t.setAlign(2, TextTable::Align::Left);
  t.setAlign(3, TextTable::Align::Left);
  const auto bits = [](const DynamicBitset& b) {
    std::string s(b.size(), '0');
    for (std::size_t i = 0; i < b.size(); ++i)
      if (b.test(i)) s[i] = '1';
    return s;
  };
  for (const FaultRecord& rec : result.records) {
    t.addRow({fault::describe(net, rec.fault), rec.done ? "1" : "0", rec.read,
              rec.write, bits(rec.structObservable), bits(rec.structSettable),
              bits(rec.expectObservable), bits(rec.expectSettable),
              withThousands(static_cast<std::uint64_t>(rec.oracleDisagreements))});
  }
  return t;
}

namespace {

json::Array diffsToJson(const rsn::Network& net,
                        const std::vector<Mismatch>& items) {
  json::Array out;
  for (const Mismatch& m : items) {
    json::Object o;
    o["fault"] = json::Value(fault::describe(net, m.fault));
    o["instrument"] = json::Value(net.instrument(m.instrument).name);
    o["access"] = json::Value(m.isRead ? "read" : "write");
    o["simulated"] = json::Value(outcomeWord(m.simulated));
    o["reference_accessible"] = json::Value(m.referenceAccessible);
    out.push_back(json::Value(std::move(o)));
  }
  return out;
}

}  // namespace

json::Value reportJson(const rsn::Network& net, const CampaignResult& result) {
  const CampaignSummary s = result.summary();
  json::Object summary;
  summary["faults_total"] = json::Value(static_cast<std::uint64_t>(s.faultsTotal));
  summary["faults_done"] = json::Value(static_cast<std::uint64_t>(s.faultsDone));
  summary["instruments"] = json::Value(static_cast<std::uint64_t>(s.instruments));
  summary["read_accessible"] =
      json::Value(static_cast<std::uint64_t>(s.readAccessible));
  summary["read_recovered"] =
      json::Value(static_cast<std::uint64_t>(s.readRecovered));
  summary["read_lost"] = json::Value(static_cast<std::uint64_t>(s.readLost));
  summary["write_accessible"] =
      json::Value(static_cast<std::uint64_t>(s.writeAccessible));
  summary["write_recovered"] =
      json::Value(static_cast<std::uint64_t>(s.writeRecovered));
  summary["write_lost"] = json::Value(static_cast<std::uint64_t>(s.writeLost));
  summary["read_mismatches"] =
      json::Value(static_cast<std::uint64_t>(s.readMismatches));
  summary["write_mismatches"] =
      json::Value(static_cast<std::uint64_t>(s.writeMismatches));
  summary["segment_break_mismatches"] =
      json::Value(static_cast<std::uint64_t>(s.segmentBreakMismatches));
  summary["mux_stuck_mismatches"] =
      json::Value(static_cast<std::uint64_t>(s.muxStuckMismatches));
  summary["segment_break_gap_pairs"] =
      json::Value(static_cast<std::uint64_t>(s.segmentBreakGapPairs));
  summary["mux_stuck_gap_pairs"] =
      json::Value(static_cast<std::uint64_t>(s.muxStuckGapPairs));
  summary["oracle_disagreements"] =
      json::Value(static_cast<std::uint64_t>(s.oracleDisagreements));

  json::Array faults;
  for (const FaultRecord& rec : result.records) {
    json::Object o;
    o["fault"] = json::Value(fault::describe(net, rec.fault));
    o["done"] = json::Value(rec.done);
    if (rec.done) {
      o["read"] = json::Value(rec.read);
      o["write"] = json::Value(rec.write);
    }
    faults.push_back(json::Value(std::move(o)));
  }

  json::Object root;
  root["network"] = json::Value(net.name());
  root["summary"] = json::Value(std::move(summary));
  root["faults"] = json::Value(std::move(faults));
  root["mismatches"] = json::Value(diffsToJson(net, result.mismatches()));
  root["control_dependency_gaps"] =
      json::Value(diffsToJson(net, result.structuralGaps()));
  return json::Value(std::move(root));
}

}  // namespace rrsn::campaign

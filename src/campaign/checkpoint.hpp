// Resumable campaign state (JSON checkpoint files).
//
// A checkpoint stores every *finished* fault record together with a
// fingerprint of the network and campaign configuration.  Loading
// rejects checkpoints written for a different network or config (the
// resumed campaign would silently mix incompatible results otherwise)
// and tolerates a missing file (fresh start).  Saving is atomic:
// write to `<path>.tmp`, then rename — a deadline that fires mid-write
// can never leave a torn state file behind.
#pragma once

#include <string>

#include "campaign/campaign.hpp"

namespace rrsn::campaign {

/// FNV-1a hash over the canonical netlist text and the config fields
/// that change probe outcomes (sample, seed, retarget bounds, excluded
/// primitives).  Checkpoint path / batch size / callbacks are excluded:
/// they affect scheduling, not results.
std::uint64_t campaignFingerprint(const rsn::Network& net,
                                  const CampaignConfig& config);

/// Writes finished records of `result` to `path` atomically.
void saveCheckpoint(const std::string& path, std::uint64_t fingerprint,
                    const CampaignResult& result);

/// Merges finished records from the checkpoint at `path` into `result`
/// and returns how many were restored.  A missing file restores 0.
/// Throws IoError on unreadable/corrupt files or fingerprint mismatch.
std::size_t loadCheckpoint(const std::string& path, std::uint64_t fingerprint,
                           CampaignResult& result);

}  // namespace rrsn::campaign

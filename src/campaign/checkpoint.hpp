// Resumable campaign state (JSON checkpoint files).
//
// A checkpoint stores every *finished* scenario record together with a
// fingerprint of the network and campaign configuration, and a format
// version (kCheckpointVersion).  Loading rejects checkpoints written
// for a different network or config (the resumed campaign would
// silently mix incompatible results otherwise), rejects a different
// format version — version-1 files predate multi-fault and transient
// scenarios, so their records cannot be re-attached safely — and
// tolerates a missing file (fresh start).  Rejection is a typed
// Status, not an exception: a truncated, hand-edited, stale or
// wrong-version state file must degrade into "checkpoint ignored,
// restarting" — it would otherwise abort the multi-hour campaign it
// exists to protect.
// Saving is atomic: write to `<path>.tmp`, then rename — a deadline
// that fires mid-write can never leave a torn state file behind.
#pragma once

#include <string>

#include "campaign/campaign.hpp"
#include "support/status.hpp"

namespace rrsn::campaign {

/// Checkpoint file format version this engine reads and writes.
/// Version 1 (PR 2/PR 4) had no version or mode field and stored
/// single-fault records only; version 2 adds both plus pair/transient
/// scenario support.
inline constexpr std::uint64_t kCheckpointVersion = 2;

/// FNV-1a hash over the canonical netlist text and the config fields
/// that change probe outcomes (mode, sample, sample fraction, seed,
/// transient rounds, retarget bounds, excluded primitives).  Checkpoint
/// path / batch size / deadline / callbacks are excluded: they affect
/// scheduling, not results.
std::uint64_t campaignFingerprint(const rsn::Network& net,
                                  const CampaignConfig& config);

/// Writes finished records of `result` to `path` atomically (staged
/// `<path>.tmp`, every write checked, fsync before rename).  A failure
/// — full disk, unwritable directory, short write — is a typed
/// non-OK Status and leaves any previous checkpoint at `path` intact;
/// it never silently commits a truncated file that would only be
/// rejected at reload.
Status saveCheckpoint(const std::string& path, std::uint64_t fingerprint,
                      const CampaignResult& result);

/// Outcome of a checkpoint load: how many finished records were merged
/// into the result, and why the file was ignored if none were.
struct CheckpointLoad {
  Status status;              ///< non-OK: file ignored, result untouched
  std::size_t restored = 0;   ///< finished records merged (0 if ignored)
};

/// Merges finished records from the checkpoint at `path` into `result`.
/// A missing file is OK with 0 restored (fresh start).  An unreadable,
/// torn or hand-edited file yields kDataLoss; a fingerprint or
/// dimension mismatch (different network / config) yields
/// kFailedPrecondition.  On any non-OK status `result` is untouched —
/// partial corrupt records are never merged.
CheckpointLoad loadCheckpoint(const std::string& path,
                              std::uint64_t fingerprint,
                              CampaignResult& result);

}  // namespace rrsn::campaign

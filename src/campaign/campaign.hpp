// Fault-injection campaign engine.
//
// The paper's central claim is that the *structural* criticality
// analysis (Sec. IV) predicts what a real defective RSN does.  Unit
// tests spot-check that per fault; this subsystem validates it at scale:
// for every (fault, instrument) pair of a network's single-fault
// universe it performs an actual retargeted access on the cycle-level
// ScanSimulator and cross-validates the outcome against both structural
// oracles (fault::lossUnderFaultTree and fault::lossUnderFaultGraph).
//
// Each probe is classified three ways:
//  * Accessible — the nominal (fault-unaware) access recipe still works;
//  * Recovered  — only a fault-aware alternative mux branch found by the
//    bounded reroute search works: the access degraded gracefully;
//  * Lost       — no retargeted access succeeds.
// Cross-validation uses two reference predictions per pair:
//  * the *plain structural* verdict from the paper's oracles, which
//    assumes control bits can always be applied.  The strict engine is
//    documented to be more pessimistic (the control-dependency gap: a
//    SIB's open-bit must be written through the defective RSN itself),
//    so sim-vs-structural differences are expected; they are itemized
//    as *gaps*, never dropped.
//  * the *expected* verdict: the structural oracle composed with a
//    control-dependency closure (expectedAccessibility below), i.e.
//    reachability over only those mux branches whose control registers
//    are still settable under the fault.  A pair counts as a *mismatch*
//    when the simulated outcome disagrees with this expected verdict —
//    that indicates a bug in the engine or the analysis, and exhaustive
//    campaigns must report zero mismatches for segment breaks.
//
// Campaigns fan out per fault over the PR-1 thread pool and are
// deterministic at any thread count: every fault's record depends only
// on the fault.  Long runs honor a cooperative CancellationToken
// (deadline or explicit) and checkpoint finished faults to a JSON state
// file, so an interrupted campaign resumes where it stopped and ends in
// the same final report as an uninterrupted one.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "rsn/network.hpp"
#include "sim/retarget.hpp"
#include "support/bitset.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/table.hpp"

namespace rrsn::rsn {
struct GraphView;
}
namespace rrsn::sp {
class DecompositionTree;
}

namespace rrsn::campaign {

/// Simulated outcome of one (fault, instrument, direction) probe.
enum class Outcome : std::uint8_t { Accessible, Recovered, Lost };

/// 'A' / 'R' / 'L' — the per-instrument encoding used in records,
/// checkpoints and reports.
char toChar(Outcome o);
Outcome outcomeFromChar(char c);

/// Control-aware expected accessibility under one fault: structural
/// reachability restricted to mux branches that are actually steerable.
/// A segment-controlled branch is steerable if it is the reset selection
/// or its control register is still settable (computed as a shrinking
/// fixpoint, since settability itself depends on steerable branches).
/// A broken segment re-poisons itself whenever it is clocked and smears
/// X over every scan cell downstream of it on the active path, so a
/// break-tolerant access (reads tolerate the break on the scan-in side
/// of the target, writes on the scan-out side) additionally needs every
/// configuration round to finish before the break joins the path, or a
/// suffix free of mux address registers past the break.  Implemented by
/// diag::BatchedSyndromeEngine (the single oracle implementation); see
/// diag/batched.hpp for the full mode derivation.
struct Expectation {
  DynamicBitset observable;
  DynamicBitset settable;
};
Expectation expectedAccessibility(const rsn::Network& net,
                                  const rsn::GraphView& gv,
                                  const fault::Fault& f);

/// Everything the campaign learned about one fault.
struct FaultRecord {
  fault::Fault fault;
  bool done = false;
  std::string read;   ///< toChar(Outcome) per instrument, index order
  std::string write;  ///< likewise for write accesses
  DynamicBitset structObservable;  ///< plain graph-oracle verdicts
  DynamicBitset structSettable;
  DynamicBitset expectObservable;  ///< control-aware expected verdicts
  DynamicBitset expectSettable;
  /// Instruments on which the tree and graph oracles disagreed (must be
  /// zero; a nonzero count means one of the two analyses is wrong).
  std::size_t oracleDisagreements = 0;

  bool readAccessible(std::size_t i) const { return read[i] != 'L'; }
  bool writeAccessible(std::size_t i) const { return write[i] != 'L'; }
};

/// One itemized disagreement between the simulated outcome and a
/// reference prediction (expected oracle for mismatches(), plain
/// structural oracle for structuralGaps()).
struct Mismatch {
  fault::Fault fault;
  rsn::InstrumentId instrument = rsn::kNone;
  bool isRead = true;              ///< read (observability) or write probe
  Outcome simulated = Outcome::Lost;
  bool referenceAccessible = false;
};

/// Aggregate counters over the finished part of a campaign.
struct CampaignSummary {
  std::size_t faultsTotal = 0;
  std::size_t faultsDone = 0;
  std::size_t instruments = 0;
  std::size_t readAccessible = 0, readRecovered = 0, readLost = 0;
  std::size_t writeAccessible = 0, writeRecovered = 0, writeLost = 0;
  /// Simulated vs expected-oracle disagreements (engine/analysis bugs).
  std::size_t readMismatches = 0, writeMismatches = 0;
  std::size_t segmentBreakMismatches = 0;  ///< must be 0 (acceptance gate)
  std::size_t muxStuckMismatches = 0;
  /// Simulated vs plain-structural disagreements: the documented
  /// control-dependency gap, itemized by structuralGaps().
  std::size_t segmentBreakGapPairs = 0;
  std::size_t muxStuckGapPairs = 0;
  std::size_t oracleDisagreements = 0;

  bool complete() const { return faultsDone == faultsTotal; }
  std::size_t pairsDone() const { return faultsDone * instruments; }
};

/// Full campaign state: the fault list in canonical order plus one
/// record per fault (records of not-yet-probed faults have done=false).
struct CampaignResult {
  std::vector<FaultRecord> records;
  std::size_t instruments = 0;

  CampaignSummary summary() const;
  /// Simulated vs expected-oracle disagreements — must be empty for
  /// segment breaks on a correct engine.
  std::vector<Mismatch> mismatches() const;
  /// Simulated vs plain-structural disagreements — the itemized
  /// control-dependency gap.
  std::vector<Mismatch> structuralGaps() const;
};

/// Campaign shape and bounds.
struct CampaignConfig {
  /// 0 = exhaustive over the single-fault universe; otherwise probe a
  /// deterministic `sample`-sized subset (seeded by `seed`).
  std::size_t sample = 0;
  std::uint64_t seed = 2022;
  /// Bounds forwarded to every Retargeter the campaign spawns.
  sim::RetargetOptions retarget;
  /// Faults located at these primitives (by Network::linearId) are
  /// excluded — a hardened primitive cannot fail.  Empty = no exclusion.
  DynamicBitset excludePrimitives;
  /// Path of the JSON checkpoint/resume state file; empty = disabled.
  std::string checkpointPath;
  /// Finished faults per checkpoint flush (and per progress callback).
  std::size_t checkpointEvery = 32;
  /// Cooperative cancellation (deadline or external); may be null.
  const CancellationToken* cancel = nullptr;
  /// Called after every batch with (faultsDone, faultsTotal).
  std::function<void(std::size_t, std::size_t)> progress;
  /// Fail fast on networks with error-severity lint findings: run()
  /// throws lint::LintError before probing anything.  Disable to
  /// campaign a known-defective model anyway.
  bool lint = true;
};

/// Runs fault-injection campaigns on one network.
class CampaignEngine {
 public:
  explicit CampaignEngine(const rsn::Network& net, CampaignConfig config = {});

  /// The campaign's fault list in canonical (probe) order.
  const std::vector<fault::Fault>& universe() const { return universe_; }

  /// Runs the campaign to completion, resuming from the checkpoint file
  /// if one exists.  Returns early (summary().complete() == false) when
  /// the cancellation token trips; progress up to the last finished
  /// batch is in the checkpoint, so a later run() continues from there.
  CampaignResult run();

 private:
  /// Probes one fault against every instrument.  `probes` counts every
  /// simulator probe issued (two per instrument); run() cross-checks the
  /// total against the classification count after the sweep — a mismatch
  /// means probes were silently skipped or double-issued.
  FaultRecord probeFault(const rsn::GraphView& gv,
                         const sp::DecompositionTree& tree,
                         const fault::Fault& f,
                         std::atomic<std::uint64_t>& probes) const;

  const rsn::Network* net_;
  CampaignConfig config_;
  std::vector<fault::Fault> universe_;
};

/// Two-row summary table (read / write probes) for CLI output.
TextTable summaryTable(const CampaignSummary& s);

/// Per-pair itemization of every structural-vs-simulated mismatch.
TextTable mismatchTable(const rsn::Network& net,
                        const std::vector<Mismatch>& items);

/// Per-fault outcome table (one row per fault), the CSV export payload.
TextTable outcomeTable(const rsn::Network& net, const CampaignResult& result);

/// Machine-readable report: summary counters, per-fault outcome strings
/// and itemized mismatches.  Canonical (sorted keys, no timestamps), so
/// byte-equality of two reports proves campaign determinism.
json::Value reportJson(const rsn::Network& net, const CampaignResult& result);

}  // namespace rrsn::campaign

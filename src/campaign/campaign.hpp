// Fault-injection campaign engine.
//
// The paper's central claim is that the *structural* criticality
// analysis (Sec. IV) predicts what a real defective RSN does.  Unit
// tests spot-check that per fault; this subsystem validates it at scale
// across three campaign families selected by CampaignConfig::mode:
//
//  * Single (the original family): for every (fault, instrument) pair
//    of the single-fault universe it performs an actual retargeted
//    access on the cycle-level ScanSimulator and cross-validates the
//    outcome against both structural oracles
//    (fault::lossUnderFaultTree and fault::lossUnderFaultGraph).
//  * Pairs: simultaneous permanent defect pairs {f1, f2} drawn from a
//    stratified sample of the O(F^2) pair space (strata by fault-kind
//    combination: break+break, break+stuck, stuck+stuck).  The
//    reference prediction is the *pair-composed* oracle — the AND of
//    the two single-fault expected verdicts.  Composition is not exact:
//    real pair physics both *compounds* (a reroute that survives f1
//    alone is blocked by f2) and *masks* (a stuck mux can hide a broken
//    control register it makes unreachable), so sim-vs-composed
//    differences are itemized as interaction effects, never errors.
//    The guaranteed-zero gate for pairs is instead the debug build's
//    per-probe cross-check: every sampled pair's classification on the
//    shared simulator is re-derived on a fresh simulator per access.
//  * Transient: one-shot soft errors (sim::TransientUpset) that corrupt
//    one segment's registers to X after a chosen CSU round.  A probe
//    that fails under the upset is retried once after a 1687-style
//    reconfiguration sequence (ScanSimulator::resetConfiguration); a
//    retry that succeeds classifies as RecoveredAfterReconfiguration.
//    The reference prediction is the fault-free expected row, so every
//    transient mismatch is a real bug (acceptance gate: zero).
//
// Each probe is classified four ways:
//  * Accessible — the nominal (fault-unaware) access recipe works;
//  * Recovered  — only a fault-aware alternative mux branch found by
//    the bounded reroute search works: graceful degradation;
//  * RecoveredAfterReconfiguration — transient campaigns only: the
//    access failed under the upset but succeeded after the recovery
//    sequence rewrote the configuration;
//  * Lost       — no retargeted access succeeds.
// Cross-validation uses two reference predictions per probe:
//  * the *plain structural* verdict from the paper's oracles, which
//    assumes control bits can always be applied.  The strict engine is
//    documented to be more pessimistic (the control-dependency gap), so
//    sim-vs-structural differences are expected; they are itemized as
//    *gaps*, never dropped.  For pairs the plain verdict is composed
//    (AND) the same way as the expected one.
//  * the *expected* verdict (expectedAccessibility below): structural
//    reachability composed with a control-dependency closure.  In
//    Single and Transient mode a disagreement with the simulation is a
//    *mismatch* (an engine or analysis bug — campaigns must report
//    zero); in Pairs mode disagreements are the interaction effects
//    described above and live in their own counters.
//
// Campaigns fan out per scenario over the PR-1 thread pool and are
// deterministic at any thread count: every scenario's record depends
// only on the scenario, and sampling happens once, single-threaded, at
// engine construction.  Long runs honor a cooperative CancellationToken
// (external, or an engine-owned deadline via CampaignConfig::deadlineMs)
// and checkpoint finished scenarios to a versioned JSON state file, so
// an interrupted campaign resumes where it stopped and ends in the same
// final report as an uninterrupted one.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "rsn/network.hpp"
#include "sim/retarget.hpp"
#include "sim/simulator.hpp"
#include "support/bitset.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/status.hpp"
#include "support/table.hpp"

namespace rrsn::rsn {
struct GraphView;
class FlatNetwork;
}
namespace rrsn::sp {
class DecompositionTree;
}
namespace rrsn::diag {
class BatchedSyndromeEngine;
}

namespace rrsn::campaign {

/// Simulated outcome of one (scenario, instrument, direction) probe.
enum class Outcome : std::uint8_t {
  Accessible,
  Recovered,
  RecoveredAfterReconfiguration,
  Lost,
};

/// 'A' / 'R' / 'C' / 'L' — the per-instrument encoding used in records,
/// checkpoints and reports.
char toChar(Outcome o);
Outcome outcomeFromChar(char c);

/// Which campaign family the engine runs.
enum class CampaignMode : std::uint8_t { Single, Pairs, Transient };
const char* campaignModeName(CampaignMode m);

/// One element of a campaign universe: a single permanent fault, an
/// unordered pair of simultaneous permanent faults, or a one-shot
/// transient upset.  Pair scenarios also carry the indices of their
/// members in the engine's filtered single-fault universe (canonical
/// order aIdx < bIdx) so per-single oracle rows can be composed without
/// recomputation.
struct FaultScenario {
  CampaignMode kind = CampaignMode::Single;
  fault::Fault a;                      ///< Single and Pairs
  fault::Fault b;                      ///< Pairs only
  std::uint32_t aIdx = 0;              ///< index of `a` in singles()
  std::uint32_t bIdx = 0;              ///< index of `b` in singles()
  rsn::SegmentId upsetSegment = rsn::kNone;  ///< Transient only
  std::uint32_t upsetRound = 0;              ///< Transient only

  /// The permanent faults to inject ({}, {a} or {a, b}).
  std::vector<fault::Fault> permanentFaults() const;

  bool operator==(const FaultScenario&) const = default;
};

/// Human-readable scenario name: "break(s)", "pair(break(s)+stuck(m=1))"
/// or "upset(s@round)".
std::string describe(const rsn::Network& net, const FaultScenario& s);

/// Control-aware expected accessibility under one fault: structural
/// reachability restricted to mux branches that are actually steerable.
/// A segment-controlled branch is steerable if it is the reset selection
/// or its control register is still settable (computed as a shrinking
/// fixpoint, since settability itself depends on steerable branches).
/// A broken segment re-poisons itself whenever it is clocked and smears
/// X over every scan cell downstream of it on the active path, so a
/// break-tolerant access (reads tolerate the break on the scan-in side
/// of the target, writes on the scan-out side) additionally needs every
/// configuration round to finish before the break joins the path, or a
/// suffix free of mux address registers past the break.  Implemented by
/// diag::BatchedSyndromeEngine (the single oracle implementation); see
/// diag/batched.hpp for the full mode derivation.
struct Expectation {
  DynamicBitset observable;
  DynamicBitset settable;
};
Expectation expectedAccessibility(const rsn::Network& net,
                                  const rsn::GraphView& gv,
                                  const fault::Fault& f);

/// Same oracle over a prebuilt engine — for callers that hold one for a
/// whole sweep (the convenience overload above lowers the network and
/// builds a fresh engine per call, which squares the flattening cost of
/// a batch).  `instruments` sizes the result rows; `worker` selects the
/// engine's scratch lane.
Expectation expectedAccessibility(const diag::BatchedSyndromeEngine& engine,
                                  std::size_t instruments,
                                  const fault::Fault& f,
                                  std::size_t worker = 0);

/// Everything the campaign learned about one scenario.
struct FaultRecord {
  FaultScenario scenario;
  bool done = false;
  std::string read;   ///< toChar(Outcome) per instrument, index order
  std::string write;  ///< likewise for write accesses
  DynamicBitset structObservable;  ///< plain graph-oracle verdicts
  DynamicBitset structSettable;    ///< (pair-composed in Pairs mode)
  DynamicBitset expectObservable;  ///< control-aware expected verdicts
  DynamicBitset expectSettable;    ///< (pair-composed in Pairs mode)
  /// Instruments on which the tree and graph oracles disagreed (must be
  /// zero; a nonzero count means one of the two analyses is wrong).
  std::size_t oracleDisagreements = 0;

  bool readAccessible(std::size_t i) const { return read[i] != 'L'; }
  bool writeAccessible(std::size_t i) const { return write[i] != 'L'; }
};

/// One itemized disagreement between the simulated outcome and a
/// reference prediction (expected oracle for mismatches() and
/// pairInteractions(), plain structural oracle for structuralGaps()).
struct Mismatch {
  FaultScenario scenario;
  rsn::InstrumentId instrument = rsn::kNone;
  bool isRead = true;              ///< read (observability) or write probe
  Outcome simulated = Outcome::Lost;
  bool referenceAccessible = false;
};

/// Aggregate counters over the finished part of a campaign.
struct CampaignSummary {
  CampaignMode mode = CampaignMode::Single;
  std::size_t faultsTotal = 0;
  std::size_t faultsDone = 0;
  std::size_t instruments = 0;
  std::size_t readAccessible = 0, readRecovered = 0, readLost = 0;
  std::size_t writeAccessible = 0, writeRecovered = 0, writeLost = 0;
  /// Transient campaigns: probes that needed the reconfiguration
  /// sequence to succeed (counted inside *Recovered as well).
  std::size_t readReconfigured = 0, writeReconfigured = 0;
  /// Simulated vs expected-oracle disagreements (engine/analysis bugs).
  /// Always zero in Pairs mode — pair disagreements are interaction
  /// effects and live in pairCompounded / pairMasked instead.
  std::size_t readMismatches = 0, writeMismatches = 0;
  std::size_t segmentBreakMismatches = 0;  ///< must be 0 (acceptance gate)
  std::size_t muxStuckMismatches = 0;
  /// Pairs mode: probes where the simulation disagrees with the
  /// pair-composed expected oracle.  Compounded = composition predicted
  /// accessible but the pair's physics lost the access; masked =
  /// composition predicted lost but one fault hides the other's damage.
  std::size_t pairCompounded = 0;
  std::size_t pairMasked = 0;
  /// Simulated vs plain-structural disagreements: the documented
  /// control-dependency gap, itemized by structuralGaps().
  std::size_t segmentBreakGapPairs = 0;
  std::size_t muxStuckGapPairs = 0;
  std::size_t oracleDisagreements = 0;

  bool complete() const { return faultsDone == faultsTotal; }
  std::size_t pairsDone() const { return faultsDone * instruments; }
};

/// The hardening-plan robustness view of a finished pair or transient
/// campaign: how much of the single-fault accessibility bound survives
/// the richer fault scenarios.
struct RobustnessReport {
  CampaignMode mode = CampaignMode::Pairs;
  std::size_t probes = 0;              ///< classified (scenario, inst, dir)
  std::size_t predictedAccessible = 0; ///< composed/fault-free oracle says A
  std::size_t observedAccessible = 0;  ///< simulation says != Lost
  std::size_t compounded = 0;          ///< predicted A, observed Lost
  std::size_t masked = 0;              ///< predicted Lost, observed A
  std::size_t reconfigured = 0;        ///< transient: recovered via reset

  /// Fraction of the oracle-predicted accessible probes that the
  /// simulation confirms — the Pareto-axis candidate ("how much of the
  /// single-fault damage bound survives").  1.0 when nothing was
  /// predicted accessible.
  double retention() const {
    return predictedAccessible == 0
               ? 1.0
               : static_cast<double>(predictedAccessible - compounded) /
                     static_cast<double>(predictedAccessible);
  }
};

/// Full campaign state: the scenario list in canonical order plus one
/// record per scenario (records of not-yet-probed ones have done=false).
struct CampaignResult {
  CampaignMode mode = CampaignMode::Single;
  std::vector<FaultRecord> records;
  std::size_t instruments = 0;

  CampaignSummary summary() const;
  /// Simulated vs expected-oracle disagreements — must be empty in
  /// Single (for segment breaks) and Transient mode on a correct
  /// engine.  Always empty in Pairs mode (see pairInteractions()).
  std::vector<Mismatch> mismatches() const;
  /// Pairs mode: itemized disagreements with the pair-composed oracle —
  /// the genuine fault-interaction effects (compounded and masked).
  std::vector<Mismatch> pairInteractions() const;
  /// Simulated vs plain-structural disagreements — the itemized
  /// control-dependency gap.
  std::vector<Mismatch> structuralGaps() const;
  /// Robustness counters (meaningful for Pairs and Transient mode).
  RobustnessReport robustness() const;
};

/// Campaign shape and bounds.
struct CampaignConfig {
  /// Which campaign family to run.
  CampaignMode mode = CampaignMode::Single;
  /// 0 = exhaustive over the mode's universe; otherwise probe a
  /// deterministic `sample`-sized subset (seeded by `seed`).  Mutually
  /// exclusive with sampleFraction.
  std::size_t sample = 0;
  /// Pairs/Transient: sample this fraction of the universe instead of
  /// an absolute count.  0 = unset; otherwise must be in (0, 1].
  double sampleFraction = 0.0;
  std::uint64_t seed = 2022;
  /// Transient mode: the CSU rounds (counted from arming) after which
  /// the one-shot upset fires; one scenario per (segment, round).
  std::vector<std::uint32_t> transientRounds = {0, 1};
  /// Bounds forwarded to every Retargeter the campaign spawns.
  sim::RetargetOptions retarget;
  /// Faults located at these primitives (by Network::linearId) are
  /// excluded — a hardened primitive cannot fail.  Empty = no exclusion.
  DynamicBitset excludePrimitives;
  /// Path of the JSON checkpoint/resume state file; empty = disabled.
  std::string checkpointPath;
  /// Finished scenarios per checkpoint flush (and progress callback).
  std::size_t checkpointEvery = 32;
  /// Engine-owned deadline: run() stops starting new batches once this
  /// many milliseconds have elapsed.  kNoDeadline = none; 0 is invalid
  /// (it would cancel the campaign before the first probe).
  static constexpr std::uint64_t kNoDeadline = ~std::uint64_t{0};
  std::uint64_t deadlineMs = kNoDeadline;
  /// Cooperative cancellation (external); may be null.
  const CancellationToken* cancel = nullptr;
  /// Called after every batch with (faultsDone, faultsTotal).
  std::function<void(std::size_t, std::size_t)> progress;
  /// Fail fast on networks with error-severity lint findings: run()
  /// throws lint::LintError before probing anything.  Disable to
  /// campaign a known-defective model anyway.
  bool lint = true;
};

/// Validates the bounds of a campaign configuration: sample fractions
/// outside (0, 1] (NaN included), sample and sampleFraction both set, a
/// zero deadline, a checkpoint path naming an existing directory, and
/// empty or duplicated transient rounds are rejected with a typed
/// kInvalidArgument Status instead of silent misbehavior downstream.
Status validateCampaignConfig(const CampaignConfig& config);

/// Runs fault-injection campaigns on one network.
class CampaignEngine {
 public:
  /// Throws ValidationError when validateCampaignConfig rejects the
  /// configuration.
  explicit CampaignEngine(const rsn::Network& net, CampaignConfig config = {});

  /// The campaign's scenario list in canonical (probe) order.
  const std::vector<FaultScenario>& universe() const { return universe_; }

  /// The filtered single-fault universe the pair space is built over
  /// (excludePrimitives already applied).
  const std::vector<fault::Fault>& singles() const { return singles_; }

  /// Runs the campaign to completion, resuming from the checkpoint file
  /// if one exists.  Returns early (summary().complete() == false) when
  /// the cancellation token trips or the deadline fires; progress up to
  /// the last finished batch is in the checkpoint, so a later run()
  /// continues from there.
  CampaignResult run();

 private:
  /// Per-single-fault oracle rows, computed once per run() and composed
  /// per pair scenario.
  struct OracleCache;

  void buildSingleUniverse();
  void buildPairUniverse();
  void buildTransientUniverse();

  /// Probes one scenario against every instrument.  `probes` counts
  /// every classification issued (two per instrument; a transient
  /// recovery retry does not count extra); run() cross-checks the total
  /// against the classification count after the sweep — a mismatch
  /// means probes were silently skipped or double-issued.
  FaultRecord probeScenario(const OracleCache& oracles,
                            const FaultScenario& s,
                            std::atomic<std::uint64_t>& probes) const;

  const rsn::Network* net_;
  CampaignConfig config_;
  /// Lowered once at construction and shared by every run(): pair and
  /// transient campaigns build their oracle engines from this arena
  /// instead of re-flattening per mode/stage (the obs counter
  /// `flat.flatten_calls` proves the hoist).
  std::shared_ptr<const rsn::FlatNetwork> flat_;
  std::vector<fault::Fault> singles_;
  std::vector<FaultScenario> universe_;
};

/// Two-row summary table (read / write probes) for CLI output.
TextTable summaryTable(const CampaignSummary& s);

/// Per-probe itemization of sim-vs-reference disagreements.
TextTable mismatchTable(const rsn::Network& net,
                        const std::vector<Mismatch>& items);

/// One-row robustness report (pair/transient campaigns) for CLI output.
TextTable robustnessTable(const RobustnessReport& r);

/// Per-scenario outcome table (one row each), the CSV export payload.
TextTable outcomeTable(const rsn::Network& net, const CampaignResult& result);

/// Machine-readable report: summary counters, per-scenario outcome
/// strings, itemized mismatches / pair interactions and (for pair and
/// transient campaigns) the robustness block.  Canonical (sorted keys,
/// no timestamps), so byte-equality of two reports proves campaign
/// determinism.
json::Value reportJson(const rsn::Network& net, const CampaignResult& result);

}  // namespace rrsn::campaign

#include "campaign/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>
#include <vector>

#include "rsn/netlist_io.hpp"
#include "support/hash.hpp"
#include "support/io.hpp"

namespace rrsn::campaign {

namespace {

using hash::fnvMix;
using hash::kFnvOffset;

std::string hex(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string bitsToString(const DynamicBitset& b) {
  std::string s(b.size(), '0');
  for (std::size_t i = 0; i < b.size(); ++i)
    if (b.test(i)) s[i] = '1';
  return s;
}

DynamicBitset bitsFromString(const std::string& s, std::size_t expect) {
  if (s.size() != expect)
    throw IoError("checkpoint bitset has wrong length");
  DynamicBitset b(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '1') {
      b.set(i);
    } else if (s[i] != '0') {
      throw IoError("checkpoint bitset has invalid character");
    }
  }
  return b;
}

}  // namespace

std::uint64_t campaignFingerprint(const rsn::Network& net,
                                  const CampaignConfig& config) {
  std::uint64_t h = kFnvOffset;
  fnvMix(h, rsn::netlistToString(net));
  fnvMix(h, static_cast<std::uint64_t>(config.mode));
  fnvMix(h, static_cast<std::uint64_t>(config.sample));
  fnvMix(h, std::bit_cast<std::uint64_t>(config.sampleFraction));
  fnvMix(h, config.seed);
  if (config.mode == CampaignMode::Transient) {
    fnvMix(h, static_cast<std::uint64_t>(config.transientRounds.size()));
    for (const std::uint32_t round : config.transientRounds)
      fnvMix(h, static_cast<std::uint64_t>(round));
  }
  fnvMix(h, static_cast<std::uint64_t>(config.retarget.maxRounds));
  fnvMix(h, static_cast<std::uint64_t>(config.retarget.allowReroute ? 1 : 0));
  fnvMix(h, static_cast<std::uint64_t>(config.retarget.maxReroutes));
  fnvMix(h, bitsToString(config.excludePrimitives));
  return h;
}

Status saveCheckpoint(const std::string& path, std::uint64_t fingerprint,
                      const CampaignResult& result) {
  json::Array records;
  for (std::size_t k = 0; k < result.records.size(); ++k) {
    const FaultRecord& rec = result.records[k];
    if (!rec.done) continue;
    json::Object o;
    o["index"] = json::Value(static_cast<std::uint64_t>(k));
    o["read"] = json::Value(rec.read);
    o["write"] = json::Value(rec.write);
    o["obs"] = json::Value(bitsToString(rec.structObservable));
    o["set"] = json::Value(bitsToString(rec.structSettable));
    o["eobs"] = json::Value(bitsToString(rec.expectObservable));
    o["eset"] = json::Value(bitsToString(rec.expectSettable));
    o["disagreements"] =
        json::Value(static_cast<std::uint64_t>(rec.oracleDisagreements));
    records.push_back(json::Value(std::move(o)));
  }
  json::Object root;
  root["version"] = json::Value(kCheckpointVersion);
  root["mode"] = json::Value(campaignModeName(result.mode));
  root["fingerprint"] = json::Value(hex(fingerprint));
  root["faults_total"] =
      json::Value(static_cast<std::uint64_t>(result.records.size()));
  root["instruments"] =
      json::Value(static_cast<std::uint64_t>(result.instruments));
  root["records"] = json::Value(std::move(records));

  const std::string text =
      json::serialize(json::Value(std::move(root)), 1) + '\n';
  // io::atomicWriteFile checks every write, fsyncs before the rename
  // and cleans up the temp file on failure, so a full disk or short
  // write can never commit a truncated checkpoint.
  Status st = io::atomicWriteFile(path, text);
  if (!st.ok()) {
    return Status::dataLoss("checkpoint save to " + path + " failed — " +
                            st.toString());
  }
  return Status{};
}

CheckpointLoad loadCheckpoint(const std::string& path,
                              std::uint64_t fingerprint,
                              CampaignResult& result) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {Status{}, 0};  // fresh start
  std::ostringstream text;
  text << in.rdbuf();
  if (in.bad())
    return {Status::dataLoss("cannot read checkpoint file: " + path), 0};

  json::Value doc;
  try {
    doc = json::parse(text.str());
  } catch (const Error& e) {
    return {Status::dataLoss("corrupt checkpoint file " + path + ": " +
                             e.what()),
            0};
  }
  // Decode everything into staged copies first and merge into `result`
  // only when the whole file checked out — a record that turns out torn
  // halfway through must not leave earlier records half-applied.
  std::vector<std::pair<std::size_t, FaultRecord>> staged;
  try {
    // Version-1 files (PR 2/PR 4) carry no version field at all; any
    // version other than ours degrades to a restart, never a throw.
    const std::uint64_t version =
        doc.get("version", json::Value(std::uint64_t{1})).asUnsigned();
    if (version != kCheckpointVersion)
      return {Status::failedPrecondition(
                  "checkpoint " + path + " has format version " +
                  std::to_string(version) + "; this engine reads version " +
                  std::to_string(kCheckpointVersion)),
              0};
    const std::string mode =
        doc.get("mode", json::Value("single")).asString();
    if (mode != campaignModeName(result.mode))
      return {Status::failedPrecondition(
                  "checkpoint " + path + " was written by a " + mode +
                  " campaign, not a " + campaignModeName(result.mode) +
                  " one"),
              0};
    if (doc.at("fingerprint").asString() != hex(fingerprint))
      return {Status::failedPrecondition(
                  "checkpoint " + path +
                  " was written for a different network or campaign "
                  "configuration"),
              0};
    if (doc.at("faults_total").asUnsigned() != result.records.size() ||
        doc.at("instruments").asUnsigned() != result.instruments)
      return {Status::failedPrecondition("checkpoint " + path +
                                         " has inconsistent dimensions"),
              0};

    for (const json::Value& v : doc.at("records").asArray()) {
      const std::uint64_t k = v.at("index").asUnsigned();
      if (k >= result.records.size())
        return {Status::dataLoss("checkpoint " + path +
                                 " has a record index out of range"),
                0};
      FaultRecord rec;
      rec.read = v.at("read").asString();
      rec.write = v.at("write").asString();
      if (rec.read.size() != result.instruments ||
          rec.write.size() != result.instruments)
        return {Status::dataLoss("checkpoint " + path +
                                 " has a record with wrong instrument count"),
                0};
      for (const char c : rec.read) outcomeFromChar(c);
      for (const char c : rec.write) outcomeFromChar(c);
      rec.structObservable =
          bitsFromString(v.at("obs").asString(), result.instruments);
      rec.structSettable =
          bitsFromString(v.at("set").asString(), result.instruments);
      rec.expectObservable =
          bitsFromString(v.at("eobs").asString(), result.instruments);
      rec.expectSettable =
          bitsFromString(v.at("eset").asString(), result.instruments);
      rec.oracleDisagreements =
          static_cast<std::size_t>(v.at("disagreements").asUnsigned());
      rec.done = true;
      staged.emplace_back(static_cast<std::size_t>(k), std::move(rec));
    }
  } catch (const Error& e) {
    return {Status::dataLoss("corrupt checkpoint file " + path + ": " +
                             e.what()),
            0};
  }
  for (auto& [k, rec] : staged) {
    // Decoded records carry no scenario identity: the fingerprint (and
    // version/mode checks above) guarantee index k names the same
    // scenario as this engine's universe, so re-attach it from there.
    rec.scenario = result.records[k].scenario;
    result.records[k] = std::move(rec);
  }
  return {Status{}, staged.size()};
}

}  // namespace rrsn::campaign

// A small generic directed-graph container.
//
// The RSN itself has a richer typed model (src/rsn); this module provides
// the plain graph view of Sec. III ("An RSN is modeled as a directed graph
// G := (V, E)") plus the algorithms the modeling section relies on:
// topological order, reachability, dominators and reconvergence analysis.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace rrsn::graph {

using VertexId = std::uint32_t;

/// Sentinel for "no vertex".
inline constexpr VertexId kNoVertex = static_cast<VertexId>(-1);

/// Adjacency-list directed graph with string-labelled vertices.
/// Vertices are identified by dense ids in insertion order.
class Digraph {
 public:
  /// Adds a vertex and returns its id.
  VertexId addVertex(std::string label = {});

  /// Adds the directed edge from -> to.  Parallel edges are allowed
  /// (an RSN mux may receive the same branch twice after reduction).
  void addEdge(VertexId from, VertexId to);

  std::size_t vertexCount() const { return out_.size(); }
  std::size_t edgeCount() const { return edgeCount_; }

  const std::string& label(VertexId v) const {
    RRSN_CHECK(v < out_.size(), "vertex id out of range");
    return labels_[v];
  }
  void setLabel(VertexId v, std::string label);

  const std::vector<VertexId>& successors(VertexId v) const {
    RRSN_CHECK(v < out_.size(), "vertex id out of range");
    return out_[v];
  }
  const std::vector<VertexId>& predecessors(VertexId v) const {
    RRSN_CHECK(v < in_.size(), "vertex id out of range");
    return in_[v];
  }

  std::size_t outDegree(VertexId v) const { return successors(v).size(); }
  std::size_t inDegree(VertexId v) const { return predecessors(v).size(); }

 private:
  std::vector<std::string> labels_;
  std::vector<std::vector<VertexId>> out_;
  std::vector<std::vector<VertexId>> in_;
  std::size_t edgeCount_ = 0;
};

/// Compressed-sparse-row snapshot of a Digraph's adjacency: the
/// neighbours of v are targets[offsets[v] .. offsets[v+1]).  A flat
/// layout the traversal kernels can walk without pointer chasing, and
/// whose rows align with any parallel per-edge annotation arrays
/// (parallel edges are preserved, in insertion order per vertex).
struct Csr {
  std::vector<std::uint32_t> offsets;  ///< vertexCount + 1 entries
  std::vector<VertexId> targets;

  std::size_t vertexCount() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  std::size_t edgeCount() const { return targets.size(); }

  std::uint32_t rowBegin(VertexId v) const { return offsets[v]; }
  std::uint32_t rowEnd(VertexId v) const { return offsets[v + 1]; }
  std::size_t degree(VertexId v) const { return rowEnd(v) - rowBegin(v); }
};

/// Lowers the adjacency lists into CSR form.  `reverse` emits the
/// transposed graph (row v lists the predecessors of v).
Csr buildCsr(const Digraph& g, bool reverse = false);

/// Vertices in a topological order.  Throws ValidationError if the graph
/// has a cycle (a structural scan path must be acyclic).
std::vector<VertexId> topologicalOrder(const Digraph& g);

/// True if the graph is acyclic.
bool isAcyclic(const Digraph& g);

/// Set-of-vertices reachable from `source` following edges forward
/// (including `source` itself), as a membership vector.
std::vector<bool> reachableFrom(const Digraph& g, VertexId source);

/// Vertices from which `sink` is reachable (including `sink`).
std::vector<bool> reachableTo(const Digraph& g, VertexId sink);

/// Immediate dominators w.r.t. `root` (Cooper–Harvey–Kennedy iterative
/// algorithm).  idom[root] == root; unreachable vertices get kNoVertex.
std::vector<VertexId> immediateDominators(const Digraph& g, VertexId root);

/// True if `dom` dominates `v` in the given idom tree.
bool dominates(const std::vector<VertexId>& idom, VertexId dom, VertexId v);

/// A reconvergent fan-out stem and its closing reconvergence gate
/// (Sec. III: two disjoint paths from stem s to gate d).
struct Reconvergence {
  VertexId stem = kNoVertex;   ///< fan-out vertex (out-degree >= 2)
  VertexId gate = kNoVertex;   ///< the closing reconvergence (a mux in RSNs)
};

/// Finds, for every fan-out stem, its closing reconvergence: the nearest
/// post-dominator of the stem among vertices reached by >= 2 of its
/// branches.  Requires an acyclic two-terminal graph.
std::vector<Reconvergence> findReconvergences(const Digraph& g, VertexId sink);

/// True if g is a two-terminal DAG: acyclic, exactly one source (= `source`,
/// in-degree 0), one sink (= `sink`, out-degree 0), and every vertex lies
/// on some source->sink path.
bool isTwoTerminalDag(const Digraph& g, VertexId source, VertexId sink);

/// Renders the graph in Graphviz DOT syntax.  `vertexAttrs` (optional)
/// returns extra attributes for a vertex, e.g. "shape=box,color=red".
std::string toDot(const Digraph& g, const std::string& graphName,
                  const std::function<std::string(VertexId)>& vertexAttrs = {});

}  // namespace rrsn::graph

#include "graph/digraph.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

namespace rrsn::graph {

VertexId Digraph::addVertex(std::string label) {
  const auto id = static_cast<VertexId>(out_.size());
  labels_.push_back(std::move(label));
  out_.emplace_back();
  in_.emplace_back();
  return id;
}

void Digraph::addEdge(VertexId from, VertexId to) {
  RRSN_CHECK(from < out_.size() && to < out_.size(),
             "edge endpoint out of range");
  out_[from].push_back(to);
  in_[to].push_back(from);
  ++edgeCount_;
}

void Digraph::setLabel(VertexId v, std::string label) {
  RRSN_CHECK(v < labels_.size(), "vertex id out of range");
  labels_[v] = std::move(label);
}

Csr buildCsr(const Digraph& g, bool reverse) {
  const std::size_t n = g.vertexCount();
  Csr csr;
  csr.offsets.resize(n + 1, 0);
  csr.targets.reserve(g.edgeCount());
  for (VertexId v = 0; v < n; ++v) {
    csr.offsets[v] = static_cast<std::uint32_t>(csr.targets.size());
    const auto& row = reverse ? g.predecessors(v) : g.successors(v);
    csr.targets.insert(csr.targets.end(), row.begin(), row.end());
  }
  csr.offsets[n] = static_cast<std::uint32_t>(csr.targets.size());
  return csr;
}

std::vector<VertexId> topologicalOrder(const Digraph& g) {
  std::vector<std::size_t> pending(g.vertexCount());
  std::vector<VertexId> order;
  order.reserve(g.vertexCount());
  std::queue<VertexId> ready;
  for (VertexId v = 0; v < g.vertexCount(); ++v) {
    pending[v] = g.inDegree(v);
    if (pending[v] == 0) ready.push(v);
  }
  while (!ready.empty()) {
    const VertexId v = ready.front();
    ready.pop();
    order.push_back(v);
    for (VertexId s : g.successors(v)) {
      if (--pending[s] == 0) ready.push(s);
    }
  }
  if (order.size() != g.vertexCount())
    throw ValidationError("graph contains a cycle; scan paths must be acyclic");
  return order;
}

bool isAcyclic(const Digraph& g) {
  try {
    (void)topologicalOrder(g);
    return true;
  } catch (const ValidationError&) {
    return false;
  }
}

namespace {

std::vector<bool> bfs(const Digraph& g, VertexId start, bool forward) {
  std::vector<bool> seen(g.vertexCount(), false);
  RRSN_CHECK(start < g.vertexCount(), "start vertex out of range");
  std::queue<VertexId> work;
  work.push(start);
  seen[start] = true;
  while (!work.empty()) {
    const VertexId v = work.front();
    work.pop();
    const auto& next = forward ? g.successors(v) : g.predecessors(v);
    for (VertexId n : next) {
      if (!seen[n]) {
        seen[n] = true;
        work.push(n);
      }
    }
  }
  return seen;
}

}  // namespace

std::vector<bool> reachableFrom(const Digraph& g, VertexId source) {
  return bfs(g, source, /*forward=*/true);
}

std::vector<bool> reachableTo(const Digraph& g, VertexId sink) {
  return bfs(g, sink, /*forward=*/false);
}

std::vector<VertexId> immediateDominators(const Digraph& g, VertexId root) {
  // Cooper–Harvey–Kennedy: iterate "idom[v] = intersect(preds)" over a
  // reverse-postorder until a fixed point.  On the DAGs we analyze this
  // converges in one or two sweeps.
  const std::size_t n = g.vertexCount();
  std::vector<VertexId> idom(n, kNoVertex);

  // Reverse postorder via iterative DFS.
  std::vector<VertexId> postorder;
  postorder.reserve(n);
  std::vector<int> state(n, 0);
  std::vector<std::pair<VertexId, std::size_t>> stack{{root, 0}};
  state[root] = 1;
  while (!stack.empty()) {
    auto& [v, idx] = stack.back();
    if (idx < g.successors(v).size()) {
      const VertexId s = g.successors(v)[idx++];
      if (state[s] == 0) {
        state[s] = 1;
        stack.emplace_back(s, 0);
      }
    } else {
      postorder.push_back(v);
      stack.pop_back();
    }
  }
  std::vector<std::size_t> rpoIndex(n, 0);
  std::vector<VertexId> rpo(postorder.rbegin(), postorder.rend());
  for (std::size_t i = 0; i < rpo.size(); ++i) rpoIndex[rpo[i]] = i;

  const auto intersect = [&](VertexId a, VertexId b) {
    while (a != b) {
      while (rpoIndex[a] > rpoIndex[b]) a = idom[a];
      while (rpoIndex[b] > rpoIndex[a]) b = idom[b];
    }
    return a;
  };

  idom[root] = root;
  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId v : rpo) {
      if (v == root) continue;
      VertexId newIdom = kNoVertex;
      for (VertexId p : g.predecessors(v)) {
        if (idom[p] == kNoVertex) continue;  // p not processed/unreachable
        newIdom = (newIdom == kNoVertex) ? p : intersect(p, newIdom);
      }
      if (newIdom != kNoVertex && idom[v] != newIdom) {
        idom[v] = newIdom;
        changed = true;
      }
    }
  }
  return idom;
}

bool dominates(const std::vector<VertexId>& idom, VertexId dom, VertexId v) {
  RRSN_CHECK(v < idom.size() && dom < idom.size(), "vertex id out of range");
  while (true) {
    if (v == dom) return true;
    if (idom[v] == kNoVertex || idom[v] == v) return v == dom;
    v = idom[v];
  }
}

std::vector<Reconvergence> findReconvergences(const Digraph& g, VertexId sink) {
  // The closing reconvergence of a fan-out stem is its immediate
  // post-dominator: post-dominators are dominators on the reversed graph.
  Digraph rev;
  for (VertexId v = 0; v < g.vertexCount(); ++v) rev.addVertex(g.label(v));
  for (VertexId v = 0; v < g.vertexCount(); ++v)
    for (VertexId s : g.successors(v)) rev.addEdge(s, v);
  const std::vector<VertexId> ipdom = immediateDominators(rev, sink);

  std::vector<Reconvergence> out;
  for (VertexId v = 0; v < g.vertexCount(); ++v) {
    if (g.outDegree(v) >= 2) {
      Reconvergence r;
      r.stem = v;
      r.gate = ipdom[v];
      out.push_back(r);
    }
  }
  return out;
}

bool isTwoTerminalDag(const Digraph& g, VertexId source, VertexId sink) {
  if (source >= g.vertexCount() || sink >= g.vertexCount()) return false;
  if (!isAcyclic(g)) return false;
  if (g.inDegree(source) != 0 || g.outDegree(sink) != 0) return false;
  const auto fromSrc = reachableFrom(g, source);
  const auto toSink = reachableTo(g, sink);
  for (VertexId v = 0; v < g.vertexCount(); ++v) {
    if (!fromSrc[v] || !toSink[v]) return false;
    if (v != source && g.inDegree(v) == 0) return false;
    if (v != sink && g.outDegree(v) == 0) return false;
  }
  return true;
}

std::string toDot(const Digraph& g, const std::string& graphName,
                  const std::function<std::string(VertexId)>& vertexAttrs) {
  const auto quote = [](const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
    return out;
  };
  std::ostringstream os;
  os << "digraph " << quote(graphName) << " {\n  rankdir=LR;\n";
  for (VertexId v = 0; v < g.vertexCount(); ++v) {
    os << "  n" << v << " [label=" << quote(g.label(v));
    if (vertexAttrs) {
      const std::string extra = vertexAttrs(v);
      if (!extra.empty()) os << ',' << extra;
    }
    os << "];\n";
  }
  for (VertexId v = 0; v < g.vertexCount(); ++v)
    for (VertexId s : g.successors(v)) os << "  n" << v << " -> n" << s << ";\n";
  os << "}\n";
  return os.str();
}

}  // namespace rrsn::graph

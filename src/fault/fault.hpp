// Permanent-fault model for RSN scan primitives (Sec. IV-B).
//
// Two fault classes cover every scan primitive:
//  * SegmentBreak — a defect in a scan segment breaks the integrity of
//    every scan path traversing it (modeled as removing the vertex);
//  * MuxStuck(v)  — a "stuck-at-id" defect makes a multiplexer select
//    input branch v permanently, independent of its address port.
// A SIB is a 1-bit segment plus a mux, so its faults are exactly the
// combination: the register can break (SegmentBreak) and the mux can be
// stuck-at-asserted / stuck-at-deasserted (MuxStuck on the content /
// bypass branch).
#pragma once

#include <string>
#include <vector>

#include "rsn/network.hpp"

namespace rrsn::fault {

enum class FaultKind : std::uint8_t { SegmentBreak, MuxStuck };

/// One permanent fault at one scan primitive.
struct Fault {
  FaultKind kind = FaultKind::SegmentBreak;
  std::uint32_t prim = rsn::kNone;  ///< SegmentId or MuxId
  std::uint32_t stuckBranch = 0;    ///< MuxStuck only: the selected branch

  static Fault segmentBreak(rsn::SegmentId seg) {
    return {FaultKind::SegmentBreak, seg, 0};
  }
  static Fault muxStuck(rsn::MuxId mux, std::uint32_t branch) {
    return {FaultKind::MuxStuck, mux, branch};
  }

  bool operator==(const Fault&) const = default;
};

/// Human-readable fault name, e.g. "break(seg_i2)" or "stuck(m0=1)".
std::string describe(const rsn::Network& net, const Fault& f);

/// The faulty primitive as a typed reference (Segment for breaks, Mux
/// for stucks) — the key for hardening masks and linear-id lookups.
rsn::PrimitiveRef refOf(const Fault& f);

/// Enumerates the complete single-fault universe of a network: one
/// SegmentBreak per segment and one MuxStuck per mux input branch.
class FaultUniverse {
 public:
  explicit FaultUniverse(const rsn::Network& net);

  const std::vector<Fault>& faults() const { return faults_; }
  std::size_t size() const { return faults_.size(); }

  /// All faults located at one primitive (1 for a segment, k for a
  /// k-input mux).
  std::vector<Fault> faultsAt(rsn::PrimitiveRef ref) const;

 private:
  const rsn::Network* net_;
  std::vector<Fault> faults_;
  std::vector<std::uint32_t> muxArity_;
};

}  // namespace rrsn::fault

#include "fault/fault.hpp"

namespace rrsn::fault {

std::string describe(const rsn::Network& net, const Fault& f) {
  if (f.kind == FaultKind::SegmentBreak)
    return "break(" + net.segment(f.prim).name + ")";
  return "stuck(" + net.mux(f.prim).name + "=" +
         std::to_string(f.stuckBranch) + ")";
}

rsn::PrimitiveRef refOf(const Fault& f) {
  return {f.kind == FaultKind::SegmentBreak ? rsn::PrimitiveRef::Kind::Segment
                                            : rsn::PrimitiveRef::Kind::Mux,
          f.prim};
}

FaultUniverse::FaultUniverse(const rsn::Network& net) : net_(&net) {
  muxArity_.assign(net.muxes().size(), 0);
  net.structure().preOrder([&](rsn::NodeId id) {
    const auto& n = net.structure().node(id);
    if (n.kind == rsn::NodeKind::MuxJoin)
      muxArity_[n.prim] = static_cast<std::uint32_t>(n.children.size());
  });
  for (rsn::SegmentId s = 0; s < net.segments().size(); ++s)
    faults_.push_back(Fault::segmentBreak(s));
  for (rsn::MuxId m = 0; m < net.muxes().size(); ++m)
    for (std::uint32_t b = 0; b < muxArity_[m]; ++b)
      faults_.push_back(Fault::muxStuck(m, b));
}

std::vector<Fault> FaultUniverse::faultsAt(rsn::PrimitiveRef ref) const {
  std::vector<Fault> out;
  if (ref.kind == rsn::PrimitiveRef::Kind::Segment) {
    out.push_back(Fault::segmentBreak(ref.index));
  } else {
    RRSN_CHECK(ref.index < muxArity_.size(), "mux index out of range");
    for (std::uint32_t b = 0; b < muxArity_[ref.index]; ++b)
      out.push_back(Fault::muxStuck(ref.index, b));
  }
  return out;
}

}  // namespace rrsn::fault

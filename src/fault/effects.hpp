// Fault-effect computation (Sec. IV-B): which instruments lose
// observability and/or settability under a given single fault.
//
// Two independent implementations are provided on purpose:
//  * lossUnderFaultTree  — follows the paper's decomposition-tree
//    argument (observability / settability trees): a segment break is
//    isolated inside the branch of its closest parental multiplexer where
//    it splits the branch into an unobservable upstream part and an
//    unsettable downstream part; a stuck mux disconnects all non-selected
//    branches entirely.
//  * lossUnderFaultGraph — a brute-force oracle on the flat graph view:
//    instrument i stays observable iff a path from its segment to the
//    scan-out avoids the defect, and settable iff a path from the scan-in
//    to its segment does.
// The test suite checks the two agree on every fault of every network.
#pragma once

#include "fault/fault.hpp"
#include "rsn/graph_view.hpp"
#include "sp/decomposition.hpp"
#include "support/bitset.hpp"

namespace rrsn::fault {

/// Per-instrument accessibility loss under one fault.
struct AccessibilityLoss {
  DynamicBitset unobservable;  ///< bit i: instrument i lost observability
  DynamicBitset unsettable;    ///< bit i: instrument i lost settability
};

/// Decomposition-tree implementation (fast path of the paper).
AccessibilityLoss lossUnderFaultTree(const sp::DecompositionTree& tree,
                                     const Fault& f);

/// Flat-graph oracle.  `gv` must be buildGraphView(net) for the same net.
AccessibilityLoss lossUnderFaultGraph(const rsn::Network& net,
                                      const rsn::GraphView& gv,
                                      const Fault& f);

/// Weighted damage of one fault under a specification (Eq. 1 restricted
/// to this fault): sum of do_i over unobservable + ds_i over unsettable.
std::uint64_t damageOfLoss(const rsn::CriticalitySpec& spec,
                           const AccessibilityLoss& loss);

/// Fast aggregate damage of one fault straight from the annotated tree,
/// without materializing instrument sets: O(tree depth) for a segment
/// break, O(#branches) for a stuck mux.  The tree must be annotate()d.
std::uint64_t damageUnderFaultTree(const sp::DecompositionTree& tree,
                                   const Fault& f);

}  // namespace rrsn::fault

#include "fault/effects.hpp"

#include <queue>

namespace rrsn::fault {

using rsn::InstrumentId;
using sp::DecompositionTree;
using sp::TreeId;
using sp::TreeKind;

namespace {

/// Marks every instrument inside the subtree rooted at `id`.
void collectInstruments(const DecompositionTree& tree, TreeId id,
                        DynamicBitset& out,
                        const rsn::Network& net) {
  std::vector<TreeId> stack{id};
  while (!stack.empty()) {
    const auto& n = tree.node(stack.back());
    stack.pop_back();
    if (n.kind == TreeKind::LeafSegment) {
      const InstrumentId inst = net.segment(n.prim).instrument;
      if (inst != rsn::kNone) out.set(inst);
    } else if (n.kind == TreeKind::Series || n.kind == TreeKind::Parallel) {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
}

}  // namespace

AccessibilityLoss lossUnderFaultTree(const DecompositionTree& tree,
                                     const Fault& f) {
  const rsn::Network& net = tree.network();
  AccessibilityLoss loss;
  loss.unobservable = DynamicBitset(net.instruments().size());
  loss.unsettable = DynamicBitset(net.instruments().size());

  if (f.kind == FaultKind::MuxStuck) {
    // Every non-selected branch is disconnected both ways (Fig. 4):
    // collect each branch's instruments once, then merge the set into
    // both directions with word-level unions.
    const auto& branches = tree.branchesOfMux(f.prim);
    RRSN_CHECK(f.stuckBranch < branches.size(), "stuck branch out of range");
    DynamicBitset branchInstruments(net.instruments().size());
    for (std::size_t b = 0; b < branches.size(); ++b) {
      if (b == f.stuckBranch) continue;
      branchInstruments.clearAll();
      collectInstruments(tree, branches[b], branchInstruments, net);
      loss.unobservable.orWith(branchInstruments);
      loss.unsettable.orWith(branchInstruments);
    }
    return loss;
  }

  // Segment break: the faulty segment itself loses both; inside the branch
  // of the closest parental multiplexer, everything on the scan-in side
  // (left in the in-order leaf sequence) loses observability and
  // everything on the scan-out side loses settability.
  const TreeId leaf = tree.leafOfSegment(f.prim);
  {
    const InstrumentId inst = net.segment(f.prim).instrument;
    if (inst != rsn::kNone) {
      loss.unobservable.set(inst);
      loss.unsettable.set(inst);
    }
  }
  TreeId cur = leaf;
  TreeId parent = tree.node(cur).parent;
  while (parent != sp::kNoTree && tree.node(parent).kind != TreeKind::Parallel) {
    const auto& p = tree.node(parent);
    if (p.kind == TreeKind::Series) {
      if (p.right == cur)
        collectInstruments(tree, p.left, loss.unobservable, net);
      else
        collectInstruments(tree, p.right, loss.unsettable, net);
    }
    cur = parent;
    parent = p.parent;
  }
  return loss;
}

namespace {

/// BFS over the graph view honoring the fault: a broken segment vertex is
/// impassable; a stuck mux only accepts its selected branch's exit.
/// `forward` false walks predecessor edges (for settability).
std::vector<bool> faultAwareReach(const rsn::Network& net,
                                  const rsn::GraphView& gv,
                                  const Fault& f, graph::VertexId start,
                                  bool forward, bool ignoreBreak) {
  const graph::Digraph& g = gv.graph;
  std::vector<bool> seen(g.vertexCount(), false);

  graph::VertexId broken = graph::kNoVertex;
  graph::VertexId stuckMux = graph::kNoVertex;
  graph::VertexId allowedExit = graph::kNoVertex;
  if (f.kind == FaultKind::SegmentBreak) {
    if (!ignoreBreak) broken = gv.segmentVertex[f.prim];
  } else {
    stuckMux = gv.muxVertex[f.prim];
    RRSN_CHECK(f.stuckBranch < gv.muxBranchExit[f.prim].size(),
               "stuck branch out of range");
    allowedExit = gv.muxBranchExit[f.prim][f.stuckBranch];
  }
  (void)net;

  const auto edgeAllowed = [&](graph::VertexId from, graph::VertexId to) {
    if (from == broken || to == broken) return false;
    if (to == stuckMux && from != allowedExit) return false;
    return true;
  };

  if (start == broken) return seen;  // the defect vertex itself is dead
  std::queue<graph::VertexId> work;
  seen[start] = true;
  work.push(start);
  while (!work.empty()) {
    const graph::VertexId v = work.front();
    work.pop();
    const auto& next = forward ? g.successors(v) : g.predecessors(v);
    for (graph::VertexId n : next) {
      const graph::VertexId from = forward ? v : n;
      const graph::VertexId to = forward ? n : v;
      if (!edgeAllowed(from, to)) continue;
      if (!seen[n]) {
        seen[n] = true;
        work.push(n);
      }
    }
  }
  return seen;
}

}  // namespace

AccessibilityLoss lossUnderFaultGraph(const rsn::Network& net,
                                      const rsn::GraphView& gv,
                                      const Fault& f) {
  AccessibilityLoss loss;
  loss.unobservable = DynamicBitset(net.instruments().size());
  loss.unsettable = DynamicBitset(net.instruments().size());

  // A primitive is accessible only while it lies on a complete sensitized
  // scan path (Sec. IV-B2), so each direction combines two reachabilities:
  //  * observable: some complete path reaches the segment from scan-in
  //    (data integrity on that prefix does not matter) AND the suffix to
  //    scan-out avoids the broken segment;
  //  * settable: the prefix from scan-in avoids the broken segment AND
  //    some suffix completes the path.
  // Stuck-mux constraints apply to every leg; only the break may be
  // ignored on the "other" leg.
  const auto reachesOutClean =
      faultAwareReach(net, gv, f, gv.scanOut, /*forward=*/false,
                      /*ignoreBreak=*/false);
  const auto reachedInClean =
      faultAwareReach(net, gv, f, gv.scanIn, /*forward=*/true,
                      /*ignoreBreak=*/false);
  const auto reachesOutAny =
      faultAwareReach(net, gv, f, gv.scanOut, /*forward=*/false,
                      /*ignoreBreak=*/true);
  const auto reachedInAny =
      faultAwareReach(net, gv, f, gv.scanIn, /*forward=*/true,
                      /*ignoreBreak=*/true);

  for (InstrumentId i = 0; i < net.instruments().size(); ++i) {
    const graph::VertexId segV =
        gv.segmentVertex[net.instrument(i).segment];
    const bool brokenSelf = f.kind == FaultKind::SegmentBreak &&
                            gv.segmentVertex[f.prim] == segV;
    if (brokenSelf || !(reachedInAny[segV] && reachesOutClean[segV]))
      loss.unobservable.set(i);
    if (brokenSelf || !(reachedInClean[segV] && reachesOutAny[segV]))
      loss.unsettable.set(i);
  }
  return loss;
}

std::uint64_t damageOfLoss(const rsn::CriticalitySpec& spec,
                           const AccessibilityLoss& loss) {
  std::uint64_t damage = 0;
  loss.unobservable.forEachSet([&](std::size_t i) {
    damage += spec.of(static_cast<InstrumentId>(i)).obs;
  });
  loss.unsettable.forEachSet([&](std::size_t i) {
    damage += spec.of(static_cast<InstrumentId>(i)).set;
  });
  return damage;
}

std::uint64_t damageUnderFaultTree(const DecompositionTree& tree,
                                   const Fault& f) {
  const rsn::Network& net = tree.network();
  if (f.kind == FaultKind::MuxStuck) {
    const auto& branches = tree.branchesOfMux(f.prim);
    RRSN_CHECK(f.stuckBranch < branches.size(), "stuck branch out of range");
    std::uint64_t damage = 0;
    for (std::size_t b = 0; b < branches.size(); ++b) {
      if (b == f.stuckBranch) continue;
      const auto& n = tree.node(branches[b]);
      damage += n.sumObs + n.sumSet;
    }
    return damage;
  }

  std::uint64_t damage = 0;
  const InstrumentId inst = net.segment(f.prim).instrument;
  if (inst != rsn::kNone) {
    const auto& leaf = tree.node(tree.leafOfSegment(f.prim));
    damage += leaf.sumObs + leaf.sumSet;
  }
  TreeId cur = tree.leafOfSegment(f.prim);
  TreeId parent = tree.node(cur).parent;
  while (parent != sp::kNoTree &&
         tree.node(parent).kind != TreeKind::Parallel) {
    const auto& p = tree.node(parent);
    if (p.kind == TreeKind::Series) {
      if (p.right == cur)
        damage += tree.node(p.left).sumObs;   // upstream: unobservable
      else
        damage += tree.node(p.right).sumSet;  // downstream: unsettable
    }
    cur = parent;
    parent = p.parent;
  }
  return damage;
}

}  // namespace rrsn::fault

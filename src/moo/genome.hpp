// Sparse binary genome.
//
// Good hardening solutions set only a small fraction of the up-to-670k
// decision bits, so genomes are stored as sorted index vectors; one-point
// crossover and per-bit mutation then run in O(ones) instead of O(bits).
#pragma once

#include <cstdint>
#include <vector>

#include "moo/problem.hpp"
#include "support/rng.hpp"

namespace rrsn::moo {

/// A fixed-universe binary string stored as the sorted set of one-bits.
class Genome {
 public:
  Genome() = default;

  /// Empty genome (all zero) over `bits` positions.
  explicit Genome(std::size_t bits) : bits_(bits) {}

  /// Genome with the given one-positions (must be < bits; duplicates and
  /// unsorted input are normalized).
  Genome(std::size_t bits, std::vector<std::uint32_t> ones);

  /// Random genome: each bit set independently with probability density.
  static Genome random(std::size_t bits, double density, Rng& rng);

  std::size_t bits() const { return bits_; }
  std::size_t ones() const { return ones_.size(); }
  const std::vector<std::uint32_t>& indices() const { return ones_; }

  bool test(std::uint32_t idx) const;

  /// Flips one bit in place.
  void flip(std::uint32_t idx);

  /// One-point crossover (Sec. V step 6): bits [0, point) from `a`,
  /// bits [point, n) from `b`.
  static Genome crossover(const Genome& a, const Genome& b, std::size_t point);

  /// Independent per-bit mutation with probability `pBit`: the number of
  /// flips is drawn binomially, positions uniformly without replacement.
  void mutatePerBit(double pBit, Rng& rng);

  bool operator==(const Genome&) const = default;

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint32_t> ones_;
};

/// Exact objective evaluation in O(ones).
Objectives evaluate(const LinearBiProblem& problem, const Genome& g,
                    std::uint64_t damageTotal);

}  // namespace rrsn::moo

// Hybrid binary genome.
//
// Good hardening solutions set only a small fraction of the up-to-670k
// decision bits, but the Pareto archive also carries the expensive end
// of the front — the all-ones anchor and its crossover lineage at 40%+
// density.  A single representation loses either way, so the genome is
// adaptive:
//
//  * sparse — sorted index vector; crossover and mutation in O(ones);
//  * dense  — 64-bit-word storage (DynamicBitset); crossover is a
//    word-level splice in O(bits/64) and a mutation flip is O(1),
//    independent of how many bits are set.
//
// A genome converts automatically when its density crosses 1/8 upward
// (sparse -> dense) or 1/16 downward (dense -> sparse); the hysteresis
// band keeps mutation from thrashing between representations.  All
// observable behaviour (test/flip/crossover/ == /evaluate) is identical
// in both representations — only the complexity changes.
//
// Because both objectives are linear in the decision bits (problem.hpp),
// each genome can lazily cache a WeightIndex of weighted prefix sums
// over its one-bits.  A one-point crossover child's objectives then come
// from two prefix lookups — O(log ones) sparse, O(1) + one partial word
// dense — instead of a full O(ones) re-scan, and a mutation updates the
// objectives by +-weight deltas in O(flips).  The cache is dropped on
// any mutation and shared (not deep-copied) on genome copy.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "moo/problem.hpp"
#include "support/bitset.hpp"
#include "support/rng.hpp"

namespace rrsn::moo {

class WeightIndex;

/// A fixed-universe binary string with adaptive sparse/dense storage.
class Genome {
 public:
  enum class Rep : std::uint8_t { Sparse, Dense };

  /// Representation thresholds (ones per bit): a genome goes dense at
  /// density >= 1/kDenseBitsPerOne and back to sparse below
  /// 1/kSparseBitsPerOne.
  static constexpr std::size_t kDenseBitsPerOne = 8;
  static constexpr std::size_t kSparseBitsPerOne = 16;

  Genome() = default;

  /// Empty genome (all zero) over `bits` positions.
  explicit Genome(std::size_t bits) : bits_(bits) {}

  /// Genome with the given one-positions (must be < bits; duplicates and
  /// unsorted input are normalized).
  Genome(std::size_t bits, std::vector<std::uint32_t> ones);

  /// All-ones genome, built directly in the dense representation — no
  /// index vector of every position is ever materialized.
  static Genome allOnes(std::size_t bits);

  /// Random genome: each bit set independently with probability density.
  /// Draws are identical for both representations; dense samples go
  /// straight into the word storage (Rng::sampleIndicesInto).
  static Genome random(std::size_t bits, double density, Rng& rng);

  std::size_t bits() const { return bits_; }
  std::size_t ones() const { return count_; }
  Rep rep() const { return rep_; }

  bool test(std::uint32_t idx) const;

  /// Flips one bit in place (drops any cached WeightIndex).
  void flip(std::uint32_t idx);

  /// Sorted indices of all set bits (materialized; O(ones)).
  std::vector<std::uint32_t> indices() const;

  /// Invokes fn(index) for every set bit, ascending.
  template <typename Fn>
  void forEachOne(Fn&& fn) const {
    if (rep_ == Rep::Dense) {
      dense_.forEachSet(
          [&](std::size_t i) { fn(static_cast<std::uint32_t>(i)); });
    } else {
      for (std::uint32_t i : sparse_) fn(i);
    }
  }

  /// Invokes fn(index) for every set bit in [from, to), ascending.
  template <typename Fn>
  void forEachOneInRange(std::size_t from, std::size_t to, Fn&& fn) const {
    if (rep_ == Rep::Dense) {
      dense_.forEachSetInRange(
          from, to, [&](std::size_t i) { fn(static_cast<std::uint32_t>(i)); });
    } else {
      auto it = std::lower_bound(sparse_.begin(), sparse_.end(),
                                 static_cast<std::uint32_t>(from));
      for (; it != sparse_.end() && *it < to; ++it) fn(*it);
    }
  }

  /// Number of set bits with index < point.  O(log ones) sparse,
  /// O(point/64) dense; the WeightIndex answers the same query in O(1).
  std::size_t countBelow(std::size_t point) const;

  /// One-point crossover (Sec. V step 6): bits [0, point) from `a`,
  /// bits [point, n) from `b`.  The child representation is chosen from
  /// its exact ones count; a dense x dense splice is pure word copies.
  static Genome crossover(const Genome& a, const Genome& b, std::size_t point);

  /// Crossover with the two half counts already known (from the parents'
  /// WeightIndex prefix sums) — skips the rank scans.
  static Genome crossoverWithCounts(const Genome& a, const Genome& b,
                                    std::size_t point, std::size_t onesPrefixA,
                                    std::size_t onesSuffixB);

  /// Independent per-bit mutation with probability `pBit`: the number of
  /// flips is drawn binomially, positions uniformly without replacement.
  void mutatePerBit(double pBit, Rng& rng);

  /// Applies strictly ascending, distinct flip positions; invokes
  /// fn(idx, nowSet) per flip in order.  O(flips) dense, O(ones + flips)
  /// sparse.  Drops any cached WeightIndex (no-op on an empty list).
  template <typename Fn>
  void applyFlips(const std::vector<std::uint32_t>& flips, Fn&& fn) {
    if (flips.empty()) return;
    cache_.reset();
    if (rep_ == Rep::Dense) {
      for (std::uint32_t idx : flips) {
        RRSN_CHECK(idx < bits_, "flip position out of range");
        const bool nowSet = dense_.flip(idx);
        count_ = nowSet ? count_ + 1 : count_ - 1;
        fn(idx, nowSet);
      }
    } else {
      std::vector<std::uint32_t> merged;
      merged.reserve(sparse_.size() + flips.size());
      auto it = sparse_.begin();
      std::uint32_t prev = 0;
      bool first = true;
      for (std::uint32_t p : flips) {
        RRSN_CHECK(p < bits_, "flip position out of range");
        RRSN_CHECK(first || p > prev, "flip positions must be ascending");
        first = false;
        prev = p;
        while (it != sparse_.end() && *it < p) merged.push_back(*it++);
        if (it != sparse_.end() && *it == p) {
          ++it;  // was set -> cleared
          fn(p, false);
        } else {
          merged.push_back(p);  // was clear -> set
          fn(p, true);
        }
      }
      merged.insert(merged.end(), it, sparse_.end());
      sparse_ = std::move(merged);
      count_ = sparse_.size();
    }
    normalizeRep();
  }

  void applyFlips(const std::vector<std::uint32_t>& flips) {
    applyFlips(flips, [](std::uint32_t, bool) {});
  }

  /// The weighted prefix index over this genome's one-bits, built
  /// lazily and cached until the next mutation.  Copies of a genome
  /// share the cache.  NOT safe to call concurrently on the same object
  /// — pre-build indexes before fanning out (see prepareParents).
  const WeightIndex& weightIndex(const LinearBiProblem& problem) const;
  bool hasWeightIndex() const { return cache_ != nullptr; }

  /// Logical equality: same universe and same set of one-bits, whatever
  /// the representations.
  bool operator==(const Genome& other) const;

 private:
  friend class WeightIndex;

  /// Converts across the density thresholds (with hysteresis).
  void normalizeRep();
  void toDense();
  void toSparse();

  std::size_t bits_ = 0;
  std::size_t count_ = 0;
  Rep rep_ = Rep::Sparse;
  std::vector<std::uint32_t> sparse_;  ///< sorted one-positions (sparse)
  DynamicBitset dense_;                ///< word storage (dense)
  mutable std::shared_ptr<const WeightIndex> cache_;
};

/// Weighted prefix sums of (cost, gain, popcount) over a genome's
/// one-bits.  For a sparse genome the arrays are indexed by rank; for a
/// dense genome by word, with the partial word resolved by a <=63-bit
/// gather.  Enables O(log ones) one-point crossover objectives.
class WeightIndex {
 public:
  /// Sums over the genome's set bits with index < some point.
  struct Prefix {
    std::uint64_t cost = 0;
    std::uint64_t gain = 0;
    std::size_t ones = 0;
  };

  WeightIndex(const LinearBiProblem& problem, const Genome& g);

  /// Prefix sums over set bits with index < point.  `g` must hold the
  /// same bit content the index was built from (a copy is fine).
  Prefix below(const Genome& g, std::size_t point) const;

  const Prefix& total() const { return total_; }

 private:
  bool dense_;
  const std::uint64_t* cost_;  ///< problem weight arrays (non-owning)
  const std::uint64_t* gain_;
  std::vector<std::uint64_t> prefixCost_;
  std::vector<std::uint64_t> prefixGain_;
  std::vector<std::uint32_t> prefixOnes_;  ///< dense only (per-word rank)
  Prefix total_;
};

/// Exact objective evaluation in O(ones).
Objectives evaluate(const LinearBiProblem& problem, const Genome& g,
                    std::uint64_t damageTotal);

}  // namespace rrsn::moo

// The bi-objective pseudo-boolean problem class the selective-hardening
// task belongs to (Sec. V, Eq. 2-3).
//
// Under the single-fault assumption the total damage separates per
// primitive: hardening primitive j avoids its faults entirely, so
//
//   damage(x) = sum_j (1 - x_j) * d_j = damageTotal - sum_{j: x_j=1} d_j
//   cost(x)   = sum_j x_j * c_j
//
// Both objectives are linear in the decision bits, which the optimizer
// exploits for O(|ones|) evaluation.  The EA itself (SPEA-2 / NSGA-II)
// does not rely on linearity and treats candidates as opaque bit vectors,
// exactly like the paper's Opt4J setup.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace rrsn::moo {

/// Objective vector; both components are minimized.
struct Objectives {
  std::uint64_t cost = 0;
  std::uint64_t damage = 0;

  bool operator==(const Objectives&) const = default;
};

/// Weak Pareto dominance: a is no worse in both and strictly better in
/// at least one objective.
inline bool dominates(const Objectives& a, const Objectives& b) {
  return a.cost <= b.cost && a.damage <= b.damage &&
         (a.cost < b.cost || a.damage < b.damage);
}

/// A linear bi-objective minimization instance.
struct LinearBiProblem {
  std::vector<std::uint64_t> cost;  ///< c_j: hardening cost of primitive j
  std::vector<std::uint64_t> gain;  ///< d_j: damage avoided by hardening j

  std::size_t size() const { return cost.size(); }

  /// sum_j d_j — the damage when nothing is hardened.
  std::uint64_t damageTotal() const {
    std::uint64_t t = 0;
    for (std::uint64_t g : gain) t += g;
    return t;
  }

  /// sum_j c_j — the cost when everything is hardened.
  std::uint64_t costTotal() const {
    std::uint64_t t = 0;
    for (std::uint64_t c : cost) t += c;
    return t;
  }

  void checkConsistent() const {
    RRSN_CHECK(cost.size() == gain.size(),
               "cost and gain vectors must have equal length");
  }
};

}  // namespace rrsn::moo

// Shared scaffolding of the evolutionary optimizers (SPEA-2, NSGA-II):
// option block, population initialization and variation operators.
//
// Variation is split into two halves so the mating loop can fan out on
// the thread pool without losing reproducibility:
//
//  * drawVariationPlan — consumes ALL randomness for one offspring
//    (tournament indices, crossover coin and point, mutation positions)
//    on the calling thread, in exactly the order of the historical
//    serial loop;
//  * applyVariationPlan — materializes one plan into an offspring.
//    Deterministic and side-effect-free given the plan, so plans can be
//    applied concurrently in any order with results bit-identical at
//    any RRSN_THREADS — including byte-identical Pareto fronts against
//    the old fully-serial loop at a fixed seed.
//
// applyVariationPlan also never re-scans the child: a crossover child's
// objectives come from the parents' WeightIndex prefix sums (two
// O(log ones) lookups), and each mutation flip adjusts them by the
// flipped bit's +-(cost, gain) in O(1).  Debug builds cross-check the
// incremental objectives against a full evaluate() of every offspring.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "moo/pareto.hpp"
#include "obs/obs.hpp"
#include "support/parallel.hpp"

namespace rrsn::moo {

/// Options common to both EAs; the defaults are the paper's Sec. VI
/// parameters (population is chosen per benchmark: 300 when the network
/// has more than 100 muxes, 100 otherwise).
struct EvolutionOptions {
  std::size_t populationSize = 100;
  std::size_t archiveSize = 0;   ///< 0: same as populationSize (SPEA-2 only)
  std::size_t generations = 300;
  double crossoverProb = 0.95;      ///< standard one-point crossover
  double mutationProbPerBit = 0.01; ///< independent bit mutation
  /// Initial genomes draw their one-density as u^2 with u ~ U[0, 1) —
  /// the whole density range is covered (both Pareto-front ends need
  /// seeds) with a bias toward the sparse region where the interesting
  /// trade-offs live.  Individuals 0 and 1 start all-zero / all-one,
  /// anchoring both Pareto endpoints from generation 0.
  double maxInitDensity = 1.0;
  /// Absolute cap on the expected ones of an initial genome, protecting
  /// memory on the ~10^6-bit instances.  0 disables the cap.
  std::size_t maxInitOnes = 250'000;
  std::uint64_t seed = 1;
  /// Extra genomes injected into the initial population (after the two
  /// endpoint anchors), e.g. greedy-ratio prefixes.  The paper only says
  /// the initial genes are "a diversified set"; on instances with
  /// hundreds of thousands of bits a purely random population cannot
  /// reach the sparse knee within the published generation budgets, so
  /// the Table-I harness seeds greedy prefixes here and lets the EA
  /// refine them.  Leave empty for a fully random start.
  std::vector<Genome> seedGenomes;
};

/// Progress callback: (generation index, current nondominated archive).
using ProgressFn =
    std::function<void(std::size_t, const std::vector<Individual>&)>;

namespace detail {

/// Diversified initial population (Sec. V step 2).
std::vector<Individual> initialPopulation(const LinearBiProblem& problem,
                                          std::uint64_t damageTotal,
                                          const EvolutionOptions& options,
                                          Rng& rng);

/// The pre-drawn recipe for one offspring: parent indices into the
/// mating pool, the crossover decision, and the sorted distinct bit
/// positions to flip afterwards.
struct VariationPlan {
  std::size_t parentA = 0;
  std::size_t parentB = 0;
  bool crossover = false;
  std::size_t point = 0;               ///< meaningful iff crossover
  std::vector<std::uint32_t> flips;    ///< ascending distinct positions
};

/// Draws one plan.  `tournament` returns an index into the mating pool
/// and may itself consume randomness (binary tournament draws two).
/// The draw order replays the replaced serial call site byte for byte:
/// parent B's tournament ran first there (the offspring expression
/// evaluated its arguments right to left), then parent A's, then the
/// crossover coin, the cut point, the binomial flip count and the flip
/// positions.  Keep this order — it is what makes new runs byte-
/// identical to the committed baseline fronts at a fixed seed.
template <typename TournamentFn>
VariationPlan drawVariationPlan(std::size_t bits,
                                const EvolutionOptions& options,
                                TournamentFn&& tournament, Rng& rng) {
  VariationPlan plan;
  plan.parentB = tournament();
  plan.parentA = tournament();
  plan.crossover = rng.chance(options.crossoverProb);
  if (plan.crossover)
    plan.point = bits == 0 ? 0 : static_cast<std::size_t>(rng.below(bits + 1));
  if (bits > 0 && options.mutationProbPerBit > 0.0) {
    const std::uint64_t draw =
        rng.binomial(bits, std::min(options.mutationProbPerBit, 1.0));
    if (draw > 0) {
      const auto sampled =
          rng.sampleIndices(bits, std::min<std::size_t>(draw, bits));
      plan.flips.assign(sampled.begin(), sampled.end());
    }
  }
  return plan;
}

/// Builds the WeightIndex of every distinct parent referenced by a
/// crossover plan, fanning the O(ones) builds out on the pool.  Must run
/// before applyVariationPlan calls are issued concurrently: the lazy
/// weightIndex() cache is not thread-safe per genome, and two plans may
/// share a parent.
void prepareParents(const LinearBiProblem& problem,
                    const std::vector<Individual>& pool,
                    const std::vector<VariationPlan>& plans);

/// Materializes one plan: crossover (or clone of parent A), mutation,
/// objectives — all incremental, no full re-evaluation.  Thread-safe for
/// concurrent calls over a shared pool once prepareParents ran.
///
/// `verifyObjectives` requests a full evaluate() cross-check of the
/// incremental objectives *in release builds too* — the EAs sample every
/// 64th offspring (deterministic by index, consuming no randomness), so
/// a drifting incremental update is caught within one generation at
/// ~1.6 % of the O(ones) re-scan cost.  A mismatch throws
/// obs::InvariantError.  Debug builds still verify every offspring.
Individual applyVariationPlan(const LinearBiProblem& problem,
                              std::uint64_t damageTotal,
                              const std::vector<Individual>& pool,
                              const VariationPlan& plan,
                              bool verifyObjectives = false);

/// The full mating step both EAs share: draws `count` plans serially
/// (preserving the historical randomness order), pre-builds the parent
/// weight indexes, then materializes all offspring on the thread pool.
template <typename TournamentFn>
std::vector<Individual> makeOffspringBatch(const LinearBiProblem& problem,
                                           std::uint64_t damageTotal,
                                           const std::vector<Individual>& pool,
                                           std::size_t count,
                                           const EvolutionOptions& options,
                                           TournamentFn&& tournament,
                                           Rng& rng) {
  const std::size_t bits = problem.size();
  static const obs::MetricId kOffspring = obs::counter("moo.offspring");
  std::vector<VariationPlan> plans;
  plans.reserve(count);
  {
    RRSN_OBS_SPAN("moo.plan");
    for (std::size_t i = 0; i < count; ++i)
      plans.push_back(drawVariationPlan(bits, options, tournament, rng));
  }
  {
    RRSN_OBS_SPAN("moo.prepare_parents");
    prepareParents(problem, pool, plans);
  }
  std::vector<Individual> offspring(count);
  {
    RRSN_OBS_SPAN("moo.materialize");
    parallelFor(
        count,
        [&](std::size_t i) {
          // Every 64th offspring is re-evaluated from scratch as an
          // always-on oracle for the incremental objective bookkeeping;
          // the index-based sample keeps the check deterministic and
          // consumes no randomness.
          offspring[i] = applyVariationPlan(problem, damageTotal, pool,
                                            plans[i], (i % 64) == 0);
        },
        /*grain=*/1);
  }
  obs::count(kOffspring, count);
  return offspring;
}

}  // namespace detail
}  // namespace rrsn::moo

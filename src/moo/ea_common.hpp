// Shared scaffolding of the evolutionary optimizers (SPEA-2, NSGA-II):
// option block, population initialization and variation operators.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "moo/pareto.hpp"

namespace rrsn::moo {

/// Options common to both EAs; the defaults are the paper's Sec. VI
/// parameters (population is chosen per benchmark: 300 when the network
/// has more than 100 muxes, 100 otherwise).
struct EvolutionOptions {
  std::size_t populationSize = 100;
  std::size_t archiveSize = 0;   ///< 0: same as populationSize (SPEA-2 only)
  std::size_t generations = 300;
  double crossoverProb = 0.95;      ///< standard one-point crossover
  double mutationProbPerBit = 0.01; ///< independent bit mutation
  /// Initial genomes draw their one-density as u^2 with u ~ U[0, 1) —
  /// the whole density range is covered (both Pareto-front ends need
  /// seeds) with a bias toward the sparse region where the interesting
  /// trade-offs live.  Individuals 0 and 1 start all-zero / all-one,
  /// anchoring both Pareto endpoints from generation 0.
  double maxInitDensity = 1.0;
  /// Absolute cap on the expected ones of an initial genome, protecting
  /// memory on the ~10^6-bit instances.  0 disables the cap.
  std::size_t maxInitOnes = 250'000;
  std::uint64_t seed = 1;
  /// Extra genomes injected into the initial population (after the two
  /// endpoint anchors), e.g. greedy-ratio prefixes.  The paper only says
  /// the initial genes are "a diversified set"; on instances with
  /// hundreds of thousands of bits a purely random population cannot
  /// reach the sparse knee within the published generation budgets, so
  /// the Table-I harness seeds greedy prefixes here and lets the EA
  /// refine them.  Leave empty for a fully random start.
  std::vector<Genome> seedGenomes;
};

/// Progress callback: (generation index, current nondominated archive).
using ProgressFn =
    std::function<void(std::size_t, const std::vector<Individual>&)>;

namespace detail {

/// Diversified initial population (Sec. V step 2).
std::vector<Individual> initialPopulation(const LinearBiProblem& problem,
                                          std::uint64_t damageTotal,
                                          const EvolutionOptions& options,
                                          Rng& rng);

/// One offspring from two parents: one-point crossover with probability
/// crossoverProb (otherwise clone of `a`), then per-bit mutation.
Individual makeOffspring(const LinearBiProblem& problem,
                         std::uint64_t damageTotal, const Individual& a,
                         const Individual& b, const EvolutionOptions& options,
                         Rng& rng);

}  // namespace detail
}  // namespace rrsn::moo

// SPEA-2 — Strength Pareto Evolutionary Algorithm 2.
//
// Faithful C++ implementation of Zitzler, Laumanns, Thiele, TR-103 (2001),
// the algorithm the paper runs through the Opt4J framework (Sec. V/VI):
//   * strength S(i)     = number of individuals i dominates in P+A;
//   * raw fitness R(i)  = sum of strengths of i's dominators;
//   * density D(i)      = 1 / (sigma_k + 2), sigma_k the distance to the
//     k-th nearest neighbor in normalized objective space, k = sqrt(|P+A|);
//   * fitness F = R + D (minimized);
//   * environmental selection keeps all nondominated individuals, fills
//     with the best dominated ones, or truncates by iterated removal of
//     the individual with the smallest nearest-neighbor distance;
//   * mating: binary tournament on F over the archive, one-point
//     crossover, independent bit mutation.
#pragma once

#include "moo/ea_common.hpp"

namespace rrsn::moo {

/// Summary of one optimizer run.
struct RunStats {
  std::size_t generations = 0;
  std::size_t evaluations = 0;
};

/// Result: the final archive as a clean Pareto archive + run statistics.
struct RunResult {
  ParetoArchive archive;
  RunStats stats;
};

/// Runs SPEA-2 on a linear bi-objective problem.
RunResult runSpea2(const LinearBiProblem& problem,
                   const EvolutionOptions& options,
                   const ProgressFn& progress = {});

}  // namespace rrsn::moo

// NSGA-II — fast elitist non-dominated sorting GA (Deb et al., 2002).
//
// The paper cites NSGA-II as the standard alternative to SPEA-2 [15]; we
// ship it as a baseline so the EA-ablation bench can compare front
// quality under identical variation operators and budgets.
#pragma once

#include "moo/ea_common.hpp"
#include "moo/spea2.hpp"  // RunResult / RunStats

namespace rrsn::moo {

/// Runs NSGA-II on a linear bi-objective problem.
RunResult runNsga2(const LinearBiProblem& problem,
                   const EvolutionOptions& options,
                   const ProgressFn& progress = {});

}  // namespace rrsn::moo

// Pareto archive and front utilities.
#pragma once

#include <optional>
#include <vector>

#include "moo/genome.hpp"
#include "moo/problem.hpp"

namespace rrsn::moo {

/// One evaluated candidate.
struct Individual {
  Genome genome;
  Objectives obj;

  bool operator==(const Individual&) const = default;
};

/// Archive of mutually nondominated individuals, kept sorted by
/// ascending cost (hence descending damage).
class ParetoArchive {
 public:
  /// Inserts if not dominated; evicts members the newcomer dominates.
  /// Returns true if the individual was added.
  bool add(Individual ind);

  const std::vector<Individual>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  /// The member with the lowest cost among those with damage <= bound
  /// (the paper's "minimize cost, damage <= 10%" solution).
  std::optional<Individual> minCostWithDamageAtMost(std::uint64_t bound) const;

  /// The member with the lowest damage among those with cost <= bound
  /// (the paper's "minimize damage, cost <= 10%" solution).
  std::optional<Individual> minDamageWithCostAtMost(std::uint64_t bound) const;

  /// Objective vectors of the front, sorted by ascending cost.
  std::vector<Objectives> front() const;

 private:
  std::vector<Individual> members_;
};

/// Removes dominated and duplicate points; result sorted by ascending
/// cost.  Pure function used by the metrics below.
std::vector<Objectives> nondominatedFront(std::vector<Objectives> points);

/// 2-D hypervolume (area dominated by `front` up to `ref`); points not
/// strictly below the reference point contribute nothing.  `front` need
/// not be sorted or minimal.
double hypervolume2D(const std::vector<Objectives>& front,
                     const Objectives& ref);

/// Additive epsilon indicator eps(A, B): the smallest eps such that every
/// point of B is weakly dominated by some point of A shifted by +eps in
/// both objectives.  0 when A covers B; larger means A is worse.
double additiveEpsilon(const std::vector<Objectives>& a,
                       const std::vector<Objectives>& b);

}  // namespace rrsn::moo

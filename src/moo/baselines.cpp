#include "moo/baselines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <optional>
#include <numeric>

namespace rrsn::moo {

RunResult randomSearch(const LinearBiProblem& problem,
                       std::size_t evaluations, std::uint64_t seed) {
  problem.checkConsistent();
  Rng rng(seed);
  const std::uint64_t damageTotal = problem.damageTotal();
  const std::size_t bits = problem.size();
  RunResult result;
  for (std::size_t i = 0; i < evaluations; ++i) {
    Genome g(bits);
    if (i != 0 && bits > 0) {
      const double lo = 1.0 / static_cast<double>(bits);
      const double density = std::exp(rng.uniform(std::log(lo), 0.0));
      g = Genome::random(bits, density, rng);
    }
    Individual ind;
    ind.obj = evaluate(problem, g, damageTotal);
    ind.genome = std::move(g);
    result.archive.add(std::move(ind));
    ++result.stats.evaluations;
  }
  return result;
}

namespace {

/// Primitive order of the greedy sweep: decreasing gain/cost ratio;
/// zero-cost positive-gain items first, zero-gain items last.
std::vector<std::uint32_t> greedyOrder(const LinearBiProblem& problem) {
  std::vector<std::uint32_t> order(problem.size());
  std::iota(order.begin(), order.end(), 0U);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    const auto ratio = [&](std::uint32_t i) {
      if (problem.gain[i] == 0) return -1.0;
      if (problem.cost[i] == 0) return std::numeric_limits<double>::infinity();
      return static_cast<double>(problem.gain[i]) /
             static_cast<double>(problem.cost[i]);
    };
    const double ra = ratio(a), rb = ratio(b);
    if (ra != rb) return ra > rb;
    return a < b;
  });
  return order;
}

}  // namespace

RunResult greedyFront(const LinearBiProblem& problem, std::size_t maxPoints) {
  problem.checkConsistent();
  const std::size_t n = problem.size();
  const std::uint64_t damageTotal = problem.damageTotal();
  const std::vector<std::uint32_t> order = greedyOrder(problem);

  // Number of prefixes that still improve damage.
  std::size_t useful = 0;
  while (useful < n && problem.gain[order[useful]] > 0) ++useful;

  // Keep every prefix when small, otherwise ~maxPoints evenly spaced
  // ones (always including the empty and the full useful prefix).  Each
  // stored prefix materializes a genome of up to n indices, so the point
  // budget shrinks on very large instances to bound memory at ~200 MB.
  if (n > 0) {
    maxPoints = std::min(maxPoints,
                         std::max<std::size_t>(64, 100'000'000 / n));
  }
  const std::size_t stride =
      useful <= maxPoints ? 1 : (useful + maxPoints - 1) / maxPoints;

  RunResult result;
  std::vector<Individual> members;
  std::vector<std::uint32_t> prefix;
  prefix.reserve(useful);
  Objectives obj{0, damageTotal};
  members.push_back({Genome(n), obj});
  for (std::size_t k = 0; k < useful; ++k) {
    const std::uint32_t idx = order[k];
    prefix.push_back(idx);
    obj.cost += problem.cost[idx];
    obj.damage -= problem.gain[idx];
    if ((k + 1) % stride == 0 || k + 1 == useful)
      members.push_back({Genome(n, prefix), obj});
  }
  result.stats.evaluations = useful + 1;
  // Prefix objectives are strictly improving in damage; costs can repeat
  // only through zero-cost items, where the later (better) prefix wins.
  // A single nondominated cleanup keeps the archive invariant intact.
  std::vector<Individual> clean;
  for (Individual& m : members) {
    while (!clean.empty() && m.obj.cost == clean.back().obj.cost &&
           m.obj.damage <= clean.back().obj.damage)
      clean.pop_back();
    clean.push_back(std::move(m));
  }
  for (Individual& m : clean) result.archive.add(std::move(m));
  return result;
}

std::optional<Individual> greedyMinCost(const LinearBiProblem& problem,
                                        std::uint64_t damageBound) {
  problem.checkConsistent();
  const std::vector<std::uint32_t> order = greedyOrder(problem);
  std::vector<std::uint32_t> prefix;
  Objectives obj{0, problem.damageTotal()};
  for (std::uint32_t idx : order) {
    if (obj.damage <= damageBound) break;
    if (problem.gain[idx] == 0) break;
    prefix.push_back(idx);
    obj.cost += problem.cost[idx];
    obj.damage -= problem.gain[idx];
  }
  if (obj.damage > damageBound) return std::nullopt;
  Individual ind;
  ind.genome = Genome(problem.size(), std::move(prefix));
  ind.obj = obj;
  return ind;
}

std::vector<Objectives> exactParetoFront(const LinearBiProblem& problem,
                                         std::size_t opBudget) {
  problem.checkConsistent();
  const std::uint64_t costTotal = problem.costTotal();
  const std::uint64_t damageTotal = problem.damageTotal();
  const std::size_t n = problem.size();
  RRSN_CHECK(n * (costTotal + 1) <= opBudget,
             "exactParetoFront: instance too large for the DP budget");

  // bestGain[c] = max damage avoidable with cost exactly <= c.
  std::vector<std::uint64_t> bestGain(costTotal + 1, 0);
  std::uint64_t freeGain = 0;  // zero-cost items are always worth taking
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t c = problem.cost[i];
    const std::uint64_t g = problem.gain[i];
    if (g == 0) continue;
    if (c == 0) {
      freeGain += g;
      continue;
    }
    for (std::uint64_t budget = costTotal; budget + 1 > c; --budget) {
      bestGain[budget] = std::max(bestGain[budget], bestGain[budget - c] + g);
    }
  }
  std::vector<Objectives> front;
  std::uint64_t lastGain = std::numeric_limits<std::uint64_t>::max();
  for (std::uint64_t c = 0; c <= costTotal; ++c) {
    if (bestGain[c] != lastGain) {
      front.push_back({c, damageTotal - (bestGain[c] + freeGain)});
      lastGain = bestGain[c];
    }
  }
  return nondominatedFront(std::move(front));
}

}  // namespace rrsn::moo

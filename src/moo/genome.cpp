#include "moo/genome.hpp"

namespace rrsn::moo {

Genome::Genome(std::size_t bits, std::vector<std::uint32_t> ones)
    : bits_(bits), sparse_(std::move(ones)) {
  std::sort(sparse_.begin(), sparse_.end());
  sparse_.erase(std::unique(sparse_.begin(), sparse_.end()), sparse_.end());
  RRSN_CHECK(sparse_.empty() || sparse_.back() < bits_,
             "genome one-position out of range");
  count_ = sparse_.size();
  normalizeRep();
}

Genome Genome::allOnes(std::size_t bits) {
  Genome g(bits);
  if (bits == 0) return g;
  g.dense_ = DynamicBitset(bits);
  g.dense_.setAll();
  g.count_ = bits;
  g.rep_ = Rep::Dense;
  return g;
}

Genome Genome::random(std::size_t bits, double density, Rng& rng) {
  Genome g(bits);
  if (bits == 0 || density <= 0.0) return g;
  const std::uint64_t draw = rng.binomial(bits, std::min(density, 1.0));
  const std::size_t k = std::min<std::size_t>(draw, bits);
  if (k == 0) return g;
  // Floyd's draw sequence depends only on (bits, k, rng state), so the
  // two branches consume identical randomness; dense samples fill the
  // word storage directly instead of materializing k indices twice.
  if (k * kDenseBitsPerOne >= bits) {
    rng.sampleIndicesInto(bits, k, g.dense_);
    g.count_ = k;
    g.rep_ = Rep::Dense;
  } else {
    const auto sampled = rng.sampleIndices(bits, k);
    g.sparse_.assign(sampled.begin(), sampled.end());
    g.count_ = g.sparse_.size();
  }
  return g;
}

bool Genome::test(std::uint32_t idx) const {
  RRSN_CHECK(idx < bits_, "genome index out of range");
  if (rep_ == Rep::Dense) return dense_.test(idx);
  return std::binary_search(sparse_.begin(), sparse_.end(), idx);
}

void Genome::flip(std::uint32_t idx) {
  RRSN_CHECK(idx < bits_, "genome index out of range");
  cache_.reset();
  if (rep_ == Rep::Dense) {
    count_ = dense_.flip(idx) ? count_ + 1 : count_ - 1;
  } else {
    const auto it = std::lower_bound(sparse_.begin(), sparse_.end(), idx);
    if (it != sparse_.end() && *it == idx)
      sparse_.erase(it);
    else
      sparse_.insert(it, idx);
    count_ = sparse_.size();
  }
  normalizeRep();
}

std::vector<std::uint32_t> Genome::indices() const {
  if (rep_ == Rep::Sparse) return sparse_;
  std::vector<std::uint32_t> out;
  out.reserve(count_);
  dense_.forEachSet(
      [&](std::size_t i) { out.push_back(static_cast<std::uint32_t>(i)); });
  return out;
}

std::size_t Genome::countBelow(std::size_t point) const {
  RRSN_CHECK(point <= bits_, "prefix point out of range");
  if (rep_ == Rep::Dense) return dense_.countBelow(point);
  return static_cast<std::size_t>(
      std::lower_bound(sparse_.begin(), sparse_.end(),
                       static_cast<std::uint32_t>(point)) -
      sparse_.begin());
}

Genome Genome::crossover(const Genome& a, const Genome& b, std::size_t point) {
  RRSN_CHECK(a.bits_ == b.bits_, "crossover operands must have equal length");
  RRSN_CHECK(point <= a.bits_, "crossover point out of range");
  return crossoverWithCounts(a, b, point, a.countBelow(point),
                             b.count_ - b.countBelow(point));
}

Genome Genome::crossoverWithCounts(const Genome& a, const Genome& b,
                                   std::size_t point, std::size_t onesPrefixA,
                                   std::size_t onesSuffixB) {
  RRSN_CHECK(a.bits_ == b.bits_, "crossover operands must have equal length");
  RRSN_CHECK(point <= a.bits_, "crossover point out of range");
  Genome child(a.bits_);
  const std::size_t childOnes = onesPrefixA + onesSuffixB;
  if (childOnes == 0) return child;
  // Knowing the exact ones count up front lets the child pick its final
  // representation before any bit is written — no convert-after-build.
  if (childOnes * kDenseBitsPerOne >= child.bits_) {
    child.rep_ = Rep::Dense;
    child.dense_ = DynamicBitset(child.bits_);
    if (a.rep_ == Rep::Dense && b.rep_ == Rep::Dense) {
      child.dense_.spliceFrom(a.dense_, b.dense_, point);
    } else {
      if (a.rep_ == Rep::Dense)
        child.dense_.orPrefixFrom(a.dense_, point);
      else
        a.forEachOneInRange(0, point,
                            [&](std::uint32_t i) { child.dense_.set(i); });
      if (b.rep_ == Rep::Dense)
        child.dense_.orSuffixFrom(b.dense_, point);
      else
        b.forEachOneInRange(point, b.bits_,
                            [&](std::uint32_t i) { child.dense_.set(i); });
    }
    child.count_ = childOnes;
  } else {
    child.sparse_.reserve(childOnes);
    a.forEachOneInRange(
        0, point, [&](std::uint32_t i) { child.sparse_.push_back(i); });
    b.forEachOneInRange(
        point, b.bits_, [&](std::uint32_t i) { child.sparse_.push_back(i); });
    RRSN_CHECK(child.sparse_.size() == childOnes,
               "crossover half counts do not match the parents");
    child.count_ = childOnes;
  }
  return child;
}

void Genome::mutatePerBit(double pBit, Rng& rng) {
  if (bits_ == 0 || pBit <= 0.0) return;
  const std::uint64_t draw = rng.binomial(bits_, std::min(pBit, 1.0));
  if (draw == 0) return;
  const auto sampled =
      rng.sampleIndices(bits_, std::min<std::size_t>(draw, bits_));
  std::vector<std::uint32_t> flips(sampled.begin(), sampled.end());
  applyFlips(flips);
}

bool Genome::operator==(const Genome& other) const {
  if (bits_ != other.bits_ || count_ != other.count_) return false;
  if (rep_ == other.rep_) {
    return rep_ == Rep::Dense ? dense_ == other.dense_
                              : sparse_ == other.sparse_;
  }
  // Mixed representations: with equal counts, the sparse side being a
  // subset of the dense side implies equality.
  const Genome& s = rep_ == Rep::Sparse ? *this : other;
  const Genome& d = rep_ == Rep::Sparse ? other : *this;
  for (std::uint32_t i : s.sparse_)
    if (!d.dense_.test(i)) return false;
  return true;
}

void Genome::normalizeRep() {
  if (bits_ == 0) return;
  if (rep_ == Rep::Sparse) {
    if (count_ * kDenseBitsPerOne >= bits_) toDense();
  } else {
    if (count_ * kSparseBitsPerOne < bits_) toSparse();
  }
}

void Genome::toDense() {
  dense_ = DynamicBitset(bits_);
  for (std::uint32_t i : sparse_) dense_.set(i);
  sparse_.clear();
  sparse_.shrink_to_fit();
  rep_ = Rep::Dense;
}

void Genome::toSparse() {
  sparse_.clear();
  sparse_.reserve(count_);
  dense_.forEachSet(
      [&](std::size_t i) { sparse_.push_back(static_cast<std::uint32_t>(i)); });
  dense_ = DynamicBitset();
  rep_ = Rep::Sparse;
}

const WeightIndex& Genome::weightIndex(const LinearBiProblem& problem) const {
  if (cache_ == nullptr)
    cache_ = std::make_shared<const WeightIndex>(problem, *this);
  return *cache_;
}

WeightIndex::WeightIndex(const LinearBiProblem& problem, const Genome& g)
    : dense_(g.rep_ == Genome::Rep::Dense),
      cost_(problem.cost.data()),
      gain_(problem.gain.data()) {
  RRSN_CHECK(problem.size() == g.bits_,
             "weight index problem/genome size mismatch");
  if (dense_) {
    // Per-word running sums: prefix*_[w] covers bits [0, 64*w).  The
    // partial word at a query point is resolved by below()'s gather.
    const std::size_t words = g.dense_.wordCount();
    prefixCost_.resize(words + 1);
    prefixGain_.resize(words + 1);
    prefixOnes_.resize(words + 1);
    std::uint64_t cost = 0;
    std::uint64_t gain = 0;
    std::uint32_t ones = 0;
    for (std::size_t w = 0; w < words; ++w) {
      prefixCost_[w] = cost;
      prefixGain_[w] = gain;
      prefixOnes_[w] = ones;
      std::uint64_t word = g.dense_.word(w);
      while (word != 0) {
        const auto idx = w * 64 + static_cast<std::size_t>(__builtin_ctzll(word));
        cost += cost_[idx];
        gain += gain_[idx];
        ++ones;
        word &= word - 1;
      }
    }
    prefixCost_[words] = cost;
    prefixGain_[words] = gain;
    prefixOnes_[words] = ones;
    total_ = {cost, gain, ones};
  } else {
    // Rank-aligned running sums: prefix*_[r] covers the first r one-bits.
    const auto& ones = g.sparse_;
    prefixCost_.resize(ones.size() + 1);
    prefixGain_.resize(ones.size() + 1);
    prefixCost_[0] = 0;
    prefixGain_[0] = 0;
    for (std::size_t r = 0; r < ones.size(); ++r) {
      prefixCost_[r + 1] = prefixCost_[r] + cost_[ones[r]];
      prefixGain_[r + 1] = prefixGain_[r] + gain_[ones[r]];
    }
    total_ = {prefixCost_.back(), prefixGain_.back(), ones.size()};
  }
}

WeightIndex::Prefix WeightIndex::below(const Genome& g,
                                       std::size_t point) const {
  RRSN_CHECK(point <= g.bits_, "prefix point out of range");
  RRSN_CHECK(dense_ == (g.rep() == Genome::Rep::Dense),
             "weight index was built for a different representation");
  Prefix p;
  if (dense_) {
    const std::size_t w = point >> 6;
    p.cost = prefixCost_[w];
    p.gain = prefixGain_[w];
    p.ones = prefixOnes_[w];
    const std::size_t rem = point & 63;
    if (rem != 0) {
      std::uint64_t word = g.dense_.word(w) & ((1ULL << rem) - 1);
      while (word != 0) {
        const auto idx = w * 64 + static_cast<std::size_t>(__builtin_ctzll(word));
        p.cost += cost_[idx];
        p.gain += gain_[idx];
        ++p.ones;
        word &= word - 1;
      }
    }
  } else {
    const auto rank = static_cast<std::size_t>(
        std::lower_bound(g.sparse_.begin(), g.sparse_.end(),
                         static_cast<std::uint32_t>(point)) -
        g.sparse_.begin());
    p.cost = prefixCost_[rank];
    p.gain = prefixGain_[rank];
    p.ones = rank;
  }
  return p;
}

Objectives evaluate(const LinearBiProblem& problem, const Genome& g,
                    std::uint64_t damageTotal) {
  RRSN_CHECK(g.bits() == problem.size(),
             "genome length does not match the problem");
  Objectives obj;
  std::uint64_t avoided = 0;
  g.forEachOne([&](std::uint32_t idx) {
    obj.cost += problem.cost[idx];
    avoided += problem.gain[idx];
  });
  RRSN_CHECK(avoided <= damageTotal, "gain sum exceeds total damage");
  obj.damage = damageTotal - avoided;
  return obj;
}

}  // namespace rrsn::moo

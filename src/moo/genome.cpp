#include "moo/genome.hpp"

#include <algorithm>

namespace rrsn::moo {

Genome::Genome(std::size_t bits, std::vector<std::uint32_t> ones)
    : bits_(bits), ones_(std::move(ones)) {
  std::sort(ones_.begin(), ones_.end());
  ones_.erase(std::unique(ones_.begin(), ones_.end()), ones_.end());
  RRSN_CHECK(ones_.empty() || ones_.back() < bits_,
             "genome one-position out of range");
}

Genome Genome::random(std::size_t bits, double density, Rng& rng) {
  Genome g(bits);
  if (bits == 0 || density <= 0.0) return g;
  const std::uint64_t k = rng.binomial(bits, std::min(density, 1.0));
  for (std::size_t idx : rng.sampleIndices(bits, std::min<std::size_t>(k, bits)))
    g.ones_.push_back(static_cast<std::uint32_t>(idx));
  return g;
}

bool Genome::test(std::uint32_t idx) const {
  RRSN_CHECK(idx < bits_, "genome index out of range");
  return std::binary_search(ones_.begin(), ones_.end(), idx);
}

void Genome::flip(std::uint32_t idx) {
  RRSN_CHECK(idx < bits_, "genome index out of range");
  const auto it = std::lower_bound(ones_.begin(), ones_.end(), idx);
  if (it != ones_.end() && *it == idx)
    ones_.erase(it);
  else
    ones_.insert(it, idx);
}

Genome Genome::crossover(const Genome& a, const Genome& b, std::size_t point) {
  RRSN_CHECK(a.bits_ == b.bits_, "crossover operands must have equal length");
  RRSN_CHECK(point <= a.bits_, "crossover point out of range");
  Genome child(a.bits_);
  const auto aEnd = std::lower_bound(a.ones_.begin(), a.ones_.end(),
                                     static_cast<std::uint32_t>(point));
  const auto bBegin = std::lower_bound(b.ones_.begin(), b.ones_.end(),
                                       static_cast<std::uint32_t>(point));
  child.ones_.assign(a.ones_.begin(), aEnd);
  child.ones_.insert(child.ones_.end(), bBegin, b.ones_.end());
  return child;
}

void Genome::mutatePerBit(double pBit, Rng& rng) {
  if (bits_ == 0 || pBit <= 0.0) return;
  const std::uint64_t flips = rng.binomial(bits_, std::min(pBit, 1.0));
  if (flips == 0) return;
  const auto positions =
      rng.sampleIndices(bits_, std::min<std::size_t>(flips, bits_));
  // Symmetric difference of two sorted ranges — O(ones + flips).
  std::vector<std::uint32_t> merged;
  merged.reserve(ones_.size() + positions.size());
  auto it = ones_.begin();
  for (std::size_t pos : positions) {
    const auto p = static_cast<std::uint32_t>(pos);
    while (it != ones_.end() && *it < p) merged.push_back(*it++);
    if (it != ones_.end() && *it == p)
      ++it;  // was set -> cleared
    else
      merged.push_back(p);  // was clear -> set
  }
  merged.insert(merged.end(), it, ones_.end());
  ones_ = std::move(merged);
}

Objectives evaluate(const LinearBiProblem& problem, const Genome& g,
                    std::uint64_t damageTotal) {
  RRSN_CHECK(g.bits() == problem.size(),
             "genome length does not match the problem");
  Objectives obj;
  std::uint64_t avoided = 0;
  for (std::uint32_t idx : g.indices()) {
    obj.cost += problem.cost[idx];
    avoided += problem.gain[idx];
  }
  RRSN_CHECK(avoided <= damageTotal, "gain sum exceeds total damage");
  obj.damage = damageTotal - avoided;
  return obj;
}

}  // namespace rrsn::moo

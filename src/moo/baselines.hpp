// Non-evolutionary reference optimizers for the hardening problem.
//
// Because both objectives are linear (see problem.hpp), the hardening
// task is a bi-objective 0/1 knapsack.  That gives us:
//  * randomSearch  — same evaluation budget as the EA, no learning;
//  * greedyFront   — sweep primitives by gain/cost ratio; each prefix is
//    a candidate solution (the classic knapsack heuristic);
//  * exactParetoFront — dynamic program over the cost dimension, exact
//    Pareto front for instances with a modest total cost.  The EA can
//    never dominate it, which the tests exploit as a correctness bound.
#pragma once

#include "moo/pareto.hpp"
#include "moo/spea2.hpp"

namespace rrsn::moo {

/// Uniform random sampling with `evaluations` draws at log-uniform
/// densities; returns the nondominated archive.
RunResult randomSearch(const LinearBiProblem& problem,
                       std::size_t evaluations, std::uint64_t seed);

/// Greedy ratio sweep.  Primitives with zero cost and positive gain are
/// always taken first.  Returns the archive of the prefix solutions; on
/// instances with more than `maxPoints` useful primitives the stored
/// front is thinned to ~maxPoints evenly spaced prefixes (materializing
/// every prefix genome would need O(n^2) memory).
RunResult greedyFront(const LinearBiProblem& problem,
                      std::size_t maxPoints = 4096);

/// The cheapest greedy prefix whose damage is <= damageBound (exact, no
/// thinning; O(n log n) time and O(n) memory).  nullopt if even the full
/// sweep cannot reach the bound.
std::optional<Individual> greedyMinCost(const LinearBiProblem& problem,
                                        std::uint64_t damageBound);

/// Exact Pareto front via DP over cost (0/1 knapsack).  Throws
/// ValidationError when size() * costTotal() exceeds `opBudget`
/// (defaults to 2e8 elementary steps) to protect against misuse on the
/// large benchmarks.
std::vector<Objectives> exactParetoFront(const LinearBiProblem& problem,
                                         std::size_t opBudget = 200'000'000);

}  // namespace rrsn::moo

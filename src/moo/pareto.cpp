#include "moo/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rrsn::moo {

bool ParetoArchive::add(Individual ind) {
  for (const Individual& m : members_) {
    if (dominates(m.obj, ind.obj) || m.obj == ind.obj) return false;
  }
  std::erase_if(members_,
                [&](const Individual& m) { return dominates(ind.obj, m.obj); });
  const auto pos = std::lower_bound(
      members_.begin(), members_.end(), ind,
      [](const Individual& a, const Individual& b) {
        return a.obj.cost < b.obj.cost;
      });
  members_.insert(pos, std::move(ind));
  return true;
}

std::optional<Individual> ParetoArchive::minCostWithDamageAtMost(
    std::uint64_t bound) const {
  // Members are sorted by ascending cost; the first one meeting the
  // damage bound is the cheapest.
  for (const Individual& m : members_)
    if (m.obj.damage <= bound) return m;
  return std::nullopt;
}

std::optional<Individual> ParetoArchive::minDamageWithCostAtMost(
    std::uint64_t bound) const {
  // Damage decreases with cost along the front; the last affordable
  // member has the least damage.
  std::optional<Individual> best;
  for (const Individual& m : members_) {
    if (m.obj.cost <= bound &&
        (!best || m.obj.damage < best->obj.damage))
      best = m;
  }
  return best;
}

std::vector<Objectives> ParetoArchive::front() const {
  std::vector<Objectives> out;
  out.reserve(members_.size());
  for (const Individual& m : members_) out.push_back(m.obj);
  return out;
}

std::vector<Objectives> nondominatedFront(std::vector<Objectives> points) {
  std::sort(points.begin(), points.end(),
            [](const Objectives& a, const Objectives& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.damage < b.damage;
            });
  std::vector<Objectives> front;
  std::uint64_t bestDamage = std::numeric_limits<std::uint64_t>::max();
  for (const Objectives& p : points) {
    if (p.damage < bestDamage) {
      front.push_back(p);
      bestDamage = p.damage;
    }
  }
  return front;
}

double hypervolume2D(const std::vector<Objectives>& front,
                     const Objectives& ref) {
  const auto clean = nondominatedFront(front);
  double area = 0.0;
  std::uint64_t prevDamage = ref.damage;
  for (const Objectives& p : clean) {
    if (p.cost >= ref.cost || p.damage >= prevDamage) continue;
    const double width = static_cast<double>(ref.cost - p.cost);
    const double height = static_cast<double>(prevDamage - p.damage);
    area += width * height;
    prevDamage = p.damage;
  }
  return area;
}

double additiveEpsilon(const std::vector<Objectives>& a,
                       const std::vector<Objectives>& b) {
  RRSN_CHECK(!a.empty() && !b.empty(),
             "epsilon indicator needs non-empty fronts");
  double eps = 0.0;
  for (const Objectives& q : b) {
    double best = std::numeric_limits<double>::infinity();
    for (const Objectives& p : a) {
      const double needCost =
          static_cast<double>(p.cost) - static_cast<double>(q.cost);
      const double needDamage =
          static_cast<double>(p.damage) - static_cast<double>(q.damage);
      best = std::min(best, std::max({needCost, needDamage, 0.0}));
    }
    eps = std::max(eps, best);
  }
  return eps;
}

}  // namespace rrsn::moo

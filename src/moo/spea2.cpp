#include "moo/spea2.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "obs/obs.hpp"
#include "support/parallel.hpp"

namespace rrsn::moo {

namespace {

/// Scratch per individual of the combined population P+A.
struct Scored {
  Individual ind;
  double fitness = 0.0;
};

/// Normalized objective-space coordinates of the combined population.
std::vector<std::pair<double, double>> normalizedPoints(
    const std::vector<Scored>& all) {
  std::uint64_t minC = std::numeric_limits<std::uint64_t>::max(), maxC = 0;
  std::uint64_t minD = std::numeric_limits<std::uint64_t>::max(), maxD = 0;
  for (const Scored& s : all) {
    minC = std::min(minC, s.ind.obj.cost);
    maxC = std::max(maxC, s.ind.obj.cost);
    minD = std::min(minD, s.ind.obj.damage);
    maxD = std::max(maxD, s.ind.obj.damage);
  }
  const double spanC = maxC > minC ? static_cast<double>(maxC - minC) : 1.0;
  const double spanD = maxD > minD ? static_cast<double>(maxD - minD) : 1.0;
  std::vector<std::pair<double, double>> pts;
  pts.reserve(all.size());
  for (const Scored& s : all) {
    pts.emplace_back(
        static_cast<double>(s.ind.obj.cost - minC) / spanC,
        static_cast<double>(s.ind.obj.damage - minD) / spanD);
  }
  return pts;
}

double sqDist(const std::pair<double, double>& a,
              const std::pair<double, double>& b) {
  const double dx = a.first - b.first;
  const double dy = a.second - b.second;
  return dx * dx + dy * dy;
}

/// Computes SPEA-2 fitness F = R + D for every member of `all`.
///
/// Both O(m^2) passes fan out over rows on the process thread pool: row
/// i only reads the shared objective vectors (and, in the second pass,
/// the completed strength array) and writes its own slot, so the result
/// is independent of the thread count.  parallelFor is a full barrier,
/// which orders the raw-fitness pass after the strength pass.
void computeFitness(std::vector<Scored>& all) {
  const std::size_t m = all.size();
  // Strength and raw fitness by pairwise dominance.
  std::vector<std::uint32_t> strength(m, 0);
  parallelFor(m, [&](std::size_t i) {
    for (std::size_t j = 0; j < m; ++j)
      if (i != j && dominates(all[i].ind.obj, all[j].ind.obj)) ++strength[i];
  });
  std::vector<double> raw(m, 0.0);
  parallelFor(m, [&](std::size_t i) {
    for (std::size_t j = 0; j < m; ++j)
      if (i != j && dominates(all[j].ind.obj, all[i].ind.obj))
        raw[i] += strength[j];
  });

  // k-th nearest neighbor density, with one distance scratch buffer per
  // worker lane instead of an allocation per row.
  const auto pts = normalizedPoints(all);
  const auto k = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::sqrt(static_cast<double>(m))));
  std::vector<std::vector<double>> scratch(threadCount());
  parallelForChunks(m, [&](std::size_t begin, std::size_t end,
                           std::size_t worker) {
    std::vector<double>& dist = scratch[worker];
    dist.reserve(m);
    for (std::size_t i = begin; i < end; ++i) {
      dist.clear();
      for (std::size_t j = 0; j < m; ++j)
        if (j != i) dist.push_back(sqDist(pts[i], pts[j]));
      // A combined population of one member has no neighbor: treat its
      // k-NN distance as zero (maximum density) instead of letting the
      // unsigned `min(k, 0) - 1` wrap.
      double sigma = 0.0;
      if (!dist.empty()) {
        const std::size_t kk = std::min(k, dist.size()) - 1;
        std::nth_element(dist.begin(),
                         dist.begin() + static_cast<std::ptrdiff_t>(kk),
                         dist.end());
        sigma = std::sqrt(dist[kk]);
      }
      all[i].fitness = raw[i] + 1.0 / (sigma + 2.0);
    }
  });
}

/// Environmental selection: indices of `all` forming the next archive.
std::vector<std::size_t> environmentalSelection(const std::vector<Scored>& all,
                                                std::size_t archiveSize) {
  std::vector<std::size_t> nondominated;
  std::vector<std::size_t> dominated;
  for (std::size_t i = 0; i < all.size(); ++i) {
    (all[i].fitness < 1.0 ? nondominated : dominated).push_back(i);
  }
  if (nondominated.size() <= archiveSize) {
    // Fill with the best dominated individuals.
    std::sort(dominated.begin(), dominated.end(),
              [&](std::size_t a, std::size_t b) {
                return all[a].fitness < all[b].fitness;
              });
    for (std::size_t i : dominated) {
      if (nondominated.size() >= archiveSize) break;
      nondominated.push_back(i);
    }
    return nondominated;
  }

  // Truncation: iteratively remove the individual with the smallest
  // nearest-neighbor distance (TR-103 uses a full lexicographic distance
  // signature; the nearest-neighbor criterion with incremental updates
  // is the standard fast variant and preserves boundary points).
  const auto pts = normalizedPoints(all);
  std::vector<bool> active(all.size(), false);
  for (std::size_t i : nondominated) active[i] = true;

  std::vector<double> nnDist(all.size(),
                             std::numeric_limits<double>::infinity());
  std::vector<std::size_t> nnOf(all.size(), SIZE_MAX);
  const auto recomputeNn = [&](std::size_t i) {
    nnDist[i] = std::numeric_limits<double>::infinity();
    nnOf[i] = SIZE_MAX;
    for (std::size_t j : nondominated) {
      if (j == i || !active[j]) continue;
      const double d = sqDist(pts[i], pts[j]);
      if (d < nnDist[i]) {
        nnDist[i] = d;
        nnOf[i] = j;
      }
    }
  };
  for (std::size_t i : nondominated) recomputeNn(i);

  std::size_t remaining = nondominated.size();
  while (remaining > archiveSize) {
    std::size_t victim = SIZE_MAX;
    for (std::size_t i : nondominated) {
      if (!active[i]) continue;
      if (victim == SIZE_MAX || nnDist[i] < nnDist[victim]) victim = i;
    }
    active[victim] = false;
    --remaining;
    for (std::size_t i : nondominated) {
      if (active[i] && nnOf[i] == victim) recomputeNn(i);
    }
  }
  std::vector<std::size_t> result;
  for (std::size_t i : nondominated)
    if (active[i]) result.push_back(i);
  return result;
}

}  // namespace

RunResult runSpea2(const LinearBiProblem& problem,
                   const EvolutionOptions& options,
                   const ProgressFn& progress) {
  problem.checkConsistent();
  Rng rng(options.seed);
  const std::uint64_t damageTotal = problem.damageTotal();
  const std::size_t archiveSize =
      options.archiveSize == 0 ? options.populationSize : options.archiveSize;

  RunResult result;
  std::vector<Individual> population =
      detail::initialPopulation(problem, damageTotal, options, rng);
  result.stats.evaluations += population.size();
  std::vector<Individual> archive;

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    RRSN_OBS_SPAN("moo.spea2.generation");
    // Fitness assignment over P + A.
    std::vector<Scored> all;
    all.reserve(population.size() + archive.size());
    for (Individual& ind : population) all.push_back({std::move(ind), 0.0});
    for (Individual& ind : archive) all.push_back({std::move(ind), 0.0});
    {
      RRSN_OBS_SPAN("moo.spea2.fitness");
      computeFitness(all);
    }

    // Environmental selection -> next archive.
    std::vector<Individual> nextArchive;
    std::vector<double> archiveFitness;
    {
      RRSN_OBS_SPAN("moo.spea2.archive");
      const auto keep = environmentalSelection(all, archiveSize);
      nextArchive.reserve(keep.size());
      for (std::size_t i : keep) {
        nextArchive.push_back(std::move(all[i].ind));
        archiveFitness.push_back(all[i].fitness);
      }
    }

    if (progress) progress(gen, nextArchive);

    // Mating selection (binary tournament on fitness) + variation.  All
    // randomness is drawn serially into plans; the offspring then
    // materialize on the pool (makeOffspringBatch).
    const auto tournament = [&]() -> std::size_t {
      const std::size_t a =
          static_cast<std::size_t>(rng.below(nextArchive.size()));
      const std::size_t b =
          static_cast<std::size_t>(rng.below(nextArchive.size()));
      return archiveFitness[a] <= archiveFitness[b] ? a : b;
    };
    std::vector<Individual> offspring = detail::makeOffspringBatch(
        problem, damageTotal, nextArchive, options.populationSize, options,
        tournament, rng);
    result.stats.evaluations += offspring.size();
    population = std::move(offspring);
    archive = std::move(nextArchive);
    ++result.stats.generations;
  }

  for (Individual& ind : archive) result.archive.add(std::move(ind));
  for (Individual& ind : population) result.archive.add(std::move(ind));
  return result;
}

}  // namespace rrsn::moo

#include "moo/nsga2.hpp"

#include <algorithm>
#include <limits>

#include "obs/obs.hpp"

namespace rrsn::moo {

namespace {

/// Fast non-dominated sort; returns front index per individual.
std::vector<std::size_t> nonDominatedSort(
    const std::vector<Individual>& all) {
  const std::size_t m = all.size();
  std::vector<std::size_t> front(m, 0);
  std::vector<std::vector<std::size_t>> dominatesList(m);
  std::vector<std::size_t> dominatedBy(m, 0);
  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (i == j) continue;
      if (dominates(all[i].obj, all[j].obj)) dominatesList[i].push_back(j);
      else if (dominates(all[j].obj, all[i].obj)) ++dominatedBy[i];
    }
    if (dominatedBy[i] == 0) {
      front[i] = 0;
      current.push_back(i);
    }
  }
  std::size_t level = 0;
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t i : current) {
      for (std::size_t j : dominatesList[i]) {
        if (--dominatedBy[j] == 0) {
          front[j] = level + 1;
          next.push_back(j);
        }
      }
    }
    current = std::move(next);
    ++level;
  }
  return front;
}

/// Crowding distance within one front (indices into `all`).
std::vector<double> crowdingDistance(const std::vector<Individual>& all,
                                     const std::vector<std::size_t>& front) {
  std::vector<double> crowd(front.size(), 0.0);
  const std::size_t n = front.size();
  if (n <= 2) {
    std::fill(crowd.begin(), crowd.end(),
              std::numeric_limits<double>::infinity());
    return crowd;
  }
  // With two strictly conflicting objectives, sorting by cost sorts by
  // damage in reverse; one pass covers both objectives.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return all[front[a]].obj.cost < all[front[b]].obj.cost;
  });
  const auto span = [&](auto get) {
    const double lo = static_cast<double>(get(all[front[order.front()]].obj));
    const double hi = static_cast<double>(get(all[front[order.back()]].obj));
    return std::max(std::abs(hi - lo), 1.0);
  };
  const double spanCost = span([](const Objectives& o) { return o.cost; });
  const double spanDamage = span([](const Objectives& o) { return o.damage; });
  crowd[order.front()] = std::numeric_limits<double>::infinity();
  crowd[order.back()] = std::numeric_limits<double>::infinity();
  for (std::size_t i = 1; i + 1 < n; ++i) {
    const Objectives& prev = all[front[order[i - 1]]].obj;
    const Objectives& next = all[front[order[i + 1]]].obj;
    const double dc = static_cast<double>(next.cost) -
                      static_cast<double>(prev.cost);
    const double dd = static_cast<double>(prev.damage) -
                      static_cast<double>(next.damage);
    crowd[order[i]] += dc / spanCost + std::abs(dd) / spanDamage;
  }
  return crowd;
}

}  // namespace

RunResult runNsga2(const LinearBiProblem& problem,
                   const EvolutionOptions& options,
                   const ProgressFn& progress) {
  problem.checkConsistent();
  Rng rng(options.seed);
  const std::uint64_t damageTotal = problem.damageTotal();

  RunResult result;
  std::vector<Individual> population =
      detail::initialPopulation(problem, damageTotal, options, rng);
  result.stats.evaluations += population.size();

  // Rank + crowding of the current population (for tournament selection).
  std::vector<std::size_t> rank(population.size(), 0);
  std::vector<double> crowd(population.size(), 0.0);
  const auto rescore = [&](const std::vector<Individual>& pop,
                           std::vector<std::size_t>& rankOut,
                           std::vector<double>& crowdOut) {
    rankOut = nonDominatedSort(pop);
    crowdOut.assign(pop.size(), 0.0);
    const std::size_t levels =
        pop.empty() ? 0 : *std::max_element(rankOut.begin(), rankOut.end()) + 1;
    for (std::size_t level = 0; level < levels; ++level) {
      std::vector<std::size_t> front;
      for (std::size_t i = 0; i < pop.size(); ++i)
        if (rankOut[i] == level) front.push_back(i);
      const auto cd = crowdingDistance(pop, front);
      for (std::size_t i = 0; i < front.size(); ++i) crowdOut[front[i]] = cd[i];
    }
  };
  rescore(population, rank, crowd);

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    RRSN_OBS_SPAN("moo.nsga2.generation");
    // Variation: binary tournament on (rank, crowding).  Plans are drawn
    // serially, offspring materialize on the pool (makeOffspringBatch).
    const auto tournament = [&]() -> std::size_t {
      const auto a = static_cast<std::size_t>(rng.below(population.size()));
      const auto b = static_cast<std::size_t>(rng.below(population.size()));
      if (rank[a] != rank[b]) return rank[a] < rank[b] ? a : b;
      return crowd[a] >= crowd[b] ? a : b;
    };
    std::vector<Individual> offspring = detail::makeOffspringBatch(
        problem, damageTotal, population, options.populationSize, options,
        tournament, rng);
    result.stats.evaluations += options.populationSize;
    // The parent population is consumed into the combined pool by move —
    // no deep copy of up-to-670k-bit genomes per generation.
    std::vector<Individual> combined = std::move(population);
    combined.reserve(combined.size() + offspring.size());
    for (Individual& ind : offspring) combined.push_back(std::move(ind));

    // Environmental selection: best fronts, crowding to split the last.
    std::vector<std::size_t> combinedRank;
    std::vector<double> combinedCrowd;
    {
      RRSN_OBS_SPAN("moo.nsga2.rescore");
      rescore(combined, combinedRank, combinedCrowd);
    }
    RRSN_OBS_SPAN("moo.nsga2.selection");
    std::vector<std::size_t> order(combined.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (combinedRank[a] != combinedRank[b])
        return combinedRank[a] < combinedRank[b];
      return combinedCrowd[a] > combinedCrowd[b];
    });
    std::vector<Individual> next;
    std::vector<std::size_t> nextRank;
    std::vector<double> nextCrowd;
    next.reserve(options.populationSize);
    for (std::size_t i = 0; i < options.populationSize; ++i) {
      next.push_back(std::move(combined[order[i]]));
      nextRank.push_back(combinedRank[order[i]]);
      nextCrowd.push_back(combinedCrowd[order[i]]);
    }
    population = std::move(next);
    rank = std::move(nextRank);
    crowd = std::move(nextCrowd);
    ++result.stats.generations;

    if (progress) progress(gen, population);
  }

  for (Individual& ind : population) result.archive.add(std::move(ind));
  return result;
}

}  // namespace rrsn::moo

#include "moo/ea_common.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "support/parallel.hpp"
#include "support/status.hpp"

namespace rrsn::moo::detail {

std::vector<Individual> initialPopulation(const LinearBiProblem& problem,
                                          std::uint64_t damageTotal,
                                          const EvolutionOptions& options,
                                          Rng& rng) {
  RRSN_CHECK(options.populationSize >= 1, "population needs >= 1 individual");
  const std::size_t bits = problem.size();
  std::vector<Individual> pop;
  pop.reserve(options.populationSize);
  // Genomes are drawn serially (the RNG stream is strictly ordered) …
  for (std::size_t i = 0; i < options.populationSize; ++i) {
    Genome g(bits);
    if (i >= 2 && i - 2 < options.seedGenomes.size()) {
      g = options.seedGenomes[i - 2];
      RRSN_CHECK(g.bits() == bits, "seed genome length mismatch");
    } else if (i == 1 && bits > 0) {
      // Individual 1: everything hardened — the expensive Pareto endpoint.
      // Together with the all-zero individual 0 both anchors exist from
      // generation 0, and one-point crossover against the dense anchor
      // lets the search descend from the low-damage end.
      g = Genome::allOnes(bits);
    } else if (i != 0 && bits > 0) {
      const double u = rng.uniform();
      double density = std::min(u * u, options.maxInitDensity);
      if (options.maxInitOnes > 0) {
        density = std::min(density, static_cast<double>(options.maxInitOnes) /
                                        static_cast<double>(bits));
      }
      g = Genome::random(bits, density, rng);
    }
    Individual ind;
    ind.genome = std::move(g);
    pop.push_back(std::move(ind));
  }
  // … and evaluated on the pool — each O(ones) scan writes only its own
  // objective slot, so the result is thread-count independent.
  parallelFor(
      pop.size(),
      [&](std::size_t i) {
        pop[i].obj = evaluate(problem, pop[i].genome, damageTotal);
      },
      /*grain=*/1);
  return pop;
}

void prepareParents(const LinearBiProblem& problem,
                    const std::vector<Individual>& pool,
                    const std::vector<VariationPlan>& plans) {
  std::vector<std::size_t> need;
  need.reserve(plans.size() * 2);
  for (const VariationPlan& p : plans) {
    if (!p.crossover) continue;
    need.push_back(p.parentA);
    need.push_back(p.parentB);
  }
  std::sort(need.begin(), need.end());
  need.erase(std::unique(need.begin(), need.end()), need.end());
  std::erase_if(need, [&](std::size_t i) {
    return pool[i].genome.hasWeightIndex();
  });
  // Distinct genomes — each lazy build touches only its own cache slot.
  parallelFor(
      need.size(),
      [&](std::size_t i) { pool[need[i]].genome.weightIndex(problem); },
      /*grain=*/1);
}

Individual applyVariationPlan(const LinearBiProblem& problem,
                              std::uint64_t damageTotal,
                              const std::vector<Individual>& pool,
                              const VariationPlan& plan,
                              bool verifyObjectives) {
  const Individual& a = pool[plan.parentA];
  Individual ind;
  if (plan.crossover) {
    const Individual& b = pool[plan.parentB];
    // Child objectives from the parents' prefix sums: O(log ones) for a
    // sparse parent, O(1) plus one partial word for a dense one —
    // instead of an O(ones) re-scan of the child.
    const WeightIndex& ia = a.genome.weightIndex(problem);
    const WeightIndex& ib = b.genome.weightIndex(problem);
    const WeightIndex::Prefix pa = ia.below(a.genome, plan.point);
    const WeightIndex::Prefix pb = ib.below(b.genome, plan.point);
    const WeightIndex::Prefix& tb = ib.total();
    ind.genome = Genome::crossoverWithCounts(a.genome, b.genome, plan.point,
                                             pa.ones, tb.ones - pb.ones);
    const std::uint64_t gain = pa.gain + (tb.gain - pb.gain);
    ind.obj.cost = pa.cost + (tb.cost - pb.cost);
    ind.obj.damage = damageTotal - gain;
  } else {
    ind.genome = a.genome;
    ind.obj = a.obj;
  }
  // Each flip shifts the objectives by the bit's weights in O(1).
  std::uint64_t cost = ind.obj.cost;
  std::uint64_t damage = ind.obj.damage;
  ind.genome.applyFlips(plan.flips, [&](std::uint32_t idx, bool nowSet) {
    if (nowSet) {
      cost += problem.cost[idx];
      damage -= problem.gain[idx];
    } else {
      cost -= problem.cost[idx];
      damage += problem.gain[idx];
    }
  });
  ind.obj.cost = cost;
  ind.obj.damage = damage;
#ifndef NDEBUG
  // Debug builds re-derive every offspring's objectives from scratch;
  // any divergence of the incremental bookkeeping fails loudly here.
  verifyObjectives = true;
#endif
  if (verifyObjectives) {
    const Objectives full = evaluate(problem, ind.genome, damageTotal);
    if (!(ind.obj == full)) {
      obs::raiseIfError(Status::internal(
          "incremental objectives diverged from full evaluation: got (cost " +
          std::to_string(ind.obj.cost) + ", damage " +
          std::to_string(ind.obj.damage) + "), expected (cost " +
          std::to_string(full.cost) + ", damage " +
          std::to_string(full.damage) + ")"));
    }
  }
  return ind;
}

}  // namespace rrsn::moo::detail

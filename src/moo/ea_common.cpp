#include "moo/ea_common.hpp"

#include <cmath>

namespace rrsn::moo::detail {

std::vector<Individual> initialPopulation(const LinearBiProblem& problem,
                                          std::uint64_t damageTotal,
                                          const EvolutionOptions& options,
                                          Rng& rng) {
  RRSN_CHECK(options.populationSize >= 1, "population needs >= 1 individual");
  const std::size_t bits = problem.size();
  std::vector<Individual> pop;
  pop.reserve(options.populationSize);
  for (std::size_t i = 0; i < options.populationSize; ++i) {
    Genome g(bits);
    if (i >= 2 && i - 2 < options.seedGenomes.size()) {
      g = options.seedGenomes[i - 2];
      RRSN_CHECK(g.bits() == bits, "seed genome length mismatch");
    } else if (i == 1 && bits > 0) {
      // Individual 1: everything hardened — the expensive Pareto endpoint.
      // Together with the all-zero individual 0 both anchors exist from
      // generation 0, and one-point crossover against the dense anchor
      // lets the search descend from the low-damage end.
      std::vector<std::uint32_t> all(bits);
      for (std::uint32_t k = 0; k < bits; ++k) all[k] = k;
      g = Genome(bits, std::move(all));
    } else if (i != 0 && bits > 0) {
      const double u = rng.uniform();
      double density = std::min(u * u, options.maxInitDensity);
      if (options.maxInitOnes > 0) {
        density = std::min(density, static_cast<double>(options.maxInitOnes) /
                                        static_cast<double>(bits));
      }
      g = Genome::random(bits, density, rng);
    }
    Individual ind;
    ind.obj = evaluate(problem, g, damageTotal);
    ind.genome = std::move(g);
    pop.push_back(std::move(ind));
  }
  return pop;
}

Individual makeOffspring(const LinearBiProblem& problem,
                         std::uint64_t damageTotal, const Individual& a,
                         const Individual& b, const EvolutionOptions& options,
                         Rng& rng) {
  const std::size_t bits = problem.size();
  Genome child(bits);
  if (rng.chance(options.crossoverProb)) {
    const std::size_t point =
        bits == 0 ? 0 : static_cast<std::size_t>(rng.below(bits + 1));
    child = Genome::crossover(a.genome, b.genome, point);
  } else {
    child = a.genome;
  }
  child.mutatePerBit(options.mutationProbPerBit, rng);
  Individual ind;
  ind.obj = evaluate(problem, child, damageTotal);
  ind.genome = std::move(child);
  return ind;
}

}  // namespace rrsn::moo::detail

// The model-level passes of rrsn_lint: every rule that inspects a
// validated Network, its flat GraphView, or its decomposition tree.
//
// All passes are single-threaded and deterministic: they iterate the
// dense primitive/structure ids in ascending order, so two runs over the
// same model produce byte-identical finding lists regardless of
// RRSN_THREADS or platform.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "lint/lint.hpp"
#include "obs/obs.hpp"
#include "rsn/graph_view.hpp"
#include "sp/decomposition.hpp"
#include "sp/sp_reduce.hpp"

namespace rrsn::lint {
namespace {

constexpr std::size_t kNoPos = std::numeric_limits<std::size_t>::max();

std::string toLower(const std::string& s) {
  std::string out = s;
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

/// Shared state of one lint run over a validated network.
class Runner {
 public:
  Runner(const rsn::Network& net, const LintOptions& opts, LintResult& out)
      : net_(net), opts_(opts), out_(out), gv_(rsn::buildGraphView(net)) {}

  void run() {
    // Error-severity passes (also the fail-fast configuration).
    checkCtrlWidth();
    checkCtrlCycles();
    checkReachability();
    if (opts_.hardenedNames != nullptr) checkPlan();
    if (opts_.errorsOnly) return;

    // Warning / note passes.
    checkStructureShape();
    checkConfusableNames();
    checkControlWiring();
    checkSeriesParallelReadiness();
    checkTreeReadiness();
    if (opts_.spec != nullptr) checkSpec();
  }

 private:
  void emit(const char* ruleId, const std::string& subject,
            std::string message) {
    const RuleInfo* info = findRule(ruleId);
    RRSN_CHECK(info != nullptr,
               std::string("unregistered lint rule ") + ruleId);
    Finding f;
    f.ruleId = ruleId;
    f.severity = info->severity;
    f.message = std::move(message);
    f.fixit = info->fixit;
    f.subject = subject;
    if (opts_.sources != nullptr) f.line = opts_.sources->line(subject);
    out_.add(std::move(f));
  }

  /// True if branch `b` of mux `m` can be addressed at all: its value
  /// fits the control register.  TAP-steered muxes are fully addressable.
  bool addressable(rsn::MuxId m, std::size_t b) const {
    const rsn::SegmentId ctrl = net_.mux(m).controlSegment;
    if (ctrl == rsn::kNone) return true;
    const std::uint32_t len = net_.segment(ctrl).length;
    return len >= 32 || b < (std::size_t{1} << len);
  }

  // ---- struct.ctrl-width -----------------------------------------------
  void checkCtrlWidth() {
    for (rsn::MuxId m = 0; m < net_.muxes().size(); ++m) {
      const rsn::Mux& mux = net_.mux(m);
      if (mux.controlSegment == rsn::kNone) continue;
      const std::size_t arity = gv_.muxBranchExit[m].size();
      const std::uint32_t len = net_.segment(mux.controlSegment).length;
      if (len >= 32 || arity <= (std::size_t{1} << len)) continue;
      emit("struct.ctrl-width", mux.name,
           "mux '" + mux.name + "' has " + std::to_string(arity) +
               " branches but control register '" +
               net_.segment(mux.controlSegment).name + "' holds only " +
               std::to_string(len) + " bit(s) (" +
               std::to_string(std::size_t{1} << len) +
               " addresses); branches " +
               std::to_string(std::size_t{1} << len) + ".." +
               std::to_string(arity - 1) + " are unselectable");
    }
  }

  // ---- struct.ctrl-cycle -----------------------------------------------
  //
  // Mux m *depends on* mux p when m's control register sits in a
  // non-reset branch (address >= 1) of p: writing the register first
  // requires configuring p away from reset, which requires writing p's
  // own control register.  A dependency cycle therefore deadlocks from
  // the reset configuration — no CSU sequence can ever configure any mux
  // on the cycle.  (The parser cannot produce such cycles — control
  // references resolve at declaration time and Network::validate rejects
  // a control inside its own mux's branches — but NetworkBuilder can.)
  void checkCtrlCycles() {
    const std::size_t M = net_.muxes().size();
    if (M == 0) return;

    // Which segments control some mux, and the (mux, branch) contexts
    // enclosing each such segment, from one structure walk.
    std::vector<char> isCtrl(net_.segments().size(), 0);
    for (rsn::MuxId m = 0; m < M; ++m)
      if (net_.mux(m).controlSegment != rsn::kNone)
        isCtrl[net_.mux(m).controlSegment] = 1;

    struct Enclosure {
      rsn::MuxId mux;
      std::size_t branch;
    };
    std::vector<std::vector<Enclosure>> enclosuresOf(net_.segments().size());
    struct Frame {
      rsn::NodeId id;
      std::size_t next = 0;
    };
    const rsn::Structure& st = net_.structure();
    std::vector<Frame> walk{{st.root()}};
    std::vector<Enclosure> ctx;
    while (!walk.empty()) {
      Frame& fr = walk.back();
      const auto& n = st.node(fr.id);
      const bool isMux = n.kind == rsn::NodeKind::MuxJoin;
      if (isMux && fr.next > 0) ctx.pop_back();  // finished branch next-1
      if (fr.next == 0 && n.kind == rsn::NodeKind::Segment &&
          isCtrl[n.prim] != 0)
        enclosuresOf[n.prim] = ctx;
      if (fr.next >= n.children.size()) {
        walk.pop_back();
        continue;
      }
      if (isMux) ctx.push_back({static_cast<rsn::MuxId>(n.prim), fr.next});
      walk.push_back({n.children[fr.next++]});
    }

    std::vector<std::vector<rsn::MuxId>> deps(M);
    for (rsn::MuxId m = 0; m < M; ++m) {
      const rsn::SegmentId ctrl = net_.mux(m).controlSegment;
      if (ctrl == rsn::kNone) continue;
      for (const Enclosure& e : enclosuresOf[ctrl])
        if (e.branch >= 1) deps[m].push_back(e.mux);
    }

    // Iterative DFS; a back edge to a grey mux closes a deadlock cycle.
    enum : char { White, Grey, Black };
    std::vector<char> color(M, White);
    std::vector<char> reported(M, 0);
    struct DfsFrame {
      rsn::MuxId mux;
      std::size_t next = 0;
    };
    for (rsn::MuxId start = 0; start < M; ++start) {
      if (color[start] != White) continue;
      std::vector<DfsFrame> stack{{start}};
      color[start] = Grey;
      while (!stack.empty()) {
        DfsFrame& fr = stack.back();
        if (fr.next >= deps[fr.mux].size()) {
          color[fr.mux] = Black;
          stack.pop_back();
          continue;
        }
        const rsn::MuxId to = deps[fr.mux][fr.next++];
        if (color[to] == White) {
          color[to] = Grey;
          stack.push_back({to});
        } else if (color[to] == Grey && reported[to] == 0) {
          // Extract the cycle from the DFS stack: to .. top.
          std::size_t at = stack.size();
          while (at > 0 && stack[at - 1].mux != to) --at;
          std::string path = "'" + net_.mux(to).name + "'";
          for (std::size_t i = at; i < stack.size(); ++i) {
            reported[stack[i].mux] = 1;
            if (stack[i].mux != to)
              path += " -> '" + net_.mux(stack[i].mux).name + "'";
          }
          path += " -> '" + net_.mux(to).name + "'";
          emit("struct.ctrl-cycle", net_.mux(to).name,
               "control deadlock " + path +
                   ": each control register sits in a non-reset branch of "
                   "the next mux, so no CSU sequence starting from reset "
                   "can configure any of them");
        }
      }
    }
  }

  // ---- struct.unreachable ----------------------------------------------
  //
  // Growing control-steerability fixpoint from the reset configuration.
  // A branch is *steerable* once it is addressable and its control
  // register is settable (reset branches and TAP-steered muxes start
  // steerable); a segment is *settable* once it is forward-reachable
  // from scan-in and backward-reachable to scan-out over edges whose mux
  // entries are gated on steerable branches.  The fixpoint grows
  // monotonically, one control-nesting level per round; segments still
  // unreachable at the fixpoint are provably never on an active path.
  void checkReachability() {
    const std::size_t M = net_.muxes().size();
    const std::size_t V = gv_.graph.vertexCount();

    std::vector<rsn::MuxId> muxOf(V, rsn::kNone);
    for (rsn::MuxId m = 0; m < M; ++m) muxOf[gv_.muxVertex[m]] = m;

    std::vector<std::vector<char>> steer(M);
    for (rsn::MuxId m = 0; m < M; ++m) {
      const rsn::SegmentId ctrl = net_.mux(m).controlSegment;
      const std::size_t arity = gv_.muxBranchExit[m].size();
      steer[m].assign(arity, 0);
      for (std::size_t b = 0; b < arity; ++b)
        steer[m][b] =
            static_cast<char>(addressable(m, b) &&
                              (b == 0 || ctrl == rsn::kNone) ? 1 : 0);
    }

    // Edge u -> v is usable iff v is not a mux entry, or u exits some
    // currently steerable branch of that mux.
    const auto edgeAllowed = [&](graph::VertexId u, graph::VertexId v) {
      const rsn::MuxId m = muxOf[v];
      if (m == rsn::kNone) return true;
      const auto& exits = gv_.muxBranchExit[m];
      for (std::size_t b = 0; b < exits.size(); ++b)
        if (exits[b] == u && steer[m][b] != 0) return true;
      return false;
    };

    std::vector<char> fwd(V, 0);
    std::vector<char> bwd(V, 0);
    const auto sweep = [&](graph::VertexId start, bool forward,
                           std::vector<char>& seen) {
      std::fill(seen.begin(), seen.end(), 0);
      std::vector<graph::VertexId> stack{start};
      seen[start] = 1;
      while (!stack.empty()) {
        const graph::VertexId u = stack.back();
        stack.pop_back();
        const auto& next =
            forward ? gv_.graph.successors(u) : gv_.graph.predecessors(u);
        for (const graph::VertexId v : next) {
          if (seen[v] != 0) continue;
          if (!(forward ? edgeAllowed(u, v) : edgeAllowed(v, u))) continue;
          seen[v] = 1;
          stack.push_back(v);
        }
      }
    };

    // Each productive round unlocks at least one mux, so M + 1 rounds
    // always reach the fixpoint (the final round observes no change and
    // leaves fwd/bwd consistent with the terminal steerable set).
    for (std::size_t round = 0; round <= M + 1; ++round) {
      sweep(gv_.scanIn, true, fwd);
      sweep(gv_.scanOut, false, bwd);
      bool changed = false;
      for (rsn::MuxId m = 0; m < M; ++m) {
        const rsn::SegmentId ctrl = net_.mux(m).controlSegment;
        if (ctrl == rsn::kNone) continue;
        const graph::VertexId cv = gv_.segmentVertex[ctrl];
        if (fwd[cv] == 0 || bwd[cv] == 0) continue;
        for (std::size_t b = 0; b < steer[m].size(); ++b) {
          if (steer[m][b] == 0 && addressable(m, b)) {
            steer[m][b] = 1;
            changed = true;
          }
        }
      }
      if (!changed) break;
    }

    for (rsn::SegmentId s = 0; s < net_.segments().size(); ++s) {
      const graph::VertexId sv = gv_.segmentVertex[s];
      if (fwd[sv] != 0 && bwd[sv] != 0) continue;
      emit("struct.unreachable", net_.segment(s).name,
           "segment '" + net_.segment(s).name +
               "' is never on an active scan path: no configuration "
               "reachable from reset steers every mux between it and the "
               "scan ports");
    }
  }

  // ---- plan.unknown-primitive ------------------------------------------
  void checkPlan() {
    for (const std::string& name : *opts_.hardenedNames) {
      if (net_.findSegment(name) != rsn::kNone ||
          net_.findMux(name) != rsn::kNone)
        continue;
      emit("plan.unknown-primitive", name,
           "hardened-set entry '" + name +
               "' names no segment or mux of network '" + net_.name() + "'");
    }
  }

  // ---- struct.dead-sib / struct.duplicate-branch / sem.orphan-wire -----
  void checkStructureShape() {
    const rsn::Structure& st = net_.structure();

    // Pre-order node sequence; its reverse visits children before
    // parents, giving the per-node instrument counts bottom-up.
    std::vector<rsn::NodeId> order;
    order.reserve(st.nodeCount());
    st.preOrder([&](rsn::NodeId id) { order.push_back(id); });
    std::vector<std::uint32_t> instCount(st.nodeCount(), 0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const auto& n = st.node(*it);
      std::uint32_t count = 0;
      if (n.kind == rsn::NodeKind::Segment &&
          net_.segment(n.prim).instrument != rsn::kNone)
        count = 1;
      for (const rsn::NodeId c : n.children) count += instCount[c];
      instCount[*it] = count;
    }

    if (st.node(st.root()).kind == rsn::NodeKind::Wire)
      emit("sem.orphan-wire", net_.name(),
           "network '" + net_.name() + "' is an empty bypass (its whole "
           "body is one wire)");

    for (const rsn::NodeId id : order) {
      const auto& n = st.node(id);
      if (n.kind == rsn::NodeKind::Serial) {
        std::size_t wires = 0;
        for (const rsn::NodeId c : n.children)
          if (st.node(c).kind == rsn::NodeKind::Wire) ++wires;
        if (wires > 0)
          emit("sem.orphan-wire", {},
               "serial chain contains " + std::to_string(wires) +
                   " bare wire(s) carrying no scan content");
        continue;
      }
      if (n.kind != rsn::NodeKind::MuxJoin) continue;
      const rsn::Mux& mux = net_.mux(n.prim);

      std::size_t wireBranches = 0;
      for (const rsn::NodeId c : n.children)
        if (st.node(c).kind == rsn::NodeKind::Wire) ++wireBranches;
      if (wireBranches >= 2)
        emit("struct.duplicate-branch", mux.name,
             "mux '" + mux.name + "' has " + std::to_string(wireBranches) +
                 " bypass (wire) branches; they select identical paths");

      // A SIB is the mux + 1-bit register sugar; its content branches are
      // everything but the bypass.  A SIB gating zero instruments only
      // adds chain length and a fault site.
      if (mux.controlSegment != rsn::kNone &&
          net_.segment(mux.controlSegment).isSibRegister &&
          instCount[id] == 0) {
        const std::string& sibName = net_.segment(mux.controlSegment).name;
        emit("struct.dead-sib", sibName,
             "SIB '" + sibName + "' gates no instruments; its content is "
             "dead scan volume");
      }
    }
  }

  // ---- struct.confusable-names -----------------------------------------
  void checkConfusableNames() {
    std::unordered_map<std::string, std::string> byLower;
    const auto visit = [&](const std::string& name) {
      const auto [it, inserted] = byLower.emplace(toLower(name), name);
      if (!inserted && it->second != name)
        emit("struct.confusable-names", name,
             "name '" + name + "' differs from '" + it->second +
                 "' only by letter case");
    };
    for (const rsn::Segment& s : net_.segments()) visit(s.name);
    for (const rsn::Mux& m : net_.muxes()) visit(m.name);
    for (const rsn::Instrument& i : net_.instruments()) visit(i.name);
  }

  // ---- sem.unconstrained-mux / sem.shared-ctrl --------------------------
  void checkControlWiring() {
    std::vector<std::vector<rsn::MuxId>> users(net_.segments().size());
    for (rsn::MuxId m = 0; m < net_.muxes().size(); ++m) {
      const rsn::SegmentId ctrl = net_.mux(m).controlSegment;
      if (ctrl == rsn::kNone) {
        emit("sem.unconstrained-mux", net_.mux(m).name,
             "mux '" + net_.mux(m).name +
                 "' has no control register (steered from outside the "
                 "network, e.g. TAP instruction decode)");
        continue;
      }
      users[ctrl].push_back(m);
    }
    for (rsn::SegmentId s = 0; s < users.size(); ++s) {
      if (users[s].size() < 2) continue;
      emit("sem.shared-ctrl", net_.segment(s).name,
           "control register '" + net_.segment(s).name + "' steers " +
               std::to_string(users[s].size()) +
               " muxes; they can only reconfigure together");
    }
  }

  // ---- ready.non-sp ----------------------------------------------------
  void checkSeriesParallelReadiness() {
    if (gv_.graph.vertexCount() > opts_.spCheckVertexCap) return;
    const sp::SpCheck check =
        sp::checkSeriesParallel(gv_.graph, gv_.scanIn, gv_.scanOut);
    if (check.isSeriesParallel) return;
    emit("ready.non-sp", {},
         "flat scan graph is not two-terminal series-parallel (" +
             std::to_string(check.stuckVertices.size()) +
             " vertices resist SP reduction); analysis will insert virtual "
             "vertices");
  }

  // ---- ready.depth / sem.ctrl-downstream --------------------------------
  void checkTreeReadiness() {
    const sp::DecompositionTree tree = sp::DecompositionTree::build(net_);

    const std::size_t leaves = net_.segments().size();
    std::size_t log2Ceil = 0;
    while ((std::size_t{1} << log2Ceil) < leaves + 2) ++log2Ceil;
    const std::size_t threshold = std::max<std::size_t>(64, 4 * log2Ceil);
    if (tree.depth() > threshold)
      emit("ready.depth", {},
           "decomposition tree depth " + std::to_string(tree.depth()) +
               " exceeds " + std::to_string(threshold) +
               " (~4*log2 of the segment count); per-segment criticality "
               "walks degrade from O(log n) toward O(n)");

    // Scan position of each segment, then per-structure-node position
    // ranges bottom-up — a control register whose position lies strictly
    // behind its mux's whole region needs an extra CSU cycle.
    const std::vector<rsn::SegmentId> scanOrder = tree.scanOrder();
    std::vector<std::size_t> posOf(net_.segments().size(), kNoPos);
    for (std::size_t i = 0; i < scanOrder.size(); ++i) posOf[scanOrder[i]] = i;

    const rsn::Structure& st = net_.structure();
    std::vector<rsn::NodeId> order;
    order.reserve(st.nodeCount());
    st.preOrder([&](rsn::NodeId id) { order.push_back(id); });
    std::vector<std::size_t> maxPos(st.nodeCount(), kNoPos);
    std::vector<rsn::NodeId> nodeOfMux(net_.muxes().size(), rsn::kNone);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const auto& n = st.node(*it);
      std::size_t pos = kNoPos;
      if (n.kind == rsn::NodeKind::Segment) pos = posOf[n.prim];
      if (n.kind == rsn::NodeKind::MuxJoin) nodeOfMux[n.prim] = *it;
      for (const rsn::NodeId c : n.children) {
        if (maxPos[c] == kNoPos) continue;
        if (pos == kNoPos || maxPos[c] > pos) pos = maxPos[c];
      }
      maxPos[*it] = pos;
    }

    for (rsn::MuxId m = 0; m < net_.muxes().size(); ++m) {
      const rsn::SegmentId ctrl = net_.mux(m).controlSegment;
      if (ctrl == rsn::kNone || net_.segment(ctrl).isSibRegister) continue;
      const rsn::NodeId node = nodeOfMux[m];
      if (node == rsn::kNone || maxPos[node] == kNoPos) continue;
      if (posOf[ctrl] == kNoPos || posOf[ctrl] <= maxPos[node]) continue;
      emit("sem.ctrl-downstream", net_.mux(m).name,
           "control register '" + net_.segment(ctrl).name +
               "' lies behind mux '" + net_.mux(m).name +
               "' in scan order; reconfiguring the mux costs an extra CSU "
               "cycle after writing the register");
    }
  }

  // ---- spec.zero-weight / spec.dominance --------------------------------
  void checkSpec() {
    const rsn::CriticalitySpec& spec = *opts_.spec;
    if (spec.size() != net_.instruments().size()) {
      emit("spec.invalid", {},
           "criticality spec covers " + std::to_string(spec.size()) +
               " instruments but network '" + net_.name() + "' has " +
               std::to_string(net_.instruments().size()));
      return;
    }
    std::uint64_t sumUncObs = 0;
    std::uint64_t sumUncSet = 0;
    for (rsn::InstrumentId i = 0; i < spec.size(); ++i) {
      const rsn::DamageWeights& w = spec.of(i);
      if (!w.criticalObs) sumUncObs += w.obs;
      if (!w.criticalSet) sumUncSet += w.set;
    }
    for (rsn::InstrumentId i = 0; i < spec.size(); ++i) {
      const rsn::DamageWeights& w = spec.of(i);
      const std::string& name = net_.instrument(i).name;
      if (w.obs == 0 && w.set == 0)
        emit("spec.zero-weight", name,
             "instrument '" + name + "' has zero damage weights "
             "(do=ds=0); it cannot influence hardening decisions");
      if (w.criticalObs && w.obs < sumUncObs)
        emit("spec.dominance", name,
             "critical observability weight " + std::to_string(w.obs) +
                 " of instrument '" + name +
                 "' does not dominate the uncritical total " +
                 std::to_string(sumUncObs) +
                 "; low-damage solutions may still lose it");
      if (w.criticalSet && w.set < sumUncSet)
        emit("spec.dominance", name,
             "critical settability weight " + std::to_string(w.set) +
                 " of instrument '" + name +
                 "' does not dominate the uncritical total " +
                 std::to_string(sumUncSet) +
                 "; low-damage solutions may still lose it");
    }
  }

  const rsn::Network& net_;
  const LintOptions& opts_;
  LintResult& out_;
  rsn::GraphView gv_;
};

}  // namespace

LintResult runLint(const rsn::Network& net, const LintOptions& options) {
  RRSN_OBS_SPAN("lint.run");
  LintResult result;
  Runner(net, options, result).run();
  result.sort();
  static const obs::MetricId kFindings = obs::counter("lint.findings");
  static const obs::MetricId kErrors = obs::counter("lint.errors");
  if (!result.findings.empty())
    obs::count(kFindings, result.findings.size());
  if (result.errors != 0) obs::count(kErrors, result.errors);
  return result;
}

}  // namespace rrsn::lint

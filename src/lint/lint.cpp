// Rule registry, the lenient file pipeline, and the report writers of
// rrsn_lint.  The model-level passes live in rules.cpp, the SARIF
// export in sarif.cpp.
#include "lint/lint.hpp"

#include <algorithm>
#include <istream>
#include <sstream>
#include <tuple>

#include "support/strings.hpp"

namespace rrsn::lint {

const char* severityName(Severity s) {
  switch (s) {
    case Severity::Error: return "error";
    case Severity::Warning: return "warning";
    case Severity::Note: return "note";
  }
  return "error";
}

const std::vector<RuleInfo>& ruleRegistry() {
  // Sorted by id; findRule binary-searches.  The summary states what the
  // rule *proves* when it is silent, the fixit how to silence it.
  static const std::vector<RuleInfo> kRules = {
      {"model.invalid", Severity::Error,
       "the model satisfies every structural invariant that has no dedicated "
       "rule (root set, primitives used exactly once, instruments mirrored)",
       "the network cannot be constructed as written; see the message for the "
       "violated invariant"},
      {"parse.syntax", Severity::Error,
       "the netlist conforms to the .rsn grammar and its input limits",
       "fix the syntax at the reported line; see the grammar comment in "
       "netlist_io.hpp"},
      {"plan.unknown-primitive", Severity::Error,
       "every hardened-set entry resolves to a segment or mux of the network",
       "remove the stale entry or fix its spelling (plans list one primitive "
       "name per line)"},
      {"ready.depth", Severity::Warning,
       "the decomposition tree stays near-logarithmic, keeping per-segment "
       "criticality walks O(log n)",
       "flatten needless nesting (e.g. long sib-in-sib towers) so series "
       "chains can be rebalanced"},
      {"ready.non-sp", Severity::Warning,
       "the flat scan graph is two-terminal series-parallel, so no virtual "
       "vertices are needed for analysis",
       "restructure the reconvergent fan-out, or accept virtual-vertex "
       "insertion (clones inflate criticality counts)"},
      {"sem.ctrl-downstream", Severity::Warning,
       "every explicit (non-SIB) control register precedes its mux in scan "
       "order, so one CSU cycle both writes and applies it",
       "move the control register in front of the mux region it steers, or "
       "model the pair as a sib"},
      {"sem.ctrl-unknown", Severity::Error,
       "every mux ctrl reference names an already-declared segment",
       "declare the control register before the mux that references it"},
      {"sem.orphan-wire", Severity::Note,
       "serial chains carry no bare wires (a wire in series is a no-op)",
       "delete the wire, or put scan content in the empty body"},
      {"sem.shared-ctrl", Severity::Note,
       "each control register steers at most one mux",
       "intended sharing is fine; otherwise give each mux its own register "
       "so they reconfigure independently"},
      {"sem.unconstrained-mux", Severity::Note,
       "every mux documents its address source",
       "add ctrl=<segment> unless the mux is really steered from outside the "
       "network (e.g. TAP instruction decode)"},
      {"spec.dominance", Severity::Warning,
       "every critical damage weight dominates the sum of the uncritical "
       "weights of its kind (Sec. IV-A), so low-damage solutions necessarily "
       "keep critical instruments accessible",
       "raise the critical weight to at least the sum of all uncritical "
       "weights of the same kind"},
      {"spec.invalid", Severity::Error,
       "the criticality spec file parses and matches the network's "
       "instruments",
       "each line must read '<instrument> obs=<w>[*] set=<w>[*]' and name an "
       "instrument of this network"},
      {"spec.zero-weight", Severity::Warning,
       "every instrument carries at least one non-zero damage weight",
       "assign do/ds weights, or drop the instrument from the model — "
       "zero-weight instruments never influence hardening"},
      {"struct.confusable-names", Severity::Note,
       "no two identities differ only by letter case",
       "rename one of the pair; case-only variants invite plan/spec typos"},
      {"struct.ctrl-cycle", Severity::Error,
       "mux control dependencies are acyclic from the reset configuration, "
       "so a CSU sequence can reach every branch combination",
       "break the cycle: keep each control register on the reset-selected "
       "(branch 0) path of the muxes enclosing it"},
      {"struct.ctrl-width", Severity::Error,
       "every control register is wide enough to address all branches of its "
       "mux",
       "widen the control register to ceil(log2(branches)) bits or drop the "
       "unselectable branches"},
      {"struct.dead-sib", Severity::Warning,
       "every SIB gates at least one instrument",
       "remove the SIB or attach instruments; an empty SIB only adds length "
       "and a fault site"},
      {"struct.duplicate-branch", Severity::Warning,
       "no mux has more than one bypass (wire) branch",
       "merge duplicate wire branches; extra bypasses waste address space"},
      {"struct.duplicate-id", Severity::Error,
       "segment, mux and instrument names are unique",
       "rename one of the colliding declarations"},
      {"struct.unreachable", Severity::Error,
       "every segment lies on an active scan path of some configuration "
       "reachable from reset",
       "check the control values needed to select the segment's branch; "
       "widen narrow control registers or rewire the deadlocked controls"},
      {"struct.wire-only-mux", Severity::Error,
       "every mux selects at least one branch with scan content",
       "put a segment in some branch or remove the mux"},
  };
  return kRules;
}

const RuleInfo* findRule(const std::string& id) {
  const auto& rules = ruleRegistry();
  const auto it = std::lower_bound(
      rules.begin(), rules.end(), id,
      [](const RuleInfo& r, const std::string& key) { return key > r.id; });
  if (it == rules.end() || id != it->id) return nullptr;
  return &*it;
}

void LintResult::add(Finding f) {
  switch (f.severity) {
    case Severity::Error: ++errors; break;
    case Severity::Warning: ++warnings; break;
    case Severity::Note: ++notes; break;
  }
  findings.push_back(std::move(f));
}

void LintResult::sort() {
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return std::tie(a.line, a.ruleId, a.subject, a.message) <
                            std::tie(b.line, b.ruleId, b.subject, b.message);
                   });
}

namespace {

/// Builds a finding for `ruleId` taking severity and fixit from the
/// registry (the id must be registered).
Finding makeFinding(const char* ruleId, std::string subject,
                    std::string message, std::size_t line) {
  const RuleInfo* info = findRule(ruleId);
  RRSN_CHECK(info != nullptr, std::string("unregistered lint rule ") + ruleId);
  Finding f;
  f.ruleId = ruleId;
  f.severity = info->severity;
  f.message = std::move(message);
  f.fixit = info->fixit;
  f.subject = std::move(subject);
  f.line = line;
  return f;
}

/// Extracts N from the first "line N" in an error message (the parser
/// and spec reader format locations that way); 0 when absent.
std::size_t lineFromMessage(const std::string& msg) {
  const auto pos = msg.find("line ");
  if (pos == std::string::npos) return 0;
  std::size_t line = 0;
  bool any = false;
  for (std::size_t i = pos + 5; i < msg.size(); ++i) {
    const char c = msg[i];
    if (c < '0' || c > '9') break;
    line = line * 10 + static_cast<std::size_t>(c - '0');
    any = true;
  }
  return any ? line : 0;
}

/// First 'single-quoted' token of a message — the rejection messages all
/// quote the offending identity first.
std::string firstQuoted(const std::string& msg) {
  const auto open = msg.find('\'');
  if (open == std::string::npos) return {};
  const auto close = msg.find('\'', open + 1);
  if (close == std::string::npos) return {};
  return msg.substr(open + 1, close - open - 1);
}

const char* ruleOfValidationCode(ValidationCode code) {
  switch (code) {
    case ValidationCode::DuplicateName: return "struct.duplicate-id";
    case ValidationCode::WireOnlyMux: return "struct.wire-only-mux";
    case ValidationCode::CtrlCycle: return "struct.ctrl-cycle";
    case ValidationCode::UnknownCtrl: return "sem.ctrl-unknown";
    case ValidationCode::Generic: break;
  }
  return "model.invalid";
}

}  // namespace

std::optional<rsn::Network> parseForLint(std::istream& is,
                                         rsn::NetlistSources& sources,
                                         LintResult& result) {
  try {
    return rsn::parseNetlist(is, sources);
  } catch (const ParseError& e) {
    result.add(makeFinding("parse.syntax", {}, e.what(),
                           lineFromMessage(e.what())));
  } catch (const ValidationError& e) {
    const std::string subject = firstQuoted(e.what());
    result.add(makeFinding(ruleOfValidationCode(e.code()), subject, e.what(),
                           sources.line(subject)));
  } catch (const Error& e) {
    result.add(makeFinding("model.invalid", {}, e.what(), 0));
  }
  return std::nullopt;
}

LintedNetlist lintNetlist(std::istream& is, const LintOptions& options) {
  LintedNetlist out;
  out.net = parseForLint(is, out.sources, out.result);
  if (out.net.has_value()) {
    LintOptions withSources = options;
    if (withSources.sources == nullptr) withSources.sources = &out.sources;
    LintResult model = runLint(*out.net, withSources);
    for (Finding& f : model.findings) out.result.add(std::move(f));
  }
  out.result.sort();
  return out;
}

LintedNetlist lintNetlistText(const std::string& text,
                              const LintOptions& options) {
  std::istringstream is(text);
  return lintNetlist(is, options);
}

std::optional<rsn::CriticalitySpec> lintSpec(std::istream& is,
                                             const rsn::Network& net,
                                             LintResult& result) {
  try {
    return rsn::readSpec(is, net);
  } catch (const Error& e) {
    result.add(makeFinding("spec.invalid", firstQuoted(e.what()), e.what(),
                           lineFromMessage(e.what())));
  }
  return std::nullopt;
}

std::vector<std::string> readPlanNames(std::istream& is) {
  std::vector<std::string> names;
  std::string line;
  while (std::getline(is, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    const std::string_view name = trim(line);
    if (!name.empty()) names.emplace_back(name);
  }
  return names;
}

// --------------------------------------------------------------- reports

std::string textReport(const LintResult& result, const std::string& artifact) {
  std::ostringstream os;
  for (const Finding& f : result.findings) {
    os << artifact;
    if (f.line != 0) os << ':' << f.line;
    os << ": " << severityName(f.severity) << ": [" << f.ruleId << "] "
       << f.message << '\n';
    if (!f.fixit.empty()) os << "    fix: " << f.fixit << '\n';
  }
  os << result.errors << " error(s), " << result.warnings << " warning(s), "
     << result.notes << " note(s)\n";
  return os.str();
}

json::Value jsonReport(const LintResult& result, const std::string& artifact) {
  json::Array findings;
  for (const Finding& f : result.findings) {
    json::Object o;
    o["rule"] = f.ruleId;
    o["severity"] = severityName(f.severity);
    o["message"] = f.message;
    if (!f.fixit.empty()) o["fixit"] = f.fixit;
    if (!f.subject.empty()) o["subject"] = f.subject;
    if (f.line != 0) o["line"] = static_cast<std::uint64_t>(f.line);
    findings.emplace_back(std::move(o));
  }
  json::Object doc;
  doc["artifact"] = artifact;
  doc["errors"] = static_cast<std::uint64_t>(result.errors);
  doc["warnings"] = static_cast<std::uint64_t>(result.warnings);
  doc["notes"] = static_cast<std::uint64_t>(result.notes);
  doc["findings"] = std::move(findings);
  return json::Value(std::move(doc));
}

// ------------------------------------------------------------- fail-fast

void enforceClean(const rsn::Network& net, const std::string& context) {
  LintOptions options;
  options.errorsOnly = true;
  LintResult result = runLint(net, options);
  if (result.clean()) return;
  std::ostringstream os;
  os << context << ": network '" << net.name()
     << "' fails static verification (" << result.errors << " error(s)):";
  for (const Finding& f : result.findings) {
    if (f.severity != Severity::Error) continue;
    os << "\n  [" << f.ruleId << "] " << f.message;
  }
  os << "\n(run 'rrsn_tool lint' for the full report; pass --no-lint to "
        "skip this check)";
  throw LintError(os.str(), std::move(result));
}

}  // namespace rrsn::lint

// SARIF 2.1.0 export of lint results.
//
// Emits one run whose tool.driver carries the full rule registry
// (shortDescription = what the rule proves, help = the fix-it) and one
// result per finding.  Findings with a known source line get a
// physicalLocation region; location-less findings still carry the
// artifactLocation so viewers group them under the netlist file.  The
// json::Object map keeps keys sorted, so the serialized document is
// canonical — CI diffs SARIF artifacts byte-for-byte.
#include <string>
#include <unordered_map>

#include "lint/lint.hpp"

namespace rrsn::lint {

json::Value sarifReport(const LintResult& result,
                        const std::string& artifactUri) {
  const std::vector<RuleInfo>& registry = ruleRegistry();

  json::Array rules;
  std::unordered_map<std::string, std::size_t> ruleIndex;
  for (std::size_t i = 0; i < registry.size(); ++i) {
    const RuleInfo& r = registry[i];
    ruleIndex.emplace(r.id, i);
    json::Object rule;
    rule["id"] = r.id;
    json::Object shortDesc;
    shortDesc["text"] = r.summary;
    rule["shortDescription"] = std::move(shortDesc);
    json::Object help;
    help["text"] = r.fixit;
    rule["help"] = std::move(help);
    json::Object config;
    config["level"] = severityName(r.severity);
    rule["defaultConfiguration"] = std::move(config);
    rules.emplace_back(std::move(rule));
  }

  json::Array results;
  for (const Finding& f : result.findings) {
    json::Object res;
    res["ruleId"] = f.ruleId;
    if (const auto it = ruleIndex.find(f.ruleId); it != ruleIndex.end())
      res["ruleIndex"] = static_cast<std::uint64_t>(it->second);
    res["level"] = severityName(f.severity);
    json::Object message;
    std::string text = f.message;
    if (!f.fixit.empty()) text += " — fix: " + f.fixit;
    message["text"] = std::move(text);
    res["message"] = std::move(message);

    json::Object artifactLocation;
    artifactLocation["uri"] = artifactUri;
    json::Object physicalLocation;
    physicalLocation["artifactLocation"] = std::move(artifactLocation);
    if (f.line != 0) {
      json::Object region;
      region["startLine"] = static_cast<std::uint64_t>(f.line);
      physicalLocation["region"] = std::move(region);
    }
    json::Object location;
    location["physicalLocation"] = std::move(physicalLocation);
    res["locations"] = json::Array{json::Value(std::move(location))};
    results.emplace_back(std::move(res));
  }

  json::Object driver;
  driver["name"] = "rrsn_lint";
  driver["informationUri"] =
      "https://example.invalid/rrsn";  // repo-local tool, no public URI
  driver["version"] = "1.0.0";
  driver["rules"] = std::move(rules);
  json::Object tool;
  tool["driver"] = std::move(driver);

  json::Object run;
  run["tool"] = std::move(tool);
  run["results"] = std::move(results);

  json::Object doc;
  doc["$schema"] = "https://json.schemastore.org/sarif-2.1.0.json";
  doc["version"] = "2.1.0";
  doc["runs"] = json::Array{json::Value(std::move(run))};
  return json::Value(std::move(doc));
}

}  // namespace rrsn::lint

// SARIF 2.1.0 export of lint results, via the shared sarif::document
// builder (support/sarif.hpp).
//
// The adapter maps the rule registry to SARIF rules (shortDescription =
// what the rule proves, help = the fix-it) and each finding to one
// result; findings with a known source line get a physicalLocation
// region, location-less findings still carry the artifactLocation so
// viewers group them under the netlist file.  The serialized document is
// canonical and byte-identical to the pre-refactor emitter — CI diffs
// SARIF artifacts byte-for-byte.
#include <string>

#include "lint/lint.hpp"
#include "support/sarif.hpp"

namespace rrsn::lint {

json::Value sarifReport(const LintResult& result,
                        const std::string& artifactUri) {
  const std::vector<RuleInfo>& registry = ruleRegistry();

  std::vector<sarif::Rule> rules;
  rules.reserve(registry.size());
  for (const RuleInfo& r : registry)
    rules.push_back({r.id, r.summary, r.fixit, severityName(r.severity)});

  std::vector<sarif::Result> results;
  results.reserve(result.findings.size());
  for (const Finding& f : result.findings) {
    std::string text = f.message;
    if (!f.fixit.empty()) text += " — fix: " + f.fixit;
    results.push_back(
        {f.ruleId, severityName(f.severity), std::move(text), f.line});
  }

  const sarif::Driver driver{
      "rrsn_lint",
      "https://example.invalid/rrsn",  // repo-local tool, no public URI
      "1.0.0"};
  return sarif::document(driver, rules, results, artifactUri);
}

}  // namespace rrsn::lint

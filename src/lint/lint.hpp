// rrsn_lint: static verification of RSN models.
//
// A multi-pass checker over the typed Network model and its flat
// GraphView, running a fixed registry of rules:
//
//   * structural  — scan-path/control problems: control deadlock cycles,
//     control registers too narrow for their mux, segments that no
//     reachable configuration can place on the active scan path, dead
//     SIBs, duplicate mux branches, duplicate/confusable identities;
//   * semantic    — modeling smells: unconstrained (TAP-steered) muxes,
//     shared control registers, control registers serially behind the
//     mux they steer, orphan wires;
//   * readiness   — analysis preconditions: non-SP regions that would
//     force virtual-vertex insertion, decomposition-tree depth blowups,
//     criticality specs with zero or non-dominant weights, hardened-set
//     references to unknown primitives.
//
// Every finding carries a stable rule id, a severity, the source line of
// its subject (when the netlist parser's NetlistSources side-table is
// supplied) and a fix-it hint.  Results export as a text report, a JSON
// document, and SARIF 2.1.0 for CI ingestion.
//
// The checker is single-threaded and allocation-light by design: its
// findings are a pure function of the model, byte-identical across runs
// and thread counts, and `enforceClean` (the fail-fast hook at the head
// of the analysis/campaign/EA entry points) costs O(V + E) per control
// nesting level — microseconds on hand-written netlists.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "rsn/netlist_io.hpp"
#include "rsn/network.hpp"
#include "rsn/spec.hpp"
#include "support/error.hpp"
#include "support/json.hpp"

namespace rrsn::lint {

enum class Severity : std::uint8_t { Error, Warning, Note };

/// "error" / "warning" / "note" — also the SARIF 2.1.0 `level` strings.
const char* severityName(Severity s);

/// One diagnostic produced by a rule.
struct Finding {
  std::string ruleId;    ///< stable id, e.g. "struct.ctrl-cycle"
  Severity severity = Severity::Error;
  std::string message;   ///< what is wrong, naming the subject
  std::string fixit;     ///< how to fix it (may be empty)
  std::string subject;   ///< primitive/instrument name (may be empty)
  std::size_t line = 0;  ///< 1-based netlist line; 0 = unknown

  bool operator==(const Finding&) const = default;
};

/// Registry entry describing one rule.
struct RuleInfo {
  const char* id;
  Severity severity;
  const char* summary;  ///< what the rule proves when it stays silent
  const char* fixit;    ///< generic remediation advice
};

/// The full rule registry, sorted by id.
const std::vector<RuleInfo>& ruleRegistry();

/// Registry lookup; nullptr for unknown ids.
const RuleInfo* findRule(const std::string& id);

/// Optional side inputs of a lint run.
struct LintOptions {
  /// Criticality spec to check (spec.* rules); nullptr skips them.
  const rsn::CriticalitySpec* spec = nullptr;
  /// Hardened-set primitive names to resolve (plan.* rules).
  const std::vector<std::string>* hardenedNames = nullptr;
  /// Parser side-table resolving finding subjects to source lines.
  const rsn::NetlistSources* sources = nullptr;
  /// Only run error-severity rules (the fail-fast configuration).
  bool errorsOnly = false;
  /// Skip the SP-recognition pass above this many flat-graph vertices
  /// (the reduction is near-linear but not worth it on multi-100k-vertex
  /// networks, which are SP by construction anyway).
  std::size_t spCheckVertexCap = 50'000;
};

/// Outcome of a lint run: findings in deterministic order plus counts.
struct LintResult {
  std::vector<Finding> findings;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t notes = 0;

  bool clean() const { return errors == 0; }

  /// Appends a finding and updates the severity counts.
  void add(Finding f);

  /// Sorts findings by (line, ruleId, subject, message); called by the
  /// runners so reports are byte-stable.
  void sort();
};

/// Runs every applicable rule against a validated network.
LintResult runLint(const rsn::Network& net, const LintOptions& options = {});

/// Result of linting netlist text end to end (parse + validate + rules).
struct LintedNetlist {
  std::optional<rsn::Network> net;  ///< empty when the input was rejected
  rsn::NetlistSources sources;
  LintResult result;
};

/// Parses a netlist leniently: parser/validator rejections become
/// findings (parse.syntax, struct.duplicate-id, ...) instead of
/// exceptions, and declaration lines recorded before the rejection are
/// kept in `sources`.  Returns the network when the input is valid.
std::optional<rsn::Network> parseForLint(std::istream& is,
                                         rsn::NetlistSources& sources,
                                         LintResult& result);

/// Full pipeline over netlist text or a stream: parseForLint + runLint.
LintedNetlist lintNetlist(std::istream& is, const LintOptions& options = {});
LintedNetlist lintNetlistText(const std::string& text,
                              const LintOptions& options = {});

/// Reads a criticality spec leniently: a rejection becomes a
/// spec.invalid finding and nullopt is returned.
std::optional<rsn::CriticalitySpec> lintSpec(std::istream& is,
                                             const rsn::Network& net,
                                             LintResult& result);

/// Reads a hardened-set plan file leniently (one primitive name per
/// line, '#' comments) for the plan.* rules.  Never throws.
std::vector<std::string> readPlanNames(std::istream& is);

// ------------------------------------------------------------- reports

/// Compiler-style text report: "<artifact>:<line>: <severity>: ..."
/// plus a severity tally line.
std::string textReport(const LintResult& result, const std::string& artifact);

/// Canonical JSON document (sorted keys): findings + counts.
json::Value jsonReport(const LintResult& result, const std::string& artifact);

/// SARIF 2.1.0 document: one run, the rule registry as
/// tool.driver.rules, one result per finding with a physicalLocation
/// into `artifactUri`.
json::Value sarifReport(const LintResult& result,
                        const std::string& artifactUri);

// ----------------------------------------------------------- fail-fast

/// Thrown by enforceClean when error-severity findings exist.
class LintError : public Error {
 public:
  LintError(const std::string& what, LintResult result)
      : Error(what), result_(std::move(result)) {}
  const LintResult& result() const { return result_; }

 private:
  LintResult result_;
};

/// Fail-fast hook for analysis entry points: runs the error-severity
/// rules and throws LintError (message lists every error finding,
/// prefixed by `context`) unless the network lints clean.
void enforceClean(const rsn::Network& net, const std::string& context);

}  // namespace rrsn::lint

// Topology-style network builders used by the benchmark registry.
//
// Every builder receives the exact (segments, muxes) target and
// guarantees to hit it: a characteristic "core" is built first, then the
// remaining budget is filled with bypassable instrument segments (1 seg +
// 1 mux each) and plain instrument segments appended to the top-level
// chain.  All instrument-bearing segments get an auto-named instrument.
#pragma once

#include <cstddef>
#include <string>

#include "rsn/network.hpp"

namespace rrsn::benchgen {

/// Flat chain of bypassable instrument segments (TreeFlat: S == M).
rsn::Network makeTreeFlat(const std::string& name, std::size_t segments,
                          std::size_t muxes);

/// Deeply nested SIB chain: SIB_k's content holds an instrument segment
/// and SIB_{k+1} (TreeUnbalanced).
rsn::Network makeTreeNested(const std::string& name, std::size_t segments,
                            std::size_t muxes);

/// Balanced binary SIB tree: internal SIBs hold two child SIBs, leaf SIBs
/// hold one instrument segment (TreeBalanced).
rsn::Network makeTreeBalanced(const std::string& name, std::size_t segments,
                              std::size_t muxes);

/// Flat chain of SIBs, each gating one instrument segment (TreeFlat_Ex).
rsn::Network makeTreeFlatSib(const std::string& name, std::size_t segments,
                             std::size_t muxes);

/// ITC'02-SoC style: one bypass mux per core wrapping a chain of
/// instrument segments; every third core is nested inside its
/// predecessor (two hierarchy levels).
rsn::Network makeSoc(const std::string& name, std::size_t segments,
                     std::size_t muxes);

/// MBIST style: `controllers` top-level SIBs, the remaining muxes are
/// memory SIBs distributed round-robin below them; data registers
/// (length-8 instrument segments) are spread evenly over the memories.
rsn::Network makeMbist(const std::string& name, std::size_t segments,
                       std::size_t muxes, std::size_t controllers);

/// Million-segment scalability tier: a `fanout`-ary SIB tree over all
/// `muxes` SIBs (depth ~ log_fanout M, so control-dependency chains stay
/// realistic at 10^6 segments); every leaf SIB gates an even share of
/// the `segments - muxes` length-8 data registers, the first of which
/// carries the instrument.  Needs S >= M + leaves.
rsn::Network makeHuge(const std::string& name, std::size_t segments,
                      std::size_t muxes, std::size_t fanout);

}  // namespace rrsn::benchgen

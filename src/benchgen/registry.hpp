// Registry of the 24 Table-I benchmark networks.
//
// The original ITC'16 [22] / DATE'19 [23] IEEE-1687 benchmark files are
// not redistributable, so this module *generates* networks with exactly
// the segment and multiplexer counts Table I reports (columns 1-2), in
// the topology style each family implies:
//  * Tree*    — SIB-based trees (flat chain, deeply nested, balanced);
//  * q/a/p/t* — ITC'02-SoC-style networks: per-core bypassable wrapper
//    chains, partially nested two levels deep;
//  * MBIST_*  — SIB-gated controller -> memory -> data-register
//    hierarchies.
// Every spec also carries the paper's reported numbers (max cost/damage,
// EA generations, the two extracted solutions and runtime) so the bench
// harness can print paper-vs-measured side by side.
#pragma once

#include <string>
#include <vector>

#include "rsn/network.hpp"

namespace rrsn::benchgen {

enum class Style : std::uint8_t {
  TreeFlat,        ///< flat chain of bypassable instrument segments
  TreeNested,      ///< deeply nested SIB chain (unbalanced)
  TreeBalanced,    ///< balanced binary SIB tree
  TreeFlatSib,     ///< flat chain of SIBs, one instrument each
  Soc,             ///< per-core mux-bypassable wrapper chains
  Mbist,           ///< controller/memory SIB hierarchy
  Huge,            ///< million-segment fanout-ary SIB tree (scalability)
};

/// Values the paper reports for one Table-I row.
struct PaperRow {
  std::uint64_t maxCost = 0;        ///< col 4 (all hardened)
  std::uint64_t maxDamage = 0;      ///< col 5 (none hardened)
  std::uint64_t minCostCost = 0;    ///< col 7 (min cost, damage <= 10 %)
  std::uint64_t minCostDamage = 0;  ///< col 8
  std::uint64_t minDamageCost = 0;  ///< col 9 (min damage, cost <= 10 %)
  std::uint64_t minDamageDamage = 0;///< col 10
  const char* time = "";            ///< col 11 [m:s]
};

/// One benchmark: identity, target size, style and EA budget.
struct BenchmarkSpec {
  std::string name;
  std::size_t segments = 0;    ///< Table I col 1
  std::size_t muxes = 0;       ///< Table I col 2
  std::size_t generations = 0; ///< Table I col 6
  Style style = Style::TreeFlat;
  /// First MBIST name component (controller count); the SIB-tree fanout
  /// for Style::Huge; 0 otherwise.
  std::size_t controllers = 0;
  PaperRow paper;

  /// Sec. VI population rule: 300 when the network has more than 100
  /// muxes, 100 otherwise.
  std::size_t populationSize() const { return muxes > 100 ? 300 : 100; }
};

/// All 24 Table-I benchmarks, in the paper's row order.
const std::vector<BenchmarkSpec>& table1Benchmarks();

/// Synthetic >=10^6-segment networks for the scalability tier.  Not part
/// of Table I (no paper row); sized so the flat core, dictionary
/// sampling and campaign classification are exercised at scale.
const std::vector<BenchmarkSpec>& hugeBenchmarks();

/// Looks a spec up by name (Table I first, then the huge tier); throws
/// ParseError if unknown.
const BenchmarkSpec& findBenchmark(const std::string& name);

/// Builds the network for a spec.  Deterministic; the result has exactly
/// spec.segments segments and spec.muxes multiplexers.
rsn::Network buildBenchmark(const BenchmarkSpec& spec);

/// Convenience: findBenchmark + buildBenchmark.
rsn::Network buildBenchmark(const std::string& name);

}  // namespace rrsn::benchgen

#include "benchgen/registry.hpp"

#include "benchgen/generators.hpp"

namespace rrsn::benchgen {

namespace {

std::vector<BenchmarkSpec> makeTable() {
  std::vector<BenchmarkSpec> t;
  const auto add = [&](std::string name, std::size_t segs, std::size_t muxes,
                       std::size_t gens, Style style, std::size_t controllers,
                       PaperRow paper) {
    BenchmarkSpec s;
    s.name = std::move(name);
    s.segments = segs;
    s.muxes = muxes;
    s.generations = gens;
    s.style = style;
    s.controllers = controllers;
    s.paper = paper;
    t.push_back(std::move(s));
  };

  // Table I, in row order:           maxCost  maxDamage  c7 c8 c9 c10  time
  add("TreeFlat", 24, 24, 300, Style::TreeFlat, 0,
      {350, 502, 7, 42, 8, 26, "00:07"});
  add("TreeUnbalanced", 63, 28, 300, Style::TreeNested, 0,
      {142, 1656, 10, 155, 14, 31, "00:02"});
  add("TreeBalanced", 90, 46, 1000, Style::TreeBalanced, 0,
      {211, 4206, 18, 362, 21, 216, "00:03"});
  add("TreeFlat_Ex", 123, 60, 2000, Style::TreeFlatSib, 0,
      {289, 597, 29, 57, 28, 60, "00:04"});
  add("q12710", 47, 25, 300, Style::Soc, 0,
      {127, 576, 8, 27, 12, 19, "00:03"});
  add("a586710", 79, 47, 2000, Style::Soc, 0,
      {155, 1010, 5, 90, 15, 24, "00:15"});
  add("p34392", 245, 142, 700, Style::Soc, 0,
      {482, 7932, 8, 683, 48, 68, "00:34"});
  add("t512505", 288, 160, 1000, Style::Soc, 0,
      {713, 7146, 21, 699, 71, 121, "00:16"});
  add("p22810", 537, 283, 1000, Style::Soc, 0,
      {1298, 22911, 33, 2215, 28, 3712, "01:01"});
  add("p93791", 1241, 653, 3500, Style::Soc, 0,
      {2946, 293771, 38, 28681, 286, 561, "06:10"});
  add("MBIST_1_5_5", 113, 15, 300, Style::Mbist, 1,
      {137, 74004, 32, 7176, 13, 20799, "00:26"});
  add("MBIST_1_5_20", 1523, 15, 400, Style::Mbist, 1,
      {362, 632421, 35, 62264, 36, 60344, "02:21"});
  add("MBIST_1_20_20", 6068, 45, 500, Style::Mbist, 1,
      {1412, 8252305, 129, 801889, 137, 752261, "10:01"});
  add("MBIST_2_5_5", 1091, 28, 500, Style::Mbist, 2,
      {137, 83509, 19, 8141, 13, 12081, "03:45"});
  add("MBIST_2_5_20", 3041, 28, 700, Style::Mbist, 2,
      {362, 560484, 34, 54314, 36, 50060, "04:17"});
  add("MBIST_2_20_20", 12131, 88, 700, Style::Mbist, 2,
      {1412, 8174778, 129, 788085, 138, 722191, "08:18"});
  add("MBIST_5_5_5", 2720, 67, 500, Style::Mbist, 5,
      {411, 148811, 8, 14213, 41, 163, "01:10"});
  add("MBIST_5_20_20", 30320, 217, 900, Style::Mbist, 5,
      {385, 6175005, 127, 614605, 36, 1343502, "15:02"});
  add("MBIST_5_100_20", 151520, 1017, 200, Style::Mbist, 5,
      {7012, 203302366, 1983, 20555328, 701, 48147171, "35:17"});
  add("MBIST_5_100_100", 671520, 1017, 1500, Style::Mbist, 5,
      {93447, 2138755955ULL, 17066, 213650290, 8625, 405742391, "92:01"});
  add("MBIST_20_20_20", 121265, 862, 900, Style::Mbist, 20,
      {1412, 6175005, 131, 605065, 141, 537474, "23:40"});
  add("MBIST_55_20_5", 216305, 8102, 500, Style::Mbist, 55,
      {512, 814369, 112, 78595, 51, 208782, "05:43"});
  add("MBIST_100_20_5", 118970, 2367, 1800, Style::Mbist, 100,
      {512, 639278, 87, 63268, 51, 144057, "07:15"});
  add("MBIST_100_100_5", 1080305, 20102, 1200, Style::Mbist, 100,
      {2512, 20977832, 273, 2096139, 248, 2396324, "59:32"});
  return t;
}

std::vector<BenchmarkSpec> makeHugeTable() {
  std::vector<BenchmarkSpec> t;
  const auto add = [&](std::string name, std::size_t segs, std::size_t muxes,
                       std::size_t fanout) {
    BenchmarkSpec s;
    s.name = std::move(name);
    s.segments = segs;
    s.muxes = muxes;
    s.generations = 50;  // the EA stage is size-gated, keep the budget small
    s.style = Style::Huge;
    s.controllers = fanout;
    t.push_back(std::move(s));
  };
  // 2^20 segments in two shapes: a deep 16-ary tree (long control
  // chains) and a wide 64-ary tree (big sibling fanout).
  add("HUGE_1M", 1u << 20, 1u << 17, 16);
  add("HUGE_1M_WIDE", 1u << 20, 1u << 16, 64);
  return t;
}

}  // namespace

const std::vector<BenchmarkSpec>& table1Benchmarks() {
  static const std::vector<BenchmarkSpec> table = makeTable();
  return table;
}

const std::vector<BenchmarkSpec>& hugeBenchmarks() {
  static const std::vector<BenchmarkSpec> table = makeHugeTable();
  return table;
}

const BenchmarkSpec& findBenchmark(const std::string& name) {
  for (const BenchmarkSpec& s : table1Benchmarks())
    if (s.name == name) return s;
  for (const BenchmarkSpec& s : hugeBenchmarks())
    if (s.name == name) return s;
  throw ParseError("unknown benchmark '" + name + "'");
}

rsn::Network buildBenchmark(const BenchmarkSpec& spec) {
  rsn::Network net = [&] {
    switch (spec.style) {
      case Style::TreeFlat:
        return makeTreeFlat(spec.name, spec.segments, spec.muxes);
      case Style::TreeNested:
        return makeTreeNested(spec.name, spec.segments, spec.muxes);
      case Style::TreeBalanced:
        return makeTreeBalanced(spec.name, spec.segments, spec.muxes);
      case Style::TreeFlatSib:
        return makeTreeFlatSib(spec.name, spec.segments, spec.muxes);
      case Style::Soc:
        return makeSoc(spec.name, spec.segments, spec.muxes);
      case Style::Mbist:
        return makeMbist(spec.name, spec.segments, spec.muxes,
                         spec.controllers);
      case Style::Huge:
        return makeHuge(spec.name, spec.segments, spec.muxes,
                        spec.controllers);
    }
    throw Error("unreachable benchmark style");
  }();
  RRSN_CHECK(net.segments().size() == spec.segments,
             "generator missed the segment target for " + spec.name);
  RRSN_CHECK(net.muxes().size() == spec.muxes,
             "generator missed the mux target for " + spec.name);
  return net;
}

rsn::Network buildBenchmark(const std::string& name) {
  return buildBenchmark(findBenchmark(name));
}

}  // namespace rrsn::benchgen

#include "benchgen/generators.hpp"

#include <algorithm>

#include "rsn/builder.hpp"

namespace rrsn::benchgen {

using rsn::NetworkBuilder;

namespace {

/// Tracks the remaining primitive budget while a builder assembles the
/// network, and provides the standard filler units.
class Budget {
 public:
  Budget(NetworkBuilder& b, std::size_t segments, std::size_t muxes)
      : b_(&b), segLeft_(segments), muxLeft_(muxes) {}

  std::size_t segLeft() const { return segLeft_; }
  std::size_t muxLeft() const { return muxLeft_; }

  void takeSeg(std::size_t n = 1) {
    RRSN_CHECK(segLeft_ >= n, "generator exceeded its segment budget");
    segLeft_ -= n;
  }
  void takeMux(std::size_t n = 1) {
    RRSN_CHECK(muxLeft_ >= n, "generator exceeded its mux budget");
    muxLeft_ -= n;
  }

  /// Plain instrument segment.
  NetworkBuilder::Handle instrumentSeg(const std::string& base,
                                       std::uint32_t length) {
    takeSeg();
    const std::string id = base + std::to_string(counter_++);
    return b_->segment("seg_" + id, length, "i_" + id);
  }

  /// Plain scan segment without an instrument (e.g. a deep MBIST data
  /// register that is only a pipeline stage of the interface).
  NetworkBuilder::Handle plainSeg(const std::string& base,
                                  std::uint32_t length) {
    takeSeg();
    const std::string id = base + std::to_string(counter_++);
    return b_->segment("seg_" + id, length);
  }

  /// Bypassable instrument segment: mux{seg | wire} — 1 seg + 1 mux.
  NetworkBuilder::Handle muxUnit(std::uint32_t length) {
    takeMux();
    const auto seg = instrumentSeg("u", length);
    const std::string id = std::to_string(counter_++);
    return b_->mux("mx_" + id, {seg, b_->wire()});
  }

  /// SIB around `content` — 1 seg + 1 mux.
  NetworkBuilder::Handle sib(NetworkBuilder::Handle content) {
    takeSeg();
    takeMux();
    return b_->sib("sib_" + std::to_string(counter_++), content);
  }

  /// Exhausts the remaining budget: muxLeft bypass units followed by the
  /// remaining plain segments.  Appends to `parts`.
  void fill(std::vector<NetworkBuilder::Handle>& parts, std::uint32_t length) {
    RRSN_CHECK(segLeft_ >= muxLeft_,
               "budget cannot be filled: more muxes than segments left");
    while (muxLeft_ > 0) parts.push_back(muxUnit(length));
    while (segLeft_ > 0) parts.push_back(instrumentSeg("f", length));
  }

 private:
  NetworkBuilder* b_;
  std::size_t segLeft_;
  std::size_t muxLeft_;
  std::size_t counter_ = 0;
};

rsn::Network finish(NetworkBuilder& b, Budget& budget,
                    std::vector<NetworkBuilder::Handle> parts,
                    std::uint32_t fillLength = 8) {
  budget.fill(parts, fillLength);
  RRSN_CHECK(!parts.empty(), "benchmark generator produced an empty network");
  b.setTop(b.chain(std::move(parts)));
  return b.build();
}

}  // namespace

rsn::Network makeTreeFlat(const std::string& name, std::size_t segments,
                          std::size_t muxes) {
  NetworkBuilder b(name);
  Budget budget(b, segments, muxes);
  std::vector<NetworkBuilder::Handle> parts;
  // The whole network is filler by design: S bypassable segments when
  // S == M, plus plain segments otherwise.
  return finish(b, budget, std::move(parts));
}

rsn::Network makeTreeNested(const std::string& name, std::size_t segments,
                            std::size_t muxes) {
  NetworkBuilder b(name);
  Budget budget(b, segments, muxes);
  // Innermost first: each SIB holds [instrument segment, inner SIB].
  // Uses all muxes; leaves segments - 2*muxes for padding.
  RRSN_CHECK(segments >= 2 * muxes, "TreeNested needs S >= 2M");
  NetworkBuilder::Handle inner = budget.instrumentSeg("leaf", 8);
  for (std::size_t level = 0; level < muxes; ++level) {
    std::vector<NetworkBuilder::Handle> content{inner};
    if (level + 1 < muxes) {
      // One instrument segment per level keeps the chain "unbalanced"
      // rather than a pure bypass ladder.
      content.insert(content.begin(), budget.instrumentSeg("lvl", 8));
    }
    inner = budget.sib(content.size() == 1 ? content[0]
                                           : b.chain(std::move(content)));
  }
  return finish(b, budget, {inner});
}

namespace {

/// Recursive balanced SIB tree over `count` SIBs; leaves gate one
/// instrument segment each.
NetworkBuilder::Handle balancedSibTree(NetworkBuilder& b, Budget& budget,
                                       std::size_t count) {
  if (count == 1) return budget.sib(budget.instrumentSeg("leaf", 8));
  const std::size_t left = count / 2;
  const std::size_t right = count - 1 - left;
  std::vector<NetworkBuilder::Handle> content;
  if (left > 0) content.push_back(balancedSibTree(b, budget, left));
  if (right > 0) content.push_back(balancedSibTree(b, budget, right));
  return budget.sib(content.size() == 1 ? content[0]
                                        : b.chain(std::move(content)));
}

}  // namespace

rsn::Network makeTreeBalanced(const std::string& name, std::size_t segments,
                              std::size_t muxes) {
  NetworkBuilder b(name);
  Budget budget(b, segments, muxes);
  // Use ~2/3 of the muxes for the balanced SIB tree, pad the rest.
  const std::size_t treeSibs = std::max<std::size_t>(1, (2 * muxes) / 3);
  std::vector<NetworkBuilder::Handle> parts{
      balancedSibTree(b, budget, treeSibs)};
  return finish(b, budget, std::move(parts));
}

rsn::Network makeTreeFlatSib(const std::string& name, std::size_t segments,
                             std::size_t muxes) {
  NetworkBuilder b(name);
  Budget budget(b, segments, muxes);
  RRSN_CHECK(segments >= 2 * muxes, "TreeFlatSib needs S >= 2M");
  std::vector<NetworkBuilder::Handle> parts;
  for (std::size_t k = 0; k < muxes; ++k)
    parts.push_back(budget.sib(budget.instrumentSeg("tdr", 8)));
  return finish(b, budget, std::move(parts));
}

rsn::Network makeSoc(const std::string& name, std::size_t segments,
                     std::size_t muxes) {
  NetworkBuilder b(name);
  Budget budget(b, segments, muxes);
  RRSN_CHECK(segments >= muxes, "Soc needs S >= M");

  // Distribute all segments over M cores; every third core nests inside
  // its predecessor, giving two hierarchy levels.
  const std::size_t cores = muxes;
  const std::size_t base = segments / cores;
  const std::size_t extra = segments % cores;
  const auto coreWidth = [&](std::size_t k) {
    return base + (k < extra ? 1 : 0);
  };
  // Deterministic wrapper-chain lengths: 4..32 cells cycling.
  const auto segLen = [](std::size_t k) {
    return static_cast<std::uint32_t>(4 + 7 * (k % 5));
  };

  std::vector<NetworkBuilder::Handle> parts;
  std::size_t k = 0;
  std::size_t segIdx = 0;
  while (k < cores) {
    // Build a group: core k, optionally with core k+1 nested inside.
    const auto buildCore = [&](std::size_t idx,
                               NetworkBuilder::Handle nested,
                               bool hasNested) {
      std::vector<NetworkBuilder::Handle> chain;
      for (std::size_t s = 0; s < coreWidth(idx); ++s)
        chain.push_back(budget.instrumentSeg("w", segLen(segIdx++)));
      if (hasNested) chain.push_back(nested);
      budget.takeMux();
      NetworkBuilder::Handle body =
          chain.empty() ? b.wire()
                        : (chain.size() == 1 ? chain[0]
                                             : b.chain(std::move(chain)));
      return b.mux("core_" + std::to_string(idx),
                   {body, b.wire()});
    };
    if (k + 1 < cores && k % 3 == 0) {
      const auto innerCore = buildCore(k + 1, {}, false);
      parts.push_back(buildCore(k, innerCore, true));
      k += 2;
    } else {
      parts.push_back(buildCore(k, {}, false));
      k += 1;
    }
  }
  return finish(b, budget, std::move(parts), 4);
}

rsn::Network makeMbist(const std::string& name, std::size_t segments,
                       std::size_t muxes, std::size_t controllers) {
  NetworkBuilder b(name);
  Budget budget(b, segments, muxes);
  controllers = std::min(controllers == 0 ? 1 : controllers, muxes);
  const std::size_t memories = muxes - controllers;
  const std::size_t data = segments - muxes;  // SIB regs take one seg each
  RRSN_CHECK(segments >= muxes, "Mbist needs S >= M");
  RRSN_CHECK(memories == 0 || data >= memories,
             "Mbist needs at least one data register per memory");

  // Memory SIB m holds dataOf(m) length-8 data registers.
  const std::size_t memBase = memories == 0 ? 0 : data / memories;
  const std::size_t memExtra = memories == 0 ? 0 : data % memories;
  const auto dataOf = [&](std::size_t m) {
    return memBase + (m < memExtra ? 1 : 0);
  };

  std::vector<NetworkBuilder::Handle> parts;
  std::size_t mem = 0;
  for (std::size_t c = 0; c < controllers; ++c) {
    const std::size_t memCount =
        memories / controllers + (c < memories % controllers ? 1 : 0);
    std::vector<NetworkBuilder::Handle> content;
    for (std::size_t j = 0; j < memCount; ++j, ++mem) {
      // A memory exposes its MBIST interface as one instrument (the
      // status/result register); the remaining registers of the chain
      // are plain pipeline stages of the interface.  This matches the
      // instrument-per-memory granularity of the ITC'16 MBIST networks.
      std::vector<NetworkBuilder::Handle> regs;
      const std::size_t interfaceRegs = std::min<std::size_t>(1, dataOf(mem));
      for (std::size_t d = 0; d < dataOf(mem); ++d) {
        regs.push_back(d < interfaceRegs ? budget.instrumentSeg("d", 8)
                                         : budget.plainSeg("r", 8));
      }
      content.push_back(budget.sib(
          regs.size() == 1 ? regs[0] : b.chain(std::move(regs))));
    }
    if (content.empty()) {
      // Controller without memories: gate one status register so the SIB
      // is not wire-only.
      content.push_back(budget.instrumentSeg("st", 8));
    }
    parts.push_back(budget.sib(
        content.size() == 1 ? content[0] : b.chain(std::move(content))));
  }
  return finish(b, budget, std::move(parts));
}

namespace {

/// Leaf count of the `count`-SIB huge tree under the same partition the
/// builder below uses (root SIB + rest split into <= fanout groups).
std::size_t hugeLeaves(std::size_t count, std::size_t fanout) {
  if (count == 1) return 1;
  const std::size_t rest = count - 1;
  const std::size_t groups = std::min(fanout, rest);
  std::size_t leaves = 0;
  for (std::size_t g = 0; g < groups; ++g)
    leaves += hugeLeaves(rest / groups + (g < rest % groups ? 1 : 0), fanout);
  return leaves;
}

}  // namespace

rsn::Network makeHuge(const std::string& name, std::size_t segments,
                      std::size_t muxes, std::size_t fanout) {
  NetworkBuilder b(name);
  Budget budget(b, segments, muxes);
  fanout = std::max<std::size_t>(2, fanout);
  RRSN_CHECK(muxes >= 1, "Huge needs at least one SIB");
  RRSN_CHECK(segments >= muxes, "Huge needs S >= M");
  const std::size_t data = segments - muxes;  // SIB regs take one seg each
  const std::size_t leaves = hugeLeaves(muxes, fanout);
  RRSN_CHECK(data >= leaves, "Huge needs one data register per leaf SIB");
  const std::size_t leafBase = data / leaves;
  const std::size_t leafExtra = data % leaves;

  std::size_t leafIdx = 0;
  const auto tree = [&](auto&& self,
                        std::size_t count) -> NetworkBuilder::Handle {
    if (count == 1) {
      // Leaf SIB: a chain of data registers, instrument on the first
      // (one instrument per leaf, like the MBIST interface granularity).
      const std::size_t regs = leafBase + (leafIdx < leafExtra ? 1 : 0);
      leafIdx += 1;
      std::vector<NetworkBuilder::Handle> chain;
      chain.reserve(regs);
      for (std::size_t d = 0; d < regs; ++d)
        chain.push_back(d == 0 ? budget.instrumentSeg("d", 8)
                               : budget.plainSeg("r", 8));
      return budget.sib(chain.size() == 1 ? chain[0]
                                          : b.chain(std::move(chain)));
    }
    const std::size_t rest = count - 1;
    const std::size_t groups = std::min(fanout, rest);
    std::vector<NetworkBuilder::Handle> content;
    content.reserve(groups);
    for (std::size_t g = 0; g < groups; ++g)
      content.push_back(
          self(self, rest / groups + (g < rest % groups ? 1 : 0)));
    return budget.sib(content.size() == 1 ? content[0]
                                          : b.chain(std::move(content)));
  };
  std::vector<NetworkBuilder::Handle> parts{tree(tree, muxes)};
  return finish(b, budget, std::move(parts));
}

}  // namespace rrsn::benchgen

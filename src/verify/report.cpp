// Report surfaces of the static certifier: CLI tables, canonical JSON
// and SARIF 2.1.0 (via the shared support/sarif emitter).  Everything
// here is a pure function of the CertificationResult, so byte-equality
// of two serialized reports proves certification determinism.
#include <algorithm>
#include <string>
#include <utility>

#include "fault/fault.hpp"
#include "support/sarif.hpp"
#include "verify/certifier.hpp"

namespace rrsn::verify {

namespace {

/// Resolves a witness subject to a primitive name.  The subject id
/// space is kind-dependent (see Witness), and the GuardCut subject is
/// the faulty primitive itself — a segment for breaks, a mux for
/// stucks.
std::string subjectName(const rsn::Network& net, const fault::Fault& f,
                        const Witness& w) {
  if (w.subject == rsn::kNone) return "";
  switch (w.kind) {
    case WitnessKind::SelfFault:
    case WitnessKind::DominatorCut:
    case WitnessKind::Unreachable:
      return net.segment(w.subject).name;
    case WitnessKind::ControlCollapse:
      return net.mux(w.subject).name;
    case WitnessKind::GuardCut:
      return f.kind == fault::FaultKind::SegmentBreak
                 ? net.segment(w.subject).name
                 : net.mux(w.subject).name;
    default:
      return "";
  }
}

std::string witnessText(const rsn::Network& net, const fault::Fault& f,
                        const Witness& w) {
  std::string text = witnessKindName(w.kind);
  const std::string subject = subjectName(net, f, w);
  if (!subject.empty()) text += "(" + subject + ")";
  return text;
}

/// One itemized problem cell: a (fault, instrument) pair with a
/// Vulnerable or Unknown verdict in either direction.
struct ProblemCell {
  std::size_t faultIdx = 0;
  std::size_t inst = 0;
};

rsn::InstrumentId instId(std::size_t i) {
  return static_cast<rsn::InstrumentId>(i);
}

template <typename Fn>
void forEachProblemCell(const CertificationResult& result, Fn&& fn) {
  for (std::size_t fi = 0; fi < result.universe.size(); ++fi) {
    for (std::size_t i = 0; i < result.instruments; ++i) {
      if (result.read(fi, i) != Verdict::Proven ||
          result.write(fi, i) != Verdict::Proven)
        fn(ProblemCell{fi, i});
    }
  }
}

}  // namespace

TextTable summaryTable(const CertifySummary& s) {
  TextTable t({"dir", "proven", "vulnerable", "unknown", "pairs"});
  t.setAlign(0, TextTable::Align::Left);
  t.addRow({"read", withThousands(std::uint64_t{s.provenRead}),
            withThousands(std::uint64_t{s.vulnerableRead}),
            withThousands(std::uint64_t{s.unknownRead}),
            withThousands(std::uint64_t{s.faults * s.instruments})});
  t.addRow({"write", withThousands(std::uint64_t{s.provenWrite}),
            withThousands(std::uint64_t{s.vulnerableWrite}),
            withThousands(std::uint64_t{s.unknownWrite}),
            withThousands(std::uint64_t{s.faults * s.instruments})});
  return t;
}

TextTable vulnerabilityTable(const rsn::Network& net,
                             const CertificationResult& result,
                             std::size_t limit) {
  TextTable t({"fault", "instrument", "read", "write", "witness"});
  t.setAlign(0, TextTable::Align::Left);
  t.setAlign(1, TextTable::Align::Left);
  t.setAlign(4, TextTable::Align::Left);
  forEachProblemCell(result, [&](const ProblemCell& c) {
    if (t.rowCount() >= limit) return;
    const fault::Fault& f = result.universe[c.faultIdx];
    const Verdict rv = result.read(c.faultIdx, c.inst);
    const Verdict wv = result.write(c.faultIdx, c.inst);
    // Show the witness of the losing direction (read first).
    const Witness w = rv != Verdict::Proven
                          ? result.readWitness(c.faultIdx, c.inst)
                          : result.writeWitness(c.faultIdx, c.inst);
    t.addRow({fault::describe(net, f), net.instrument(instId(c.inst)).name,
              std::string(1, toChar(rv)), std::string(1, toChar(wv)),
              witnessText(net, f, w)});
  });
  return t;
}

json::Value reportJson(const rsn::Network& net,
                       const CertificationResult& result) {
  const CertifySummary s = result.summary();

  json::Object summary;
  summary["instruments"] = static_cast<std::uint64_t>(s.instruments);
  summary["faults"] = static_cast<std::uint64_t>(s.faults);
  summary["reachable_instruments"] =
      static_cast<std::uint64_t>(s.reachableInstruments);
  summary["proven_read"] = static_cast<std::uint64_t>(s.provenRead);
  summary["proven_write"] = static_cast<std::uint64_t>(s.provenWrite);
  summary["vulnerable_read"] = static_cast<std::uint64_t>(s.vulnerableRead);
  summary["vulnerable_write"] = static_cast<std::uint64_t>(s.vulnerableWrite);
  summary["unknown_read"] = static_cast<std::uint64_t>(s.unknownRead);
  summary["unknown_write"] = static_cast<std::uint64_t>(s.unknownWrite);
  summary["fast_rows"] = static_cast<std::uint64_t>(s.fastRows);
  summary["fixpoint_rows"] = static_cast<std::uint64_t>(s.fixpointRows);
  summary["control_collapse_cells"] =
      static_cast<std::uint64_t>(s.controlCollapseCells);
  summary["crosschecked_rows"] =
      static_cast<std::uint64_t>(s.crossCheckedRows);

  std::string reachable(result.instruments, '0');
  for (std::size_t i = 0; i < result.instruments; ++i)
    if (result.reachable.test(i)) reachable[i] = '1';

  json::Array faults;
  for (std::size_t fi = 0; fi < result.universe.size(); ++fi) {
    json::Object row;
    row["fault"] = fault::describe(net, result.universe[fi]);
    row["read"] = result.readRow(fi);
    row["write"] = result.writeRow(fi);
    faults.emplace_back(std::move(row));
  }

  json::Array witnesses;
  forEachProblemCell(result, [&](const ProblemCell& c) {
    const fault::Fault& f = result.universe[c.faultIdx];
    json::Object item;
    item["fault"] = fault::describe(net, f);
    item["instrument"] = net.instrument(instId(c.inst)).name;
    const Verdict rv = result.read(c.faultIdx, c.inst);
    const Verdict wv = result.write(c.faultIdx, c.inst);
    item["read"] = std::string(1, toChar(rv));
    item["write"] = std::string(1, toChar(wv));
    if (rv != Verdict::Proven)
      item["read_witness"] =
          witnessText(net, f, result.readWitness(c.faultIdx, c.inst));
    if (wv != Verdict::Proven)
      item["write_witness"] =
          witnessText(net, f, result.writeWitness(c.faultIdx, c.inst));
    witnesses.emplace_back(std::move(item));
  });

  json::Object doc;
  doc["design"] = net.name();
  doc["summary"] = std::move(summary);
  doc["reachable"] = std::move(reachable);
  doc["faults"] = std::move(faults);
  doc["witnesses"] = std::move(witnesses);
  return json::Value(std::move(doc));
}

json::Value sarifReport(const rsn::Network& net,
                        const CertificationResult& result,
                        const std::string& artifactUri) {
  const std::vector<sarif::Rule> rules = {
      {"verify.control-safety",
       "a gating control register keeps an access path under every "
       "single fault",
       "re-route the control register or duplicate the scan path that "
       "feeds it",
       "warning"},
      {"verify.single-fault",
       "every instrument stays accessible under every single structural "
       "fault",
       "harden the severing primitive or add a redundant scan path "
       "around it",
       "warning"},
      {"verify.unknown",
       "the certifier reached a verdict within its fixpoint budget",
       "raise the fixpoint budget (the control nesting exceeds it)",
       "warning"},
      {"verify.unreachable",
       "a satisfiable control assignment puts the instrument on the "
       "active scan path",
       "fix the control structure so the hosting segment becomes "
       "selectable", "error"},
  };

  std::vector<sarif::Result> results;
  for (std::size_t i = 0; i < result.instruments; ++i) {
    if (result.reachable.test(i)) continue;
    results.push_back({"verify.unreachable", "error",
                       "instrument '" + net.instrument(instId(i)).name +
                           "' is inaccessible under every control "
                           "assignment",
                       0});
  }
  forEachProblemCell(result, [&](const ProblemCell& c) {
    const fault::Fault& f = result.universe[c.faultIdx];
    const Verdict rv = result.read(c.faultIdx, c.inst);
    const Verdict wv = result.write(c.faultIdx, c.inst);
    if (rv == Verdict::Unknown || wv == Verdict::Unknown) {
      results.push_back({"verify.unknown", "warning",
                         "verdict for instrument '" +
                             net.instrument(instId(c.inst)).name + "' under " +
                             fault::describe(net, f) +
                             " exceeded the fixpoint budget",
                         0});
      return;
    }
    const Witness w = rv != Verdict::Proven
                          ? result.readWitness(c.faultIdx, c.inst)
                          : result.writeWitness(c.faultIdx, c.inst);
    // Unreachable cells are covered once by the per-instrument
    // verify.unreachable result above — repeating them per fault would
    // drown the actionable findings.
    if (w.kind == WitnessKind::Unreachable) return;
    const char* rule = w.kind == WitnessKind::ControlCollapse
                           ? "verify.control-safety"
                           : "verify.single-fault";
    const char* dir = rv != Verdict::Proven && wv != Verdict::Proven
                          ? "read/write"
                          : (rv != Verdict::Proven ? "read" : "write");
    results.push_back({rule, "warning",
                       fault::describe(net, f) + " severs every " +
                           std::string(dir) + " access to instrument '" +
                           net.instrument(instId(c.inst)).name +
                           "' — witness: " + witnessText(net, f, w),
                       0});
  });

  const sarif::Driver driver{
      "rrsn_verify",
      "https://example.invalid/rrsn",  // repo-local tool, no public URI
      "1.0.0"};
  return sarif::document(driver, rules, results, artifactUri);
}

}  // namespace rrsn::verify

#include "verify/certifier.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "campaign/campaign.hpp"
#include "diag/batched.hpp"
#include "obs/obs.hpp"
#include "support/error.hpp"
#include "support/parallel.hpp"

namespace rrsn::verify {

namespace {

const obs::MetricId kCertifyCalls = obs::counter("verify.certify_calls");
const obs::MetricId kRowsFast = obs::counter("verify.rows_fast");
const obs::MetricId kRowsFixpoint = obs::counter("verify.rows_fixpoint");
const obs::MetricId kCellsUnknown = obs::counter("verify.cells_unknown");
const obs::MetricId kRowsCrossChecked =
    obs::counter("verify.rows_crosschecked");
const obs::MetricId kUniverseFaults = obs::histogram("verify.universe_faults");

constexpr std::uint16_t packCell(Verdict r, WitnessKind rk, Verdict w,
                                 WitnessKind wk) {
  return static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(r) | (static_cast<std::uint16_t>(w) << 2) |
      (static_cast<std::uint16_t>(rk) << 4) |
      (static_cast<std::uint16_t>(wk) << 8));
}

constexpr std::uint16_t kUnknownCell =
    packCell(Verdict::Unknown, WitnessKind::Budget, Verdict::Unknown,
             WitnessKind::Budget);

/// Nearest-common-dominator walk of the Cooper–Harvey–Kennedy scheme,
/// parameterized on the rank order (topological for dominators,
/// reverse-topological for post-dominators).
graph::VertexId intersect(graph::VertexId a, graph::VertexId b,
                          const std::vector<graph::VertexId>& idom,
                          const std::vector<std::uint32_t>& rank) {
  while (a != b) {
    while (rank[a] > rank[b]) a = idom[a];
    while (rank[b] > rank[a]) b = idom[b];
  }
  return a;
}

/// DFS entry/exit numbering of an idom tree: `a` dominates `v` iff
/// tin[a] <= tin[v] && tout[v] <= tout[a].  Vertices outside the tree
/// keep tin = 0, which no ancestor test matches.
void domIntervals(const std::vector<graph::VertexId>& idom,
                  graph::VertexId root, std::vector<std::uint32_t>& tin,
                  std::vector<std::uint32_t>& tout) {
  const std::size_t vertices = idom.size();
  tin.assign(vertices, 0);
  tout.assign(vertices, 0);
  std::vector<std::uint32_t> offsets(vertices + 1, 0);
  for (std::size_t v = 0; v < vertices; ++v)
    if (v != root && idom[v] != graph::kNoVertex) ++offsets[idom[v] + 1];
  for (std::size_t v = 0; v < vertices; ++v) offsets[v + 1] += offsets[v];
  std::vector<graph::VertexId> children(offsets[vertices]);
  std::vector<std::uint32_t> fill(offsets.begin(), offsets.end() - 1);
  for (std::size_t v = 0; v < vertices; ++v)
    if (v != root && idom[v] != graph::kNoVertex)
      children[fill[idom[v]]++] = static_cast<graph::VertexId>(v);

  std::uint32_t clock = 0;
  std::vector<std::pair<graph::VertexId, std::uint32_t>> stack;
  stack.reserve(64);
  stack.emplace_back(root, offsets[root]);
  tin[root] = ++clock;
  while (!stack.empty()) {
    const graph::VertexId v = stack.back().first;
    const std::uint32_t next = stack.back().second;
    if (next < offsets[v + 1]) {
      ++stack.back().second;  // advance before the push invalidates back()
      const graph::VertexId c = children[next];
      tin[c] = ++clock;
      stack.emplace_back(c, offsets[c]);
    } else {
      tout[v] = clock;
      stack.pop_back();
    }
  }
}

}  // namespace

char toChar(Verdict v) {
  switch (v) {
    case Verdict::Proven:
      return 'P';
    case Verdict::Vulnerable:
      return 'V';
    case Verdict::Unknown:
      return 'U';
  }
  return '?';
}

Verdict verdictFromChar(char c) {
  switch (c) {
    case 'P':
      return Verdict::Proven;
    case 'V':
      return Verdict::Vulnerable;
    case 'U':
      return Verdict::Unknown;
    default:
      throw Error(std::string("unknown verdict character '") + c + "'");
  }
}

const char* witnessKindName(WitnessKind k) {
  switch (k) {
    case WitnessKind::None:
      return "none";
    case WitnessKind::NonCut:
      return "non-cut";
    case WitnessKind::StuckBenign:
      return "stuck-benign";
    case WitnessKind::PathStrict:
      return "path-strict";
    case WitnessKind::PathCleanSuffix:
      return "path-clean-suffix";
    case WitnessKind::PathDepthBounded:
      return "path-depth-bounded";
    case WitnessKind::SelfFault:
      return "self-fault";
    case WitnessKind::Unreachable:
      return "unreachable";
    case WitnessKind::DominatorCut:
      return "dominator-cut";
    case WitnessKind::ControlCollapse:
      return "control-collapse";
    case WitnessKind::GuardCut:
      return "guard-cut";
    case WitnessKind::Budget:
      return "budget";
  }
  return "?";
}

bool crossCheckDefault() {
#ifdef NDEBUG
  constexpr bool kDefault = false;
#else
  constexpr bool kDefault = true;
#endif
  const char* text = std::getenv("RRSN_CERTIFY_MODE");
  if (text == nullptr || *text == '\0') return kDefault;
  const std::string v(text);
  if (v == "fast") return false;
  if (v == "checked") return true;
  static std::atomic<bool> warned{false};
  if (!warned.exchange(true)) {
    std::fprintf(stderr,
                 "rrsn: RRSN_CERTIFY_MODE='%s' is not fast|checked; "
                 "using '%s'\n",
                 text, kDefault ? "checked" : "fast");
  }
  return kDefault;
}

// --------------------------------------------------------------- result

Witness CertificationResult::witnessAt(std::size_t faultIdx, std::size_t inst,
                                       bool isRead) const {
  const std::uint16_t c = cell(faultIdx, inst);
  const auto kind =
      static_cast<WitnessKind>((c >> (isRead ? 4 : 8)) & 0xFu);
  std::uint32_t subject = rsn::kNone;
  switch (kind) {
    case WitnessKind::SelfFault:
    case WitnessKind::DominatorCut:
    case WitnessKind::GuardCut:
      subject = universe[faultIdx].prim;
      break;
    case WitnessKind::Unreachable:
      subject = instrumentSegment[inst];
      break;
    case WitnessKind::ControlCollapse:
      subject = collapsedMux[faultIdx];
      break;
    default:
      break;
  }
  return {kind, subject};
}

Witness CertificationResult::readWitness(std::size_t faultIdx,
                                         std::size_t inst) const {
  return witnessAt(faultIdx, inst, /*isRead=*/true);
}

Witness CertificationResult::writeWitness(std::size_t faultIdx,
                                          std::size_t inst) const {
  return witnessAt(faultIdx, inst, /*isRead=*/false);
}

std::string CertificationResult::readRow(std::size_t faultIdx) const {
  std::string row(instruments, '?');
  for (std::size_t i = 0; i < instruments; ++i) row[i] = toChar(read(faultIdx, i));
  return row;
}

std::string CertificationResult::writeRow(std::size_t faultIdx) const {
  std::string row(instruments, '?');
  for (std::size_t i = 0; i < instruments; ++i)
    row[i] = toChar(write(faultIdx, i));
  return row;
}

CertifySummary CertificationResult::summary() const {
  CertifySummary s;
  s.instruments = instruments;
  s.faults = universe.size();
  s.reachableInstruments = reachable.count();
  s.fastRows = fastRowCount;
  s.fixpointRows = fixpointRowCount;
  s.crossCheckedRows = crossCheckedRowCount;
  for (std::size_t fi = 0; fi < universe.size(); ++fi) {
    for (std::size_t i = 0; i < instruments; ++i) {
      const std::uint16_t c = cell(fi, i);
      switch (static_cast<Verdict>(c & 3u)) {
        case Verdict::Proven:
          ++s.provenRead;
          break;
        case Verdict::Vulnerable:
          ++s.vulnerableRead;
          break;
        case Verdict::Unknown:
          ++s.unknownRead;
          break;
      }
      switch (static_cast<Verdict>((c >> 2) & 3u)) {
        case Verdict::Proven:
          ++s.provenWrite;
          break;
        case Verdict::Vulnerable:
          ++s.vulnerableWrite;
          break;
        case Verdict::Unknown:
          ++s.unknownWrite;
          break;
      }
      if (static_cast<WitnessKind>((c >> 4) & 0xFu) ==
          WitnessKind::ControlCollapse)
        ++s.controlCollapseCells;
      if (static_cast<WitnessKind>((c >> 8) & 0xFu) ==
          WitnessKind::ControlCollapse)
        ++s.controlCollapseCells;
    }
  }
  return s;
}

// ------------------------------------------------------------- scratch

struct Certifier::Scratch {
  std::vector<std::uint64_t> sel;
  DynamicBitset inStrict, outStrict, inRead, outWrite;
  DynamicBitset cleanToOut, cleanFromB, bwdFromB;
  std::vector<graph::VertexId> queue;
  DynamicBitset obs, set;
  std::vector<std::uint8_t> obsMode, setMode;  ///< WitnessKind per inst
  std::uint32_t collapsedMux = rsn::kNone;

  void init(const sim::ControlView& cv) {
    sel.assign(cv.selWordCount, 0);
    inStrict = DynamicBitset(cv.vertexCount);
    outStrict = DynamicBitset(cv.vertexCount);
    inRead = DynamicBitset(cv.vertexCount);
    outWrite = DynamicBitset(cv.vertexCount);
    cleanToOut = DynamicBitset(cv.vertexCount);
    cleanFromB = DynamicBitset(cv.vertexCount);
    bwdFromB = DynamicBitset(cv.vertexCount);
    obs = DynamicBitset(cv.instrumentVertex.size());
    set = DynamicBitset(cv.instrumentVertex.size());
    obsMode.assign(cv.instrumentVertex.size(), 0);
    setMode.assign(cv.instrumentVertex.size(), 0);
  }
};

// ----------------------------------------------------------- certifier

Certifier::Certifier(const rsn::Network& net)
    : Certifier(rsn::FlatNetwork::lower(net)) {}

Certifier::Certifier(std::shared_ptr<const rsn::FlatNetwork> flat)
    : cv_(sim::ControlView::project(std::move(flat))) {
  buildBase();
}

void Certifier::sweep(bool forward, const std::uint64_t* sel, bool tolerate,
                      graph::VertexId brokenV, graph::VertexId source,
                      bool avoidCtrlRegs, DynamicBitset& visited,
                      std::vector<graph::VertexId>& queue) const {
  // A plain FIFO worklist — deliberately *not* the oracle's direction-
  // optimizing hybrid BFS.  Both compute the same traversal-order-
  // independent closure, so the engines stay independent implementations
  // of one definition (the cross-check leans on exactly that).
  const auto& outOff = forward ? cv_.fwdOffsets : cv_.bwdOffsets;
  const auto& outEdges = forward ? cv_.fwdEdges : cv_.bwdEdges;
  if (source == graph::kNoVertex) source = forward ? cv_.scanIn : cv_.scanOut;
  visited.clearAll();
  visited.set(source);
  queue.clear();
  queue.push_back(source);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const graph::VertexId v = queue[head];
    for (std::uint32_t i = outOff[v]; i < outOff[v + 1]; ++i) {
      const sim::ControlView::Edge& e = outEdges[i];
      const graph::VertexId u = e.other;
      if (visited.test(u)) continue;
      if (!tolerate && u == brokenV) continue;
      if (avoidCtrlRegs && cv_.ctrlRegVertex[u] != 0) continue;
      if (!cv_.edgeOpen(e, sel)) continue;
      visited.set(u);
      queue.push_back(u);
    }
  }
}

bool Certifier::controlFixpoint(const fault::Fault* f, graph::VertexId brokenV,
                                std::uint64_t* sel, DynamicBitset& inStrict,
                                Scratch& s, std::size_t budget) const {
  // Shrink non-reset branches to those whose control register keeps a
  // strict scan-in path over the surviving branches.  The selectable
  // sets only ever shrink and branch 0 is never cleared, so the loop
  // terminates in at most (total selectable bits) iterations; `budget`
  // bounds it anyway and exhaustion surfaces as Unknown, never as a
  // wrong verdict.
  const std::uint32_t stuckMux =
      f != nullptr && f->kind == fault::FaultKind::MuxStuck ? f->prim
                                                           : rsn::kNone;
  for (std::size_t iter = 0;; ++iter) {
    if (iter >= budget) return false;
    sweep(/*forward=*/true, sel, /*tolerate=*/false, brokenV,
          graph::kNoVertex, /*avoidCtrlRegs=*/false, inStrict, s.queue);
    bool changed = false;
    for (const std::uint32_t m : cv_.ctrlMuxes) {
      if (m == stuckMux) continue;
      const bool ctrlReach = inStrict.test(cv_.muxCtrlVertex[m]);
      const std::uint32_t off = cv_.selOffset[m];
      const std::size_t words =
          (static_cast<std::size_t>(cv_.muxArity[m]) + 63) / 64;
      for (std::size_t w = 0; w < words; ++w) {
        const std::uint64_t mask = ctrlReach
                                       ? cv_.representableWords[off + w]
                                       : (w == 0 ? 1ULL : 0ULL);
        const std::uint64_t next = sel[off + w] & mask;
        if (next != sel[off + w]) {
          sel[off + w] = next;
          changed = true;
        }
      }
    }
    if (!changed) return true;
  }
}

void Certifier::buildBase() {
  const std::size_t vertices = cv_.vertexCount;
  Scratch s;
  s.init(cv_);

  // Fault-free fixpoint: final selectable sets + strict reaches.
  sel0_.assign(cv_.selWordCount, 0);
  cv_.baseSelectable(nullptr, sel0_.data());
  inStrict0_ = DynamicBitset(vertices);
  const bool converged =
      controlFixpoint(nullptr, graph::kNoVertex, sel0_.data(), inStrict0_, s,
                      static_cast<std::size_t>(-1));
  RRSN_CHECK(converged, "unbudgeted fixpoint must converge");
  outStrict0_ = DynamicBitset(vertices);
  sweep(/*forward=*/false, sel0_.data(), /*tolerate=*/false,
        graph::kNoVertex, graph::kNoVertex, /*avoidCtrlRegs=*/false,
        outStrict0_, s.queue);

  accessible0_ = DynamicBitset(cv_.instrumentVertex.size());
  for (std::size_t i = 0; i < cv_.instrumentVertex.size(); ++i) {
    const graph::VertexId v = cv_.instrumentVertex[i];
    if (inStrict0_.test(v) && outStrict0_.test(v)) accessible0_.set(i);
  }

  // Topological order of the full data graph (Kahn, FIFO seeded in id
  // order — deterministic).  Any topo order of the DAG orders every
  // subgraph, so one order serves both dominator passes.
  std::vector<std::uint32_t> indeg(vertices);
  for (std::size_t v = 0; v < vertices; ++v)
    indeg[v] = cv_.bwdOffsets[v + 1] - cv_.bwdOffsets[v];
  std::vector<graph::VertexId> order;
  order.reserve(vertices);
  for (std::size_t v = 0; v < vertices; ++v)
    if (indeg[v] == 0) order.push_back(static_cast<graph::VertexId>(v));
  for (std::size_t head = 0; head < order.size(); ++head) {
    const graph::VertexId v = order[head];
    for (std::uint32_t i = cv_.fwdOffsets[v]; i < cv_.fwdOffsets[v + 1]; ++i) {
      const graph::VertexId u = cv_.fwdEdges[i].other;
      if (--indeg[u] == 0) order.push_back(u);
    }
  }
  RRSN_CHECK(order.size() == vertices, "data graph must be acyclic");
  topoIdx_.assign(vertices, 0);
  rtopoIdx_.assign(vertices, 0);
  for (std::size_t k = 0; k < vertices; ++k) {
    topoIdx_[order[k]] = static_cast<std::uint32_t>(k);
    rtopoIdx_[order[k]] = static_cast<std::uint32_t>(vertices - 1 - k);
  }

  // Immediate dominators over the *open* subgraph (edges admissible
  // under the final fault-free sets, vertices in the strict reach).
  // One topo-ordered pass suffices on a DAG: every predecessor is
  // final before its successor is visited.
  idom_.assign(vertices, graph::kNoVertex);
  idom_[cv_.scanIn] = cv_.scanIn;
  for (std::size_t k = 0; k < vertices; ++k) {
    const graph::VertexId v = order[k];
    if (v == cv_.scanIn || !inStrict0_.test(v)) continue;
    graph::VertexId cand = graph::kNoVertex;
    for (std::uint32_t i = cv_.bwdOffsets[v]; i < cv_.bwdOffsets[v + 1]; ++i) {
      const sim::ControlView::Edge& e = cv_.bwdEdges[i];
      const graph::VertexId u = e.other;
      if (!inStrict0_.test(u) || idom_[u] == graph::kNoVertex) continue;
      if (!cv_.edgeOpen(e, sel0_.data())) continue;
      cand = cand == graph::kNoVertex ? u : intersect(cand, u, idom_, topoIdx_);
    }
    idom_[v] = cand;
  }

  // Immediate post-dominators: the same pass on the transposed open
  // subgraph, rooted at scan-out, in reverse topological order.
  ipdom_.assign(vertices, graph::kNoVertex);
  ipdom_[cv_.scanOut] = cv_.scanOut;
  for (std::size_t k = vertices; k-- > 0;) {
    const graph::VertexId v = order[k];
    if (v == cv_.scanOut || !outStrict0_.test(v)) continue;
    graph::VertexId cand = graph::kNoVertex;
    for (std::uint32_t i = cv_.fwdOffsets[v]; i < cv_.fwdOffsets[v + 1]; ++i) {
      const sim::ControlView::Edge& e = cv_.fwdEdges[i];
      const graph::VertexId u = e.other;
      if (!outStrict0_.test(u) || ipdom_[u] == graph::kNoVertex) continue;
      if (!cv_.edgeOpen(e, sel0_.data())) continue;
      cand =
          cand == graph::kNoVertex ? u : intersect(cand, u, ipdom_, rtopoIdx_);
    }
    ipdom_[v] = cand;
  }

  domIntervals(idom_, cv_.scanIn, domTin_, domTout_);
  domIntervals(ipdom_, cv_.scanOut, pdomTin_, pdomTout_);

  // Control-critical set: every vertex that dominates some reachable
  // control register.  A break off this set provably leaves the control
  // fixpoint at the fault-free solution (the severed vertex cuts no
  // register's last scan-in path).  Chains share suffixes, so each walk
  // stops at the first already-marked vertex.
  ctrlCritical_ = DynamicBitset(vertices);
  for (const std::uint32_t m : cv_.ctrlMuxes) {
    graph::VertexId v = cv_.muxCtrlVertex[m];
    if (!inStrict0_.test(v)) continue;
    while (!ctrlCritical_.test(v)) {
      ctrlCritical_.set(v);
      if (v == cv_.scanIn) break;
      v = idom_[v];
    }
  }

  // Stuck-safety masks: branch b of mux m is safe iff pinning the mux
  // to {b} flips no guard decision taken under the fault-free final
  // sets — then the per-fault fixpoint provably converges to the same
  // solution and the whole row equals the fault-free row.
  const std::size_t muxes = cv_.muxArity.size();
  stuckSafe_.assign(cv_.selWordCount, 0);
  std::size_t maxWords = 0;
  for (std::size_t m = 0; m < muxes; ++m) {
    const std::uint32_t off = cv_.selOffset[m];
    const std::size_t arity = cv_.muxArity[m];
    const std::size_t words = (arity + 63) / 64;
    maxWords = std::max(maxWords, words);
    for (std::size_t w = 0; w < words; ++w) {
      const bool tail = w == words - 1 && arity % 64 != 0;
      stuckSafe_[off + w] = tail ? (1ULL << (arity % 64)) - 1 : ~0ULL;
    }
  }
  std::vector<std::uint64_t> poolWords(maxWords);
  for (const sim::ControlView::Edge& e : cv_.fwdEdges) {
    if (e.mux == rsn::kNone) continue;
    const std::uint32_t off = cv_.selOffset[e.mux];
    const std::size_t words =
        (static_cast<std::size_t>(cv_.muxArity[e.mux]) + 63) / 64;
    std::fill(poolWords.begin(),
              poolWords.begin() + static_cast<std::ptrdiff_t>(words), 0);
    for (std::uint32_t i = e.branchBegin; i < e.branchEnd; ++i) {
      const std::uint32_t b = cv_.branchPool[i];
      poolWords[b >> 6] |= 1ULL << (b & 63);
    }
    const bool open0 = cv_.edgeOpen(e, sel0_.data());
    for (std::size_t w = 0; w < words; ++w)
      stuckSafe_[off + w] &= open0 ? poolWords[w] : ~poolWords[w];
  }
}

bool Certifier::domAncestor(graph::VertexId a, graph::VertexId v) const {
  return domTin_[a] != 0 && domTin_[v] != 0 && domTin_[a] <= domTin_[v] &&
         domTout_[v] <= domTout_[a];
}

bool Certifier::pdomAncestor(graph::VertexId a, graph::VertexId v) const {
  return pdomTin_[a] != 0 && pdomTin_[v] != 0 && pdomTin_[a] <= pdomTin_[v] &&
         pdomTout_[v] <= pdomTout_[a];
}

bool Certifier::tryFastRow(const fault::Fault& f,
                           std::uint16_t* rowCells) const {
  const std::size_t instruments = cv_.instrumentVertex.size();
  if (f.kind == fault::FaultKind::SegmentBreak) {
    const rsn::SegmentId seg = f.prim;
    const graph::VertexId v = cv_.segmentVertex[seg];
    // A broken control register poisons its mux's address whenever the
    // region is walked (the clean-suffix carve-out), and a break that
    // dominates a reachable control register can shrink the fixpoint —
    // both need the slow tier.
    if (cv_.segmentControlsMux(seg)) return false;
    if (ctrlCritical_.test(v)) return false;
    for (std::size_t i = 0; i < instruments; ++i) {
      const graph::VertexId u = cv_.instrumentVertex[i];
      if (u == v || !accessible0_.test(i)) continue;
      if (domAncestor(v, u) || pdomAncestor(v, u)) return false;
    }
    // Sound now: the fixpoint stays at the fault-free solution and no
    // accessible instrument loses its strict path, so the oracle row
    // equals the fault-free row (breaks only ever shrink reaches).
    for (std::size_t i = 0; i < instruments; ++i) {
      const graph::VertexId u = cv_.instrumentVertex[i];
      if (u == v)
        rowCells[i] = packCell(Verdict::Vulnerable, WitnessKind::SelfFault,
                               Verdict::Vulnerable, WitnessKind::SelfFault);
      else if (accessible0_.test(i))
        rowCells[i] = packCell(Verdict::Proven, WitnessKind::NonCut,
                               Verdict::Proven, WitnessKind::NonCut);
      else
        rowCells[i] =
            packCell(Verdict::Vulnerable, WitnessKind::Unreachable,
                     Verdict::Vulnerable, WitnessKind::Unreachable);
    }
    return true;
  }

  // MuxStuck: safe iff the pinned branch leaves every guard decision of
  // this mux unchanged — the row equals the fault-free row.  (The
  // converse is *not* monotone: an unsafe stuck branch can also expand
  // accessibility, because the stuck mux is exempt from the fixpoint's
  // reset pinning; those rows go to the slow tier.)
  const std::uint32_t off = cv_.selOffset[f.prim];
  const std::uint32_t b = f.stuckBranch;
  if (((stuckSafe_[off + (b >> 6)] >> (b & 63)) & 1) == 0) return false;
  for (std::size_t i = 0; i < instruments; ++i) {
    if (accessible0_.test(i))
      rowCells[i] = packCell(Verdict::Proven, WitnessKind::StuckBenign,
                             Verdict::Proven, WitnessKind::StuckBenign);
    else
      rowCells[i] = packCell(Verdict::Vulnerable, WitnessKind::Unreachable,
                             Verdict::Vulnerable, WitnessKind::Unreachable);
  }
  return true;
}

bool Certifier::analyzeRow(const fault::Fault& f, Scratch& s,
                           std::size_t budget) const {
  // The slow tier replays the syndrome oracle's exact access-mode
  // composition (see diag/batched.cpp for the physics derivation):
  // strict, then — for breaks at non-control segments — clean-suffix,
  // then depth-bounded, OR-ing per-instrument bits and recording the
  // first mode that proved each direction.
  const bool isBreak = f.kind == fault::FaultKind::SegmentBreak;
  const graph::VertexId brokenV =
      isBreak ? cv_.segmentVertex[f.prim] : graph::kNoVertex;
  const std::size_t instruments = cv_.instrumentVertex.size();

  s.obs.clearAll();
  s.set.clearAll();
  std::fill(s.obsMode.begin(), s.obsMode.end(),
            static_cast<std::uint8_t>(WitnessKind::None));
  std::fill(s.setMode.begin(), s.setMode.end(),
            static_cast<std::uint8_t>(WitnessKind::None));
  s.collapsedMux = rsn::kNone;

  cv_.baseSelectable(&f, s.sel.data());
  if (!controlFixpoint(&f, brokenV, s.sel.data(), s.inStrict, s, budget))
    return false;

  // Property (3) witness: the first control mux that lost selectable
  // branches relative to the fault-free solution.  (Recorded before the
  // depth-bounded stage shrinks the sets for its own reason.)  A stuck
  // mux's own pinning is the fault, not a collapse.
  for (const std::uint32_t m : cv_.ctrlMuxes) {
    if (!isBreak && m == f.prim) continue;
    const std::uint32_t off = cv_.selOffset[m];
    const std::size_t words =
        (static_cast<std::size_t>(cv_.muxArity[m]) + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) {
      if ((sel0_[off + w] & ~s.sel[off + w]) != 0) {
        s.collapsedMux = m;
        break;
      }
    }
    if (s.collapsedMux != rsn::kNone) break;
  }

  sweep(/*forward=*/false, s.sel.data(), /*tolerate=*/false, brokenV,
        graph::kNoVertex, /*avoidCtrlRegs=*/false, s.outStrict, s.queue);

  const auto emit = [&](const DynamicBitset& inRead,
                        const DynamicBitset& outStrict,
                        const DynamicBitset& inStrict,
                        const DynamicBitset& outWrite, WitnessKind mode) {
    for (std::size_t i = 0; i < instruments; ++i) {
      const graph::VertexId v = cv_.instrumentVertex[i];
      if (v == brokenV) continue;  // the instrument's own segment is dead
      if (inRead.test(v) && outStrict.test(v) && !s.obs.test(i)) {
        s.obs.set(i);
        s.obsMode[i] = static_cast<std::uint8_t>(mode);
      }
      if (inStrict.test(v) && outWrite.test(v) && !s.set.test(i)) {
        s.set.set(i);
        s.setMode[i] = static_cast<std::uint8_t>(mode);
      }
    }
  };

  if (brokenV == graph::kNoVertex) {
    // Mux-stuck rows have no broken vertex: strict mode is the whole
    // story (break-tolerant reaches equal the strict ones).
    emit(s.inStrict, s.outStrict, s.inStrict, s.outStrict,
         WitnessKind::PathStrict);
    return true;
  }

  emit(s.inStrict, s.outStrict, s.inStrict, s.outStrict,
       WitnessKind::PathStrict);

  sweep(/*forward=*/true, s.sel.data(), /*tolerate=*/true, brokenV,
        graph::kNoVertex, /*avoidCtrlRegs=*/false, s.inRead, s.queue);
  sweep(/*forward=*/false, s.sel.data(), /*tolerate=*/true, brokenV,
        graph::kNoVertex, /*avoidCtrlRegs=*/false, s.outWrite, s.queue);

  if (!cv_.segmentControlsMux(f.prim)) {
    sweep(/*forward=*/false, s.sel.data(), /*tolerate=*/true, brokenV,
          graph::kNoVertex, /*avoidCtrlRegs=*/true, s.cleanToOut, s.queue);
    const bool writeSuffixOk = s.cleanToOut.test(brokenV);
    const bool readPrefixOk = s.inRead.test(brokenV);
    if (writeSuffixOk) {
      sweep(/*forward=*/false, s.sel.data(), /*tolerate=*/true, brokenV,
            brokenV, /*avoidCtrlRegs=*/false, s.bwdFromB, s.queue);
    }
    if (readPrefixOk) {
      sweep(/*forward=*/true, s.sel.data(), /*tolerate=*/true, brokenV,
            brokenV, /*avoidCtrlRegs=*/true, s.cleanFromB, s.queue);
    }
    if (writeSuffixOk || readPrefixOk) {
      for (std::size_t i = 0; i < instruments; ++i) {
        const graph::VertexId v = cv_.instrumentVertex[i];
        if (v == brokenV) continue;
        if (readPrefixOk && s.cleanFromB.test(v) && s.cleanToOut.test(v) &&
            !s.obs.test(i)) {
          s.obs.set(i);
          s.obsMode[i] =
              static_cast<std::uint8_t>(WitnessKind::PathCleanSuffix);
        }
        if (writeSuffixOk && s.inStrict.test(v) && s.bwdFromB.test(v) &&
            !s.set.test(i)) {
          s.set.set(i);
          s.setMode[i] =
              static_cast<std::uint8_t>(WitnessKind::PathCleanSuffix);
        }
      }
    }
  }

  cv_.limitDemandDepth(cv_.segDepth[f.prim], s.sel.data());
  if (!controlFixpoint(&f, brokenV, s.sel.data(), s.inStrict, s, budget))
    return false;
  sweep(/*forward=*/false, s.sel.data(), /*tolerate=*/false, brokenV,
        graph::kNoVertex, /*avoidCtrlRegs=*/false, s.outStrict, s.queue);
  sweep(/*forward=*/true, s.sel.data(), /*tolerate=*/true, brokenV,
        graph::kNoVertex, /*avoidCtrlRegs=*/false, s.inRead, s.queue);
  sweep(/*forward=*/false, s.sel.data(), /*tolerate=*/true, brokenV,
        graph::kNoVertex, /*avoidCtrlRegs=*/false, s.outWrite, s.queue);
  emit(s.inRead, s.outStrict, s.inStrict, s.outWrite,
       WitnessKind::PathDepthBounded);
  return true;
}

CertificationResult Certifier::run(const CertifyOptions& options) const {
  RRSN_OBS_SPAN("verify.certify");
  obs::count(kCertifyCalls);

  const rsn::FlatNetwork& flat = *cv_.flat;
  const std::size_t segments = flat.segmentCount();
  const std::size_t muxes = flat.muxCount();
  const std::size_t instruments = flat.instrumentCount();
  if (!options.excludePrimitives.empty()) {
    RRSN_CHECK(options.excludePrimitives.size() == segments + muxes,
               "excludePrimitives must be sized segments + muxes");
  }
  if (options.crossCheck) {
    RRSN_CHECK(options.crossCheckSampleEvery > 0,
               "crossCheckSampleEvery must be positive");
  }
  const auto excluded = [&](std::size_t linear) {
    return !options.excludePrimitives.empty() &&
           options.excludePrimitives.test(linear);
  };

  CertificationResult result;
  result.instruments = instruments;
  result.reachable = accessible0_;
  result.instrumentSegment.assign(flat.instrumentSegment().begin(),
                                  flat.instrumentSegment().end());
  for (std::size_t s = 0; s < segments; ++s)
    if (!excluded(s))
      result.universe.push_back(
          fault::Fault::segmentBreak(static_cast<rsn::SegmentId>(s)));
  for (std::size_t m = 0; m < muxes; ++m) {
    if (excluded(segments + m)) continue;
    for (std::uint32_t b = 0; b < cv_.muxArity[m]; ++b)
      result.universe.push_back(
          fault::Fault::muxStuck(static_cast<rsn::MuxId>(m), b));
  }
  const std::size_t faults = result.universe.size();
  result.cells.assign(faults * instruments, 0);
  result.collapsedMux.assign(faults, rsn::kNone);
  obs::sample(kUniverseFaults, faults);

  std::unique_ptr<diag::BatchedSyndromeEngine> oracle;
  if (options.crossCheck)
    oracle = std::make_unique<diag::BatchedSyndromeEngine>(cv_.flat);

  std::vector<Scratch> scratch(threadCount());
  for (Scratch& s : scratch) s.init(cv_);

  std::atomic<std::size_t> fastRows{0}, slowRows{0}, checkedRows{0};
  std::atomic<std::size_t> unknownCells{0};
  std::mutex divergenceMu;
  std::vector<std::string> divergences;

  parallelForChunks(
      faults,
      [&](std::size_t begin, std::size_t end, std::size_t worker) {
        Scratch& s = scratch[worker];
        for (std::size_t fi = begin; fi < end; ++fi) {
          const fault::Fault& f = result.universe[fi];
          std::uint16_t* row = result.cells.data() + fi * instruments;
          bool rowUnknown = false;
          if (tryFastRow(f, row)) {
            fastRows.fetch_add(1, std::memory_order_relaxed);
          } else {
            slowRows.fetch_add(1, std::memory_order_relaxed);
            if (!analyzeRow(f, s, options.fixpointBudget)) {
              rowUnknown = true;
              unknownCells.fetch_add(2 * instruments,
                                     std::memory_order_relaxed);
              for (std::size_t i = 0; i < instruments; ++i)
                row[i] = kUnknownCell;
            } else {
              result.collapsedMux[fi] = s.collapsedMux;
              const graph::VertexId brokenV =
                  f.kind == fault::FaultKind::SegmentBreak
                      ? cv_.segmentVertex[f.prim]
                      : graph::kNoVertex;
              for (std::size_t i = 0; i < instruments; ++i) {
                const graph::VertexId u = cv_.instrumentVertex[i];
                const auto vuln = [&]() -> WitnessKind {
                  if (u == brokenV) return WitnessKind::SelfFault;
                  if (!accessible0_.test(i)) return WitnessKind::Unreachable;
                  if (brokenV != graph::kNoVertex &&
                      (domAncestor(brokenV, u) || pdomAncestor(brokenV, u)))
                    return WitnessKind::DominatorCut;
                  if (s.collapsedMux != rsn::kNone)
                    return WitnessKind::ControlCollapse;
                  return WitnessKind::GuardCut;
                };
                Verdict rv, wv;
                WitnessKind rk, wk;
                if (s.obs.test(i)) {
                  rv = Verdict::Proven;
                  rk = static_cast<WitnessKind>(s.obsMode[i]);
                } else {
                  rv = Verdict::Vulnerable;
                  rk = vuln();
                }
                if (s.set.test(i)) {
                  wv = Verdict::Proven;
                  wk = static_cast<WitnessKind>(s.setMode[i]);
                } else {
                  wv = Verdict::Vulnerable;
                  wk = vuln();
                }
                row[i] = packCell(rv, rk, wv, wk);
              }
            }
          }

          if (oracle == nullptr || rowUnknown) continue;
          bool hasVulnerable = false;
          for (std::size_t i = 0; i < instruments && !hasVulnerable; ++i)
            hasVulnerable = (row[i] & 3u) == 1u || ((row[i] >> 2) & 3u) == 1u;
          if (!hasVulnerable && fi % options.crossCheckSampleEvery != 0)
            continue;
          checkedRows.fetch_add(1, std::memory_order_relaxed);
          const campaign::Expectation expect =
              campaign::expectedAccessibility(*oracle, instruments, f, worker);
          for (std::size_t i = 0; i < instruments; ++i) {
            const bool provenRead = (row[i] & 3u) == 0u;
            const bool provenWrite = ((row[i] >> 2) & 3u) == 0u;
            if (provenRead == expect.observable.test(i) &&
                provenWrite == expect.settable.test(i))
              continue;
            std::string msg =
                "fault #" + std::to_string(fi) + " instrument #" +
                std::to_string(i) + ": certifier " +
                std::string(1, toChar(static_cast<Verdict>(row[i] & 3u))) +
                std::string(
                    1, toChar(static_cast<Verdict>((row[i] >> 2) & 3u))) +
                " vs oracle " + (expect.observable.test(i) ? "A" : "L") +
                (expect.settable.test(i) ? "A" : "L");
            const std::lock_guard<std::mutex> lock(divergenceMu);
            divergences.push_back(std::move(msg));
          }
        }
      },
      /*grain=*/1);

  if (!divergences.empty()) {
    std::sort(divergences.begin(), divergences.end());
    std::string what = "certifier cross-check diverged from the syndrome "
                       "oracle on " +
                       std::to_string(divergences.size()) + " verdict(s):";
    const std::size_t shown = std::min<std::size_t>(divergences.size(), 8);
    for (std::size_t i = 0; i < shown; ++i) what += "\n  " + divergences[i];
    throw Error(what);
  }

  result.fastRowCount = fastRows.load();
  result.fixpointRowCount = slowRows.load();
  result.crossCheckedRowCount = checkedRows.load();
  obs::count(kRowsFast, result.fastRowCount);
  obs::count(kRowsFixpoint, result.fixpointRowCount);
  obs::count(kRowsCrossChecked, result.crossCheckedRowCount);
  if (const std::size_t u = unknownCells.load()) obs::count(kCellsUnknown, u);
  return result;
}

}  // namespace rrsn::verify

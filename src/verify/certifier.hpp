// Static robustness certifier: a flow-sensitive fixpoint dataflow
// engine over the flat arena (rsn::FlatNetwork) that *proves* — without
// simulation — the paper's robustness claim per instrument:
//
//  (1) reachability       — a satisfiable control assignment exists
//                           that puts the instrument on the active scan
//                           path (the fault-free fixpoint's strict
//                           forward ∩ backward reach);
//  (2) single-fault
//      accessibility      — for every structural fault in the universe,
//                           either the fault provably cannot sever all
//                           of the instrument's access paths (dominator
//                           /cut analysis over the guarded-CSR data
//                           graph), or the surviving access mode is
//                           named, or a concrete severing witness is
//                           produced;
//  (3) control-safety     — no control register that gates the access
//                           is itself only reachable through what the
//                           same fault severs (a shrinking fixpoint
//                           over the control-dependency structure; a
//                           collapse is witnessed by the mux whose
//                           selectable set shrank).
//
// Verdict lattice per (fault, instrument, direction):
//
//          Unknown            (fixpoint budget exhausted; bounded and
//         /       \            counted, never silently dropped)
//      Proven   Vulnerable    (each carrying a witness)
//
// The engine has two tiers.  The *fast tier* decides whole fault rows
// from the fault-free analysis alone: a segment break whose vertex
// controls no mux, is not control-critical (does not dominate any
// reachable control register) and neither dominates nor post-dominates
// any accessible instrument cannot change the control fixpoint or cut
// any access — the row equals the fault-free row.  Likewise a mux
// stuck on a branch that leaves every guard decision of that mux
// unchanged under the fault-free selectable sets.  The *slow tier*
// replays the exact access-mode composition of the batched syndrome
// oracle (strict / clean-suffix / depth-bounded; see diag/batched.cpp)
// with an independent plain-BFS sweep and a budgeted control fixpoint —
// so certifier verdicts are definitionally comparable to
// campaign::expectedAccessibility, and the cross-check mode replays
// Vulnerable rows and sampled Proven rows through the oracle engine,
// treating any divergence as a hard error.
//
// Determinism: every cell depends only on its fault index; the per-
// fault fan-out uses the deterministic chunk grid, so results (and all
// serialized reports) are byte-identical at any RRSN_THREADS.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "rsn/flat.hpp"
#include "rsn/network.hpp"
#include "sim/control_view.hpp"
#include "support/bitset.hpp"
#include "support/json.hpp"
#include "support/table.hpp"

namespace rrsn::verify {

enum class Verdict : std::uint8_t { Proven = 0, Vulnerable = 1, Unknown = 2 };

/// 'P' / 'V' / 'U' — the per-instrument encoding used in reports and
/// cached artifacts.
char toChar(Verdict v);
Verdict verdictFromChar(char c);

/// Why a verdict holds.  Proven kinds name the surviving structure,
/// Vulnerable kinds the severing one, Budget the bounded give-up.
enum class WitnessKind : std::uint8_t {
  None = 0,          ///< padding default (never emitted for a cell)
  // ------------------------------------------------------- Proven
  NonCut,            ///< fast tier: fault site off every access cut
  StuckBenign,       ///< fast tier: stuck branch changes no guard
  PathStrict,        ///< a strict (fault-avoiding) access path survives
  PathCleanSuffix,   ///< survives via the clean-suffix access mode
  PathDepthBounded,  ///< survives via the depth-bounded access mode
  // --------------------------------------------------- Vulnerable
  SelfFault,         ///< the instrument's own segment is the fault site
  Unreachable,       ///< inaccessible even fault-free (property 1 fails)
  DominatorCut,      ///< fault site dominates/post-dominates the access
  ControlCollapse,   ///< a gating control register loses its last path
  GuardCut,          ///< selectable-set shrink closes every guard
  // ------------------------------------------------------ Unknown
  Budget,            ///< control fixpoint iteration budget exhausted
};

/// Stable kebab-case name ("dominator-cut", ...) for reports.
const char* witnessKindName(WitnessKind k);

/// One materialized witness.  `subject` is kind-dependent: the severing
/// segment for SelfFault/DominatorCut/GuardCut, the collapsed mux for
/// ControlCollapse, the instrument's own segment for Unreachable,
/// rsn::kNone otherwise.
struct Witness {
  WitnessKind kind = WitnessKind::None;
  std::uint32_t subject = rsn::kNone;

  bool operator==(const Witness&) const = default;
};

/// Certification knobs.
struct CertifyOptions {
  /// Faults located at these primitives (by Network::linearId: segments
  /// in [0, S), muxes in [S, S + M)) are excluded — a hardened
  /// primitive cannot fail.  Empty = the full single-fault universe.
  DynamicBitset excludePrimitives;
  /// Iteration budget of each per-fault control fixpoint.  Exhaustion
  /// yields Unknown(Budget) for the whole row — counted, never hidden.
  /// The fixpoint shrinks a finite set monotonically, so any budget
  /// >= the control-nesting depth terminates with a proof; the default
  /// is far above every realistic nesting.
  std::size_t fixpointBudget = 1024;
  /// Replay every row containing a Vulnerable verdict, and every
  /// crossCheckSampleEvery-th row regardless, through the batched
  /// syndrome oracle; any divergence throws support::Error.  See
  /// crossCheckDefault() for the environment policy.
  bool crossCheck = false;
  std::size_t crossCheckSampleEvery = 16;
};

/// RRSN_CERTIFY_MODE=fast|checked; unset defaults to checked in debug
/// builds and fast in release builds (the dictionary-verify pattern).
bool crossCheckDefault();

/// Aggregate counters over one certification.
struct CertifySummary {
  std::size_t instruments = 0;
  std::size_t faults = 0;
  std::size_t reachableInstruments = 0;  ///< property (1)
  std::size_t provenRead = 0, provenWrite = 0;
  std::size_t vulnerableRead = 0, vulnerableWrite = 0;
  std::size_t unknownRead = 0, unknownWrite = 0;
  std::size_t fastRows = 0;      ///< rows decided by the fast tier
  std::size_t fixpointRows = 0;  ///< rows that ran the slow tier
  std::size_t controlCollapseCells = 0;  ///< property (3) violations
  std::size_t crossCheckedRows = 0;

  std::size_t unknownCells() const { return unknownRead + unknownWrite; }
};

/// Full certification state: the (filtered) fault universe in canonical
/// order plus one packed cell per (fault, instrument).
class CertificationResult {
 public:
  /// Canonical fault order: one SegmentBreak per non-excluded segment
  /// in id order, then one MuxStuck per non-excluded (mux, branch).
  std::vector<fault::Fault> universe;
  std::size_t instruments = 0;
  /// Property (1) per instrument: accessible under the fault-free
  /// control fixpoint.
  DynamicBitset reachable;

  Verdict read(std::size_t faultIdx, std::size_t inst) const {
    return static_cast<Verdict>(cell(faultIdx, inst) & 3u);
  }
  Verdict write(std::size_t faultIdx, std::size_t inst) const {
    return static_cast<Verdict>((cell(faultIdx, inst) >> 2) & 3u);
  }
  Witness readWitness(std::size_t faultIdx, std::size_t inst) const;
  Witness writeWitness(std::size_t faultIdx, std::size_t inst) const;

  CertifySummary summary() const;

  /// "PVU..." strings (one char per instrument) for row `faultIdx`.
  std::string readRow(std::size_t faultIdx) const;
  std::string writeRow(std::size_t faultIdx) const;

  // ------------------------------------------------- packed internals
  // One cell per (fault, instrument), row-major: bits 0-1 read verdict,
  // 2-3 write verdict, 4-7 read witness kind, 8-11 write witness kind.
  // Witness *subjects* are derivable (fault site, instrument segment,
  // or the per-row collapsed mux), so cells stay 2 bytes and a full
  // MBIST-class universe certifies in memory comparable to its fault
  // dictionary.
  std::vector<std::uint16_t> cells;
  /// Per-fault: first control mux whose selectable set collapsed under
  /// the fault (kNone when the control fixpoint matched fault-free).
  std::vector<std::uint32_t> collapsedMux;
  /// Per-instrument hosting segment (witness subjects for Unreachable).
  std::vector<std::uint32_t> instrumentSegment;
  /// Tier accounting, filled by Certifier::run (not derivable from the
  /// cells): rows decided by the fast tier, rows that ran the slow
  /// tier, and rows replayed through the syndrome oracle.
  std::size_t fastRowCount = 0;
  std::size_t fixpointRowCount = 0;
  std::size_t crossCheckedRowCount = 0;

  std::uint16_t cell(std::size_t faultIdx, std::size_t inst) const {
    return cells[faultIdx * instruments + inst];
  }

 private:
  Witness witnessAt(std::size_t faultIdx, std::size_t inst,
                    bool isRead) const;
};

/// The certifier.  Construction runs the fault-free base analysis
/// (final selectable sets, strict reaches, topological order of the
/// open subgraph, immediate dominators and post-dominators with DFS
/// interval numbering, the control-critical vertex set, and per-
/// (mux, branch) stuck-safety masks); run() fans the per-fault tiers
/// out over the thread pool.
class Certifier {
 public:
  explicit Certifier(const rsn::Network& net);
  explicit Certifier(std::shared_ptr<const rsn::FlatNetwork> flat);

  /// Certifies the (filtered) single-fault universe.  Throws
  /// support::Error on cross-check divergence or malformed options.
  CertificationResult run(const CertifyOptions& options = {}) const;

  const rsn::FlatNetwork& flat() const { return *cv_.flat; }

 private:
  struct Scratch;

  void buildBase();

  void sweep(bool forward, const std::uint64_t* sel, bool tolerate,
             graph::VertexId brokenV, graph::VertexId source,
             bool avoidCtrlRegs, DynamicBitset& visited,
             std::vector<graph::VertexId>& queue) const;

  /// Budgeted control fixpoint; leaves `inStrict` = strict forward
  /// reach under the final sets.  Returns false when `budget`
  /// iterations did not reach the fixpoint.
  bool controlFixpoint(const fault::Fault* f, graph::VertexId brokenV,
                       std::uint64_t* sel, DynamicBitset& inStrict,
                       Scratch& s, std::size_t budget) const;

  /// Slow tier: the oracle's exact access-mode composition.  Fills
  /// s.obs / s.set and the per-instrument first-proving mode bytes;
  /// returns false on budget exhaustion (row is Unknown).
  bool analyzeRow(const fault::Fault& f, Scratch& s,
                  std::size_t budget) const;

  /// Fast tier: decides the whole row from the base analysis when
  /// sound; returns false when the row needs the slow tier.
  bool tryFastRow(const fault::Fault& f, std::uint16_t* rowCells) const;

  bool domAncestor(graph::VertexId a, graph::VertexId v) const;
  bool pdomAncestor(graph::VertexId a, graph::VertexId v) const;

  sim::ControlView cv_;

  // ------------------------------------------------ fault-free base
  std::vector<std::uint64_t> sel0_;   ///< final fault-free selectable sets
  DynamicBitset inStrict0_, outStrict0_;
  DynamicBitset accessible0_;         ///< per instrument (property 1)
  std::vector<std::uint32_t> topoIdx_, rtopoIdx_;
  std::vector<graph::VertexId> idom_, ipdom_;
  std::vector<std::uint32_t> domTin_, domTout_, pdomTin_, pdomTout_;
  DynamicBitset ctrlCritical_;        ///< dominates a reachable ctrl reg
  std::vector<std::uint64_t> stuckSafe_;  ///< sel-layout (mux, branch) mask
};

// ------------------------------------------------------------ reports

/// Two-row (read / write) verdict tally for CLI output.
TextTable summaryTable(const CertifySummary& s);

/// Itemization of the first `limit` Vulnerable / Unknown cells, with
/// witness names resolved against the network.
TextTable vulnerabilityTable(const rsn::Network& net,
                             const CertificationResult& result,
                             std::size_t limit = 20);

/// Canonical JSON document (sorted keys, no timestamps): summary,
/// per-instrument reachability, per-fault verdict rows, itemized
/// witnesses.  Byte-equality of two reports proves determinism.
json::Value reportJson(const rsn::Network& net,
                       const CertificationResult& result);

/// SARIF 2.1.0 document via the shared emitter: verify.unreachable /
/// verify.single-fault / verify.control-safety / verify.unknown rules,
/// one result per affected (fault, instrument).
json::Value sarifReport(const rsn::Network& net,
                        const CertificationResult& result,
                        const std::string& artifactUri);

}  // namespace rrsn::verify

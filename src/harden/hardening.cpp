#include "harden/hardening.hpp"

#include <istream>
#include <ostream>

#include "fault/fault.hpp"
#include "support/strings.hpp"

namespace rrsn::harden {

HardeningProblem HardeningProblem::assemble(
    const rsn::Network& net, const crit::CriticalityResult& analysis,
    const CostModel& model) {
  RRSN_CHECK(&analysis.network() == &net,
             "analysis belongs to a different network");
  HardeningProblem p;
  p.net = &net;
  p.linear.cost = model.costs(net);
  p.linear.gain = analysis.damages();
  p.linear.checkConsistent();
  p.maxCost = p.linear.costTotal();
  p.maxDamage = analysis.totalDamage();
  return p;
}

HardeningProblem HardeningProblem::assemble(
    const rsn::Network& net, const rsn::FlatNetwork& flat,
    const crit::CriticalityResult& analysis, const CostModel& model) {
  RRSN_CHECK(&analysis.network() == &net,
             "analysis belongs to a different network");
  RRSN_CHECK(flat.segmentCount() == net.segments().size() &&
                 flat.muxCount() == net.muxes().size(),
             "flat view belongs to a different network");
  HardeningProblem p;
  p.net = &net;
  p.linear.cost = model.costs(flat);
  p.linear.gain = analysis.damages();
  p.linear.checkConsistent();
  p.maxCost = p.linear.costTotal();
  p.maxDamage = analysis.totalDamage();
  return p;
}

HardeningPlan::HardeningPlan(const rsn::Network& net, const moo::Genome& genome)
    : net_(&net), hardened_(net.primitiveCount()) {
  RRSN_CHECK(genome.bits() == net.primitiveCount(),
             "genome length does not match the network's primitive count");
  for (std::uint32_t idx : genome.indices()) hardened_.set(idx);
}

std::vector<rsn::PrimitiveRef> HardeningPlan::hardenedPrimitives() const {
  std::vector<rsn::PrimitiveRef> out;
  out.reserve(hardened_.count());
  hardened_.forEachSet([&](std::size_t i) { out.push_back(net_->refOf(i)); });
  return out;
}

moo::Objectives HardeningPlan::evaluate(const crit::CriticalityResult& analysis,
                                        const CostModel& model) const {
  moo::Objectives obj;
  for (std::size_t j = 0; j < net_->primitiveCount(); ++j) {
    if (hardened_.test(j))
      obj.cost += model.costOf(*net_, net_->refOf(j));
    else
      obj.damage += analysis.damageOf(j);
  }
  return obj;
}

std::vector<std::pair<rsn::PrimitiveRef, std::uint64_t>>
HardeningPlan::residualDamage(const crit::CriticalityResult& analysis) const {
  std::vector<std::pair<rsn::PrimitiveRef, std::uint64_t>> out;
  for (std::size_t j = 0; j < net_->primitiveCount(); ++j) {
    if (!hardened_.test(j) && analysis.damageOf(j) > 0)
      out.emplace_back(net_->refOf(j), analysis.damageOf(j));
  }
  return out;
}

TextTable HardeningPlan::report(const crit::CriticalityResult& analysis,
                                const CostModel& model) const {
  TextTable table({"primitive", "kind", "cost c_j", "avoided damage d_j"});
  table.setAlign(0, TextTable::Align::Left);
  table.setAlign(1, TextTable::Align::Left);
  hardened_.forEachSet([&](std::size_t j) {
    const rsn::PrimitiveRef ref = net_->refOf(j);
    table.addRow({net_->primitiveName(ref),
                  ref.kind == rsn::PrimitiveRef::Kind::Segment ? "segment"
                                                               : "mux",
                  withThousands(model.costOf(*net_, ref)),
                  withThousands(analysis.damageOf(j))});
  });
  return table;
}

PaperSolutions extractPaperSolutions(const moo::ParetoArchive& archive,
                                     const HardeningProblem& problem,
                                     double frac) {
  PaperSolutions out;
  const auto damageBound = static_cast<std::uint64_t>(
      frac * static_cast<double>(problem.maxDamage));
  const auto costBound = static_cast<std::uint64_t>(
      frac * static_cast<double>(problem.maxCost));
  out.minCost = archive.minCostWithDamageAtMost(damageBound);
  out.minDamage = archive.minDamageWithCostAtMost(costBound);
  return out;
}

void writePlan(std::ostream& os, const HardeningPlan& plan) {
  os << "# hardening plan for network '" << plan.network().name() << "': "
     << plan.hardenedCount() << " primitives\n";
  for (const rsn::PrimitiveRef ref : plan.hardenedPrimitives())
    os << plan.network().primitiveName(ref) << '\n';
}

HardeningPlan readPlan(std::istream& is, const rsn::Network& net) {
  std::vector<std::uint32_t> hardened;
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto name = trim(line);
    if (name.empty() || name.front() == '#') continue;
    const std::string text(name);
    const rsn::SegmentId seg = net.findSegment(text);
    if (seg != rsn::kNone) {
      hardened.push_back(static_cast<std::uint32_t>(
          net.linearId({rsn::PrimitiveRef::Kind::Segment, seg})));
      continue;
    }
    const rsn::MuxId mux = net.findMux(text);
    if (mux != rsn::kNone) {
      hardened.push_back(static_cast<std::uint32_t>(
          net.linearId({rsn::PrimitiveRef::Kind::Mux, mux})));
      continue;
    }
    throw ParseError("plan line " + std::to_string(lineNo) +
                     ": unknown primitive '" + text + "'");
  }
  return HardeningPlan(net, moo::Genome(net.primitiveCount(),
                                        std::move(hardened)));
}

std::vector<fault::Fault> criticalExposures(const rsn::Network& net,
                                            const rsn::CriticalitySpec& spec,
                                            const HardeningPlan& plan) {
  sp::DecompositionTree tree = sp::DecompositionTree::build(net);
  tree.annotate(spec);
  const fault::FaultUniverse universe(net);
  std::vector<fault::Fault> exposures;
  for (const fault::Fault& f : universe.faults()) {
    const rsn::PrimitiveRef ref{
        f.kind == fault::FaultKind::SegmentBreak
            ? rsn::PrimitiveRef::Kind::Segment
            : rsn::PrimitiveRef::Kind::Mux,
        f.prim};
    if (plan.isHardened(ref)) continue;  // fault avoided
    const auto loss = fault::lossUnderFaultTree(tree, f);
    bool critical = false;
    loss.unobservable.forEachSet([&](std::size_t i) {
      critical |= spec.of(static_cast<rsn::InstrumentId>(i)).criticalObs;
    });
    loss.unsettable.forEachSet([&](std::size_t i) {
      critical |= spec.of(static_cast<rsn::InstrumentId>(i)).criticalSet;
    });
    if (critical) exposures.push_back(f);
  }
  return exposures;
}

}  // namespace rrsn::harden

#include "harden/fault_tolerant.hpp"

#include "rsn/builder.hpp"

namespace rrsn::harden {

namespace {

using rsn::NetworkBuilder;
using rsn::NodeId;
using rsn::NodeKind;

class Augmenter {
 public:
  Augmenter(const rsn::Network& src, NetworkBuilder& b) : src_(&src), b_(&b) {}

  std::size_t addedMuxes() const { return addedMuxes_; }

  /// Clones the subtree at `id`; when `bypassAlone` is false the clone is
  /// additionally wrapped into a skip multiplexer so a defect inside it
  /// can be routed around.  `bypassAlone` is true when the parent context
  /// already allows skipping exactly this element.
  NetworkBuilder::Handle clone(NodeId id, bool alreadySkippable) {
    const auto& n = src_->structure().node(id);
    switch (n.kind) {
      case NodeKind::Wire:
        return b_->wire();
      case NodeKind::Segment: {
        const rsn::Segment& seg = src_->segment(n.prim);
        const std::string instrument =
            seg.instrument == rsn::kNone
                ? std::string{}
                : src_->instrument(seg.instrument).name;
        const auto handle = b_->segment(seg.name, seg.length, instrument);
        return alreadySkippable ? handle : wrap(handle);
      }
      case NodeKind::Serial: {
        // Each part is individually skippable through its own wrapper, so
        // the chain itself needs no extra mux.
        std::vector<NetworkBuilder::Handle> parts;
        parts.reserve(n.children.size());
        for (NodeId c : n.children) parts.push_back(clone(c, false));
        return parts.size() == 1 ? parts[0] : b_->chain(std::move(parts));
      }
      case NodeKind::MuxJoin: {
        // Clone the branch alternatives.  A branch that is a single
        // segment is already skippable by selecting another branch iff a
        // wire alternative exists; to keep the scheme simple and uniform,
        // branch contents keep their own wrappers unless the branch is a
        // plain wire.  The whole group gets one skip mux so a defect in
        // the cloned multiplexer itself can be bypassed.
        std::vector<NetworkBuilder::Handle> branches;
        branches.reserve(n.children.size());
        for (NodeId c : n.children) branches.push_back(clone(c, false));
        // Control wiring is dropped: the original control segment may be
        // cloned after this mux in scan order; the augmented network is
        // analyzed structurally (see header).
        const auto group =
            b_->mux(src_->mux(n.prim).name, std::move(branches));
        return alreadySkippable ? group : wrap(group);
      }
    }
    throw Error("unreachable structure node kind");
  }

 private:
  NetworkBuilder::Handle wrap(NetworkBuilder::Handle inner) {
    ++addedMuxes_;
    return b_->mux("ftmx_" + std::to_string(addedMuxes_), {inner, b_->wire()});
  }

  const rsn::Network* src_;
  NetworkBuilder* b_;
  std::size_t addedMuxes_ = 0;
};

}  // namespace

FaultTolerantRsn augmentFaultTolerant(const rsn::Network& net,
                                      const CostModel& model) {
  NetworkBuilder b(net.name() + "_ft");
  Augmenter augmenter(net, b);
  b.setTop(augmenter.clone(net.structure().root(), /*alreadySkippable=*/true));
  FaultTolerantRsn result{b.build(), augmenter.addedMuxes(),
                          augmenter.addedMuxes() * model.muxCost};
  return result;
}

}  // namespace rrsn::harden

// Selective hardening (Sec. V): problem assembly, hardening plans and
// the two Table-I solution extractions.
#pragma once

#include <iosfwd>
#include <optional>

#include "crit/analyzer.hpp"
#include "harden/cost_model.hpp"
#include "moo/baselines.hpp"
#include "moo/pareto.hpp"
#include "support/bitset.hpp"
#include "support/table.hpp"

namespace rrsn::harden {

/// The optimization instance for one network + spec + cost model.
struct HardeningProblem {
  const rsn::Network* net = nullptr;
  moo::LinearBiProblem linear;   ///< cost = c_j, gain = d_j per linear id
  std::uint64_t maxCost = 0;     ///< all primitives hardened (Table I col 4)
  std::uint64_t maxDamage = 0;   ///< nothing hardened        (Table I col 5)

  static HardeningProblem assemble(const rsn::Network& net,
                                   const crit::CriticalityResult& analysis,
                                   const CostModel& model = {});

  /// Same assembly with the cost sweep taken from a prebuilt flat view
  /// (callers holding one skip every per-id pointer lookup; identical
  /// output to the overload above).
  static HardeningProblem assemble(const rsn::Network& net,
                                   const rsn::FlatNetwork& flat,
                                   const crit::CriticalityResult& analysis,
                                   const CostModel& model = {});
};

/// A concrete selection of primitives to harden — the synthesis output.
/// The RSN topology is untouched (Sec. II "Access Patterns
/// Compatibility"); the plan only marks which cells are implemented with
/// hardened variants.
class HardeningPlan {
 public:
  HardeningPlan(const rsn::Network& net, const moo::Genome& genome);

  const rsn::Network& network() const { return *net_; }

  bool isHardened(rsn::PrimitiveRef ref) const {
    return hardened_.test(net_->linearId(ref));
  }
  bool isHardenedLinear(std::size_t linearId) const {
    return hardened_.test(linearId);
  }
  std::size_t hardenedCount() const { return hardened_.count(); }

  /// Hardened primitives in linear-id order.
  std::vector<rsn::PrimitiveRef> hardenedPrimitives() const;

  /// Objectives of this plan under a given analysis + cost model.
  moo::Objectives evaluate(const crit::CriticalityResult& analysis,
                           const CostModel& model = {}) const;

  /// Remaining damage grouped per fault: d_j of every unhardened j.
  std::vector<std::pair<rsn::PrimitiveRef, std::uint64_t>> residualDamage(
      const crit::CriticalityResult& analysis) const;

  /// Table listing the hardened primitives with cost and avoided damage.
  TextTable report(const crit::CriticalityResult& analysis,
                   const CostModel& model = {}) const;

 private:
  const rsn::Network* net_;
  DynamicBitset hardened_;
};

/// The two solutions Table I reports for every benchmark.
struct PaperSolutions {
  /// "Minimize cost, Damage <= frac * maxDamage" (cols 7-8).
  std::optional<moo::Individual> minCost;
  /// "Minimize damage, Cost <= frac * maxCost"   (cols 9-10).
  std::optional<moo::Individual> minDamage;
};

PaperSolutions extractPaperSolutions(const moo::ParetoArchive& archive,
                                     const HardeningProblem& problem,
                                     double frac = 0.10);

/// Plan serialization: one primitive name per line ("# ..." comments
/// allowed).  The format survives renumbering — only names are stored —
/// so a plan written for a netlist can be applied to any re-parse of it.
void writePlan(std::ostream& os, const HardeningPlan& plan);
HardeningPlan readPlan(std::istream& is, const rsn::Network& net);

/// Checks that no *critical* instrument (per spec flags) can be lost to a
/// fault at an unhardened primitive.  Exact: walks every fault effect.
/// Returns the list of violating faults (empty = plan is safe).
std::vector<fault::Fault> criticalExposures(const rsn::Network& net,
                                            const rsn::CriticalitySpec& spec,
                                            const HardeningPlan& plan);

}  // namespace rrsn::harden

// Hardening cost model (the c_i of Eq. 3).
//
// The paper leaves the per-primitive cost abstract ("the scheme is
// independent of the actual hardening technique").  We use an
// area-motivated default: hardening a scan multiplexer (e.g. local TMR of
// the mux and its address latch, [11]) costs a fixed number of units;
// hardening a segment scales with its cell count, since every scan
// flip-flop needs a hardened variant.  All thresholds in the experiments
// are *relative* (10% of the all-hardened cost), so results are
// well-defined under any positive model; see EXPERIMENTS.md.
#pragma once

#include <cstdint>
#include <vector>

#include "rsn/flat.hpp"
#include "rsn/network.hpp"

namespace rrsn::harden {

struct CostModel {
  std::uint64_t muxCost = 5;           ///< per multiplexer
  std::uint64_t segmentBaseCost = 1;   ///< per segment
  std::uint32_t cellsPerExtraUnit = 8; ///< +1 unit per 8 scan cells

  /// Cost of hardening one primitive.
  std::uint64_t costOf(const rsn::Network& net, rsn::PrimitiveRef ref) const {
    if (ref.kind == rsn::PrimitiveRef::Kind::Mux) return muxCost;
    const auto& seg = net.segment(ref.index);
    return segmentBaseCost + (seg.length + cellsPerExtraUnit - 1) /
                                 cellsPerExtraUnit;
  }

  /// Per-linear-id cost vector.
  std::vector<std::uint64_t> costs(const rsn::Network& net) const {
    std::vector<std::uint64_t> out(net.primitiveCount());
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] = costOf(net, net.refOf(i));
    return out;
  }

  /// Same vector from the flat view: one contiguous sweep over the
  /// segment-length span instead of a refOf/segment lookup per id
  /// (linear ids are segments [0, S) then muxes — the arena's order).
  std::vector<std::uint64_t> costs(const rsn::FlatNetwork& flat) const {
    const auto segLength = flat.segLength();
    std::vector<std::uint64_t> out(flat.segmentCount() + flat.muxCount());
    for (std::size_t s = 0; s < segLength.size(); ++s)
      out[s] = segmentBaseCost +
               (segLength[s] + cellsPerExtraUnit - 1) / cellsPerExtraUnit;
    for (std::size_t m = flat.segmentCount(); m < out.size(); ++m)
      out[m] = muxCost;
    return out;
  }
};

}  // namespace rrsn::harden

// Simplified fault-*tolerant* RSN augmentation — the state of the art the
// paper argues against (Sec. I, [4] Brandhofer/Kochte/Wunderlich,
// DATE'20): instead of hardening cells, augment the network with
// additional connectivities so that access can be re-routed around a
// defect.  We implement the skip-connectivity variant: every scan
// segment that is not already individually bypassable gets a private
// bypass multiplexer, and every existing multiplexer group can be
// skipped as a whole.
//
// Properties (verified by tests):
//  * every single segment *break* is tolerated — all other instruments
//    remain observable and settable by routing around the defect;
//  * mux stuck-at faults are isolated: everything outside the stuck
//    multiplexer's branches stays accessible (full tolerance of stuck
//    faults needs redundant branch entries, which [4] synthesizes with
//    an elaborate ILP; out of scope here);
//  * the topology CHANGES — recorded access patterns of the original
//    network do not replay (the paper's compatibility argument), and the
//    added multiplexers cost hardware proportional to the segment count,
//    which is what selective hardening avoids.
#pragma once

#include "harden/cost_model.hpp"
#include "rsn/network.hpp"

namespace rrsn::harden {

/// Result of the augmentation.
struct FaultTolerantRsn {
  rsn::Network network;       ///< the augmented (topology-changed) RSN
  std::size_t addedMuxes = 0; ///< skip multiplexers inserted
  std::uint64_t addedCost = 0;///< their hardware cost under the model
};

/// Builds the skip-connectivity augmentation of `net`.  Instrument names
/// and segment names are preserved; added muxes are named "ftmx_<n>" and
/// are TAP-controlled (their addresses do not travel through the RSN).
FaultTolerantRsn augmentFaultTolerant(const rsn::Network& net,
                                      const CostModel& model = {});

}  // namespace rrsn::harden

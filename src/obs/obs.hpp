// Observability layer: hierarchical spans, counters and histograms for
// the heavy kernels (criticality sweep, fault dictionary, campaign probe
// loop, EA generation phases, retargeting).
//
// Design constraints, in priority order:
//  1. *Zero-cost when off.*  Every hot-path hook degenerates to one
//     atomic load plus a branch on null when tracing is disabled —
//     measured <2 % wall-clock overhead on spea2_50gen.  No allocation,
//     no clock read, no string.
//  2. *No result perturbation.*  Instrumentation never touches an Rng,
//     never changes chunking or scheduling, and only writes state owned
//     by the recording thread.  Campaign reports and Pareto fronts are
//     byte-identical with tracing on vs. off at any RRSN_THREADS.
//  3. *Deterministic aggregation.*  Each OS thread records into its own
//     lock-free ring buffer (single writer, no shared mutable state on
//     the hot path); per-thread counter/span/histogram aggregates are
//     merged by commutative sum/max when the pool is quiescent, so the
//     aggregated metrics are a function of the work done, not of the
//     scheduling — identical at RRSN_THREADS=1 and 64.
//
// Activation: obs::enable() installs the process recorder; the first
// hot-path hit also consults the RRSN_TRACE environment variable once
// (RRSN_TRACE=1 auto-enables, so an instrumented test suite exercises
// the recording paths without code changes).  Exports: Chrome
// trace-event JSON (chrome://tracing / Perfetto), a canonical metrics
// JSON document, and a compact text summary via the TextTable writer.
//
// Invariant self-checks double as a bug detector: span begin/end balance
// is tracked live, and subsystem accounting checks (campaign probe count
// vs. classification count, EA offspring objective spot-checks) report a
// typed Status through raiseIfError() — failing loudly with an
// InvariantError instead of silently diverging.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/json.hpp"
#include "support/status.hpp"
#include "support/table.hpp"

namespace rrsn::obs {

/// Key of one registered metric (span, counter or histogram).  The
/// registry is process-lifetime and append-only; registering the same
/// name twice returns the same id, so file-local
/// `static const MetricId k... = obs::counter("...")` definitions are
/// cheap and idempotent.
using MetricId = std::uint32_t;

enum class MetricKind : std::uint8_t { Span, Counter, Histogram };

/// Registers (or looks up) a metric; cold path, safe from any thread.
MetricId span(const char* name);
MetricId counter(const char* name);
MetricId histogram(const char* name);

/// Recorder lifecycle.  enable()/disable() flip recording; buffers
/// persist across disable so a snapshot after the workload still sees
/// everything.  All three also latch the RRSN_TRACE decision, so an
/// explicit call always wins over the environment.
struct Options {
  /// Per-thread trace-event ring capacity; older events are overwritten
  /// once full (aggregates stay exact, `droppedEvents` counts the loss).
  std::size_t ringCapacity = std::size_t{1} << 15;
};
void enable(const Options& options = {});
void disable();
bool enabled();

/// Clears recorded events and aggregates (not the registry).  Only call
/// while no parallel region is active and no span is open.
void reset();

namespace detail {

struct ThreadBuffer;

/// The recording buffer of the calling thread, or nullptr when tracing
/// is off.  This is the single hot-path gate: one acquire load + branch.
ThreadBuffer* tls();

void spanBeginImpl(ThreadBuffer* b, MetricId id);
void spanEndImpl(ThreadBuffer* b, MetricId id);
void countImpl(ThreadBuffer* b, MetricId id, std::uint64_t n);
void sampleImpl(ThreadBuffer* b, MetricId id, std::uint64_t value);

}  // namespace detail

/// Adds `n` to a counter (no-op when disabled).
inline void count(MetricId id, std::uint64_t n = 1) {
  if (detail::ThreadBuffer* b = detail::tls()) detail::countImpl(b, id, n);
}

/// Records one histogram sample (log2 buckets; no-op when disabled).
inline void sample(MetricId id, std::uint64_t value) {
  if (detail::ThreadBuffer* b = detail::tls()) detail::sampleImpl(b, id, value);
}

/// Non-RAII span markers for call sites whose begin and end are in
/// different scopes.  Prefer ScopedSpan; an end without a matching begin
/// is recorded as a balance violation, never UB.
inline void spanBegin(MetricId id) {
  if (detail::ThreadBuffer* b = detail::tls()) detail::spanBeginImpl(b, id);
}
inline void spanEnd(MetricId id) {
  if (detail::ThreadBuffer* b = detail::tls()) detail::spanEndImpl(b, id);
}

/// RAII span: records one interval on the calling thread's buffer.
/// Captures the buffer at construction so a concurrent disable() cannot
/// strand a half-open span.
class ScopedSpan {
 public:
  explicit ScopedSpan(MetricId id) : buf_(detail::tls()), id_(id) {
    if (buf_ != nullptr) detail::spanBeginImpl(buf_, id_);
  }
  ~ScopedSpan() {
    if (buf_ != nullptr) detail::spanEndImpl(buf_, id_);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  detail::ThreadBuffer* buf_;
  MetricId id_;
};

// Convenience macro: one static registration + one RAII span.
#define RRSN_OBS_CONCAT_IMPL(a, b) a##b
#define RRSN_OBS_CONCAT(a, b) RRSN_OBS_CONCAT_IMPL(a, b)
#define RRSN_OBS_SPAN(name)                                            \
  static const ::rrsn::obs::MetricId RRSN_OBS_CONCAT(rrsnObsSpanId_,   \
                                                     __LINE__) =       \
      ::rrsn::obs::span(name);                                         \
  ::rrsn::obs::ScopedSpan RRSN_OBS_CONCAT(rrsnObsSpan_, __LINE__)(     \
      RRSN_OBS_CONCAT(rrsnObsSpanId_, __LINE__))

// ------------------------------------------------------------ snapshot

/// Aggregate of one span name across all threads.
struct SpanStats {
  std::uint64_t count = 0;
  std::uint64_t totalNs = 0;
  std::uint64_t maxNs = 0;
};

/// Log2-bucketed histogram aggregate: bucket k counts samples of bit
/// width k, i.e. in [2^(k-1), 2^k); bucket 0 counts zeros.
struct HistogramStats {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::vector<std::uint64_t> buckets;  ///< 64 entries once non-empty
};

/// One merged trace interval; times are ns since the recorder epoch.
struct TraceEvent {
  MetricId name = 0;
  std::uint32_t tid = 0;   ///< recording thread (registration order)
  std::uint32_t depth = 0; ///< span nesting depth on that thread
  std::uint64_t beginNs = 0;
  std::uint64_t endNs = 0;
  std::uint64_t seq = 0;   ///< per-thread completion sequence number
};

/// Deterministically merged view of everything recorded so far.  Only
/// call while no parallel region is active (the per-thread buffers are
/// single-writer and must be quiescent); the merge sorts events by
/// (beginNs, endNs, tid, seq) and folds aggregates with sum/max, so the
/// aggregate part is independent of scheduling and thread count.
struct Snapshot {
  std::vector<std::string> names;               ///< MetricId -> name
  std::vector<MetricKind> kinds;                ///< MetricId -> kind
  std::vector<std::pair<MetricId, std::uint64_t>> counters;
  std::vector<std::pair<MetricId, SpanStats>> spans;
  std::vector<std::pair<MetricId, HistogramStats>> histograms;
  std::vector<TraceEvent> events;
  std::uint64_t droppedEvents = 0;
  std::uint64_t threadsSeen = 0;
  /// Span begin/end balance problems (end without begin, span still
  /// open at snapshot time), one message each.
  std::vector<std::string> violations;
};
Snapshot snapshot();

// ------------------------------------------------------------- exports

/// Chrome trace-event JSON ("X" complete events, ts/dur in µs); load in
/// chrome://tracing or https://ui.perfetto.dev.
std::string traceEventJson(const Snapshot& snap);

/// Canonical metrics document (sorted keys, integral values): counters,
/// span aggregates, histograms, drop/violation accounting.
json::Value metricsJson(const Snapshot& snap);

/// Compact text summary (one row per span/counter/histogram).
TextTable summaryTable(const Snapshot& snap);

// --------------------------------------------- invariant self-checks

/// Thrown by raiseIfError: an always-on accounting invariant failed.
class InvariantError : public Error {
 public:
  explicit InvariantError(Status status)
      : Error("observability invariant violated — " + status.toString()),
        status_(std::move(status)) {}
  const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Loud failure path of the self-checks: ok is a no-op, anything else
/// throws InvariantError carrying the typed status.
inline void raiseIfError(const Status& status) {
  if (!status.ok()) throw InvariantError(status);
}

/// Every recorded span must have closed and no end may have arrived
/// without a begin.  OK when tracing never ran.
Status checkSpanBalance();

}  // namespace rrsn::obs

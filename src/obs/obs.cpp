#include "obs/obs.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>

namespace rrsn::obs {

namespace {

// ------------------------------------------------------------ registry

/// Process-lifetime metric registry.  Append-only; ids are indices.
struct Registry {
  std::mutex mutex;
  std::vector<std::string> names;
  std::vector<MetricKind> kinds;
  std::map<std::string, MetricId> byName;
};

Registry& registry() {
  static Registry r;
  return r;
}

MetricId registerMetric(const char* name, MetricKind kind) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  const auto it = r.byName.find(name);
  if (it != r.byName.end()) {
    RRSN_CHECK(r.kinds[it->second] == kind,
               std::string("metric '") + name +
                   "' registered with two different kinds");
    return it->second;
  }
  const auto id = static_cast<MetricId>(r.names.size());
  r.names.emplace_back(name);
  r.kinds.push_back(kind);
  r.byName.emplace(name, id);
  return id;
}

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

}  // namespace

namespace detail {

/// One raw recorded interval (ring slot).
struct RawEvent {
  MetricId name = 0;
  std::uint32_t depth = 0;
  std::uint64_t beginNs = 0;
  std::uint64_t endNs = 0;
  std::uint64_t seq = 0;
};

struct OpenSpan {
  MetricId name = 0;
  std::uint64_t beginNs = 0;
};

struct SpanAgg {
  std::uint64_t count = 0;
  std::uint64_t totalNs = 0;
  std::uint64_t maxNs = 0;
};

struct HistAgg {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;
  std::uint64_t max = 0;
  std::uint64_t buckets[64] = {};
};

/// Per-thread recording state.  Single writer (the owning thread); read
/// by snapshot() only while the pool is quiescent.  Owned by the
/// recorder so it outlives worker-thread exit and pool resizes.
struct ThreadBuffer {
  std::uint32_t tid = 0;
  std::vector<RawEvent> ring;   ///< capacity fixed at registration
  std::size_t head = 0;         ///< next write slot
  std::uint64_t pushed = 0;     ///< total events ever pushed
  std::uint64_t seq = 0;        ///< completion sequence counter
  std::vector<OpenSpan> stack;  ///< open spans, innermost last
  std::uint64_t unbalancedEnds = 0;
  // Aggregates indexed by MetricId (grown on demand; exact even when
  // the ring wraps).
  std::vector<std::uint64_t> counters;
  std::vector<SpanAgg> spans;
  std::vector<HistAgg> hists;
};

}  // namespace detail

namespace {

/// The process recorder.  Created once, intentionally never destroyed
/// (worker threads may outlive static destruction order); reachable via
/// g_instance so leak checkers see it as live.
struct Recorder {
  std::mutex mutex;
  std::vector<std::unique_ptr<detail::ThreadBuffer>> buffers;
  std::uint64_t epochNs = 0;
  std::size_t ringCapacity = 0;
};

Recorder* g_instance = nullptr;
std::mutex g_lifecycleMutex;
/// Non-null while recording; the hot-path gate.
std::atomic<Recorder*> g_active{nullptr};
/// 0 = RRSN_TRACE not consulted yet, 1 = decision latched.
std::atomic<int> g_envLatched{0};

detail::ThreadBuffer* registerThread(Recorder* r) {
  std::lock_guard<std::mutex> lock(r->mutex);
  auto buf = std::make_unique<detail::ThreadBuffer>();
  buf->tid = static_cast<std::uint32_t>(r->buffers.size());
  buf->ring.resize(r->ringCapacity);
  detail::ThreadBuffer* raw = buf.get();
  r->buffers.push_back(std::move(buf));
  return raw;
}

detail::ThreadBuffer* slowPathTls() {
  // First hot-path hit with no explicit enable()/disable() yet: consult
  // RRSN_TRACE exactly once for the whole process.
  {
    std::lock_guard<std::mutex> lock(g_lifecycleMutex);
    if (g_envLatched.load(std::memory_order_acquire) == 0) {
      // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv under
      // g_lifecycleMutex; nothing in the process calls setenv.
      const char* env = std::getenv("RRSN_TRACE");
      const bool on = env != nullptr && *env != '\0' &&
                      !(env[0] == '0' && env[1] == '\0');
      g_envLatched.store(1, std::memory_order_release);
      if (on) {
        if (g_instance == nullptr) g_instance = new Recorder();
        g_instance->ringCapacity = Options{}.ringCapacity;
        g_instance->epochNs = nowNs();
        g_active.store(g_instance, std::memory_order_release);
      }
    }
  }
  return detail::tls();
}

}  // namespace

namespace detail {

ThreadBuffer* tls() {
  Recorder* r = g_active.load(std::memory_order_acquire);
  if (r == nullptr) {
    if (g_envLatched.load(std::memory_order_acquire) != 0) return nullptr;
    return slowPathTls();
  }
  // Cache keyed by recorder identity: a reset() keeps buffers, so the
  // cached pointer stays valid for the thread's whole lifetime.
  thread_local struct Slot {
    Recorder* owner = nullptr;
    ThreadBuffer* buf = nullptr;
  } slot;
  if (slot.owner != r) {
    slot.buf = registerThread(r);
    slot.owner = r;
  }
  return slot.buf;
}

void spanBeginImpl(ThreadBuffer* b, MetricId id) {
  b->stack.push_back({id, nowNs()});
}

void spanEndImpl(ThreadBuffer* b, MetricId id) {
  const std::uint64_t end = nowNs();
  if (b->stack.empty() || b->stack.back().name != id) {
    // End without a matching begin: record the violation, drop the
    // event.  Never throws — this runs inside destructors.
    b->unbalancedEnds += 1;
    return;
  }
  const OpenSpan open = b->stack.back();
  b->stack.pop_back();
  const std::uint64_t dur = end >= open.beginNs ? end - open.beginNs : 0;
  if (b->spans.size() <= id) b->spans.resize(id + 1);
  SpanAgg& agg = b->spans[id];
  agg.count += 1;
  agg.totalNs += dur;
  agg.maxNs = std::max(agg.maxNs, dur);
  RawEvent ev;
  ev.name = id;
  ev.depth = static_cast<std::uint32_t>(b->stack.size());
  ev.beginNs = open.beginNs;
  ev.endNs = end;
  ev.seq = b->seq++;
  if (!b->ring.empty()) {
    b->ring[b->head] = ev;
    b->head = (b->head + 1) % b->ring.size();
  }
  b->pushed += 1;
}

void countImpl(ThreadBuffer* b, MetricId id, std::uint64_t n) {
  if (b->counters.size() <= id) b->counters.resize(id + 1, 0);
  b->counters[id] += n;
}

void sampleImpl(ThreadBuffer* b, MetricId id, std::uint64_t value) {
  if (b->hists.size() <= id) b->hists.resize(id + 1);
  HistAgg& h = b->hists[id];
  if (h.count == 0) {
    h.min = value;
    h.max = value;
  } else {
    h.min = std::min(h.min, value);
    h.max = std::max(h.max, value);
  }
  h.count += 1;
  h.sum += value;
  // Bucket k holds samples with bit_width == k, i.e. [2^(k-1), 2^k).
  int width = 0;
  for (std::uint64_t v = value; v != 0; v >>= 1) ++width;
  h.buckets[width] += 1;
}

}  // namespace detail

MetricId span(const char* name) {
  return registerMetric(name, MetricKind::Span);
}
MetricId counter(const char* name) {
  return registerMetric(name, MetricKind::Counter);
}
MetricId histogram(const char* name) {
  return registerMetric(name, MetricKind::Histogram);
}

void enable(const Options& options) {
  std::lock_guard<std::mutex> lock(g_lifecycleMutex);
  g_envLatched.store(1, std::memory_order_release);
  if (g_instance == nullptr) g_instance = new Recorder();
  if (g_active.load(std::memory_order_acquire) == nullptr) {
    g_instance->ringCapacity = options.ringCapacity;
    // Existing buffers (re-enable after disable) keep their capacity;
    // new threads pick up the new one.
    g_instance->epochNs = nowNs();
    g_active.store(g_instance, std::memory_order_release);
  }
}

void disable() {
  std::lock_guard<std::mutex> lock(g_lifecycleMutex);
  g_envLatched.store(1, std::memory_order_release);
  g_active.store(nullptr, std::memory_order_release);
}

bool enabled() {
  if (g_envLatched.load(std::memory_order_acquire) == 0) {
    (void)detail::tls();  // latch the RRSN_TRACE decision
  }
  return g_active.load(std::memory_order_acquire) != nullptr;
}

void reset() {
  std::lock_guard<std::mutex> lock(g_lifecycleMutex);
  if (g_instance == nullptr) return;
  std::lock_guard<std::mutex> rlock(g_instance->mutex);
  for (auto& buf : g_instance->buffers) {
    buf->head = 0;
    buf->pushed = 0;
    buf->seq = 0;
    buf->stack.clear();
    buf->unbalancedEnds = 0;
    buf->counters.clear();
    buf->spans.clear();
    buf->hists.clear();
    buf->ring.assign(buf->ring.size(), detail::RawEvent{});
    if (buf->ring.size() != g_instance->ringCapacity)
      buf->ring.assign(g_instance->ringCapacity, detail::RawEvent{});
  }
  g_instance->epochNs = nowNs();
}

Snapshot snapshot() {
  Snapshot snap;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mutex);
    snap.names = r.names;
    snap.kinds = r.kinds;
  }
  std::lock_guard<std::mutex> lifecycle(g_lifecycleMutex);
  if (g_instance == nullptr) return snap;
  Recorder& rec = *g_instance;
  std::lock_guard<std::mutex> lock(rec.mutex);

  const std::size_t metricCount = snap.names.size();
  std::vector<std::uint64_t> counters(metricCount, 0);
  std::vector<SpanStats> spans(metricCount);
  std::vector<HistogramStats> hists(metricCount);
  snap.threadsSeen = rec.buffers.size();

  for (const auto& buf : rec.buffers) {
    // Guard with metricCount: a metric registered between the registry
    // read above and this loop has no name slot yet and is skipped.
    for (std::size_t id = 0;
         id < std::min(buf->counters.size(), metricCount); ++id)
      counters[id] += buf->counters[id];
    for (std::size_t id = 0; id < std::min(buf->spans.size(), metricCount);
         ++id) {
      const detail::SpanAgg& a = buf->spans[id];
      spans[id].count += a.count;
      spans[id].totalNs += a.totalNs;
      spans[id].maxNs = std::max(spans[id].maxNs, a.maxNs);
    }
    for (std::size_t id = 0; id < std::min(buf->hists.size(), metricCount);
         ++id) {
      const detail::HistAgg& h = buf->hists[id];
      if (h.count == 0) continue;
      HistogramStats& out = hists[id];
      if (out.count == 0) {
        out.min = h.min;
        out.max = h.max;
        out.buckets.assign(64, 0);
      } else {
        out.min = std::min(out.min, h.min);
        out.max = std::max(out.max, h.max);
      }
      out.count += h.count;
      out.sum += h.sum;
      for (std::size_t k = 0; k < 64; ++k) out.buckets[k] += h.buckets[k];
    }
    // Ring contents: the oldest surviving event sits at `head` once the
    // ring has wrapped.
    const std::size_t cap = buf->ring.size();
    const std::size_t live = static_cast<std::size_t>(
        std::min<std::uint64_t>(buf->pushed, cap));
    snap.droppedEvents += buf->pushed - live;
    for (std::size_t k = 0; k < live; ++k) {
      const std::size_t at = (buf->head + cap - live + k) % cap;
      const detail::RawEvent& raw = buf->ring[at];
      TraceEvent ev;
      ev.name = raw.name;
      ev.tid = buf->tid;
      ev.depth = raw.depth;
      ev.beginNs = raw.beginNs >= rec.epochNs ? raw.beginNs - rec.epochNs : 0;
      ev.endNs = raw.endNs >= rec.epochNs ? raw.endNs - rec.epochNs : 0;
      ev.seq = raw.seq;
      snap.events.push_back(ev);
    }
    for (const detail::OpenSpan& open : buf->stack) {
      snap.violations.push_back(
          "span '" + (open.name < snap.names.size() ? snap.names[open.name]
                                                    : std::string("?")) +
          "' still open on thread " + std::to_string(buf->tid));
    }
    if (buf->unbalancedEnds != 0) {
      snap.violations.push_back(
          std::to_string(buf->unbalancedEnds) +
          " span end(s) without a matching begin on thread " +
          std::to_string(buf->tid));
    }
  }

  for (MetricId id = 0; id < metricCount; ++id) {
    if (snap.kinds[id] == MetricKind::Counter && counters[id] != 0)
      snap.counters.emplace_back(id, counters[id]);
    if (spans[id].count != 0) snap.spans.emplace_back(id, spans[id]);
    if (hists[id].count != 0) snap.histograms.emplace_back(id, hists[id]);
  }

  // Deterministic merge order: wall time first, then recording thread
  // and its completion sequence as total tiebreak.
  std::sort(snap.events.begin(), snap.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              if (a.beginNs != b.beginNs) return a.beginNs < b.beginNs;
              if (a.endNs != b.endNs) return a.endNs < b.endNs;
              if (a.tid != b.tid) return a.tid < b.tid;
              return a.seq < b.seq;
            });
  return snap;
}

std::string traceEventJson(const Snapshot& snap) {
  json::Array events;
  for (const TraceEvent& ev : snap.events) {
    json::Object o;
    o["name"] = json::Value(ev.name < snap.names.size()
                                ? snap.names[ev.name]
                                : "metric#" + std::to_string(ev.name));
    o["cat"] = json::Value("rrsn");
    o["ph"] = json::Value("X");
    o["ts"] = json::Value(static_cast<double>(ev.beginNs) / 1e3);
    o["dur"] =
        json::Value(static_cast<double>(ev.endNs - ev.beginNs) / 1e3);
    o["pid"] = json::Value(std::int64_t{0});
    o["tid"] = json::Value(static_cast<std::int64_t>(ev.tid));
    events.push_back(json::Value(std::move(o)));
  }
  json::Object root;
  root["displayTimeUnit"] = json::Value("ms");
  root["traceEvents"] = json::Value(std::move(events));
  root["otherData"] = json::Value(json::Object{
      {"producer", json::Value("rrsn_obs")},
      {"dropped_events",
       json::Value(static_cast<std::uint64_t>(snap.droppedEvents))}});
  return json::serialize(json::Value(std::move(root)), 1);
}

json::Value metricsJson(const Snapshot& snap) {
  json::Object counters;
  for (const auto& [id, v] : snap.counters)
    counters[snap.names[id]] = json::Value(v);
  json::Object spans;
  for (const auto& [id, s] : snap.spans) {
    json::Object o;
    o["count"] = json::Value(s.count);
    o["total_ns"] = json::Value(s.totalNs);
    o["max_ns"] = json::Value(s.maxNs);
    spans[snap.names[id]] = json::Value(std::move(o));
  }
  json::Object hists;
  for (const auto& [id, h] : snap.histograms) {
    json::Object o;
    o["count"] = json::Value(h.count);
    o["sum"] = json::Value(h.sum);
    o["min"] = json::Value(h.min);
    o["max"] = json::Value(h.max);
    json::Array buckets;
    for (std::uint64_t b : h.buckets) buckets.push_back(json::Value(b));
    o["log2_buckets"] = json::Value(std::move(buckets));
    hists[snap.names[id]] = json::Value(std::move(o));
  }
  json::Array violations;
  for (const std::string& v : snap.violations)
    violations.push_back(json::Value(v));
  json::Object root;
  root["counters"] = json::Value(std::move(counters));
  root["spans"] = json::Value(std::move(spans));
  root["histograms"] = json::Value(std::move(hists));
  root["dropped_events"] = json::Value(snap.droppedEvents);
  root["threads"] = json::Value(snap.threadsSeen);
  root["violations"] = json::Value(std::move(violations));
  return json::Value(std::move(root));
}

TextTable summaryTable(const Snapshot& snap) {
  TextTable t({"metric", "kind", "count", "total [ms]", "mean [us]",
               "max [us]"});
  t.setAlign(0, TextTable::Align::Left);
  t.setAlign(1, TextTable::Align::Left);
  const auto fixed = [](double v) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    return std::string(buf);
  };
  for (const auto& [id, s] : snap.spans) {
    t.addRow({snap.names[id], "span", withThousands(s.count),
              fixed(static_cast<double>(s.totalNs) / 1e6),
              fixed(static_cast<double>(s.totalNs) /
                    (1e3 * static_cast<double>(s.count))),
              fixed(static_cast<double>(s.maxNs) / 1e3)});
  }
  for (const auto& [id, v] : snap.counters) {
    t.addRow({snap.names[id], "counter", withThousands(v), "-", "-", "-"});
  }
  for (const auto& [id, h] : snap.histograms) {
    t.addRow({snap.names[id], "histogram", withThousands(h.count),
              withThousands(h.sum),
              fixed(static_cast<double>(h.sum) /
                    std::max<double>(1.0, static_cast<double>(h.count))),
              withThousands(h.max)});
  }
  return t;
}

Status checkSpanBalance() {
  const Snapshot snap = snapshot();
  if (snap.violations.empty()) return Status{};
  std::string msg = "span balance violated: " + snap.violations.front();
  if (snap.violations.size() > 1) {
    msg += " (+" + std::to_string(snap.violations.size() - 1) + " more)";
  }
  return Status::internal(std::move(msg));
}

}  // namespace rrsn::obs

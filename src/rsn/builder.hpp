// Compositional construction of RSNs.
//
// Example (the paper's Fig. 1 network lives in example_networks.hpp):
//
//   NetworkBuilder b("demo");
//   auto i1 = b.segment("tdr1", 8, "thermal_sensor");
//   auto core = b.sib("sib0", i1);              // SIB gating the sensor TDR
//   auto byp  = b.mux("m0", {core, b.wire()});  // bypassable sub-network
//   b.setTop(b.chain({b.segment("cfg", 1), byp}));
//   Network net = b.build();
//
// Handles are plain node ids; every handle must be used exactly once in
// the final structure (enforced by Network::validate()).
#pragma once

#include <string>
#include <vector>

#include "rsn/network.hpp"

namespace rrsn::rsn {

class NetworkBuilder {
 public:
  /// Opaque handle to a structure fragment under construction.
  using Handle = NodeId;

  explicit NetworkBuilder(std::string name) : name_(std::move(name)) {}

  /// A direct connection without scan cells (e.g. a SIB bypass).
  Handle wire();

  /// A scan segment of `length` cells.  If `instrumentName` is non-empty,
  /// an instrument of that name is created and attached to the segment.
  Handle segment(const std::string& name, std::uint32_t length = 1,
                 const std::string& instrumentName = {});

  /// Series composition in scan-in -> scan-out order.
  Handle chain(std::vector<Handle> parts);

  /// Parallel composition closed by a new scan multiplexer; branch k is
  /// selected by address value k.  `controlSegment` optionally names an
  /// already-created segment driving the address port.
  Handle mux(const std::string& name, std::vector<Handle> branches,
             const std::string& controlSegment = {});

  /// Segment Insertion Bit: a 1-bit config register `name` plus a mux
  /// `name + "_mux"`.  Asserted (address 1) the scan path runs through
  /// `content` and then the SIB register; deasserted it bypasses the
  /// content.  The SIB register drives its own mux address.
  Handle sib(const std::string& name, Handle content);

  /// Declares the outermost structure (scan-in -> top -> scan-out).
  void setTop(Handle top);

  /// Number of segments / muxes created so far (useful for generators
  /// targeting exact primitive counts).
  std::size_t segmentCount() const { return segments_.size(); }
  std::size_t muxCount() const { return muxes_.size(); }

  /// Validates and produces the immutable network.  The builder is left
  /// in a moved-from state.
  Network build();

 private:
  std::string name_;
  std::vector<Segment> segments_;
  std::vector<Mux> muxes_;
  std::vector<Instrument> instruments_;
  Structure structure_;
  bool topSet_ = false;
};

}  // namespace rrsn::rsn

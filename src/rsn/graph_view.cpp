#include "rsn/graph_view.hpp"

namespace rrsn::rsn {

namespace {

/// Recursively wires `node`, entering from `in`; returns the exit vertex.
graph::VertexId emit(const Network& net, const Structure& st, NodeId nodeId,
                     graph::VertexId in, GraphView& gv) {
  const auto& n = st.node(nodeId);
  switch (n.kind) {
    case NodeKind::Wire:
      return in;
    case NodeKind::Segment: {
      const graph::VertexId v = gv.segmentVertex[n.prim];
      gv.graph.addEdge(in, v);
      return v;
    }
    case NodeKind::Serial: {
      graph::VertexId cur = in;
      for (NodeId c : n.children) cur = emit(net, st, c, cur, gv);
      return cur;
    }
    case NodeKind::MuxJoin: {
      const graph::VertexId fo = gv.fanoutVertex[n.prim];
      const graph::VertexId mx = gv.muxVertex[n.prim];
      gv.graph.addEdge(in, fo);
      for (NodeId branch : n.children) {
        const graph::VertexId exit = emit(net, st, branch, fo, gv);
        gv.graph.addEdge(exit, mx);
        gv.muxBranchExit[n.prim].push_back(exit);
      }
      return mx;
    }
  }
  throw Error("unreachable structure node kind");
}

}  // namespace

GraphView buildGraphView(const Network& net) {
  GraphView gv;
  gv.scanIn = gv.graph.addVertex("SI");
  for (const Segment& s : net.segments())
    gv.segmentVertex.push_back(gv.graph.addVertex(s.name));
  for (const Mux& m : net.muxes()) {
    gv.muxVertex.push_back(gv.graph.addVertex(m.name));
    gv.fanoutVertex.push_back(gv.graph.addVertex("fo_" + m.name));
  }
  gv.muxBranchExit.resize(net.muxes().size());
  gv.scanOut = gv.graph.addVertex("SO");

  const graph::VertexId exit =
      emit(net, net.structure(), net.structure().root(), gv.scanIn, gv);
  gv.graph.addEdge(exit, gv.scanOut);
  return gv;
}

std::string toDot(const Network& net) {
  const GraphView gv = buildGraphView(net);
  return graph::toDot(gv.graph, net.name(), [&](graph::VertexId v) {
    if (v == gv.scanIn || v == gv.scanOut) return std::string("shape=ellipse");
    for (std::size_t s = 0; s < gv.segmentVertex.size(); ++s) {
      if (gv.segmentVertex[s] == v) {
        return net.segment(static_cast<SegmentId>(s)).instrument != kNone
                   ? std::string("shape=box,style=filled,fillcolor=lightyellow")
                   : std::string("shape=box");
      }
    }
    for (graph::VertexId m : gv.muxVertex)
      if (m == v) return std::string("shape=trapezium");
    return std::string("shape=point");
  });
}

}  // namespace rrsn::rsn

// Arena-backed structure-of-arrays core of an RSN (`FlatNetwork`).
//
// The pointer-rich Network / GraphView model is convenient to build and
// validate, but every hot analysis kernel (criticality, dictionary
// sweeps, campaign oracles, SPEA-2 fitness assembly) wants contiguous
// id-indexed arrays it can stream with no pointer chasing.  This module
// lowers a validated Network exactly once into a single relocatable
// buffer — one bump-allocated arena holding every derived array the
// kernels consume:
//
//   * per-segment: scan length, instrument id, flags (SIB register /
//     controls-a-mux), graph vertex, configuration depth, guard set
//     (CSR over sorted (mux, branch) selections);
//   * per-mux: control segment + its vertex, arity, graph vertex,
//     demand depth, selectable-word offset, branch exit vertices (CSR);
//   * per-instrument: segment, vertex, damage weights (zero unless a
//     CriticalitySpec is given at lowering time);
//   * data graph: forward and transposed CSR adjacency whose edges carry
//     the mux guard annotation (sim::ControlView projects these);
//   * control-dependency graph: CSR from each segment to the muxes it
//     addresses;
//   * per-vertex: control-register flag, owning mux.
//
// Layout: a fixed header (magic, format version, FNV-1a content
// fingerprint, entity counts), a section table, then the 64-byte-aligned
// sections.  Because the arena is one flat buffer with self-describing
// offsets, serialization is a plain byte copy and deserialization is
// zero-copy: the loader adopts the buffer, validates the header and
// fingerprint, and re-derives the section pointers.  Corrupt, truncated
// or foreign files are rejected with a typed Status — never an
// exception — so service caches and campaign checkpoints can probe
// candidate files cheaply.
//
// The lowering itself is single-threaded and fully deterministic, so the
// serialized bytes are identical at any RRSN_THREADS (tested).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "graph/digraph.hpp"
#include "rsn/network.hpp"
#include "rsn/spec.hpp"
#include "support/io.hpp"
#include "support/status.hpp"

namespace rrsn::rsn {

/// Frozen flat view of one network.  Create with lower(); share by
/// shared_ptr (consumers keep the arena alive through their projection).
class FlatNetwork {
 public:
  /// Read-only view into one arena section.
  template <typename T>
  class Span {
   public:
    Span() = default;
    Span(const T* data, std::size_t size) : data_(data), size_(size) {}

    const T& operator[](std::size_t i) const { return data_[i]; }
    const T* data() const { return data_; }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    const T* begin() const { return data_; }
    const T* end() const { return data_ + size_; }

   private:
    const T* data_ = nullptr;
    std::size_t size_ = 0;
  };

  /// One adjacency entry of the guarded data-graph CSR.  `mux` is the
  /// guarding mux (kNone for a plain edge); the guard passes iff any
  /// branch in branchPool[branchBegin, branchEnd) is selectable.  The
  /// annotation describes the *original* edge, so a row entry means the
  /// same thing from the forward and the transposed side.
  struct Edge {
    graph::VertexId other = graph::kNoVertex;
    std::uint32_t mux = kNone;
    std::uint32_t branchBegin = 0;
    std::uint32_t branchEnd = 0;

    bool operator==(const Edge&) const = default;
  };

  /// One (mux, non-reset branch) selection of a segment's guard set.
  struct GuardRef {
    std::uint32_t mux = kNone;
    std::uint32_t branch = 0;

    bool operator==(const GuardRef&) const = default;
  };

  /// Saturation value for cyclic configuration dependencies.
  static constexpr std::uint32_t kUnrealizableDepth = 0x40000000u;

  /// On-disk format identity ("RRSNFLAT" little-endian) and version.
  /// Any layout change bumps kFormatVersion; old readers reject new
  /// files (and vice versa) with kFailedPrecondition.
  static constexpr std::uint64_t kMagic = 0x54414c464e535252ULL;
  static constexpr std::uint32_t kFormatVersion = 1;

  /// Lowers `net` into a fresh arena.  The optional spec fills the
  /// per-instrument damage-weight sections (zeros otherwise).  Counts
  /// one `flat.flatten_calls` observation per invocation — campaigns
  /// and services are expected to lower once and share the pointer.
  static std::shared_ptr<const FlatNetwork> lower(
      const Network& net, const CriticalitySpec* spec = nullptr);

  /// Adopts a serialized arena (zero-copy: the vector is moved into the
  /// view).  Truncated or corrupt buffers yield kDataLoss, foreign
  /// bytes kInvalidArgument, a format-version mismatch
  /// kFailedPrecondition; `out` is only written on success.  Never
  /// throws.
  static Status deserialize(std::vector<std::uint8_t> buffer,
                            std::shared_ptr<const FlatNetwork>& out);

  /// Adopts a serialized arena straight from disk via mmap (PROT_READ,
  /// zero copies — the service cache's fast path).  The mapping lives
  /// as long as the view.  The same validation as deserialize() runs
  /// against the mapped bytes; a missing/unreadable file yields
  /// kUnavailable, and `out` is only written on success.  Never throws.
  static Status mapFile(const std::string& path,
                        std::shared_ptr<const FlatNetwork>& out);

  /// Durably serializes the arena to `path` (atomic tmp+fsync+rename
  /// via io::atomicWriteFile); on failure `path` is left untouched.
  Status writeTo(const std::string& path) const;

  /// The whole arena — writing these bytes to disk *is* serialization.
  /// Valid for any backing (owned buffer or mmap).
  Span<std::uint8_t> bytes() const { return {base_, size_}; }

  /// The owned arena vector.  Empty for an mmap-backed view — callers
  /// that need the raw bytes regardless of backing use bytes().
  const std::vector<std::uint8_t>& buffer() const { return arena_; }

  /// FNV-1a fingerprint of the section payloads (also stored in the
  /// header and re-checked by deserialize()).
  std::uint64_t fingerprint() const;

  /// Two views are equal iff their arenas are byte-identical (the
  /// lowering is canonical, so equal networks + specs compare equal).
  /// Backing (owned vs mmap) does not participate.
  bool operator==(const FlatNetwork& other) const;

  // ------------------------------------------------------------ counts
  std::size_t segmentCount() const;
  std::size_t muxCount() const;
  std::size_t instrumentCount() const;
  std::size_t vertexCount() const;
  graph::VertexId scanIn() const;
  graph::VertexId scanOut() const;

  // ------------------------------------------------------ per segment
  Span<std::uint32_t> segLength() const { return segLength_; }
  /// InstrumentId per segment; kNone when the segment carries none.
  Span<std::uint32_t> segInstrument() const { return segInstrument_; }
  /// Bit 0: SIB configuration register; bit 1: controls some mux.
  Span<std::uint8_t> segFlags() const { return segFlags_; }
  Span<graph::VertexId> segmentVertex() const { return segmentVertex_; }
  Span<std::uint32_t> segDepth() const { return segDepth_; }
  /// Guard-set CSR: segment s owns guardPool[guardOffsets[s],
  /// guardOffsets[s + 1]) — sorted (mux, branch != 0) selections.
  Span<std::uint32_t> guardOffsets() const { return guardOffsets_; }
  Span<GuardRef> guardPool() const { return guardPool_; }

  static constexpr std::uint8_t kSegFlagSib = 1;
  static constexpr std::uint8_t kSegFlagControlsMux = 2;

  // ---------------------------------------------------------- per mux
  Span<std::uint32_t> muxControl() const { return muxControl_; }
  Span<graph::VertexId> muxCtrlVertex() const { return muxCtrlVertex_; }
  Span<std::uint32_t> muxArity() const { return muxArity_; }
  Span<graph::VertexId> muxVertex() const { return muxVertex_; }
  Span<std::uint32_t> demandDepth() const { return demandDepth_; }
  Span<std::uint32_t> selOffset() const { return selOffset_; }
  /// Branch-exit CSR: branch b of mux m exits at
  /// muxBranchExit[muxBranchOffsets[m] + b].
  Span<std::uint32_t> muxBranchOffsets() const { return muxBranchOffsets_; }
  Span<graph::VertexId> muxBranchExit() const { return muxBranchExit_; }
  /// Muxes whose address comes from a control segment.
  Span<std::uint32_t> ctrlMuxes() const { return ctrlMuxes_; }
  /// Per-mux address-representability masks in the selectable layout.
  Span<std::uint64_t> representableWords() const { return representableWords_; }
  std::size_t selWordCount() const { return representableWords_.size(); }

  // -------------------------------------------------- control graph
  /// Control-dependency CSR: segment s addresses the muxes
  /// ctrlEdges[ctrlOffsets[s], ctrlOffsets[s + 1]).
  Span<std::uint32_t> ctrlOffsets() const { return ctrlOffsets_; }
  Span<std::uint32_t> ctrlEdges() const { return ctrlEdges_; }

  // --------------------------------------------------- per instrument
  Span<std::uint32_t> instrumentSegment() const { return instrumentSegment_; }
  Span<graph::VertexId> instrumentVertex() const { return instrumentVertex_; }
  Span<std::uint64_t> instrumentObsWeight() const { return instObsWeight_; }
  Span<std::uint64_t> instrumentSetWeight() const { return instSetWeight_; }

  // --------------------------------------------------- data graph CSR
  Span<std::uint32_t> fwdOffsets() const { return fwdOffsets_; }
  Span<Edge> fwdEdges() const { return fwdEdges_; }
  Span<std::uint32_t> bwdOffsets() const { return bwdOffsets_; }
  Span<Edge> bwdEdges() const { return bwdEdges_; }
  Span<std::uint32_t> branchPool() const { return branchPool_; }

  // -------------------------------------------------------- per vertex
  /// Nonzero iff the vertex holds some mux's address register.
  Span<std::uint8_t> ctrlRegVertex() const { return ctrlRegVertex_; }
  /// MuxId of a mux vertex; kNone otherwise.
  Span<std::uint32_t> muxOfVertex() const { return muxOfVertex_; }

 private:
  FlatNetwork() = default;

  /// Re-derives the cached section spans from [base_, base_ + size_)
  /// (after lowering, adopting a deserialized buffer, or mapping a
  /// file).  Returns a non-OK status when the section table does not
  /// describe a well-formed arena.
  Status attach();

  /// Arena backing: exactly one of arena_ (owned bytes) and mapped_
  /// (read-only file mapping) is non-empty; base_/size_ always name
  /// the live bytes and everything past construction reads only them.
  std::vector<std::uint8_t> arena_;
  io::MappedFile mapped_;
  const std::uint8_t* base_ = nullptr;
  std::size_t size_ = 0;

  Span<std::uint32_t> segLength_, segInstrument_, segDepth_, guardOffsets_;
  Span<std::uint8_t> segFlags_;
  Span<graph::VertexId> segmentVertex_;
  Span<GuardRef> guardPool_;
  Span<std::uint32_t> muxControl_, muxArity_, demandDepth_, selOffset_;
  Span<graph::VertexId> muxCtrlVertex_, muxVertex_, muxBranchExit_;
  Span<std::uint32_t> muxBranchOffsets_, ctrlMuxes_;
  Span<std::uint64_t> representableWords_;
  Span<std::uint32_t> ctrlOffsets_, ctrlEdges_;
  Span<std::uint32_t> instrumentSegment_;
  Span<graph::VertexId> instrumentVertex_;
  Span<std::uint64_t> instObsWeight_, instSetWeight_;
  Span<std::uint32_t> fwdOffsets_, bwdOffsets_, branchPool_;
  Span<Edge> fwdEdges_, bwdEdges_;
  Span<std::uint8_t> ctrlRegVertex_;
  Span<std::uint32_t> muxOfVertex_;
};

}  // namespace rrsn::rsn

// Flat directed-graph view of an RSN (Sec. III, Fig. 2).
//
// Vertices: the primary scan-in / scan-out ports, every scan segment,
// every scan multiplexer, and one fan-out vertex per parallel composition
// (the reconvergent fan-out stem whose closing reconvergence is the mux).
// Edges are the direct connectivities between them.
#pragma once

#include <string>
#include <vector>

#include "graph/digraph.hpp"
#include "rsn/network.hpp"

namespace rrsn::rsn {

/// The graph plus maps from RSN entities to vertex ids.
struct GraphView {
  graph::Digraph graph;
  graph::VertexId scanIn = graph::kNoVertex;
  graph::VertexId scanOut = graph::kNoVertex;
  std::vector<graph::VertexId> segmentVertex;  ///< per SegmentId
  std::vector<graph::VertexId> muxVertex;      ///< per MuxId
  std::vector<graph::VertexId> fanoutVertex;   ///< per MuxId (entry fan-out)
  /// Exit vertex of each mux branch (the vertex whose edge feeds the mux),
  /// indexed [mux][branch].  Wire branches exit at the fan-out vertex.
  std::vector<std::vector<graph::VertexId>> muxBranchExit;
};

/// Builds the flat graph view of `net`.
GraphView buildGraphView(const Network& net);

/// DOT rendering with RSN-aware shapes (segments: boxes, muxes:
/// trapezoids, fan-outs: points, ports: ellipses).
std::string toDot(const Network& net);

}  // namespace rrsn::rsn

#include "rsn/example_networks.hpp"

#include "rsn/builder.hpp"

namespace rrsn::rsn {

Network makeFig1Network() {
  NetworkBuilder b("fig1");
  // Configuration register controlling the outer bypass mux m0.
  auto c0 = b.segment("c0", 1);

  // Branch 0 of m0: SIB-gated instrument i1, two bypassable instruments
  // i2 / i3, and the trailing segment c2.
  auto segI1 = b.segment("seg_i1", 4, "i1");
  auto sb1 = b.sib("sb1", segI1);
  auto m1 = b.mux("m1", {b.segment("seg_i2", 3, "i2"), b.wire()});
  auto m2 = b.mux("m2", {b.segment("seg_i3", 5, "i3"), b.wire()});
  auto c2 = b.segment("c2", 1);
  auto inner = b.chain({sb1, m1, m2, c2});

  auto m0 = b.mux("m0", {inner, b.wire()}, "c0");
  auto c1 = b.segment("c1", 2);
  b.setTop(b.chain({c0, m0, c1}));
  return b.build();
}

CriticalitySpec makeFig1Spec(const Network& net) {
  CriticalitySpec spec(net.instruments().size());
  const auto assign = [&](const char* name, std::uint64_t obs,
                          std::uint64_t set) {
    const InstrumentId id = net.findInstrument(name);
    RRSN_CHECK(id != kNone, std::string("missing instrument ") + name);
    spec.of(id).obs = obs;
    spec.of(id).set = set;
  };
  assign("i1", 4, 1);
  assign("i2", 3, 3);
  assign("i3", 2, 5);
  return spec;
}

Network makeTinyNetwork() {
  NetworkBuilder b("tiny");
  auto a = b.segment("seg_a", 2, "inst_a");
  auto bypassable = b.mux("mx", {a, b.wire()});
  auto tail = b.segment("seg_b", 3, "inst_b");
  b.setTop(b.chain({bypassable, tail}));
  return b.build();
}

}  // namespace rrsn::rsn

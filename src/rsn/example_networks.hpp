// The paper's running example (Fig. 1/2/3/4) and small helper networks
// used throughout tests, examples and the figure-regeneration bench.
#pragma once

#include "rsn/network.hpp"
#include "rsn/spec.hpp"

namespace rrsn::rsn {

/// The Fig. 1 example RSN.
///
/// Scan path: SI -> c0 -> [m0: branch0 = sib sb1(seg_i1) -> m1(seg_i2 |
/// wire) -> m2(seg_i3 | wire) -> c2, branch1 = bypass wire] -> c1 -> SO.
///
/// It reproduces the structural facts the paper states:
///  * m0 dominates c2 and is its parent (closing reconvergence);
///  * m2 dominates m1 but is not its parent (they are neighbors);
///  * a stuck-at-1 fault of m0 makes instruments i1, i2, i3 inaccessible
///    (Fig. 4).
Network makeFig1Network();

/// Hand-assigned weights for the Fig. 1 instruments, used by the golden
/// criticality tests: i1 = (obs 4, set 1), i2 = (3, 3), i3 = (2, 5).
CriticalitySpec makeFig1Spec(const Network& net);

/// A minimal two-instrument network with one bypassable branch; handy for
/// unit tests that need the smallest interesting RSN.
Network makeTinyNetwork();

}  // namespace rrsn::rsn

#include "rsn/flat.hpp"

#include <algorithm>
#include <cstring>
#include <type_traits>
#include <utility>

#include "obs/obs.hpp"
#include "rsn/graph_view.hpp"
#include "support/error.hpp"
#include "support/hash.hpp"

namespace rrsn::rsn {

namespace {

// ------------------------------------------------------------- layout
//
// [Header][SectionDesc x kSectionCount][sections, each 64-byte aligned]
//
// The header and the section table are fixed-size trivially copyable
// structs with explicit field order; every multi-byte value is stored in
// native (little-endian on all supported targets) order.  Section
// payloads follow in SectionId order.  The fingerprint covers the
// section ids, sizes and payload bytes — not the header — so it is
// stable under header-only concerns and catches any payload corruption.

struct Header {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t sectionCount = 0;
  std::uint64_t fingerprint = 0;
  std::uint64_t byteSize = 0;
  std::uint64_t segments = 0;
  std::uint64_t muxes = 0;
  std::uint64_t instruments = 0;
  std::uint64_t vertices = 0;
  std::uint64_t dataEdges = 0;    ///< fwd CSR entries (== bwd entries)
  std::uint64_t branchPool = 0;
  std::uint64_t guardPool = 0;
  std::uint64_t selWords = 0;
  std::uint64_t ctrlMuxes = 0;
  std::uint64_t ctrlEdges = 0;
  std::uint64_t branchExits = 0;
  std::uint32_t scanIn = 0;
  std::uint32_t scanOut = 0;
};
static_assert(sizeof(Header) == 128, "serialized header layout changed");
static_assert(std::is_trivially_copyable_v<Header>);

struct SectionDesc {
  std::uint32_t id = 0;
  std::uint32_t elemSize = 0;
  std::uint64_t offset = 0;     ///< from the arena base; 64-byte aligned
  std::uint64_t byteCount = 0;  ///< elemSize * element count, unpadded
};
static_assert(sizeof(SectionDesc) == 24, "serialized section desc changed");
static_assert(std::is_trivially_copyable_v<SectionDesc>);

enum SectionId : std::uint32_t {
  kSegLength = 0,
  kSegInstrument,
  kSegFlags,
  kSegVertex,
  kSegDepth,
  kGuardOffsets,
  kGuardPool,
  kMuxControl,
  kMuxCtrlVertex,
  kMuxArity,
  kMuxVertex,
  kDemandDepth,
  kSelOffset,
  kMuxBranchOffsets,
  kMuxBranchExit,
  kCtrlMuxes,
  kRepresentableWords,
  kCtrlOffsets,
  kCtrlEdges,
  kInstSegment,
  kInstVertex,
  kInstObsWeight,
  kInstSetWeight,
  kFwdOffsets,
  kFwdEdges,
  kBwdOffsets,
  kBwdEdges,
  kBranchPool,
  kCtrlRegVertex,
  kMuxOfVertex,
  kSectionCount,
};

constexpr std::uint64_t kSectionAlign = 64;

std::uint64_t alignUp(std::uint64_t v) {
  return (v + kSectionAlign - 1) & ~(kSectionAlign - 1);
}

/// Payload of one section about to be packed.
struct Pending {
  std::uint32_t elemSize = 0;
  const void* data = nullptr;
  std::uint64_t byteCount = 0;
};

template <typename T>
Pending pend(const std::vector<T>& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  return {static_cast<std::uint32_t>(sizeof(T)), v.data(),
          static_cast<std::uint64_t>(v.size() * sizeof(T))};
}

/// Trailing-word mask that keeps bits [0, arity % 64) — all-ones when
/// the arity fills the word.
std::uint64_t tailMask(std::uint32_t arity, std::size_t word) {
  const std::size_t hi = (static_cast<std::size_t>(arity) + 63) / 64 - 1;
  if (word < hi || arity % 64 == 0) return ~0ULL;
  return (1ULL << (arity % 64)) - 1;
}

const Header& headerOf(const std::uint8_t* base) {
  return *reinterpret_cast<const Header*>(base);
}

/// Fingerprint of the section payloads: id, byte count and bytes of
/// every section in id order (so a boundary shift cannot cancel out).
std::uint64_t fingerprintSections(const std::uint8_t* base,
                                  const SectionDesc* table,
                                  std::uint32_t count) {
  std::uint64_t h = hash::kFnvOffset;
  for (std::uint32_t i = 0; i < count; ++i) {
    hash::fnvMix(h, std::uint64_t{table[i].id});
    hash::fnvMix(h, table[i].byteCount);
    const std::uint8_t* bytes = base + table[i].offset;
    for (std::uint64_t b = 0; b < table[i].byteCount; ++b) {
      h ^= bytes[b];
      h *= hash::kFnvPrime;
    }
  }
  return h;
}

}  // namespace

std::shared_ptr<const FlatNetwork> FlatNetwork::lower(
    const Network& net, const CriticalitySpec* spec) {
  static const obs::MetricId kFlattenCalls =
      obs::counter("flat.flatten_calls");
  obs::count(kFlattenCalls);
  RRSN_OBS_SPAN("flat.lower");

  const GraphView gv = buildGraphView(net);
  const graph::Digraph& g = gv.graph;
  const std::size_t vertices = g.vertexCount();
  const std::size_t segCount = net.segments().size();
  const std::size_t muxCount = net.muxes().size();
  const std::size_t instCount = net.instruments().size();

  // ------------------------------------------------- per-segment arrays
  std::vector<std::uint32_t> segLength(segCount, 0);
  std::vector<std::uint32_t> segInstrument(segCount, kNone);
  std::vector<std::uint8_t> segFlags(segCount, 0);
  for (std::size_t s = 0; s < segCount; ++s) {
    const Segment& seg = net.segments()[s];
    segLength[s] = seg.length;
    segInstrument[s] = seg.instrument;
    if (seg.isSibRegister) segFlags[s] |= kSegFlagSib;
  }

  std::vector<std::uint32_t> instSegment(instCount, kNone);
  std::vector<graph::VertexId> instVertex(instCount, graph::kNoVertex);
  std::vector<std::uint64_t> instObs(instCount, 0);
  std::vector<std::uint64_t> instSet(instCount, 0);
  for (std::size_t i = 0; i < instCount; ++i) {
    instSegment[i] = net.instruments()[i].segment;
    instVertex[i] = gv.segmentVertex[instSegment[i]];
    if (spec != nullptr) {
      const DamageWeights& w = spec->of(static_cast<InstrumentId>(i));
      instObs[i] = w.obs;
      instSet[i] = w.set;
    }
  }

  // ---------------------------------------------- per-mux control data
  std::vector<std::uint32_t> muxOfVertex(vertices, kNone);
  for (std::size_t m = 0; m < muxCount; ++m)
    muxOfVertex[gv.muxVertex[m]] = static_cast<std::uint32_t>(m);

  std::vector<std::uint32_t> muxControl(muxCount, kNone);
  std::vector<graph::VertexId> muxCtrlVertex(muxCount, graph::kNoVertex);
  std::vector<std::uint32_t> muxArity(muxCount, 0);
  std::vector<std::uint32_t> selOffset(muxCount, 0);
  std::vector<std::uint32_t> ctrlMuxes;
  std::size_t selWords = 0;
  for (std::size_t m = 0; m < muxCount; ++m) {
    const auto arity = static_cast<std::uint32_t>(gv.muxBranchExit[m].size());
    muxArity[m] = arity;
    selOffset[m] = static_cast<std::uint32_t>(selWords);
    selWords += (static_cast<std::size_t>(arity) + 63) / 64;
    const SegmentId ctrl = net.muxes()[m].controlSegment;
    muxControl[m] = ctrl;
    if (ctrl == kNone) continue;
    muxCtrlVertex[m] = gv.segmentVertex[ctrl];
    ctrlMuxes.push_back(static_cast<std::uint32_t>(m));
    segFlags[ctrl] |= kSegFlagControlsMux;
  }

  std::vector<std::uint8_t> ctrlRegVertex(vertices, 0);
  for (std::size_t m = 0; m < muxCount; ++m)
    if (muxControl[m] != kNone)
      ctrlRegVertex[gv.segmentVertex[muxControl[m]]] = 1;

  std::vector<std::uint64_t> representableWords(selWords, 0);
  for (std::size_t m = 0; m < muxCount; ++m) {
    const std::uint32_t arity = muxArity[m];
    const std::size_t words = (static_cast<std::size_t>(arity) + 63) / 64;
    const SegmentId ctrl = muxControl[m];
    if (ctrl == kNone || segLength[ctrl] >= 32) {
      for (std::size_t w = 0; w < words; ++w)
        representableWords[selOffset[m] + w] = tailMask(arity, w);
      continue;
    }
    const std::uint64_t len = segLength[ctrl];
    for (std::uint32_t b = 0; b < arity; ++b) {
      if (b != 0 && b >= (std::uint64_t{1} << len)) continue;
      representableWords[selOffset[m] + (b >> 6)] |= 1ULL << (b & 63);
    }
  }

  // Control-dependency CSR: segment s -> the muxes it addresses, in mux
  // order (one mux has one control segment, so rows never overlap).
  std::vector<std::uint32_t> ctrlOffsets(segCount + 1, 0);
  for (const std::uint32_t m : ctrlMuxes) ctrlOffsets[muxControl[m] + 1] += 1;
  for (std::size_t s = 0; s < segCount; ++s)
    ctrlOffsets[s + 1] += ctrlOffsets[s];
  std::vector<std::uint32_t> ctrlEdges(ctrlMuxes.size(), 0);
  {
    std::vector<std::uint32_t> cursor(ctrlOffsets.begin(),
                                      ctrlOffsets.end() - 1);
    for (const std::uint32_t m : ctrlMuxes)
      ctrlEdges[cursor[muxControl[m]]++] = m;
  }

  // Branch-exit CSR (mux m, branch b -> exit vertex of that branch).
  std::vector<std::uint32_t> muxBranchOffsets(muxCount + 1, 0);
  for (std::size_t m = 0; m < muxCount; ++m)
    muxBranchOffsets[m + 1] =
        muxBranchOffsets[m] + static_cast<std::uint32_t>(muxArity[m]);
  std::vector<graph::VertexId> muxBranchExit(muxBranchOffsets[muxCount]);
  for (std::size_t m = 0; m < muxCount; ++m)
    std::copy(gv.muxBranchExit[m].begin(), gv.muxBranchExit[m].end(),
              muxBranchExit.begin() + muxBranchOffsets[m]);

  // --------------------------------------------------- guarded CSR
  // Branch span of the original edge exit -> mux(m): every branch of m
  // whose exit vertex is `exit` (parallel edges share the full span).
  std::vector<std::uint32_t> branchPool;
  const auto appendSpan = [&](std::uint32_t m, graph::VertexId exit) {
    const auto begin = static_cast<std::uint32_t>(branchPool.size());
    for (std::size_t b = 0; b < gv.muxBranchExit[m].size(); ++b)
      if (gv.muxBranchExit[m][b] == exit)
        branchPool.push_back(static_cast<std::uint32_t>(b));
    return std::pair{begin, static_cast<std::uint32_t>(branchPool.size())};
  };

  const graph::Csr fwd = graph::buildCsr(g, /*reverse=*/false);
  const graph::Csr bwd = graph::buildCsr(g, /*reverse=*/true);
  std::vector<Edge> fwdEdges(fwd.targets.size());
  std::vector<Edge> bwdEdges(bwd.targets.size());
  for (graph::VertexId v = 0; v < vertices; ++v) {
    for (std::uint32_t i = fwd.rowBegin(v); i < fwd.rowEnd(v); ++i) {
      // Original edge v -> t: guarded iff t is a mux vertex.
      const graph::VertexId t = fwd.targets[i];
      Edge e{t, muxOfVertex[t], 0, 0};
      if (e.mux != kNone)
        std::tie(e.branchBegin, e.branchEnd) = appendSpan(e.mux, v);
      fwdEdges[i] = e;
    }
    for (std::uint32_t i = bwd.rowBegin(v); i < bwd.rowEnd(v); ++i) {
      // Original edge p -> v: guarded iff v is a mux vertex.
      const graph::VertexId p = bwd.targets[i];
      Edge e{p, muxOfVertex[v], 0, 0};
      if (e.mux != kNone)
        std::tie(e.branchBegin, e.branchEnd) = appendSpan(e.mux, p);
      bwdEdges[i] = e;
    }
  }

  // ---------------------------------------------------- guard sets
  using GuardSet = std::vector<GuardRef>;
  std::vector<GuardSet> guardsOf(segCount);
  GuardSet cur;
  const auto walk = [&](auto&& self, NodeId id) -> void {
    const auto& n = net.structure().node(id);
    switch (n.kind) {
      case NodeKind::Segment:
        guardsOf[n.prim] = cur;
        return;
      case NodeKind::Wire:
        return;
      case NodeKind::Serial:
        for (const NodeId c : n.children) self(self, c);
        return;
      case NodeKind::MuxJoin: {
        const bool segCtrl = net.mux(n.prim).controlSegment != kNone;
        for (std::size_t b = 0; b < n.children.size(); ++b) {
          const bool guarded = segCtrl && b != 0;
          if (guarded)
            cur.push_back({n.prim, static_cast<std::uint32_t>(b)});
          self(self, n.children[b]);
          if (guarded) cur.pop_back();
        }
        return;
      }
    }
  };
  walk(walk, net.structure().root());

  // ------------------------------------------- configuration depths
  // Mutual recursion: a demand on mux m lands once its address register
  // is on the path (the register's own guards are set), so
  // demandDepth[m] = 1 + segDepth[control(m)], and segDepth[s] = max
  // demandDepth over guards(s).  Control registers are declared before
  // their mux, so real networks terminate; a (hypothetical) cyclic
  // dependency saturates instead of recursing forever.
  std::vector<std::uint32_t> demandDepth(muxCount, 0);
  std::vector<std::uint32_t> segDepth(segCount, 0);
  std::vector<char> segState(segCount, 0);  // 0 new, 1 visiting, 2 done
  const auto segDepthOf = [&](auto&& self, SegmentId s) -> std::uint32_t {
    if (segState[s] == 2) return segDepth[s];
    if (segState[s] == 1) return kUnrealizableDepth;
    segState[s] = 1;
    std::uint32_t depth = 0;
    for (const GuardRef& guard : guardsOf[s]) {
      depth = std::max(depth, std::min(kUnrealizableDepth,
                                       1 + self(self, muxControl[guard.mux])));
    }
    segState[s] = 2;
    segDepth[s] = depth;
    return depth;
  };
  for (SegmentId s = 0; s < segCount; ++s) segDepthOf(segDepthOf, s);
  for (const std::uint32_t m : ctrlMuxes)
    demandDepth[m] = std::min(kUnrealizableDepth,
                              1 + segDepthOf(segDepthOf, muxControl[m]));

  std::vector<std::uint32_t> guardOffsets(segCount + 1, 0);
  std::vector<GuardRef> guardPool;
  for (std::size_t s = 0; s < segCount; ++s) {
    std::sort(guardsOf[s].begin(), guardsOf[s].end(),
              [](const GuardRef& a, const GuardRef& b) {
                return a.mux != b.mux ? a.mux < b.mux : a.branch < b.branch;
              });
    guardOffsets[s] = static_cast<std::uint32_t>(guardPool.size());
    guardPool.insert(guardPool.end(), guardsOf[s].begin(), guardsOf[s].end());
  }
  guardOffsets[segCount] = static_cast<std::uint32_t>(guardPool.size());

  // ------------------------------------------------- pack the arena
  const std::vector<graph::VertexId>& segmentVertex = gv.segmentVertex;
  const std::vector<graph::VertexId>& muxVertex = gv.muxVertex;
  Pending pending[kSectionCount];
  pending[kSegLength] = pend(segLength);
  pending[kSegInstrument] = pend(segInstrument);
  pending[kSegFlags] = pend(segFlags);
  pending[kSegVertex] = pend(segmentVertex);
  pending[kSegDepth] = pend(segDepth);
  pending[kGuardOffsets] = pend(guardOffsets);
  pending[kGuardPool] = pend(guardPool);
  pending[kMuxControl] = pend(muxControl);
  pending[kMuxCtrlVertex] = pend(muxCtrlVertex);
  pending[kMuxArity] = pend(muxArity);
  pending[kMuxVertex] = pend(muxVertex);
  pending[kDemandDepth] = pend(demandDepth);
  pending[kSelOffset] = pend(selOffset);
  pending[kMuxBranchOffsets] = pend(muxBranchOffsets);
  pending[kMuxBranchExit] = pend(muxBranchExit);
  pending[kCtrlMuxes] = pend(ctrlMuxes);
  pending[kRepresentableWords] = pend(representableWords);
  pending[kCtrlOffsets] = pend(ctrlOffsets);
  pending[kCtrlEdges] = pend(ctrlEdges);
  pending[kInstSegment] = pend(instSegment);
  pending[kInstVertex] = pend(instVertex);
  pending[kInstObsWeight] = pend(instObs);
  pending[kInstSetWeight] = pend(instSet);
  pending[kFwdOffsets] = pend(fwd.offsets);
  pending[kFwdEdges] = pend(fwdEdges);
  pending[kBwdOffsets] = pend(bwd.offsets);
  pending[kBwdEdges] = pend(bwdEdges);
  pending[kBranchPool] = pend(branchPool);
  pending[kCtrlRegVertex] = pend(ctrlRegVertex);
  pending[kMuxOfVertex] = pend(muxOfVertex);

  SectionDesc table[kSectionCount];
  std::uint64_t at =
      alignUp(sizeof(Header) + kSectionCount * sizeof(SectionDesc));
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    table[i].id = i;
    table[i].elemSize = pending[i].elemSize;
    table[i].offset = at;
    table[i].byteCount = pending[i].byteCount;
    at = alignUp(at + pending[i].byteCount);
  }

  auto view = std::shared_ptr<FlatNetwork>(new FlatNetwork());
  // Zero-initialized arena: alignment padding between sections is
  // canonical, so byte equality of two arenas is meaningful.
  view->arena_.assign(at, 0);
  std::uint8_t* base = view->arena_.data();
  std::memcpy(base + sizeof(Header), table, sizeof table);
  for (std::uint32_t i = 0; i < kSectionCount; ++i)
    if (pending[i].byteCount != 0)
      std::memcpy(base + table[i].offset, pending[i].data,
                  pending[i].byteCount);

  Header hdr;
  hdr.magic = kMagic;
  hdr.version = kFormatVersion;
  hdr.sectionCount = kSectionCount;
  hdr.fingerprint =
      fingerprintSections(view->arena_.data(), table, kSectionCount);
  hdr.byteSize = at;
  hdr.segments = segCount;
  hdr.muxes = muxCount;
  hdr.instruments = instCount;
  hdr.vertices = vertices;
  hdr.dataEdges = fwdEdges.size();
  hdr.branchPool = branchPool.size();
  hdr.guardPool = guardPool.size();
  hdr.selWords = selWords;
  hdr.ctrlMuxes = ctrlMuxes.size();
  hdr.ctrlEdges = ctrlEdges.size();
  hdr.branchExits = muxBranchExit.size();
  hdr.scanIn = gv.scanIn;
  hdr.scanOut = gv.scanOut;
  std::memcpy(base, &hdr, sizeof hdr);

  const Status attached = view->attach();
  RRSN_CHECK(attached.ok(),
             "freshly lowered arena failed to attach: " + attached.toString());
  return view;
}

Status FlatNetwork::attach() {
  if (!mapped_.empty()) {
    base_ = mapped_.data();
    size_ = mapped_.size();
  } else {
    base_ = arena_.data();
    size_ = arena_.size();
  }
  if (size_ < sizeof(Header))
    return Status::dataLoss("flat arena shorter than its header (" +
                            std::to_string(size_) + " bytes)");
  Header hdr;
  std::memcpy(&hdr, base_, sizeof hdr);
  if (hdr.magic != kMagic)
    return Status::invalidArgument(
        "not a FlatNetwork arena (bad magic number)");
  if (hdr.version != kFormatVersion)
    return Status::failedPrecondition(
        "FlatNetwork format version " + std::to_string(hdr.version) +
        " is not the supported version " + std::to_string(kFormatVersion));
  if (hdr.byteSize != size_)
    return Status::dataLoss("flat arena truncated: header claims " +
                            std::to_string(hdr.byteSize) + " bytes, got " +
                            std::to_string(size_));
  if (hdr.sectionCount != kSectionCount)
    return Status::dataLoss("flat arena section count " +
                            std::to_string(hdr.sectionCount) +
                            " does not match the format's " +
                            std::to_string(int{kSectionCount}));
  if (size_ < sizeof(Header) + kSectionCount * sizeof(SectionDesc))
    return Status::dataLoss("flat arena shorter than its section table");

  SectionDesc table[kSectionCount];
  std::memcpy(table, base_ + sizeof(Header), sizeof table);

  // Expected element size and count of every section, derived from the
  // header counts — a table that disagrees is corrupt, not merely a
  // different version (the version gate above already ran).
  const std::uint64_t s = hdr.segments, m = hdr.muxes, n = hdr.instruments;
  const std::uint64_t v = hdr.vertices, e = hdr.dataEdges;
  struct Expect {
    std::uint32_t elemSize;
    std::uint64_t count;
  };
  const Expect expect[kSectionCount] = {
      /*kSegLength=*/{4, s},
      /*kSegInstrument=*/{4, s},
      /*kSegFlags=*/{1, s},
      /*kSegVertex=*/{4, s},
      /*kSegDepth=*/{4, s},
      /*kGuardOffsets=*/{4, s + 1},
      /*kGuardPool=*/{sizeof(GuardRef), hdr.guardPool},
      /*kMuxControl=*/{4, m},
      /*kMuxCtrlVertex=*/{4, m},
      /*kMuxArity=*/{4, m},
      /*kMuxVertex=*/{4, m},
      /*kDemandDepth=*/{4, m},
      /*kSelOffset=*/{4, m},
      /*kMuxBranchOffsets=*/{4, m + 1},
      /*kMuxBranchExit=*/{4, hdr.branchExits},
      /*kCtrlMuxes=*/{4, hdr.ctrlMuxes},
      /*kRepresentableWords=*/{8, hdr.selWords},
      /*kCtrlOffsets=*/{4, s + 1},
      /*kCtrlEdges=*/{4, hdr.ctrlEdges},
      /*kInstSegment=*/{4, n},
      /*kInstVertex=*/{4, n},
      /*kInstObsWeight=*/{8, n},
      /*kInstSetWeight=*/{8, n},
      /*kFwdOffsets=*/{4, v + 1},
      /*kFwdEdges=*/{sizeof(Edge), e},
      /*kBwdOffsets=*/{4, v + 1},
      /*kBwdEdges=*/{sizeof(Edge), e},
      /*kBranchPool=*/{4, hdr.branchPool},
      /*kCtrlRegVertex=*/{1, v},
      /*kMuxOfVertex=*/{4, v},
  };
  for (std::uint32_t i = 0; i < kSectionCount; ++i) {
    const SectionDesc& d = table[i];
    if (d.id != i || d.elemSize != expect[i].elemSize ||
        d.byteCount != expect[i].count * expect[i].elemSize)
      return Status::dataLoss("flat arena section " + std::to_string(i) +
                              " does not match the expected layout");
    if (d.offset % kSectionAlign != 0 || d.offset > size_ ||
        d.byteCount > size_ - d.offset)
      return Status::dataLoss("flat arena section " + std::to_string(i) +
                              " lies outside the buffer");
  }
  if (fingerprintSections(base_, table, kSectionCount) != hdr.fingerprint)
    return Status::dataLoss(
        "flat arena payload does not match its fingerprint");

  const std::uint8_t* base = base_;
  const auto u32 = [&](SectionId id) {
    return Span<std::uint32_t>(
        reinterpret_cast<const std::uint32_t*>(base + table[id].offset),
        table[id].byteCount / 4);
  };
  const auto u64 = [&](SectionId id) {
    return Span<std::uint64_t>(
        reinterpret_cast<const std::uint64_t*>(base + table[id].offset),
        table[id].byteCount / 8);
  };
  const auto u8 = [&](SectionId id) {
    return Span<std::uint8_t>(base + table[id].offset, table[id].byteCount);
  };
  segLength_ = u32(kSegLength);
  segInstrument_ = u32(kSegInstrument);
  segFlags_ = u8(kSegFlags);
  segmentVertex_ = u32(kSegVertex);
  segDepth_ = u32(kSegDepth);
  guardOffsets_ = u32(kGuardOffsets);
  guardPool_ = Span<GuardRef>(
      reinterpret_cast<const GuardRef*>(base + table[kGuardPool].offset),
      table[kGuardPool].byteCount / sizeof(GuardRef));
  muxControl_ = u32(kMuxControl);
  muxCtrlVertex_ = u32(kMuxCtrlVertex);
  muxArity_ = u32(kMuxArity);
  muxVertex_ = u32(kMuxVertex);
  demandDepth_ = u32(kDemandDepth);
  selOffset_ = u32(kSelOffset);
  muxBranchOffsets_ = u32(kMuxBranchOffsets);
  muxBranchExit_ = u32(kMuxBranchExit);
  ctrlMuxes_ = u32(kCtrlMuxes);
  representableWords_ = u64(kRepresentableWords);
  ctrlOffsets_ = u32(kCtrlOffsets);
  ctrlEdges_ = u32(kCtrlEdges);
  instrumentSegment_ = u32(kInstSegment);
  instrumentVertex_ = u32(kInstVertex);
  instObsWeight_ = u64(kInstObsWeight);
  instSetWeight_ = u64(kInstSetWeight);
  fwdOffsets_ = u32(kFwdOffsets);
  fwdEdges_ = Span<Edge>(
      reinterpret_cast<const Edge*>(base + table[kFwdEdges].offset),
      table[kFwdEdges].byteCount / sizeof(Edge));
  bwdOffsets_ = u32(kBwdOffsets);
  bwdEdges_ = Span<Edge>(
      reinterpret_cast<const Edge*>(base + table[kBwdEdges].offset),
      table[kBwdEdges].byteCount / sizeof(Edge));
  branchPool_ = u32(kBranchPool);
  ctrlRegVertex_ = u8(kCtrlRegVertex);
  muxOfVertex_ = u32(kMuxOfVertex);
  return Status{};
}

Status FlatNetwork::deserialize(std::vector<std::uint8_t> buffer,
                                std::shared_ptr<const FlatNetwork>& out) {
  auto view = std::shared_ptr<FlatNetwork>(new FlatNetwork());
  view->arena_ = std::move(buffer);
  Status st = view->attach();
  if (!st.ok()) return st;
  out = std::move(view);
  return Status{};
}

Status FlatNetwork::mapFile(const std::string& path,
                            std::shared_ptr<const FlatNetwork>& out) {
  auto view = std::shared_ptr<FlatNetwork>(new FlatNetwork());
  Status st = io::MappedFile::map(path, view->mapped_);
  if (!st.ok()) return st;
  st = view->attach();
  if (!st.ok()) return st;
  out = std::move(view);
  return Status{};
}

Status FlatNetwork::writeTo(const std::string& path) const {
  return io::atomicWriteFile(
      path, std::string_view(reinterpret_cast<const char*>(base_), size_));
}

std::uint64_t FlatNetwork::fingerprint() const {
  return headerOf(base_).fingerprint;
}

bool FlatNetwork::operator==(const FlatNetwork& other) const {
  return size_ == other.size_ &&
         std::memcmp(base_, other.base_, size_) == 0;
}

std::size_t FlatNetwork::segmentCount() const {
  return static_cast<std::size_t>(headerOf(base_).segments);
}
std::size_t FlatNetwork::muxCount() const {
  return static_cast<std::size_t>(headerOf(base_).muxes);
}
std::size_t FlatNetwork::instrumentCount() const {
  return static_cast<std::size_t>(headerOf(base_).instruments);
}
std::size_t FlatNetwork::vertexCount() const {
  return static_cast<std::size_t>(headerOf(base_).vertices);
}
graph::VertexId FlatNetwork::scanIn() const { return headerOf(base_).scanIn; }
graph::VertexId FlatNetwork::scanOut() const {
  return headerOf(base_).scanOut;
}

}  // namespace rrsn::rsn

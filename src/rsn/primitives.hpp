// Scan primitives of a Reconfigurable Scan Network (IEEE Std 1687 /
// 1149.1), following Sec. III of the paper: scan segments and scan
// multiplexers.  A Segment Insertion Bit (SIB) is modeled as the
// combination of a 1-bit scan segment and a multiplexer (the paper treats
// SIB fault effects exactly as that combination), so it needs no separate
// primitive kind; the builder provides `sib(...)` as sugar.
#pragma once

#include <cstdint>
#include <string>

namespace rrsn::rsn {

using SegmentId = std::uint32_t;
using MuxId = std::uint32_t;
using InstrumentId = std::uint32_t;

inline constexpr std::uint32_t kNone = static_cast<std::uint32_t>(-1);

/// A scan segment: `length` scan flip-flops on the scan path, optionally
/// giving access to an embedded instrument.
struct Segment {
  std::string name;
  std::uint32_t length = 1;            ///< number of scan cells (>= 1)
  InstrumentId instrument = kNone;     ///< attached instrument, if any
  bool isSibRegister = false;          ///< true for the 1-bit SIB config bit
};

/// A scan multiplexer: selects one of >= 2 incoming branches depending on
/// its address control value.  The structural branch list lives in the
/// Structure tree; here we keep control wiring and identity.
struct Mux {
  std::string name;
  /// Segment whose update value drives the address port (kNone: the mux is
  /// controlled directly, e.g. from the TAP instruction decode).  Used by
  /// the simulator; the structural criticality analysis of the paper does
  /// not depend on it.
  SegmentId controlSegment = kNone;
};

/// An embedded instrument reachable through a scan segment.  Damage
/// weights (do_i / ds_i, Sec. IV-A) live in the external CriticalitySpec.
struct Instrument {
  std::string name;
  SegmentId segment = kNone;  ///< hosting scan segment
};

/// Uniform reference to a hardenable scan primitive.
///
/// The optimizer addresses primitives through a dense *linear id*:
/// segments occupy [0, S) and muxes [S, S + M).
struct PrimitiveRef {
  enum class Kind : std::uint8_t { Segment, Mux };
  Kind kind = Kind::Segment;
  std::uint32_t index = 0;

  bool operator==(const PrimitiveRef&) const = default;
};

}  // namespace rrsn::rsn

// Text netlist format for RSNs (an ICL-like subset).
//
// Grammar (comments start with '#', names are [A-Za-z0-9_.]+):
//
//   network   := "network" name "{" node "}"
//   node      := "chain"   "{" node* "}"
//              | "segment" name ["len" "=" int] ["instrument" "=" name] ";"
//              | "wire" ";"
//              | "mux" name ["ctrl" "=" name] "{" branch branch+ "}"
//              | "sib" name "{" node* "}"
//   branch    := "branch" "{" node* "}"
//
// `mux` branches are listed in address order (branch k <-> address k) and
// a `ctrl` segment must be declared earlier in scan order (RSN control
// registers precede the muxes they steer).  `sib` wraps its body in the
// standard SIB pattern (bypass | body, closed by "<name>_mux", followed
// by the 1-bit register "<name>" driving the mux address).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <unordered_map>

#include "rsn/network.hpp"

namespace rrsn::rsn {

/// Side-table mapping declared names (segments, muxes, instruments, the
/// network itself) to their 1-based source line.  Filled incrementally
/// while parsing, so it is usable even when the parse or the model
/// validation rejects the input — the static checker (src/lint) resolves
/// finding locations through it.
struct NetlistSources {
  std::unordered_map<std::string, std::size_t> lineOf;

  /// Line of `name`, or 0 when unknown.
  std::size_t line(const std::string& name) const {
    const auto it = lineOf.find(name);
    return it == lineOf.end() ? 0 : it->second;
  }
};

/// Parses a network from text; throws ParseError with line information.
/// The overload taking `sources` records declaration lines as it goes
/// (including everything parsed before a rejection).
Network parseNetlist(std::istream& is);
Network parseNetlist(std::istream& is, NetlistSources& sources);
Network parseNetlistString(const std::string& text);

/// Writes `net` in the format above.  SIB patterns created by
/// NetworkBuilder::sib are recognized and re-sugared into `sib` blocks,
/// so writeNetlist/parseNetlist round-trips builder output structurally.
void writeNetlist(std::ostream& os, const Network& net);
std::string netlistToString(const Network& net);

}  // namespace rrsn::rsn

// Text netlist format for RSNs (an ICL-like subset).
//
// Grammar (comments start with '#', names are [A-Za-z0-9_.]+):
//
//   network   := "network" name "{" node "}"
//   node      := "chain"   "{" node* "}"
//              | "segment" name ["len" "=" int] ["instrument" "=" name] ";"
//              | "wire" ";"
//              | "mux" name ["ctrl" "=" name] "{" branch branch+ "}"
//              | "sib" name "{" node* "}"
//   branch    := "branch" "{" node* "}"
//
// `mux` branches are listed in address order (branch k <-> address k) and
// a `ctrl` segment must be declared earlier in scan order (RSN control
// registers precede the muxes they steer).  `sib` wraps its body in the
// standard SIB pattern (bypass | body, closed by "<name>_mux", followed
// by the 1-bit register "<name>" driving the mux address).
#pragma once

#include <iosfwd>
#include <string>

#include "rsn/network.hpp"

namespace rrsn::rsn {

/// Parses a network from text; throws ParseError with line information.
Network parseNetlist(std::istream& is);
Network parseNetlistString(const std::string& text);

/// Writes `net` in the format above.  SIB patterns created by
/// NetworkBuilder::sib are recognized and re-sugared into `sib` blocks,
/// so writeNetlist/parseNetlist round-trips builder output structurally.
void writeNetlist(std::ostream& os, const Network& net);
std::string netlistToString(const Network& net);

}  // namespace rrsn::rsn

// The hierarchical series-parallel structure of an RSN.
//
// The paper (Sec. III, Def. 1) analyzes RSNs as hierarchical
// series-parallel graphs.  This module stores that structure directly:
// a tree of nodes where
//   * Wire      — a direct connection carrying no scan cell,
//   * Segment   — a scan-segment leaf,
//   * Serial    — a series composition of >= 1 parts in scan order,
//   * MuxJoin   — a parallel composition: a fan-out at the entry, one
//                 sub-structure per branch, closed by a scan multiplexer
//                 (the closing reconvergence gate); branch k is selected
//                 by address value k.
// The flat graph view of Sec. III (Fig. 2) is derived from this structure
// in graph_view.hpp, and the binary decomposition tree (Fig. 3) in
// src/sp/decomposition.hpp.
#pragma once

#include <cstdint>
#include <vector>

#include "rsn/primitives.hpp"
#include "support/error.hpp"

namespace rrsn::rsn {

using NodeId = std::uint32_t;

enum class NodeKind : std::uint8_t { Wire, Segment, MuxJoin, Serial };

/// Arena of structure nodes; nodes are immutable once created and are
/// referenced by dense NodeIds, so a Structure is cheap to copy/move.
class Structure {
 public:
  struct Node {
    NodeKind kind = NodeKind::Wire;
    std::uint32_t prim = kNone;       ///< SegmentId or MuxId depending on kind
    std::vector<NodeId> children;     ///< Serial parts / MuxJoin branches
  };

  /// Creates a wire node (empty bypass branch).
  NodeId makeWire();

  /// Creates a segment leaf.
  NodeId makeSegment(SegmentId segment);

  /// Creates a series composition; `parts` in scan-in -> scan-out order.
  NodeId makeSerial(std::vector<NodeId> parts);

  /// Creates a parallel composition closed by `mux`; branch k corresponds
  /// to address value k.  Requires >= 2 branches.
  NodeId makeMuxJoin(MuxId mux, std::vector<NodeId> branches);

  const Node& node(NodeId id) const {
    RRSN_CHECK(id < nodes_.size(), "structure node id out of range");
    return nodes_[id];
  }

  std::size_t nodeCount() const { return nodes_.size(); }

  NodeId root() const { return root_; }
  void setRoot(NodeId id);
  bool hasRoot() const { return root_ != kNone; }

  /// Depth-first pre-order walk; fn(nodeId) is invoked parent-first.
  template <typename Fn>
  void preOrder(Fn&& fn) const {
    if (!hasRoot()) return;
    std::vector<NodeId> stack{root_};
    while (!stack.empty()) {
      const NodeId id = stack.back();
      stack.pop_back();
      fn(id);
      const Node& n = node(id);
      for (auto it = n.children.rbegin(); it != n.children.rend(); ++it)
        stack.push_back(*it);
    }
  }

  /// Total scan-segment leaves below a node (including the node itself).
  std::size_t countSegments(NodeId id) const;

 private:
  std::vector<Node> nodes_;
  NodeId root_ = kNone;
};

}  // namespace rrsn::rsn

#include "rsn/spec.hpp"

#include <istream>
#include <ostream>
#include <string>

#include <algorithm>

#include "support/strings.hpp"

namespace rrsn::rsn {

namespace {

/// Instruments ordered by the scan position of their hosting segment
/// (scan-in first).  Used by the RobustEnds critical placement.
std::vector<InstrumentId> instrumentsInScanOrder(const Network& net) {
  std::vector<InstrumentId> order;
  order.reserve(net.instruments().size());
  // In-order walk of the structure; MuxJoin branches are visited in
  // address order, which is a consistent linearization of the network.
  const auto walk = [&](auto&& self, NodeId id) -> void {
    const auto& n = net.structure().node(id);
    if (n.kind == NodeKind::Segment) {
      const InstrumentId inst = net.segment(n.prim).instrument;
      if (inst != kNone) order.push_back(inst);
      return;
    }
    for (NodeId c : n.children) self(self, c);
  };
  walk(walk, net.structure().root());
  return order;
}

/// Draws k critical instruments: uniformly (Random) or from one end of
/// the scan order (RobustEnds).
std::vector<std::size_t> drawCritical(const Network& net, std::size_t n,
                                      std::size_t k,
                                      CriticalPlacement placement,
                                      bool scanOutSide, Rng& rng) {
  if (placement == CriticalPlacement::Random || n == 0 || k == 0)
    return rng.sampleIndices(n, k);
  const std::vector<InstrumentId> order = instrumentsInScanOrder(net);
  RRSN_CHECK(order.size() == n, "scan order misses instruments");
  // Candidate window: the scan-in- or scan-out-side third (at least k).
  const std::size_t window = std::max(k, n / 3);
  std::vector<std::size_t> picked;
  for (std::size_t idx : rng.sampleIndices(window, k)) {
    const std::size_t pos = scanOutSide ? n - window + idx : idx;
    picked.push_back(order[pos]);
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace

std::uint64_t CriticalitySpec::totalObs() const {
  std::uint64_t total = 0;
  for (const auto& w : weights_) total += w.obs;
  return total;
}

std::uint64_t CriticalitySpec::totalSet() const {
  std::uint64_t total = 0;
  for (const auto& w : weights_) total += w.set;
  return total;
}

std::vector<InstrumentId> CriticalitySpec::criticalObsInstruments() const {
  std::vector<InstrumentId> out;
  for (std::size_t i = 0; i < weights_.size(); ++i)
    if (weights_[i].criticalObs) out.push_back(static_cast<InstrumentId>(i));
  return out;
}

std::vector<InstrumentId> CriticalitySpec::criticalSetInstruments() const {
  std::vector<InstrumentId> out;
  for (std::size_t i = 0; i < weights_.size(); ++i)
    if (weights_[i].criticalSet) out.push_back(static_cast<InstrumentId>(i));
  return out;
}

CriticalitySpec randomSpec(const Network& net, const SpecOptions& options,
                           Rng& rng) {
  const std::size_t n = net.instruments().size();
  CriticalitySpec spec(n);
  if (n == 0) return spec;

  const auto countOf = [&](double frac) {
    auto k = static_cast<std::size_t>(frac * static_cast<double>(n) + 0.5);
    return std::min(k, n);
  };

  // 1) Uncritical weights: `fracObsWeighted` of the instruments get a
  //    uniform weight in [1, maxUncriticalWeight]; the rest stay at zero.
  for (std::size_t idx : rng.sampleIndices(n, countOf(options.fracObsWeighted)))
    spec.of(static_cast<InstrumentId>(idx)).obs = static_cast<std::uint64_t>(
        rng.range(1, static_cast<std::int64_t>(options.maxUncriticalWeight)));
  for (std::size_t idx : rng.sampleIndices(n, countOf(options.fracSetWeighted)))
    spec.of(static_cast<InstrumentId>(idx)).set = static_cast<std::uint64_t>(
        rng.range(1, static_cast<std::int64_t>(options.maxUncriticalWeight)));

  // 2) Critical instruments: weight >= sum of all uncritical weights of
  //    the same kind, so missing one of them always dominates the total
  //    damage of all uncritical losses (Sec. IV-A).
  const auto obsCritical =
      drawCritical(net, n, countOf(options.fracObsCritical),
                   options.placement, /*scanOutSide=*/true, rng);
  const auto setCritical =
      drawCritical(net, n, countOf(options.fracSetCritical),
                   options.placement, /*scanOutSide=*/false, rng);
  std::uint64_t uncritObs = 0;
  std::uint64_t uncritSet = 0;
  {
    std::vector<bool> isObsCrit(n, false);
    std::vector<bool> isSetCrit(n, false);
    for (std::size_t i : obsCritical) isObsCrit[i] = true;
    for (std::size_t i : setCritical) isSetCrit[i] = true;
    for (std::size_t i = 0; i < n; ++i) {
      if (!isObsCrit[i]) uncritObs += spec.of(static_cast<InstrumentId>(i)).obs;
      if (!isSetCrit[i]) uncritSet += spec.of(static_cast<InstrumentId>(i)).set;
    }
  }
  for (std::size_t idx : obsCritical) {
    auto& w = spec.of(static_cast<InstrumentId>(idx));
    w.criticalObs = true;
    w.obs = uncritObs + 1;
  }
  for (std::size_t idx : setCritical) {
    auto& w = spec.of(static_cast<InstrumentId>(idx));
    w.criticalSet = true;
    w.set = uncritSet + 1;
  }
  return spec;
}

void writeSpec(std::ostream& os, const Network& net,
               const CriticalitySpec& spec) {
  RRSN_CHECK(spec.size() == net.instruments().size(),
             "spec does not match the network's instrument count");
  for (std::size_t i = 0; i < spec.size(); ++i) {
    const auto& w = spec.of(static_cast<InstrumentId>(i));
    os << net.instrument(static_cast<InstrumentId>(i)).name << " obs=" << w.obs
       << (w.criticalObs ? "*" : "") << " set=" << w.set
       << (w.criticalSet ? "*" : "") << '\n';
  }
}

CriticalitySpec readSpec(std::istream& is, const Network& net) {
  CriticalitySpec spec(net.instruments().size());
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(is, line)) {
    ++lineNo;
    const auto text = trim(line);
    if (text.empty() || text.front() == '#') continue;
    const auto tokens = splitWhitespace(text);
    if (tokens.size() != 3)
      throw ParseError("spec line " + std::to_string(lineNo) +
                       ": expected '<name> obs=<w> set=<w>'");
    const InstrumentId inst = net.findInstrument(tokens[0]);
    if (inst == kNone)
      throw ParseError("spec line " + std::to_string(lineNo) +
                       ": unknown instrument '" + tokens[0] + "'");
    auto& w = spec.of(inst);
    const auto parseField = [&](const std::string& token,
                                const std::string& key, std::uint64_t& value,
                                bool& critical) {
      if (!startsWith(token, key + "="))
        throw ParseError("spec line " + std::to_string(lineNo) +
                         ": expected '" + key + "=...'");
      std::string_view rest = std::string_view(token).substr(key.size() + 1);
      critical = !rest.empty() && rest.back() == '*';
      if (critical) rest.remove_suffix(1);
      value = parseUnsigned(rest, key + " weight");
    };
    parseField(tokens[1], "obs", w.obs, w.criticalObs);
    parseField(tokens[2], "set", w.set, w.criticalSet);
  }
  return spec;
}

}  // namespace rrsn::rsn

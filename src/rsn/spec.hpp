// Explicit criticality specification (Sec. IV-A).
//
// Each instrument i carries a pair of non-negative damage weights:
// do_i — the damage of losing its observability — and ds_i — the damage
// of losing its settability.  Instruments whose inaccessibility may lead
// to a system failure are marked critical; the paper requires their
// weight to be at least as high as the sum of all uncritical weights so
// that any solution keeping the damage low necessarily keeps them
// accessible.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "rsn/network.hpp"
#include "support/rng.hpp"

namespace rrsn::rsn {

/// Damage weights of one instrument.
struct DamageWeights {
  std::uint64_t obs = 0;    ///< do_i: damage of losing observability
  std::uint64_t set = 0;    ///< ds_i: damage of losing settability
  bool criticalObs = false; ///< "important for observation" (Sec. VI)
  bool criticalSet = false; ///< "important for control"
};

/// Per-instrument damage weights for one network.
class CriticalitySpec {
 public:
  explicit CriticalitySpec(std::size_t numInstruments)
      : weights_(numInstruments) {}

  std::size_t size() const { return weights_.size(); }

  const DamageWeights& of(InstrumentId i) const {
    RRSN_CHECK(i < weights_.size(), "instrument id out of range");
    return weights_[i];
  }
  DamageWeights& of(InstrumentId i) {
    RRSN_CHECK(i < weights_.size(), "instrument id out of range");
    return weights_[i];
  }

  /// Sum of all observability / settability weights.
  std::uint64_t totalObs() const;
  std::uint64_t totalSet() const;

  /// Indices of instruments flagged critical for observation / control.
  std::vector<InstrumentId> criticalObsInstruments() const;
  std::vector<InstrumentId> criticalSetInstruments() const;

 private:
  std::vector<DamageWeights> weights_;
};

/// Where the critical instruments are drawn from.
enum class CriticalPlacement : std::uint8_t {
  /// Uniformly random over all instruments (the paper's Sec. VI setup).
  Random,
  /// Observation-critical instruments are drawn from the scan-out-side
  /// third of the scan order and control-critical ones from the
  /// scan-in-side third.  This mimics robustness-aware floorplanning
  /// (status registers near scan-out never lose observability to a chain
  /// break behind them; control registers near scan-in never lose
  /// settability) and is used by the spec-placement ablation bench.
  RobustEnds,
};

/// Parameters of the paper's random specification (Sec. VI):
/// 70 % of instruments get a non-zero observability weight, 70 % a
/// non-zero settability weight; 10 % are important for observation and
/// 10 % for control.
struct SpecOptions {
  double fracObsWeighted = 0.70;
  double fracSetWeighted = 0.70;
  double fracObsCritical = 0.10;
  double fracSetCritical = 0.10;
  std::uint64_t maxUncriticalWeight = 9;  ///< uncritical weights ~ U[1, max]
  CriticalPlacement placement = CriticalPlacement::Random;
};

/// Draws a random specification for `net` per the paper's recipe.
/// Critical instruments receive weight (sum of all uncritical weights of
/// the same kind) + 1, satisfying the Sec. IV-A dominance requirement.
CriticalitySpec randomSpec(const Network& net, const SpecOptions& options,
                           Rng& rng);

/// Text serialization: one line per instrument
/// "<name> obs=<w>[*] set=<w>[*]" where '*' marks a critical weight.
void writeSpec(std::ostream& os, const Network& net,
               const CriticalitySpec& spec);
CriticalitySpec readSpec(std::istream& is, const Network& net);

}  // namespace rrsn::rsn

#include "rsn/builder.hpp"

namespace rrsn::rsn {

NetworkBuilder::Handle NetworkBuilder::wire() { return structure_.makeWire(); }

NetworkBuilder::Handle NetworkBuilder::segment(
    const std::string& name, std::uint32_t length,
    const std::string& instrumentName) {
  RRSN_CHECK(length > 0, "segment '" + name + "' needs length >= 1");
  const auto segId = static_cast<SegmentId>(segments_.size());
  Segment seg;
  seg.name = name;
  seg.length = length;
  if (!instrumentName.empty()) {
    const auto instId = static_cast<InstrumentId>(instruments_.size());
    instruments_.push_back(Instrument{instrumentName, segId});
    seg.instrument = instId;
  }
  segments_.push_back(std::move(seg));
  return structure_.makeSegment(segId);
}

NetworkBuilder::Handle NetworkBuilder::chain(std::vector<Handle> parts) {
  return structure_.makeSerial(std::move(parts));
}

NetworkBuilder::Handle NetworkBuilder::mux(const std::string& name,
                                           std::vector<Handle> branches,
                                           const std::string& controlSegment) {
  const auto muxId = static_cast<MuxId>(muxes_.size());
  Mux m;
  m.name = name;
  if (!controlSegment.empty()) {
    SegmentId ctrl = kNone;
    for (std::size_t i = 0; i < segments_.size(); ++i)
      if (segments_[i].name == controlSegment)
        ctrl = static_cast<SegmentId>(i);
    if (ctrl == kNone)
      throw ValidationError("mux '" + name + "': unknown control segment '" +
                                controlSegment +
                                "' (control registers must be declared before "
                                "the mux they steer)",
                            ValidationCode::UnknownCtrl);
    m.controlSegment = ctrl;
  }
  muxes_.push_back(std::move(m));
  return structure_.makeMuxJoin(muxId, std::move(branches));
}

NetworkBuilder::Handle NetworkBuilder::sib(const std::string& name,
                                           Handle content) {
  // SIB register: a 1-bit segment that is always on the scan path and
  // drives the mux address.  Branch 0 = bypass (deasserted), branch 1 =
  // content (asserted), matching "stuck-at-deasserted denies access".
  const auto regId = static_cast<SegmentId>(segments_.size());
  Segment reg;
  reg.name = name;
  reg.length = 1;
  reg.isSibRegister = true;
  segments_.push_back(std::move(reg));
  const Handle regNode = structure_.makeSegment(regId);

  const auto muxId = static_cast<MuxId>(muxes_.size());
  Mux m;
  m.name = name + "_mux";
  m.controlSegment = regId;
  muxes_.push_back(std::move(m));
  const Handle join = structure_.makeMuxJoin(muxId, {structure_.makeWire(), content});
  return structure_.makeSerial({join, regNode});
}

void NetworkBuilder::setTop(Handle top) {
  structure_.setRoot(top);
  topSet_ = true;
}

Network NetworkBuilder::build() {
  RRSN_CHECK(topSet_, "NetworkBuilder::setTop was never called");
  return Network(std::move(name_), std::move(segments_), std::move(muxes_),
                 std::move(instruments_), std::move(structure_));
}

}  // namespace rrsn::rsn

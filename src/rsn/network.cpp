#include "rsn/network.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace rrsn::rsn {

Network::Network(std::string name, std::vector<Segment> segments,
                 std::vector<Mux> muxes, std::vector<Instrument> instruments,
                 Structure structure)
    : name_(std::move(name)),
      segments_(std::move(segments)),
      muxes_(std::move(muxes)),
      instruments_(std::move(instruments)),
      structure_(std::move(structure)) {
  validate();
}

std::size_t Network::linearId(PrimitiveRef ref) const {
  if (ref.kind == PrimitiveRef::Kind::Segment) {
    RRSN_CHECK(ref.index < segments_.size(), "segment index out of range");
    return ref.index;
  }
  RRSN_CHECK(ref.index < muxes_.size(), "mux index out of range");
  return segments_.size() + ref.index;
}

PrimitiveRef Network::refOf(std::size_t linear) const {
  RRSN_CHECK(linear < primitiveCount(), "linear primitive id out of range");
  if (linear < segments_.size())
    return {PrimitiveRef::Kind::Segment, static_cast<std::uint32_t>(linear)};
  return {PrimitiveRef::Kind::Mux,
          static_cast<std::uint32_t>(linear - segments_.size())};
}

const std::string& Network::primitiveName(PrimitiveRef ref) const {
  return ref.kind == PrimitiveRef::Kind::Segment ? segment(ref.index).name
                                                 : mux(ref.index).name;
}

namespace {

template <typename T>
std::uint32_t findByName(const std::vector<T>& items, const std::string& name) {
  for (std::size_t i = 0; i < items.size(); ++i)
    if (items[i].name == name) return static_cast<std::uint32_t>(i);
  return kNone;
}

}  // namespace

SegmentId Network::findSegment(const std::string& name) const {
  return findByName(segments_, name);
}
MuxId Network::findMux(const std::string& name) const {
  return findByName(muxes_, name);
}
InstrumentId Network::findInstrument(const std::string& name) const {
  return findByName(instruments_, name);
}

NetworkStats Network::stats() const {
  NetworkStats s;
  s.segments = segments_.size();
  s.muxes = muxes_.size();
  s.instruments = instruments_.size();
  for (const Segment& seg : segments_) s.scanCells += seg.length;

  // Deepest MuxJoin nesting via an explicit DFS carrying depth.
  struct Frame {
    NodeId id;
    std::size_t depth;
  };
  std::vector<Frame> stack{{structure_.root(), 0}};
  while (!stack.empty()) {
    const auto [id, depth] = stack.back();
    stack.pop_back();
    const auto& n = structure_.node(id);
    const std::size_t next =
        depth + (n.kind == NodeKind::MuxJoin ? 1 : 0);
    s.maxMuxNesting = std::max(s.maxMuxNesting, next);
    for (NodeId c : n.children) stack.push_back({c, next});
  }
  return s;
}

void Network::validate() const {
  if (!structure_.hasRoot())
    throw ValidationError("network '" + name_ + "' has no structure root");

  std::unordered_set<std::string> names;
  const auto checkName = [&](const std::string& n, const char* what) {
    if (n.empty())
      throw ValidationError(std::string(what) + " with empty name");
    if (!names.insert(n).second)
      throw ValidationError("duplicate name '" + n + "'",
                            ValidationCode::DuplicateName);
  };
  for (const Segment& s : segments_) {
    checkName(s.name, "segment");
    if (s.length == 0)
      throw ValidationError("segment '" + s.name + "' has zero length");
    if (s.instrument != kNone && s.instrument >= instruments_.size())
      throw ValidationError("segment '" + s.name +
                            "' references unknown instrument");
  }
  for (const Mux& m : muxes_) {
    checkName(m.name, "mux");
    if (m.controlSegment != kNone && m.controlSegment >= segments_.size())
      throw ValidationError("mux '" + m.name +
                            "' references unknown control segment");
  }
  for (const Instrument& i : instruments_) {
    checkName(i.name, "instrument");
    if (i.segment >= segments_.size())
      throw ValidationError("instrument '" + i.name +
                            "' is not bound to a segment");
    if (segments_[i.segment].instrument == kNone ||
        instruments_[segments_[i.segment].instrument].name != i.name)
      throw ValidationError("instrument '" + i.name +
                            "' binding is not mirrored by its segment");
  }

  // Every segment and every mux must appear in the structure exactly once.
  std::vector<std::size_t> segUse(segments_.size(), 0);
  std::vector<std::size_t> muxUse(muxes_.size(), 0);
  structure_.preOrder([&](NodeId id) {
    const auto& n = structure_.node(id);
    switch (n.kind) {
      case NodeKind::Segment:
        if (n.prim >= segments_.size())
          throw ValidationError("structure references unknown segment");
        ++segUse[n.prim];
        break;
      case NodeKind::MuxJoin: {
        if (n.prim >= muxes_.size())
          throw ValidationError("structure references unknown mux");
        ++muxUse[n.prim];
        bool nonWire = false;
        for (NodeId c : n.children)
          nonWire |= structure_.node(c).kind != NodeKind::Wire;
        if (!nonWire)
          throw ValidationError("mux '" + muxes_[n.prim].name +
                                    "' selects only wires",
                                ValidationCode::WireOnlyMux);
        break;
      }
      case NodeKind::Wire:
      case NodeKind::Serial:
        break;
    }
  });
  for (std::size_t i = 0; i < segUse.size(); ++i) {
    if (segUse[i] != 1)
      throw ValidationError("segment '" + segments_[i].name + "' appears " +
                            std::to_string(segUse[i]) +
                            " times in the structure (expected 1)");
  }
  for (std::size_t i = 0; i < muxUse.size(); ++i) {
    if (muxUse[i] != 1)
      throw ValidationError("mux '" + muxes_[i].name + "' appears " +
                            std::to_string(muxUse[i]) +
                            " times in the structure (expected 1)");
  }

  // A mux's control register must not sit inside the mux's own branches:
  // selecting a branch would require writing a register that is only on
  // the scan path once that very selection is already made.  (The SIB
  // pattern is legal — its register is a serial *sibling* of the join.)
  std::vector<std::pair<MuxId, SegmentId>> openMuxes;
  struct WalkFrame {
    NodeId id;
    std::size_t next = 0;
  };
  std::vector<WalkFrame> walk{{structure_.root()}};
  while (!walk.empty()) {
    WalkFrame& fr = walk.back();
    const auto& n = structure_.node(fr.id);
    if (fr.next == 0 && n.kind == NodeKind::Segment) {
      for (const auto& [mux, ctrl] : openMuxes) {
        if (ctrl == n.prim)
          throw ValidationError("mux '" + muxes_[mux].name +
                                    "' is controlled by segment '" +
                                    segments_[n.prim].name +
                                    "' inside its own branches",
                                ValidationCode::CtrlCycle);
      }
    }
    if (fr.next >= n.children.size()) {
      if (n.kind == NodeKind::MuxJoin && muxes_[n.prim].controlSegment != kNone)
        openMuxes.pop_back();
      walk.pop_back();
      continue;
    }
    if (fr.next == 0 && n.kind == NodeKind::MuxJoin &&
        muxes_[n.prim].controlSegment != kNone)
      openMuxes.emplace_back(static_cast<MuxId>(n.prim),
                             muxes_[n.prim].controlSegment);
    walk.push_back({n.children[fr.next++]});
  }
}

}  // namespace rrsn::rsn

// The RSN network: primitives + hierarchical structure + instruments.
#pragma once

#include <string>
#include <vector>

#include "rsn/primitives.hpp"
#include "rsn/structure.hpp"

namespace rrsn::rsn {

/// Aggregate statistics of a network (Table I columns 1-2 and friends).
struct NetworkStats {
  std::size_t segments = 0;
  std::size_t muxes = 0;
  std::size_t instruments = 0;
  std::size_t scanCells = 0;     ///< total flip-flops over all segments
  std::size_t maxMuxNesting = 0; ///< deepest MuxJoin nesting
};

/// An immutable, validated Reconfigurable Scan Network.
///
/// Construction goes through NetworkBuilder (builder.hpp) or the netlist
/// parser (netlist_io.hpp); both call validate().  The scan path runs
/// scan-in -> structure().root() -> scan-out.
class Network {
 public:
  Network(std::string name, std::vector<Segment> segments,
          std::vector<Mux> muxes, std::vector<Instrument> instruments,
          Structure structure);

  const std::string& name() const { return name_; }

  const std::vector<Segment>& segments() const { return segments_; }
  const std::vector<Mux>& muxes() const { return muxes_; }
  const std::vector<Instrument>& instruments() const { return instruments_; }
  const Structure& structure() const { return structure_; }

  const Segment& segment(SegmentId id) const {
    RRSN_CHECK(id < segments_.size(), "segment id out of range");
    return segments_[id];
  }
  const Mux& mux(MuxId id) const {
    RRSN_CHECK(id < muxes_.size(), "mux id out of range");
    return muxes_[id];
  }
  const Instrument& instrument(InstrumentId id) const {
    RRSN_CHECK(id < instruments_.size(), "instrument id out of range");
    return instruments_[id];
  }

  /// Total number of hardenable primitives: segments + muxes.
  std::size_t primitiveCount() const { return segments_.size() + muxes_.size(); }

  /// Dense linear id of a primitive: segments in [0, S), muxes in [S, S+M).
  std::size_t linearId(PrimitiveRef ref) const;

  /// Inverse of linearId().
  PrimitiveRef refOf(std::size_t linear) const;

  /// Human-readable name of a primitive (segment or mux name).
  const std::string& primitiveName(PrimitiveRef ref) const;

  /// Looks up a segment / mux / instrument by name; kNone if absent.
  SegmentId findSegment(const std::string& name) const;
  MuxId findMux(const std::string& name) const;
  InstrumentId findInstrument(const std::string& name) const;

  NetworkStats stats() const;

  /// Checks every structural invariant; throws ValidationError on failure:
  /// root set, every segment and mux used exactly once in the structure,
  /// unique names, instruments bound to existing segments, mux control
  /// segments valid, every mux has >= 2 branches with >= 1 non-wire branch.
  void validate() const;

 private:
  std::string name_;
  std::vector<Segment> segments_;
  std::vector<Mux> muxes_;
  std::vector<Instrument> instruments_;
  Structure structure_;
};

}  // namespace rrsn::rsn

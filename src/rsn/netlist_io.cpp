#include "rsn/netlist_io.hpp"

#include <cctype>
#include <istream>
#include <ostream>
#include <optional>
#include <sstream>

#include "rsn/builder.hpp"
#include "support/strings.hpp"

namespace rrsn::rsn {

namespace {

// Hard input limits.  Netlists are human- or generator-written files; a
// token or nesting level beyond these bounds is a malformed (possibly
// adversarial) input, and the parser must reject it with a ParseError
// instead of exhausting the stack or memory.
constexpr std::size_t kMaxTokenLength = 1024;
constexpr std::size_t kMaxNestingDepth = 256;
constexpr std::uint64_t kMaxSegmentLength = 1u << 20;

// ---------------------------------------------------------------- lexer

struct Token {
  enum class Kind { Word, LBrace, RBrace, Semi, Equals, End };
  Kind kind = Kind::End;
  std::string text;
  std::size_t line = 0;
};

class Lexer {
 public:
  explicit Lexer(std::istream& is) { readAll(is); }

  const Token& peek() const { return tokens_[pos_]; }

  Token next() {
    Token t = tokens_[pos_];
    if (pos_ + 1 < tokens_.size()) ++pos_;
    return t;
  }

 private:
  void readAll(std::istream& is) {
    std::string line;
    std::size_t lineNo = 0;
    while (std::getline(is, line)) {
      ++lineNo;
      for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        if (c == '#') break;  // comment to end of line
        switch (c) {
          case '{': tokens_.push_back({Token::Kind::LBrace, "{", lineNo}); continue;
          case '}': tokens_.push_back({Token::Kind::RBrace, "}", lineNo}); continue;
          case ';': tokens_.push_back({Token::Kind::Semi, ";", lineNo}); continue;
          case '=': tokens_.push_back({Token::Kind::Equals, "=", lineNo}); continue;
          default: break;
        }
        if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.') {
          std::size_t j = i;
          while (j < line.size() &&
                 (std::isalnum(static_cast<unsigned char>(line[j])) ||
                  line[j] == '_' || line[j] == '.'))
            ++j;
          if (j - i > kMaxTokenLength)
            throw ParseError("line " + std::to_string(lineNo) +
                             ": token longer than " +
                             std::to_string(kMaxTokenLength) + " characters");
          tokens_.push_back({Token::Kind::Word, line.substr(i, j - i), lineNo});
          i = j - 1;
          continue;
        }
        throw ParseError("line " + std::to_string(lineNo) +
                         ": unexpected character '" + std::string(1, c) + "'");
      }
    }
    tokens_.push_back({Token::Kind::End, "<eof>", lineNo + 1});
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

[[noreturn]] void fail(const Token& t, const std::string& expected) {
  throw ParseError("line " + std::to_string(t.line) + ": expected " +
                   expected + ", got '" + t.text + "'");
}

// --------------------------------------------------------------- parser

class Parser {
 public:
  explicit Parser(std::istream& is, NetlistSources* sources = nullptr)
      : lex_(is), sources_(sources) {}

  Network parse() {
    expectWord("network");
    const std::string name = expectAnyWord("network name");
    recordLine(name);
    builder_.emplace(name);
    expect(Token::Kind::LBrace, "'{'");
    const auto top = parseNode();
    expect(Token::Kind::RBrace, "'}'");
    if (lex_.peek().kind != Token::Kind::End) fail(lex_.peek(), "end of input");
    builder_->setTop(top);
    return builder_->build();
  }

 private:
  /// Bounds the parse recursion (parseNode / parseBody / parseMux call
  /// each other); deeply nested input must fail, not smash the stack.
  struct DepthGuard {
    explicit DepthGuard(std::size_t& depth, std::size_t line) : depth_(depth) {
      if (++depth_ > kMaxNestingDepth)
        throw ParseError("line " + std::to_string(line) +
                         ": nesting deeper than " +
                         std::to_string(kMaxNestingDepth) + " levels");
    }
    ~DepthGuard() { --depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    std::size_t& depth_;
  };

  NetworkBuilder::Handle parseNode() {
    const DepthGuard guard(depth_, lex_.peek().line);
    const Token t = lex_.next();
    if (t.kind != Token::Kind::Word) fail(t, "a node keyword");
    if (t.text == "chain") return parseBody("chain body");
    if (t.text == "wire") {
      expect(Token::Kind::Semi, "';'");
      return builder_->wire();
    }
    if (t.text == "segment") return parseSegment();
    if (t.text == "mux") return parseMux();
    if (t.text == "sib") {
      const std::string name = expectAnyWord("sib name");
      recordLine(name);
      // The sib sugar declares both the 1-bit register `name` and the
      // bypass mux `name + "_mux"`; anchor both on the `sib` line.
      recordLine(name + "_mux");
      const auto content = parseBody("sib body");
      return builder_->sib(name, content);
    }
    fail(t, "'chain', 'segment', 'wire', 'mux' or 'sib'");
  }

  /// Parses "{ node* }" into a single handle (chain if != 1 node).
  NetworkBuilder::Handle parseBody(const std::string& what) {
    expect(Token::Kind::LBrace, "'{' starting " + what);
    std::vector<NetworkBuilder::Handle> parts;
    while (lex_.peek().kind != Token::Kind::RBrace) {
      if (lex_.peek().kind == Token::Kind::End)
        fail(lex_.peek(), "'}' closing " + what);
      parts.push_back(parseNode());
    }
    lex_.next();  // consume '}'
    if (parts.empty()) return builder_->wire();
    if (parts.size() == 1) return parts.front();
    return builder_->chain(std::move(parts));
  }

  NetworkBuilder::Handle parseSegment() {
    const std::string name = expectAnyWord("segment name");
    recordLine(name);
    std::uint32_t length = 1;
    std::string instrument;
    while (lex_.peek().kind == Token::Kind::Word) {
      const std::string key = lex_.next().text;
      expect(Token::Kind::Equals, "'=' after '" + key + "'");
      const std::string value = expectAnyWord("value of '" + key + "'");
      if (key == "len") {
        const std::uint64_t raw = parseUnsigned(value, "segment length");
        if (raw == 0 || raw > kMaxSegmentLength)
          throw ParseError("segment '" + name + "': length " + value +
                           " out of range [1, " +
                           std::to_string(kMaxSegmentLength) + "]");
        length = static_cast<std::uint32_t>(raw);
      } else if (key == "instrument") {
        instrument = value;
        recordLine(value);
      } else
        throw ParseError("unknown segment attribute '" + key + "'");
    }
    expect(Token::Kind::Semi, "';'");
    return builder_->segment(name, length, instrument);
  }

  NetworkBuilder::Handle parseMux() {
    const std::string name = expectAnyWord("mux name");
    recordLine(name);
    std::string ctrl;
    while (lex_.peek().kind == Token::Kind::Word &&
           lex_.peek().text != "branch") {
      const std::string key = lex_.next().text;
      expect(Token::Kind::Equals, "'=' after '" + key + "'");
      const std::string value = expectAnyWord("value of '" + key + "'");
      if (key == "ctrl") ctrl = value;
      else throw ParseError("unknown mux attribute '" + key + "'");
    }
    expect(Token::Kind::LBrace, "'{'");
    std::vector<NetworkBuilder::Handle> branches;
    while (lex_.peek().kind == Token::Kind::Word &&
           lex_.peek().text == "branch") {
      lex_.next();
      branches.push_back(parseBody("branch body"));
    }
    expect(Token::Kind::RBrace, "'}' closing mux '" + name + "'");
    if (branches.size() < 2)
      throw ParseError("mux '" + name + "' needs at least two branches");
    return builder_->mux(name, std::move(branches), ctrl);
  }

  void expect(Token::Kind kind, const std::string& what) {
    const Token t = lex_.next();
    if (t.kind != kind) fail(t, what);
  }

  void expectWord(const std::string& word) {
    const Token t = lex_.next();
    if (t.kind != Token::Kind::Word || t.text != word) fail(t, "'" + word + "'");
  }

  std::string expectAnyWord(const std::string& what) {
    const Token t = lex_.next();
    if (t.kind != Token::Kind::Word) fail(t, what);
    lastWordLine_ = t.line;
    return t.text;
  }

  /// Records the declaration line of `name` (the most recently consumed
  /// word token) into the optional source map.  First declaration wins,
  /// which is the right anchor for duplicate-name diagnostics.
  void recordLine(const std::string& name) {
    if (sources_ != nullptr) sources_->lineOf.emplace(name, lastWordLine_);
  }

  Lexer lex_;
  NetlistSources* sources_ = nullptr;
  std::size_t lastWordLine_ = 0;
  std::optional<NetworkBuilder> builder_;
  std::size_t depth_ = 0;
};

// --------------------------------------------------------------- writer

class Writer {
 public:
  Writer(std::ostream& os, const Network& net) : os_(os), net_(net) {}

  void write() {
    os_ << "network " << net_.name() << " {\n";
    writeNode(net_.structure().root(), 1, /*forceChain=*/true);
    os_ << "}\n";
  }

 private:
  void indent(int depth) { os_ << std::string(static_cast<std::size_t>(depth) * 2, ' '); }

  /// Detects the SIB pattern emitted by NetworkBuilder::sib:
  /// Serial[ MuxJoin(mux "X_mux" ctrl=reg, {wire, content}), Segment reg ]
  /// where reg.isSibRegister.  Returns content node or kNone.
  NodeId sibContent(const Structure::Node& n, SegmentId& regOut) const {
    if (n.kind != NodeKind::Serial || n.children.size() != 2) return kNone;
    const auto& join = net_.structure().node(n.children[0]);
    const auto& reg = net_.structure().node(n.children[1]);
    if (join.kind != NodeKind::MuxJoin || reg.kind != NodeKind::Segment)
      return kNone;
    if (!net_.segment(reg.prim).isSibRegister) return kNone;
    if (net_.mux(join.prim).controlSegment != reg.prim) return kNone;
    if (join.children.size() != 2) return kNone;
    if (net_.structure().node(join.children[0]).kind != NodeKind::Wire)
      return kNone;
    regOut = reg.prim;
    return join.children[1];
  }

  void writeNode(NodeId id, int depth, bool forceChain = false) {
    const auto& n = net_.structure().node(id);
    SegmentId sibReg = kNone;
    if (const NodeId content = sibContent(n, sibReg); content != kNone) {
      indent(depth);
      os_ << "sib " << net_.segment(sibReg).name << " {\n";
      writeBodyOf(content, depth + 1);
      indent(depth);
      os_ << "}\n";
      return;
    }
    switch (n.kind) {
      case NodeKind::Wire:
        indent(depth);
        os_ << "wire;\n";
        break;
      case NodeKind::Segment: {
        const Segment& s = net_.segment(n.prim);
        indent(depth);
        os_ << "segment " << s.name;
        if (s.length != 1) os_ << " len=" << s.length;
        if (s.instrument != kNone)
          os_ << " instrument=" << net_.instrument(s.instrument).name;
        os_ << ";\n";
        break;
      }
      case NodeKind::Serial:
        indent(depth);
        os_ << (forceChain ? "chain {\n" : "chain {\n");
        for (NodeId c : n.children) writeNode(c, depth + 1);
        indent(depth);
        os_ << "}\n";
        break;
      case NodeKind::MuxJoin: {
        const Mux& m = net_.mux(n.prim);
        indent(depth);
        os_ << "mux " << m.name;
        if (m.controlSegment != kNone)
          os_ << " ctrl=" << net_.segment(m.controlSegment).name;
        os_ << " {\n";
        for (NodeId branch : n.children) {
          indent(depth + 1);
          os_ << "branch {\n";
          writeBodyOf(branch, depth + 2);
          indent(depth + 1);
          os_ << "}\n";
        }
        indent(depth);
        os_ << "}\n";
        break;
      }
    }
  }

  /// Writes the children of `id` if it is a Serial (flattening one chain
  /// level inside branch/sib bodies), otherwise writes the node itself.
  void writeBodyOf(NodeId id, int depth) {
    const auto& n = net_.structure().node(id);
    SegmentId sibReg = kNone;
    if (n.kind == NodeKind::Serial && sibContent(n, sibReg) == kNone) {
      for (NodeId c : n.children) writeNode(c, depth);
    } else if (n.kind == NodeKind::Wire) {
      // empty body
    } else {
      writeNode(id, depth);
    }
  }

  std::ostream& os_;
  const Network& net_;
};

}  // namespace

Network parseNetlist(std::istream& is) { return Parser(is).parse(); }

Network parseNetlist(std::istream& is, NetlistSources& sources) {
  return Parser(is, &sources).parse();
}

Network parseNetlistString(const std::string& text) {
  std::istringstream is(text);
  return parseNetlist(is);
}

void writeNetlist(std::ostream& os, const Network& net) {
  Writer(os, net).write();
}

std::string netlistToString(const Network& net) {
  std::ostringstream os;
  writeNetlist(os, net);
  return os.str();
}

}  // namespace rrsn::rsn

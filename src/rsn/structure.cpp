#include "rsn/structure.hpp"

namespace rrsn::rsn {

NodeId Structure::makeWire() {
  nodes_.push_back(Node{NodeKind::Wire, kNone, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Structure::makeSegment(SegmentId segment) {
  nodes_.push_back(Node{NodeKind::Segment, segment, {}});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Structure::makeSerial(std::vector<NodeId> parts) {
  RRSN_CHECK(!parts.empty(), "a serial composition needs at least one part");
  for (NodeId p : parts)
    RRSN_CHECK(p < nodes_.size(), "serial part references unknown node");
  nodes_.push_back(Node{NodeKind::Serial, kNone, std::move(parts)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

NodeId Structure::makeMuxJoin(MuxId mux, std::vector<NodeId> branches) {
  RRSN_CHECK(branches.size() >= 2,
             "a scan multiplexer needs at least two branches");
  for (NodeId b : branches)
    RRSN_CHECK(b < nodes_.size(), "mux branch references unknown node");
  nodes_.push_back(Node{NodeKind::MuxJoin, mux, std::move(branches)});
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Structure::setRoot(NodeId id) {
  RRSN_CHECK(id < nodes_.size(), "root references unknown node");
  root_ = id;
}

std::size_t Structure::countSegments(NodeId id) const {
  std::size_t total = 0;
  std::vector<NodeId> stack{id};
  while (!stack.empty()) {
    const Node& n = node(stack.back());
    stack.pop_back();
    if (n.kind == NodeKind::Segment) ++total;
    for (NodeId c : n.children) stack.push_back(c);
  }
  return total;
}

}  // namespace rrsn::rsn

#include "support/rng.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "support/bitset.hpp"

namespace rrsn {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  RRSN_CHECK(bound > 0, "Rng::below requires a positive bound");
  // Lemire's method: multiply-shift with rejection of the biased zone.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  RRSN_CHECK(lo <= hi, "Rng::range requires lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit span
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

std::uint64_t Rng::binomial(std::uint64_t n, double p) {
  if (n == 0 || p <= 0.0) return 0;
  if (p >= 1.0) return n;
  if (n <= 64) {
    std::uint64_t hits = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (chance(p)) ++hits;
    }
    return hits;
  }
  // Normal approximation with continuity correction, clamped to [0, n].
  // Adequate for the EA's mutation-count sampling where n*p >> 1; exact
  // per-bit behaviour is not required, only the right distribution shape.
  const double mean = static_cast<double>(n) * p;
  const double sd = std::sqrt(mean * (1.0 - p));
  // Box–Muller using two uniforms from this generator.
  const double u1 = std::max(uniform(), 0x1.0p-60);
  const double u2 = uniform();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  double draw = std::round(mean + sd * z);
  if (draw < 0.0) draw = 0.0;
  if (draw > static_cast<double>(n)) draw = static_cast<double>(n);
  return static_cast<std::uint64_t>(draw);
}

std::vector<std::size_t> Rng::sampleIndices(std::size_t n, std::size_t k) {
  RRSN_CHECK(k <= n, "cannot sample more indices than available");
  // Floyd's algorithm: O(k) draws, each landing in a growing set.  The
  // membership container is an implementation detail — the draws are
  // below(j + 1) for j in [n - k, n) either way — so dense samples use
  // a bit array (no node allocations) and sparse ones a tree set.
  if (k >= n / 256) {
    DynamicBitset chosen;
    sampleIndicesInto(n, k, chosen);
    return chosen.toIndices();
  }
  std::set<std::size_t> chosen;
  for (std::size_t j = n - k; j < n; ++j) {
    std::size_t t = static_cast<std::size_t>(below(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return {chosen.begin(), chosen.end()};
}

void Rng::sampleIndicesInto(std::size_t n, std::size_t k, DynamicBitset& out) {
  RRSN_CHECK(k <= n, "cannot sample more indices than available");
  out = DynamicBitset(n);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(below(j + 1));
    if (out.test(t))
      out.set(j);
    else
      out.set(t);
  }
}

Rng Rng::fork() {
  Rng child(0);
  // Derive the child state from fresh output of the parent; the parent
  // advances, so repeated forks yield independent streams.
  std::uint64_t mix = next();
  for (auto& s : child.s_) {
    mix ^= next();
    s = splitmix64(mix);
  }
  return child;
}

}  // namespace rrsn

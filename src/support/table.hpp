// Plain-text result tables.
//
// The benchmark harnesses print tables in the same layout as the paper
// (e.g. Table I); this helper handles column sizing, alignment, thousands
// separators and CSV export so every bench binary formats consistently.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace rrsn {

/// Formats n with ',' thousands separators ("1234567" -> "1,234,567").
std::string withThousands(std::uint64_t n);
std::string withThousands(std::int64_t n);

/// Formats seconds as the paper's "[m:s]" runtime column, e.g. 92:01.
std::string formatMinSec(double seconds);

/// Simple column-aligned text table with optional CSV export.
class TextTable {
 public:
  enum class Align { Left, Right };

  /// Defines the header row; every data row must have the same arity.
  explicit TextTable(std::vector<std::string> headers);

  /// Sets the alignment of one column (default: Right).
  void setAlign(std::size_t column, Align align);

  /// Appends a data row (strings are used verbatim).
  void addRow(std::vector<std::string> cells);

  /// Appends a horizontal separator between the previous and next row.
  void addSeparator();

  std::size_t rowCount() const { return rows_.size(); }

  /// Renders the table with a header rule, e.g. for stdout.
  std::string render() const;

  /// Renders as RFC-4180-ish CSV (fields with commas/quotes are quoted).
  std::string renderCsv() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
};

std::ostream& operator<<(std::ostream& os, const TextTable& table);

}  // namespace rrsn

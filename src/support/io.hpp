// Robust POSIX I/O primitives shared by the CLIs, the serve daemon and
// the checkpoint writer.
//
// Three failure modes that a one-shot CLI merely tolerates become
// correctness bugs in a long-running service and in multi-hour
// campaigns, so they are handled here once, as typed `Status` values:
//  * SIGPIPE: writing to a consumer that went away (a closed pipe, a
//    disconnected client) kills the whole process by default.
//    ignoreSigpipe() turns that into an EPIPE write error the caller
//    classifies per request.
//  * Short or failed writes: std::ofstream silently swallows a full
//    disk until close (and often past it).  writeAll / atomicWriteFile
//    check every byte, fsync before publishing, and never report
//    success for a file that is not durably complete.
//  * Torn files: atomicWriteFile stages into `<path>.tmp` and renames
//    only after a successful fsync, so readers see the old bytes or the
//    new bytes, never a prefix.
//
// MappedFile is the read side: a whole file mapped read-only, used by
// the serve artifact cache to adopt serialized FlatNetwork arenas with
// zero copies (rsn::FlatNetwork::mapFile).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>

#include "support/status.hpp"

namespace rrsn::io {

/// Idempotently sets SIGPIPE to SIG_IGN for the whole process, so a
/// write to a closed pipe/socket fails with EPIPE instead of killing
/// the process.  Call once at tool/daemon startup, before any output.
void ignoreSigpipe();

/// Writes all `n` bytes to `fd`, retrying on EINTR and short writes.
/// EPIPE / ECONNRESET (the consumer went away) yield kUnavailable; any
/// other write failure yields kDataLoss with errno text.
Status writeAll(int fd, const void* data, std::size_t n);

/// Reads exactly `n` bytes into `data`, retrying on EINTR.  `eof` is
/// set iff the stream ended cleanly *before the first byte* (OK status,
/// nothing read); an EOF mid-read is kDataLoss, a read error
/// kUnavailable.
Status readExact(int fd, void* data, std::size_t n, bool& eof);

/// Atomically replaces `path` with `bytes`: write to `<path>.tmp` with
/// every write checked, fsync, close (checked), then rename into place.
/// On any failure the temp file is removed, `path` keeps its previous
/// content, and the returned Status says what failed (kUnavailable for
/// open/rename problems, kDataLoss for write/fsync/close problems).
Status atomicWriteFile(const std::string& path, std::string_view bytes);

/// A whole file mapped read-only (PROT_READ, MAP_PRIVATE).  Movable,
/// not copyable; unmaps on destruction.  A default-constructed or
/// moved-from instance is empty (data() == nullptr).
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  MappedFile& operator=(MappedFile&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile() { reset(); }

  /// Maps `path` read-only into `out` (replacing its previous mapping).
  /// A missing/unopenable file yields kUnavailable, an empty file or
  /// failed mmap kDataLoss; `out` is only modified on success.
  static Status map(const std::string& path, MappedFile& out);

  const std::uint8_t* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return data_ == nullptr; }

  /// Unmaps; the instance becomes empty.
  void reset();

 private:
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace rrsn::io

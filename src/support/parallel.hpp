// Process-wide parallel runtime: a lazily-started thread pool plus
// deterministic data-parallel primitives.
//
// Determinism contract.  Every primitive here produces results that are
// *independent of the thread count*:
//  * parallelFor / parallelMap write each index's result into its own
//    pre-assigned slot, so scheduling order cannot change the output;
//  * parallelReduce accumulates over a chunk grid derived only from `n`
//    (never from the thread count) and folds the per-chunk partials
//    sequentially in chunk order on the calling thread, so even
//    floating-point reductions are bitwise reproducible.
// Callers must keep any randomness on the calling thread (the EAs fan
// out evaluation only) — then `RRSN_THREADS=1` and `RRSN_THREADS=64`
// yield byte-identical damage vectors, dictionaries and archives.
//
// The pool size comes from the RRSN_THREADS environment variable
// (default: std::thread::hardware_concurrency) and can be changed at
// runtime with setThreadCount() while no parallel region is active.
// With one thread every primitive degenerates to the plain serial loop
// — zero threading overhead on small inputs or single-core machines.
// Nested parallel regions execute inline on the worker that encounters
// them rather than deadlocking the pool.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace rrsn {

/// Cooperative cancellation signal, shared between a controller and any
/// number of workers.  Cancellation is one-way and latching: once
/// cancelled() returns true it stays true.  A token can also carry a
/// wall-clock deadline; passing the deadline cancels it implicitly, so a
/// long-running loop only needs a single cancelled() poll per unit of
/// work.  All members are safe to call concurrently.
class CancellationToken {
 public:
  /// Requests cancellation.
  void cancel() noexcept { flag_.store(true, std::memory_order_release); }

  /// Cancels automatically once `budget` has elapsed from now.
  void setDeadlineFromNow(std::chrono::nanoseconds budget) noexcept {
    const auto at = std::chrono::steady_clock::now() + budget;
    deadlineNs_.store(at.time_since_epoch().count(), std::memory_order_release);
  }
  void clearDeadline() noexcept {
    deadlineNs_.store(kNoDeadline, std::memory_order_release);
  }

  /// True once cancel() was called or the deadline passed.
  bool cancelled() const noexcept {
    if (flag_.load(std::memory_order_acquire)) return true;
    const std::int64_t at = deadlineNs_.load(std::memory_order_acquire);
    if (at != kNoDeadline &&
        std::chrono::steady_clock::now().time_since_epoch().count() >= at) {
      flag_.store(true, std::memory_order_release);  // latch
      return true;
    }
    return false;
  }

 private:
  static constexpr std::int64_t kNoDeadline = INT64_MIN;
  mutable std::atomic<bool> flag_{false};
  std::atomic<std::int64_t> deadlineNs_{kNoDeadline};
};

/// Number of workers a parallel region fans out to (>= 1).  The first
/// call latches RRSN_THREADS / hardware_concurrency.
std::size_t threadCount();

/// Reconfigures the pool to exactly `n` workers (n >= 1; 0 re-reads the
/// environment).  Must not be called from inside a parallel region.
void setThreadCount(std::size_t n);

/// Default minimum number of indices per chunk before a primitive fans
/// out (the RRSN_GRAIN environment variable; 16 when unset).  Inputs
/// smaller than twice the grain run serially on the caller — per-task
/// dispatch overhead (~µs) otherwise dominates sub-millisecond sweeps,
/// making the pooled run *slower* than the serial one.  Call sites with
/// cheap per-index bodies should pass an explicit larger grain.
std::size_t defaultGrain();

namespace detail {

/// How one environment value was interpreted by parseEnvCount.
struct EnvParse {
  std::size_t value = 0;
  bool usedFallback = false;  ///< text was garbage / empty / non-positive
  bool clamped = false;       ///< text was numeric but outside [lo, hi]
};

/// Strict parser for positive environment counts (RRSN_THREADS,
/// RRSN_GRAIN).  `text` may be null (unset variable).  Accepts only a
/// full decimal integer; garbage, trailing characters, empty strings,
/// zero and negative values fall back to `fallback`, while values
/// outside [lo, hi] (including overflow) clamp to the nearest bound.
/// Exposed for tests; callers warn once per variable on either flag.
EnvParse parseEnvCount(const char* text, std::size_t fallback, std::size_t lo,
                       std::size_t hi);

/// Bounds enforced on the environment knobs.  A thread count above the
/// cap only adds context-switch thrash (the pool caps chunk counts at
/// 256 anyway); a grain above the cap would force every realistic input
/// serial, which is indistinguishable from a typo.
inline constexpr std::size_t kMaxThreads = 1024;
inline constexpr std::size_t kMaxGrain = std::size_t{1} << 24;

/// Runs body(chunk, worker) for every chunk in [0, chunks); worker is in
/// [0, threadCount()) and identifies the executing lane for scratch
/// indexing.  Blocks until all chunks completed; rethrows the first
/// exception thrown by any chunk.  If `cancel` is non-null and becomes
/// cancelled, chunks that have not started yet are *skipped* (their body
/// is never invoked); chunks already running finish normally.  Callers
/// that pass a token must therefore track per-index completion
/// themselves — the primitives below make no completeness guarantee
/// under cancellation.
void runChunks(std::size_t chunks,
               const std::function<void(std::size_t, std::size_t)>& body,
               const CancellationToken* cancel = nullptr);

/// Chunk grid used by every primitive: a function of `n` and the grain
/// only (never of the pool size), so that per-chunk partial results do
/// not depend on the thread count.  `grain` is the minimum indices per
/// chunk; 0 means defaultGrain().  Returns 1 (serial fallback) when the
/// input is below twice the grain.
std::size_t chunkGrid(std::size_t n, std::size_t grain = 0);

/// Half-open index range of chunk `c` in a grid of `chunks` over [0, n).
inline std::pair<std::size_t, std::size_t> chunkRange(std::size_t n,
                                                      std::size_t chunks,
                                                      std::size_t c) {
  return {c * n / chunks, (c + 1) * n / chunks};
}

}  // namespace detail

/// Deterministic parallel loop: fn(i) for every i in [0, n), in
/// unspecified order.  fn must only write state owned by index i.
/// `grain` is the minimum work (indices) per chunk — inputs below twice
/// the grain fall back to the plain serial loop; 0 uses defaultGrain().
template <typename Fn>
void parallelFor(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  if (n == 0) return;
  const std::size_t chunks = detail::chunkGrid(n, grain);
  if (chunks <= 1 || threadCount() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  detail::runChunks(chunks, [&](std::size_t c, std::size_t) {
    const auto [begin, end] = detail::chunkRange(n, chunks, c);
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Cancellable parallel loop: like parallelFor, but stops dispatching
/// work once `cancel` trips.  Indices whose chunk never started are
/// silently skipped, so fn must record its own completion (e.g. set a
/// done flag as its last store) and fn itself should poll the token for
/// finer-grained exits.  With a null token this is exactly parallelFor.
template <typename Fn>
void parallelForCancellable(std::size_t n, const CancellationToken* cancel,
                            Fn&& fn, std::size_t grain = 0) {
  if (n == 0) return;
  const std::size_t chunks = detail::chunkGrid(n, grain);
  if (chunks <= 1 || threadCount() <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel != nullptr && cancel->cancelled()) return;
      fn(i);
    }
    return;
  }
  detail::runChunks(
      chunks,
      [&](std::size_t c, std::size_t) {
        const auto [begin, end] = detail::chunkRange(n, chunks, c);
        for (std::size_t i = begin; i < end; ++i) {
          if (cancel != nullptr && cancel->cancelled()) return;
          fn(i);
        }
      },
      cancel);
}

/// Chunked variant exposing the worker lane for per-thread scratch:
/// fn(begin, end, worker) with worker < threadCount().  The [begin, end)
/// ranges tile [0, n) and depend only on n.
template <typename Fn>
void parallelForChunks(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  if (n == 0) return;
  const std::size_t chunks = detail::chunkGrid(n, grain);
  if (chunks <= 1 || threadCount() <= 1) {
    fn(std::size_t{0}, n, std::size_t{0});
    return;
  }
  detail::runChunks(chunks, [&](std::size_t c, std::size_t worker) {
    const auto [begin, end] = detail::chunkRange(n, chunks, c);
    fn(begin, end, worker);
  });
}

/// out[i] = fn(i) for every i in [0, n); T must be default-constructible.
template <typename T, typename Fn>
std::vector<T> parallelMap(std::size_t n, Fn&& fn, std::size_t grain = 0) {
  std::vector<T> out(n);
  parallelFor(n, [&](std::size_t i) { out[i] = fn(i); }, grain);
  return out;
}

/// combine(... combine(combine(init, fn(0)), fn(1)) ..., fn(n-1)) with a
/// thread-count-independent association: partials are accumulated per
/// chunk of the fixed grid and folded in chunk order on the caller.
template <typename T, typename Fn, typename Combine>
T parallelReduce(std::size_t n, T init, Fn&& fn, Combine&& combine,
                 std::size_t grain = 0) {
  if (n == 0) return init;
  const std::size_t chunks = detail::chunkGrid(n, grain);
  std::vector<T> partial(chunks, T{});
  std::vector<char> nonEmpty(chunks, 0);
  // The per-chunk association is identical on the serial and the pooled
  // path — only the execution order differs.
  const auto accumulateChunk = [&](std::size_t c, std::size_t) {
    const auto [begin, end] = detail::chunkRange(n, chunks, c);
    T acc{};
    bool empty = true;
    for (std::size_t i = begin; i < end; ++i) {
      acc = empty ? fn(i) : combine(std::move(acc), fn(i));
      empty = false;
    }
    partial[c] = std::move(acc);
    nonEmpty[c] = empty ? 0 : 1;
  };
  if (chunks <= 1 || threadCount() <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) accumulateChunk(c, 0);
  } else {
    detail::runChunks(chunks, accumulateChunk);
  }
  T acc = std::move(init);
  for (std::size_t c = 0; c < chunks; ++c)
    if (nonEmpty[c] != 0) acc = combine(std::move(acc), std::move(partial[c]));
  return acc;
}

}  // namespace rrsn

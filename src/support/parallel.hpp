// Process-wide parallel runtime: a lazily-started thread pool plus
// deterministic data-parallel primitives.
//
// Determinism contract.  Every primitive here produces results that are
// *independent of the thread count*:
//  * parallelFor / parallelMap write each index's result into its own
//    pre-assigned slot, so scheduling order cannot change the output;
//  * parallelReduce accumulates over a chunk grid derived only from `n`
//    (never from the thread count) and folds the per-chunk partials
//    sequentially in chunk order on the calling thread, so even
//    floating-point reductions are bitwise reproducible.
// Callers must keep any randomness on the calling thread (the EAs fan
// out evaluation only) — then `RRSN_THREADS=1` and `RRSN_THREADS=64`
// yield byte-identical damage vectors, dictionaries and archives.
//
// The pool size comes from the RRSN_THREADS environment variable
// (default: std::thread::hardware_concurrency) and can be changed at
// runtime with setThreadCount() while no parallel region is active.
// With one thread every primitive degenerates to the plain serial loop
// — zero threading overhead on small inputs or single-core machines.
// Nested parallel regions execute inline on the worker that encounters
// them rather than deadlocking the pool.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace rrsn {

/// Number of workers a parallel region fans out to (>= 1).  The first
/// call latches RRSN_THREADS / hardware_concurrency.
std::size_t threadCount();

/// Reconfigures the pool to exactly `n` workers (n >= 1; 0 re-reads the
/// environment).  Must not be called from inside a parallel region.
void setThreadCount(std::size_t n);

namespace detail {

/// Runs body(chunk, worker) for every chunk in [0, chunks); worker is in
/// [0, threadCount()) and identifies the executing lane for scratch
/// indexing.  Blocks until all chunks completed; rethrows the first
/// exception thrown by any chunk.
void runChunks(std::size_t chunks,
               const std::function<void(std::size_t, std::size_t)>& body);

/// Chunk grid used by every primitive: a function of `n` only, so that
/// per-chunk partial results do not depend on the pool size.
std::size_t chunkGrid(std::size_t n);

/// Half-open index range of chunk `c` in a grid of `chunks` over [0, n).
inline std::pair<std::size_t, std::size_t> chunkRange(std::size_t n,
                                                      std::size_t chunks,
                                                      std::size_t c) {
  return {c * n / chunks, (c + 1) * n / chunks};
}

}  // namespace detail

/// Deterministic parallel loop: fn(i) for every i in [0, n), in
/// unspecified order.  fn must only write state owned by index i.
template <typename Fn>
void parallelFor(std::size_t n, Fn&& fn) {
  if (n == 0) return;
  const std::size_t chunks = detail::chunkGrid(n);
  if (chunks <= 1 || threadCount() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  detail::runChunks(chunks, [&](std::size_t c, std::size_t) {
    const auto [begin, end] = detail::chunkRange(n, chunks, c);
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

/// Chunked variant exposing the worker lane for per-thread scratch:
/// fn(begin, end, worker) with worker < threadCount().  The [begin, end)
/// ranges tile [0, n) and depend only on n.
template <typename Fn>
void parallelForChunks(std::size_t n, Fn&& fn) {
  if (n == 0) return;
  const std::size_t chunks = detail::chunkGrid(n);
  if (chunks <= 1 || threadCount() <= 1) {
    fn(std::size_t{0}, n, std::size_t{0});
    return;
  }
  detail::runChunks(chunks, [&](std::size_t c, std::size_t worker) {
    const auto [begin, end] = detail::chunkRange(n, chunks, c);
    fn(begin, end, worker);
  });
}

/// out[i] = fn(i) for every i in [0, n); T must be default-constructible.
template <typename T, typename Fn>
std::vector<T> parallelMap(std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  parallelFor(n, [&](std::size_t i) { out[i] = fn(i); });
  return out;
}

/// combine(... combine(combine(init, fn(0)), fn(1)) ..., fn(n-1)) with a
/// thread-count-independent association: partials are accumulated per
/// chunk of the fixed grid and folded in chunk order on the caller.
template <typename T, typename Fn, typename Combine>
T parallelReduce(std::size_t n, T init, Fn&& fn, Combine&& combine) {
  if (n == 0) return init;
  const std::size_t chunks = detail::chunkGrid(n);
  std::vector<T> partial(chunks, T{});
  std::vector<char> nonEmpty(chunks, 0);
  // The per-chunk association is identical on the serial and the pooled
  // path — only the execution order differs.
  const auto accumulateChunk = [&](std::size_t c, std::size_t) {
    const auto [begin, end] = detail::chunkRange(n, chunks, c);
    T acc{};
    bool empty = true;
    for (std::size_t i = begin; i < end; ++i) {
      acc = empty ? fn(i) : combine(std::move(acc), fn(i));
      empty = false;
    }
    partial[c] = std::move(acc);
    nonEmpty[c] = empty ? 0 : 1;
  };
  if (chunks <= 1 || threadCount() <= 1) {
    for (std::size_t c = 0; c < chunks; ++c) accumulateChunk(c, 0);
  } else {
    detail::runChunks(chunks, accumulateChunk);
  }
  T acc = std::move(init);
  for (std::size_t c = 0; c < chunks; ++c)
    if (nonEmpty[c] != 0) acc = combine(std::move(acc), std::move(partial[c]));
  return acc;
}

}  // namespace rrsn

#include "support/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace rrsn::json {

namespace {

[[noreturn]] void typeError(const char* want, Kind got) {
  throw Error(std::string("json: expected ") + want + ", got kind " +
              std::to_string(static_cast<int>(got)));
}

}  // namespace

bool Value::asBool() const {
  if (kind_ != Kind::Bool) typeError("bool", kind_);
  return bool_;
}

std::int64_t Value::asInt() const {
  if (kind_ != Kind::Int) typeError("integer", kind_);
  return int_;
}

std::uint64_t Value::asUnsigned() const {
  if (kind_ != Kind::Int || int_ < 0) typeError("unsigned integer", kind_);
  return static_cast<std::uint64_t>(int_);
}

double Value::asDouble() const {
  if (kind_ == Kind::Int) return static_cast<double>(int_);
  if (kind_ != Kind::Double) typeError("number", kind_);
  return double_;
}

const std::string& Value::asString() const {
  if (kind_ != Kind::String) typeError("string", kind_);
  return string_;
}

const Array& Value::asArray() const {
  if (kind_ != Kind::Array) typeError("array", kind_);
  return array_;
}

Array& Value::asArray() {
  if (kind_ != Kind::Array) typeError("array", kind_);
  return array_;
}

const Object& Value::asObject() const {
  if (kind_ != Kind::Object) typeError("object", kind_);
  return object_;
}

Object& Value::asObject() {
  if (kind_ != Kind::Object) typeError("object", kind_);
  return object_;
}

const Value& Value::at(const std::string& key) const {
  const Object& o = asObject();
  const auto it = o.find(key);
  if (it == o.end()) throw Error("json: missing key '" + key + "'");
  return it->second;
}

const Value& Value::get(const std::string& key, const Value& fallback) const {
  const Object& o = asObject();
  const auto it = o.find(key);
  return it == o.end() ? fallback : it->second;
}

bool Value::contains(const std::string& key) const {
  const Object& o = asObject();
  return o.find(key) != o.end();
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::Null: return true;
    case Kind::Bool: return bool_ == other.bool_;
    case Kind::Int: return int_ == other.int_;
    case Kind::Double: return double_ == other.double_;
    case Kind::String: return string_ == other.string_;
    case Kind::Array: return array_ == other.array_;
    case Kind::Object: return object_ == other.object_;
  }
  return false;
}

// ---------------------------------------------------------------- parser

namespace {

class ParserImpl {
 public:
  explicit ParserImpl(const std::string& text) : text_(text) {}

  Value parseDocument() {
    Value v = parseValue();
    skipWhitespace();
    if (pos_ != text_.size()) fail("trailing content after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError("json: " + msg + " at byte " + std::to_string(pos_));
  }

  void skipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    skipWhitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLiteral(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Value parseValue() {
    // Each nested container recurses once; cap the depth so adversarial
    // inputs cannot blow the stack.
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    const char c = peek();
    Value out;
    switch (c) {
      case '{': out = parseObject(); break;
      case '[': out = parseArray(); break;
      case '"': out = Value(parseString()); break;
      case 't':
        if (!consumeLiteral("true")) fail("invalid literal");
        out = Value(true);
        break;
      case 'f':
        if (!consumeLiteral("false")) fail("invalid literal");
        out = Value(false);
        break;
      case 'n':
        if (!consumeLiteral("null")) fail("invalid literal");
        break;
      default: out = parseNumber(); break;
    }
    --depth_;
    return out;
  }

  Value parseObject() {
    expect('{');
    Object obj;
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(obj));
    }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parseString();
      expect(':');
      obj.emplace(std::move(key), parseValue());
      const char c = peek();
      ++pos_;
      if (c == '}') return Value(std::move(obj));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  Value parseArray() {
    expect('[');
    Array arr;
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(arr));
    }
    while (true) {
      arr.push_back(parseValue());
      const char c = peek();
      ++pos_;
      if (c == ']') return Value(std::move(arr));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  /// Four hex digits of a \uXXXX escape (pos_ at the first digit).
  unsigned parseHex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int k = 0; k < 4; ++k) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return code;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = parseHex4();
          // RFC 8259 §7: code points above U+FFFF are escaped as a
          // UTF-16 surrogate pair.  Recombine valid pairs into the real
          // code point; a lone or mismatched surrogate cannot encode
          // any scalar value and is a parse error.
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("lone high surrogate in \\u escape");
            }
            pos_ += 2;
            const unsigned low = parseHex4();
            if (low < 0xDC00 || low > 0xDFFF)
              fail("high surrogate not followed by a low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            fail("lone low surrogate in \\u escape");
          }
          // Encode the scalar value as UTF-8 (1–4 bytes).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Value parseNumber() {
    skipWhitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool isDouble = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        isDouble = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("invalid value");
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    if (!isDouble) {
      std::int64_t v = 0;
      const auto [p, ec] = std::from_chars(first, last, v);
      if (ec == std::errc{} && p == last) return Value(v);
      // fall through: out of int64 range, reparse as double
    }
    double d = 0;
    const auto [p, ec] = std::from_chars(first, last, d);
    if (ec != std::errc{} || p != last) fail("invalid number");
    return Value(d);
  }

  static constexpr std::size_t kMaxDepth = 256;
  const std::string& text_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

void writeString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void writeValue(std::string& out, const Value& v, int indent, int depth) {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (v.kind()) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += v.asBool() ? "true" : "false"; break;
    case Kind::Int: out += std::to_string(v.asInt()); break;
    case Kind::Double: {
      const double d = v.asDouble();
      if (std::isfinite(d)) {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        out += buf;
      } else {
        out += "null";  // JSON has no Inf/NaN
      }
      break;
    }
    case Kind::String: writeString(out, v.asString()); break;
    case Kind::Array: {
      const Array& a = v.asArray();
      out.push_back('[');
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline(depth + 1);
        writeValue(out, a[i], indent, depth + 1);
      }
      if (!a.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Kind::Object: {
      const Object& o = v.asObject();
      out.push_back('{');
      std::size_t i = 0;
      for (const auto& [key, member] : o) {
        if (i++ != 0) out.push_back(',');
        newline(depth + 1);
        writeString(out, key);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        writeValue(out, member, indent, depth + 1);
      }
      if (!o.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

Value parse(const std::string& text) { return ParserImpl(text).parseDocument(); }

std::string serialize(const Value& v, int indent) {
  std::string out;
  writeValue(out, v, indent, 0);
  if (indent > 0) out.push_back('\n');
  return out;
}

}  // namespace rrsn::json

#include "support/bitset.hpp"

#include <bit>

namespace rrsn {

void DynamicBitset::setAll() {
  words_.assign(words_.size(), ~0ULL);
  trimTail();
}

std::size_t DynamicBitset::count() const {
  std::size_t total = 0;
  for (std::uint64_t w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

std::size_t DynamicBitset::countBelow(std::size_t limit) const {
  RRSN_CHECK(limit <= bits_, "countBelow limit out of range");
  std::size_t total = 0;
  const std::size_t fullWords = limit >> 6;
  for (std::size_t w = 0; w < fullWords; ++w)
    total += static_cast<std::size_t>(std::popcount(words_[w]));
  const std::size_t rem = limit & 63;
  if (rem != 0) {
    const std::uint64_t mask = (1ULL << rem) - 1;
    total += static_cast<std::size_t>(std::popcount(words_[fullWords] & mask));
  }
  return total;
}

std::size_t DynamicBitset::findNext(std::size_t from) const {
  if (from >= bits_) return bits_;
  std::size_t w = from >> 6;
  std::uint64_t word = words_[w] & (~0ULL << (from & 63));
  while (true) {
    if (word != 0) {
      const std::size_t idx = w * 64 + static_cast<std::size_t>(std::countr_zero(word));
      return idx < bits_ ? idx : bits_;
    }
    if (++w >= words_.size()) return bits_;
    word = words_[w];
  }
}

std::vector<std::size_t> DynamicBitset::toIndices() const {
  std::vector<std::size_t> out;
  out.reserve(count());
  forEachSet([&](std::size_t i) { out.push_back(i); });
  return out;
}

void DynamicBitset::spliceFrom(const DynamicBitset& a, const DynamicBitset& b,
                               std::size_t point) {
  RRSN_CHECK(a.bits_ == bits_ && b.bits_ == bits_,
             "splice operands must have equal size");
  RRSN_CHECK(point <= bits_, "splice point out of range");
  const std::size_t wordPoint = point >> 6;
  for (std::size_t w = 0; w < wordPoint; ++w) words_[w] = a.words_[w];
  for (std::size_t w = wordPoint; w < words_.size(); ++w) words_[w] = b.words_[w];
  const std::size_t rem = point & 63;
  if (rem != 0) {
    const std::uint64_t lowMask = (1ULL << rem) - 1;
    words_[wordPoint] =
        (a.words_[wordPoint] & lowMask) | (b.words_[wordPoint] & ~lowMask);
  }
}

void DynamicBitset::orPrefixFrom(const DynamicBitset& a, std::size_t point) {
  RRSN_CHECK(a.bits_ == bits_, "prefix operand must have equal size");
  RRSN_CHECK(point <= bits_, "prefix point out of range");
  const std::size_t wordPoint = point >> 6;
  for (std::size_t w = 0; w < wordPoint; ++w) words_[w] |= a.words_[w];
  const std::size_t rem = point & 63;
  if (rem != 0) words_[wordPoint] |= a.words_[wordPoint] & ((1ULL << rem) - 1);
}

void DynamicBitset::orSuffixFrom(const DynamicBitset& b, std::size_t point) {
  RRSN_CHECK(b.bits_ == bits_, "suffix operand must have equal size");
  RRSN_CHECK(point <= bits_, "suffix point out of range");
  const std::size_t wordPoint = point >> 6;
  const std::size_t rem = point & 63;
  if (rem != 0 && wordPoint < words_.size())
    words_[wordPoint] |= b.words_[wordPoint] & ~((1ULL << rem) - 1);
  for (std::size_t w = wordPoint + (rem != 0 ? 1 : 0); w < words_.size(); ++w)
    words_[w] |= b.words_[w];
}

DynamicBitset& DynamicBitset::operator|=(const DynamicBitset& other) {
  RRSN_CHECK(other.bits_ == bits_, "bitset size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  return *this;
}

DynamicBitset& DynamicBitset::operator&=(const DynamicBitset& other) {
  RRSN_CHECK(other.bits_ == bits_, "bitset size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] &= other.words_[w];
  return *this;
}

DynamicBitset& DynamicBitset::operator^=(const DynamicBitset& other) {
  RRSN_CHECK(other.bits_ == bits_, "bitset size mismatch");
  for (std::size_t w = 0; w < words_.size(); ++w) words_[w] ^= other.words_[w];
  return *this;
}

void DynamicBitset::trimTail() {
  const std::size_t rem = bits_ & 63;
  if (rem != 0 && !words_.empty()) words_.back() &= (1ULL << rem) - 1;
}

}  // namespace rrsn

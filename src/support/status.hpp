// Typed, non-throwing error values.
//
// The libraries throw exceptions for contract violations (error.hpp),
// but two kinds of failure want to be *values* instead:
//  * recoverable input problems where the caller has a documented
//    fallback (a torn checkpoint file is ignored and the campaign
//    restarts — it must not abort a multi-hour run);
//  * observability invariant checks, which are evaluated on hot paths
//    and reported in bulk (obs::checkSpanBalance and friends return the
//    first violation instead of throwing mid-measurement).
// `Status` carries a machine-checkable code plus a human message; the
// `[[nodiscard]]` forces call sites to look at it.
#pragma once

#include <string>
#include <utility>

namespace rrsn {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,     ///< malformed input the caller handed in
  kFailedPrecondition,  ///< input valid but incompatible with current state
  kDataLoss,            ///< stored data is torn, truncated or corrupt
  kUnavailable,         ///< a required resource cannot be reached
  kInternal,            ///< an internal invariant does not hold (a bug)
};

inline const char* statusCodeName(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  /// Default-constructed status is OK (there is no `ok()` factory — the
  /// name belongs to the predicate below; use `Status{}`).
  Status() = default;

  static Status invalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status failedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status dataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "DATA_LOSS: truncated checkpoint" — for logs and exception texts.
  std::string toString() const {
    if (ok()) return "OK";
    return std::string(statusCodeName(code_)) + ": " + message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

}  // namespace rrsn

// Small string utilities shared by the netlist parser and the CLIs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rrsn {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a single-character delimiter; empty fields are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Splits on runs of ASCII whitespace; empty tokens are dropped.
std::vector<std::string> splitWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix);

/// Parses a non-negative integer; throws ParseError with `context` on failure.
std::uint64_t parseUnsigned(std::string_view s, std::string_view context);

/// Strict bounded integer parsing for CLI options and serve request
/// fields: the whole (trimmed) string must be digits — no sign, no
/// suffix, no empty input — and the value must lie in [lo, hi].
/// Violations throw UsageError naming `context`, the offending text and
/// the accepted range, so tools can print it next to their usage text.
std::uint64_t parseUintBounded(std::string_view s, std::string_view context,
                               std::uint64_t lo, std::uint64_t hi);

/// Parses a double; throws ParseError with `context` on failure.
double parseDouble(std::string_view s, std::string_view context);

}  // namespace rrsn

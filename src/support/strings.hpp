// Small string utilities shared by the netlist parser and the CLIs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rrsn {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a single-character delimiter; empty fields are kept.
std::vector<std::string> split(std::string_view s, char delim);

/// Splits on runs of ASCII whitespace; empty tokens are dropped.
std::vector<std::string> splitWhitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix);

/// Parses a non-negative integer; throws ParseError with `context` on failure.
std::uint64_t parseUnsigned(std::string_view s, std::string_view context);

/// Parses a double; throws ParseError with `context` on failure.
double parseDouble(std::string_view s, std::string_view context);

}  // namespace rrsn

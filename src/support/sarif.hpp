// Generic SARIF 2.1.0 document builder shared by every static-analysis
// producer in the repo (lint findings, verify verdicts, future passes).
//
// SARIF structure is rigid but producers differ in how they name rules
// and format result messages, so the builder takes plain-data rule and
// result descriptions and assembles the canonical document: one run,
// the rule table under tool.driver.rules, one result per entry with a
// physicalLocation into the analyzed artifact.  The json::Object map
// keeps keys sorted, so serialization is byte-stable — CI diffs SARIF
// artifacts byte-for-byte, and lint's historical output is preserved
// exactly (guarded by lint_test).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/json.hpp"

namespace rrsn::sarif {

/// Identity of the producing tool (tool.driver).
struct Driver {
  std::string name;
  std::string informationUri;
  std::string version;
};

/// One entry of tool.driver.rules.
struct Rule {
  std::string id;
  std::string summary;  ///< shortDescription.text
  std::string help;     ///< help.text (always emitted, may be empty)
  std::string level;    ///< defaultConfiguration.level ("error"/...)
};

/// One run.results entry.  `line` 0 means "no region" — the location
/// still carries the artifact URI so viewers group the result under the
/// analyzed file.
struct Result {
  std::string ruleId;
  std::string level;
  std::string message;
  std::size_t line = 0;
};

/// Assembles the canonical single-run document.  ruleIndex is emitted
/// for every result whose ruleId appears in `rules`; unknown ids keep
/// only the ruleId string (lint emits parse.* findings that have no
/// registry entry).
json::Value document(const Driver& driver, const std::vector<Rule>& rules,
                     const std::vector<Result>& results,
                     const std::string& artifactUri);

}  // namespace rrsn::sarif

// Deterministic pseudo-random number generation.
//
// All experiments in this repository must be reproducible from a single
// 64-bit seed, so we ship our own generator (xoshiro256**) instead of
// relying on the unspecified std::default_random_engine.  Distribution
// helpers are implemented here as well because libstdc++'s distributions
// are not guaranteed to be stable across versions.
#pragma once

#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace rrsn {

class DynamicBitset;

/// xoshiro256** by Blackman & Vigna — fast, high-quality, 2^256-1 period.
/// Seeded through splitmix64 so that any 64-bit seed (including 0) yields
/// a well-mixed state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with std::shuffle).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  /// Uniform integer in [0, bound).  bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in the closed interval [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Number of successes of n independent Bernoulli(p) trials.
  /// Exact (per-trial) for small n, BTPE-free inversion for the rest;
  /// deterministic for a given state.
  std::uint64_t binomial(std::uint64_t n, double p);

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices drawn uniformly from [0, n).  k must be <= n.
  /// O(k) expected draws via Floyd's algorithm; result is sorted.  The
  /// draw sequence depends only on (n, k, state), never on the backing
  /// container, so all sampleIndices* variants are interchangeable
  /// without perturbing downstream randomness.
  std::vector<std::size_t> sampleIndices(std::size_t n, std::size_t k);

  /// Same draws as sampleIndices(n, k), but marks the chosen positions
  /// in `out` (reset to n zero bits first) instead of materializing an
  /// index vector — O(n/64 + k) time, no per-element allocation.  The
  /// preferred form when the caller wants a bit-parallel representation
  /// (dense genomes) or k is a sizable fraction of n.
  void sampleIndicesInto(std::size_t n, std::size_t k, DynamicBitset& out);

  /// Forks an independent stream (e.g. one per benchmark row) whose
  /// sequence does not overlap with this generator for practical lengths.
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace rrsn

// Error handling primitives for the rrsn libraries.
//
// The libraries follow the C++ Core Guidelines and report contract and
// input violations via exceptions.  `rrsn::Error` is the common base so
// callers can catch library failures distinctly from std errors.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace rrsn {

/// Base class of every exception thrown by the rrsn libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when user-provided input (netlist text, benchmark name, spec
/// file, ...) is malformed.
class ParseError : public Error {
 public:
  using Error::Error;
};

/// Machine-readable classification of a ValidationError.  The static
/// checker (src/lint) maps model rejections onto lint rule ids through
/// this code, so diagnostics stay typed end to end instead of being
/// re-derived from message text.
enum class ValidationCode : std::uint8_t {
  Generic,        ///< any invariant not covered by a specific code
  DuplicateName,  ///< two primitives/instruments share one name
  WireOnlyMux,    ///< every branch of a mux is a wire
  CtrlCycle,      ///< mux controlled from inside its own branches
  UnknownCtrl,    ///< mux names a control segment that does not exist yet
};

/// Thrown when a network violates structural invariants (unknown vertex,
/// cyclic scan path, dangling mux input, ...).
class ValidationError : public Error {
 public:
  explicit ValidationError(const std::string& what,
                           ValidationCode code = ValidationCode::Generic)
      : Error(what), code_(code) {}

  ValidationCode code() const { return code_; }

 private:
  ValidationCode code_ = ValidationCode::Generic;
};

/// Thrown when a file the library must read or write (checkpoint, plan,
/// report) cannot be opened or is torn/inconsistent.
class IoError : public Error {
 public:
  using Error::Error;
};

/// Thrown when a command-line or request argument fails validation
/// (garbage digits, out-of-range value).  CLIs catch it to print the
/// message plus usage text and exit 1; the serve daemon maps it to a
/// per-request INVALID_ARGUMENT error instead of dying.
class UsageError : public Error {
 public:
  using Error::Error;
};

namespace detail {

[[noreturn]] inline void throwCheckFailed(const char* expr, const char* file,
                                          int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace rrsn

/// Precondition / invariant check that is always active (unlike assert).
/// Usage: RRSN_CHECK(idx < size(), "segment index out of range");
#define RRSN_CHECK(expr, ...)                                              \
  do {                                                                     \
    if (!(expr)) {                                                         \
      ::rrsn::detail::throwCheckFailed(#expr, __FILE__, __LINE__,          \
                                       ::std::string{__VA_ARGS__});        \
    }                                                                      \
  } while (false)

#include "support/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "support/error.hpp"

namespace rrsn {

std::string withThousands(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string withThousands(std::int64_t n) {
  if (n < 0) return "-" + withThousands(static_cast<std::uint64_t>(-n));
  return withThousands(static_cast<std::uint64_t>(n));
}

std::string formatMinSec(double seconds) {
  if (seconds < 0) seconds = 0;
  const auto total = static_cast<std::uint64_t>(std::llround(seconds));
  const std::uint64_t m = total / 60;
  const std::uint64_t s = total % 60;
  std::ostringstream os;
  os << (m < 10 ? "0" : "") << m << ':' << (s < 10 ? "0" : "") << s;
  return os.str();
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::Right) {
  RRSN_CHECK(!headers_.empty(), "a table needs at least one column");
}

void TextTable::setAlign(std::size_t column, Align align) {
  RRSN_CHECK(column < aligns_.size(), "column index out of range");
  aligns_[column] = align;
}

void TextTable::addRow(std::vector<std::string> cells) {
  RRSN_CHECK(cells.size() == headers_.size(),
             "row arity does not match header arity");
  rows_.push_back(Row{std::move(cells), false});
}

void TextTable::addSeparator() { rows_.push_back(Row{{}, true}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c)
      widths[c] = std::max(widths[c], row.cells[c].size());
  }

  const auto emitCell = [&](std::ostringstream& os, const std::string& text,
                            std::size_t c) {
    const std::size_t pad = widths[c] - text.size();
    if (aligns_[c] == Align::Right) os << std::string(pad, ' ') << text;
    else os << text << std::string(pad, ' ');
  };
  const auto emitRule = [&](std::ostringstream& os) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      if (c != 0) os << "-+-";
      os << std::string(widths[c], '-');
    }
    os << '\n';
  };

  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << " | ";
    emitCell(os, headers_[c], c);
  }
  os << '\n';
  emitRule(os);
  for (const Row& row : rows_) {
    if (row.separator) {
      emitRule(os);
      continue;
    }
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c != 0) os << " | ";
      emitCell(os, row.cells[c], c);
    }
    os << '\n';
  }
  return os.str();
}

std::string TextTable::renderCsv() const {
  const auto escape = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += "\"\"";
      else out.push_back(ch);
    }
    out.push_back('"');
    return out;
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != 0) os << ',';
    os << escape(headers_[c]);
  }
  os << '\n';
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (std::size_t c = 0; c < row.cells.size(); ++c) {
      if (c != 0) os << ',';
      os << escape(row.cells[c]);
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& table) {
  return os << table.render();
}

}  // namespace rrsn

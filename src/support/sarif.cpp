#include "support/sarif.hpp"

#include <unordered_map>
#include <utility>

namespace rrsn::sarif {

json::Value document(const Driver& driver, const std::vector<Rule>& rules,
                     const std::vector<Result>& results,
                     const std::string& artifactUri) {
  json::Array ruleArray;
  std::unordered_map<std::string, std::size_t> ruleIndex;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const Rule& r = rules[i];
    ruleIndex.emplace(r.id, i);
    json::Object rule;
    rule["id"] = r.id;
    json::Object shortDesc;
    shortDesc["text"] = r.summary;
    rule["shortDescription"] = std::move(shortDesc);
    json::Object help;
    help["text"] = r.help;
    rule["help"] = std::move(help);
    json::Object config;
    config["level"] = r.level;
    rule["defaultConfiguration"] = std::move(config);
    ruleArray.emplace_back(std::move(rule));
  }

  json::Array resultArray;
  for (const Result& r : results) {
    json::Object res;
    res["ruleId"] = r.ruleId;
    if (const auto it = ruleIndex.find(r.ruleId); it != ruleIndex.end())
      res["ruleIndex"] = static_cast<std::uint64_t>(it->second);
    res["level"] = r.level;
    json::Object message;
    message["text"] = r.message;
    res["message"] = std::move(message);

    json::Object artifactLocation;
    artifactLocation["uri"] = artifactUri;
    json::Object physicalLocation;
    physicalLocation["artifactLocation"] = std::move(artifactLocation);
    if (r.line != 0) {
      json::Object region;
      region["startLine"] = static_cast<std::uint64_t>(r.line);
      physicalLocation["region"] = std::move(region);
    }
    json::Object location;
    location["physicalLocation"] = std::move(physicalLocation);
    res["locations"] = json::Array{json::Value(std::move(location))};
    resultArray.emplace_back(std::move(res));
  }

  json::Object driverObj;
  driverObj["name"] = driver.name;
  driverObj["informationUri"] = driver.informationUri;
  driverObj["version"] = driver.version;
  driverObj["rules"] = std::move(ruleArray);
  json::Object tool;
  tool["driver"] = std::move(driverObj);

  json::Object run;
  run["tool"] = std::move(tool);
  run["results"] = std::move(resultArray);

  json::Object doc;
  doc["$schema"] = "https://json.schemastore.org/sarif-2.1.0.json";
  doc["version"] = "2.1.0";
  doc["runs"] = json::Array{json::Value(std::move(run))};
  return json::Value(std::move(doc));
}

}  // namespace rrsn::sarif

// Shared FNV-1a hashing primitives.
//
// One canonical implementation of the 64-bit FNV-1a fold used across the
// codebase: campaign checkpoints fingerprint their network + config with
// it, and the fault dictionary keys syndrome equivalence classes by the
// hash of their bitset words.  Keeping the constants and mixing order in
// one place guarantees the two sites agree (checkpoint resume compares
// fingerprints produced by different runs of the binary).
//
// FNV-1a is not collision-free; every consumer that uses a fingerprint
// as a map key must fall back to a full equality check on collision.
#pragma once

#include <cstdint>
#include <string>

#include "support/bitset.hpp"

namespace rrsn::hash {

inline constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Folds 8 bytes of `v` (little-endian order) into the running hash.
inline void fnvMix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= kFnvPrime;
  }
}

/// Folds a string plus a field separator, so "ab"+"c" != "a"+"bc".
inline void fnvMix(std::uint64_t& h, const std::string& s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  h ^= 0xff;
  h *= kFnvPrime;
}

/// FNV-1a fingerprint of a bitset: the bit length followed by every
/// backing word.  Equal bitsets always hash equal (the unused tail bits
/// of the last word are canonically zero).
inline std::uint64_t fingerprint(const DynamicBitset& b) {
  std::uint64_t h = kFnvOffset;
  fnvMix(h, static_cast<std::uint64_t>(b.size()));
  for (std::size_t w = 0; w < b.wordCount(); ++w) fnvMix(h, b.word(w));
  return h;
}

}  // namespace rrsn::hash

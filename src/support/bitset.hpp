// A dynamically sized bitset with the operations the optimizer needs:
// word-level boolean algebra, population count, set-bit iteration and
// one-point-crossover style prefix splicing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/error.hpp"

namespace rrsn {

/// Fixed-size-at-construction bitset backed by 64-bit words.
class DynamicBitset {
 public:
  DynamicBitset() = default;

  /// Creates a bitset of `bits` zero bits.
  explicit DynamicBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  std::size_t size() const { return bits_; }
  bool empty() const { return bits_ == 0; }

  bool test(std::size_t i) const {
    RRSN_CHECK(i < bits_, "bit index out of range");
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  void set(std::size_t i, bool value = true) {
    RRSN_CHECK(i < bits_, "bit index out of range");
    const std::uint64_t mask = 1ULL << (i & 63);
    if (value)
      words_[i >> 6] |= mask;
    else
      words_[i >> 6] &= ~mask;
  }

  void reset(std::size_t i) { set(i, false); }

  /// Flips bit i and returns its new value.
  bool flip(std::size_t i) {
    RRSN_CHECK(i < bits_, "bit index out of range");
    words_[i >> 6] ^= 1ULL << (i & 63);
    return test(i);
  }

  void clearAll() { words_.assign(words_.size(), 0); }
  void setAll();

  /// Number of 64-bit words backing the bitset.
  std::size_t wordCount() const { return words_.size(); }

  /// Raw backing word `w`; bit i of the set lives at word(i >> 6),
  /// bit position i & 63.  Unused tail bits are always zero.
  std::uint64_t word(std::size_t w) const {
    RRSN_CHECK(w < words_.size(), "word index out of range");
    return words_[w];
  }

  /// Number of set bits.
  std::size_t count() const;

  /// Number of set bits with index < limit.
  std::size_t countBelow(std::size_t limit) const;

  /// Index of the first set bit at or after `from`; size() if none.
  std::size_t findNext(std::size_t from) const;

  /// Invokes fn(index) for every set bit, ascending.
  template <typename Fn>
  void forEachSet(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        const int b = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(b));
        word &= word - 1;
      }
    }
  }

  /// Invokes fn(index) for every set bit in [from, to), ascending.
  /// Touches only the words overlapping the range.
  template <typename Fn>
  void forEachSetInRange(std::size_t from, std::size_t to, Fn&& fn) const {
    RRSN_CHECK(from <= to && to <= bits_, "bit range out of bounds");
    if (from >= to) return;
    const std::size_t firstWord = from >> 6;
    const std::size_t lastWord = (to - 1) >> 6;
    for (std::size_t w = firstWord; w <= lastWord; ++w) {
      std::uint64_t word = words_[w];
      if (w == firstWord && (from & 63) != 0) word &= ~0ULL << (from & 63);
      if (w == lastWord && (to & 63) != 0) word &= (1ULL << (to & 63)) - 1;
      while (word != 0) {
        const int b = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(b));
        word &= word - 1;
      }
    }
  }

  /// Returns the sorted indices of all set bits.
  std::vector<std::size_t> toIndices() const;

  /// this := prefix of `a` (bits [0, point)) + suffix of `b` (bits
  /// [point, size)).  All three bitsets must have equal size.
  void spliceFrom(const DynamicBitset& a, const DynamicBitset& b,
                  std::size_t point);

  /// ORs bits [0, point) of `a` into this, word at a time.  Equal sizes
  /// required.  With a zeroed destination this copies the prefix.
  void orPrefixFrom(const DynamicBitset& a, std::size_t point);

  /// ORs bits [point, size) of `b` into this, word at a time.
  void orSuffixFrom(const DynamicBitset& b, std::size_t point);

  bool operator==(const DynamicBitset& other) const = default;

  /// Word-level union: this |= other, 64 bits at a time.  Named alias of
  /// operator|= for call sites that read better with a verb (merging
  /// accessibility-loss sets).  Both bitsets must have equal size.
  DynamicBitset& orWith(const DynamicBitset& other) { return *this |= other; }

  DynamicBitset& operator|=(const DynamicBitset& other);
  DynamicBitset& operator&=(const DynamicBitset& other);
  DynamicBitset& operator^=(const DynamicBitset& other);

 private:
  /// Zeroes the unused high bits of the last word so that word-level
  /// operations (count, ==) stay canonical.
  void trimTail();

  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rrsn

#include "support/parallel.hpp"

#include <atomic>
#include <cctype>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "support/error.hpp"

namespace rrsn {

namespace {

/// Reads one environment count through the strict parser and warns on
/// stderr once per variable when the value was rejected or clamped —
/// a silently mis-parsed RRSN_THREADS turns every "parallel" run serial
/// (or worse), so the correction must be visible.
std::size_t envCountOr(const char* name, std::size_t fallback, std::size_t lo,
                       std::size_t hi, bool* warnedOnce) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read-only getenv at pool
  // construction; nothing in the process calls setenv.
  const char* text = std::getenv(name);
  const detail::EnvParse p = detail::parseEnvCount(text, fallback, lo, hi);
  if ((p.usedFallback && text != nullptr && *text != '\0') || p.clamped) {
    if (!*warnedOnce) {
      *warnedOnce = true;
      std::fprintf(stderr,
                   "rrsn: warning: %s=\"%s\" is %s; using %zu\n", name, text,
                   p.clamped ? "out of range" : "not a positive integer",
                   p.value);
    }
  }
  return p.value;
}

std::size_t threadsFromEnvironment() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t fallback = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  static bool warned = false;
  return envCountOr("RRSN_THREADS", fallback, 1, detail::kMaxThreads, &warned);
}

/// One parallel region in flight.  Chunks are claimed from an atomic
/// counter; the region is finished when every claimed chunk has run.
struct Job {
  std::function<void(std::size_t, std::size_t)> body;
  std::size_t chunks = 0;
  std::uint64_t seq = 0;
  const CancellationToken* cancel = nullptr;
  std::atomic<std::size_t> nextChunk{0};
  std::atomic<std::size_t> doneChunks{0};
  std::mutex errorMutex;
  std::exception_ptr error;
};

/// The process-wide pool.  The calling thread always participates as
/// lane 0; the pool owns threadCount()-1 helper threads (none at all
/// when the count is 1, so single-threaded runs never spawn anything).
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  std::size_t threads() {
    std::lock_guard<std::mutex> lock(mutex_);
    ensureConfiguredLocked();
    return target_;
  }

  void resize(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    RRSN_CHECK(job_ == nullptr, "setThreadCount inside a parallel region");
    stopWorkersLocked(lock);
    target_ = n == 0 ? threadsFromEnvironment() : n;
    configured_ = true;
  }

  void run(std::size_t chunks,
           const std::function<void(std::size_t, std::size_t)>& body,
           const CancellationToken* cancel) {
    if (chunks == 0) return;
    thread_local bool insideRegion = false;
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      ensureConfiguredLocked();
      // Nested regions (or a 1-thread pool) run inline on the caller.
      if (insideRegion || target_ <= 1 || job_ != nullptr) {
        lock.unlock();
        for (std::size_t c = 0; c < chunks; ++c) {
          if (cancel != nullptr && cancel->cancelled()) return;
          body(c, 0);
        }
        return;
      }
      ensureWorkersLocked();
      job = std::make_shared<Job>();
      job->body = body;
      job->chunks = chunks;
      job->cancel = cancel;
      job->seq = ++jobSeq_;
      job_ = job;
      workCv_.notify_all();
    }
    insideRegion = true;
    workOn(*job, /*lane=*/0);
    insideRegion = false;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      doneCv_.wait(lock, [&] {
        return job->doneChunks.load(std::memory_order_acquire) >= job->chunks;
      });
      if (job_ == job) job_ = nullptr;
    }
    if (job->error) std::rethrow_exception(job->error);
  }

 private:
  Pool() = default;
  ~Pool() {
    std::unique_lock<std::mutex> lock(mutex_);
    stopWorkersLocked(lock);
  }

  void ensureConfiguredLocked() {
    if (!configured_) {
      target_ = threadsFromEnvironment();
      configured_ = true;
    }
  }

  void ensureWorkersLocked() {
    while (workers_.size() + 1 < target_) {
      const std::size_t lane = workers_.size() + 1;
      workers_.emplace_back([this, lane] { workerLoop(lane); });
    }
  }

  void stopWorkersLocked(std::unique_lock<std::mutex>& lock) {
    if (workers_.empty()) return;
    stop_ = true;
    workCv_.notify_all();
    std::vector<std::thread> workers = std::move(workers_);
    workers_.clear();
    lock.unlock();
    for (std::thread& t : workers) t.join();
    lock.lock();
    stop_ = false;
  }

  void workerLoop(std::size_t lane) {
    std::uint64_t lastSeq = 0;
    while (true) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        workCv_.wait(lock, [&] {
          return stop_ || (job_ != nullptr && job_->seq != lastSeq);
        });
        if (stop_) return;
        job = job_;
        lastSeq = job->seq;
      }
      workOn(*job, lane);
    }
  }

  void workOn(Job& job, std::size_t lane) {
    while (true) {
      const std::size_t c =
          job.nextChunk.fetch_add(1, std::memory_order_relaxed);
      if (c >= job.chunks) return;
      try {
        // A cancelled job still drains its chunk counter (the waiter in
        // run() blocks on doneChunks == chunks) — the bodies are just no
        // longer invoked.
        if (job.cancel == nullptr || !job.cancel->cancelled()) job.body(c, lane);
      } catch (...) {
        std::lock_guard<std::mutex> lock(job.errorMutex);
        if (!job.error) job.error = std::current_exception();
      }
      if (job.doneChunks.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job.chunks) {
        // Take the pool mutex before notifying so the waiter cannot miss
        // the wake-up between its predicate check and the wait.
        std::lock_guard<std::mutex> lock(mutex_);
        doneCv_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable workCv_;
  std::condition_variable doneCv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;
  std::uint64_t jobSeq_ = 0;
  std::size_t target_ = 1;
  bool configured_ = false;
  bool stop_ = false;
};

}  // namespace

std::size_t threadCount() { return Pool::instance().threads(); }

void setThreadCount(std::size_t n) { Pool::instance().resize(n); }

std::size_t defaultGrain() {
  static const std::size_t grain = [] {
    static bool warned = false;
    return envCountOr("RRSN_GRAIN", 16, 1, detail::kMaxGrain, &warned);
  }();
  return grain;
}

namespace detail {

EnvParse parseEnvCount(const char* text, std::size_t fallback, std::size_t lo,
                       std::size_t hi) {
  EnvParse out;
  out.value = fallback;
  if (text == nullptr || *text == '\0') {
    out.usedFallback = true;
    return out;
  }
  if (std::isspace(static_cast<unsigned char>(*text)) != 0) {
    // strtoll would silently skip leading whitespace; the contract is a
    // bare decimal integer, nothing else.
    out.usedFallback = true;
    return out;
  }
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(text, &end, 10);
  if (end == text || *end != '\0') {
    // Garbage or trailing characters ("abc", "4x", "1.5"): fall back.
    out.usedFallback = true;
    return out;
  }
  if (errno == ERANGE) {
    // Overflowed long long: clamp to the matching bound.
    out.clamped = true;
    out.value = v > 0 ? hi : lo;
    return out;
  }
  if (v <= 0) {
    // 0 and negative counts are nonsense, not "minimum": fall back so a
    // stray RRSN_THREADS=0 keeps the hardware default.
    out.usedFallback = true;
    return out;
  }
  const auto u = static_cast<unsigned long long>(v);
  if (u < lo) {
    out.clamped = true;
    out.value = lo;
  } else if (u > hi) {
    out.clamped = true;
    out.value = hi;
  } else {
    out.value = static_cast<std::size_t>(u);
  }
  return out;
}

void runChunks(std::size_t chunks,
               const std::function<void(std::size_t, std::size_t)>& body,
               const CancellationToken* cancel) {
  Pool::instance().run(chunks, body, cancel);
}

std::size_t chunkGrid(std::size_t n, std::size_t grain) {
  // A function of n and the grain only (determinism: reduce partials
  // must not depend on the pool size).  Inputs below twice the grain
  // stay serial — the grain is the work threshold under which per-task
  // dispatch overhead beats any parallel win; large inputs get enough
  // chunks for load balancing on any realistic machine.
  constexpr std::size_t kMaxChunks = 256;  // caps scheduling overhead
  if (grain == 0) grain = defaultGrain();
  if (n < 2 * grain) return 1;
  return std::min(kMaxChunks, n / grain);
}

}  // namespace detail

}  // namespace rrsn

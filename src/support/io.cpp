#include "support/io.hpp"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace rrsn::io {

namespace {

std::string errnoText(const char* what, int err) {
  std::string msg = what;
  msg += ": ";
  msg += std::strerror(err);
  return msg;
}

}  // namespace

void ignoreSigpipe() {
#ifdef SIGPIPE
  struct sigaction sa {};
  sa.sa_handler = SIG_IGN;
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGPIPE, &sa, nullptr);
#endif
}

Status writeAll(int fd, const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t left = n;
  while (left > 0) {
    const ssize_t wrote = ::write(fd, p, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::unavailable(errnoText("write: consumer gone", errno));
      }
      return Status::dataLoss(errnoText("write failed", errno));
    }
    if (wrote == 0) return Status::dataLoss("write wrote 0 bytes");
    p += static_cast<std::size_t>(wrote);
    left -= static_cast<std::size_t>(wrote);
  }
  return Status{};
}

Status readExact(int fd, void* data, std::size_t n, bool& eof) {
  eof = false;
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, p + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::unavailable(errnoText("read failed", errno));
    }
    if (r == 0) {
      if (got == 0) {
        eof = true;
        return Status{};
      }
      return Status::dataLoss("unexpected end of stream mid-record (" +
                              std::to_string(got) + " of " +
                              std::to_string(n) + " bytes)");
    }
    got += static_cast<std::size_t>(r);
  }
  return Status{};
}

Status atomicWriteFile(const std::string& path, std::string_view bytes) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::unavailable(errnoText(("open " + tmp).c_str(), errno));
  }
  Status st = writeAll(fd, bytes.data(), bytes.size());
  if (st.ok() && ::fsync(fd) != 0) {
    st = Status::dataLoss(errnoText("fsync failed", errno));
  }
  // close() can surface deferred write errors (NFS, full disk); a file
  // is only durable once both fsync and close succeeded.
  if (::close(fd) != 0 && st.ok()) {
    st = Status::dataLoss(errnoText("close failed", errno));
  }
  if (st.ok() && std::rename(tmp.c_str(), path.c_str()) != 0) {
    st = Status::unavailable(
        errnoText(("rename to " + path).c_str(), errno));
  }
  if (!st.ok()) ::unlink(tmp.c_str());
  return st;
}

Status MappedFile::map(const std::string& path, MappedFile& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::unavailable(errnoText(("open " + path).c_str(), errno));
  }
  struct stat sb {};
  if (::fstat(fd, &sb) != 0) {
    const Status st =
        Status::unavailable(errnoText(("fstat " + path).c_str(), errno));
    ::close(fd);
    return st;
  }
  if (sb.st_size <= 0) {
    ::close(fd);
    return Status::dataLoss("mmap " + path + ": file is empty");
  }
  const auto size = static_cast<std::size_t>(sb.st_size);
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (addr == MAP_FAILED) {
    return Status::dataLoss(errnoText(("mmap " + path).c_str(), errno));
  }
  out.reset();
  out.data_ = static_cast<const std::uint8_t*>(addr);
  out.size_ = size;
  return Status{};
}

void MappedFile::reset() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(data_), size_);
    data_ = nullptr;
    size_ = 0;
  }
}

}  // namespace rrsn::io

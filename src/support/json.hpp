// Minimal JSON document model (parse + serialize).
//
// The campaign engine persists resumable checkpoints and machine-readable
// reports as JSON; this module is the self-contained reader/writer those
// files go through (no third-party dependency).  It supports the full
// JSON value grammar except that numbers are stored as either int64 or
// double; \uXXXX escapes decode to UTF-8, with UTF-16 surrogate pairs
// recombined into one code point (lone surrogates are a parse error).
// Parse errors throw ParseError with the byte offset.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace rrsn::json {

class Value;

enum class Kind : std::uint8_t { Null, Bool, Int, Double, String, Array, Object };

using Array = std::vector<Value>;
/// std::map keeps keys sorted, so serialization is canonical: two
/// documents with equal content serialize to equal bytes (the campaign
/// determinism check diffs serialized reports).
using Object = std::map<std::string, Value>;

/// One JSON value; a tagged union over the seven kinds above.
class Value {
 public:
  Value() = default;
  Value(std::nullptr_t) {}
  Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  Value(std::int64_t v) : kind_(Kind::Int), int_(v) {}
  Value(std::uint64_t v) : kind_(Kind::Int), int_(static_cast<std::int64_t>(v)) {}
  Value(int v) : kind_(Kind::Int), int_(v) {}
  Value(double v) : kind_(Kind::Double), double_(v) {}
  Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
  Value(const char* s) : kind_(Kind::String), string_(s) {}
  Value(Array elements) : kind_(Kind::Array), array_(std::move(elements)) {}
  Value(Object members) : kind_(Kind::Object), object_(std::move(members)) {}

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }

  /// Typed accessors; throw Error if the kind does not match.
  bool asBool() const;
  std::int64_t asInt() const;
  std::uint64_t asUnsigned() const;
  double asDouble() const;  ///< accepts Int too
  const std::string& asString() const;
  const Array& asArray() const;
  Array& asArray();
  const Object& asObject() const;
  Object& asObject();

  /// Object member lookup; throws Error if absent or not an object.
  const Value& at(const std::string& key) const;
  /// Object member lookup with a fallback for absent keys.
  const Value& get(const std::string& key, const Value& fallback) const;
  bool contains(const std::string& key) const;

  bool operator==(const Value& other) const;

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

/// Parses one JSON document (trailing whitespace allowed, nothing else).
Value parse(const std::string& text);

/// Serializes compactly (no whitespace); `indent` > 0 pretty-prints.
std::string serialize(const Value& v, int indent = 0);

}  // namespace rrsn::json

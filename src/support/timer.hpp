// Wall-clock stopwatch used by the benchmark harnesses to report the
// paper's "Execution time [m:s]" column.
#pragma once

#include <chrono>

namespace rrsn {

/// Monotonic stopwatch; starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last restart.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rrsn

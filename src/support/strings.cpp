#include "support/strings.hpp"

#include <cctype>
#include <charconv>

#include "support/error.hpp"

namespace rrsn {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> splitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::uint64_t parseUnsigned(std::string_view s, std::string_view context) {
  s = trim(s);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    throw ParseError("expected unsigned integer for " + std::string(context) +
                     ", got '" + std::string(s) + "'");
  }
  return value;
}

std::uint64_t parseUintBounded(std::string_view s, std::string_view context,
                               std::uint64_t lo, std::uint64_t hi) {
  const std::string_view trimmed = trim(s);
  const std::string shown(trimmed.empty() ? s : trimmed);
  bool digitsOnly = !trimmed.empty();
  for (const char c : trimmed) {
    if (c < '0' || c > '9') {
      digitsOnly = false;
      break;
    }
  }
  std::uint64_t value = 0;
  if (digitsOnly) {
    const auto [ptr, ec] =
        std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
    if (ec != std::errc{} || ptr != trimmed.data() + trimmed.size()) {
      digitsOnly = false;  // overflowed uint64
    }
  }
  if (!digitsOnly) {
    throw UsageError("invalid value for " + std::string(context) + ": '" +
                     shown + "' is not an unsigned integer");
  }
  if (value < lo || value > hi) {
    throw UsageError("value out of range for " + std::string(context) + ": " +
                     std::to_string(value) + " not in [" + std::to_string(lo) +
                     ", " + std::to_string(hi) + "]");
  }
  return value;
}

double parseDouble(std::string_view s, std::string_view context) {
  s = trim(s);
  double value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    throw ParseError("expected number for " + std::string(context) +
                     ", got '" + std::string(s) + "'");
  }
  return value;
}

}  // namespace rrsn

#include "support/strings.hpp"

#include <cctype>
#include <charconv>

#include "support/error.hpp"

namespace rrsn {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> splitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::uint64_t parseUnsigned(std::string_view s, std::string_view context) {
  s = trim(s);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    throw ParseError("expected unsigned integer for " + std::string(context) +
                     ", got '" + std::string(s) + "'");
  }
  return value;
}

double parseDouble(std::string_view s, std::string_view context) {
  s = trim(s);
  double value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size() || s.empty()) {
    throw ParseError("expected number for " + std::string(context) +
                     ", got '" + std::string(s) + "'");
  }
  return value;
}

}  // namespace rrsn

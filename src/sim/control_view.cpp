#include "sim/control_view.hpp"

#include <utility>

#include "support/error.hpp"

namespace rrsn::sim {

namespace {

/// Trailing-word mask that keeps bits [0, arity % 64) — all-ones when
/// the arity fills the word.
std::uint64_t tailMask(std::uint32_t arity, std::size_t word) {
  const std::size_t hi = (static_cast<std::size_t>(arity) + 63) / 64 - 1;
  if (word < hi || arity % 64 == 0) return ~0ULL;
  return (1ULL << (arity % 64)) - 1;
}

}  // namespace

ControlView ControlView::project(
    std::shared_ptr<const rsn::FlatNetwork> flatNet) {
  RRSN_CHECK(flatNet != nullptr, "cannot project a null flat view");
  ControlView cv;
  const rsn::FlatNetwork& f = *flatNet;
  cv.vertexCount = f.vertexCount();
  cv.scanIn = f.scanIn();
  cv.scanOut = f.scanOut();
  cv.fwdOffsets = f.fwdOffsets();
  cv.bwdOffsets = f.bwdOffsets();
  cv.fwdEdges = f.fwdEdges();
  cv.bwdEdges = f.bwdEdges();
  cv.branchPool = f.branchPool();
  cv.segmentVertex = f.segmentVertex();
  cv.instrumentVertex = f.instrumentVertex();
  cv.instrumentSegment = f.instrumentSegment();
  cv.muxControl = f.muxControl();
  cv.muxCtrlVertex = f.muxCtrlVertex();
  cv.muxArity = f.muxArity();
  cv.ctrlMuxes = f.ctrlMuxes();
  cv.segFlags = f.segFlags();
  cv.ctrlRegVertex = f.ctrlRegVertex();
  cv.demandDepth = f.demandDepth();
  cv.segDepth = f.segDepth();
  cv.selOffset = f.selOffset();
  cv.selWordCount = f.selWordCount();
  cv.representableWords = f.representableWords();
  cv.guardOffsets = f.guardOffsets();
  cv.guardPool = f.guardPool();
  cv.flat = std::move(flatNet);
  return cv;
}

ControlView ControlView::build(const rsn::Network& net) {
  return project(rsn::FlatNetwork::lower(net));
}

void ControlView::baseSelectable(const fault::Fault* f,
                                 std::uint64_t* sel) const {
  for (std::size_t m = 0; m < muxArity.size(); ++m) {
    const std::uint32_t arity = muxArity[m];
    const std::size_t words = (static_cast<std::size_t>(arity) + 63) / 64;
    for (std::size_t w = 0; w < words; ++w)
      sel[selOffset[m] + w] = tailMask(arity, w);
  }
  if (f != nullptr && f->kind == fault::FaultKind::MuxStuck) {
    const std::uint32_t m = f->prim;
    const std::size_t words = (static_cast<std::size_t>(muxArity[m]) + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) sel[selOffset[m] + w] = 0;
    sel[selOffset[m] + (f->stuckBranch >> 6)] = 1ULL << (f->stuckBranch & 63);
  }
}

void ControlView::limitDemandDepth(std::uint32_t maxDepth,
                                   std::uint64_t* sel) const {
  for (const std::uint32_t m : ctrlMuxes) {
    if (demandDepth[m] <= maxDepth) continue;
    const std::size_t words = (static_cast<std::size_t>(muxArity[m]) + 63) / 64;
    for (std::size_t w = 0; w < words; ++w)
      sel[selOffset[m] + w] &= w == 0 ? 1ULL : 0ULL;
  }
}

void ControlView::zeroConfigSelectable(const fault::Fault* f,
                                       std::uint64_t* sel) const {
  baseSelectable(f, sel);
  for (const std::uint32_t m : ctrlMuxes) {
    if (f != nullptr && f->kind == fault::FaultKind::MuxStuck && f->prim == m)
      continue;
    const std::size_t words = (static_cast<std::size_t>(muxArity[m]) + 63) / 64;
    for (std::size_t w = 0; w < words; ++w)
      sel[selOffset[m] + w] &= w == 0 ? 1ULL : 0ULL;
  }
}

}  // namespace rrsn::sim

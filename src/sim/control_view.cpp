#include "sim/control_view.hpp"

#include <algorithm>
#include <utility>

namespace rrsn::sim {

namespace {

/// Trailing-word mask that keeps bits [0, arity % 64) — all-ones when
/// the arity fills the word.
std::uint64_t tailMask(std::uint32_t arity, std::size_t word) {
  const std::size_t hi = (static_cast<std::size_t>(arity) + 63) / 64 - 1;
  if (word < hi || arity % 64 == 0) return ~0ULL;
  return (1ULL << (arity % 64)) - 1;
}

}  // namespace

ControlView ControlView::build(const rsn::Network& net,
                               const rsn::GraphView& gv) {
  ControlView cv;
  const graph::Digraph& g = gv.graph;
  const std::size_t vertices = g.vertexCount();
  const std::size_t muxCount = net.muxes().size();
  const std::size_t segCount = net.segments().size();

  cv.vertexCount = vertices;
  cv.scanIn = gv.scanIn;
  cv.scanOut = gv.scanOut;
  cv.segmentVertex = gv.segmentVertex;

  cv.instrumentVertex.reserve(net.instruments().size());
  cv.instrumentSegment.reserve(net.instruments().size());
  for (const rsn::Instrument& inst : net.instruments()) {
    cv.instrumentSegment.push_back(inst.segment);
    cv.instrumentVertex.push_back(gv.segmentVertex[inst.segment]);
  }

  // ---------------------------------------------- per-mux control data
  std::vector<std::uint32_t> muxOfVertex(vertices, rsn::kNone);
  for (std::size_t m = 0; m < muxCount; ++m)
    muxOfVertex[gv.muxVertex[m]] = static_cast<std::uint32_t>(m);

  cv.muxControl.resize(muxCount, rsn::kNone);
  cv.muxCtrlVertex.resize(muxCount, graph::kNoVertex);
  cv.muxArity.resize(muxCount, 0);
  cv.selOffset.resize(muxCount, 0);
  cv.segmentControlsMux.assign(segCount, 0);
  for (std::size_t m = 0; m < muxCount; ++m) {
    const auto arity = static_cast<std::uint32_t>(gv.muxBranchExit[m].size());
    cv.muxArity[m] = arity;
    cv.selOffset[m] = static_cast<std::uint32_t>(cv.selWordCount);
    cv.selWordCount += (static_cast<std::size_t>(arity) + 63) / 64;
    const rsn::SegmentId ctrl = net.muxes()[m].controlSegment;
    cv.muxControl[m] = ctrl;
    if (ctrl == rsn::kNone) continue;
    cv.muxCtrlVertex[m] = gv.segmentVertex[ctrl];
    cv.ctrlMuxes.push_back(static_cast<std::uint32_t>(m));
    cv.segmentControlsMux[ctrl] = 1;
  }

  cv.ctrlRegVertex.assign(vertices, 0);
  for (std::size_t m = 0; m < muxCount; ++m)
    if (cv.muxControl[m] != rsn::kNone)
      cv.ctrlRegVertex[gv.segmentVertex[cv.muxControl[m]]] = 1;

  cv.representableWords.assign(cv.selWordCount, 0);
  for (std::size_t m = 0; m < muxCount; ++m) {
    const std::uint32_t arity = cv.muxArity[m];
    const std::size_t words = (static_cast<std::size_t>(arity) + 63) / 64;
    const rsn::SegmentId ctrl = cv.muxControl[m];
    if (ctrl == rsn::kNone || net.segment(ctrl).length >= 32) {
      for (std::size_t w = 0; w < words; ++w)
        cv.representableWords[cv.selOffset[m] + w] = tailMask(arity, w);
      continue;
    }
    const std::uint64_t len = net.segment(ctrl).length;
    for (std::uint32_t b = 0; b < arity; ++b) {
      if (b != 0 && b >= (std::uint64_t{1} << len)) continue;
      cv.representableWords[cv.selOffset[m] + (b >> 6)] |= 1ULL << (b & 63);
    }
  }

  // --------------------------------------------------- guarded CSR
  // Branch span of the original edge exit -> mux(m): every branch of m
  // whose exit vertex is `exit` (parallel edges share the full span).
  const auto appendSpan = [&](std::uint32_t m, graph::VertexId exit) {
    const auto begin = static_cast<std::uint32_t>(cv.branchPool.size());
    for (std::size_t b = 0; b < gv.muxBranchExit[m].size(); ++b)
      if (gv.muxBranchExit[m][b] == exit)
        cv.branchPool.push_back(static_cast<std::uint32_t>(b));
    return std::pair{begin, static_cast<std::uint32_t>(cv.branchPool.size())};
  };

  const graph::Csr fwd = graph::buildCsr(g, /*reverse=*/false);
  const graph::Csr bwd = graph::buildCsr(g, /*reverse=*/true);
  cv.fwdOffsets = fwd.offsets;
  cv.bwdOffsets = bwd.offsets;
  cv.fwdEdges.resize(fwd.targets.size());
  cv.bwdEdges.resize(bwd.targets.size());
  for (graph::VertexId v = 0; v < vertices; ++v) {
    for (std::uint32_t i = fwd.rowBegin(v); i < fwd.rowEnd(v); ++i) {
      // Original edge v -> t: guarded iff t is a mux vertex.
      const graph::VertexId t = fwd.targets[i];
      Edge e{t, muxOfVertex[t], 0, 0};
      if (e.mux != rsn::kNone) std::tie(e.branchBegin, e.branchEnd) =
          appendSpan(e.mux, v);
      cv.fwdEdges[i] = e;
    }
    for (std::uint32_t i = bwd.rowBegin(v); i < bwd.rowEnd(v); ++i) {
      // Original edge p -> v: guarded iff v is a mux vertex.
      const graph::VertexId p = bwd.targets[i];
      Edge e{p, muxOfVertex[v], 0, 0};
      if (e.mux != rsn::kNone) std::tie(e.branchBegin, e.branchEnd) =
          appendSpan(e.mux, p);
      cv.bwdEdges[i] = e;
    }
  }

  // ---------------------------------------------------- guard sets
  using GuardSet = std::vector<std::pair<std::uint32_t, std::uint32_t>>;
  std::vector<GuardSet> guardsOf(segCount);
  GuardSet cur;
  const auto walk = [&](auto&& self, rsn::NodeId id) -> void {
    const auto& n = net.structure().node(id);
    switch (n.kind) {
      case rsn::NodeKind::Segment:
        guardsOf[n.prim] = cur;
        return;
      case rsn::NodeKind::Wire:
        return;
      case rsn::NodeKind::Serial:
        for (const rsn::NodeId c : n.children) self(self, c);
        return;
      case rsn::NodeKind::MuxJoin: {
        const bool segCtrl = net.mux(n.prim).controlSegment != rsn::kNone;
        for (std::size_t b = 0; b < n.children.size(); ++b) {
          const bool guarded = segCtrl && b != 0;
          if (guarded) cur.emplace_back(n.prim, static_cast<std::uint32_t>(b));
          self(self, n.children[b]);
          if (guarded) cur.pop_back();
        }
        return;
      }
    }
  };
  walk(walk, net.structure().root());

  // ------------------------------------------- configuration depths
  // Mutual recursion: a demand on mux m lands once its address register
  // is on the path (the register's own guards are set), so
  // demandDepth[m] = 1 + segDepth[control(m)], and segDepth[s] = max
  // demandDepth over guards(s).  Control registers are declared before
  // their mux, so real networks terminate; a (hypothetical) cyclic
  // dependency saturates instead of recursing forever.
  cv.demandDepth.assign(muxCount, 0);
  cv.segDepth.assign(segCount, 0);
  std::vector<char> segState(segCount, 0);  // 0 new, 1 visiting, 2 done
  const auto segDepthOf = [&](auto&& self, rsn::SegmentId s) -> std::uint32_t {
    if (segState[s] == 2) return cv.segDepth[s];
    if (segState[s] == 1) return kUnrealizableDepth;
    segState[s] = 1;
    std::uint32_t depth = 0;
    for (const auto& guard : guardsOf[s]) {
      depth = std::max(
          depth, std::min(kUnrealizableDepth,
                          1 + self(self, cv.muxControl[guard.first])));
    }
    segState[s] = 2;
    cv.segDepth[s] = depth;
    return depth;
  };
  for (rsn::SegmentId s = 0; s < segCount; ++s) segDepthOf(segDepthOf, s);
  for (const std::uint32_t m : cv.ctrlMuxes)
    cv.demandDepth[m] = std::min(
        kUnrealizableDepth,
        1 + segDepthOf(segDepthOf, cv.muxControl[m]));

  cv.guardOffsets.resize(segCount + 1, 0);
  for (std::size_t s = 0; s < segCount; ++s) {
    std::sort(guardsOf[s].begin(), guardsOf[s].end());
    cv.guardOffsets[s] = static_cast<std::uint32_t>(cv.guardPool.size());
    cv.guardPool.insert(cv.guardPool.end(), guardsOf[s].begin(),
                        guardsOf[s].end());
  }
  cv.guardOffsets[segCount] = static_cast<std::uint32_t>(cv.guardPool.size());
  return cv;
}

void ControlView::baseSelectable(const fault::Fault* f,
                                 std::uint64_t* sel) const {
  for (std::size_t m = 0; m < muxArity.size(); ++m) {
    const std::uint32_t arity = muxArity[m];
    const std::size_t words = (static_cast<std::size_t>(arity) + 63) / 64;
    for (std::size_t w = 0; w < words; ++w)
      sel[selOffset[m] + w] = tailMask(arity, w);
  }
  if (f != nullptr && f->kind == fault::FaultKind::MuxStuck) {
    const std::uint32_t m = f->prim;
    const std::size_t words = (static_cast<std::size_t>(muxArity[m]) + 63) / 64;
    for (std::size_t w = 0; w < words; ++w) sel[selOffset[m] + w] = 0;
    sel[selOffset[m] + (f->stuckBranch >> 6)] = 1ULL << (f->stuckBranch & 63);
  }
}

void ControlView::limitDemandDepth(std::uint32_t maxDepth,
                                   std::uint64_t* sel) const {
  for (const std::uint32_t m : ctrlMuxes) {
    if (demandDepth[m] <= maxDepth) continue;
    const std::size_t words = (static_cast<std::size_t>(muxArity[m]) + 63) / 64;
    for (std::size_t w = 0; w < words; ++w)
      sel[selOffset[m] + w] &= w == 0 ? 1ULL : 0ULL;
  }
}

void ControlView::zeroConfigSelectable(const fault::Fault* f,
                                       std::uint64_t* sel) const {
  baseSelectable(f, sel);
  for (const std::uint32_t m : ctrlMuxes) {
    if (f != nullptr && f->kind == fault::FaultKind::MuxStuck && f->prim == m)
      continue;
    const std::size_t words = (static_cast<std::size_t>(muxArity[m]) + 63) / 64;
    for (std::size_t w = 0; w < words; ++w)
      sel[selOffset[m] + w] &= w == 0 ? 1ULL : 0ULL;
  }
}

}  // namespace rrsn::sim

// Fault-conditioned control view of an RSN: the network lowered once
// into flat CSR adjacency (forward and transposed) with per-edge mux
// guards, plus everything a structural accessibility sweep needs to
// evaluate faults without a simulator — per-mux control registers,
// address-representability masks, and per-segment guard sets.
//
// The view is immutable after build() and shared read-only across
// worker threads; per-fault state (the selectable-branch words) lives in
// caller-owned scratch buffers laid out by selOffset/selWordCount.
#pragma once

#include <cstdint>
#include <vector>

#include "fault/fault.hpp"
#include "graph/digraph.hpp"
#include "rsn/graph_view.hpp"
#include "rsn/network.hpp"

namespace rrsn::sim {

/// Flat read-only traversal model.  Edges keep their RSN semantics: an
/// edge entering a mux vertex is traversable only while at least one of
/// the branches exiting at its source is selectable.
struct ControlView {
  /// One adjacency entry.  `mux` is the guarding mux (kNone for a plain
  /// edge); the guard passes iff any branch in branchPool[branchBegin,
  /// branchEnd) is selectable.  The annotation describes the *original*
  /// edge, so a row entry means the same thing whether it was reached
  /// from the forward or the transposed side.
  struct Edge {
    graph::VertexId other = graph::kNoVertex;
    std::uint32_t mux = rsn::kNone;
    std::uint32_t branchBegin = 0;
    std::uint32_t branchEnd = 0;
  };

  std::size_t vertexCount = 0;
  graph::VertexId scanIn = graph::kNoVertex;
  graph::VertexId scanOut = graph::kNoVertex;

  /// fwd row v = out-edges of v; bwd row v = in-edges of v.
  std::vector<std::uint32_t> fwdOffsets, bwdOffsets;
  std::vector<Edge> fwdEdges, bwdEdges;
  std::vector<std::uint32_t> branchPool;

  std::vector<graph::VertexId> segmentVertex;     ///< per SegmentId
  std::vector<graph::VertexId> instrumentVertex;  ///< per InstrumentId
  std::vector<rsn::SegmentId> instrumentSegment;  ///< per InstrumentId

  // ------------------------------------------------ per-mux control
  std::vector<rsn::SegmentId> muxControl;      ///< kNone = TAP-steered
  std::vector<graph::VertexId> muxCtrlVertex;  ///< vertex of muxControl
  std::vector<std::uint32_t> muxArity;
  /// Muxes whose address comes from a control segment (fixpoint targets).
  std::vector<std::uint32_t> ctrlMuxes;
  /// True per segment iff some mux's address register is that segment.
  std::vector<char> segmentControlsMux;
  /// True per vertex iff it holds some mux's address register — a scan
  /// cell whose poisoning collapses every later path walk that consults
  /// the mux.
  std::vector<char> ctrlRegVertex;

  /// Configuration-round schedule depths.  A non-reset demand on mux m
  /// is written in CSU round demandDepth[m] - 1 (its address register
  /// joins the active path once the registers it depends on are set);
  /// segDepth[s] is the round at which segment s first appears on the
  /// path — the max demandDepth over its guards, 0 for an always-on
  /// segment.  TAP-steered muxes have demandDepth 0 (set directly, no
  /// CSU round).  Cyclic control dependencies saturate at kUnrealizable.
  static constexpr std::uint32_t kUnrealizableDepth = 0x40000000u;
  std::vector<std::uint32_t> demandDepth;  ///< per mux
  std::vector<std::uint32_t> segDepth;     ///< per segment

  /// Word layout of the per-fault selectable sets: mux m owns words
  /// [selOffset[m], selOffset[m] + (muxArity[m] + 63) / 64), bit b =
  /// branch b selectable.
  std::vector<std::uint32_t> selOffset;
  std::size_t selWordCount = 0;
  /// Per-mux mask of branches whose address fits the control register
  /// (b == 0 or len >= 32 or b < 2^len), in the selectable layout.
  /// All-ones for TAP-steered muxes (never shrunk by the fixpoint).
  std::vector<std::uint64_t> representableWords;

  // ------------------------------------- per-segment guard sets
  /// Guard set of a segment: the sorted (mux, branch != 0) selections of
  /// its segment-controlled MuxJoin ancestors — the non-reset
  /// configuration that puts the segment on the active path.  Flattened:
  /// segment s owns guardPool[guardOffsets[s], guardOffsets[s + 1]).
  std::vector<std::uint32_t> guardOffsets;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> guardPool;

  /// Lowers `net` / `gv` (which must outlive nothing — everything is
  /// copied into the view).
  static ControlView build(const rsn::Network& net, const rsn::GraphView& gv);

  /// Fills `sel` (selWordCount words) with the base selectable sets
  /// under `f` (nullptr = fault-free): every branch selectable, except
  /// a stuck mux which keeps only its stuck branch.
  void baseSelectable(const fault::Fault* f, std::uint64_t* sel) const;

  /// Base sets with every segment-controlled, non-stuck mux pinned to
  /// its reset branch (the zero-config access mode).
  void zeroConfigSelectable(const fault::Fault* f, std::uint64_t* sel) const;

  /// Clears the non-reset branches of every segment-controlled mux
  /// whose demand would be written in a CSU round >= maxDepth — i.e.
  /// keeps only the demands that are fully configured before round
  /// maxDepth runs.  Shrink-only, so it composes with the fixpoint.
  void limitDemandDepth(std::uint32_t maxDepth, std::uint64_t* sel) const;

  bool selectableBit(const std::uint64_t* sel, std::uint32_t mux,
                     std::uint32_t branch) const {
    return (sel[selOffset[mux] + (branch >> 6)] >> (branch & 63)) & 1;
  }

  /// Guard admissibility of one edge under the given selectable sets.
  bool edgeOpen(const Edge& e, const std::uint64_t* sel) const {
    if (e.mux == rsn::kNone) return true;
    for (std::uint32_t i = e.branchBegin; i < e.branchEnd; ++i)
      if (selectableBit(sel, e.mux, branchPool[i])) return true;
    return false;
  }

  /// True iff the two segments need the same non-reset selections.
  bool sameGuards(rsn::SegmentId a, rsn::SegmentId b) const {
    const std::uint32_t beginA = guardOffsets[a], endA = guardOffsets[a + 1];
    const std::uint32_t beginB = guardOffsets[b], endB = guardOffsets[b + 1];
    if (endA - beginA != endB - beginB) return false;
    for (std::uint32_t i = 0; i < endA - beginA; ++i)
      if (guardPool[beginA + i] != guardPool[beginB + i]) return false;
    return true;
  }
};

}  // namespace rrsn::sim

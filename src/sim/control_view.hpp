// Fault-conditioned control view of an RSN: a thin projection of the
// arena-backed rsn::FlatNetwork (which owns every array — CSR adjacency
// with per-edge mux guards, per-mux control tuples, representability
// masks, per-segment guard sets) plus the fault-selectable-set operators
// the accessibility sweeps evaluate on top of it.
//
// The projection holds a shared_ptr to the flat view, so a ControlView
// keeps the arena alive and is itself cheap to copy.  It is immutable
// after project() and shared read-only across worker threads; per-fault
// state (the selectable-branch words) lives in caller-owned scratch
// buffers laid out by selOffset/selWordCount.
#pragma once

#include <cstdint>
#include <memory>

#include "fault/fault.hpp"
#include "graph/digraph.hpp"
#include "rsn/flat.hpp"
#include "rsn/network.hpp"

namespace rrsn::sim {

/// Flat read-only traversal model.  Edges keep their RSN semantics: an
/// edge entering a mux vertex is traversable only while at least one of
/// the branches exiting at its source is selectable.
struct ControlView {
  template <typename T>
  using Span = rsn::FlatNetwork::Span<T>;
  using Edge = rsn::FlatNetwork::Edge;
  using GuardRef = rsn::FlatNetwork::GuardRef;

  /// The arena everything below points into (never null after
  /// project()).
  std::shared_ptr<const rsn::FlatNetwork> flat;

  std::size_t vertexCount = 0;
  graph::VertexId scanIn = graph::kNoVertex;
  graph::VertexId scanOut = graph::kNoVertex;

  /// fwd row v = out-edges of v; bwd row v = in-edges of v.
  Span<std::uint32_t> fwdOffsets, bwdOffsets;
  Span<Edge> fwdEdges, bwdEdges;
  Span<std::uint32_t> branchPool;

  Span<graph::VertexId> segmentVertex;     ///< per SegmentId
  Span<graph::VertexId> instrumentVertex;  ///< per InstrumentId
  Span<rsn::SegmentId> instrumentSegment;  ///< per InstrumentId

  // ------------------------------------------------ per-mux control
  Span<rsn::SegmentId> muxControl;      ///< kNone = TAP-steered
  Span<graph::VertexId> muxCtrlVertex;  ///< vertex of muxControl
  Span<std::uint32_t> muxArity;
  /// Muxes whose address comes from a control segment (fixpoint targets).
  Span<std::uint32_t> ctrlMuxes;
  /// Per-segment flag bits (rsn::FlatNetwork::kSegFlag*).
  Span<std::uint8_t> segFlags;
  /// Nonzero per vertex iff it holds some mux's address register — a
  /// scan cell whose poisoning collapses every later path walk that
  /// consults the mux.
  Span<std::uint8_t> ctrlRegVertex;

  /// Configuration-round schedule depths.  A non-reset demand on mux m
  /// is written in CSU round demandDepth[m] - 1 (its address register
  /// joins the active path once the registers it depends on are set);
  /// segDepth[s] is the round at which segment s first appears on the
  /// path — the max demandDepth over its guards, 0 for an always-on
  /// segment.  TAP-steered muxes have demandDepth 0 (set directly, no
  /// CSU round).  Cyclic control dependencies saturate at kUnrealizable.
  static constexpr std::uint32_t kUnrealizableDepth =
      rsn::FlatNetwork::kUnrealizableDepth;
  Span<std::uint32_t> demandDepth;  ///< per mux
  Span<std::uint32_t> segDepth;     ///< per segment

  /// Word layout of the per-fault selectable sets: mux m owns words
  /// [selOffset[m], selOffset[m] + (muxArity[m] + 63) / 64), bit b =
  /// branch b selectable.
  Span<std::uint32_t> selOffset;
  std::size_t selWordCount = 0;
  /// Per-mux mask of branches whose address fits the control register
  /// (b == 0 or len >= 32 or b < 2^len), in the selectable layout.
  /// All-ones for TAP-steered muxes (never shrunk by the fixpoint).
  Span<std::uint64_t> representableWords;

  // ------------------------------------- per-segment guard sets
  /// Guard set of a segment: the sorted (mux, branch != 0) selections of
  /// its segment-controlled MuxJoin ancestors — the non-reset
  /// configuration that puts the segment on the active path.  Flattened:
  /// segment s owns guardPool[guardOffsets[s], guardOffsets[s + 1]).
  Span<std::uint32_t> guardOffsets;
  Span<GuardRef> guardPool;

  /// Projects the spans of an already-lowered flat view (shares the
  /// arena; no copies).
  static ControlView project(std::shared_ptr<const rsn::FlatNetwork> flatNet);

  /// Convenience: lower `net` and project — for one-shot consumers.
  /// Batch consumers should lower once and project per use site.
  static ControlView build(const rsn::Network& net);

  /// True iff some mux's address register is segment s.
  bool segmentControlsMux(rsn::SegmentId s) const {
    return (segFlags[s] & rsn::FlatNetwork::kSegFlagControlsMux) != 0;
  }

  /// Fills `sel` (selWordCount words) with the base selectable sets
  /// under `f` (nullptr = fault-free): every branch selectable, except
  /// a stuck mux which keeps only its stuck branch.
  void baseSelectable(const fault::Fault* f, std::uint64_t* sel) const;

  /// Base sets with every segment-controlled, non-stuck mux pinned to
  /// its reset branch (the zero-config access mode).
  void zeroConfigSelectable(const fault::Fault* f, std::uint64_t* sel) const;

  /// Clears the non-reset branches of every segment-controlled mux
  /// whose demand would be written in a CSU round >= maxDepth — i.e.
  /// keeps only the demands that are fully configured before round
  /// maxDepth runs.  Shrink-only, so it composes with the fixpoint.
  void limitDemandDepth(std::uint32_t maxDepth, std::uint64_t* sel) const;

  bool selectableBit(const std::uint64_t* sel, std::uint32_t mux,
                     std::uint32_t branch) const {
    return (sel[selOffset[mux] + (branch >> 6)] >> (branch & 63)) & 1;
  }

  /// Guard admissibility of one edge under the given selectable sets.
  bool edgeOpen(const Edge& e, const std::uint64_t* sel) const {
    if (e.mux == rsn::kNone) return true;
    for (std::uint32_t i = e.branchBegin; i < e.branchEnd; ++i)
      if (selectableBit(sel, e.mux, branchPool[i])) return true;
    return false;
  }

  /// True iff the two segments need the same non-reset selections.
  bool sameGuards(rsn::SegmentId a, rsn::SegmentId b) const {
    const std::uint32_t beginA = guardOffsets[a], endA = guardOffsets[a + 1];
    const std::uint32_t beginB = guardOffsets[b], endB = guardOffsets[b + 1];
    if (endA - beginA != endB - beginB) return false;
    for (std::uint32_t i = 0; i < endA - beginA; ++i)
      if (!(guardPool[beginA + i] == guardPool[beginB + i])) return false;
    return true;
  }
};

}  // namespace rrsn::sim

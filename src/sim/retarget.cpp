#include "sim/retarget.hpp"

#include <algorithm>
#include <queue>

#include "fault/effects.hpp"
#include "obs/obs.hpp"
#include "rsn/graph_view.hpp"

namespace rrsn::sim {

namespace {

/// One finished instrument access, for the observability layer: total
/// accesses, how many needed a fault-aware reroute, and the CSU-round
/// distribution per access.
void recordAccess(const RetargetResult& res) {
  static const obs::MetricId kAccesses = obs::counter("sim.accesses");
  static const obs::MetricId kReroutes = obs::counter("sim.reroutes");
  static const obs::MetricId kRounds = obs::histogram("sim.rounds_per_access");
  obs::count(kAccesses);
  if (res.rerouted) obs::count(kReroutes);
  obs::sample(kRounds, res.rounds);
}

/// Edge admissibility under a set of simultaneous faults: stuck-mux
/// edges are always enforced; broken segments' vertices are impassable
/// unless `allowBreak`.  Shared by the BFS below and the bounded
/// enumeration.
struct FaultEdges {
  std::vector<graph::VertexId> broken;
  /// (mux vertex, only admissible predecessor) per stuck fault.
  std::vector<std::pair<graph::VertexId, graph::VertexId>> stuck;

  FaultEdges(const rsn::GraphView& gv, const std::vector<fault::Fault>& faults,
             bool allowBreak) {
    for (const fault::Fault& f : faults) {
      if (f.kind == fault::FaultKind::SegmentBreak) {
        if (!allowBreak) broken.push_back(gv.segmentVertex[f.prim]);
      } else {
        stuck.emplace_back(gv.muxVertex[f.prim],
                           gv.muxBranchExit[f.prim][f.stuckBranch]);
      }
    }
  }

  bool blocksVertex(graph::VertexId v) const {
    for (graph::VertexId b : broken)
      if (v == b) return true;
    return false;
  }

  bool allows(graph::VertexId from, graph::VertexId to) const {
    if (blocksVertex(from) || blocksVertex(to)) return false;
    for (const auto& [mux, allowedExit] : stuck)
      if (to == mux && from != allowedExit) return false;
    return true;
  }
};

/// BFS with parent pointers between two vertices of the graph view.
std::optional<std::vector<graph::VertexId>> findPath(
    const rsn::GraphView& gv, const std::vector<fault::Fault>& faults,
    graph::VertexId from, graph::VertexId to, bool allowBreak) {
  const graph::Digraph& g = gv.graph;
  const FaultEdges edges(gv, faults, allowBreak);
  if (edges.blocksVertex(from) || edges.blocksVertex(to)) return std::nullopt;

  std::vector<graph::VertexId> parent(g.vertexCount(), graph::kNoVertex);
  std::vector<bool> seen(g.vertexCount(), false);
  std::queue<graph::VertexId> work;
  seen[from] = true;
  work.push(from);
  while (!work.empty() && !seen[to]) {
    const graph::VertexId v = work.front();
    work.pop();
    for (graph::VertexId s : g.successors(v)) {
      if (!edges.allows(v, s)) continue;
      if (!seen[s]) {
        seen[s] = true;
        parent[s] = v;
        work.push(s);
      }
    }
  }
  if (!seen[to]) return std::nullopt;
  std::vector<graph::VertexId> path;
  for (graph::VertexId v = to; v != graph::kNoVertex; v = parent[v])
    path.push_back(v);
  std::reverse(path.begin(), path.end());
  return path;
}

/// Bounded enumeration of distinct simple paths from `from` to `to`
/// honoring the fault — the search space of the graceful-degradation
/// reroute.  The scan graph is a DAG; vertices that cannot reach `to`
/// under the fault are pruned up front, so every DFS descent yields a
/// path and the work is O(limit * pathLength * degree).  Paths come out
/// in deterministic successor order, shortest-ish first is NOT
/// guaranteed — callers verify each candidate end to end anyway.
std::vector<std::vector<graph::VertexId>> enumeratePaths(
    const rsn::GraphView& gv, const std::vector<fault::Fault>& faults,
    graph::VertexId from, graph::VertexId to, bool allowBreak,
    std::size_t limit) {
  std::vector<std::vector<graph::VertexId>> out;
  if (limit == 0) return out;
  const graph::Digraph& g = gv.graph;
  const FaultEdges edges(gv, faults, allowBreak);
  if (edges.blocksVertex(from) || edges.blocksVertex(to)) return out;

  // Reverse reachability: canReach[v] iff an admissible path v -> to
  // exists.  Walking predecessor edges checks allows(pred, v).
  std::vector<bool> canReach(g.vertexCount(), false);
  {
    std::queue<graph::VertexId> work;
    canReach[to] = true;
    work.push(to);
    while (!work.empty()) {
      const graph::VertexId v = work.front();
      work.pop();
      for (graph::VertexId p : g.predecessors(v)) {
        if (!edges.allows(p, v) || canReach[p]) continue;
        canReach[p] = true;
        work.push(p);
      }
    }
  }
  if (!canReach[from]) return out;

  // Iterative DFS over admissible successors that can still reach `to`.
  struct Frame {
    graph::VertexId vertex;
    std::size_t nextSucc = 0;
  };
  std::vector<Frame> stack{{from, 0}};
  std::vector<graph::VertexId> prefix{from};
  while (!stack.empty() && out.size() < limit) {
    const std::size_t idx = stack.size() - 1;  // index: push_back below
    const graph::VertexId v = stack[idx].vertex;  // invalidates references
    if (v == to) {
      out.push_back(prefix);
      stack.pop_back();
      prefix.pop_back();
      continue;
    }
    const auto& succs = g.successors(v);
    bool descended = false;
    while (stack[idx].nextSucc < succs.size()) {
      const graph::VertexId s = succs[stack[idx].nextSucc++];
      if (!edges.allows(v, s) || !canReach[s]) continue;
      stack.push_back({s, 0});
      prefix.push_back(s);
      descended = true;
      break;
    }
    if (!descended) {
      stack.pop_back();
      prefix.pop_back();
    }
  }
  return out;
}

/// Derives the mux selections that make the structural walk follow a
/// concrete graph path.  Parallel wire branches exit at the same
/// fan-out vertex, so a join edge can correspond to several branches;
/// a fault-aware caller passes `faults` so that a stuck mux is asked
/// for the branch it is actually stuck at whenever that branch matches
/// the walk (any other demand could never be realized).
std::map<rsn::MuxId, std::uint32_t> selectionsFromPath(
    const rsn::GraphView& gv, const std::vector<graph::VertexId>& path,
    const std::vector<fault::Fault>& faults) {
  std::map<rsn::MuxId, std::uint32_t> sel;
  for (std::size_t k = 1; k < path.size(); ++k) {
    const graph::VertexId v = path[k];
    for (rsn::MuxId m = 0; m < gv.muxVertex.size(); ++m) {
      if (gv.muxVertex[m] != v) continue;
      const graph::VertexId pred = path[k - 1];
      const auto& exits = gv.muxBranchExit[m];
      bool stuckMatched = false;
      for (const fault::Fault& f : faults) {
        if (f.kind == fault::FaultKind::MuxStuck && f.prim == m &&
            exits[f.stuckBranch] == pred) {
          sel[m] = f.stuckBranch;
          stuckMatched = true;
          break;
        }
      }
      if (stuckMatched) break;
      for (std::uint32_t b = 0; b < exits.size(); ++b) {
        if (exits[b] == pred) {
          sel[m] = b;
          break;
        }
      }
      break;
    }
  }
  return sel;
}

bool onPath(const PathInfo& path, rsn::SegmentId seg) {
  return std::find(path.segments.begin(), path.segments.end(), seg) !=
         path.segments.end();
}

}  // namespace

// Marker value planted into / written to an instrument segment:
// 1,0,1,0,... is distinguishable from both the all-zero reset image and
// from X poisoning.
std::vector<Bit> accessMarker(std::uint32_t length) {
  std::vector<Bit> out(length);
  for (std::uint32_t k = 0; k < length; ++k)
    out[k] = (k % 2 == 0) ? Bit::One : Bit::Zero;
  return out;
}

bool replayPatterns(ScanSimulator& sim, const RetargetResult& recorded) {
  try {
    for (const auto& [mux, branch] : recorded.externalSelections)
      sim.setExternalAddress(mux, branch);
    for (const ScanPattern& pat : recorded.patterns) {
      const auto path = sim.activePath();
      if (!path || path->totalBits != pat.shiftIn.size()) return false;
      const auto out = sim.csu(pat.shiftIn);
      if (out != pat.shiftOut) return false;
    }
  } catch (const Error&) {
    return false;  // divergent topology: the recipe does not even apply
  }
  return true;
}

Retargeter::Retargeter(ScanSimulator& sim, RetargetOptions options)
    : sim_(&sim), options_(options), gv_(rsn::buildGraphView(sim.network())) {
  const rsn::Network& net = sim.network();
  maxRounds_ = options_.maxRounds != 0 ? options_.maxRounds
                                       : net.stats().maxMuxNesting + 2;
  ancestors_.assign(net.segments().size(), {});

  // One DFS assigning every segment its (mux, branch) ancestor chain.
  std::vector<std::pair<rsn::MuxId, std::uint32_t>> context;
  const auto walk = [&](auto&& self, rsn::NodeId nodeId) -> void {
    const auto& n = net.structure().node(nodeId);
    switch (n.kind) {
      case rsn::NodeKind::Wire:
        return;
      case rsn::NodeKind::Segment:
        ancestors_[n.prim] = context;
        return;
      case rsn::NodeKind::Serial:
        for (rsn::NodeId c : n.children) self(self, c);
        return;
      case rsn::NodeKind::MuxJoin:
        for (std::uint32_t b = 0; b < n.children.size(); ++b) {
          context.emplace_back(n.prim, b);
          self(self, n.children[b]);
          context.pop_back();
        }
        return;
    }
  };
  walk(walk, net.structure().root());
}

std::map<rsn::MuxId, std::uint32_t> Retargeter::ancestorSelections(
    rsn::SegmentId seg) const {
  std::map<rsn::MuxId, std::uint32_t> sel;
  for (const auto& [mux, branch] : ancestors_[seg]) sel[mux] = branch;
  return sel;
}

RetargetResult Retargeter::realizeSelections(
    const std::map<rsn::MuxId, std::uint32_t>& selections) {
  const rsn::Network& net = sim_->network();
  RetargetResult res;

  // TAP-controlled muxes are set directly; segment-controlled ones need
  // their control register written through the RSN.
  std::map<rsn::SegmentId, std::uint32_t> writes;
  for (const auto& [m, b] : selections) {
    const rsn::SegmentId ctrl = net.mux(m).controlSegment;
    if (ctrl == rsn::kNone) {
      sim_->setExternalAddress(m, b);
      res.externalSelections.emplace_back(m, b);
      continue;
    }
    const std::uint32_t len = net.segment(ctrl).length;
    if (len < 32 && b >= (1U << len)) {
      res.success = false;  // selection not representable in the register
      return res;
    }
    const auto [it, inserted] = writes.emplace(ctrl, b);
    if (!inserted && it->second != b) {
      res.success = false;  // conflicting demands on one control register
      return res;
    }
  }

  const auto done = [&]() {
    for (const auto& [m, b] : selections)
      if (sim_->muxSelection(m) != b) return false;
    return true;
  };

  for (std::size_t round = 0; round <= maxRounds_; ++round) {
    if (done()) {
      res.success = true;
      return res;
    }
    const auto path = sim_->activePath();
    if (!path) return res;  // an address became X — dead end

    // Desired image: control registers get their target value, all other
    // segments recirculate (X cells are refreshed as 0 — we drive the
    // scan-in, so we never have to feed X).
    std::vector<Bit> image;
    image.reserve(path->totalBits);
    for (rsn::SegmentId s : path->segments) {
      const std::uint32_t len = net.segment(s).length;
      const auto it = writes.find(s);
      if (it != writes.end()) {
        for (std::uint32_t k = 0; k < len; ++k) {
          const bool bit = k < 32 && ((it->second >> k) & 1U) != 0;
          image.push_back(bitOf(bit));
        }
      } else {
        for (Bit b : sim_->segmentUpdate(s))
          image.push_back(b == Bit::X ? Bit::Zero : b);
      }
    }
    const auto in = ScanSimulator::shiftInForImage(image);
    const auto out = sim_->csu(in);
    res.patterns.push_back({in, out});
    ++res.rounds;
  }
  res.success = done();
  return res;
}

namespace {

/// Joins a prefix (scan-in -> seg) and suffix (seg -> scan-out) into the
/// mux selections realizing the combined walk.
std::map<rsn::MuxId, std::uint32_t> joinSelections(
    const rsn::GraphView& gv, const std::vector<graph::VertexId>& prefix,
    const std::vector<graph::VertexId>& suffix,
    const std::vector<fault::Fault>& faults) {
  std::vector<graph::VertexId> whole = prefix;
  whole.insert(whole.end(), suffix.begin() + 1, suffix.end());
  return selectionsFromPath(gv, whole, faults);
}

bool containsBreak(const std::vector<fault::Fault>& faults) {
  for (const fault::Fault& f : faults)
    if (f.kind == fault::FaultKind::SegmentBreak) return true;
  return false;
}

bool breaksSegment(const std::vector<fault::Fault>& faults,
                   rsn::SegmentId seg) {
  for (const fault::Fault& f : faults)
    if (f.kind == fault::FaultKind::SegmentBreak && f.prim == seg) return true;
  return false;
}

}  // namespace

/// Candidate mux-selection maps for accessing `seg`, in attempt order.
/// Entry 0 (when present) is the *nominal* recipe — the shortest
/// fault-unaware path, exactly what a controller without fault knowledge
/// would apply.  Subsequent entries are fault-aware alternatives from the
/// bounded reroute enumeration; `allowBreakAtSeg` selects the read
/// flavor (broken segment tolerable on the scan-in side) vs the write
/// flavor (tolerable on the scan-out side).  Duplicates of earlier
/// entries are dropped, and the total is capped at 1 + maxReroutes.
static std::vector<std::pair<std::map<rsn::MuxId, std::uint32_t>, bool>>
candidateSelections(const rsn::GraphView& gv,
                    const std::vector<fault::Fault>& faults,
                    rsn::SegmentId seg, bool breakBeforeSegTolerable,
                    const RetargetOptions& options) {
  using Selections = std::map<rsn::MuxId, std::uint32_t>;
  std::vector<std::pair<Selections, bool>> out;  // (selections, rerouted)
  const graph::VertexId segV = gv.segmentVertex[seg];

  const auto push = [&](Selections sel, bool rerouted) {
    for (const auto& [existing, r] : out)
      if (existing == sel) return;
    out.emplace_back(std::move(sel), rerouted);
  };

  // Nominal: shortest path ignoring the faults (selections derived
  // fault-unaware too — this is the recipe of an oblivious controller).
  {
    const auto prefix = findPath(gv, {}, gv.scanIn, segV, false);
    const auto suffix = findPath(gv, {}, segV, gv.scanOut, false);
    if (prefix && suffix)
      push(joinSelections(gv, *prefix, *suffix, {}), false);
  }

  if (faults.empty() || !options.allowReroute || options.maxReroutes == 0)
    return out;

  // Reroute: enumerate fault-honoring prefix/suffix pairs.  The second
  // strategy additionally tolerates broken segments on the side where
  // the payload never crosses them (scan-in side for reads, scan-out
  // side for writes).
  const std::size_t cap = options.maxReroutes;
  for (const bool tolerateBreak : {false, true}) {
    if (tolerateBreak && !containsBreak(faults)) break;
    const bool allowPrefixBreak = tolerateBreak && breakBeforeSegTolerable;
    const bool allowSuffixBreak = tolerateBreak && !breakBeforeSegTolerable;
    const auto prefixes =
        enumeratePaths(gv, faults, gv.scanIn, segV, allowPrefixBreak, cap);
    const auto suffixes =
        enumeratePaths(gv, faults, segV, gv.scanOut, allowSuffixBreak, cap);
    for (const auto& prefix : prefixes) {
      for (const auto& suffix : suffixes) {
        if (out.size() > cap) return out;  // entry 0 is the nominal recipe
        push(joinSelections(gv, prefix, suffix, faults), true);
      }
    }
  }
  return out;
}

RetargetResult Retargeter::readInstrument(rsn::InstrumentId i) {
  RRSN_OBS_SPAN("sim.read");
  const rsn::Network& net = sim_->network();
  const rsn::SegmentId seg = net.instrument(i).segment;
  const std::vector<fault::Fault> faults = sim_->injectedFaults();

  RetargetResult best;
  if (breaksSegment(faults, seg)) {
    recordAccess(best);
    return best;  // the instrument's own segment is dead
  }

  // For reads the scan-out side must be clean; a broken segment on the
  // scan-in side only shifts garbage in behind the marker.
  bool first = true;
  for (const auto& [selections, rerouted] : candidateSelections(
           gv_, faults, seg, /*breakBeforeSegTolerable=*/true, options_)) {
    // A failed attempt can leave X in address registers (a shift across
    // a broken segment poisons everything downstream, including SIB
    // registers that sit behind their content), with no scan-accessible
    // recovery.  Power-cycle between candidate recipes: each one starts
    // from the reset image with only the physical defects persisting,
    // which also makes the recorded patterns replayable from power-on.
    if (!first) {
      sim_->reset();
      sim_->injectFaults(faults);
    }
    first = false;
    RetargetResult attempt = realizeSelections(selections);
    if (!attempt.success) continue;

    const auto path = sim_->activePath();
    if (!path || !onPath(*path, seg)) continue;

    const auto marker = accessMarker(net.segment(seg).length);
    sim_->setInstrumentValue(i, marker);
    const std::vector<Bit> in(path->totalBits, Bit::Zero);
    const auto out = sim_->csu(in);
    attempt.patterns.push_back({in, out});
    ++attempt.rounds;

    const auto offset = ScanSimulator::offsetOf(net, *path, seg);
    bool ok = offset.has_value();
    if (ok) {
      for (std::uint32_t k = 0; k < marker.size(); ++k) {
        const std::size_t pos = path->totalBits - 1 - (*offset + k);
        if (out[pos] != marker[k]) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      attempt.success = true;
      attempt.rerouted = rerouted;
      recordAccess(attempt);
      return attempt;
    }
  }
  recordAccess(best);
  return best;
}

RetargetResult Retargeter::writeInstrument(rsn::InstrumentId i,
                                           const std::vector<Bit>& value) {
  RRSN_OBS_SPAN("sim.write");
  const rsn::Network& net = sim_->network();
  const rsn::SegmentId seg = net.instrument(i).segment;
  RRSN_CHECK(value.size() == net.segment(seg).length,
             "write value length mismatch");
  const std::vector<fault::Fault> faults = sim_->injectedFaults();

  RetargetResult best;
  if (breaksSegment(faults, seg)) {
    recordAccess(best);
    return best;
  }

  // For writes the scan-in side must be clean; the scan-out side may
  // contain broken segments (the value never travels through them).
  // As in readInstrument, each candidate recipe starts from power-on.
  bool first = true;
  for (const auto& [selections, rerouted] : candidateSelections(
           gv_, faults, seg, /*breakBeforeSegTolerable=*/false, options_)) {
    if (!first) {
      sim_->reset();
      sim_->injectFaults(faults);
    }
    first = false;
    RetargetResult attempt = realizeSelections(selections);
    if (!attempt.success) continue;

    const auto path = sim_->activePath();
    if (!path || !onPath(*path, seg)) continue;
    const auto offset = ScanSimulator::offsetOf(net, *path, seg);
    if (!offset) continue;

    // Image: keep every segment's configuration, place `value` at seg.
    std::vector<Bit> image;
    image.reserve(path->totalBits);
    for (rsn::SegmentId s : path->segments) {
      if (s == seg) {
        image.insert(image.end(), value.begin(), value.end());
      } else {
        for (Bit b : sim_->segmentUpdate(s))
          image.push_back(b == Bit::X ? Bit::Zero : b);
      }
    }
    const auto in = ScanSimulator::shiftInForImage(image);
    const auto out = sim_->csu(in);
    attempt.patterns.push_back({in, out});
    ++attempt.rounds;

    if (sim_->segmentUpdate(seg) == value) {
      attempt.success = true;
      attempt.rerouted = rerouted;
      recordAccess(attempt);
      return attempt;
    }
  }
  recordAccess(best);
  return best;
}

AccessReport strictAccessibility(const rsn::Network& net,
                                 const fault::Fault* f) {
  AccessReport report;
  const std::size_t n = net.instruments().size();
  report.observable = DynamicBitset(n);
  report.settable = DynamicBitset(n);
  for (rsn::InstrumentId i = 0; i < n; ++i) {
    {
      ScanSimulator sim(net);
      if (f != nullptr) sim.injectFault(*f);
      Retargeter rt(sim);
      if (rt.readInstrument(i).success) report.observable.set(i);
    }
    {
      ScanSimulator sim(net);
      if (f != nullptr) sim.injectFault(*f);
      Retargeter rt(sim);
      const auto marker =
          accessMarker(net.segment(net.instrument(i).segment).length);
      if (rt.writeInstrument(i, marker).success) report.settable.set(i);
    }
  }
  return report;
}

AccessReport structuralAccessibility(const rsn::Network& net,
                                     const fault::Fault* f) {
  AccessReport report;
  const std::size_t n = net.instruments().size();
  report.observable = DynamicBitset(n);
  report.settable = DynamicBitset(n);
  report.observable.setAll();
  report.settable.setAll();
  if (f != nullptr) {
    const rsn::GraphView gv = rsn::buildGraphView(net);
    const auto loss = fault::lossUnderFaultGraph(net, gv, *f);
    loss.unobservable.forEachSet(
        [&](std::size_t i) { report.observable.reset(i); });
    loss.unsettable.forEachSet(
        [&](std::size_t i) { report.settable.reset(i); });
  }
  return report;
}

}  // namespace rrsn::sim

// Cycle-level RSN scan simulator.
//
// Models the capture–shift–update (CSU) access protocol of IEEE Std 1687:
// every scan segment has a shift register and a shadow update register;
// multiplexer addresses are driven by the update value of their control
// segment (or set externally for TAP-controlled muxes).  The simulator
// supports permanent-fault injection with three-valued logic: a broken
// segment poisons every bit shifted through it with X; a stuck
// multiplexer ignores its address.  Any number of simultaneous
// permanent faults can be injected (the multi-fault campaigns probe
// defect pairs), and a one-shot *transient upset* can be armed: after a
// chosen CSU round completes, one segment's registers are corrupted to
// X for that single event — the segment behaves normally afterwards,
// but the corruption persists in its state until overwritten.
//
// The simulator is the ground truth the structural analysis is tested
// against, and powers the paper's two application scenarios in
// examples/ (post-silicon data extraction, runtime instrument access).
#pragma once

#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "rsn/network.hpp"

namespace rrsn::sim {

/// Three-valued scan bit.
enum class Bit : std::uint8_t { Zero = 0, One = 1, X = 2 };

inline Bit bitOf(bool b) { return b ? Bit::One : Bit::Zero; }
char toChar(Bit b);
std::vector<Bit> bitsFromString(const std::string& s);  // '0','1','x'
std::string toString(const std::vector<Bit>& bits);

inline constexpr std::uint32_t kInvalidSelection =
    static_cast<std::uint32_t>(-1);

/// The active scan path under the current configuration.
struct PathInfo {
  std::vector<rsn::SegmentId> segments;  ///< scan-in -> scan-out order
  std::size_t totalBits = 0;
};

/// One-shot soft error: after CSU round `round` (counted from arming,
/// round 0 = the first CSU) completes, every cell of `segment`'s shift
/// and update registers is corrupted to X.  The upset then disappears —
/// only its footprint in the register state remains.
struct TransientUpset {
  rsn::SegmentId segment = rsn::kNone;
  std::uint32_t round = 0;

  bool operator==(const TransientUpset&) const = default;
};

class ScanSimulator {
 public:
  explicit ScanSimulator(const rsn::Network& net);

  const rsn::Network& network() const { return *net_; }

  /// Returns to the power-up state: all registers zero, no fault, no
  /// pending upset, all external addresses zero.
  void reset();

  /// Restores the power-up *configuration* only: update registers and
  /// external mux addresses return to their reset values, while the
  /// shift registers keep whatever (possibly X-corrupted) content they
  /// hold.  This is the 1687-style reconfiguration sequence a
  /// controller applies to recover from a transient upset — the next
  /// accesses rewrite the data path, they do not need a power cycle.
  /// Injected permanent faults and a still-pending upset are untouched.
  void resetConfiguration();

  /// Injects a single permanent fault (replacing all previous ones).
  void injectFault(const fault::Fault& f) { faults_.assign(1, f); }
  /// Injects a set of simultaneous permanent faults (replacing all
  /// previous ones).  Two stuck faults on the same mux are contradictory
  /// hardware; the first one in the list wins deterministically.
  void injectFaults(std::vector<fault::Fault> faults) {
    faults_ = std::move(faults);
  }
  /// Adds one more simultaneous permanent fault.
  void addFault(const fault::Fault& f) { faults_.push_back(f); }
  void clearFault() { faults_.clear(); }
  const std::vector<fault::Fault>& injectedFaults() const { return faults_; }
  /// The first injected fault, if any — the single-fault view used by
  /// call sites predating multi-fault campaigns.
  std::optional<fault::Fault> injectedFault() const {
    return faults_.empty() ? std::nullopt
                           : std::optional<fault::Fault>(faults_.front());
  }

  /// Arms a one-shot transient upset (replacing any pending one) and
  /// restarts the CSU round counter it is measured against.
  void armTransientUpset(const TransientUpset& upset);
  /// True while an armed upset has not fired yet.
  bool transientPending() const { return upset_.has_value(); }

  /// Address of a TAP-controlled mux (controlSegment == kNone).
  void setExternalAddress(rsn::MuxId m, std::uint32_t branch);

  /// Value the attached instrument presents at the next capture.
  /// Must match the segment length.
  void setInstrumentValue(rsn::InstrumentId i, std::vector<Bit> value);

  /// Update-register content of the instrument's segment — what the
  /// instrument receives from the RSN.
  std::vector<Bit> instrumentUpdate(rsn::InstrumentId i) const;

  /// Update-register content of any segment.
  std::vector<Bit> segmentUpdate(rsn::SegmentId s) const;

  /// Resolved selection of a mux under the current configuration and
  /// fault: branch index, or kInvalidSelection if the address is X.
  std::uint32_t muxSelection(rsn::MuxId m) const;

  /// Active scan path; nullopt if some on-path mux address is X.
  std::optional<PathInfo> activePath() const;

  /// One capture–shift–update access on the active path.  `in` must have
  /// exactly path.totalBits entries; the returned vector contains the
  /// bits that left through scan-out (captured image, scan-out-nearest
  /// cell first).  Throws ValidationError if there is no valid path.
  std::vector<Bit> csu(const std::vector<Bit>& in);

  /// Shift-in image builder: the input stream that loads `image` (one
  /// entry per path bit, scan-in-nearest first) into the path registers.
  static std::vector<Bit> shiftInForImage(const std::vector<Bit>& image);

  /// Position of a segment's cells in the concatenated path image;
  /// nullopt if the segment is not on the given path.
  static std::optional<std::size_t> offsetOf(const rsn::Network& net,
                                             const PathInfo& path,
                                             rsn::SegmentId seg);

 private:
  struct SegmentState {
    std::vector<Bit> shift;
    std::vector<Bit> update;
    std::vector<Bit> instrumentValue;  ///< empty: capture update instead
  };

  std::uint32_t resolveSelection(rsn::MuxId m) const;
  bool walkPath(rsn::NodeId node, PathInfo& path) const;
  bool isBroken(rsn::SegmentId s) const;

  const rsn::Network* net_;
  std::vector<SegmentState> state_;
  std::vector<std::uint32_t> externalAddress_;
  std::vector<fault::Fault> faults_;
  std::optional<TransientUpset> upset_;
  std::uint64_t roundsSinceArm_ = 0;
};

}  // namespace rrsn::sim

// Cycle-level RSN scan simulator.
//
// Models the capture–shift–update (CSU) access protocol of IEEE Std 1687:
// every scan segment has a shift register and a shadow update register;
// multiplexer addresses are driven by the update value of their control
// segment (or set externally for TAP-controlled muxes).  The simulator
// supports single permanent-fault injection with three-valued logic: a
// broken segment poisons every bit shifted through it with X; a stuck
// multiplexer ignores its address.
//
// The simulator is the ground truth the structural analysis is tested
// against, and powers the paper's two application scenarios in
// examples/ (post-silicon data extraction, runtime instrument access).
#pragma once

#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "rsn/network.hpp"

namespace rrsn::sim {

/// Three-valued scan bit.
enum class Bit : std::uint8_t { Zero = 0, One = 1, X = 2 };

inline Bit bitOf(bool b) { return b ? Bit::One : Bit::Zero; }
char toChar(Bit b);
std::vector<Bit> bitsFromString(const std::string& s);  // '0','1','x'
std::string toString(const std::vector<Bit>& bits);

inline constexpr std::uint32_t kInvalidSelection =
    static_cast<std::uint32_t>(-1);

/// The active scan path under the current configuration.
struct PathInfo {
  std::vector<rsn::SegmentId> segments;  ///< scan-in -> scan-out order
  std::size_t totalBits = 0;
};

class ScanSimulator {
 public:
  explicit ScanSimulator(const rsn::Network& net);

  const rsn::Network& network() const { return *net_; }

  /// Returns to the power-up state: all registers zero, no fault, all
  /// external addresses zero.
  void reset();

  /// Injects a single permanent fault (replacing any previous one).
  void injectFault(const fault::Fault& f) { fault_ = f; }
  void clearFault() { fault_.reset(); }
  const std::optional<fault::Fault>& injectedFault() const { return fault_; }

  /// Address of a TAP-controlled mux (controlSegment == kNone).
  void setExternalAddress(rsn::MuxId m, std::uint32_t branch);

  /// Value the attached instrument presents at the next capture.
  /// Must match the segment length.
  void setInstrumentValue(rsn::InstrumentId i, std::vector<Bit> value);

  /// Update-register content of the instrument's segment — what the
  /// instrument receives from the RSN.
  std::vector<Bit> instrumentUpdate(rsn::InstrumentId i) const;

  /// Update-register content of any segment.
  std::vector<Bit> segmentUpdate(rsn::SegmentId s) const;

  /// Resolved selection of a mux under the current configuration and
  /// fault: branch index, or kInvalidSelection if the address is X.
  std::uint32_t muxSelection(rsn::MuxId m) const;

  /// Active scan path; nullopt if some on-path mux address is X.
  std::optional<PathInfo> activePath() const;

  /// One capture–shift–update access on the active path.  `in` must have
  /// exactly path.totalBits entries; the returned vector contains the
  /// bits that left through scan-out (captured image, scan-out-nearest
  /// cell first).  Throws ValidationError if there is no valid path.
  std::vector<Bit> csu(const std::vector<Bit>& in);

  /// Shift-in image builder: the input stream that loads `image` (one
  /// entry per path bit, scan-in-nearest first) into the path registers.
  static std::vector<Bit> shiftInForImage(const std::vector<Bit>& image);

  /// Position of a segment's cells in the concatenated path image;
  /// nullopt if the segment is not on the given path.
  static std::optional<std::size_t> offsetOf(const rsn::Network& net,
                                             const PathInfo& path,
                                             rsn::SegmentId seg);

 private:
  struct SegmentState {
    std::vector<Bit> shift;
    std::vector<Bit> update;
    std::vector<Bit> instrumentValue;  ///< empty: capture update instead
  };

  std::uint32_t resolveSelection(rsn::MuxId m) const;
  bool walkPath(rsn::NodeId node, PathInfo& path) const;

  const rsn::Network* net_;
  std::vector<SegmentState> state_;
  std::vector<std::uint32_t> externalAddress_;
  std::optional<fault::Fault> fault_;
};

}  // namespace rrsn::sim

// Retargeting: turning "access instrument i" into concrete CSU patterns.
//
// An RSN instrument is reached by steering every multiplexer on the path
// from scan-in to its segment; segment-controlled muxes (SIBs, address
// registers) must be written through the RSN itself, which takes one CSU
// round per hierarchy level.  The engine below reproduces that protocol
// and — because it runs on the fault-injecting simulator — doubles as the
// *strict* accessibility oracle: an instrument counts as observable /
// settable only if a marker value actually makes it through the defect
// RSN end to end.  This is stronger than the paper's structural analysis
// (which assumes control bits can always be applied); the
// bench_control_dependency ablation quantifies the difference.
#pragma once

#include <map>

#include "rsn/graph_view.hpp"
#include "sim/simulator.hpp"
#include "support/bitset.hpp"

namespace rrsn::sim {

/// One applied scan access (for pattern logging / replay).
struct ScanPattern {
  std::vector<Bit> shiftIn;   ///< stream fed to scan-in
  std::vector<Bit> shiftOut;  ///< stream observed at scan-out
};

/// Bounds of one retargeting attempt.  Every limit exists so that a
/// defective network (e.g. a stuck address register that silently drops
/// control writes) degrades into a failed RetargetResult instead of an
/// unbounded configuration loop.
struct RetargetOptions {
  /// CSU rounds allowed per realizeSelections attempt; 0 = automatic
  /// (deepest mux nesting + 2, enough for any healthy access).
  std::size_t maxRounds = 0;
  /// After the nominal (fault-unaware) recipe fails, search for
  /// alternative scan paths that route around the injected fault.
  bool allowReroute = true;
  /// Alternative-path realizations attempted per access; caps both the
  /// path enumeration and the CSU work spent on graceful degradation.
  std::size_t maxReroutes = 8;
};

/// Outcome of a retargeting attempt.  `externalSelections` records the
/// TAP-instruction part of the access (addresses of muxes that are not
/// segment-controlled); together with `patterns` it is the complete
/// reproducible access recipe.
struct RetargetResult {
  bool success = false;
  /// Success came from a fault-aware alternative mux branch, not from
  /// the nominal recipe — the access *degraded gracefully*.  Always
  /// false on a fault-free simulator.
  bool rerouted = false;
  std::size_t rounds = 0;              ///< CSU rounds spent
  std::vector<ScanPattern> patterns;   ///< in application order
  std::vector<std::pair<rsn::MuxId, std::uint32_t>> externalSelections;
};

/// The marker value the engine plants when verifying an access; exposed
/// so replay checks can reproduce the instrument-side stimulus.
std::vector<Bit> accessMarker(std::uint32_t length);

/// Replays a recorded access on another simulator (e.g. the synthesized
/// hardened RSN, which shares the topology).  Applies the external
/// selections, re-runs every pattern and returns true iff each shift-out
/// stream matches the recording bit for bit (Sec. II, "able to use the
/// same access patterns as the initial unhardened RSN").
bool replayPatterns(ScanSimulator& sim, const RetargetResult& recorded);

/// Retargeting engine bound to one simulator instance.
class Retargeter {
 public:
  explicit Retargeter(ScanSimulator& sim, RetargetOptions options = {});

  /// Steers the given mux selections (segment-controlled muxes through
  /// CSU rounds, TAP-controlled ones directly).  Selections of muxes not
  /// listed are left alone.  Fails if the fault in the simulator blocks a
  /// required write or the rounds budget is exhausted.
  RetargetResult realizeSelections(
      const std::map<rsn::MuxId, std::uint32_t>& selections);

  /// End-to-end read: configures a path through instrument i's segment,
  /// captures a marker from the instrument and checks the marker arrives
  /// at scan-out unpoisoned.
  RetargetResult readInstrument(rsn::InstrumentId i);

  /// End-to-end write: configures a path, shifts `value` into the
  /// segment and checks the update register took it exactly.
  RetargetResult writeInstrument(rsn::InstrumentId i,
                                 const std::vector<Bit>& value);

 private:
  /// Mux selections steering the structural path onto `seg`
  /// (its MuxJoin ancestors), or selections from a concrete graph path.
  std::map<rsn::MuxId, std::uint32_t> ancestorSelections(
      rsn::SegmentId seg) const;

  ScanSimulator* sim_;
  RetargetOptions options_;
  std::size_t maxRounds_;
  /// Built once per engine; the topology never changes under a fault.
  rsn::GraphView gv_;
  /// ancestors_[seg] = (mux, branch) chain from outermost to innermost.
  std::vector<std::vector<std::pair<rsn::MuxId, std::uint32_t>>> ancestors_;
};

/// Per-instrument accessibility under an optional fault.
struct AccessReport {
  DynamicBitset observable;
  DynamicBitset settable;
};

/// Strict (simulation-backed) accessibility: runs the retargeting engine
/// per instrument on a freshly reset simulator with `f` injected
/// (nullptr: fault-free).  Exponentially safer but linear-time slower
/// than the structural analysis; intended for small/medium networks.
AccessReport strictAccessibility(const rsn::Network& net,
                                 const fault::Fault* f);

/// Structural accessibility from the flat-graph oracle (the paper's
/// semantics): complements fault::lossUnderFaultGraph.
AccessReport structuralAccessibility(const rsn::Network& net,
                                     const fault::Fault* f);

}  // namespace rrsn::sim

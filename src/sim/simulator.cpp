#include "sim/simulator.hpp"

#include <algorithm>

#include "obs/obs.hpp"

namespace rrsn::sim {

char toChar(Bit b) {
  switch (b) {
    case Bit::Zero: return '0';
    case Bit::One: return '1';
    case Bit::X: return 'x';
  }
  return '?';
}

std::vector<Bit> bitsFromString(const std::string& s) {
  std::vector<Bit> out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '0': out.push_back(Bit::Zero); break;
      case '1': out.push_back(Bit::One); break;
      case 'x':
      case 'X': out.push_back(Bit::X); break;
      default:
        throw ParseError(std::string("invalid scan bit '") + c + "'");
    }
  }
  return out;
}

std::string toString(const std::vector<Bit>& bits) {
  std::string out;
  out.reserve(bits.size());
  for (Bit b : bits) out.push_back(toChar(b));
  return out;
}

ScanSimulator::ScanSimulator(const rsn::Network& net) : net_(&net) { reset(); }

void ScanSimulator::reset() {
  state_.assign(net_->segments().size(), {});
  for (rsn::SegmentId s = 0; s < net_->segments().size(); ++s) {
    const auto len = net_->segment(s).length;
    state_[s].shift.assign(len, Bit::Zero);
    state_[s].update.assign(len, Bit::Zero);
    state_[s].instrumentValue.clear();
  }
  externalAddress_.assign(net_->muxes().size(), 0);
  faults_.clear();
  upset_.reset();
  roundsSinceArm_ = 0;
}

void ScanSimulator::resetConfiguration() {
  for (rsn::SegmentId s = 0; s < net_->segments().size(); ++s)
    state_[s].update.assign(net_->segment(s).length, Bit::Zero);
  externalAddress_.assign(net_->muxes().size(), 0);
}

void ScanSimulator::armTransientUpset(const TransientUpset& upset) {
  RRSN_CHECK(upset.segment < net_->segments().size(),
             "transient upset segment id out of range");
  upset_ = upset;
  roundsSinceArm_ = 0;
}

void ScanSimulator::setExternalAddress(rsn::MuxId m, std::uint32_t branch) {
  RRSN_CHECK(m < externalAddress_.size(), "mux id out of range");
  RRSN_CHECK(net_->mux(m).controlSegment == rsn::kNone,
             "mux '" + net_->mux(m).name +
                 "' is controlled by a segment, not externally");
  externalAddress_[m] = branch;
}

void ScanSimulator::setInstrumentValue(rsn::InstrumentId i,
                                       std::vector<Bit> value) {
  const rsn::SegmentId seg = net_->instrument(i).segment;
  RRSN_CHECK(value.size() == net_->segment(seg).length,
             "instrument value length mismatch");
  state_[seg].instrumentValue = std::move(value);
}

std::vector<Bit> ScanSimulator::instrumentUpdate(rsn::InstrumentId i) const {
  return segmentUpdate(net_->instrument(i).segment);
}

std::vector<Bit> ScanSimulator::segmentUpdate(rsn::SegmentId s) const {
  RRSN_CHECK(s < state_.size(), "segment id out of range");
  return state_[s].update;
}

std::uint32_t ScanSimulator::resolveSelection(rsn::MuxId m) const {
  // A stuck mux ignores its address entirely.
  for (const fault::Fault& f : faults_)
    if (f.kind == fault::FaultKind::MuxStuck && f.prim == m)
      return f.stuckBranch;

  const rsn::SegmentId ctrl = net_->mux(m).controlSegment;
  if (ctrl == rsn::kNone) return externalAddress_[m];

  // Interpret the control segment's update register as an unsigned
  // little-endian integer (cell 0 = LSB); X anywhere makes it invalid.
  std::uint64_t value = 0;
  const auto& bits = state_[ctrl].update;
  for (std::size_t i = 0; i < bits.size() && i < 64; ++i) {
    if (bits[i] == Bit::X) return kInvalidSelection;
    if (bits[i] == Bit::One) value |= 1ULL << i;
  }
  return static_cast<std::uint32_t>(value);
}

std::uint32_t ScanSimulator::muxSelection(rsn::MuxId m) const {
  RRSN_CHECK(m < net_->muxes().size(), "mux id out of range");
  return resolveSelection(m);
}

bool ScanSimulator::walkPath(rsn::NodeId nodeId, PathInfo& path) const {
  const auto& n = net_->structure().node(nodeId);
  switch (n.kind) {
    case rsn::NodeKind::Wire:
      return true;
    case rsn::NodeKind::Segment:
      path.segments.push_back(n.prim);
      path.totalBits += net_->segment(n.prim).length;
      return true;
    case rsn::NodeKind::Serial:
      for (rsn::NodeId c : n.children)
        if (!walkPath(c, path)) return false;
      return true;
    case rsn::NodeKind::MuxJoin: {
      const std::uint32_t sel = resolveSelection(n.prim);
      if (sel == kInvalidSelection || sel >= n.children.size()) return false;
      return walkPath(n.children[sel], path);
    }
  }
  throw Error("unreachable structure node kind");
}

std::optional<PathInfo> ScanSimulator::activePath() const {
  PathInfo path;
  if (!walkPath(net_->structure().root(), path)) return std::nullopt;
  return path;
}

std::vector<Bit> ScanSimulator::csu(const std::vector<Bit>& in) {
  static const obs::MetricId kCsuRounds = obs::counter("sim.csu_rounds");
  obs::count(kCsuRounds);
  const auto path = activePath();
  if (!path)
    throw ValidationError(
        "no valid scan path: a mux address is X or out of range");
  RRSN_CHECK(in.size() == path->totalBits,
             "shift-in stream length does not match the active path (" +
                 std::to_string(in.size()) + " vs " +
                 std::to_string(path->totalBits) + " bits)");

  // Capture: instrument segments capture the instrument value, plain
  // segments recirculate their update value.
  for (rsn::SegmentId s : path->segments) {
    SegmentState& st = state_[s];
    st.shift = st.instrumentValue.empty() ? st.update : st.instrumentValue;
    if (isBroken(s)) std::fill(st.shift.begin(), st.shift.end(), Bit::X);
  }

  // Shift: one concatenated register, scan-in side at index 0.  A broken
  // segment poisons its cells after every clock, so anything shifted
  // through it leaves as X.  Several simultaneous breaks poison several
  // disjoint ranges.
  std::vector<Bit> reg;
  reg.reserve(path->totalBits);
  std::vector<std::pair<std::size_t, std::size_t>> brokenRanges;
  for (rsn::SegmentId s : path->segments) {
    if (isBroken(s))
      brokenRanges.emplace_back(reg.size(), reg.size() + state_[s].shift.size());
    reg.insert(reg.end(), state_[s].shift.begin(), state_[s].shift.end());
  }

  std::vector<Bit> out;
  out.reserve(path->totalBits);
  for (std::size_t t = 0; t < in.size(); ++t) {
    out.push_back(reg.back());
    for (std::size_t i = reg.size() - 1; i > 0; --i) reg[i] = reg[i - 1];
    reg[0] = in[t];
    for (const auto& [first, last] : brokenRanges) {
      for (std::size_t i = first; i < last; ++i) reg[i] = Bit::X;
    }
  }

  // Scatter the register back and update.
  std::size_t offset = 0;
  for (rsn::SegmentId s : path->segments) {
    SegmentState& st = state_[s];
    std::copy(reg.begin() + static_cast<std::ptrdiff_t>(offset),
              reg.begin() + static_cast<std::ptrdiff_t>(offset + st.shift.size()),
              st.shift.begin());
    st.update = st.shift;
    offset += st.shift.size();
  }

  // A pending transient upset fires once the configured CSU round has
  // completed: the target segment's stored state — shift *and* update
  // register, on or off the active path — is corrupted to X.  The upset
  // is consumed; subsequent rounds operate on clean silicon again.
  if (upset_ && roundsSinceArm_ == upset_->round) {
    SegmentState& st = state_[upset_->segment];
    std::fill(st.shift.begin(), st.shift.end(), Bit::X);
    std::fill(st.update.begin(), st.update.end(), Bit::X);
    upset_.reset();
  }
  ++roundsSinceArm_;
  return out;
}

bool ScanSimulator::isBroken(rsn::SegmentId s) const {
  for (const fault::Fault& f : faults_)
    if (f.kind == fault::FaultKind::SegmentBreak && f.prim == s) return true;
  return false;
}

std::vector<Bit> ScanSimulator::shiftInForImage(const std::vector<Bit>& image) {
  // The bit fed at clock t ends at register index (B-1-t), so the stream
  // is the image reversed.
  return {image.rbegin(), image.rend()};
}

std::optional<std::size_t> ScanSimulator::offsetOf(const rsn::Network& net,
                                                   const PathInfo& path,
                                                   rsn::SegmentId seg) {
  std::size_t offset = 0;
  for (rsn::SegmentId s : path.segments) {
    if (s == seg) return offset;
    offset += net.segment(s).length;
  }
  return std::nullopt;
}

}  // namespace rrsn::sim

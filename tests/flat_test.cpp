// FlatNetwork: the arena-backed SoA view every hot consumer shares.
// Covers the lowering against independent pointer-model recomputation,
// serialization round-trips (byte-determinism at any thread count),
// typed-Status rejection of corrupt/foreign buffers, the campaign's
// flatten-once contract and engine equivalence on a reloaded arena.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "campaign/campaign.hpp"
#include "diag/batched.hpp"
#include "diag/diagnosis.hpp"
#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "rsn/example_networks.hpp"
#include "rsn/flat.hpp"
#include "rsn/graph_view.hpp"
#include "support/parallel.hpp"
#include "test_util.hpp"

namespace rrsn::rsn {
namespace {

std::shared_ptr<const FlatNetwork> reload(const FlatNetwork& flat) {
  std::shared_ptr<const FlatNetwork> out;
  const Status st = FlatNetwork::deserialize(flat.buffer(), out);
  EXPECT_TRUE(st.ok()) << st.toString();
  return out;
}

std::uint64_t counterValue(const obs::Snapshot& snap, const std::string& name) {
  for (const auto& [id, v] : snap.counters)
    if (snap.names[id] == name) return v;
  return 0;
}

TEST(FlatNetwork, LowerMatchesPointerModel) {
  Rng rng(3);
  for (int round = 0; round < 8; ++round) {
    const Network net = test::randomNetwork(rng);
    const GraphView gv = buildGraphView(net);
    const auto flat = FlatNetwork::lower(net);

    ASSERT_EQ(flat->segmentCount(), net.segments().size());
    ASSERT_EQ(flat->muxCount(), net.muxes().size());
    ASSERT_EQ(flat->instrumentCount(), net.instruments().size());
    ASSERT_EQ(flat->vertexCount(), gv.graph.vertexCount());
    EXPECT_EQ(flat->scanIn(), gv.scanIn);
    EXPECT_EQ(flat->scanOut(), gv.scanOut);

    for (SegmentId s = 0; s < net.segments().size(); ++s) {
      EXPECT_EQ(flat->segLength()[s], net.segment(s).length);
      EXPECT_EQ(flat->segInstrument()[s], net.segment(s).instrument);
      EXPECT_EQ((flat->segFlags()[s] & FlatNetwork::kSegFlagSib) != 0,
                net.segment(s).isSibRegister);
      EXPECT_EQ(flat->segmentVertex()[s], gv.segmentVertex[s]);
    }
    for (MuxId m = 0; m < net.muxes().size(); ++m) {
      EXPECT_EQ(flat->muxControl()[m], net.mux(m).controlSegment);
      EXPECT_EQ(flat->muxVertex()[m], gv.muxVertex[m]);
      if (flat->muxControl()[m] != kNone) {
        EXPECT_EQ(flat->muxCtrlVertex()[m],
                  flat->segmentVertex()[flat->muxControl()[m]]);
      }
      // Branch CSR row m reproduces the GraphView's per-mux exit list.
      const auto begin = flat->muxBranchOffsets()[m];
      const auto end = flat->muxBranchOffsets()[m + 1];
      ASSERT_EQ(end - begin, gv.muxBranchExit[m].size());
      for (std::uint64_t b = begin; b < end; ++b)
        EXPECT_EQ(flat->muxBranchExit()[b], gv.muxBranchExit[m][b - begin]);
    }
    for (InstrumentId i = 0; i < net.instruments().size(); ++i)
      EXPECT_EQ(flat->instrumentSegment()[i], net.instrument(i).segment);

    // Forward CSR adjacency == the Digraph's successor lists, row for
    // row (same construction order as graph::buildCsr).
    ASSERT_EQ(flat->fwdOffsets().size(), gv.graph.vertexCount() + 1);
    for (graph::VertexId v = 0; v < gv.graph.vertexCount(); ++v) {
      const auto& succ = gv.graph.successors(v);
      const auto begin = flat->fwdOffsets()[v];
      const auto end = flat->fwdOffsets()[v + 1];
      ASSERT_EQ(end - begin, succ.size()) << "vertex " << v;
      std::vector<graph::VertexId> got;
      for (std::uint64_t e = begin; e < end; ++e)
        got.push_back(flat->fwdEdges()[e].other);
      std::vector<graph::VertexId> want = succ;
      std::sort(got.begin(), got.end());
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << "vertex " << v;
    }
  }
}

TEST(FlatNetwork, WeightsFollowSpec) {
  Rng rng(11);
  const Network net = test::randomNetwork(rng);
  const CriticalitySpec spec = test::randomSpecFor(net, rng);
  const auto flat = FlatNetwork::lower(net, &spec);
  for (InstrumentId i = 0; i < net.instruments().size(); ++i) {
    EXPECT_EQ(flat->instrumentObsWeight()[i], spec.of(i).obs);
    EXPECT_EQ(flat->instrumentSetWeight()[i], spec.of(i).set);
  }
  // Without a spec the weight lanes are zero-filled, not garbage.
  const auto bare = FlatNetwork::lower(net);
  for (InstrumentId i = 0; i < net.instruments().size(); ++i)
    EXPECT_EQ(bare->instrumentObsWeight()[i], 0u);
}

TEST(FlatNetwork, RoundTripAndByteDeterminism) {
  const Network net = makeFig1Network();
  const auto flat = FlatNetwork::lower(net);

  const auto loaded = reload(*flat);
  ASSERT_NE(loaded, nullptr);
  EXPECT_EQ(loaded->fingerprint(), flat->fingerprint());
  EXPECT_TRUE(*loaded == *flat);
  EXPECT_EQ(loaded->segmentCount(), flat->segmentCount());
  EXPECT_EQ(loaded->buffer(), flat->buffer());

  // The arena is a pure function of the network: byte-identical at any
  // pool width (the runtime determinism contract extends to lowering).
  const std::size_t before = threadCount();
  for (const std::size_t t : {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    setThreadCount(t);
    const auto again = FlatNetwork::lower(net);
    EXPECT_EQ(again->buffer(), flat->buffer()) << "threads=" << t;
  }
  setThreadCount(before);
}

TEST(FlatNetwork, RejectsCorruptBuffersWithTypedStatus) {
  const Network net = makeFig1Network();
  const auto flat = FlatNetwork::lower(net);
  const std::vector<std::uint8_t>& good = flat->buffer();

  const auto rejects = [](std::vector<std::uint8_t> buf) -> Status {
    std::shared_ptr<const FlatNetwork> out;
    Status st{};
    EXPECT_NO_THROW(st = FlatNetwork::deserialize(std::move(buf), out));
    EXPECT_FALSE(st.ok());
    EXPECT_EQ(out, nullptr);
    return st;
  };

  (void)rejects({});                                   // empty
  (void)rejects(std::vector<std::uint8_t>(16, 0xab));  // way too short
  EXPECT_EQ(rejects({good.begin(),
                     good.begin() + static_cast<std::ptrdiff_t>(
                                        good.size() / 2)})
                .code(),
            StatusCode::kDataLoss);

  {  // foreign magic
    std::vector<std::uint8_t> bad = good;
    bad[0] ^= 0xff;
    const Status st = rejects(std::move(bad));
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << st.toString();
    EXPECT_NE(st.message().find("magic"), std::string::npos)
        << st.toString();
  }
  {  // version bump (format field is the u32 at byte 8)
    std::vector<std::uint8_t> bad = good;
    std::uint32_t version = 0;
    std::memcpy(&version, bad.data() + 8, sizeof version);
    version += 1;
    std::memcpy(bad.data() + 8, &version, sizeof version);
    const Status st = rejects(std::move(bad));
    EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st.toString();
    EXPECT_NE(st.message().find("version"), std::string::npos)
        << st.toString();
  }
  {  // payload bit flip -> fingerprint mismatch.  Flip inside the first
     // section payload (the 64-byte-aligned slot after header + table);
     // the zero padding after the last section is outside the
     // fingerprint, so the arena's final byte would not do.
    std::vector<std::uint8_t> bad = good;
    bad[896] ^= 0x01;
    const Status st = rejects(std::move(bad));
    EXPECT_EQ(st.code(), StatusCode::kDataLoss) << st.toString();
  }
  {  // trailing garbage -> size mismatch
    std::vector<std::uint8_t> bad = good;
    bad.push_back(0);
    (void)rejects(std::move(bad));
  }

  // And the pristine buffer still loads after all that.
  EXPECT_NE(reload(*flat), nullptr);
}

TEST(FlatNetwork, CampaignFlattensOncePerEngine) {
  const Network net = makeFig1Network();
  obs::enable();
  const obs::Snapshot before = obs::snapshot();
  campaign::CampaignEngine engine(net);
  (void)engine.run();
  (void)engine.run();
  const obs::Snapshot after = obs::snapshot();
  obs::disable();
  EXPECT_EQ(counterValue(after, "flat.flatten_calls") -
                counterValue(before, "flat.flatten_calls"),
            1u)
      << "the campaign must lower once at construction and share the "
         "arena across runs";
}

TEST(FlatNetwork, DeserializedEngineMatchesDirectLowering) {
  Rng rng(29);
  const Network net = test::randomNetwork(rng);
  const auto flat = FlatNetwork::lower(net);
  const auto loaded = reload(*flat);
  ASSERT_NE(loaded, nullptr);

  const diag::BatchedSyndromeEngine direct(flat);
  const diag::BatchedSyndromeEngine reloaded(loaded);
  const fault::FaultUniverse universe(net);
  for (const fault::Fault& f : universe.faults())
    EXPECT_EQ(direct.row(&f, 0), reloaded.row(&f, 0))
        << fault::describe(net, f);
}

}  // namespace
}  // namespace rrsn::rsn

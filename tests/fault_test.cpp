#include <gtest/gtest.h>

#include "fault/effects.hpp"
#include "fault/fault.hpp"
#include "rsn/example_networks.hpp"
#include "rsn/graph_view.hpp"
#include "test_util.hpp"

namespace rrsn::fault {
namespace {

using rsn::makeFig1Network;

std::vector<std::string> instrumentNames(const rsn::Network& net,
                                         const DynamicBitset& bits) {
  std::vector<std::string> names;
  bits.forEachSet([&](std::size_t i) {
    names.push_back(net.instrument(static_cast<rsn::InstrumentId>(i)).name);
  });
  return names;
}

TEST(FaultUniverse, CountsPerPrimitive) {
  const rsn::Network net = makeFig1Network();
  const FaultUniverse universe(net);
  // 7 segment breaks + 4 two-input muxes * 2 stuck values = 15 faults.
  EXPECT_EQ(universe.size(), 15u);
  EXPECT_EQ(universe
                .faultsAt({rsn::PrimitiveRef::Kind::Segment,
                           net.findSegment("c0")})
                .size(),
            1u);
  EXPECT_EQ(
      universe.faultsAt({rsn::PrimitiveRef::Kind::Mux, net.findMux("m0")})
          .size(),
      2u);
}

TEST(FaultUniverse, Describe) {
  const rsn::Network net = makeFig1Network();
  EXPECT_EQ(describe(net, Fault::segmentBreak(net.findSegment("c2"))),
            "break(c2)");
  EXPECT_EQ(describe(net, Fault::muxStuck(net.findMux("m0"), 1)),
            "stuck(m0=1)");
}

TEST(FaultEffects, Fig4GoldenM0Stuck1) {
  // Fig. 4: "Due to a stuck-at-1 fault of the multiplexer m0 the
  // instruments i1, i2 and i3 become inaccessible."
  const rsn::Network net = makeFig1Network();
  sp::DecompositionTree tree = sp::DecompositionTree::build(net);
  tree.annotate(rsn::makeFig1Spec(net));
  const Fault f = Fault::muxStuck(net.findMux("m0"), 1);
  const AccessibilityLoss loss = lossUnderFaultTree(tree, f);
  EXPECT_EQ(instrumentNames(net, loss.unobservable),
            (std::vector<std::string>{"i1", "i2", "i3"}));
  EXPECT_EQ(instrumentNames(net, loss.unsettable),
            (std::vector<std::string>{"i1", "i2", "i3"}));
}

TEST(FaultEffects, M0StuckOnContentBranchIsHarmless) {
  const rsn::Network net = makeFig1Network();
  sp::DecompositionTree tree = sp::DecompositionTree::build(net);
  tree.annotate(rsn::makeFig1Spec(net));
  const AccessibilityLoss loss =
      lossUnderFaultTree(tree, Fault::muxStuck(net.findMux("m0"), 0));
  EXPECT_EQ(loss.unobservable.count(), 0u);
  EXPECT_EQ(loss.unsettable.count(), 0u);
}

TEST(FaultEffects, SibStuckDeassertedHidesContent) {
  // SIB branch 0 is the bypass: stuck there denies access to i1 only.
  const rsn::Network net = makeFig1Network();
  sp::DecompositionTree tree = sp::DecompositionTree::build(net);
  tree.annotate(rsn::makeFig1Spec(net));
  const AccessibilityLoss loss =
      lossUnderFaultTree(tree, Fault::muxStuck(net.findMux("sb1_mux"), 0));
  EXPECT_EQ(instrumentNames(net, loss.unobservable),
            (std::vector<std::string>{"i1"}));
  EXPECT_EQ(instrumentNames(net, loss.unsettable),
            (std::vector<std::string>{"i1"}));
}

TEST(FaultEffects, SibStuckAssertedIsHarmless) {
  const rsn::Network net = makeFig1Network();
  sp::DecompositionTree tree = sp::DecompositionTree::build(net);
  tree.annotate(rsn::makeFig1Spec(net));
  const AccessibilityLoss loss =
      lossUnderFaultTree(tree, Fault::muxStuck(net.findMux("sb1_mux"), 1));
  EXPECT_EQ(loss.unobservable.count(), 0u);
  EXPECT_EQ(loss.unsettable.count(), 0u);
}

TEST(FaultEffects, SegmentBreakSplitsBranch) {
  // break(seg_i2): i2 loses both; everything else is recoverable by
  // deselecting m1's content branch.
  const rsn::Network net = makeFig1Network();
  sp::DecompositionTree tree = sp::DecompositionTree::build(net);
  tree.annotate(rsn::makeFig1Spec(net));
  const AccessibilityLoss loss = lossUnderFaultTree(
      tree, Fault::segmentBreak(net.findSegment("seg_i2")));
  EXPECT_EQ(instrumentNames(net, loss.unobservable),
            (std::vector<std::string>{"i2"}));
  EXPECT_EQ(instrumentNames(net, loss.unsettable),
            (std::vector<std::string>{"i2"}));
}

TEST(FaultEffects, SibRegisterBreakSplitsUpstreamDownstream) {
  // break(sb1): i1 sits upstream of the register inside m0's branch ->
  // unobservable but still settable; i2/i3 sit downstream -> unsettable
  // but still observable.
  const rsn::Network net = makeFig1Network();
  sp::DecompositionTree tree = sp::DecompositionTree::build(net);
  tree.annotate(rsn::makeFig1Spec(net));
  const AccessibilityLoss loss =
      lossUnderFaultTree(tree, Fault::segmentBreak(net.findSegment("sb1")));
  EXPECT_EQ(instrumentNames(net, loss.unobservable),
            (std::vector<std::string>{"i1"}));
  EXPECT_EQ(instrumentNames(net, loss.unsettable),
            (std::vector<std::string>{"i2", "i3"}));
}

TEST(FaultEffects, TopLevelBreakHasNoIsolation) {
  // break(c0): c0 is the first top-level segment — everything downstream
  // loses settability, nothing was upstream.
  const rsn::Network net = makeFig1Network();
  sp::DecompositionTree tree = sp::DecompositionTree::build(net);
  tree.annotate(rsn::makeFig1Spec(net));
  const AccessibilityLoss loss =
      lossUnderFaultTree(tree, Fault::segmentBreak(net.findSegment("c0")));
  EXPECT_EQ(loss.unobservable.count(), 0u);
  EXPECT_EQ(instrumentNames(net, loss.unsettable),
            (std::vector<std::string>{"i1", "i2", "i3"}));
}

TEST(FaultEffects, DamageOfLossMatchesWeights) {
  const rsn::Network net = makeFig1Network();
  const auto spec = rsn::makeFig1Spec(net);
  sp::DecompositionTree tree = sp::DecompositionTree::build(net);
  tree.annotate(spec);
  const Fault f = Fault::muxStuck(net.findMux("m0"), 1);
  const auto loss = lossUnderFaultTree(tree, f);
  // All obs (9) + all set (9).
  EXPECT_EQ(damageOfLoss(spec, loss), 18u);
  EXPECT_EQ(damageUnderFaultTree(tree, f), 18u);
}

TEST(FaultEffects, TreeAndGraphOraclesAgreeOnFig1) {
  const rsn::Network net = makeFig1Network();
  const auto spec = rsn::makeFig1Spec(net);
  sp::DecompositionTree tree = sp::DecompositionTree::build(net);
  tree.annotate(spec);
  const rsn::GraphView gv = rsn::buildGraphView(net);
  const FaultUniverse universe(net);
  for (const Fault& f : universe.faults()) {
    const auto t = lossUnderFaultTree(tree, f);
    const auto g = lossUnderFaultGraph(net, gv, f);
    EXPECT_EQ(t.unobservable, g.unobservable) << describe(net, f);
    EXPECT_EQ(t.unsettable, g.unsettable) << describe(net, f);
    EXPECT_EQ(damageUnderFaultTree(tree, f), damageOfLoss(spec, t))
        << describe(net, f);
  }
}

// Property sweep: the two independent fault-effect implementations agree
// on every fault of randomly generated networks.
class FaultOracleEquivalence : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(FaultOracleEquivalence, TreeMatchesGraph) {
  Rng rng(GetParam());
  const rsn::Network net = test::randomNetwork(rng);
  const auto spec = test::randomSpecFor(net, rng);
  sp::DecompositionTree tree = sp::DecompositionTree::build(net);
  tree.annotate(spec);
  const rsn::GraphView gv = rsn::buildGraphView(net);
  const FaultUniverse universe(net);
  for (const Fault& f : universe.faults()) {
    const auto t = lossUnderFaultTree(tree, f);
    const auto g = lossUnderFaultGraph(net, gv, f);
    ASSERT_EQ(t.unobservable, g.unobservable)
        << net.name() << " seed=" << GetParam() << " " << describe(net, f);
    ASSERT_EQ(t.unsettable, g.unsettable)
        << net.name() << " seed=" << GetParam() << " " << describe(net, f);
    ASSERT_EQ(damageUnderFaultTree(tree, f), damageOfLoss(spec, t))
        << describe(net, f);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultOracleEquivalence,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace rrsn::fault

#include <gtest/gtest.h>

#include "crit/analyzer.hpp"
#include "rsn/example_networks.hpp"
#include "test_util.hpp"

namespace rrsn::crit {
namespace {

using rsn::makeFig1Network;
using rsn::makeFig1Spec;
using rsn::PrimitiveRef;

std::uint64_t damageOfNamed(const rsn::Network& net,
                            const CriticalityResult& res,
                            const std::string& name) {
  const rsn::SegmentId seg = net.findSegment(name);
  if (seg != rsn::kNone)
    return res.damageOf(net.linearId({PrimitiveRef::Kind::Segment, seg}));
  const rsn::MuxId mux = net.findMux(name);
  EXPECT_NE(mux, rsn::kNone) << name;
  return res.damageOf(net.linearId({PrimitiveRef::Kind::Mux, mux}));
}

TEST(Criticality, Fig1GoldenDamages) {
  // Hand-computed per-primitive damages for the Fig. 1 example with
  // weights i1=(4,1), i2=(3,3), i3=(2,5); mux policy = worst case.
  const rsn::Network net = makeFig1Network();
  const CriticalityAnalyzer analyzer(net, makeFig1Spec(net));
  const CriticalityResult res = analyzer.run();

  EXPECT_EQ(damageOfNamed(net, res, "c0"), 9u);       // all set weights
  EXPECT_EQ(damageOfNamed(net, res, "c1"), 9u);       // all obs weights
  EXPECT_EQ(damageOfNamed(net, res, "c2"), 9u);       // branch obs weights
  EXPECT_EQ(damageOfNamed(net, res, "sb1"), 12u);     // 4 + (3 + 5)
  EXPECT_EQ(damageOfNamed(net, res, "seg_i1"), 5u);   // own 4+1
  EXPECT_EQ(damageOfNamed(net, res, "seg_i2"), 6u);   // own 3+3
  EXPECT_EQ(damageOfNamed(net, res, "seg_i3"), 7u);   // own 2+5
  EXPECT_EQ(damageOfNamed(net, res, "sb1_mux"), 5u);  // hide i1
  EXPECT_EQ(damageOfNamed(net, res, "m1"), 6u);
  EXPECT_EQ(damageOfNamed(net, res, "m2"), 7u);
  EXPECT_EQ(damageOfNamed(net, res, "m0"), 18u);      // hide the branch

  EXPECT_EQ(res.totalDamage(), 93u);
}

TEST(Criticality, M0IsTheMostCriticalPrimitive) {
  const rsn::Network net = makeFig1Network();
  const CriticalityResult res =
      CriticalityAnalyzer(net, makeFig1Spec(net)).run();
  const auto order = res.ranking();
  EXPECT_EQ(net.primitiveName(net.refOf(order[0])), "m0");
}

TEST(Criticality, ReportListsTopPrimitives) {
  const rsn::Network net = makeFig1Network();
  const CriticalityResult res =
      CriticalityAnalyzer(net, makeFig1Spec(net)).run();
  const std::string report = res.report(3).render();
  EXPECT_NE(report.find("m0"), std::string::npos);
  EXPECT_NE(report.find("mux"), std::string::npos);
  EXPECT_EQ(res.report(100).rowCount(), net.primitiveCount());
}

TEST(Criticality, MuxPolicies) {
  const rsn::Network net = makeFig1Network();
  const auto spec = makeFig1Spec(net);
  const auto damage = [&](MuxDamagePolicy policy) {
    AnalysisOptions opt;
    opt.muxPolicy = policy;
    const auto res = CriticalityAnalyzer(net, spec, opt).run();
    return damageOfNamed(net, res, "m0");
  };
  // m0: stuck@1 loses 18, stuck@0 loses 0.
  EXPECT_EQ(damage(MuxDamagePolicy::WorstCase), 18u);
  EXPECT_EQ(damage(MuxDamagePolicy::Sum), 18u);
  EXPECT_EQ(damage(MuxDamagePolicy::Mean), 9u);
}

TEST(Criticality, BruteForceMatchesFastOnFig1) {
  const rsn::Network net = makeFig1Network();
  const auto spec = makeFig1Spec(net);
  for (const MuxDamagePolicy policy :
       {MuxDamagePolicy::WorstCase, MuxDamagePolicy::Sum,
        MuxDamagePolicy::Mean}) {
    AnalysisOptions opt;
    opt.muxPolicy = policy;
    const auto fast = CriticalityAnalyzer(net, spec, opt).run();
    const auto brute = bruteForceAnalysis(net, spec, opt);
    EXPECT_EQ(fast.damages(), brute.damages());
  }
}

TEST(Criticality, ZeroWeightsZeroDamage) {
  const rsn::Network net = makeFig1Network();
  const rsn::CriticalitySpec zero(net.instruments().size());
  const auto res = CriticalityAnalyzer(net, zero).run();
  EXPECT_EQ(res.totalDamage(), 0u);
}

TEST(Criticality, HardenedPrimitiveContributesNoDamage) {
  // Eq. 2-3 semantics: hardening removes d_j from the sum; handled by the
  // optimizer as damageTotal - sum(gains).  Check consistency here.
  const rsn::Network net = makeFig1Network();
  const auto res = CriticalityAnalyzer(net, makeFig1Spec(net)).run();
  std::uint64_t remaining = res.totalDamage();
  remaining -= damageOfNamed(net, res, "m0");
  EXPECT_EQ(remaining, 75u);
}

// Property: fast hierarchical analysis == brute-force graph analysis on
// random networks with random specifications.
class AnalyzerEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalyzerEquivalence, FastMatchesBruteForce) {
  Rng rng(GetParam() * 1000 + 17);
  const rsn::Network net = test::randomNetwork(rng);
  const auto spec = test::randomSpecFor(net, rng);
  const auto fast = CriticalityAnalyzer(net, spec).run();
  const auto brute = bruteForceAnalysis(net, spec);
  ASSERT_EQ(fast.damages(), brute.damages()) << "seed=" << GetParam();
  EXPECT_EQ(fast.totalDamage(), brute.totalDamage());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyzerEquivalence,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace rrsn::crit

// Observability layer tests: the recorder lifecycle, span begin/end
// balance, deterministic cross-thread aggregation, ring-drop accounting
// and the export schemas.
//
// The suite manages enable()/disable()/reset() explicitly in every test:
// the CI smoke job runs the whole test binary with RRSN_TRACE=1, which
// auto-enables recording at the first hot-path hit, so no test may
// assume the recorder starts out disabled.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "support/status.hpp"

namespace rrsn {
namespace {

/// Scheduling-independent view of a snapshot: everything except wall
/// times, merge order and thread identities.
struct AggregateView {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::uint64_t> spanCounts;
  std::map<std::string, std::vector<std::uint64_t>> histograms;

  bool operator==(const AggregateView&) const = default;
};

AggregateView aggregates(const obs::Snapshot& snap) {
  AggregateView view;
  for (const auto& [id, v] : snap.counters) view.counters[snap.names[id]] = v;
  for (const auto& [id, s] : snap.spans)
    view.spanCounts[snap.names[id]] = s.count;
  for (const auto& [id, h] : snap.histograms) {
    std::vector<std::uint64_t> packed{h.count, h.sum, h.min, h.max};
    packed.insert(packed.end(), h.buckets.begin(), h.buckets.end());
    view.histograms[snap.names[id]] = std::move(packed);
  }
  return view;
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Re-arm with the default ring capacity (enable() only applies the
    // capacity while inactive; reset() resizes existing buffers to it),
    // wipe whatever earlier tests recorded, then start disabled.
    obs::disable();
    obs::enable();
    obs::reset();
    obs::disable();
  }
  void TearDown() override {
    obs::disable();
    obs::enable();
    obs::reset();
    obs::disable();
  }
};

TEST_F(ObsTest, RegistryIsIdempotent) {
  const obs::MetricId a = obs::counter("obs_test.reg");
  const obs::MetricId b = obs::counter("obs_test.reg");
  EXPECT_EQ(a, b);
  EXPECT_NE(obs::span("obs_test.reg_span"), a);
  // Re-registering a name as a different kind is a caller bug and fails
  // loudly instead of silently merging a span into a counter.
  EXPECT_THROW((void)obs::span("obs_test.reg"), Error);
}

TEST_F(ObsTest, DisabledPathRecordsNothing) {
  ASSERT_FALSE(obs::enabled());
  const obs::MetricId c = obs::counter("obs_test.disabled_counter");
  const obs::MetricId h = obs::histogram("obs_test.disabled_hist");
  obs::count(c, 5);
  obs::sample(h, 42);
  { RRSN_OBS_SPAN("obs_test.disabled_span"); }
  const AggregateView view = aggregates(obs::snapshot());
  EXPECT_EQ(view.counters.count("obs_test.disabled_counter"), 0u);
  EXPECT_EQ(view.histograms.count("obs_test.disabled_hist"), 0u);
  EXPECT_EQ(view.spanCounts.count("obs_test.disabled_span"), 0u);
  EXPECT_TRUE(obs::checkSpanBalance().ok());
}

TEST_F(ObsTest, SpanNestingRecordsDepthsAndAggregates) {
  obs::enable();
  {
    RRSN_OBS_SPAN("obs_test.outer");
    {
      RRSN_OBS_SPAN("obs_test.inner");
    }
    {
      RRSN_OBS_SPAN("obs_test.inner");
    }
  }
  const obs::Snapshot snap = obs::snapshot();
  const AggregateView view = aggregates(snap);
  EXPECT_EQ(view.spanCounts.at("obs_test.outer"), 1u);
  EXPECT_EQ(view.spanCounts.at("obs_test.inner"), 2u);

  // Merged events are sorted by begin time: outer first (depth 0), the
  // two inner intervals nested one level down and non-overlapping.
  ASSERT_EQ(snap.events.size(), 3u);
  EXPECT_EQ(snap.names[snap.events[0].name], "obs_test.outer");
  EXPECT_EQ(snap.events[0].depth, 0u);
  EXPECT_EQ(snap.names[snap.events[1].name], "obs_test.inner");
  EXPECT_EQ(snap.events[1].depth, 1u);
  EXPECT_LE(snap.events[1].endNs, snap.events[2].beginNs);
  EXPECT_LE(snap.events[0].beginNs, snap.events[1].beginNs);
  EXPECT_LE(snap.events[2].endNs, snap.events[0].endNs);
  EXPECT_TRUE(snap.violations.empty());
  EXPECT_TRUE(obs::checkSpanBalance().ok());
}

TEST_F(ObsTest, HistogramBucketsAreLog2ByBitWidth) {
  obs::enable();
  const obs::MetricId h = obs::histogram("obs_test.hist");
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{2},
                          std::uint64_t{3}, std::uint64_t{4},
                          std::uint64_t{1000}}) {
    obs::sample(h, v);
  }
  const AggregateView view = aggregates(obs::snapshot());
  const std::vector<std::uint64_t>& packed =
      view.histograms.at("obs_test.hist");
  ASSERT_EQ(packed.size(), 4u + 64u);
  EXPECT_EQ(packed[0], 6u);     // count
  EXPECT_EQ(packed[1], 1010u);  // sum
  EXPECT_EQ(packed[2], 0u);     // min
  EXPECT_EQ(packed[3], 1000u);  // max
  const auto bucket = [&](std::size_t k) { return packed[4 + k]; };
  EXPECT_EQ(bucket(0), 1u);   // 0
  EXPECT_EQ(bucket(1), 1u);   // 1
  EXPECT_EQ(bucket(2), 2u);   // 2, 3
  EXPECT_EQ(bucket(3), 1u);   // 4
  EXPECT_EQ(bucket(10), 1u);  // 1000 in [512, 1024)
}

TEST_F(ObsTest, AggregatesAreIdenticalAcrossThreadCounts) {
  const obs::MetricId c = obs::counter("obs_test.det_counter");
  const obs::MetricId h = obs::histogram("obs_test.det_hist");
  const obs::MetricId s = obs::span("obs_test.det_span");
  const auto workload = [&] {
    parallelFor(
        256,
        [&](std::size_t i) {
          obs::ScopedSpan span(s);
          obs::count(c, i + 1);
          obs::sample(h, static_cast<std::uint64_t>(i * i));
        },
        /*grain=*/16);
  };

  setThreadCount(1);
  obs::enable();
  workload();
  const AggregateView serial = aggregates(obs::snapshot());

  obs::disable();
  obs::enable();
  obs::reset();
  setThreadCount(4);
  workload();
  const AggregateView pooled = aggregates(obs::snapshot());
  setThreadCount(0);  // restore the environment-configured pool

  // Wall times differ; everything counted must not.  The merge is a
  // commutative fold over per-thread buffers, so the thread count (and
  // which lane ran which chunk) is invisible in the aggregates.
  EXPECT_EQ(serial, pooled);
  EXPECT_EQ(serial.counters.at("obs_test.det_counter"),
            256u * 257u / 2u);
  EXPECT_EQ(serial.spanCounts.at("obs_test.det_span"), 256u);
}

TEST_F(ObsTest, UnbalancedSpansAreReportedNotFatal) {
  obs::enable();
  const obs::MetricId id = obs::span("obs_test.unbalanced");

  // End without begin: recorded as a violation, the event is dropped.
  obs::spanEnd(id);
  {
    const obs::Snapshot snap = obs::snapshot();
    ASSERT_EQ(snap.violations.size(), 1u);
    EXPECT_NE(snap.violations[0].find("without a matching begin"),
              std::string::npos);
  }

  // Begin without end: the span shows up as still open.
  obs::disable();
  obs::enable();
  obs::reset();
  obs::spanBegin(id);
  const Status open = obs::checkSpanBalance();
  ASSERT_FALSE(open.ok());
  EXPECT_EQ(open.code(), StatusCode::kInternal);
  EXPECT_NE(open.message().find("obs_test.unbalanced"), std::string::npos);
  EXPECT_THROW(obs::raiseIfError(open), obs::InvariantError);
  obs::spanEnd(id);  // close it so TearDown's reset sees a clean stack
  EXPECT_TRUE(obs::checkSpanBalance().ok());
}

TEST_F(ObsTest, RingDropsAreCountedAndAggregatesStayExact) {
  obs::disable();
  obs::enable(obs::Options{/*ringCapacity=*/4});
  obs::reset();  // resize this thread's existing buffer to the new cap
  const obs::MetricId id = obs::span("obs_test.ring");
  for (int k = 0; k < 10; ++k) {
    obs::ScopedSpan span(id);
  }
  const obs::Snapshot snap = obs::snapshot();
  EXPECT_EQ(snap.droppedEvents, 6u);
  EXPECT_EQ(snap.events.size(), 4u);
  // The ring keeps the newest events; aggregates never drop anything.
  for (const obs::TraceEvent& ev : snap.events)
    EXPECT_EQ(snap.names[ev.name], "obs_test.ring");
  EXPECT_GE(snap.events.front().seq, 6u);
  EXPECT_EQ(aggregates(snap).spanCounts.at("obs_test.ring"), 10u);
}

TEST_F(ObsTest, TraceEventJsonHasChromeSchema) {
  obs::enable();
  {
    RRSN_OBS_SPAN("obs_test.trace_outer");
    RRSN_OBS_SPAN("obs_test.trace_inner");
  }
  const obs::Snapshot snap = obs::snapshot();
  const json::Value doc = json::parse(obs::traceEventJson(snap));
  EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");
  EXPECT_EQ(doc.at("otherData").at("producer").asString(), "rrsn_obs");
  EXPECT_EQ(doc.at("otherData").at("dropped_events").asUnsigned(), 0u);
  const json::Array& events = doc.at("traceEvents").asArray();
  ASSERT_EQ(events.size(), 2u);
  for (const json::Value& ev : events) {
    EXPECT_EQ(ev.at("ph").asString(), "X");
    EXPECT_EQ(ev.at("cat").asString(), "rrsn");
    EXPECT_GE(ev.at("dur").asDouble(), 0.0);
    (void)ev.at("ts").asDouble();
    (void)ev.at("pid").asUnsigned();
    (void)ev.at("tid").asUnsigned();
  }
  EXPECT_EQ(events[0].at("name").asString(), "obs_test.trace_outer");
  EXPECT_EQ(events[1].at("name").asString(), "obs_test.trace_inner");
}

TEST_F(ObsTest, MetricsJsonIsCanonicalAndComplete) {
  obs::enable();
  const obs::MetricId c = obs::counter("obs_test.metrics_counter");
  const obs::MetricId h = obs::histogram("obs_test.metrics_hist");
  obs::count(c, 3);
  obs::sample(h, 7);
  { RRSN_OBS_SPAN("obs_test.metrics_span"); }
  const obs::Snapshot snap = obs::snapshot();
  const json::Value doc = obs::metricsJson(snap);
  EXPECT_EQ(doc.at("counters").at("obs_test.metrics_counter").asUnsigned(),
            3u);
  EXPECT_EQ(doc.at("spans").at("obs_test.metrics_span").at("count")
                .asUnsigned(),
            1u);
  EXPECT_EQ(doc.at("histograms").at("obs_test.metrics_hist").at("sum")
                .asUnsigned(),
            7u);
  EXPECT_EQ(doc.at("violations").asArray().size(), 0u);
  EXPECT_EQ(doc.at("dropped_events").asUnsigned(), 0u);
  EXPECT_GE(doc.at("threads").asUnsigned(), 1u);
  // Canonical: same snapshot serializes byte-identically.
  EXPECT_EQ(json::serialize(doc, 1), json::serialize(obs::metricsJson(snap), 1));
  // The summary table renders one row per metric without throwing.
  EXPECT_FALSE(obs::summaryTable(snap).render().empty());
}

TEST_F(ObsTest, RaiseIfErrorCarriesTypedStatus) {
  obs::raiseIfError(Status{});  // ok is a no-op
  try {
    obs::raiseIfError(Status::internal("probe accounting diverged"));
    FAIL() << "raiseIfError(kInternal) must throw";
  } catch (const obs::InvariantError& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kInternal);
    EXPECT_NE(std::string(e.what()).find("probe accounting diverged"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace rrsn

#include <gtest/gtest.h>

#include "rsn/example_networks.hpp"
#include "rsn/graph_view.hpp"
#include "sp/decomposition.hpp"
#include "sp/sp_reduce.hpp"
#include "test_util.hpp"

namespace rrsn::sp {
namespace {

using rsn::makeFig1Network;
using rsn::makeFig1Spec;

TEST(Decomposition, Fig1TreeShape) {
  const rsn::Network net = makeFig1Network();
  const DecompositionTree tree = DecompositionTree::build(net);
  // In-order leaves = scan order.
  const auto order = tree.scanOrder();
  std::vector<std::string> names;
  for (auto s : order) names.push_back(net.segment(s).name);
  EXPECT_EQ(names,
            (std::vector<std::string>{"c0", "seg_i1", "sb1", "seg_i2",
                                      "seg_i3", "c2", "c1"}));
}

TEST(Decomposition, ParentalParallelMatchesPaper) {
  // "m0 is referred as a parent of c2" (Sec. III).
  const rsn::Network net = makeFig1Network();
  const DecompositionTree tree = DecompositionTree::build(net);
  const TreeId c2leaf = tree.leafOfSegment(net.findSegment("c2"));
  const TreeId parental = tree.parentalParallel(c2leaf);
  ASSERT_NE(parental, kNoTree);
  EXPECT_EQ(tree.node(parental).prim, net.findMux("m0"));

  // Top-level segments have no parental parallel.
  const TreeId c0leaf = tree.leafOfSegment(net.findSegment("c0"));
  EXPECT_EQ(tree.parentalParallel(c0leaf), kNoTree);
}

TEST(Decomposition, AnnotationSums) {
  const rsn::Network net = makeFig1Network();
  DecompositionTree tree = DecompositionTree::build(net);
  tree.annotate(makeFig1Spec(net));
  const TreeNode& root = tree.node(tree.root());
  EXPECT_EQ(root.sumObs, 9u);   // 4 + 3 + 2
  EXPECT_EQ(root.sumSet, 9u);   // 1 + 3 + 5
  EXPECT_EQ(root.instruments, 3u);

  // m0's content branch carries all three instruments.
  const auto& branches = tree.branchesOfMux(net.findMux("m0"));
  ASSERT_EQ(branches.size(), 2u);
  EXPECT_EQ(tree.node(branches[0]).instruments, 3u);
  EXPECT_EQ(tree.node(branches[1]).instruments, 0u);
}

TEST(Decomposition, BalancedSeriesDepthIsLogarithmic) {
  // A 4096-segment flat chain must produce an O(log n) tree, not a spine.
  rsn::NetworkBuilder b("chain");
  std::vector<rsn::NodeId> parts;
  for (int i = 0; i < 4096; ++i)
    parts.push_back(b.segment("s" + std::to_string(i), 1));
  b.setTop(b.chain(std::move(parts)));
  const rsn::Network net = b.build();
  const DecompositionTree tree = DecompositionTree::build(net);
  EXPECT_LE(tree.depth(), 14u);
  EXPECT_GE(tree.depth(), 12u);
}

TEST(Decomposition, MultiBranchMuxBinarized) {
  rsn::NetworkBuilder b("multi");
  auto s0 = b.segment("a", 1, "ia");
  auto s1 = b.segment("b", 1, "ib");
  auto s2 = b.segment("c", 1, "ic");
  auto m = b.mux("m", {s0, s1, s2});
  b.setTop(m);
  const rsn::Network net = b.build();
  const DecompositionTree tree = DecompositionTree::build(net);
  const auto& branches = tree.branchesOfMux(0);
  ASSERT_EQ(branches.size(), 3u);
  // The parallel group is a chain of two binary P vertices, same mux.
  const TreeId top = tree.parallelOfMux(0);
  EXPECT_EQ(tree.node(top).kind, TreeKind::Parallel);
  EXPECT_EQ(tree.node(top).prim, 0u);
  const TreeId left = tree.node(top).left;
  EXPECT_EQ(tree.node(left).kind, TreeKind::Parallel);
  EXPECT_EQ(tree.node(left).prim, 0u);
}

TEST(Decomposition, LeafCountMatchesSegments) {
  Rng rng(5);
  for (int round = 0; round < 8; ++round) {
    const rsn::Network net = test::randomNetwork(rng);
    const DecompositionTree tree = DecompositionTree::build(net);
    EXPECT_EQ(tree.scanOrder().size(), net.segments().size());
    // Every segment has a leaf, and the leaf points back at it.
    for (rsn::SegmentId s = 0; s < net.segments().size(); ++s) {
      const TreeId leaf = tree.leafOfSegment(s);
      EXPECT_EQ(tree.node(leaf).kind, TreeKind::LeafSegment);
      EXPECT_EQ(tree.node(leaf).prim, s);
    }
  }
}

TEST(Decomposition, AsciiAndDotRender) {
  const rsn::Network net = makeFig1Network();
  DecompositionTree tree = DecompositionTree::build(net);
  tree.annotate(makeFig1Spec(net));
  const std::string ascii = tree.toAscii();
  EXPECT_NE(ascii.find("P[m0]"), std::string::npos);
  EXPECT_NE(ascii.find("seg_i2"), std::string::npos);
  EXPECT_NE(ascii.find("(do=3, ds=3)"), std::string::npos);
  const std::string dot = tree.toDot("fig3");
  EXPECT_NE(dot.find("palegreen"), std::string::npos);   // P vertices
  EXPECT_NE(dot.find("lightblue"), std::string::npos);   // S vertices
}

// ------------------------------------------------------------- SP check

TEST(SpReduce, Fig1GraphIsSeriesParallel) {
  const rsn::Network net = makeFig1Network();
  const rsn::GraphView gv = rsn::buildGraphView(net);
  const SpCheck check =
      checkSeriesParallel(gv.graph, gv.scanIn, gv.scanOut);
  EXPECT_TRUE(check.isSeriesParallel);
  EXPECT_TRUE(check.stuckVertices.empty());
}

TEST(SpReduce, AllRandomNetworksAreSp) {
  Rng rng(17);
  for (int round = 0; round < 8; ++round) {
    const rsn::Network net = test::randomNetwork(rng);
    const rsn::GraphView gv = rsn::buildGraphView(net);
    EXPECT_TRUE(checkSeriesParallel(gv.graph, gv.scanIn, gv.scanOut)
                    .isSeriesParallel);
  }
}

/// Wheatstone bridge: the canonical non-SP two-terminal DAG.
graph::Digraph bridge(graph::VertexId& s, graph::VertexId& t) {
  graph::Digraph g;
  s = g.addVertex("s");
  const auto a = g.addVertex("a");
  const auto b = g.addVertex("b");
  t = g.addVertex("t");
  g.addEdge(s, a);
  g.addEdge(s, b);
  g.addEdge(a, b);  // the bridge edge
  g.addEdge(a, t);
  g.addEdge(b, t);
  return g;
}

TEST(SpReduce, BridgeIsNotSp) {
  graph::VertexId s, t;
  const graph::Digraph g = bridge(s, t);
  const SpCheck check = checkSeriesParallel(g, s, t);
  EXPECT_FALSE(check.isSeriesParallel);
  EXPECT_FALSE(check.stuckVertices.empty());
}

TEST(SpReduce, VirtualizationMakesBridgeSp) {
  graph::VertexId s, t;
  const graph::Digraph g = bridge(s, t);
  const Virtualization virt = virtualizeToSp(g, s, t);
  EXPECT_GT(virt.clonesAdded, 0u);
  EXPECT_TRUE(
      checkSeriesParallel(virt.graph, s, t).isSeriesParallel);
  // Clones map back to original vertices.
  for (graph::VertexId v = 0; v < virt.graph.vertexCount(); ++v)
    EXPECT_LT(virt.originalOf[v], g.vertexCount());
}

TEST(SpReduce, VirtualizationIsIdentityOnSpGraphs) {
  const rsn::Network net = makeFig1Network();
  const rsn::GraphView gv = rsn::buildGraphView(net);
  const Virtualization virt =
      virtualizeToSp(gv.graph, gv.scanIn, gv.scanOut);
  EXPECT_EQ(virt.clonesAdded, 0u);
  EXPECT_EQ(virt.graph.vertexCount(), gv.graph.vertexCount());
}

TEST(SpReduce, RequiresTwoTerminalDag) {
  graph::Digraph g;
  const auto a = g.addVertex();
  const auto b = g.addVertex();
  g.addEdge(a, b);
  g.addEdge(b, a);
  EXPECT_THROW(checkSeriesParallel(g, a, b), Error);
}

}  // namespace
}  // namespace rrsn::sp

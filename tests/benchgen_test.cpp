#include <gtest/gtest.h>

#include "benchgen/registry.hpp"
#include "rsn/graph_view.hpp"
#include "sp/decomposition.hpp"
#include "sp/sp_reduce.hpp"

namespace rrsn::benchgen {
namespace {

TEST(Registry, HasAll24Table1Rows) {
  const auto& table = table1Benchmarks();
  EXPECT_EQ(table.size(), 24u);
  EXPECT_EQ(table.front().name, "TreeFlat");
  EXPECT_EQ(table.back().name, "MBIST_100_100_5");
}

TEST(Registry, FindByName) {
  const BenchmarkSpec& s = findBenchmark("p93791");
  EXPECT_EQ(s.segments, 1241u);
  EXPECT_EQ(s.muxes, 653u);
  EXPECT_EQ(s.generations, 3500u);
  EXPECT_THROW(findBenchmark("nope"), ParseError);
}

TEST(Registry, PopulationRuleFollowsPaper) {
  EXPECT_EQ(findBenchmark("TreeFlat").populationSize(), 100u);      // 24 muxes
  EXPECT_EQ(findBenchmark("p34392").populationSize(), 300u);        // 142 muxes
  EXPECT_EQ(findBenchmark("MBIST_1_5_5").populationSize(), 100u);   // 15 muxes
  EXPECT_EQ(findBenchmark("MBIST_5_100_20").populationSize(), 300u);
}

TEST(Registry, PaperNumbersPresent) {
  const BenchmarkSpec& s = findBenchmark("MBIST_5_100_100");
  EXPECT_EQ(s.paper.maxDamage, 2138755955ULL);
  EXPECT_EQ(s.paper.minCostCost, 17066u);
  EXPECT_STREQ(s.paper.time, "92:01");
}

// Exact-count property over the small/medium benchmarks (the huge MBIST
// networks are covered by a separate single test to keep runtime sane).
class CountsMatchTable1 : public ::testing::TestWithParam<std::string> {};

TEST_P(CountsMatchTable1, SegmentsAndMuxes) {
  const BenchmarkSpec& spec = findBenchmark(GetParam());
  const rsn::Network net = buildBenchmark(spec);
  EXPECT_EQ(net.segments().size(), spec.segments);
  EXPECT_EQ(net.muxes().size(), spec.muxes);
  // Generators are deterministic.
  const rsn::Network again = buildBenchmark(spec);
  EXPECT_EQ(again.segments().size(), net.segments().size());
  EXPECT_EQ(again.segment(0).name, net.segment(0).name);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, CountsMatchTable1,
    ::testing::Values("TreeFlat", "TreeUnbalanced", "TreeBalanced",
                      "TreeFlat_Ex", "q12710", "a586710", "p34392", "t512505",
                      "p22810", "p93791", "MBIST_1_5_5", "MBIST_1_5_20",
                      "MBIST_1_20_20", "MBIST_2_5_5", "MBIST_2_5_20",
                      "MBIST_2_20_20", "MBIST_5_5_5", "MBIST_5_20_20"));

TEST(LargeBenchmarks, CountsMatchTable1) {
  for (const char* name :
       {"MBIST_5_100_20", "MBIST_20_20_20", "MBIST_100_20_5"}) {
    const BenchmarkSpec& spec = findBenchmark(name);
    const rsn::Network net = buildBenchmark(spec);
    EXPECT_EQ(net.segments().size(), spec.segments) << name;
    EXPECT_EQ(net.muxes().size(), spec.muxes) << name;
  }
}

TEST(Generators, SmallNetworksAreSeriesParallel) {
  for (const char* name : {"TreeFlat", "TreeUnbalanced", "TreeBalanced",
                           "TreeFlat_Ex", "q12710", "a586710", "MBIST_1_5_5"}) {
    const rsn::Network net = buildBenchmark(name);
    const rsn::GraphView gv = rsn::buildGraphView(net);
    EXPECT_TRUE(sp::checkSeriesParallel(gv.graph, gv.scanIn, gv.scanOut)
                    .isSeriesParallel)
        << name;
  }
}

TEST(Generators, EveryInstrumentSegmentHasInstrument) {
  const rsn::Network net = buildBenchmark("q12710");
  std::size_t withInst = 0;
  for (const auto& seg : net.segments()) withInst += seg.instrument != rsn::kNone;
  EXPECT_EQ(withInst, net.instruments().size());
  EXPECT_GT(net.instruments().size(), 0u);
}

TEST(Generators, TreeUnbalancedIsDeeplyNested) {
  const rsn::Network net = buildBenchmark("TreeUnbalanced");
  EXPECT_EQ(net.stats().maxMuxNesting, 28u);  // one level per SIB
}

TEST(Generators, TreeBalancedHasLogDepthNesting) {
  const rsn::Network net = buildBenchmark("TreeBalanced");
  const auto nesting = net.stats().maxMuxNesting;
  EXPECT_GE(nesting, 4u);
  EXPECT_LE(nesting, 8u);
}

TEST(Generators, SocHasTwoHierarchyLevels) {
  const rsn::Network net = buildBenchmark("p34392");
  EXPECT_EQ(net.stats().maxMuxNesting, 2u);
}

TEST(Generators, MbistHasControllerMemoryHierarchy) {
  const rsn::Network net = buildBenchmark("MBIST_5_5_5");
  EXPECT_EQ(net.stats().maxMuxNesting, 2u);  // controller SIB > memory SIB
  // All muxes are SIB muxes (controlled by their register).
  for (const auto& mux : net.muxes())
    EXPECT_NE(mux.controlSegment, rsn::kNone);
}

TEST(Generators, DecompositionScalesToMediumBenchmarks) {
  const rsn::Network net = buildBenchmark("MBIST_2_20_20");  // 12k segments
  const auto tree = sp::DecompositionTree::build(net);
  EXPECT_EQ(tree.scanOrder().size(), net.segments().size());
  EXPECT_LE(tree.depth(), 40u);  // balanced series keep the depth low
}

}  // namespace
}  // namespace rrsn::benchgen

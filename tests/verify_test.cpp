// Static robustness certifier: exhaustive agreement with the campaign
// accessibility oracle on the paper networks, witness sanity, hardened
// exclusion of fault sites, Unknown accounting under an exhausted
// fixpoint budget, thread-count byte-determinism of the canonical JSON
// report, and the SARIF export shape.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "benchgen/registry.hpp"
#include "campaign/campaign.hpp"
#include "diag/batched.hpp"
#include "fault/fault.hpp"
#include "rsn/example_networks.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"
#include "test_util.hpp"
#include "verify/certifier.hpp"

namespace rrsn::verify {
namespace {

/// Asserts every certifier verdict on `net` against the batched
/// syndrome oracle over the full single-fault universe.  Proven must
/// coincide with oracle-accessible, Vulnerable with oracle-severed; the
/// default budget must leave nothing Unknown.
void expectExhaustiveAgreement(const rsn::Network& net) {
  const Certifier certifier(net);
  CertifyOptions options;
  options.crossCheck = false;  // this test IS the cross-check
  const CertificationResult result = certifier.run(options);
  EXPECT_EQ(result.summary().unknownCells(), 0u);

  const diag::BatchedSyndromeEngine oracle(net);
  for (std::size_t fi = 0; fi < result.universe.size(); ++fi) {
    const fault::Fault& f = result.universe[fi];
    const campaign::Expectation expect = campaign::expectedAccessibility(
        oracle, result.instruments, f, /*worker=*/0);
    for (std::size_t i = 0; i < result.instruments; ++i) {
      EXPECT_EQ(result.read(fi, i) == Verdict::Proven, expect.observable.test(i))
          << fault::describe(net, f) << " / read " << net.instrument(
                 static_cast<rsn::InstrumentId>(i)).name;
      EXPECT_EQ(result.write(fi, i) == Verdict::Proven, expect.settable.test(i))
          << fault::describe(net, f) << " / write " << net.instrument(
                 static_cast<rsn::InstrumentId>(i)).name;
    }
  }
}

TEST(Certifier, Fig1AgreesWithCampaignOracleExhaustively) {
  expectExhaustiveAgreement(rsn::makeFig1Network());
}

TEST(Certifier, TinyAgreesWithCampaignOracleExhaustively) {
  expectExhaustiveAgreement(rsn::makeTinyNetwork());
}

TEST(Certifier, RandomNetworksAgreeWithCampaignOracle) {
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    Rng rng(seed);
    expectExhaustiveAgreement(test::randomNetwork(rng));
  }
}

TEST(Certifier, SelfFaultWitnessOnOwnSegmentBreak) {
  const rsn::Network net = rsn::makeFig1Network();
  const Certifier certifier(net);
  const CertificationResult result = certifier.run();
  for (std::size_t i = 0; i < result.instruments; ++i) {
    if (!result.reachable.test(i)) continue;
    // Locate the break fault at the instrument's hosting segment.
    for (std::size_t fi = 0; fi < result.universe.size(); ++fi) {
      const fault::Fault& f = result.universe[fi];
      if (f.kind != fault::FaultKind::SegmentBreak ||
          f.prim != result.instrumentSegment[i])
        continue;
      EXPECT_EQ(result.read(fi, i), Verdict::Vulnerable);
      EXPECT_EQ(result.write(fi, i), Verdict::Vulnerable);
      const Witness w = result.readWitness(fi, i);
      EXPECT_EQ(w.kind, WitnessKind::SelfFault);
      EXPECT_EQ(w.subject, result.instrumentSegment[i]);
    }
  }
}

TEST(Certifier, WitnessKindsPartitionByVerdict) {
  const rsn::Network net = benchgen::buildBenchmark("q12710");
  const CertificationResult result = Certifier(net).run();
  bool sawDominatorCut = false;
  for (std::size_t fi = 0; fi < result.universe.size(); ++fi) {
    for (std::size_t i = 0; i < result.instruments; ++i) {
      for (const bool isRead : {true, false}) {
        const Verdict v = isRead ? result.read(fi, i) : result.write(fi, i);
        const Witness w =
            isRead ? result.readWitness(fi, i) : result.writeWitness(fi, i);
        if (v == Verdict::Proven) {
          EXPECT_TRUE(w.kind == WitnessKind::NonCut ||
                      w.kind == WitnessKind::StuckBenign ||
                      w.kind == WitnessKind::PathStrict ||
                      w.kind == WitnessKind::PathCleanSuffix ||
                      w.kind == WitnessKind::PathDepthBounded)
              << witnessKindName(w.kind);
        } else {
          ASSERT_EQ(v, Verdict::Vulnerable);
          EXPECT_TRUE(w.kind == WitnessKind::SelfFault ||
                      w.kind == WitnessKind::Unreachable ||
                      w.kind == WitnessKind::DominatorCut ||
                      w.kind == WitnessKind::ControlCollapse ||
                      w.kind == WitnessKind::GuardCut)
              << witnessKindName(w.kind);
          sawDominatorCut |= w.kind == WitnessKind::DominatorCut;
        }
      }
    }
  }
  EXPECT_TRUE(sawDominatorCut)
      << "a SoC-style network must expose at least one dominator cut";
}

TEST(Certifier, HardenedPlanShrinksTheFaultUniverse) {
  const rsn::Network net = rsn::makeFig1Network();
  const Certifier certifier(net);
  const CertificationResult full = certifier.run();

  // Harden every instrument-hosting segment: their breaks leave the
  // universe, and nothing else changes.
  CertifyOptions options;
  options.excludePrimitives = DynamicBitset(net.primitiveCount());
  std::set<std::uint32_t> hardened;
  for (const rsn::Instrument& inst : net.instruments()) {
    options.excludePrimitives.set(net.linearId(
        {rsn::PrimitiveRef::Kind::Segment, inst.segment}));
    hardened.insert(inst.segment);
  }
  const CertificationResult filtered = certifier.run(options);
  EXPECT_EQ(filtered.universe.size(), full.universe.size() - hardened.size());
  for (const fault::Fault& f : filtered.universe) {
    if (f.kind == fault::FaultKind::SegmentBreak) {
      EXPECT_EQ(hardened.count(f.prim), 0u)
          << "excluded primitive still in the universe";
    }
  }
}

TEST(Certifier, ExhaustedBudgetIsCountedUnknownNeverSilent) {
  const rsn::Network net = rsn::makeFig1Network();
  const Certifier certifier(net);
  CertifyOptions options;
  options.fixpointBudget = 0;  // every slow-tier row gives up immediately
  options.crossCheck = false;
  const CertificationResult result = certifier.run(options);
  const CertifySummary s = result.summary();
  EXPECT_GT(s.unknownCells(), 0u);
  // Fast-tier rows never touch the fixpoint, so they stay decided; the
  // Unknown count must be exactly the slow-tier rows, both directions.
  EXPECT_EQ(s.unknownRead, (s.faults - s.fastRows) * s.instruments);
  EXPECT_EQ(s.unknownWrite, (s.faults - s.fastRows) * s.instruments);
  for (std::size_t fi = 0; fi < result.universe.size(); ++fi) {
    for (std::size_t i = 0; i < result.instruments; ++i) {
      if (result.read(fi, i) != Verdict::Unknown) continue;
      EXPECT_EQ(result.readWitness(fi, i).kind, WitnessKind::Budget);
    }
  }
}

TEST(Certifier, JsonReportByteIdenticalAcrossThreadCounts) {
  const rsn::Network net = benchgen::buildBenchmark("TreeFlat");
  const std::size_t saved = threadCount();
  std::vector<std::string> reports;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    setThreadCount(threads);
    const Certifier certifier(net);
    reports.push_back(
        json::serialize(reportJson(net, certifier.run()), 1));
  }
  setThreadCount(saved);
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_EQ(reports[0], reports[1]);
  EXPECT_EQ(reports[0], reports[2]);
}

TEST(Certifier, SarifExportShape) {
  const rsn::Network net = rsn::makeFig1Network();
  const CertificationResult result = Certifier(net).run();
  const json::Value doc = sarifReport(net, result, "example:fig1");
  EXPECT_EQ(doc.at("version").asString(), "2.1.0");
  EXPECT_NE(doc.at("$schema").asString().find("sarif-2.1.0"),
            std::string::npos);
  const json::Value& run = doc.at("runs").asArray().at(0);
  EXPECT_EQ(run.at("tool").at("driver").at("name").asString(), "rrsn_verify");
  const std::set<std::string> known = {
      "verify.control-safety", "verify.single-fault", "verify.unknown",
      "verify.unreachable"};
  std::set<std::string> declared;
  for (const json::Value& rule : run.at("tool").at("driver").at("rules").asArray()) {
    declared.insert(rule.at("id").asString());
  }
  EXPECT_EQ(declared, known);
  const json::Array& results = run.at("results").asArray();
  ASSERT_GT(results.size(), 0u) << "fig1 has severing faults";
  bool sawSingleFault = false;
  for (const json::Value& item : results) {
    const std::string& rule = item.at("ruleId").asString();
    EXPECT_EQ(known.count(rule), 1u) << rule;
    sawSingleFault |= rule == "verify.single-fault";
    EXPECT_EQ(item.at("locations")
                  .asArray()
                  .at(0)
                  .at("physicalLocation")
                  .at("artifactLocation")
                  .at("uri")
                  .asString(),
              "example:fig1");
  }
  EXPECT_TRUE(sawSingleFault);
}

TEST(Certifier, CrossCheckModeReplaysThroughTheOracle) {
  const rsn::Network net = rsn::makeFig1Network();
  CertifyOptions options;
  options.crossCheck = true;
  options.crossCheckSampleEvery = 1;  // replay every row
  const CertificationResult result = Certifier(net).run(options);
  EXPECT_EQ(result.crossCheckedRowCount, result.universe.size())
      << "sampleEvery=1 must replay the whole universe";
}

}  // namespace
}  // namespace rrsn::verify

#include <gtest/gtest.h>

#include "graph/digraph.hpp"

namespace rrsn::graph {
namespace {

/// Builds the diamond s -> {a, b} -> t.
Digraph diamond(VertexId& s, VertexId& a, VertexId& b, VertexId& t) {
  Digraph g;
  s = g.addVertex("s");
  a = g.addVertex("a");
  b = g.addVertex("b");
  t = g.addVertex("t");
  g.addEdge(s, a);
  g.addEdge(s, b);
  g.addEdge(a, t);
  g.addEdge(b, t);
  return g;
}

TEST(Digraph, BasicConstruction) {
  Digraph g;
  const auto v0 = g.addVertex("x");
  const auto v1 = g.addVertex("y");
  g.addEdge(v0, v1);
  EXPECT_EQ(g.vertexCount(), 2u);
  EXPECT_EQ(g.edgeCount(), 1u);
  EXPECT_EQ(g.label(v0), "x");
  EXPECT_EQ(g.successors(v0), std::vector<VertexId>{v1});
  EXPECT_EQ(g.predecessors(v1), std::vector<VertexId>{v0});
  EXPECT_THROW(g.addEdge(v0, 5), Error);
}

TEST(Digraph, TopologicalOrderValid) {
  VertexId s, a, b, t;
  const Digraph g = diamond(s, a, b, t);
  const auto order = topologicalOrder(g);
  ASSERT_EQ(order.size(), 4u);
  std::vector<std::size_t> pos(4);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  EXPECT_LT(pos[s], pos[a]);
  EXPECT_LT(pos[s], pos[b]);
  EXPECT_LT(pos[a], pos[t]);
  EXPECT_LT(pos[b], pos[t]);
}

TEST(Digraph, CycleDetected) {
  Digraph g;
  const auto a = g.addVertex();
  const auto b = g.addVertex();
  g.addEdge(a, b);
  g.addEdge(b, a);
  EXPECT_THROW(topologicalOrder(g), ValidationError);
  EXPECT_FALSE(isAcyclic(g));
}

TEST(Digraph, Reachability) {
  VertexId s, a, b, t;
  const Digraph g = diamond(s, a, b, t);
  const auto fwd = reachableFrom(g, a);
  EXPECT_TRUE(fwd[a]);
  EXPECT_TRUE(fwd[t]);
  EXPECT_FALSE(fwd[s]);
  EXPECT_FALSE(fwd[b]);
  const auto bwd = reachableTo(g, a);
  EXPECT_TRUE(bwd[s]);
  EXPECT_TRUE(bwd[a]);
  EXPECT_FALSE(bwd[t]);
}

TEST(Digraph, ImmediateDominatorsDiamond) {
  VertexId s, a, b, t;
  const Digraph g = diamond(s, a, b, t);
  const auto idom = immediateDominators(g, s);
  EXPECT_EQ(idom[s], s);
  EXPECT_EQ(idom[a], s);
  EXPECT_EQ(idom[b], s);
  EXPECT_EQ(idom[t], s);  // neither branch dominates the join
  EXPECT_TRUE(dominates(idom, s, t));
  EXPECT_FALSE(dominates(idom, a, t));
}

TEST(Digraph, DominatorsChain) {
  Digraph g;
  const auto a = g.addVertex();
  const auto b = g.addVertex();
  const auto c = g.addVertex();
  g.addEdge(a, b);
  g.addEdge(b, c);
  const auto idom = immediateDominators(g, a);
  EXPECT_EQ(idom[b], a);
  EXPECT_EQ(idom[c], b);
  EXPECT_TRUE(dominates(idom, a, c));
}

TEST(Digraph, ReconvergenceDiamond) {
  VertexId s, a, b, t;
  const Digraph g = diamond(s, a, b, t);
  const auto recs = findReconvergences(g, t);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].stem, s);
  EXPECT_EQ(recs[0].gate, t);
}

TEST(Digraph, TwoTerminalDagChecks) {
  VertexId s, a, b, t;
  const Digraph g = diamond(s, a, b, t);
  EXPECT_TRUE(isTwoTerminalDag(g, s, t));
  EXPECT_FALSE(isTwoTerminalDag(g, a, t));  // a is not the unique source

  Digraph h;
  const auto x = h.addVertex();
  const auto y = h.addVertex();
  h.addVertex();  // disconnected vertex
  h.addEdge(x, y);
  EXPECT_FALSE(isTwoTerminalDag(h, x, y));
}

TEST(Digraph, DotOutputContainsVerticesAndEdges) {
  VertexId s, a, b, t;
  const Digraph g = diamond(s, a, b, t);
  const std::string dot = toDot(g, "demo");
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("\"a\""), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
  const std::string withAttrs =
      toDot(g, "demo", [](VertexId) { return std::string("shape=box"); });
  EXPECT_NE(withAttrs.find("shape=box"), std::string::npos);
}

}  // namespace
}  // namespace rrsn::graph

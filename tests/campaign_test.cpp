// Campaign engine tests: the acceptance gates of the fault-injection
// subsystem.
//  * Exhaustive campaigns on the example networks report zero
//    expected-vs-simulated mismatches for segment breaks (and, with the
//    control-aware oracle, for stuck muxes too); the strict-vs-plain
//    structural differences are itemized as gaps, never dropped.
//  * Campaign results are bitwise identical for 1 and 4 worker threads.
//  * A deadline-interrupted campaign resumed from its checkpoint ends in
//    exactly the report of an uninterrupted run.
//  * On the fault-tolerant augmented topology the bounded reroute search
//    recovers accesses (graceful degradation shows up as Recovered).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "harden/fault_tolerant.hpp"
#include "rsn/example_networks.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"

namespace rrsn {
namespace {

std::string reportString(const rsn::Network& net,
                         const campaign::CampaignResult& result) {
  return json::serialize(campaign::reportJson(net, result), 1);
}

campaign::CampaignResult runCampaign(const rsn::Network& net,
                                     campaign::CampaignConfig config = {}) {
  return campaign::CampaignEngine(net, std::move(config)).run();
}

/// Unique-ish checkpoint path under the test's working directory.
std::string checkpointPath(const std::string& tag) {
  return "campaign_test_" + tag + ".ckpt.json";
}

TEST(Campaign, ExampleNetworksHaveZeroMismatches) {
  for (const rsn::Network& net :
       {rsn::makeFig1Network(), rsn::makeTinyNetwork()}) {
    const campaign::CampaignResult result = runCampaign(net);
    const campaign::CampaignSummary s = result.summary();
    EXPECT_TRUE(s.complete()) << net.name();
    EXPECT_EQ(s.oracleDisagreements, 0u) << net.name();
    // The acceptance gate: simulation never disagrees with the
    // control-aware expectation on segment breaks.
    EXPECT_EQ(s.segmentBreakMismatches, 0u) << net.name();
    EXPECT_EQ(s.muxStuckMismatches, 0u) << net.name();
    // Strict-vs-structural differences are reported, not dropped: every
    // gap pair appears in the itemized list.
    EXPECT_EQ(result.structuralGaps().size(),
              s.segmentBreakGapPairs + s.muxStuckGapPairs)
        << net.name();
  }
}

TEST(Campaign, Fig1GapsAreTheDocumentedControlDependency) {
  // fig1: break(c0) kills multi-round accesses (c0 controls m0 and sits
  // on the reset path), and break(sb1) blocks writing i1's guard.  Both
  // losses are invisible to the plain structural oracle — they must be
  // itemized as gaps with zero mismatches.
  const rsn::Network net = rsn::makeFig1Network();
  const campaign::CampaignResult result = runCampaign(net);
  const auto gaps = result.structuralGaps();
  ASSERT_EQ(gaps.size(), 2u);
  for (const campaign::Mismatch& gap : gaps) {
    EXPECT_EQ(gap.fault.kind, fault::FaultKind::SegmentBreak);
    EXPECT_EQ(gap.simulated, campaign::Outcome::Lost);
    EXPECT_TRUE(gap.referenceAccessible);
  }
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  const rsn::Network net = rsn::makeFig1Network();
  setThreadCount(1);
  const std::string serial = reportString(net, runCampaign(net));
  setThreadCount(4);
  const std::string parallel = reportString(net, runCampaign(net));
  setThreadCount(0);  // restore the environment-configured pool
  EXPECT_EQ(serial, parallel);
}

TEST(Campaign, SampledCampaignIsDeterministicSubset) {
  const rsn::Network net = rsn::makeFig1Network();
  campaign::CampaignConfig config;
  config.sample = 5;
  config.seed = 7;
  campaign::CampaignEngine a(net, config), b(net, config);
  ASSERT_EQ(a.universe().size(), 5u);
  const std::string ra = reportString(net, a.run());
  const std::string rb = reportString(net, b.run());
  EXPECT_EQ(ra, rb);
}

TEST(Campaign, CheckpointResumeMatchesUninterruptedRun) {
  const rsn::Network net = rsn::makeFig1Network();
  const std::string path = checkpointPath("resume");
  std::remove(path.c_str());

  const std::string uninterrupted = reportString(net, runCampaign(net));

  // First run: small batches, cancel after the first finished batch.
  CancellationToken cancel;
  campaign::CampaignConfig config;
  config.checkpointPath = path;
  config.checkpointEvery = 4;
  config.cancel = &cancel;
  config.progress = [&](std::size_t done, std::size_t) {
    if (done >= 4) cancel.cancel();
  };
  const campaign::CampaignResult partial = runCampaign(net, config);
  const campaign::CampaignSummary ps = partial.summary();
  EXPECT_FALSE(ps.complete());
  EXPECT_GE(ps.faultsDone, 4u);

  // Second run: fresh engine, same checkpoint, no cancellation.
  campaign::CampaignConfig resume;
  resume.checkpointPath = path;
  resume.checkpointEvery = 4;
  const campaign::CampaignResult final = runCampaign(net, resume);
  EXPECT_TRUE(final.summary().complete());
  EXPECT_EQ(reportString(net, final), uninterrupted);
  std::remove(path.c_str());
}

TEST(Campaign, CheckpointIgnoresDifferentConfiguration) {
  const rsn::Network net = rsn::makeFig1Network();
  const std::string path = checkpointPath("fingerprint");
  std::remove(path.c_str());

  campaign::CampaignConfig config;
  config.checkpointPath = path;
  (void)runCampaign(net, config);

  // Same file, different campaign shape: the fingerprint must not match,
  // and loadCheckpoint must report the rejection as a typed Status
  // instead of throwing — the engine restarts from scratch.
  {
    campaign::CampaignConfig other = config;
    other.sample = 3;
    campaign::CampaignEngine engine(net, other);
    campaign::CampaignResult probe;
    probe.instruments = net.instruments().size();
    probe.records.resize(engine.universe().size());
    const campaign::CheckpointLoad load = campaign::loadCheckpoint(
        path, campaign::campaignFingerprint(net, other), probe);
    EXPECT_EQ(load.status.code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(load.restored, 0u);
    // The full run degrades gracefully: complete, stale file overwritten.
    const campaign::CampaignResult result = runCampaign(net, other);
    EXPECT_TRUE(result.summary().complete());
    EXPECT_EQ(result.records.size(), 3u);
  }

  // A different network is rejected (gracefully) too, and the campaign
  // still produces the uninterrupted report byte for byte.
  {
    const rsn::Network tiny = rsn::makeTinyNetwork();
    const std::string clean = reportString(tiny, runCampaign(tiny));
    std::remove(path.c_str());
    (void)runCampaign(net, config);  // rewrite fig1's checkpoint
    campaign::CampaignConfig sameShape;
    sameShape.checkpointPath = path;
    EXPECT_EQ(reportString(tiny, runCampaign(tiny, sameShape)), clean);
  }
  std::remove(path.c_str());
}

TEST(Campaign, CorruptedCheckpointRestartsInsteadOfThrowing) {
  const rsn::Network net = rsn::makeFig1Network();
  const std::string path = checkpointPath("corrupt");
  const std::string clean = reportString(net, runCampaign(net));

  campaign::CampaignConfig config;
  config.checkpointPath = path;

  const auto writeFile = [&](const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  };

  // Produce a genuine checkpoint, then damage it in representative ways:
  // truncated mid-document, plain garbage, and hand-edited (valid JSON,
  // torn record).  Every variant must restart and reproduce the clean
  // report — never throw, never merge partial corrupt state.
  (void)runCampaign(net, config);
  std::string good;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    good = text.str();
  }
  ASSERT_GT(good.size(), 32u);

  const std::string truncated = good.substr(0, good.size() / 2);
  const std::string garbage = "not json at all {{{";
  std::string handEdited = good;
  const auto at = handEdited.find("\"read\"");
  ASSERT_NE(at, std::string::npos);
  handEdited.replace(at, 6, "\"r34d\"");  // one record loses its field

  for (const std::string& bad : {truncated, garbage, handEdited}) {
    writeFile(bad);
    campaign::CampaignResult probe;
    probe.instruments = net.instruments().size();
    probe.records.resize(campaign::CampaignEngine(net, config).universe().size());
    const campaign::CheckpointLoad load = campaign::loadCheckpoint(
        path, campaign::campaignFingerprint(net, config), probe);
    EXPECT_EQ(load.status.code(), StatusCode::kDataLoss);
    EXPECT_EQ(load.restored, 0u);
    for (const campaign::FaultRecord& rec : probe.records)
      EXPECT_FALSE(rec.done);  // nothing half-applied

    writeFile(bad);
    const campaign::CampaignResult result = runCampaign(net, config);
    EXPECT_TRUE(result.summary().complete());
    EXPECT_EQ(reportString(net, result), clean);
  }
  std::remove(path.c_str());
}

TEST(Campaign, ExcludedPrimitivesShrinkTheUniverse) {
  const rsn::Network net = rsn::makeFig1Network();
  const std::size_t all =
      campaign::CampaignEngine(net).universe().size();

  campaign::CampaignConfig config;
  config.excludePrimitives = DynamicBitset(net.primitiveCount());
  config.excludePrimitives.set(net.linearId(
      rsn::PrimitiveRef{rsn::PrimitiveRef::Kind::Segment, net.findSegment("c0")}));
  campaign::CampaignEngine engine(net, config);
  EXPECT_LT(engine.universe().size(), all);
  for (const fault::Fault& f : engine.universe()) {
    EXPECT_FALSE(f.kind == fault::FaultKind::SegmentBreak &&
                 f.prim == net.findSegment("c0"));
  }
  // The excluded-universe campaign reports no break(c0) record at all.
  const campaign::CampaignResult result =
      campaign::CampaignEngine(net, config).run();
  EXPECT_EQ(result.records.size(), engine.universe().size());
}

TEST(Campaign, AugmentedTopologyRecoversAccesses) {
  // The fault-tolerant baseline adds TAP-controlled skip paths; the
  // bounded reroute search must use them, classifying accesses that the
  // nominal recipe loses as Recovered — and still match the expectation.
  const harden::FaultTolerantRsn ft =
      harden::augmentFaultTolerant(rsn::makeFig1Network());
  const campaign::CampaignResult result = runCampaign(ft.network);
  const campaign::CampaignSummary s = result.summary();
  EXPECT_TRUE(s.complete());
  EXPECT_GT(s.readRecovered + s.writeRecovered, 0u);
  EXPECT_EQ(s.segmentBreakMismatches, 0u);
  EXPECT_EQ(s.muxStuckMismatches, 0u);
}

TEST(Campaign, NoRerouteMeansNoRecovered) {
  const harden::FaultTolerantRsn ft =
      harden::augmentFaultTolerant(rsn::makeFig1Network());
  campaign::CampaignConfig config;
  config.retarget.allowReroute = false;
  const campaign::CampaignSummary s = runCampaign(ft.network, config).summary();
  EXPECT_EQ(s.readRecovered + s.writeRecovered, 0u);
}

TEST(Campaign, ReportJsonIsCanonical) {
  const rsn::Network net = rsn::makeTinyNetwork();
  const campaign::CampaignResult result = runCampaign(net);
  const std::string a = reportString(net, result);
  const std::string b = reportString(net, result);
  EXPECT_EQ(a, b);
  const json::Value doc = json::parse(a);
  EXPECT_EQ(doc.at("network").asString(), "tiny");
  EXPECT_EQ(doc.at("summary").at("segment_break_mismatches").asUnsigned(), 0u);
  EXPECT_EQ(doc.at("summary").at("mux_stuck_mismatches").asUnsigned(), 0u);
}

}  // namespace
}  // namespace rrsn

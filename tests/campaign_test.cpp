// Campaign engine tests: the acceptance gates of the fault-injection
// subsystem.
//  * Exhaustive campaigns on the example networks report zero
//    expected-vs-simulated mismatches for segment breaks (and, with the
//    control-aware oracle, for stuck muxes too); the strict-vs-plain
//    structural differences are itemized as gaps, never dropped.
//  * Campaign results are bitwise identical for 1 and 4 worker threads.
//  * A deadline-interrupted campaign resumed from its checkpoint ends in
//    exactly the report of an uninterrupted run.
//  * On the fault-tolerant augmented topology the bounded reroute search
//    recovers accesses (graceful degradation shows up as Recovered).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <tuple>

#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "diag/diagnosis.hpp"
#include "harden/fault_tolerant.hpp"
#include "rsn/example_networks.hpp"
#include "support/json.hpp"
#include "support/parallel.hpp"

namespace rrsn {
namespace {

std::string reportString(const rsn::Network& net,
                         const campaign::CampaignResult& result) {
  return json::serialize(campaign::reportJson(net, result), 1);
}

campaign::CampaignResult runCampaign(const rsn::Network& net,
                                     campaign::CampaignConfig config = {}) {
  return campaign::CampaignEngine(net, std::move(config)).run();
}

/// Unique-ish checkpoint path under the test's working directory.
std::string checkpointPath(const std::string& tag) {
  return "campaign_test_" + tag + ".ckpt.json";
}

TEST(Campaign, ExampleNetworksHaveZeroMismatches) {
  for (const rsn::Network& net :
       {rsn::makeFig1Network(), rsn::makeTinyNetwork()}) {
    const campaign::CampaignResult result = runCampaign(net);
    const campaign::CampaignSummary s = result.summary();
    EXPECT_TRUE(s.complete()) << net.name();
    EXPECT_EQ(s.oracleDisagreements, 0u) << net.name();
    // The acceptance gate: simulation never disagrees with the
    // control-aware expectation on segment breaks.
    EXPECT_EQ(s.segmentBreakMismatches, 0u) << net.name();
    EXPECT_EQ(s.muxStuckMismatches, 0u) << net.name();
    // Strict-vs-structural differences are reported, not dropped: every
    // gap pair appears in the itemized list.
    EXPECT_EQ(result.structuralGaps().size(),
              s.segmentBreakGapPairs + s.muxStuckGapPairs)
        << net.name();
  }
}

TEST(Campaign, Fig1GapsAreTheDocumentedControlDependency) {
  // fig1: break(c0) kills multi-round accesses (c0 controls m0 and sits
  // on the reset path), and break(sb1) blocks writing i1's guard.  Both
  // losses are invisible to the plain structural oracle — they must be
  // itemized as gaps with zero mismatches.
  const rsn::Network net = rsn::makeFig1Network();
  const campaign::CampaignResult result = runCampaign(net);
  const auto gaps = result.structuralGaps();
  ASSERT_EQ(gaps.size(), 2u);
  for (const campaign::Mismatch& gap : gaps) {
    EXPECT_EQ(gap.scenario.a.kind, fault::FaultKind::SegmentBreak);
    EXPECT_EQ(gap.simulated, campaign::Outcome::Lost);
    EXPECT_TRUE(gap.referenceAccessible);
  }
}

TEST(Campaign, DeterministicAcrossThreadCounts) {
  const rsn::Network net = rsn::makeFig1Network();
  setThreadCount(1);
  const std::string serial = reportString(net, runCampaign(net));
  setThreadCount(4);
  const std::string parallel = reportString(net, runCampaign(net));
  setThreadCount(0);  // restore the environment-configured pool
  EXPECT_EQ(serial, parallel);
}

TEST(Campaign, SampledCampaignIsDeterministicSubset) {
  const rsn::Network net = rsn::makeFig1Network();
  campaign::CampaignConfig config;
  config.sample = 5;
  config.seed = 7;
  campaign::CampaignEngine a(net, config), b(net, config);
  ASSERT_EQ(a.universe().size(), 5u);
  const std::string ra = reportString(net, a.run());
  const std::string rb = reportString(net, b.run());
  EXPECT_EQ(ra, rb);
}

TEST(Campaign, CheckpointResumeMatchesUninterruptedRun) {
  const rsn::Network net = rsn::makeFig1Network();
  const std::string path = checkpointPath("resume");
  std::remove(path.c_str());

  const std::string uninterrupted = reportString(net, runCampaign(net));

  // First run: small batches, cancel after the first finished batch.
  CancellationToken cancel;
  campaign::CampaignConfig config;
  config.checkpointPath = path;
  config.checkpointEvery = 4;
  config.cancel = &cancel;
  config.progress = [&](std::size_t done, std::size_t) {
    if (done >= 4) cancel.cancel();
  };
  const campaign::CampaignResult partial = runCampaign(net, config);
  const campaign::CampaignSummary ps = partial.summary();
  EXPECT_FALSE(ps.complete());
  EXPECT_GE(ps.faultsDone, 4u);

  // Second run: fresh engine, same checkpoint, no cancellation.
  campaign::CampaignConfig resume;
  resume.checkpointPath = path;
  resume.checkpointEvery = 4;
  const campaign::CampaignResult final = runCampaign(net, resume);
  EXPECT_TRUE(final.summary().complete());
  EXPECT_EQ(reportString(net, final), uninterrupted);
  std::remove(path.c_str());
}

TEST(Campaign, CheckpointIgnoresDifferentConfiguration) {
  const rsn::Network net = rsn::makeFig1Network();
  const std::string path = checkpointPath("fingerprint");
  std::remove(path.c_str());

  campaign::CampaignConfig config;
  config.checkpointPath = path;
  (void)runCampaign(net, config);

  // Same file, different campaign shape: the fingerprint must not match,
  // and loadCheckpoint must report the rejection as a typed Status
  // instead of throwing — the engine restarts from scratch.
  {
    campaign::CampaignConfig other = config;
    other.sample = 3;
    campaign::CampaignEngine engine(net, other);
    campaign::CampaignResult probe;
    probe.instruments = net.instruments().size();
    probe.records.resize(engine.universe().size());
    const campaign::CheckpointLoad load = campaign::loadCheckpoint(
        path, campaign::campaignFingerprint(net, other), probe);
    EXPECT_EQ(load.status.code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(load.restored, 0u);
    // The full run degrades gracefully: complete, stale file overwritten.
    const campaign::CampaignResult result = runCampaign(net, other);
    EXPECT_TRUE(result.summary().complete());
    EXPECT_EQ(result.records.size(), 3u);
  }

  // A different network is rejected (gracefully) too, and the campaign
  // still produces the uninterrupted report byte for byte.
  {
    const rsn::Network tiny = rsn::makeTinyNetwork();
    const std::string clean = reportString(tiny, runCampaign(tiny));
    std::remove(path.c_str());
    (void)runCampaign(net, config);  // rewrite fig1's checkpoint
    campaign::CampaignConfig sameShape;
    sameShape.checkpointPath = path;
    EXPECT_EQ(reportString(tiny, runCampaign(tiny, sameShape)), clean);
  }
  std::remove(path.c_str());
}

TEST(Campaign, CorruptedCheckpointRestartsInsteadOfThrowing) {
  const rsn::Network net = rsn::makeFig1Network();
  const std::string path = checkpointPath("corrupt");
  const std::string clean = reportString(net, runCampaign(net));

  campaign::CampaignConfig config;
  config.checkpointPath = path;

  const auto writeFile = [&](const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  };

  // Produce a genuine checkpoint, then damage it in representative ways:
  // truncated mid-document, plain garbage, and hand-edited (valid JSON,
  // torn record).  Every variant must restart and reproduce the clean
  // report — never throw, never merge partial corrupt state.
  (void)runCampaign(net, config);
  std::string good;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    good = text.str();
  }
  ASSERT_GT(good.size(), 32u);

  const std::string truncated = good.substr(0, good.size() / 2);
  const std::string garbage = "not json at all {{{";
  std::string handEdited = good;
  const auto at = handEdited.find("\"read\"");
  ASSERT_NE(at, std::string::npos);
  handEdited.replace(at, 6, "\"r34d\"");  // one record loses its field

  for (const std::string& bad : {truncated, garbage, handEdited}) {
    writeFile(bad);
    campaign::CampaignResult probe;
    probe.instruments = net.instruments().size();
    probe.records.resize(campaign::CampaignEngine(net, config).universe().size());
    const campaign::CheckpointLoad load = campaign::loadCheckpoint(
        path, campaign::campaignFingerprint(net, config), probe);
    EXPECT_EQ(load.status.code(), StatusCode::kDataLoss);
    EXPECT_EQ(load.restored, 0u);
    for (const campaign::FaultRecord& rec : probe.records)
      EXPECT_FALSE(rec.done);  // nothing half-applied

    writeFile(bad);
    const campaign::CampaignResult result = runCampaign(net, config);
    EXPECT_TRUE(result.summary().complete());
    EXPECT_EQ(reportString(net, result), clean);
  }
  std::remove(path.c_str());
}

TEST(Campaign, ExcludedPrimitivesShrinkTheUniverse) {
  const rsn::Network net = rsn::makeFig1Network();
  const std::size_t all =
      campaign::CampaignEngine(net).universe().size();

  campaign::CampaignConfig config;
  config.excludePrimitives = DynamicBitset(net.primitiveCount());
  config.excludePrimitives.set(net.linearId(
      rsn::PrimitiveRef{rsn::PrimitiveRef::Kind::Segment, net.findSegment("c0")}));
  campaign::CampaignEngine engine(net, config);
  EXPECT_LT(engine.universe().size(), all);
  for (const campaign::FaultScenario& s : engine.universe()) {
    EXPECT_FALSE(s.a.kind == fault::FaultKind::SegmentBreak &&
                 s.a.prim == net.findSegment("c0"));
  }
  // The excluded-universe campaign reports no break(c0) record at all.
  const campaign::CampaignResult result =
      campaign::CampaignEngine(net, config).run();
  EXPECT_EQ(result.records.size(), engine.universe().size());
}

TEST(Campaign, AugmentedTopologyRecoversAccesses) {
  // The fault-tolerant baseline adds TAP-controlled skip paths; the
  // bounded reroute search must use them, classifying accesses that the
  // nominal recipe loses as Recovered — and still match the expectation.
  const harden::FaultTolerantRsn ft =
      harden::augmentFaultTolerant(rsn::makeFig1Network());
  const campaign::CampaignResult result = runCampaign(ft.network);
  const campaign::CampaignSummary s = result.summary();
  EXPECT_TRUE(s.complete());
  EXPECT_GT(s.readRecovered + s.writeRecovered, 0u);
  EXPECT_EQ(s.segmentBreakMismatches, 0u);
  EXPECT_EQ(s.muxStuckMismatches, 0u);
}

TEST(Campaign, NoRerouteMeansNoRecovered) {
  const harden::FaultTolerantRsn ft =
      harden::augmentFaultTolerant(rsn::makeFig1Network());
  campaign::CampaignConfig config;
  config.retarget.allowReroute = false;
  const campaign::CampaignSummary s = runCampaign(ft.network, config).summary();
  EXPECT_EQ(s.readRecovered + s.writeRecovered, 0u);
}

TEST(Campaign, ReportJsonIsCanonical) {
  const rsn::Network net = rsn::makeTinyNetwork();
  const campaign::CampaignResult result = runCampaign(net);
  const std::string a = reportString(net, result);
  const std::string b = reportString(net, result);
  EXPECT_EQ(a, b);
  const json::Value doc = json::parse(a);
  EXPECT_EQ(doc.at("network").asString(), "tiny");
  EXPECT_EQ(doc.at("summary").at("segment_break_mismatches").asUnsigned(), 0u);
  EXPECT_EQ(doc.at("summary").at("mux_stuck_mismatches").asUnsigned(), 0u);
}

// ------------------------------------------------------ pair campaigns

bool isContradictory(const fault::Fault& a, const fault::Fault& b) {
  return a.kind == fault::FaultKind::MuxStuck &&
         b.kind == fault::FaultKind::MuxStuck && a.prim == b.prim;
}

TEST(PairCampaign, ExhaustiveUniverseIsCanonicalAndContradictionFree) {
  const rsn::Network net = rsn::makeFig1Network();
  campaign::CampaignConfig config;
  config.mode = campaign::CampaignMode::Pairs;
  campaign::CampaignEngine engine(net, config);
  const auto& singles = engine.singles();
  const auto& universe = engine.universe();

  std::size_t expected = 0;
  for (std::size_t i = 0; i < singles.size(); ++i)
    for (std::size_t j = i + 1; j < singles.size(); ++j)
      if (!isContradictory(singles[i], singles[j])) ++expected;
  ASSERT_EQ(universe.size(), expected);

  for (std::size_t k = 0; k < universe.size(); ++k) {
    const campaign::FaultScenario& s = universe[k];
    EXPECT_EQ(s.kind, campaign::CampaignMode::Pairs);
    ASSERT_LT(s.aIdx, s.bIdx);
    ASSERT_LT(s.bIdx, singles.size());
    EXPECT_TRUE(s.a == singles[s.aIdx]);
    EXPECT_TRUE(s.b == singles[s.bIdx]);
    EXPECT_FALSE(isContradictory(s.a, s.b));
    if (k > 0) {
      // Strictly increasing canonical (aIdx, bIdx) order: no duplicates.
      const campaign::FaultScenario& prev = universe[k - 1];
      EXPECT_TRUE(std::tie(prev.aIdx, prev.bIdx) < std::tie(s.aIdx, s.bIdx));
    }
  }
}

TEST(PairCampaign, StratifiedSampleIsDeterministicAndCoversStrata) {
  const rsn::Network net = rsn::makeFig1Network();
  campaign::CampaignConfig config;
  config.mode = campaign::CampaignMode::Pairs;
  config.sample = 20;
  config.seed = 5;
  campaign::CampaignEngine a(net, config), b(net, config);
  ASSERT_EQ(a.universe().size(), b.universe().size());
  for (std::size_t k = 0; k < a.universe().size(); ++k)
    EXPECT_TRUE(a.universe()[k] == b.universe()[k]);
  // Contradictory draws may shrink the sample, never grow it.
  EXPECT_LE(a.universe().size(), 20u);
  EXPECT_GE(a.universe().size(), 1u);
  // Largest-remainder allocation over the break/break, break/stuck and
  // stuck/stuck strata reaches every stratum at this sample size.
  bool bb = false, bs = false, ss = false;
  for (const campaign::FaultScenario& s : a.universe()) {
    const bool aBreak = s.a.kind == fault::FaultKind::SegmentBreak;
    const bool bBreak = s.b.kind == fault::FaultKind::SegmentBreak;
    (aBreak && bBreak ? bb : (aBreak || bBreak ? bs : ss)) = true;
  }
  EXPECT_TRUE(bb);
  EXPECT_TRUE(bs);
  EXPECT_TRUE(ss);
}

TEST(PairCampaign, SampleFractionRoundsUpAndCapsAtOne) {
  const rsn::Network net = rsn::makeFig1Network();
  campaign::CampaignConfig all;
  all.mode = campaign::CampaignMode::Pairs;
  campaign::CampaignEngine exhaustive(net, all);
  const std::size_t total = exhaustive.universe().size();
  // The fraction targets the raw pair space C(F, 2); contradictory
  // same-mux draws are then dropped, so the compatible universe can be
  // a little smaller than the target (and `total` smaller than C(F,2)).
  const std::size_t f = exhaustive.singles().size();
  const std::size_t rawPairs = f * (f - 1) / 2;
  ASSERT_LE(total, rawPairs);

  campaign::CampaignConfig half = all;
  half.sampleFraction = 0.5;
  const std::size_t target = (rawPairs + 1) / 2;
  const std::size_t sampled =
      campaign::CampaignEngine(net, half).universe().size();
  EXPECT_LE(sampled, target);
  EXPECT_GE(sampled + (rawPairs - total), target);

  campaign::CampaignConfig tiny = all;
  tiny.sampleFraction = 1e-9;
  EXPECT_EQ(campaign::CampaignEngine(net, tiny).universe().size(), 1u);

  campaign::CampaignConfig full = all;
  full.sampleFraction = 1.0;
  EXPECT_EQ(campaign::CampaignEngine(net, full).universe().size(), total);
}

TEST(PairCampaign, DeterministicAcrossThreadCounts) {
  const rsn::Network net = rsn::makeFig1Network();
  campaign::CampaignConfig config;
  config.mode = campaign::CampaignMode::Pairs;
  config.sample = 16;
  config.seed = 3;
  setThreadCount(1);
  const std::string serial = reportString(net, runCampaign(net, config));
  setThreadCount(2);
  const std::string two = reportString(net, runCampaign(net, config));
  setThreadCount(4);
  const std::string four = reportString(net, runCampaign(net, config));
  setThreadCount(0);
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, four);
}

TEST(PairCampaign, CheckpointResumeMatchesUninterruptedRun) {
  const rsn::Network net = rsn::makeFig1Network();
  const std::string path = checkpointPath("pair_resume");
  std::remove(path.c_str());

  campaign::CampaignConfig base;
  base.mode = campaign::CampaignMode::Pairs;
  base.sample = 12;
  base.seed = 11;
  const std::string uninterrupted = reportString(net, runCampaign(net, base));

  CancellationToken cancel;
  campaign::CampaignConfig first = base;
  first.checkpointPath = path;
  first.checkpointEvery = 4;
  first.cancel = &cancel;
  first.progress = [&](std::size_t done, std::size_t) {
    if (done >= 4) cancel.cancel();
  };
  const campaign::CampaignSummary ps = runCampaign(net, first).summary();
  EXPECT_FALSE(ps.complete());
  EXPECT_GE(ps.faultsDone, 4u);

  // Resume at a different thread count: the same sampled pairs finish
  // with the same report, byte for byte.
  setThreadCount(2);
  campaign::CampaignConfig resume = base;
  resume.checkpointPath = path;
  resume.checkpointEvery = 4;
  const campaign::CampaignResult final = runCampaign(net, resume);
  setThreadCount(0);
  EXPECT_TRUE(final.summary().complete());
  EXPECT_EQ(reportString(net, final), uninterrupted);
  std::remove(path.c_str());
}

TEST(PairCampaign, InteractionsAreDiffsNotMismatches) {
  const rsn::Network net = rsn::makeFig1Network();
  campaign::CampaignConfig config;
  config.mode = campaign::CampaignMode::Pairs;
  const campaign::CampaignResult result = runCampaign(net, config);
  const campaign::CampaignSummary s = result.summary();
  EXPECT_TRUE(s.complete());
  // The pair-composed oracle is a bound, not ground truth: divergence is
  // an interaction effect, never an engine mismatch.
  EXPECT_TRUE(result.mismatches().empty());
  EXPECT_EQ(s.readMismatches + s.writeMismatches, 0u);
  EXPECT_EQ(result.pairInteractions().size(), s.pairCompounded + s.pairMasked);
  const campaign::RobustnessReport r = result.robustness();
  EXPECT_EQ(r.mode, campaign::CampaignMode::Pairs);
  EXPECT_EQ(r.compounded, s.pairCompounded);
  EXPECT_EQ(r.masked, s.pairMasked);
  EXPECT_GE(r.retention(), 0.0);
  EXPECT_LE(r.retention(), 1.0);
}

// -------------------------------------------------- transient campaigns

TEST(TransientCampaign, EveryUpsetRecovers) {
  // The headline transient guarantee: a one-shot upset never loses an
  // instrument permanently — a reconfiguration sequence (or plain
  // retry) always restores access, and the classification agrees with
  // the fault-free expectation everywhere.
  for (const rsn::Network& net :
       {rsn::makeFig1Network(), rsn::makeTinyNetwork()}) {
    campaign::CampaignConfig config;
    config.mode = campaign::CampaignMode::Transient;
    const campaign::CampaignResult result = runCampaign(net, config);
    const campaign::CampaignSummary s = result.summary();
    EXPECT_TRUE(s.complete()) << net.name();
    EXPECT_EQ(s.readLost + s.writeLost, 0u) << net.name();
    EXPECT_GT(s.readReconfigured + s.writeReconfigured, 0u) << net.name();
    EXPECT_EQ(s.readMismatches + s.writeMismatches, 0u) << net.name();
    EXPECT_EQ(result.robustness().retention(), 1.0) << net.name();
    // Universe: every segment times every configured upset round.
    EXPECT_EQ(result.records.size(),
              net.segments().size() * config.transientRounds.size())
        << net.name();
    for (const campaign::FaultRecord& rec : result.records) {
      EXPECT_EQ(rec.scenario.kind, campaign::CampaignMode::Transient);
      EXPECT_NE(rec.scenario.upsetSegment, rsn::kNone);
    }
  }
}

TEST(TransientCampaign, ReferenceRowInvariantUnderDictMode) {
  // Transient classification is judged against the fault-free syndrome;
  // that reference must be identical whichever dictionary engine
  // produces it (the --dict-mode probe|batched invariance).
  const rsn::Network net = rsn::makeFig1Network();
  const diag::Syndrome probe =
      diag::FaultDictionary::build(net, diag::DictMode::Probe)
          .faultFreeSyndrome();
  const diag::Syndrome batched =
      diag::FaultDictionary::build(net, diag::DictMode::Batched)
          .faultFreeSyndrome();
  EXPECT_EQ(probe, batched);

  campaign::CampaignConfig config;
  config.mode = campaign::CampaignMode::Transient;
  const campaign::CampaignResult result = runCampaign(net, config);
  for (const campaign::FaultRecord& rec : result.records) {
    ASSERT_TRUE(rec.done);
    for (std::size_t i = 0; i < result.instruments; ++i) {
      EXPECT_EQ(rec.expectObservable.test(i), probe.passed.test(2 * i));
      EXPECT_EQ(rec.expectSettable.test(i), probe.passed.test(2 * i + 1));
    }
  }
}

// ------------------------------------------------- config validation

TEST(CampaignConfigValidation, TypedStatusForEveryBadKnob) {
  using campaign::validateCampaignConfig;
  campaign::CampaignConfig good;
  EXPECT_TRUE(validateCampaignConfig(good).ok());

  campaign::CampaignConfig bad = good;
  bad.sampleFraction = -0.25;
  EXPECT_EQ(validateCampaignConfig(bad).code(), StatusCode::kInvalidArgument);
  bad.sampleFraction = 1.5;
  EXPECT_EQ(validateCampaignConfig(bad).code(), StatusCode::kInvalidArgument);
  bad.sampleFraction = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(validateCampaignConfig(bad).code(), StatusCode::kInvalidArgument);

  bad = good;
  bad.sample = 4;
  bad.sampleFraction = 0.5;
  EXPECT_EQ(validateCampaignConfig(bad).code(), StatusCode::kInvalidArgument);

  bad = good;
  bad.deadlineMs = 0;
  EXPECT_EQ(validateCampaignConfig(bad).code(), StatusCode::kInvalidArgument);

  bad = good;
  bad.checkpointPath = ".";  // a directory, not a state file
  EXPECT_EQ(validateCampaignConfig(bad).code(), StatusCode::kInvalidArgument);

  bad = good;
  bad.mode = campaign::CampaignMode::Transient;
  bad.transientRounds = {};
  EXPECT_EQ(validateCampaignConfig(bad).code(), StatusCode::kInvalidArgument);
  bad.transientRounds = {1, 0, 1};
  EXPECT_EQ(validateCampaignConfig(bad).code(), StatusCode::kInvalidArgument);
  bad.transientRounds = {0, 1, 2};
  EXPECT_TRUE(validateCampaignConfig(bad).ok());

  // The engine constructor surfaces the same rejection as a typed throw.
  campaign::CampaignConfig throwing;
  throwing.sampleFraction = 2.0;
  EXPECT_THROW(campaign::CampaignEngine(rsn::makeTinyNetwork(), throwing),
               ValidationError);
}

// --------------------------------------------- checkpoint format version

TEST(CheckpointVersion, WrongVersionOrModeRestartsGracefully) {
  const rsn::Network net = rsn::makeFig1Network();
  const std::string path = checkpointPath("version");
  std::remove(path.c_str());

  campaign::CampaignConfig config;
  config.checkpointPath = path;
  const std::string clean = reportString(net, runCampaign(net, config));

  std::string good;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream text;
    text << in.rdbuf();
    good = text.str();
  }
  ASSERT_NE(good.find("\"version\": 2"), std::string::npos);

  const auto writeFile = [&](const std::string& text) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
  };
  const auto probeLoad = [&]() {
    campaign::CampaignResult probe;
    probe.instruments = net.instruments().size();
    probe.records.resize(
        campaign::CampaignEngine(net, config).universe().size());
    return campaign::loadCheckpoint(
        path, campaign::campaignFingerprint(net, config), probe);
  };

  // A version-1 file (what PR 2's engine wrote): wrong version, typed
  // rejection, zero restored — and the full run restarts cleanly.
  std::string v1 = good;
  const auto vAt = v1.find("\"version\": 2");
  v1.replace(vAt, 12, "\"version\": 1");
  writeFile(v1);
  {
    const campaign::CheckpointLoad load = probeLoad();
    EXPECT_EQ(load.status.code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(load.restored, 0u);
  }
  writeFile(v1);
  EXPECT_EQ(reportString(net, runCampaign(net, config)), clean);

  // Same for a file written by a different campaign mode.
  std::string wrongMode = good;
  const auto mAt = wrongMode.find("\"mode\": \"single\"");
  ASSERT_NE(mAt, std::string::npos);
  wrongMode.replace(mAt, 16, "\"mode\": \"pairs\"");
  writeFile(wrongMode);
  {
    const campaign::CheckpointLoad load = probeLoad();
    EXPECT_EQ(load.status.code(), StatusCode::kFailedPrecondition);
    EXPECT_EQ(load.restored, 0u);
  }
  writeFile(wrongMode);
  EXPECT_EQ(reportString(net, runCampaign(net, config)), clean);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rrsn

#include <gtest/gtest.h>

#include "harden/fault_tolerant.hpp"
#include "rsn/example_networks.hpp"
#include "sim/retarget.hpp"
#include "sim/simulator.hpp"
#include "test_util.hpp"

namespace rrsn::sim {
namespace {

using fault::Fault;
using rsn::makeFig1Network;

std::vector<Bit> bits(const std::string& s) { return bitsFromString(s); }

TEST(Bits, StringConversions) {
  EXPECT_EQ(toString(bits("01x")), "01x");
  EXPECT_THROW(bitsFromString("012"), ParseError);
  EXPECT_EQ(bitOf(true), Bit::One);
  EXPECT_EQ(bitOf(false), Bit::Zero);
}

TEST(Simulator, ResetPathIsBypass) {
  // Fig. 1 at reset: every mux selects branch 0; m0's branch 0 is the
  // content branch (address from c0 = 0), SIBs are closed.
  const rsn::Network net = makeFig1Network();
  ScanSimulator sim(net);
  const auto path = sim.activePath();
  ASSERT_TRUE(path.has_value());
  std::vector<std::string> names;
  for (auto s : path->segments) names.push_back(net.segment(s).name);
  // m0 selects branch 0 (content), SIB closed (bypass), m1/m2 select
  // their instrument branches (branch 0).
  EXPECT_EQ(names, (std::vector<std::string>{"c0", "sb1", "seg_i2", "seg_i3",
                                             "c2", "c1"}));
  EXPECT_EQ(path->totalBits, 1u + 1 + 3 + 5 + 1 + 2);
}

TEST(Simulator, CsuWritesImage) {
  const rsn::Network net = makeFig1Network();
  ScanSimulator sim(net);
  const auto path = sim.activePath();
  ASSERT_TRUE(path);
  // Compose an image: c0=1 (select bypass next), everything else zero.
  std::vector<Bit> image(path->totalBits, Bit::Zero);
  image[0] = Bit::One;  // c0 is the first bit on the path
  sim.csu(ScanSimulator::shiftInForImage(image));
  EXPECT_EQ(sim.segmentUpdate(net.findSegment("c0")), bits("1"));
  // m0 now selects branch 1 (bypass): the path shrinks to c0 -> c1.
  const auto newPath = sim.activePath();
  ASSERT_TRUE(newPath);
  EXPECT_EQ(newPath->segments.size(), 2u);
}

TEST(Simulator, CsuShiftsCaptureOut) {
  const rsn::Network net = makeFig1Network();
  ScanSimulator sim(net);
  const rsn::InstrumentId i2 = net.findInstrument("i2");
  sim.setInstrumentValue(i2, bits("101"));
  const auto path = sim.activePath();
  ASSERT_TRUE(path);
  const std::vector<Bit> in(path->totalBits, Bit::Zero);
  const auto out = sim.csu(in);
  // out[t] = captured image cell (B-1-t); check seg_i2's cells.
  const auto offset =
      ScanSimulator::offsetOf(net, *path, net.findSegment("seg_i2"));
  ASSERT_TRUE(offset);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(out[path->totalBits - 1 - (*offset + k)], bits("101")[k]);
  }
}

TEST(Simulator, ExternalAddressControlsBareMux) {
  const rsn::Network net = rsn::makeTinyNetwork();  // mux 'mx' TAP-controlled
  ScanSimulator sim(net);
  ASSERT_TRUE(sim.activePath());
  EXPECT_EQ(sim.activePath()->segments.size(), 2u);  // seg_a + seg_b
  sim.setExternalAddress(net.findMux("mx"), 1);      // bypass branch
  EXPECT_EQ(sim.activePath()->segments.size(), 1u);  // only seg_b
}

TEST(Simulator, ExternalAddressRejectedForControlledMux) {
  const rsn::Network net = makeFig1Network();
  ScanSimulator sim(net);
  EXPECT_THROW(sim.setExternalAddress(net.findMux("m0"), 1), Error);
}

TEST(Simulator, BrokenSegmentPoisonsDownstreamShifts) {
  const rsn::Network net = makeFig1Network();
  ScanSimulator sim(net);
  sim.injectFault(Fault::segmentBreak(net.findSegment("sb1")));
  const auto path = sim.activePath();
  ASSERT_TRUE(path);
  // Shift a full image of ones: everything downstream of the break must
  // come out X after passing the broken register.
  const std::vector<Bit> in(path->totalBits, Bit::One);
  sim.csu(in);
  // seg_i2 sits after sb1 on the path: its update must be poisoned.
  const auto i2 = sim.segmentUpdate(net.findSegment("seg_i2"));
  for (Bit b : i2) EXPECT_EQ(b, Bit::X);
  // c0 sits before the break: it received clean ones.
  EXPECT_EQ(sim.segmentUpdate(net.findSegment("c0")), bits("1"));
}

TEST(Simulator, StuckMuxIgnoresAddress) {
  const rsn::Network net = makeFig1Network();
  ScanSimulator sim(net);
  sim.injectFault(Fault::muxStuck(net.findMux("m0"), 1));
  // Address says branch 0, but the mux is stuck on the bypass.
  EXPECT_EQ(sim.muxSelection(net.findMux("m0")), 1u);
  const auto path = sim.activePath();
  ASSERT_TRUE(path);
  EXPECT_EQ(path->segments.size(), 2u);  // c0, c1
}

// ------------------------------------------------------------ retargeting

TEST(Retarget, OpensSibToReadInstrument) {
  const rsn::Network net = makeFig1Network();
  ScanSimulator sim(net);
  Retargeter rt(sim);
  const auto res = rt.readInstrument(net.findInstrument("i1"));
  EXPECT_TRUE(res.success);
  // Opening the SIB takes one configuration round plus the read access.
  EXPECT_GE(res.rounds, 2u);
  EXPECT_FALSE(res.patterns.empty());
}

TEST(Retarget, WritesInstrumentValue) {
  const rsn::Network net = makeFig1Network();
  ScanSimulator sim(net);
  Retargeter rt(sim);
  const auto value = bits("1100");
  const auto res = rt.writeInstrument(net.findInstrument("i1"), value);
  EXPECT_TRUE(res.success);
  EXPECT_EQ(sim.instrumentUpdate(net.findInstrument("i1")), value);
}

TEST(Retarget, FaultFreeEverythingAccessible) {
  const rsn::Network net = makeFig1Network();
  const AccessReport strict = strictAccessibility(net, nullptr);
  EXPECT_EQ(strict.observable.count(), net.instruments().size());
  EXPECT_EQ(strict.settable.count(), net.instruments().size());
}

TEST(Retarget, StuckM0MakesAllInstrumentsInaccessible) {
  const rsn::Network net = makeFig1Network();
  const Fault f = Fault::muxStuck(net.findMux("m0"), 1);
  const AccessReport strict = strictAccessibility(net, &f);
  EXPECT_EQ(strict.observable.count(), 0u);
  EXPECT_EQ(strict.settable.count(), 0u);
}

TEST(Retarget, BrokenInstrumentSegmentOnlyKillsItself) {
  const rsn::Network net = makeFig1Network();
  const Fault f = Fault::segmentBreak(net.findSegment("seg_i2"));
  const AccessReport strict = strictAccessibility(net, &f);
  const auto i2 = net.findInstrument("i2");
  EXPECT_FALSE(strict.observable.test(i2));
  EXPECT_FALSE(strict.settable.test(i2));
  EXPECT_TRUE(strict.observable.test(net.findInstrument("i1")));
  EXPECT_TRUE(strict.observable.test(net.findInstrument("i3")));
  EXPECT_TRUE(strict.settable.test(net.findInstrument("i1")));
}

TEST(Retarget, StrictNeverExceedsStructural) {
  // The strict (simulation-backed) accessibility can only be a subset of
  // the structural one: the structural analysis ignores how control bits
  // are applied.
  const rsn::Network net = makeFig1Network();
  const fault::FaultUniverse universe(net);
  for (const Fault& f : universe.faults()) {
    const AccessReport strict = strictAccessibility(net, &f);
    const AccessReport structural = structuralAccessibility(net, &f);
    for (rsn::InstrumentId i = 0; i < net.instruments().size(); ++i) {
      if (strict.observable.test(i)) {
        EXPECT_TRUE(structural.observable.test(i))
            << fault::describe(net, f) << " instrument " << i;
      }
      if (strict.settable.test(i)) {
        EXPECT_TRUE(structural.settable.test(i))
            << fault::describe(net, f) << " instrument " << i;
      }
    }
  }
}

TEST(Retarget, ControlDependencyGapExists) {
  // break(c0) kills m0's address register.  Structurally i1..i3 remain
  // observable (the branch is already selected at reset in our model, but
  // the structural analysis even says they are observable regardless);
  // strictly, writing the SIB open-bit still works only if the CSU can
  // pass... This documents at least one instrument where strict is more
  // pessimistic than structural across the fault universe.
  const rsn::Network net = makeFig1Network();
  const fault::FaultUniverse universe(net);
  std::size_t gaps = 0;
  for (const Fault& f : universe.faults()) {
    const AccessReport strict = strictAccessibility(net, &f);
    const AccessReport structural = structuralAccessibility(net, &f);
    for (rsn::InstrumentId i = 0; i < net.instruments().size(); ++i) {
      gaps += structural.observable.test(i) && !strict.observable.test(i);
      gaps += structural.settable.test(i) && !strict.settable.test(i);
    }
  }
  EXPECT_GT(gaps, 0u);
}

// Property sweep: on random fault-free networks the retargeter reaches
// every instrument end to end.
class RetargetSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RetargetSweep, FaultFreeFullAccess) {
  Rng rng(GetParam() * 31 + 5);
  test::RandomNetOptions opt;
  opt.targetSegments = 20;
  const rsn::Network net = test::randomNetwork(rng, opt);
  const AccessReport strict = strictAccessibility(net, nullptr);
  EXPECT_EQ(strict.observable.count(), net.instruments().size())
      << "seed=" << GetParam();
  EXPECT_EQ(strict.settable.count(), net.instruments().size())
      << "seed=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RetargetSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

// Pattern compatibility (Sec. II): hardening does not change the RSN, so
// the pattern log captured on the original network replays bit-identically
// on the "hardened" one.
TEST(PatternCompatibility, HardenedNetworkAcceptsSamePatterns) {
  const rsn::Network original = makeFig1Network();
  const rsn::Network hardened = makeFig1Network();  // same topology

  ScanSimulator simA(original);
  const auto i1 = original.findInstrument("i1");
  Retargeter rtA(simA);
  const auto res = rtA.readInstrument(i1);
  ASSERT_TRUE(res.success);

  // Replay on the hardened network with the same instrument stimulus:
  // identical shift-out streams bit for bit.
  ScanSimulator simB(hardened);
  simB.setInstrumentValue(
      i1, accessMarker(hardened.segment(hardened.instrument(i1).segment).length));
  EXPECT_TRUE(replayPatterns(simB, res));
}

TEST(PatternCompatibility, ReplayDetectsDivergentNetwork) {
  // Replaying on a *different* topology must be rejected, not silently
  // accepted — the guarantee is specific to topology-preserving plans.
  const rsn::Network original = makeFig1Network();
  ScanSimulator simA(original);
  Retargeter rtA(simA);
  const auto res = rtA.readInstrument(original.findInstrument("i1"));
  ASSERT_TRUE(res.success);

  const rsn::Network other = rsn::makeTinyNetwork();
  ScanSimulator simB(other);
  EXPECT_FALSE(replayPatterns(simB, res));
}

// Pattern compatibility under an injected fault: a recorded access whose
// path avoids the defect replays bit-exactly on the (topology-identical)
// hardened network even when the same fault is present there.  Checked
// on both example networks.
TEST(PatternCompatibility, ReplaysUnderFaultOnHardenedTopology) {
  struct Case {
    rsn::Network net;
    const char* instrument;
    const char* brokenSegment;
  };
  // fig1: break seg_i3, access i2 (different branch of the inner chain);
  // tiny: break seg_a, access inst_b (mx can bypass seg_a entirely).
  Case cases[] = {{makeFig1Network(), "i2", "seg_i3"},
                  {rsn::makeTinyNetwork(), "inst_b", "seg_a"}};
  for (Case& c : cases) {
    const Fault f = Fault::segmentBreak(c.net.findSegment(c.brokenSegment));
    ScanSimulator simA(c.net);
    simA.injectFault(f);
    Retargeter rtA(simA);
    const auto i = c.net.findInstrument(c.instrument);
    const auto res = rtA.readInstrument(i);
    ASSERT_TRUE(res.success) << c.net.name();

    // The hardened network shares the topology (hardening never changes
    // it); the recorded patterns must replay bit for bit, fault and all.
    ScanSimulator simB(c.net);
    simB.injectFault(f);
    simB.setInstrumentValue(
        i, accessMarker(c.net.segment(c.net.instrument(i).segment).length));
    EXPECT_TRUE(replayPatterns(simB, res)) << c.net.name();
  }
}

TEST(PatternCompatibility, ReplayFailsOnAugmentedTopology) {
  // The fault-tolerant augmentation inserts skip multiplexers, changing
  // the scan path lengths: patterns recorded on the original network
  // must NOT replay (the paper's compatibility argument, Sec. II).
  for (const rsn::Network& net : {makeFig1Network(), rsn::makeTinyNetwork()}) {
    ScanSimulator simA(net);
    Retargeter rtA(simA);
    ASSERT_FALSE(net.instruments().empty());
    const auto res = rtA.readInstrument(static_cast<rsn::InstrumentId>(0));
    ASSERT_TRUE(res.success) << net.name();

    const harden::FaultTolerantRsn ft = harden::augmentFaultTolerant(net);
    ScanSimulator simB(ft.network);
    EXPECT_FALSE(replayPatterns(simB, res)) << net.name();
  }
}

// ------------------------------------------------- bounded retargeting

TEST(RetargetBounds, StuckAddressFaultFailsInsteadOfLooping) {
  // break(c0) leaves m0's address register permanently poisoned after
  // the first CSU round — the configuration can never converge.  The
  // engine must give up within its round budget and report failure, not
  // iterate forever.
  const rsn::Network net = makeFig1Network();
  ScanSimulator sim(net);
  sim.injectFault(Fault::segmentBreak(net.findSegment("c0")));
  RetargetOptions options;
  options.maxRounds = 3;
  Retargeter engine(sim, options);
  const auto res = engine.readInstrument(net.findInstrument("i1"));
  EXPECT_FALSE(res.success);
  EXPECT_LE(res.rounds, 3u);
}

TEST(RetargetBounds, StuckMuxWriteFailsWithinRoundCap) {
  // m_sb1 stuck on the bypass: the SIB can never open, so i1 stays
  // unreachable no matter how many rounds are granted.
  const rsn::Network net = makeFig1Network();
  ScanSimulator sim(net);
  sim.injectFault(Fault::muxStuck(net.findMux("sb1_mux"), 0));
  RetargetOptions options;
  options.maxRounds = 5;
  Retargeter engine(sim, options);
  const auto res = engine.writeInstrument(
      net.findInstrument("i1"),
      accessMarker(net.segment(net.findSegment("seg_i1")).length));
  EXPECT_FALSE(res.success);
  EXPECT_LE(res.rounds, 5u);
}

TEST(RetargetBounds, RerouteBudgetIsHonored) {
  // With rerouting disabled the engine only tries the nominal recipe;
  // allowing it again on the augmented topology recovers the access.
  const harden::FaultTolerantRsn ft =
      harden::augmentFaultTolerant(makeFig1Network());
  const rsn::Network& net = ft.network;
  const Fault f = Fault::segmentBreak(net.findSegment("c2"));

  ScanSimulator noReroute(net);
  noReroute.injectFault(f);
  RetargetOptions off;
  off.allowReroute = false;
  const auto denied =
      Retargeter(noReroute, off).readInstrument(net.findInstrument("i3"));

  ScanSimulator withReroute(net);
  withReroute.injectFault(f);
  const auto recovered =
      Retargeter(withReroute).readInstrument(net.findInstrument("i3"));
  ASSERT_TRUE(recovered.success);
  if (denied.success) {
    // If even the nominal recipe works, the reroute flag must be clear.
    EXPECT_FALSE(denied.rerouted);
  } else {
    EXPECT_TRUE(recovered.rerouted);
  }
}

// ------------------------------------------------ multi-fault injection

TEST(MultiFault, TwoBreaksPoisonBothDownstreamRanges) {
  const rsn::Network net = makeFig1Network();
  ScanSimulator sim(net);
  sim.injectFaults({Fault::segmentBreak(net.findSegment("sb1")),
                    Fault::segmentBreak(net.findSegment("c2"))});
  ASSERT_EQ(sim.injectedFaults().size(), 2u);
  const auto path = sim.activePath();
  ASSERT_TRUE(path);
  sim.csu(std::vector<Bit>(path->totalBits, Bit::One));
  // Downstream of either break is poisoned; upstream of both is clean.
  for (Bit b : sim.segmentUpdate(net.findSegment("seg_i2")))
    EXPECT_EQ(b, Bit::X);  // after sb1
  for (Bit b : sim.segmentUpdate(net.findSegment("c1")))
    EXPECT_EQ(b, Bit::X);  // after c2
  EXPECT_EQ(sim.segmentUpdate(net.findSegment("c0")), bits("1"));
}

TEST(MultiFault, StuckMuxAndBreakCombine) {
  const rsn::Network net = makeFig1Network();
  ScanSimulator sim(net);
  sim.injectFault(Fault::muxStuck(net.findMux("m0"), 1));
  sim.addFault(Fault::segmentBreak(net.findSegment("c0")));
  ASSERT_EQ(sim.injectedFaults().size(), 2u);
  // The single-fault view still reports the first injected fault.
  ASSERT_TRUE(sim.injectedFault().has_value());
  EXPECT_EQ(sim.injectedFault()->kind, fault::FaultKind::MuxStuck);
  // The stuck mux forces the bypass path c0 -> c1 regardless of the
  // address; the break on c0 then poisons everything downstream of it.
  EXPECT_EQ(sim.muxSelection(net.findMux("m0")), 1u);
  const auto path = sim.activePath();
  ASSERT_TRUE(path);
  ASSERT_EQ(path->segments.size(), 2u);
  sim.csu(std::vector<Bit>(path->totalBits, Bit::One));
  for (Bit b : sim.segmentUpdate(net.findSegment("c1"))) EXPECT_EQ(b, Bit::X);
}

// ------------------------------------------------- transient upsets

TEST(Transient, UpsetFiresOnceAfterConfiguredRound) {
  const rsn::Network net = makeFig1Network();
  ScanSimulator sim(net);
  const rsn::SegmentId target = net.findSegment("seg_i2");
  sim.armTransientUpset({target, 1});
  EXPECT_TRUE(sim.transientPending());

  // All-zero rounds keep the reset configuration (and thus the full
  // path, seg_i2 included) stable across every CSU.
  const auto zeros = [&]() {
    const auto path = sim.activePath();
    EXPECT_TRUE(path);
    return std::vector<Bit>(path->totalBits, Bit::Zero);
  };
  // Round 0 completes cleanly: the upset waits for round 1.
  sim.csu(zeros());
  EXPECT_TRUE(sim.transientPending());
  EXPECT_EQ(sim.segmentUpdate(target), bits("000"));
  // Round 1 completes, then the upset fires: shift and update of the
  // target X-corrupted, the upset consumed.
  sim.csu(zeros());
  EXPECT_FALSE(sim.transientPending());
  for (Bit b : sim.segmentUpdate(target)) EXPECT_EQ(b, Bit::X);
  // One-shot: the next clean round fully rewrites the segment.
  sim.csu(zeros());
  EXPECT_EQ(sim.segmentUpdate(target), bits("000"));
}

TEST(Transient, ResetConfigurationRecoversThePath) {
  const rsn::Network net = makeFig1Network();
  ScanSimulator sim(net);
  const Fault keep = Fault::segmentBreak(net.findSegment("seg_i1"));
  sim.injectFault(keep);
  // Upset c0 (it controls m0): once its update register reads X the
  // active path is gone — the transient-loss scenario.
  sim.armTransientUpset({net.findSegment("c0"), 0});
  const auto path = sim.activePath();
  ASSERT_TRUE(path);
  sim.csu(std::vector<Bit>(path->totalBits, Bit::One));
  EXPECT_FALSE(sim.transientPending());
  for (Bit b : sim.segmentUpdate(net.findSegment("c0"))) EXPECT_EQ(b, Bit::X);
  EXPECT_FALSE(sim.activePath().has_value());
  // The 1687-style reconfiguration sequence restores the update
  // registers (and external addresses) to their reset values without a
  // power cycle; permanent faults stay injected.
  sim.resetConfiguration();
  EXPECT_EQ(sim.segmentUpdate(net.findSegment("c0")), bits("0"));
  ASSERT_TRUE(sim.activePath().has_value());
  ASSERT_EQ(sim.injectedFaults().size(), 1u);
  EXPECT_EQ(sim.injectedFaults().front(), keep);
}

}  // namespace
}  // namespace rrsn::sim

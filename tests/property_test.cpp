// Cross-cutting property tests: randomized checks of the low-level
// algorithms against their textbook definitions, and structural
// invariants of the decomposition tree that the fast criticality walk
// relies on.
#include <gtest/gtest.h>

#include <algorithm>

#include "benchgen/generators.hpp"
#include "benchgen/registry.hpp"
#include "campaign/campaign.hpp"
#include "diag/batched.hpp"
#include "graph/digraph.hpp"
#include "lint/lint.hpp"
#include "rsn/flat.hpp"
#include "rsn/graph_view.hpp"
#include "rsn/spec.hpp"
#include "sim/simulator.hpp"
#include "sp/decomposition.hpp"
#include "support/parallel.hpp"
#include "test_util.hpp"
#include "verify/certifier.hpp"

namespace rrsn {
namespace {

/// Random connected DAG with a unique source (vertex 0): every vertex
/// v > 0 receives at least one edge from a smaller vertex.
graph::Digraph randomDag(Rng& rng, std::size_t n, double extraEdgeProb) {
  graph::Digraph g;
  for (std::size_t v = 0; v < n; ++v) g.addVertex("v" + std::to_string(v));
  for (graph::VertexId v = 1; v < n; ++v) {
    const auto p = static_cast<graph::VertexId>(rng.below(v));
    g.addEdge(p, v);
    for (graph::VertexId u = 0; u < v; ++u) {
      if (u != p && rng.chance(extraEdgeProb)) g.addEdge(u, v);
    }
  }
  return g;
}

/// Definition-level dominance: `dom` dominates `v` iff removing `dom`
/// disconnects `v` from the root (or dom == v).
bool dominatesByDefinition(const graph::Digraph& g, graph::VertexId root,
                           graph::VertexId dom, graph::VertexId v) {
  if (dom == v) return true;
  if (v == root) return false;
  if (dom == root) return true;  // the root lies on every path trivially
  // BFS from root avoiding `dom`.
  std::vector<bool> seen(g.vertexCount(), false);
  std::vector<graph::VertexId> work{root};
  seen[root] = true;
  while (!work.empty()) {
    const graph::VertexId cur = work.back();
    work.pop_back();
    for (graph::VertexId s : g.successors(cur)) {
      if (s == dom || seen[s]) continue;
      seen[s] = true;
      work.push_back(s);
    }
  }
  return !seen[v];
}

class DominatorSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DominatorSweep, IdomMatchesDefinition) {
  Rng rng(GetParam() * 101 + 7);
  const graph::Digraph g = randomDag(rng, 24, 0.15);
  const auto idom = graph::immediateDominators(g, 0);
  for (graph::VertexId dom = 0; dom < g.vertexCount(); ++dom) {
    for (graph::VertexId v = 0; v < g.vertexCount(); ++v) {
      ASSERT_EQ(graph::dominates(idom, dom, v),
                dominatesByDefinition(g, 0, dom, v))
          << "seed=" << GetParam() << " dom=" << dom << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominatorSweep,
                         ::testing::Range<std::uint64_t>(1, 13));

class TopoSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TopoSweep, OrderRespectsEveryEdge) {
  Rng rng(GetParam() * 31 + 1);
  const graph::Digraph g = randomDag(rng, 40, 0.1);
  const auto order = graph::topologicalOrder(g);
  ASSERT_EQ(order.size(), g.vertexCount());
  std::vector<std::size_t> pos(g.vertexCount());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (graph::VertexId v = 0; v < g.vertexCount(); ++v)
    for (graph::VertexId s : g.successors(v)) ASSERT_LT(pos[v], pos[s]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopoSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

// ------------------------------------------------- decomposition shape

class TreeInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeInvariants, ParentChildPointersConsistent) {
  Rng rng(GetParam() * 77 + 13);
  const rsn::Network net = test::randomNetwork(rng);
  const auto tree = sp::DecompositionTree::build(net);

  std::size_t rootCount = 0;
  for (sp::TreeId id = 0; id < tree.nodeCount(); ++id) {
    const auto& n = tree.node(id);
    if (n.parent == sp::kNoTree) {
      ++rootCount;
      EXPECT_EQ(id, tree.root());
    } else {
      const auto& p = tree.node(n.parent);
      EXPECT_TRUE(p.left == id || p.right == id);
    }
    if (n.kind == sp::TreeKind::Series || n.kind == sp::TreeKind::Parallel) {
      ASSERT_NE(n.left, sp::kNoTree);
      ASSERT_NE(n.right, sp::kNoTree);
      EXPECT_EQ(tree.node(n.left).parent, id);
      EXPECT_EQ(tree.node(n.right).parent, id);
    } else {
      EXPECT_EQ(n.left, sp::kNoTree);
      EXPECT_EQ(n.right, sp::kNoTree);
    }
  }
  EXPECT_EQ(rootCount, 1u);
}

TEST_P(TreeInvariants, AnnotationSumsAreExact) {
  Rng rng(GetParam() * 77 + 13);
  const rsn::Network net = test::randomNetwork(rng);
  const auto spec = test::randomSpecFor(net, rng);
  auto tree = sp::DecompositionTree::build(net);
  tree.annotate(spec);
  // Root carries the totals; every internal node equals its children.
  const auto& root = tree.node(tree.root());
  EXPECT_EQ(root.sumObs, spec.totalObs());
  EXPECT_EQ(root.sumSet, spec.totalSet());
  EXPECT_EQ(root.instruments, net.instruments().size());
  for (sp::TreeId id = 0; id < tree.nodeCount(); ++id) {
    const auto& n = tree.node(id);
    if (n.kind != sp::TreeKind::Series && n.kind != sp::TreeKind::Parallel)
      continue;
    EXPECT_EQ(n.sumObs, tree.node(n.left).sumObs + tree.node(n.right).sumObs);
    EXPECT_EQ(n.sumSet, tree.node(n.left).sumSet + tree.node(n.right).sumSet);
  }
}

TEST_P(TreeInvariants, ParallelGroupsCarryTheirMux) {
  Rng rng(GetParam() * 77 + 13);
  const rsn::Network net = test::randomNetwork(rng);
  const auto tree = sp::DecompositionTree::build(net);
  // Every mux has a topmost P vertex; every P vertex between the branch
  // roots and the topmost P carries the same mux id.
  for (rsn::MuxId m = 0; m < net.muxes().size(); ++m) {
    const sp::TreeId top = tree.parallelOfMux(m);
    ASSERT_NE(top, sp::kNoTree);
    EXPECT_EQ(tree.node(top).kind, sp::TreeKind::Parallel);
    EXPECT_EQ(tree.node(top).prim, m);
    for (sp::TreeId branch : tree.branchesOfMux(m)) {
      // Walking up from a branch root hits only P vertices of mux m
      // until the topmost is passed.
      sp::TreeId cur = tree.node(branch).parent;
      while (cur != sp::kNoTree) {
        const auto& n = tree.node(cur);
        ASSERT_EQ(n.kind, sp::TreeKind::Parallel);
        ASSERT_EQ(n.prim, m);
        if (cur == top) break;
        cur = n.parent;
      }
    }
  }
}

TEST_P(TreeInvariants, ScanOrderMatchesSimulatorFullPath) {
  // The tree's in-order leaf sequence must be consistent with every
  // realizable scan path: the simulator's reset-time active path is a
  // subsequence of it.
  Rng rng(GetParam() * 77 + 13);
  const rsn::Network net = test::randomNetwork(rng);
  const auto tree = sp::DecompositionTree::build(net);
  const auto order = tree.scanOrder();
  std::vector<std::size_t> pos(net.segments().size());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;

  sim::ScanSimulator simulator(net);
  const auto path = simulator.activePath();
  ASSERT_TRUE(path.has_value());
  for (std::size_t i = 1; i < path->segments.size(); ++i)
    EXPECT_LT(pos[path->segments[i - 1]], pos[path->segments[i]]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeInvariants,
                         ::testing::Range<std::uint64_t>(1, 13));

// ------------------------------------------------------- lint property

class LintCleanGenerators : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LintCleanGenerators, RandomNetworkAndSpecLintWithoutErrors) {
  // Whatever the experiment generators emit (random networks with the
  // paper's 70%/70%/10%/10% spec scheme) must pass the fail-fast gate:
  // a generator that trips error-severity rules would abort every
  // criticality sweep and campaign built on it.  Warnings and notes are
  // expected (e.g. TAP-steered muxes carry no control register).
  Rng rng(GetParam() * 1031 + 7);
  const rsn::Network net = test::randomNetwork(rng);
  const rsn::CriticalitySpec spec = test::randomSpecFor(net, rng);
  lint::LintOptions opts;
  opts.spec = &spec;
  const lint::LintResult result = lint::runLint(net, opts);
  EXPECT_EQ(result.errors, 0u) << lint::textReport(result, net.name());
}

INSTANTIATE_TEST_SUITE_P(Seeds, LintCleanGenerators,
                         ::testing::Range<std::uint64_t>(1, 13));

class FlatRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

// lower -> serialize -> reload must reproduce the exact arena for any
// network the random generator can produce, and lowering twice (with
// and without a spec) must be byte-deterministic.
TEST_P(FlatRoundTrip, LowerSerializeReloadCompare) {
  Rng rng(GetParam() * 71 + 5);
  const rsn::Network net = test::randomNetwork(rng);
  const rsn::CriticalitySpec spec = test::randomSpecFor(net, rng);
  const auto flat = rsn::FlatNetwork::lower(net, &spec);
  const auto again = rsn::FlatNetwork::lower(net, &spec);
  ASSERT_TRUE(*flat == *again) << "lowering is not deterministic";

  std::shared_ptr<const rsn::FlatNetwork> loaded;
  const Status st = rsn::FlatNetwork::deserialize(flat->buffer(), loaded);
  ASSERT_TRUE(st.ok()) << st.toString();
  ASSERT_TRUE(*loaded == *flat);
  EXPECT_EQ(loaded->fingerprint(), flat->fingerprint());
  EXPECT_EQ(loaded->segmentCount(), net.segments().size());
  EXPECT_EQ(loaded->muxCount(), net.muxes().size());
  for (rsn::SegmentId s = 0; s < net.segments().size(); ++s)
    ASSERT_EQ(loaded->segLength()[s], net.segment(s).length);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatRoundTrip,
                         ::testing::Range<std::uint64_t>(1, 13));

/// Certifier verdicts vs the campaign accessibility oracle on the
/// faults in `sample` (stride over the universe; 1 = exhaustive), at
/// every thread count in {1, 2, 4}.  The verdict rows must also be
/// byte-identical across thread counts.
void expectCertifierMatchesOracle(const rsn::Network& net,
                                  std::size_t stride) {
  const std::size_t saved = threadCount();
  std::vector<std::string> rowsPerThreadCount;
  verify::CertificationResult result;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    setThreadCount(threads);
    verify::CertifyOptions options;
    options.crossCheck = false;  // this test is the independent check
    result = verify::Certifier(net).run(options);
    std::string rows;
    for (std::size_t fi = 0; fi < result.universe.size(); ++fi) {
      rows += result.readRow(fi);
      rows += result.writeRow(fi);
    }
    rowsPerThreadCount.push_back(std::move(rows));
  }
  setThreadCount(saved);
  ASSERT_EQ(rowsPerThreadCount.size(), 3u);
  EXPECT_EQ(rowsPerThreadCount[0], rowsPerThreadCount[1]);
  EXPECT_EQ(rowsPerThreadCount[0], rowsPerThreadCount[2]);

  ASSERT_EQ(result.summary().unknownCells(), 0u);
  const diag::BatchedSyndromeEngine oracle(net);
  for (std::size_t fi = 0; fi < result.universe.size(); fi += stride) {
    const fault::Fault& f = result.universe[fi];
    const campaign::Expectation expect = campaign::expectedAccessibility(
        oracle, result.instruments, f, /*worker=*/0);
    for (std::size_t i = 0; i < result.instruments; ++i) {
      ASSERT_EQ(result.read(fi, i) == verify::Verdict::Proven,
                expect.observable.test(i))
          << net.name() << ": " << fault::describe(net, f) << " read @" << i;
      ASSERT_EQ(result.write(fi, i) == verify::Verdict::Proven,
                expect.settable.test(i))
          << net.name() << ": " << fault::describe(net, f) << " write @" << i;
    }
  }
}

TEST(CertifierOracleSweep, TableOneBenchmarksExhaustive) {
  for (const char* name : {"TreeFlat", "TreeUnbalanced", "q12710"}) {
    expectCertifierMatchesOracle(benchgen::buildBenchmark(name),
                                 /*stride=*/1);
  }
}

TEST(CertifierOracleSweep, MbistClassExhaustive) {
  expectCertifierMatchesOracle(benchgen::buildBenchmark("MBIST_1_5_5"),
                               /*stride=*/1);
}

TEST(CertifierOracleSweep, HugeShapeSampled) {
  // The HUGE_* generator shape at a test-sized scale: a 16-ary SIB tree
  // with long control chains.  Sampled fault subset (every 17th row)
  // keeps the oracle replay affordable.
  const rsn::Network net = benchgen::makeHuge("huge2k", 2048, 128, 16);
  expectCertifierMatchesOracle(net, /*stride=*/17);
}

class CertifierRandomSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CertifierRandomSweep, RandomNetworkExhaustive) {
  Rng rng(GetParam() * 131 + 7);
  expectCertifierMatchesOracle(test::randomNetwork(rng), /*stride=*/1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertifierRandomSweep,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace rrsn

#include <gtest/gtest.h>

#include <sstream>

#include "rsn/builder.hpp"
#include "rsn/example_networks.hpp"
#include "rsn/graph_view.hpp"
#include "rsn/netlist_io.hpp"
#include "rsn/spec.hpp"
#include "test_util.hpp"

namespace rrsn::rsn {
namespace {

TEST(Builder, TinyNetworkShape) {
  const Network net = makeTinyNetwork();
  EXPECT_EQ(net.name(), "tiny");
  EXPECT_EQ(net.segments().size(), 2u);
  EXPECT_EQ(net.muxes().size(), 1u);
  EXPECT_EQ(net.instruments().size(), 2u);
  EXPECT_EQ(net.findSegment("seg_a"), 0u);
  EXPECT_EQ(net.findSegment("nope"), kNone);
  EXPECT_EQ(net.findInstrument("inst_b"),
            net.segment(net.findSegment("seg_b")).instrument);
}

TEST(Builder, Fig1Shape) {
  const Network net = makeFig1Network();
  // 7 segments: c0, seg_i1, sb1 (SIB register), seg_i2, seg_i3, c2, c1.
  EXPECT_EQ(net.segments().size(), 7u);
  // 4 muxes: sb1_mux, m1, m2, m0.
  EXPECT_EQ(net.muxes().size(), 4u);
  EXPECT_EQ(net.instruments().size(), 3u);
  EXPECT_TRUE(net.segment(net.findSegment("sb1")).isSibRegister);
  // The SIB register drives its own mux.
  const MuxId sibMux = net.findMux("sb1_mux");
  EXPECT_EQ(net.mux(sibMux).controlSegment, net.findSegment("sb1"));
  // m0 is driven by c0.
  EXPECT_EQ(net.mux(net.findMux("m0")).controlSegment, net.findSegment("c0"));
}

TEST(Builder, LinearIdRoundTrip) {
  const Network net = makeFig1Network();
  for (std::size_t i = 0; i < net.primitiveCount(); ++i) {
    const PrimitiveRef ref = net.refOf(i);
    EXPECT_EQ(net.linearId(ref), i);
  }
  EXPECT_THROW(net.refOf(net.primitiveCount()), Error);
}

TEST(Builder, StatsAreConsistent) {
  const Network net = makeFig1Network();
  const NetworkStats s = net.stats();
  EXPECT_EQ(s.segments, 7u);
  EXPECT_EQ(s.muxes, 4u);
  EXPECT_EQ(s.instruments, 3u);
  // c0(1)+seg_i1(4)+sb1(1)+seg_i2(3)+seg_i3(5)+c2(1)+c1(2) = 17 cells.
  EXPECT_EQ(s.scanCells, 17u);
  // m0 encloses sb1_mux / m1 / m2: nesting depth 2.
  EXPECT_EQ(s.maxMuxNesting, 2u);
}

TEST(Builder, DuplicateNamesRejected) {
  NetworkBuilder b("dup");
  auto s1 = b.segment("x", 1);
  auto s2 = b.segment("x", 1);
  b.setTop(b.chain({s1, s2}));
  EXPECT_THROW(b.build(), ValidationError);
}

TEST(Builder, ZeroLengthSegmentRejected) {
  NetworkBuilder b("zero");
  EXPECT_THROW(b.segment("x", 0), Error);
}

TEST(Builder, MissingTopRejected) {
  NetworkBuilder b("noTop");
  (void)b.segment("x", 1);
  EXPECT_THROW(b.build(), Error);
}

TEST(Builder, UnusedSegmentRejected) {
  NetworkBuilder b("unused");
  auto used = b.segment("used", 1);
  (void)b.segment("orphan", 1);
  b.setTop(used);
  EXPECT_THROW(b.build(), ValidationError);
}

TEST(Builder, AllWireMuxRejected) {
  NetworkBuilder b("wires");
  auto m = b.mux("m", {b.wire(), b.wire()});
  auto s = b.segment("s", 1);
  b.setTop(b.chain({m, s}));
  EXPECT_THROW(b.build(), ValidationError);
}

TEST(Builder, UnknownControlSegmentRejected) {
  NetworkBuilder b("ctrl");
  auto s = b.segment("s", 1);
  EXPECT_THROW(b.mux("m", {s, b.wire()}, "missing"), Error);
}

TEST(Builder, MuxNeedsTwoBranches) {
  NetworkBuilder b("one");
  auto s = b.segment("s", 1);
  EXPECT_THROW(b.mux("m", {s}), Error);
}

// ------------------------------------------------------------ graph view

TEST(GraphView, Fig1GraphIsTwoTerminalDag) {
  const Network net = makeFig1Network();
  const GraphView gv = buildGraphView(net);
  // SI + SO + 7 segments + 4 muxes + 4 fan-outs = 17 vertices.
  EXPECT_EQ(gv.graph.vertexCount(), 17u);
  EXPECT_TRUE(
      graph::isTwoTerminalDag(gv.graph, gv.scanIn, gv.scanOut));
}

TEST(GraphView, PaperFactM0DominatesC2) {
  // Sec. III: "Since all the paths through the segment c2 traverse the
  // multiplexer m0, then m0 dominates c2" — on the reversed graph (data
  // flows toward scan-out), i.e. m0 post-dominates c2.
  const Network net = makeFig1Network();
  const GraphView gv = buildGraphView(net);
  graph::Digraph rev;
  for (graph::VertexId v = 0; v < gv.graph.vertexCount(); ++v)
    rev.addVertex(gv.graph.label(v));
  for (graph::VertexId v = 0; v < gv.graph.vertexCount(); ++v)
    for (graph::VertexId s : gv.graph.successors(v)) rev.addEdge(s, v);
  const auto ipdom = graph::immediateDominators(rev, gv.scanOut);
  const auto c2 = gv.segmentVertex[net.findSegment("c2")];
  const auto m0 = gv.muxVertex[net.findMux("m0")];
  const auto m1 = gv.muxVertex[net.findMux("m1")];
  const auto m2 = gv.muxVertex[net.findMux("m2")];
  EXPECT_TRUE(graph::dominates(ipdom, m0, c2));
  // "The multiplexer m2 dominates m1":
  EXPECT_TRUE(graph::dominates(ipdom, m2, m1));
}

TEST(GraphView, MuxBranchExitsRecorded) {
  const Network net = makeFig1Network();
  const GraphView gv = buildGraphView(net);
  const MuxId m0 = net.findMux("m0");
  ASSERT_EQ(gv.muxBranchExit[m0].size(), 2u);
  // Branch 0 exits at c2, branch 1 (bypass wire) at the fan-out.
  EXPECT_EQ(gv.muxBranchExit[m0][0], gv.segmentVertex[net.findSegment("c2")]);
  EXPECT_EQ(gv.muxBranchExit[m0][1], gv.fanoutVertex[m0]);
}

TEST(GraphView, DotContainsShapes) {
  const Network net = makeTinyNetwork();
  const std::string dot = toDot(net);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("shape=trapezium"), std::string::npos);
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);
}

// ----------------------------------------------------------------- spec

TEST(Spec, RandomSpecFollowsPaperRecipe) {
  Rng rng(123);
  test::RandomNetOptions opt;
  opt.targetSegments = 200;
  const Network net = test::randomNetwork(rng, opt);
  const std::size_t n = net.instruments().size();
  ASSERT_GT(n, 50u);
  const CriticalitySpec spec = randomSpec(net, SpecOptions{}, rng);

  std::size_t obsNonZero = 0, setNonZero = 0, obsCrit = 0, setCrit = 0;
  std::uint64_t uncritObs = 0;
  for (InstrumentId i = 0; i < n; ++i) {
    const auto& w = spec.of(i);
    obsNonZero += w.obs > 0;
    setNonZero += w.set > 0;
    obsCrit += w.criticalObs;
    setCrit += w.criticalSet;
    if (!w.criticalObs) uncritObs += w.obs;
  }
  // 10% critical; criticals are also non-zero, so non-zero counts lie in
  // [70%, 70%+10%] of n.
  EXPECT_NEAR(static_cast<double>(obsCrit), 0.10 * static_cast<double>(n),
              1.0);
  EXPECT_NEAR(static_cast<double>(setCrit), 0.10 * static_cast<double>(n),
              1.0);
  EXPECT_GE(obsNonZero, static_cast<std::size_t>(0.65 * static_cast<double>(n)));
  EXPECT_LE(obsNonZero, static_cast<std::size_t>(0.85 * static_cast<double>(n)));
  EXPECT_GE(setNonZero, static_cast<std::size_t>(0.65 * static_cast<double>(n)));

  // Dominance requirement: every critical weight exceeds the sum of all
  // uncritical weights of its kind (Sec. IV-A).
  for (InstrumentId i = 0; i < n; ++i) {
    if (spec.of(i).criticalObs) {
      EXPECT_GT(spec.of(i).obs, uncritObs);
    }
  }
}

TEST(Spec, RoundTripThroughText) {
  Rng rng(7);
  const Network net = makeFig1Network();
  CriticalitySpec spec = makeFig1Spec(net);
  spec.of(net.findInstrument("i2")).criticalSet = true;

  std::stringstream ss;
  writeSpec(ss, net, spec);
  const CriticalitySpec back = readSpec(ss, net);
  for (InstrumentId i = 0; i < net.instruments().size(); ++i) {
    EXPECT_EQ(back.of(i).obs, spec.of(i).obs);
    EXPECT_EQ(back.of(i).set, spec.of(i).set);
    EXPECT_EQ(back.of(i).criticalObs, spec.of(i).criticalObs);
    EXPECT_EQ(back.of(i).criticalSet, spec.of(i).criticalSet);
  }
}

TEST(Spec, ReadRejectsUnknownInstrument) {
  const Network net = makeTinyNetwork();
  std::istringstream is("ghost obs=1 set=2\n");
  EXPECT_THROW(readSpec(is, net), ParseError);
}

TEST(Spec, ReadRejectsMalformedLine) {
  const Network net = makeTinyNetwork();
  std::istringstream is("inst_a obs=1\n");
  EXPECT_THROW(readSpec(is, net), ParseError);
}

TEST(Spec, TotalsAndCriticalLists) {
  const Network net = makeFig1Network();
  const CriticalitySpec spec = makeFig1Spec(net);
  EXPECT_EQ(spec.totalObs(), 9u);
  EXPECT_EQ(spec.totalSet(), 9u);
  EXPECT_TRUE(spec.criticalObsInstruments().empty());
}

TEST(Spec, RobustEndsPlacementUsesScanEnds) {
  // A long flat chain of instruments: with RobustEnds the obs-critical
  // instruments come from the scan-out third, the set-critical ones from
  // the scan-in third.
  NetworkBuilder b("chain");
  std::vector<NodeId> parts;
  for (int i = 0; i < 60; ++i)
    parts.push_back(
        b.segment("s" + std::to_string(i), 1, "i" + std::to_string(i)));
  b.setTop(b.chain(std::move(parts)));
  const Network net = b.build();

  Rng rng(5);
  SpecOptions opt;
  opt.placement = CriticalPlacement::RobustEnds;
  const CriticalitySpec spec = randomSpec(net, opt, rng);
  for (InstrumentId i = 0; i < net.instruments().size(); ++i) {
    if (spec.of(i).criticalObs) {
      EXPECT_GE(i, 40u) << "obs-critical i" << i;
    }
    if (spec.of(i).criticalSet) {
      EXPECT_LT(i, 20u) << "set-critical i" << i;
    }
  }
  // The counts still follow the 10% rule.
  EXPECT_EQ(spec.criticalObsInstruments().size(), 6u);
  EXPECT_EQ(spec.criticalSetInstruments().size(), 6u);
}

TEST(Spec, RobustEndsDominanceStillHolds) {
  Rng rng(6);
  const Network net = test::randomNetwork(rng);
  SpecOptions opt;
  opt.placement = CriticalPlacement::RobustEnds;
  const CriticalitySpec spec = randomSpec(net, opt, rng);
  std::uint64_t uncritObs = 0;
  for (InstrumentId i = 0; i < net.instruments().size(); ++i)
    if (!spec.of(i).criticalObs) uncritObs += spec.of(i).obs;
  for (InstrumentId i = 0; i < net.instruments().size(); ++i) {
    if (spec.of(i).criticalObs) {
      EXPECT_GT(spec.of(i).obs, uncritObs);
    }
  }
}

// ------------------------------------------------------------ netlist IO

TEST(NetlistIo, WriteParsePreservesStructure) {
  const Network net = makeFig1Network();
  const std::string text = netlistToString(net);
  const Network back = parseNetlistString(text);
  EXPECT_EQ(back.name(), net.name());
  EXPECT_EQ(back.segments().size(), net.segments().size());
  EXPECT_EQ(back.muxes().size(), net.muxes().size());
  EXPECT_EQ(back.instruments().size(), net.instruments().size());
  // Canonical form is a fixed point.
  EXPECT_EQ(netlistToString(back), text);
}

TEST(NetlistIo, SibSugarSurvivesRoundTrip) {
  const Network net = makeFig1Network();
  const std::string text = netlistToString(net);
  EXPECT_NE(text.find("sib sb1 {"), std::string::npos);
  const Network back = parseNetlistString(text);
  EXPECT_TRUE(back.segment(back.findSegment("sb1")).isSibRegister);
}

TEST(NetlistIo, RandomNetworksRoundTrip) {
  Rng rng(31);
  for (int round = 0; round < 10; ++round) {
    const Network net = test::randomNetwork(rng);
    const std::string text = netlistToString(net);
    const Network back = parseNetlistString(text);
    EXPECT_EQ(back.segments().size(), net.segments().size());
    EXPECT_EQ(back.muxes().size(), net.muxes().size());
    EXPECT_EQ(netlistToString(back), text) << text;
  }
}

TEST(NetlistIo, ParseErrors) {
  EXPECT_THROW(parseNetlistString("netwrk x { wire; }"), ParseError);
  EXPECT_THROW(parseNetlistString("network x { segment s"), ParseError);
  EXPECT_THROW(parseNetlistString("network x { mux m { branch { wire; } } }"),
               ParseError);  // one branch only
  EXPECT_THROW(parseNetlistString("network x { segment s foo=1; }"),
               ParseError);
  EXPECT_THROW(parseNetlistString("network x { bogus; }"), ParseError);
  EXPECT_THROW(parseNetlistString("network x { wire; } trailing"), ParseError);
}

TEST(NetlistIo, ParseMinimalNetwork) {
  const Network net = parseNetlistString(
      "network mini {\n"
      "  chain {\n"
      "    segment cfg;\n"
      "    mux m ctrl=cfg { branch { segment tdr len=4 instrument=t; }\n"
      "                     branch { wire; } }\n"
      "  }\n"
      "}\n");
  EXPECT_EQ(net.segments().size(), 2u);
  EXPECT_EQ(net.muxes().size(), 1u);
  EXPECT_EQ(net.mux(0).controlSegment, net.findSegment("cfg"));
  EXPECT_EQ(net.segment(net.findSegment("tdr")).length, 4u);
}

TEST(NetlistIo, CommentsAndWhitespaceIgnored) {
  const Network net = parseNetlistString(
      "# header comment\n"
      "network c { # inline\n"
      "  segment s len=2; # tail\n"
      "}\n");
  EXPECT_EQ(net.segments().size(), 1u);
}

}  // namespace
}  // namespace rrsn::rsn
